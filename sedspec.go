// Package sedspec reproduces "SEDSpec: Securing Emulated Devices by
// Enforcing Execution Specification" (DSN 2024): it automatically derives
// an execution specification (ES-CFG) for an emulated device from traces of
// benign I/O interactions and enforces it at runtime with three check
// strategies, detecting vulnerability exploitation before the device
// executes the offending I/O.
//
// The workflow mirrors the paper's three phases:
//
//  1. Data collection: run benign training samples against the device with
//     the software processor-trace module attached, build the ITC-CFG, and
//     select device-state parameters (Learn does this internally).
//  2. Execution specification construction: replay the training samples
//     with observation points installed and construct the ES-CFG from the
//     device-state-change log.
//  3. Runtime protection: attach an ES-Checker to the device's I/O path
//     (Protect), simulating the specification for each interaction and
//     blocking or warning on violations.
//
// A minimal session:
//
//	m := sedspec.NewMachine()
//	dev := fdc.New()
//	att := m.Attach(dev, machine.WithPIO(fdc.PortBase, fdc.PortCount))
//	spec, err := sedspec.Learn(att, func(d *sedspec.Driver) error {
//	    return workload.Train(d, ...)
//	})
//	chk := sedspec.Protect(att, spec, checker.WithMode(checker.ModeProtection))
package sedspec

import (
	"fmt"

	"sedspec/internal/analysis"
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/itccfg"
	"sedspec/internal/machine"
	"sedspec/internal/obs"
	"sedspec/internal/obs/coverage"
	"sedspec/internal/obs/span"
	"sedspec/internal/obs/stream"
	"sedspec/internal/trace"
)

// Re-exported handles so that example programs only import the facade and
// the packages they construct devices from.
type (
	// Machine is the hypervisor substrate hosting emulated devices.
	Machine = machine.Machine
	// Attached is a device plugged into a machine.
	Attached = machine.Attached
	// Spec is a device execution specification (ES-CFG).
	Spec = core.Spec
	// Checker is the runtime-protection proxy.
	Checker = checker.Checker
	// Selection is the device state chosen by the CFG analyzer.
	Selection = analysis.Selection
	// Anomaly is a detected specification violation.
	Anomaly = checker.Anomaly
	// SharedChecker is the cross-session enforcement engine: one sealed
	// specification shared read-only by N concurrent per-session checkers.
	SharedChecker = checker.Shared
	// FlightRecorder is a session's always-on event ring plus metric bank.
	FlightRecorder = obs.Recorder
	// TraceEvent is one checked I/O in a flight-recorder ring.
	TraceEvent = obs.Event
	// AnomalyContext is the frozen trace window attached to a blocking
	// anomaly.
	AnomalyContext = obs.AnomalyContext
	// Metrics is one device's aggregated counters and histograms.
	Metrics = obs.MetricsSnapshot
	// MetricsRegistry tracks flight recorders and aggregates their metrics.
	MetricsRegistry = obs.Registry
	// CoverageProfile is a spec generation's ES-CFG coverage picture:
	// structure annotated with training and runtime hit counts.
	CoverageProfile = coverage.Profile
	// CoverageDrift is the structural and behavioral difference between
	// two generations' coverage profiles.
	CoverageDrift = coverage.Drift
	// CoverageSnapshot is a raw per-generation counter snapshot, dense in
	// the sealed spec's block and edge index spaces.
	CoverageSnapshot = coverage.Snapshot
	// CoverageEdge is one trained ES-CFG edge with its hit count.
	CoverageEdge = coverage.EdgeCov
	// SpanSink collects lifecycle spans (learn, seal, swap, enhance, store
	// put/get) and exports them as Chrome trace_event JSON.
	SpanSink = span.Sink
	// TelemetryHub is the bounded non-blocking broadcast hub the checkers
	// publish fleet telemetry into (anomalies, swaps, session lifecycle,
	// health ticks).
	TelemetryHub = stream.Hub
	// TelemetryEvent is one typed, sequence-numbered event on the hub.
	TelemetryEvent = stream.Event
	// FleetSnapshot is the health aggregator's one-stop fleet picture:
	// per-device rollups, rates, latency quantiles, and the
	// enforcement-overhead watchdog verdict.
	FleetSnapshot = stream.FleetSnapshot
)

// DiffCoverage compares two coverage profiles, older to newer.
func DiffCoverage(from, to *CoverageProfile) *CoverageDrift { return coverage.Diff(from, to) }

// Spans returns the process-wide span sink the lifecycle instrumentation
// records into.
func Spans() *SpanSink { return span.Default() }

// WithRecorder installs a caller-owned flight recorder on a checker
// (WithRecorder(nil) disables recording entirely).
func WithRecorder(rec *obs.Recorder) checker.Option { return checker.WithRecorder(rec) }

// WithStream routes a checker's telemetry events to a caller-owned hub
// instead of the process-wide default (WithStream(nil) disables
// publication entirely).
func WithStream(h *stream.Hub) checker.Option { return checker.WithStream(h) }

// Stream returns the process-wide telemetry hub the checkers publish
// into unless redirected with WithStream.
func Stream() *TelemetryHub { return stream.Default() }

// ObsDefault returns the process-wide observability registry the
// checkers report into unless redirected with checker.WithObs.
func ObsDefault() *obs.Registry { return obs.Default() }

// NewMachine creates a machine with default guest memory.
func NewMachine(opts ...machine.Option) *Machine { return machine.New(opts...) }

// Driver issues guest I/O against one device during training or workloads.
// It dispatches directly to the device (bypassing bus routing), bracketing
// each interaction with the recorder when one is installed.
type Driver struct {
	att *machine.Attached
	rec *analysis.Recorder
}

// NewDriver returns a plain driver (no recording) for workloads.
func NewDriver(att *machine.Attached) *Driver { return &Driver{att: att} }

// Attached returns the underlying attachment.
func (d *Driver) Attached() *machine.Attached { return d.att }

// Machine returns the hosting machine (guest memory, clock, IRQs).
func (d *Driver) Machine() *machine.Machine { return d.att.Machine() }

func (d *Driver) dispatch(req *interp.Request) (*interp.Result, error) {
	if d.rec != nil {
		d.rec.Begin(req)
	}
	res, err := d.att.DispatchDirect(req)
	if d.rec != nil {
		d.rec.End(res)
	}
	return res, err
}

// Out issues a port write.
func (d *Driver) Out(port uint64, data []byte) (*interp.Result, error) {
	return d.dispatch(interp.NewWrite(interp.SpacePIO, port, data))
}

// Out8 issues a one-byte port write.
func (d *Driver) Out8(port uint64, v byte) (*interp.Result, error) {
	return d.Out(port, []byte{v})
}

// In issues a port read and returns the device's response bytes.
func (d *Driver) In(port uint64) ([]byte, *interp.Result, error) {
	req := interp.NewRead(interp.SpacePIO, port)
	res, err := d.dispatch(req)
	if err != nil {
		return nil, nil, err
	}
	return res.Output, res, nil
}

// MMIOWrite issues a memory-mapped write.
func (d *Driver) MMIOWrite(addr uint64, data []byte) (*interp.Result, error) {
	return d.dispatch(interp.NewWrite(interp.SpaceMMIO, addr, data))
}

// MMIORead issues a memory-mapped read.
func (d *Driver) MMIORead(addr uint64) ([]byte, *interp.Result, error) {
	req := interp.NewRead(interp.SpaceMMIO, addr)
	res, err := d.dispatch(req)
	if err != nil {
		return nil, nil, err
	}
	return res.Output, res, nil
}

// TrainFunc issues benign training I/O through the driver. Learn invokes
// it twice (trace pass, then observation pass), so it must be
// deterministic: seed any randomness inside the function.
type TrainFunc func(d *Driver) error

// LearnResult carries the artifacts of specification construction.
type LearnResult struct {
	Spec   *core.Spec
	Params *analysis.Selection
	Graph  *itccfg.Graph
	Log    *analysis.Log
	Trace  trace.Stats
}

// Learn runs the paper's phases 1 and 2 for an attached device: trace the
// training samples, build the ITC-CFG, select device-state parameters,
// re-run the samples with observation points, and construct the execution
// specification. The device is reset before each pass and after learning.
func Learn(att *machine.Attached, train TrainFunc) (*core.Spec, error) {
	r, err := LearnFull(att, train)
	if err != nil {
		return nil, err
	}
	return r.Spec, nil
}

// LearnFull is Learn, returning all intermediate artifacts.
func LearnFull(att *machine.Attached, train TrainFunc) (*LearnResult, error) {
	dev := att.Dev()
	prog := dev.Program()
	in := att.Interp()
	learnSpan := span.Default().Start("learn", span.Device(prog.Name))
	defer learnSpan.End()

	// Phase 1a: processor-trace collection under training samples.
	dev.Reset()
	sp := span.Default().Start("learn.trace")
	col := trace.NewCollector(trace.DeviceConfig(prog))
	in.SetTracer(col)
	err := train(&Driver{att: att})
	in.SetTracer(nil)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("sedspec: trace pass: %w", err)
	}

	// Phase 1b: ITC-CFG construction and parameter selection.
	sp = span.Default().Start("learn.analyze")
	runs, err := trace.Decode(prog, col.Packets())
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("sedspec: decode trace: %w", err)
	}
	graph := itccfg.New(prog)
	for _, run := range runs {
		graph.AddRun(run)
	}
	params := analysis.SelectParams(graph)
	sp.End()

	// Phase 1c: observation run producing the device-state-change log.
	dev.Reset()
	sp = span.Default().Start("learn.observe")
	rec := analysis.NewRecorder(prog.Name)
	in.SetObserver(rec)
	in.SetWatch(params.WatchList())
	err = train(&Driver{att: att, rec: rec})
	in.SetObserver(nil)
	in.SetWatch(nil)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("sedspec: observation pass: %w", err)
	}

	// Phase 2: ES-CFG construction.
	sp = span.Default().Start("learn.build")
	spec, err := core.Build(prog, params, rec.Log())
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("sedspec: build spec: %w", err)
	}
	dev.Reset()
	return &LearnResult{
		Spec:   spec,
		Params: params,
		Graph:  graph,
		Log:    rec.Log(),
		Trace:  col.Stats(),
	}, nil
}

// Protect attaches an ES-Checker enforcing the specification to the
// device's I/O path (the paper's phase 3). The checker's shadow device
// state is initialized from the device control structure's current
// values. The checker's flight recorder stamps events with the
// machine's virtual clock and the attachment's session ID.
func Protect(att *machine.Attached, spec *core.Spec, opts ...checker.Option) *checker.Checker {
	base := []checker.Option{
		checker.WithEnv(att),
		checker.WithHalt(att.Machine().Halt),
		checker.WithClock(att.Machine().Clock),
		checker.WithSessionID(att.SessionID()),
	}
	chk := checker.New(spec, att.Dev().State(), append(base, opts...)...)
	att.AddInterposer(chk)
	return chk
}

// Unprotect removes all interposers (the checker) from the device,
// retiring every attached checker first: its counters fold into the
// shared engine's retired bank (when the checker came from ProtectShared)
// and its flight recorder folds into the observability registry. Without
// the retire step a re-ProtectShared on the same attachment would leave
// the old session's live stats bank registered alongside the new one and
// aggregate accounting would double-count.
func Unprotect(att *machine.Attached) {
	for _, ip := range att.Interposers() {
		if chk, ok := ip.(*checker.Checker); ok {
			chk.Close()
		}
	}
	att.ClearInterposers()
}

// NewSharedChecker seals the specification once for concurrent
// enforcement across guest sessions. Options fix the configuration every
// session inherits (mode, strategies, budget).
func NewSharedChecker(spec *core.Spec, opts ...checker.Option) *SharedChecker {
	return checker.NewShared(spec, opts...)
}

// ProtectShared attaches a per-session ES-Checker drawn from a shared
// engine to the device's I/O path. The session checker shares the
// engine's immutable sealed specification and recycles pooled scratch;
// its shadow state is initialized from this attachment's device control
// structure. Each attachment lives on its own machine (or session), so N
// ProtectShared attachments may be driven concurrently.
func ProtectShared(att *machine.Attached, sh *SharedChecker, opts ...checker.Option) *checker.Checker {
	base := []checker.Option{
		checker.WithEnv(att),
		checker.WithHalt(att.Machine().Halt),
		checker.WithClock(att.Machine().Clock),
		checker.WithSessionID(att.SessionID()),
	}
	chk := sh.NewSession(att.Dev().State(), append(base, opts...)...)
	att.AddInterposer(chk)
	return chk
}
