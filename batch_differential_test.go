// Batched-delivery differentials: for every CVE case study the batched
// check path (PreIOBatch) must be byte-identical to per-round delivery
// (PreIO) in both modes, across engines and across batch sizes. The
// exploit's request stream is captured once under live protection, then
// replayed machine-less through fresh checkers sharing a frozen
// environment, so the only variable between configurations is the
// delivery path — any divergence in journal epochs, counter batching,
// short-circuiting, or round numbering shows up as a stream or counter
// mismatch.
package sedspec_test

import (
	"errors"
	"fmt"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/cvesim"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
)

// reqCapture records a deep copy of every request dispatched through an
// attachment, without interfering with delivery.
type reqCapture struct {
	reqs []*interp.Request
}

func (r *reqCapture) PreIO(_ machine.Device, req *interp.Request) error {
	cl := &interp.Request{Space: req.Space, Addr: req.Addr, Write: req.Write}
	if len(req.Data) > 0 {
		cl.Data = append([]byte(nil), req.Data...)
	}
	r.reqs = append(r.reqs, cl)
	return nil
}

// capturedPoC is one PoC's frozen replay material: the learned spec, the
// device control state at exploit start, the exploit's full request
// stream, and the attachment whose machine holds the exploit's guest
// memory (the checker environment for DMA reads during replay).
type capturedPoC struct {
	spec  *core.Spec
	start *interp.State
	reqs  []*interp.Request
	att   *machine.Attached
}

// captureExploit learns the PoC's spec, snapshots the trained device
// state, then runs the exploit under live protection with a capturing
// interposer installed ahead of the checker, so the recorded stream is
// exactly the request sequence the live checker saw — including the
// blocked request itself. Capturing under protection (not bare, and not
// warn-only enhancement) matters: the blocking anomaly halts the machine
// at the first detection, freezing guest memory with the exploit's
// malicious staging intact; a run that continues would let the device's
// own writebacks overwrite it, and the replay environment would no
// longer reproduce the anomaly. Both modes replay the same stream.
func captureExploit(t *testing.T, p *cvesim.PoC) *capturedPoC {
	t.Helper()
	m := machine.New(machine.WithMemory(1 << 20))
	dev, aopts := p.Build()
	att := m.Attach(dev, aopts...)
	spec, err := sedspec.Learn(att, p.Train)
	if err != nil {
		t.Fatalf("learn: %v", err)
	}
	start := att.Dev().State().Clone()
	cap := &reqCapture{}
	att.AddInterposer(cap)
	sedspec.Protect(att, spec, checker.WithMode(checker.ModeProtection), checker.WithBudget(200_000))
	// The exploit's outcome (blocked, halted, or ran out) is not the
	// subject here; the captured stream is the deterministic input the
	// replay configurations are pinned on.
	_ = p.Exploit(sedspec.NewDriver(att), m)
	if len(cap.reqs) == 0 {
		t.Fatal("exploit dispatched no requests")
	}
	return &capturedPoC{spec: spec, start: start, reqs: cap.reqs, att: att}
}

func (c *capturedPoC) cloneReqs() []*interp.Request {
	out := make([]*interp.Request, len(c.reqs))
	for i, req := range c.reqs {
		cl := &interp.Request{Space: req.Space, Addr: req.Addr, Write: req.Write}
		if len(req.Data) > 0 {
			cl.Data = append([]byte(nil), req.Data...)
		}
		out[i] = cl
	}
	return out
}

// streamRun is everything observable from one machine-less replay of a
// captured stream: the ordered blocking-anomaly stream, the warning
// stream, and the full counters.
type streamRun struct {
	blocked  []string
	stats    checker.Stats
	warnings []checker.Anomaly
}

// newReplayChecker builds a fresh checker for one replay configuration.
// No halt hook is installed: replay continues past blocking anomalies so
// every configuration processes the identical full stream.
func newReplayChecker(c *capturedPoC, mode checker.Mode, engine []checker.Option) *checker.Checker {
	opts := []checker.Option{
		checker.WithMode(mode),
		checker.WithBudget(200_000),
		checker.WithEnv(c.att),
	}
	opts = append(opts, engine...)
	return checker.New(c.spec, c.start, opts...)
}

// replayPerRound is the baseline delivery: one PreIO per request, with
// the dispatcher's PostIO resync point emulated after each round.
func replayPerRound(t *testing.T, c *capturedPoC, mode checker.Mode, engine []checker.Option) streamRun {
	t.Helper()
	chk := newReplayChecker(c, mode, engine)
	var run streamRun
	for _, req := range c.cloneReqs() {
		if err := chk.PreIO(nil, req); err != nil {
			var a *checker.Anomaly
			if !errors.As(err, &a) {
				t.Fatalf("non-anomaly block: %v", err)
			}
			run.blocked = append(run.blocked, describeAnomaly(a))
		}
		if chk.NeedsResync() {
			chk.ResyncShadow(c.start)
		}
	}
	run.stats = chk.Stats()
	run.warnings = chk.Warnings()
	return run
}

// replayBatched delivers the same stream through PreIOBatch in windows
// of the given size, consuming checked prefixes and re-presenting the
// tail after each short-circuit — exactly the dispatcher's protocol,
// with the same emulated resync point between deliveries.
func replayBatched(t *testing.T, c *capturedPoC, mode checker.Mode, engine []checker.Option, size int) streamRun {
	t.Helper()
	chk := newReplayChecker(c, mode, engine)
	var run streamRun
	stream := c.cloneReqs()
	for i := 0; i < len(stream); {
		end := i + size
		if end > len(stream) {
			end = len(stream)
		}
		vs := chk.PreIOBatch(stream[i:end])
		checked := 0
		for checked < len(vs) && vs[checked].Checked {
			checked++
		}
		if checked == 0 {
			t.Fatalf("batch made no progress at request %d", i)
		}
		for k := 0; k < checked; k++ {
			if !vs[k].Blocked {
				continue
			}
			var a *checker.Anomaly
			if !errors.As(vs[k].Err, &a) {
				t.Fatalf("non-anomaly block: %v", vs[k].Err)
			}
			run.blocked = append(run.blocked, describeAnomaly(a))
		}
		i += checked
		if chk.NeedsResync() {
			chk.ResyncShadow(c.start)
		}
	}
	run.stats = chk.Stats()
	run.warnings = chk.Warnings()
	return run
}

// assertSameStream pins one replay's observable state to another's.
func assertSameStream(t *testing.T, label string, got, want streamRun) {
	t.Helper()
	if len(got.blocked) != len(want.blocked) {
		t.Fatalf("%s: blocked streams diverge: got %d %v, want %d %v",
			label, len(got.blocked), got.blocked, len(want.blocked), want.blocked)
	}
	for i := range got.blocked {
		if got.blocked[i] != want.blocked[i] {
			t.Errorf("%s: blocked anomaly %d diverges:\n  got:  %s\n  want: %s",
				label, i, got.blocked[i], want.blocked[i])
		}
	}
	if got.stats != want.stats {
		t.Errorf("%s: stats diverge:\n  got:  %+v\n  want: %+v", label, got.stats, want.stats)
	}
	if len(got.warnings) != len(want.warnings) {
		t.Fatalf("%s: warning streams diverge: got %d, want %d",
			label, len(got.warnings), len(want.warnings))
	}
	for i := range got.warnings {
		if !sameAnomaly(&got.warnings[i], &want.warnings[i]) {
			t.Errorf("%s: warning %d diverges:\n  got:  %s\n  want: %s",
				label, i, describeAnomaly(&got.warnings[i]), describeAnomaly(&want.warnings[i]))
		}
	}
}

// TestBatchedDifferential replays every case study's captured exploit
// stream under per-round delivery with all three engines and under
// batched delivery with both sealed engines at batch sizes 1, 4, 16,
// and whole-stream (plus the reference engine at one size), in both
// modes. All configurations must produce the identical anomaly stream,
// warning stream, and counters — per-round threaded is the baseline.
func TestBatchedDifferential(t *testing.T) {
	for _, p := range cvesim.All() {
		p := p
		t.Run(p.CVE, func(t *testing.T) {
			cap := captureExploit(t, p)
			sizes := []int{1, 4, 16, len(cap.reqs)}
			for _, mode := range []checker.Mode{checker.ModeProtection, checker.ModeEnhancement} {
				t.Run(fmt.Sprint(mode), func(t *testing.T) {
					baseline := replayPerRound(t, cap, mode, checkerEngines[0].opts)
					total := baseline.stats.ParamAnomalies +
						baseline.stats.IndirectAnomalies + baseline.stats.CondAnomalies
					if p.Expected != nil && total == 0 {
						t.Fatal("replayed exploit raised no anomalies; differential is vacuous")
					}
					for _, eng := range checkerEngines[1:] {
						assertSameStream(t, "per-round/"+eng.name,
							replayPerRound(t, cap, mode, eng.opts), baseline)
					}
					for _, eng := range checkerEngines[:2] { // threaded, walker
						for _, size := range sizes {
							label := fmt.Sprintf("batched/%s/size=%d", eng.name, size)
							assertSameStream(t, label,
								replayBatched(t, cap, mode, eng.opts, size), baseline)
						}
					}
					assertSameStream(t, "batched/reference/size=16",
						replayBatched(t, cap, mode, checkerEngines[2].opts, 16), baseline)
				})
			}
		})
	}
}
