//go:build !race

package sedspec_test

// raceEnabled reports whether the race detector instruments this build;
// timing-ratio guards skip under it.
const raceEnabled = false
