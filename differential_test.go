// Differential test pinning the sealed fast-path simulation to the
// reference map-walking engine: across all nine CVE case studies, in both
// protection and enhancement modes, the two engines must produce the same
// anomaly stream, the same warning stream, and the same counters. This is
// the correctness argument for the sealed lowering — any divergence in
// transition semantics, access control, or DSOD execution shows up here.
package sedspec_test

import (
	"errors"
	"fmt"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/cvesim"
	"sedspec/internal/machine"
)

// diffRun is everything observable from one protected exploit replay.
type diffRun struct {
	anomaly  *checker.Anomaly
	stats    checker.Stats
	warnings []checker.Anomaly
	err      string
}

// replayPoC learns a spec from the PoC's training routine, protects the
// device with the requested engine and mode, replays the exploit, and
// captures the full observable checker state.
func replayPoC(t *testing.T, p *cvesim.PoC, mode checker.Mode, reference bool) diffRun {
	t.Helper()
	m := machine.New(machine.WithMemory(1 << 20))
	dev, aopts := p.Build()
	att := m.Attach(dev, aopts...)
	spec, err := sedspec.Learn(att, p.Train)
	if err != nil {
		t.Fatalf("learn: %v", err)
	}
	opts := []checker.Option{checker.WithMode(mode), checker.WithBudget(200_000)}
	if reference {
		opts = append(opts, checker.WithReferenceSimulation())
	}
	chk := sedspec.Protect(att, spec, opts...)

	err = p.Exploit(sedspec.NewDriver(att), m)
	var run diffRun
	var anom *checker.Anomaly
	switch {
	case errors.As(err, &anom):
		run.anomaly = anom
	case err == nil, errors.Is(err, machine.ErrBlocked), errors.Is(err, machine.ErrHalted):
		// Exploit ran to completion or was stopped by the machine; either
		// way the checker state below is the observable outcome.
	default:
		run.err = err.Error()
	}
	run.stats = chk.Stats()
	run.warnings = chk.Warnings()
	return run
}

func describeAnomaly(a *checker.Anomaly) string {
	if a == nil {
		return "<none>"
	}
	return fmt.Sprintf("{%s %s block=%v round=%d %q}", a.Strategy, a.Device, a.Block, a.Round, a.Detail)
}

func sameAnomaly(a, b *checker.Anomaly) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Strategy == b.Strategy && a.Device == b.Device &&
		a.Block == b.Block && a.Src == b.Src &&
		a.Detail == b.Detail && a.Round == b.Round
}

// TestSealedReferenceDifferential replays every case study under both
// engines and requires bit-identical observable behaviour.
func TestSealedReferenceDifferential(t *testing.T) {
	for _, p := range cvesim.All() {
		for _, mode := range []checker.Mode{checker.ModeProtection, checker.ModeEnhancement} {
			t.Run(fmt.Sprintf("%s/%s", p.CVE, mode), func(t *testing.T) {
				sealed := replayPoC(t, p, mode, false)
				ref := replayPoC(t, p, mode, true)

				if !sameAnomaly(sealed.anomaly, ref.anomaly) {
					t.Errorf("blocking anomaly diverges:\n  sealed:    %s\n  reference: %s",
						describeAnomaly(sealed.anomaly), describeAnomaly(ref.anomaly))
				}
				if sealed.err != ref.err {
					t.Errorf("exploit error diverges: sealed %q, reference %q", sealed.err, ref.err)
				}
				if sealed.stats != ref.stats {
					t.Errorf("stats diverge:\n  sealed:    %+v\n  reference: %+v",
						sealed.stats, ref.stats)
				}
				if len(sealed.warnings) != len(ref.warnings) {
					t.Fatalf("warning streams diverge: sealed %d, reference %d",
						len(sealed.warnings), len(ref.warnings))
				}
				for i := range sealed.warnings {
					if !sameAnomaly(&sealed.warnings[i], &ref.warnings[i]) {
						t.Errorf("warning %d diverges:\n  sealed:    %s\n  reference: %s",
							i, describeAnomaly(&sealed.warnings[i]), describeAnomaly(&ref.warnings[i]))
					}
				}
			})
		}
	}
}

// TestSealedReferenceDifferentialBenign replays each training routine
// under protection with both engines: both must stay silent and count the
// same simulation work.
func TestSealedReferenceDifferentialBenign(t *testing.T) {
	for _, p := range cvesim.All() {
		t.Run(p.CVE, func(t *testing.T) {
			run := func(reference bool) checker.Stats {
				m := machine.New(machine.WithMemory(1 << 20))
				dev, aopts := p.Build()
				att := m.Attach(dev, aopts...)
				spec, err := sedspec.Learn(att, p.Train)
				if err != nil {
					t.Fatalf("learn: %v", err)
				}
				opts := []checker.Option{checker.WithBudget(200_000)}
				if reference {
					opts = append(opts, checker.WithReferenceSimulation())
				}
				chk := sedspec.Protect(att, spec, opts...)
				if err := p.Train(sedspec.NewDriver(att)); err != nil {
					t.Fatalf("benign replay: %v", err)
				}
				_ = m
				return chk.Stats()
			}
			sealed, ref := run(false), run(true)
			if sealed != ref {
				t.Errorf("benign stats diverge:\n  sealed:    %+v\n  reference: %+v", sealed, ref)
			}
			if sealed.ParamAnomalies+sealed.IndirectAnomalies+sealed.CondAnomalies != 0 {
				t.Errorf("benign replay raised anomalies: %+v", sealed)
			}
		})
	}
}
