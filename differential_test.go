// Differential tests pinning the three check engines to each other:
// across all nine CVE case studies, in both protection and enhancement
// modes, the threaded-code stream (the deployed default), the sealed
// switch walker, and the pre-seal reference engine must produce the same
// anomaly stream, the same warning stream, and the same counters. This is
// the correctness argument for both lowering layers — any divergence in
// transition semantics, access control, DSOD execution, peephole fusion,
// or step batching shows up here.
package sedspec_test

import (
	"errors"
	"fmt"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/cvesim"
	"sedspec/internal/machine"
)

// diffRun is everything observable from one protected exploit replay.
type diffRun struct {
	anomaly  *checker.Anomaly
	stats    checker.Stats
	warnings []checker.Anomaly
	err      string
}

// captureRun classifies an exploit's outcome and snapshots the checker's
// observable state.
func captureRun(chk *checker.Checker, err error) diffRun {
	var run diffRun
	var anom *checker.Anomaly
	switch {
	case errors.As(err, &anom):
		run.anomaly = anom
	case err == nil, errors.Is(err, machine.ErrBlocked), errors.Is(err, machine.ErrHalted):
		// Exploit ran to completion or was stopped by the machine; either
		// way the checker state below is the observable outcome.
	default:
		run.err = err.Error()
	}
	run.stats = chk.Stats()
	run.warnings = chk.Warnings()
	return run
}

// checkerEngines enumerates the three check engines the differentials pin
// together: the threaded-code stream compiled at Seal time (the deployed
// default), the sealed switch walker it replaced on the hot path, and the
// pre-seal reference interpreter.
var checkerEngines = []struct {
	name string
	opts []checker.Option
}{
	{"threaded", nil},
	{"walker", []checker.Option{checker.WithThreadedDispatch(false)}},
	{"reference", []checker.Option{checker.WithReferenceSimulation()}},
}

// replayPoC learns a spec from the PoC's training routine, protects the
// device with the requested engine and mode, replays the exploit, and
// captures the full observable checker state.
func replayPoC(t *testing.T, p *cvesim.PoC, mode checker.Mode, engine []checker.Option) diffRun {
	t.Helper()
	m := machine.New(machine.WithMemory(1 << 20))
	dev, aopts := p.Build()
	att := m.Attach(dev, aopts...)
	spec, err := sedspec.Learn(att, p.Train)
	if err != nil {
		t.Fatalf("learn: %v", err)
	}
	opts := []checker.Option{checker.WithMode(mode), checker.WithBudget(200_000)}
	opts = append(opts, engine...)
	chk := sedspec.Protect(att, spec, opts...)
	return captureRun(chk, p.Exploit(sedspec.NewDriver(att), m))
}

func describeAnomaly(a *checker.Anomaly) string {
	if a == nil {
		return "<none>"
	}
	return fmt.Sprintf("{%s %s block=%v round=%d %q}", a.Strategy, a.Device, a.Block, a.Round, a.Detail)
}

func sameAnomaly(a, b *checker.Anomaly) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Strategy == b.Strategy && a.Device == b.Device &&
		a.Block == b.Block && a.Src == b.Src &&
		a.Detail == b.Detail && a.Round == b.Round
}

// TestEngineDifferential replays every case study under all three engines
// and requires bit-identical observable behaviour: the threaded run is the
// baseline, and the walker and reference runs must match it exactly.
func TestEngineDifferential(t *testing.T) {
	for _, p := range cvesim.All() {
		for _, mode := range []checker.Mode{checker.ModeProtection, checker.ModeEnhancement} {
			t.Run(fmt.Sprintf("%s/%s", p.CVE, mode), func(t *testing.T) {
				baseline := replayPoC(t, p, mode, checkerEngines[0].opts)
				for _, eng := range checkerEngines[1:] {
					assertSameRun(t, eng.name, replayPoC(t, p, mode, eng.opts), baseline)
				}
			})
		}
	}
}

// assertSameRun pins one run's full observable state to another's.
func assertSameRun(t *testing.T, label string, got, want diffRun) {
	t.Helper()
	if !sameAnomaly(got.anomaly, want.anomaly) {
		t.Errorf("%s: blocking anomaly diverges:\n  got:  %s\n  want: %s",
			label, describeAnomaly(got.anomaly), describeAnomaly(want.anomaly))
	}
	if got.err != want.err {
		t.Errorf("%s: exploit error diverges: got %q, want %q", label, got.err, want.err)
	}
	if got.stats != want.stats {
		t.Errorf("%s: stats diverge:\n  got:  %+v\n  want: %+v", label, got.stats, want.stats)
	}
	if len(got.warnings) != len(want.warnings) {
		t.Fatalf("%s: warning streams diverge: got %d, want %d",
			label, len(got.warnings), len(want.warnings))
	}
	for i := range got.warnings {
		if !sameAnomaly(&got.warnings[i], &want.warnings[i]) {
			t.Errorf("%s: warning %d diverges:\n  got:  %s\n  want: %s",
				label, i, describeAnomaly(&got.warnings[i]), describeAnomaly(&want.warnings[i]))
		}
	}
}

// TestConcurrentSessionsDifferential is the concurrency correctness
// argument: for every CVE PoC, in both modes, N guest sessions sharing
// one sealed engine and exploited in parallel must each produce exactly
// the anomaly stream the serial sealed engine produces, and the shared
// engine's aggregate counters must be the exact N-fold sum. Run under
// -race this also proves the check path is data-race free.
func TestConcurrentSessionsDifferential(t *testing.T) {
	const n = 4
	for _, p := range cvesim.All() {
		for _, mode := range []checker.Mode{checker.ModeProtection, checker.ModeEnhancement} {
			t.Run(fmt.Sprintf("%s/%s", p.CVE, mode), func(t *testing.T) {
				// Learn the spec once; everything below shares it.
				lm := machine.New(machine.WithMemory(1 << 20))
				ldev, laopts := p.Build()
				latt := lm.Attach(ldev, laopts...)
				spec, err := sedspec.Learn(latt, p.Train)
				if err != nil {
					t.Fatalf("learn: %v", err)
				}
				opts := []checker.Option{checker.WithMode(mode), checker.WithBudget(200_000)}

				// Serial sealed baseline on its own fresh machine.
				bm := machine.New(machine.WithMemory(1 << 20))
				bdev, baopts := p.Build()
				batt := bm.Attach(bdev, baopts...)
				bchk := sedspec.Protect(batt, spec, opts...)
				baseline := captureRun(bchk, p.Exploit(sedspec.NewDriver(batt), bm))

				// N parallel sessions drawing per-session checkers from one
				// shared engine, each exploited concurrently on its own
				// machine. Engines are mixed per session — even sessions run
				// the threaded stream, odd ones the switch walker — so the
				// two sealed engines are raced against each other over the
				// same shared spec version.
				sh := sedspec.NewSharedChecker(spec, opts...)
				pool := machine.NewPool(n, p.Build, machine.WithMemory(1<<20))
				chks := make([]*checker.Checker, n)
				for i, s := range pool.Sessions() {
					var eng []checker.Option
					if i%2 == 1 {
						eng = []checker.Option{checker.WithThreadedDispatch(false)}
					}
					chks[i] = sedspec.ProtectShared(s.Attached(), sh, eng...)
				}
				runs := make([]diffRun, n)
				if err := pool.Run(func(s *machine.Session) error {
					runs[s.ID()] = captureRun(chks[s.ID()],
						p.Exploit(sedspec.NewDriver(s.Attached()), s.Machine()))
					return nil
				}); err != nil {
					t.Fatal(err)
				}

				for i := range runs {
					assertSameRun(t, fmt.Sprintf("session %d", i), runs[i], baseline)
				}

				// Aggregate accounting: the shared engine saw exactly N
				// serial runs' worth of work.
				b := baseline.stats
				want := checker.Stats{
					Rounds:             n * b.Rounds,
					ParamAnomalies:     n * b.ParamAnomalies,
					IndirectAnomalies:  n * b.IndirectAnomalies,
					CondAnomalies:      n * b.CondAnomalies,
					Blocked:            n * b.Blocked,
					Warnings:           n * b.Warnings,
					Resyncs:            n * b.Resyncs,
					StepsSimulated:     n * b.StepsSimulated,
					SyncPointsResolved: n * b.SyncPointsResolved,
				}
				if agg := sh.Stats(); agg != want {
					t.Errorf("aggregate stats:\n  got:  %+v\n  want: %+v", agg, want)
				}
				if got := len(sh.Warnings()); got != n*len(baseline.warnings) {
					t.Errorf("aggregate warnings = %d, want %d", got, n*len(baseline.warnings))
				}
			})
		}
	}
}

// TestEngineDifferentialBenign replays each training routine under
// protection with all three engines: each must stay silent and count the
// same simulation work.
func TestEngineDifferentialBenign(t *testing.T) {
	for _, p := range cvesim.All() {
		t.Run(p.CVE, func(t *testing.T) {
			run := func(engine []checker.Option) checker.Stats {
				m := machine.New(machine.WithMemory(1 << 20))
				dev, aopts := p.Build()
				att := m.Attach(dev, aopts...)
				spec, err := sedspec.Learn(att, p.Train)
				if err != nil {
					t.Fatalf("learn: %v", err)
				}
				opts := []checker.Option{checker.WithBudget(200_000)}
				opts = append(opts, engine...)
				chk := sedspec.Protect(att, spec, opts...)
				if err := p.Train(sedspec.NewDriver(att)); err != nil {
					t.Fatalf("benign replay: %v", err)
				}
				_ = m
				return chk.Stats()
			}
			baseline := run(checkerEngines[0].opts)
			if baseline.ParamAnomalies+baseline.IndirectAnomalies+baseline.CondAnomalies != 0 {
				t.Errorf("benign replay raised anomalies: %+v", baseline)
			}
			for _, eng := range checkerEngines[1:] {
				if got := run(eng.opts); got != baseline {
					t.Errorf("benign stats diverge:\n  threaded: %+v\n  %s: %+v", baseline, eng.name, got)
				}
			}
		})
	}
}
