package sedspec

import (
	"fmt"

	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/obs/span"
	"sedspec/internal/specstore"
)

// Spec lifecycle facade: the versioned spec store plus the enhancement
// pipeline that turns a running deployment's audited warnings into a new
// spec version.
//
// The paper's enhancement mode lets benign-but-untrained commands through
// with a warning; the pipeline here closes the loop: collect the audited
// warning requests from a sealed checker (Checker.Audit / SharedChecker
// .Audit), replay them through a fresh Learn alongside the original
// training corpus, and publish the resulting spec as a new store version
// carrying the audit trail. SharedChecker.Swap then installs it under the
// live sessions without dropping a check.

// Store re-exports so facade users need not import internal packages.
type (
	// SpecStore is a content-addressed, versioned on-disk spec store.
	SpecStore = specstore.Store
	// SpecVersion is one published spec version's metadata.
	SpecVersion = specstore.VersionMeta
	// SpecKey content-addresses a spec by device, program hash, and
	// corpus hash.
	SpecKey = specstore.Key
	// WarningRecord is one audited warning in a version's audit trail.
	WarningRecord = specstore.WarningRecord
	// AuditRecord is one audited warning captured by a checker.
	AuditRecord = checker.AuditRecord
)

// OpenStore opens (creating if needed) a spec store rooted at dir.
func OpenStore(dir string) (*SpecStore, error) { return specstore.Open(dir) }

// StoreKey computes the content-address key for a device attachment and a
// corpus tag: the device program's content hash plus the corpus tag's
// hash. Learning the same program with the same corpus lands on the same
// key, which is what makes LearnCached's cache hit sound.
func StoreKey(att *machine.Attached, corpus string) SpecKey {
	prog := att.Dev().Program()
	return SpecKey{
		Device:      prog.Name,
		ProgramHash: specstore.ProgramHash(prog),
		CorpusHash:  specstore.CorpusHash(corpus),
	}
}

// LearnCached is Learn backed by the store: if a spec for this
// device+corpus key was already published, it is loaded from the store
// (hit=true) without running the training corpus; otherwise Learn runs
// and the result is published under the key. The corpus tag must
// deterministically identify the training input — same tag, same
// training behaviour.
func LearnCached(st *SpecStore, att *machine.Attached, corpus string, train TrainFunc) (spec *core.Spec, meta SpecVersion, hit bool, err error) {
	key := StoreKey(att, corpus)
	if vm, ok := st.Lookup(key); ok {
		if spec, err := st.Load(att.Dev().Program(), vm); err == nil {
			return spec, vm, true, nil
		}
		// A corrupt or missing blob falls through to a fresh learn, which
		// republishes under the same key.
	}
	spec, err = Learn(att, train)
	if err != nil {
		return nil, SpecVersion{}, false, err
	}
	meta, err = st.Put(spec, SpecVersion{
		ProgramHash: key.ProgramHash,
		CorpusHash:  key.CorpusHash,
		CreatedBy:   "learn",
	})
	if err != nil {
		return nil, SpecVersion{}, false, err
	}
	return spec, meta, false, nil
}

// replayAudit issues one audited warning request through the driver,
// re-creating the I/O that tripped the check.
func replayAudit(d *Driver, a *AuditRecord) error {
	var req *interp.Request
	if a.Write {
		req = interp.NewWrite(a.Space, a.Addr, a.Data)
	} else {
		req = interp.NewRead(a.Space, a.Addr)
	}
	if _, err := d.dispatch(req); err != nil {
		return fmt.Errorf("sedspec: enhance: replay audited round %d: %w", a.Round, err)
	}
	return nil
}

// Enhance rebuilds the specification with the audited warnings folded
// into the training corpus: the original training function runs first,
// then each audited request replays in capture order, so the previously
// unobserved paths join the ES-CFG. Like Learn, the composed corpus runs
// twice (trace pass, observation pass) and must therefore be
// deterministic — AuditRecord carries a private copy of each request.
//
// The attachment should be a fresh (or reset) instance of the same
// device program the audit came from; Learn resets the device around its
// passes.
func Enhance(att *machine.Attached, train TrainFunc, audit []AuditRecord) (*core.Spec, error) {
	if len(audit) == 0 {
		return nil, fmt.Errorf("sedspec: enhance: no audited warnings to replay")
	}
	sp := span.Default().Start("enhance",
		span.Device(att.Dev().Program().Name),
		span.Attr{Key: "audited_warnings", Val: fmt.Sprint(len(audit))})
	defer sp.End()
	composed := func(d *Driver) error {
		if train != nil {
			if err := train(d); err != nil {
				return err
			}
		}
		for i := range audit {
			if err := replayAudit(d, &audit[i]); err != nil {
				return err
			}
		}
		return nil
	}
	return Learn(att, composed)
}

// warningRecords converts captured audit records into the store's
// audit-trail form.
func warningRecords(audit []AuditRecord) []WarningRecord {
	out := make([]WarningRecord, len(audit))
	for i, a := range audit {
		out[i] = WarningRecord{
			Strategy: a.Strategy.String(),
			Session:  a.Session,
			Round:    a.Round,
			SpecGen:  a.SpecGen,
			Space:    int(a.Space),
			Addr:     a.Addr,
			Write:    a.Write,
			Data:     a.Data,
			Detail:   a.Detail,
		}
	}
	return out
}

// EnhanceToStore runs the enhancement pipeline end to end: replay the
// audited warnings through a fresh Learn, derive the child corpus hash
// from the parent version's corpus plus the audit trail, and publish the
// result as a new store version recording its parent generation and the
// warnings that drove it. The returned spec is ready for
// SharedChecker.Swap.
func EnhanceToStore(st *SpecStore, att *machine.Attached, parent SpecVersion, train TrainFunc, audit []AuditRecord) (*core.Spec, SpecVersion, error) {
	spec, err := Enhance(att, train, audit)
	if err != nil {
		return nil, SpecVersion{}, err
	}
	warns := warningRecords(audit)
	meta, err := st.Put(spec, SpecVersion{
		ProgramHash: specstore.ProgramHash(att.Dev().Program()),
		CorpusHash:  specstore.EnhancedCorpusHash(parent.CorpusHash, warns),
		Parent:      parent.Generation,
		CreatedBy:   "enhance",
		Warnings:    warns,
	})
	if err != nil {
		return nil, SpecVersion{}, err
	}
	return spec, meta, nil
}
