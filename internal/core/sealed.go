package core

import (
	"fmt"
	"sort"

	"sedspec/internal/ir"
)

// This file implements spec sealing: lowering the learned, map-heavy ES-CFG
// into dense runtime structures the ES-Checker can simulate without pointer
// chasing or hashing on the per-I/O hot path. The mutable Spec remains the
// artifact for training, reduction, and JSON serialization; a SealedSpec is
// produced once at deployment time (checker.New seals internally) and is
// immutable afterwards.
//
// Lowerings applied by Seal:
//
//   - the block table becomes a flat []SealedBlock indexed by ES id, with
//     the owning handler's NumTemps precomputed into each entry (the
//     checker's frame push no longer chases Program().Handlers[...]);
//   - every block's DSOD ops are copied by value into one contiguous arena
//     and addressed by [start,end) range, so a round's op stream is a
//     linear scan instead of per-block pointer hops into the program;
//   - NBTD.CaseNext maps become sorted (selector, next) runs in a shared
//     case arena resolved by binary search, with a small-map fallback only
//     above caseMapThreshold entries;
//   - byRef becomes dense per-handler id arrays (O(1) lookup for call
//     entries and static switch fallbacks);
//   - IndirectTargets becomes per-field sorted target slices;
//   - the command access table becomes per-command block bitsets behind a
//     sorted command index (map fallback above cmdMapThreshold), and the
//     global set a single bitset;
//   - the parameter selection becomes a field bitset.

// caseMapThreshold is the switch-arm count above which a sealed block keeps
// a map for selector lookup instead of a binary-searched run. Binary search
// over a short sorted run beats hashing (no hash, no bucket hop) until the
// run outgrows a few cache lines.
const caseMapThreshold = 32

// cmdMapThreshold is the learned-command count above which the sealed
// access table falls back to a map keyed by command value.
const cmdMapThreshold = 64

// NoEdge marks a transition without a trained-edge coverage slot: the
// transition either was not observed during training (taking it raises an
// anomaly, not a counter hit) or has no per-edge slot by design (the
// static switch fallback counts a direct block hit instead).
const NoEdge = -1

// bitset is a fixed-capacity bit vector.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) get(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

// SealedCase is one lowered switch arm: selector value K transitions to ES
// block Next.
type SealedCase struct {
	K    uint64
	Next int32
}

// SealedOp is one lowered DSOD op: the program op copied by value with its
// check metadata flattened alongside, so the checker's hot loop reads one
// contiguous record per op instead of hopping through a pointer to the
// program and a separate metadata struct. The serialization-only OpRef is
// dropped — it has no runtime use.
type SealedOp struct {
	Op           ir.Op
	Sync         bool
	ParamIndexed bool
}

// SealedBlock is the dense runtime form of an ESBlock. Successor ids are
// int32 (NoBlock for absent) to keep the entry compact; a tombstone entry
// (Live == false) stands in for blocks elided by reduction so ids remain
// stable.
type SealedBlock struct {
	Live    bool
	Kind    ir.BlockKind
	Returns bool
	Halts   bool

	// NBTD lowering. HasNBTD false means the block transitions
	// unconditionally through Next.
	HasNBTD      bool
	TermKind     ir.TermKind
	TakenSeen    bool
	NotTakenSeen bool

	// NumTemps is the owning handler's temp count, precomputed so the
	// checker's frame push is a single field read.
	NumTemps int32

	TakenNext    int32
	NotTakenNext int32
	Next         int32

	// DSOD addresses the block's ops inside the sealed op arena.
	DSODStart int32
	DSODEnd   int32

	// Cases addresses the block's sorted switch arms inside the case
	// arena; CaseMap is non-nil only above caseMapThreshold.
	CaseStart int32
	CaseEnd   int32
	CaseMap   map[uint64]int32

	// Trained-edge coverage slots (NoEdge when the transition has none).
	// NextEdge covers the unconditional successor, TakenEdge/NotTakenEdge
	// the branch arms, and switch arms use EdgeBase + their offset inside
	// the sorted case run (CaseEdges is the map-fallback twin of CaseMap).
	NextEdge     int32
	TakenEdge    int32
	NotTakenEdge int32
	EdgeBase     int32
	CaseEdges    map[uint64]int32

	// Ref identifies the original block for anomaly reports.
	Ref ir.BlockRef
	// Term points at the original terminator (condition operands,
	// relation, source statement); nil for unconditional blocks.
	Term *ir.Term
}

// SealedSpec is the dense, immutable runtime form of a Spec.
//
// Immutability is a concurrency contract, not just a convention: one
// SealedSpec is shared read-only by every concurrent enforcement session
// (checker.Shared hands the same pointer to N goroutines), so nothing may
// write to a sealed spec after Seal returns. Seal guarantees the sealed
// data is self-consistent via CheckInvariants — every arena range, case
// run, successor id, and id-table entry it asserts is exactly what the
// lock-free check path dereferences without bounds re-validation. The two
// pieces of shared-by-reference state, the device program and the ir.Term
// pointers inside it, are covered by the same contract: a program is
// built once and never mutated after attachment.
type SealedSpec struct {
	Device string
	Entry  int

	prog   *ir.Program
	blocks []SealedBlock

	// dsod is the contiguous DSOD op arena, in execution order: a round's
	// op stream is a linear scan over value records.
	dsod []SealedOp

	cases []SealedCase

	// blockIDs[h][b] is the ES id for original block (h, b), or NoBlock.
	blockIDs [][]int32

	// handlerTemps[h] is handler h's temp-bank size, so opening a frame
	// for a callee needs no block-table load.
	handlerTemps []int32

	// indirect[f] is the sorted legitimate-target set of function-pointer
	// field f (nil when none were learned).
	indirect [][]uint64

	// Access table lowering.
	global   bitset
	cmds     []uint64
	cmdVecs  []bitset
	cmdMap   map[uint64]bitset
	numESIDs int

	// params marks the selected device-state parameter fields.
	params bitset

	// Trained-edge table: edgeFrom/edgeTo[e] are the endpoints of edge
	// slot e. Runtime coverage maps (internal/obs/coverage) index their
	// per-edge counters by these slots.
	edgeFrom []int32
	edgeTo   []int32

	// visits[id] is block id's training visit count, the learn-time
	// coverage baseline recorded at Seal.
	visits []uint64

	// threaded is the compiled threaded-code stream (threaded.go), lowered
	// from the final sealed structures at Seal time. It shares the sealed
	// spec's immutability contract and travels with it through RCU
	// hot-swaps as part of the published spec-version object.
	threaded *ThreadedCode

	// defAssigned records that the program passed the definitely-assigned
	// temp analysis (ir.DefiniteTemps) and that every frame entry point —
	// the spec entry and all call entries — is its handler's block 0, the
	// analysis' entry assumption. When set, a checker's frame push may
	// skip zeroing the temp and flag banks: no path can read a previous
	// round's residue.
	defAssigned bool
}

// Seal lowers the specification into its dense runtime form. The result
// shares the device program (and the ir.Term pointers inside it) with the
// spec but copies everything else; later mutation of the Spec does not
// affect a sealed snapshot.
func (s *Spec) Seal() *SealedSpec {
	ss := &SealedSpec{
		Device:   s.Device,
		Entry:    s.Entry,
		prog:     s.prog,
		blocks:   make([]SealedBlock, len(s.Blocks)),
		numESIDs: len(s.Blocks),
		params:   newBitset(len(s.prog.Fields)),
	}

	// DSOD arena: count, then copy. Ops are flattened by value (with their
	// check metadata) in execution order, so a simulated round walks one
	// contiguous array instead of hopping through the program's per-block
	// op slices.
	nOps, nCases := 0, 0
	for _, b := range s.Blocks {
		if b == nil {
			continue
		}
		nOps += len(b.DSOD)
		if b.NBTD != nil && len(b.NBTD.CaseNext) <= caseMapThreshold {
			nCases += len(b.NBTD.CaseNext)
		}
	}
	ss.dsod = make([]SealedOp, 0, nOps)
	ss.cases = make([]SealedCase, 0, nCases)
	ss.visits = make([]uint64, len(s.Blocks))

	// addEdge allocates a trained-edge coverage slot from -> to.
	addEdge := func(from int, to int32) int32 {
		e := int32(len(ss.edgeFrom))
		ss.edgeFrom = append(ss.edgeFrom, int32(from))
		ss.edgeTo = append(ss.edgeTo, to)
		return e
	}

	for id, b := range s.Blocks {
		sb := &ss.blocks[id]
		sb.NextEdge = NoEdge
		sb.TakenEdge = NoEdge
		sb.NotTakenEdge = NoEdge
		sb.EdgeBase = NoEdge
		if b == nil {
			// Tombstone for a reduced-away block.
			sb.Next = NoBlock
			sb.TakenNext = NoBlock
			sb.NotTakenNext = NoBlock
			continue
		}
		sb.Live = true
		ss.visits[id] = uint64(b.Visits)
		sb.Kind = b.Kind
		sb.Returns = b.Returns
		sb.Halts = b.Halts
		sb.Ref = b.Ref
		sb.Next = int32(b.Next)
		sb.NumTemps = int32(s.prog.Handlers[b.Ref.Handler].NumTemps)

		sb.DSODStart = int32(len(ss.dsod))
		for _, d := range b.DSOD {
			ss.dsod = append(ss.dsod, SealedOp{Op: *d.Op, Sync: d.Sync, ParamIndexed: d.ParamIndexed})
		}
		sb.DSODEnd = int32(len(ss.dsod))

		sb.TakenNext = NoBlock
		sb.NotTakenNext = NoBlock
		if n := b.NBTD; n != nil {
			sb.HasNBTD = true
			sb.TermKind = n.Kind
			sb.Term = n.Term
			sb.TakenSeen = n.TakenSeen
			sb.NotTakenSeen = n.NotTakenSeen
			sb.TakenNext = int32(n.TakenNext)
			sb.NotTakenNext = int32(n.NotTakenNext)
			if n.TakenSeen && n.TakenNext != NoBlock {
				sb.TakenEdge = addEdge(id, sb.TakenNext)
			}
			if n.NotTakenSeen && n.NotTakenNext != NoBlock {
				sb.NotTakenEdge = addEdge(id, sb.NotTakenNext)
			}
			switch {
			case len(n.CaseNext) > caseMapThreshold:
				sb.CaseMap = make(map[uint64]int32, len(n.CaseNext))
				sb.CaseEdges = make(map[uint64]int32, len(n.CaseNext))
				// Allocate the fallback's edge slots in selector order so
				// sealing the same spec twice yields identical slot layouts.
				keys := make([]uint64, 0, len(n.CaseNext))
				for k := range n.CaseNext {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
				for _, k := range keys {
					next := int32(n.CaseNext[k])
					sb.CaseMap[k] = next
					sb.CaseEdges[k] = addEdge(id, next)
				}
			case len(n.CaseNext) > 0:
				sb.CaseStart = int32(len(ss.cases))
				for k, next := range n.CaseNext {
					ss.cases = append(ss.cases, SealedCase{K: k, Next: int32(next)})
				}
				sb.CaseEnd = int32(len(ss.cases))
				run := ss.cases[sb.CaseStart:sb.CaseEnd]
				sort.Slice(run, func(i, j int) bool { return run[i].K < run[j].K })
				// Edge slots for the sorted run are contiguous: arm i's slot
				// is EdgeBase + i, so selector resolution yields the edge for
				// free (see CaseNextEdge).
				sb.EdgeBase = int32(len(ss.edgeFrom))
				for _, c := range run {
					addEdge(id, c.Next)
				}
			}
		} else if !b.Returns && !b.Halts && b.Next != NoBlock {
			sb.NextEdge = addEdge(id, sb.Next)
		}
	}

	ss.handlerTemps = make([]int32, len(s.prog.Handlers))
	for h := range s.prog.Handlers {
		ss.handlerTemps[h] = int32(s.prog.Handlers[h].NumTemps)
	}

	// byRef -> dense per-handler id arrays.
	ss.blockIDs = make([][]int32, len(s.prog.Handlers))
	for h := range s.prog.Handlers {
		ids := make([]int32, len(s.prog.Handlers[h].Blocks))
		for i := range ids {
			ids[i] = NoBlock
		}
		ss.blockIDs[h] = ids
	}
	for ref, id := range s.byRef {
		ss.blockIDs[ref.Handler][ref.Block] = int32(id)
	}

	// Indirect-jump targets -> per-field sorted slices.
	ss.indirect = make([][]uint64, len(s.prog.Fields))
	for field, set := range s.IndirectTargets {
		if field < 0 || field >= len(ss.indirect) {
			continue
		}
		targets := make([]uint64, 0, len(set))
		for t := range set {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		ss.indirect[field] = targets
	}

	// Command access table -> bitsets.
	ss.global = newBitset(len(s.Blocks))
	for b, ok := range s.CmdTable.Global {
		if ok {
			ss.global.set(b)
		}
	}
	if len(s.CmdTable.Access) > cmdMapThreshold {
		ss.cmdMap = make(map[uint64]bitset, len(s.CmdTable.Access))
		for cmd, set := range s.CmdTable.Access {
			ss.cmdMap[cmd] = sealAccessVec(set, len(s.Blocks))
		}
	} else {
		ss.cmds = make([]uint64, 0, len(s.CmdTable.Access))
		for cmd := range s.CmdTable.Access {
			ss.cmds = append(ss.cmds, cmd)
		}
		sort.Slice(ss.cmds, func(i, j int) bool { return ss.cmds[i] < ss.cmds[j] })
		ss.cmdVecs = make([]bitset, len(ss.cmds))
		for i, cmd := range ss.cmds {
			ss.cmdVecs[i] = sealAccessVec(s.CmdTable.Access[cmd], len(s.Blocks))
		}
	}

	// Parameter selection -> field bitset.
	for _, p := range s.Params.Params {
		if p.Field >= 0 && p.Field < len(s.prog.Fields) {
			ss.params.set(p.Field)
		}
	}
	if err := ss.CheckInvariants(); err != nil {
		// A violation here is a sealing bug, not a property of the learned
		// spec: the mutable Spec validated its own structure when built.
		panic("core: Seal produced an inconsistent sealed spec: " + err.Error())
	}
	// Lower the verified sealed form into its threaded-code stream; the
	// invariants above are exactly what the lowering pass dereferences.
	if ss.Entry >= 0 && ss.Entry < len(ss.blocks) && ss.blocks[ss.Entry].Ref.Block == 0 {
		ss.defAssigned = s.prog.DefiniteTemps()
	}
	ss.threaded = ss.lowerThreaded()
	return ss
}

// CheckInvariants verifies the structural invariants the concurrent check
// path relies on when it dereferences sealed data without revalidation:
//
//   - every live block's DSOD range lies inside the op arena, with
//     start <= end;
//   - every case run lies inside the case arena and is strictly sorted by
//     selector (binary search correctness);
//   - every successor id (Next, TakenNext, NotTakenNext, case targets,
//     CaseMap targets) is NoBlock or a valid ES id;
//   - Entry is a live block id;
//   - the handler/block id table maps only to NoBlock or valid ES ids and
//     covers every handler;
//   - per-field indirect target slices are sorted (binary search
//     correctness);
//   - the trained-edge table is well-formed: edgeFrom/edgeTo are the same
//     length, endpoints are valid ES ids, every per-block edge slot
//     (NextEdge, TakenEdge, NotTakenEdge, case-run and case-map slots) is
//     NoEdge or in range, and each slot's recorded source is its block.
//
// Seal calls this and panics on violation, so a SealedSpec in circulation
// always satisfies these; the method is exported for tests and for
// auditing specs deserialized or constructed by other means.
func (s *SealedSpec) CheckInvariants() error {
	checkSucc := func(id int32, what string, block int) error {
		if id != NoBlock && (id < 0 || int(id) >= len(s.blocks)) {
			return fmt.Errorf("block %d: %s id %d out of range [0,%d)", block, what, id, len(s.blocks))
		}
		return nil
	}
	if s.Entry < 0 || s.Entry >= len(s.blocks) || !s.blocks[s.Entry].Live {
		return fmt.Errorf("entry id %d is not a live block", s.Entry)
	}
	for id := range s.blocks {
		b := &s.blocks[id]
		if !b.Live {
			continue
		}
		if b.DSODStart < 0 || b.DSODStart > b.DSODEnd || int(b.DSODEnd) > len(s.dsod) {
			return fmt.Errorf("block %d: DSOD range [%d,%d) outside op arena of %d", id, b.DSODStart, b.DSODEnd, len(s.dsod))
		}
		if b.CaseStart < 0 || b.CaseStart > b.CaseEnd || int(b.CaseEnd) > len(s.cases) {
			return fmt.Errorf("block %d: case range [%d,%d) outside case arena of %d", id, b.CaseStart, b.CaseEnd, len(s.cases))
		}
		for i := int(b.CaseStart) + 1; i < int(b.CaseEnd); i++ {
			if s.cases[i-1].K >= s.cases[i].K {
				return fmt.Errorf("block %d: case run not strictly sorted at %d (%d >= %d)", id, i, s.cases[i-1].K, s.cases[i].K)
			}
		}
		for i := int(b.CaseStart); i < int(b.CaseEnd); i++ {
			if err := checkSucc(s.cases[i].Next, "case target", id); err != nil {
				return err
			}
		}
		for _, next := range b.CaseMap {
			if err := checkSucc(next, "case-map target", id); err != nil {
				return err
			}
		}
		if err := checkSucc(b.Next, "Next", id); err != nil {
			return err
		}
		if err := checkSucc(b.TakenNext, "TakenNext", id); err != nil {
			return err
		}
		if err := checkSucc(b.NotTakenNext, "NotTakenNext", id); err != nil {
			return err
		}
		if b.Ref.Handler < 0 || b.Ref.Handler >= len(s.handlerTemps) {
			return fmt.Errorf("block %d: handler ref %d out of range", id, b.Ref.Handler)
		}
		checkEdge := func(e int32, what string) error {
			if e == NoEdge {
				return nil
			}
			if e < 0 || int(e) >= len(s.edgeFrom) {
				return fmt.Errorf("block %d: %s edge slot %d out of range [0,%d)", id, what, e, len(s.edgeFrom))
			}
			if int(s.edgeFrom[e]) != id {
				return fmt.Errorf("block %d: %s edge slot %d recorded for block %d", id, what, e, s.edgeFrom[e])
			}
			return nil
		}
		if err := checkEdge(b.NextEdge, "Next"); err != nil {
			return err
		}
		if err := checkEdge(b.TakenEdge, "Taken"); err != nil {
			return err
		}
		if err := checkEdge(b.NotTakenEdge, "NotTaken"); err != nil {
			return err
		}
		if b.EdgeBase != NoEdge {
			n := int(b.CaseEnd - b.CaseStart)
			if b.EdgeBase < 0 || int(b.EdgeBase)+n > len(s.edgeFrom) {
				return fmt.Errorf("block %d: case edge run [%d,%d) outside edge table of %d", id, b.EdgeBase, int(b.EdgeBase)+n, len(s.edgeFrom))
			}
			for i := 0; i < n; i++ {
				if int(s.edgeFrom[int(b.EdgeBase)+i]) != id {
					return fmt.Errorf("block %d: case edge slot %d recorded for block %d", id, int(b.EdgeBase)+i, s.edgeFrom[int(b.EdgeBase)+i])
				}
				if s.edgeTo[int(b.EdgeBase)+i] != s.cases[int(b.CaseStart)+i].Next {
					return fmt.Errorf("block %d: case edge slot %d target mismatch", id, int(b.EdgeBase)+i)
				}
			}
		}
		for sel, e := range b.CaseEdges {
			if err := checkEdge(e, fmt.Sprintf("case %#x", sel)); err != nil {
				return err
			}
		}
	}
	if len(s.edgeFrom) != len(s.edgeTo) {
		return fmt.Errorf("edge table: %d sources vs %d targets", len(s.edgeFrom), len(s.edgeTo))
	}
	for e := range s.edgeFrom {
		if from := s.edgeFrom[e]; from < 0 || int(from) >= len(s.blocks) {
			return fmt.Errorf("edge %d: source %d out of range", e, from)
		}
		if to := s.edgeTo[e]; to < 0 || int(to) >= len(s.blocks) {
			return fmt.Errorf("edge %d: target %d out of range", e, to)
		}
	}
	if len(s.visits) != len(s.blocks) {
		return fmt.Errorf("visit baseline covers %d blocks, spec has %d", len(s.visits), len(s.blocks))
	}
	if len(s.blockIDs) != len(s.prog.Handlers) {
		return fmt.Errorf("id table covers %d handlers, program has %d", len(s.blockIDs), len(s.prog.Handlers))
	}
	for h, ids := range s.blockIDs {
		for blk, id := range ids {
			if id != NoBlock && (id < 0 || int(id) >= len(s.blocks)) {
				return fmt.Errorf("id table (%d,%d): ES id %d out of range", h, blk, id)
			}
		}
	}
	for field, targets := range s.indirect {
		for i := 1; i < len(targets); i++ {
			if targets[i-1] >= targets[i] {
				return fmt.Errorf("field %d: indirect targets not strictly sorted at %d", field, i)
			}
		}
	}
	return nil
}

func sealAccessVec(set map[int]bool, n int) bitset {
	v := newBitset(n)
	for b, ok := range set {
		if ok && b >= 0 && b < n {
			v.set(b)
		}
	}
	return v
}

// Program returns the device program the sealed spec runs against.
func (s *SealedSpec) Program() *ir.Program { return s.prog }

// NumBlocks returns the ES id space size (including tombstones).
func (s *SealedSpec) NumBlocks() int { return len(s.blocks) }

// Block returns the sealed block by id, or nil for out-of-range ids and
// tombstones (reduced-away blocks): the dangling-successor cases.
func (s *SealedSpec) Block(id int) *SealedBlock {
	if id < 0 || id >= len(s.blocks) || !s.blocks[id].Live {
		return nil
	}
	return &s.blocks[id]
}

// DSOD returns the block's op range inside the contiguous arena.
func (s *SealedSpec) DSOD(b *SealedBlock) []SealedOp {
	return s.dsod[b.DSODStart:b.DSODEnd]
}

// BlockID returns the ES id for original block (handler, block), or
// NoBlock. This is the sealed replacement for Spec.BlockFor.
func (s *SealedSpec) BlockID(handler, block int) int {
	if handler < 0 || handler >= len(s.blockIDs) {
		return NoBlock
	}
	ids := s.blockIDs[handler]
	if block < 0 || block >= len(ids) {
		return NoBlock
	}
	return int(ids[block])
}

// HandlerEntry returns the ES id of the handler's entry block, or NoBlock.
func (s *SealedSpec) HandlerEntry(handler int) int {
	return s.BlockID(handler, 0)
}

// TempsDefinitelyAssigned reports that every temp read in the program
// is preceded by a write on all structural paths from its frame entry,
// so a simulator's frame push may skip zeroing its temp and flag banks.
func (s *SealedSpec) TempsDefinitelyAssigned() bool { return s.defAssigned }

// HandlerTemps returns handler h's temp-bank size (0 when out of range).
func (s *SealedSpec) HandlerTemps(h int) int {
	if h < 0 || h >= len(s.handlerTemps) {
		return 0
	}
	return int(s.handlerTemps[h])
}

// CaseNext resolves a switch selector against the block's lowered arms.
func (s *SealedSpec) CaseNext(b *SealedBlock, sel uint64) (int, bool) {
	next, _, ok := s.CaseNextEdge(b, sel)
	return next, ok
}

// CaseNextEdge resolves a switch selector to its successor and the arm's
// trained-edge coverage slot. The slot rides along for free: in the
// sorted run it is EdgeBase plus the arm's run offset, in the map
// fallback a second lookup only on the (rare) large-switch path.
func (s *SealedSpec) CaseNextEdge(b *SealedBlock, sel uint64) (next int, edge int32, ok bool) {
	if b.CaseMap != nil {
		n, ok := b.CaseMap[sel]
		if !ok {
			return NoBlock, NoEdge, false
		}
		e, eok := b.CaseEdges[sel]
		if !eok {
			e = NoEdge
		}
		return int(n), e, true
	}
	lo, hi := int(b.CaseStart), int(b.CaseEnd)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c := &s.cases[mid]; c.K < sel {
			lo = mid + 1
		} else if c.K > sel {
			hi = mid
		} else {
			edge = NoEdge
			if b.EdgeBase != NoEdge {
				edge = b.EdgeBase + int32(mid-int(b.CaseStart))
			}
			return int(c.Next), edge, true
		}
	}
	return NoBlock, NoEdge, false
}

// NumEdges returns the trained-edge slot space size.
func (s *SealedSpec) NumEdges() int { return len(s.edgeFrom) }

// EdgeEndpoints returns edge slot e's source and target ES ids.
func (s *SealedSpec) EdgeEndpoints(e int) (from, to int) {
	return int(s.edgeFrom[e]), int(s.edgeTo[e])
}

// TrainVisits returns block id's training visit count (the learn-time
// coverage baseline), or 0 when out of range.
func (s *SealedSpec) TrainVisits(id int) uint64 {
	if id < 0 || id >= len(s.visits) {
		return 0
	}
	return s.visits[id]
}

// LegitimateTarget reports whether storing target in the function-pointer
// field was observed during training (sorted-slice binary search).
func (s *SealedSpec) LegitimateTarget(field int, target uint64) bool {
	if field < 0 || field >= len(s.indirect) {
		return false
	}
	set := s.indirect[field]
	lo, hi := 0, len(set)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if set[mid] < target {
			lo = mid + 1
		} else if set[mid] > target {
			hi = mid
		} else {
			return true
		}
	}
	return false
}

// Accessible reports whether a block may execute under the active command,
// mirroring CmdAccessTable.Accessible over the sealed bitsets.
func (s *SealedSpec) Accessible(cmd uint64, active bool, block int) bool {
	if block < 0 || block >= s.numESIDs {
		return false
	}
	if s.global.get(block) {
		return true
	}
	if !active {
		return false
	}
	if s.cmdMap != nil {
		v, ok := s.cmdMap[cmd]
		return ok && v.get(block)
	}
	lo, hi := 0, len(s.cmds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.cmds[mid] < cmd {
			lo = mid + 1
		} else if s.cmds[mid] > cmd {
			hi = mid
		} else {
			return s.cmdVecs[mid].get(block)
		}
	}
	return false
}

// ParamField reports whether the field is a selected device-state
// parameter (the sealed replacement for Selection.Contains).
func (s *SealedSpec) ParamField(field int) bool {
	return field >= 0 && s.params.get(field)
}
