package core

import (
	"sort"

	"sedspec/internal/obs/coverage"
)

// CoverageProfile relates a runtime coverage snapshot back to the sealed
// structure: every live block with its training-visit baseline and total
// runtime hits, every trained edge with its endpoints, kind, and
// selector, and the learned command set. A nil snapshot (or one sized for
// a different generation) yields a structural profile with zero runtime
// counts.
//
// A block's runtime hits are its direct hits (round entries, call
// descents, static switch fallbacks) plus every trained edge landing on
// it — the checker counts each transition exactly once, on the edge when
// one is trained.
func (s *SealedSpec) CoverageProfile(gen uint64, snap *coverage.Snapshot) *coverage.Profile {
	if snap == nil || len(snap.Blocks) != len(s.blocks) || len(snap.Edges) != len(s.edgeFrom) {
		snap = &coverage.Snapshot{
			Blocks: make([]uint64, len(s.blocks)),
			Edges:  make([]uint64, len(s.edgeFrom)),
		}
	}
	blockHits := make([]uint64, len(s.blocks))
	copy(blockHits, snap.Blocks)
	for e, to := range s.edgeTo {
		blockHits[to] += snap.Edges[e]
	}

	rep := &s.Threaded().Report
	p := &coverage.Profile{
		Device:     s.Device,
		Generation: gen,
		Rounds:     blockHits[s.Entry],
		Lowering: &coverage.LoweringCov{
			Ops:        rep.Ops,
			Instrs:     rep.Instrs,
			Elided:     rep.Elided,
			FusedPairs: rep.FusedPairs(),
			FusedOps:   rep.FusedOps(),
			Density:    rep.FusedDensity(),
			Pairs:      rep.PatternCounts(),
		},
	}

	refOf := func(id int32) (handler, block int) {
		if b := s.Block(int(id)); b != nil {
			return b.Ref.Handler, b.Ref.Block
		}
		// Tombstone target: report the raw ES id under a synthetic
		// handler so the edge stays visible in the profile.
		return -1, int(id)
	}
	edge := func(from *SealedBlock, e int32, kind string, sel uint64) coverage.EdgeCov {
		th, tb := refOf(s.edgeTo[e])
		return coverage.EdgeCov{
			FromHandler: from.Ref.Handler,
			FromBlock:   from.Ref.Block,
			ToHandler:   th,
			ToBlock:     tb,
			Kind:        kind,
			Sel:         sel,
			Hits:        snap.Edges[e],
		}
	}

	for id := range s.blocks {
		b := &s.blocks[id]
		if !b.Live {
			continue
		}
		p.Blocks = append(p.Blocks, coverage.BlockCov{
			ID:          id,
			Handler:     b.Ref.Handler,
			Block:       b.Ref.Block,
			Kind:        b.Kind.String(),
			TrainVisits: s.visits[id],
			Hits:        blockHits[id],
		})
		if b.NextEdge != NoEdge {
			p.Edges = append(p.Edges, edge(b, b.NextEdge, "seq", 0))
		}
		if b.TakenEdge != NoEdge {
			p.Edges = append(p.Edges, edge(b, b.TakenEdge, "taken", 0))
		}
		if b.NotTakenEdge != NoEdge {
			p.Edges = append(p.Edges, edge(b, b.NotTakenEdge, "not-taken", 0))
		}
		if b.EdgeBase != NoEdge {
			for i := int(b.CaseStart); i < int(b.CaseEnd); i++ {
				c := s.cases[i]
				e := b.EdgeBase + int32(i-int(b.CaseStart))
				p.Edges = append(p.Edges, edge(b, e, "case", c.K))
			}
		}
		if len(b.CaseEdges) > 0 {
			sels := make([]uint64, 0, len(b.CaseEdges))
			for sel := range b.CaseEdges {
				sels = append(sels, sel)
			}
			sort.Slice(sels, func(i, j int) bool { return sels[i] < sels[j] })
			for _, sel := range sels {
				p.Edges = append(p.Edges, edge(b, b.CaseEdges[sel], "case", sel))
			}
		}
	}

	if s.cmdMap != nil {
		for cmd := range s.cmdMap {
			p.Commands = append(p.Commands, cmd)
		}
		sort.Slice(p.Commands, func(i, j int) bool { return p.Commands[i] < p.Commands[j] })
	} else {
		p.Commands = append(p.Commands, s.cmds...)
	}
	return p
}
