package core_test

import (
	"bytes"
	"strings"
	"testing"

	"sedspec/internal/analysis"
	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
	"sedspec/internal/itccfg"
	"sedspec/internal/trace"
)

// buildReducible constructs a program whose benign runs exercise the two
// reduction rules: a pass-through block with no state effect (compressed
// away) and a conditional whose arms converge on the same ES block after
// elision (the branch is merged out).
func buildReducible(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("reducible")
	mode := b.Int("mode", ir.W8, ir.HWRegister())
	count := b.Int("count", ir.W16)
	buf := b.Buf("data", 8)

	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	v := e.IOIn(ir.W8, "v = ioread8()")
	e.Store(mode, v, "s->mode = v")
	m := e.Load(mode, "m = s->mode")
	two := e.Const(2, "2")
	// Both arms perform only logging (dropped by the slice), then
	// converge: after compression the branch merges away.
	e.Branch(m, ir.RelLT, two, ir.W8, false, "if (m < 2)", "log_low", "log_high")

	ll := h.Block("log_low")
	n1 := ll.Const(16, "16")
	ll.Work(n1, "trace_low()")
	ll.Jump("hop", "goto hop")
	lh := h.Block("log_high")
	n2 := lh.Const(16, "16")
	lh.Work(n2, "trace_high()")
	lh.Jump("hop", "goto hop")

	// A pure pass-through block: no kept ops, unconditional jump.
	hop := h.Block("hop")
	hop.Jump("bump", "goto bump")

	bu := h.Block("bump")
	c := bu.Load(count, "c = s->count")
	one := bu.Const(1, "1")
	c2 := bu.Arith(ir.ALUAdd, c, one, ir.W16, false, "c + 1")
	bu.Store(count, c2, "s->count = c + 1")
	idx := bu.Const(0, "0")
	bu.BufStore(buf, idx, c2, ir.W16, false, "s->data[0] = c")
	bu.Jump("out", "goto out")

	h.Block("out").Exit().Halt("return")

	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// learn runs the full collection pipeline by hand.
func learn(t testing.TB, prog *ir.Program, reqs []*interp.Request, opts core.BuildOpts) *core.Spec {
	t.Helper()
	st := interp.NewState(prog)
	in := interp.New(prog, st, nil)
	col := trace.NewCollector(trace.DeviceConfig(prog))
	in.SetTracer(col)
	for _, r := range reqs {
		r.Rewind()
		if res := in.Dispatch(r); res.Fault != nil {
			t.Fatal(res.Fault)
		}
	}
	in.SetTracer(nil)
	runs, err := trace.Decode(prog, col.Packets())
	if err != nil {
		t.Fatal(err)
	}
	g := itccfg.New(prog)
	for _, r := range runs {
		g.AddRun(r)
	}
	params := analysis.SelectParams(g)

	st.Reset()
	rec := analysis.NewRecorder(prog.Name)
	in.SetObserver(rec)
	in.SetWatch(params.WatchList())
	for _, r := range reqs {
		r.Rewind()
		rec.Begin(r)
		res := in.Dispatch(r)
		rec.End(res)
		if res.Fault != nil {
			t.Fatal(res.Fault)
		}
	}
	in.SetObserver(nil)

	spec, err := core.BuildWith(prog, params, rec.Log(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func reqs() []*interp.Request {
	return []*interp.Request{
		interp.NewWrite(interp.SpacePIO, 0, []byte{0}), // low arm
		interp.NewWrite(interp.SpacePIO, 0, []byte{5}), // high arm
		interp.NewWrite(interp.SpacePIO, 0, []byte{1}),
	}
}

func TestReductionCompressesAndMerges(t *testing.T) {
	prog := buildReducible(t)
	spec := learn(t, prog, reqs(), core.BuildOpts{})
	if spec.Stats.CompressedBlocks == 0 {
		t.Error("the pass-through chain should be compressed")
	}
	if spec.Stats.MergedBranches == 0 {
		t.Error("the converging conditional should be merged")
	}
	if spec.Stats.ESBlocks >= spec.Stats.ObservedBlocks {
		t.Errorf("reduction did not shrink the spec: %d ES of %d observed",
			spec.Stats.ESBlocks, spec.Stats.ObservedBlocks)
	}
	// Compressed blocks still count as covered.
	for bi := range prog.Handlers[0].Blocks {
		ref := ir.BlockRef{Handler: 0, Block: bi}
		if !spec.Covers(ref) {
			t.Errorf("block %d lost coverage after reduction", bi)
		}
	}
}

func TestDisableReductionKeepsEverything(t *testing.T) {
	prog := buildReducible(t)
	spec := learn(t, prog, reqs(), core.BuildOpts{DisableReduction: true})
	if spec.Stats.CompressedBlocks != 0 || spec.Stats.MergedBranches != 0 {
		t.Errorf("reduction ran despite DisableReduction: %+v", spec.Stats)
	}
	if spec.Stats.ESBlocks != spec.Stats.ObservedBlocks {
		t.Errorf("unreduced spec should keep all %d blocks, has %d",
			spec.Stats.ObservedBlocks, spec.Stats.ESBlocks)
	}
}

func TestNoTrainingData(t *testing.T) {
	prog := buildReducible(t)
	params := analysis.NewSelection(prog, nil)
	_, err := core.Build(prog, params, &analysis.Log{Device: prog.Name})
	if err == nil || !strings.Contains(err.Error(), "no usable training rounds") {
		t.Errorf("err = %v, want ErrNoTraining", err)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	prog := buildReducible(t)
	spec := learn(t, prog, reqs(), core.BuildOpts{})

	var buf bytes.Buffer
	if err := spec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := core.Load(prog, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dot() != spec.Dot() {
		t.Error("ES-CFG structure changed across the JSON round trip")
	}
	if back.Stats != spec.Stats {
		t.Errorf("stats changed: %+v vs %+v", back.Stats, spec.Stats)
	}
	if back.Entry != spec.Entry {
		t.Errorf("entry changed: %d vs %d", back.Entry, spec.Entry)
	}
	if len(back.Params.Params) != len(spec.Params.Params) {
		t.Error("params changed across round trip")
	}
}

func TestLoadRejectsWrongDevice(t *testing.T) {
	prog := buildReducible(t)
	spec := learn(t, prog, reqs(), core.BuildOpts{})
	var buf bytes.Buffer
	if err := spec.Save(&buf); err != nil {
		t.Fatal(err)
	}

	b2 := ir.NewBuilder("other")
	h := b2.Handler("dispatch")
	h.Block("e").Entry().Halt("return")
	other, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Load(other, &buf); err == nil {
		t.Error("loading a spec against the wrong device must fail")
	}
}

func TestLoadRejectsBadRefs(t *testing.T) {
	prog := buildReducible(t)
	bad := `{"device":"reducible","entry":0,"params":[],` +
		`"blocks":[{"id":0,"ref":{"Handler":0,"Block":0},"kind":1,` +
		`"dsod":[{"ref":{"handler":99,"block":0,"op":0}}],"next":-1}],` +
		`"byRef":[]}`
	if _, err := core.Load(prog, strings.NewReader(bad)); err == nil {
		t.Error("out-of-range op ref must fail to load")
	}
}

func TestCmdAccessTable(t *testing.T) {
	tbl := &core.CmdAccessTable{
		Access: map[uint64]map[int]bool{7: {3: true}},
		Global: map[int]bool{1: true},
	}
	if !tbl.Accessible(7, true, 3) {
		t.Error("block 3 should be accessible under command 7")
	}
	if tbl.Accessible(7, true, 4) {
		t.Error("block 4 should not be accessible under command 7")
	}
	if !tbl.Accessible(9, false, 1) {
		t.Error("global blocks are accessible outside command windows")
	}
	if tbl.Accessible(9, true, 3) {
		t.Error("command 9 has no access vector")
	}
	if tbl.Commands() != 1 {
		t.Errorf("Commands = %d, want 1", tbl.Commands())
	}
}
