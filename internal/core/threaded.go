package core

import (
	"fmt"

	"sedspec/internal/ir"
)

// Threaded-code lowering: the third and lowest specification form.
//
// Seal flattens the mutable Spec into the dense SealedSpec; lowerThreaded
// flattens the SealedSpec one level further, into a single contiguous
// instruction stream the checker executes by direct dispatch (one indirect
// call per instruction) instead of re-decoding op codes through a switch.
// Three properties drive the layout:
//
//   - operands are pre-flattened: every hot field the handler needs (temp
//     indices, immediates, widths, resolved successor pcs, precomputed
//     call-frame sizes) lives in the instruction record itself, int32-sized
//     where possible, so a handler never chases the program or the sealed
//     block tables on the fast path;
//   - a peephole fuser merges the dominant check-strategy op pairs
//     (load+arith, const+arith, bufload+store, and a trailing compare
//     feeding a conditional branch) into single fused instructions, halving
//     dispatches on those sequences;
//   - step accounting is batched: each instruction carries the walker-step
//     count accumulated since the last flush site (block entry or call), so
//     the interpreter updates its step counter once per block transition
//     rather than once per op, while anomalies still report the exact
//     per-op step totals the sealed walker produces.
//
// A ThreadedCode is built inside Seal and stored on the SealedSpec, so it
// shares the sealed form's immutability contract: compiled streams are part
// of the spec-version object an RCU hot-swap publishes atomically, and
// sessions adopting a new version pick up its stream at a round boundary.

// TKind enumerates threaded-code instruction kinds. The checker maps each
// kind to a handler function at engine construction.
type TKind uint8

const (
	// TNop occupies a step (opaque calls, unknown ops) with no effect.
	TNop TKind = iota
	// Plain op instructions, one per SealedOp.
	TConst
	TLoad
	TLoadFunc
	TArith
	TStore
	TStoreFunc
	TBufLoad
	TBufStore
	TIOToBuf
	TDMAToBuf
	TDMAFromBuf
	TDMARead
	TDMAWrite
	TIOIn
	TIOAddr
	TIOLen
	TIOIsWrite
	TEnvRead
	TCall
	TCallPtr
	// Fused op pairs (the peephole patterns).
	TLoadArith
	TConstArith
	TBufLoadStore
	TConstStore
	TArithStore
	TLoadConst
	TConstConst
	TConstBufStore
	TBufStoreConst
	TStoreConst
	TStoreLoad
	// Block terminators, one per live block; TBranchArith additionally
	// absorbs a trailing compare that feeds the branch condition.
	THalt
	TReturn
	TNext
	TNoSucc
	TBranch
	TBranchArith
	TSwitch
	// TDangling is the shared pc-0 instruction tombstone successors resolve
	// to; executing it raises the dangling-successor anomaly.
	TDangling

	numTKinds
)

var tkindNames = [numTKinds]string{
	TNop: "nop", TConst: "const", TLoad: "load", TLoadFunc: "loadfunc",
	TArith: "arith", TStore: "store", TStoreFunc: "storefunc",
	TBufLoad: "bufload", TBufStore: "bufstore", TIOToBuf: "iotobuf",
	TDMAToBuf: "dmatobuf", TDMAFromBuf: "dmafrombuf", TDMARead: "dmaread",
	TDMAWrite: "dmawrite", TIOIn: "ioin", TIOAddr: "ioaddr", TIOLen: "iolen",
	TIOIsWrite: "ioiswrite", TEnvRead: "envread", TCall: "call",
	TCallPtr: "callptr", TLoadArith: "load+arith", TConstArith: "const+arith",
	TBufLoadStore: "bufload+store", TConstStore: "const+store",
	TArithStore: "arith+store", TLoadConst: "load+const",
	TConstConst: "const+const", TConstBufStore: "const+bufstore",
	TBufStoreConst: "bufstore+const", TStoreConst: "store+const",
	TStoreLoad: "store+load", THalt: "halt", TReturn: "return",
	TNext: "next", TNoSucc: "nosucc", TBranch: "branch",
	TBranchArith: "arith+branch", TSwitch: "switch", TDangling: "dangling",
}

func (k TKind) String() string {
	if int(k) < len(tkindNames) && tkindNames[k] != "" {
		return tkindNames[k]
	}
	return fmt.Sprintf("TKind(%d)", uint8(k))
}

// TOp is one threaded-code instruction: the operands of one SealedOp (or a
// fused pair, or a block terminator) flattened into immediate fields. The
// primary operand bank (Dst..Signed) carries the first — usually only — op;
// the secondary bank carries a fused pair's second op, and doubles as the
// branch-condition bank for TBranch/TBranchArith. Cold pointers (Op, Op2,
// Blk, Term) are touched only on anomaly and lookup-fallback paths.
type TOp struct {
	Kind TKind
	// StepsAt is the walker-step total accumulated in this block since the
	// last flush site (block entry or call instruction), inclusive of this
	// instruction's op(s). Op instructions flush it only when raising an
	// anomaly; call instructions always flush before descending;
	// terminators flush it for the pre-transition budget check.
	StepsAt uint16

	// Next is the pc of the following instruction in the stream (the
	// fall-through successor inside the block).
	Next int32

	// Primary operand bank.
	Dst, A, B, Src, Idx int32
	Field               int32
	Imm                 uint64
	ALU                 ir.ALU
	Width               ir.Width
	Signed              bool
	// ParamIndexed / IsParam are the pre-resolved check predicates:
	// SealedOp.ParamIndexed for buffer ops, ParamField(Field) for stores.
	ParamIndexed bool
	IsParam      bool

	// Secondary operand bank: a fused pair's second op, or the branch
	// condition (A2 Rel B2 at Width2/Signed2) for TBranch/TBranchArith.
	// TSwitch keeps its selector temp in A2.
	Dst2, A2, B2, Src2, Idx2 int32
	Field2                   int32
	Imm2                     uint64
	ALU2                     ir.ALU
	Width2                   ir.Width
	Signed2                  bool
	Rel                      ir.Rel
	ParamIndexed2            bool
	IsParam2                 bool

	// Preplanned call frame: the callee's entry pc, entry ES id, and
	// temp-bank size, resolved at lowering so a descent does no handler
	// table lookups.
	CalleePC, CalleeID, CalleeTemps int32

	// Terminator plan: resolved successor pcs/ids and trained-edge slots.
	// TBranch uses Tgt* for the taken arm and Tgt2* for the not-taken arm.
	TgtPC, Tgt2PC int32
	TgtID, Tgt2ID int32
	Edge, Edge2   int32
	TakenOK       bool
	NotTakenOK    bool
	CmdEnd        bool
	CmdDecision   bool

	// Cold pointers for anomaly reports and switch fallback resolution.
	Op   *ir.Op
	Op2  *ir.Op
	Blk  *SealedBlock
	Term *ir.Term
}

// ThreadedCode is a sealed spec's compiled instruction stream. Like the
// SealedSpec that owns it, it is immutable after Seal: the checker's
// engines may share one stream across any number of concurrent sessions.
type ThreadedCode struct {
	// Instrs is the contiguous instruction stream. Instrs[0] is the shared
	// TDangling instruction; live blocks follow in ES-id order.
	Instrs []TOp
	// BlockPC maps an ES id to its block's first instruction; tombstones
	// map to DanglingPC.
	BlockPC []int32
	// EntryPC is the spec entry block's first instruction.
	EntryPC int32
	// DanglingPC is the shared TDangling instruction (always 0).
	DanglingPC int32

	Report LoweringReport
}

// LoweringReport summarizes one lowering pass: op and instruction counts,
// elided no-effect ops, and per-pattern fused-pair counts. The
// fusion-coverage test and the coverage profile's fused-density column
// read it.
type LoweringReport struct {
	// Ops counts DSOD ops across live blocks; Instrs counts emitted
	// instructions (including per-block terminators and the shared
	// dangling instruction).
	Ops    int `json:"ops"`
	Instrs int `json:"instrs"`
	// Elided counts no-effect ops (device work, IRQ lines, I/O responses,
	// opaque calls) that emit no instruction at all — batched step
	// accounting folds their walker steps into the following instruction
	// or the terminator.
	Elided int `json:"elided"`
	// Pairs counts fused pairs by pattern name ("const+arith",
	// "arith+branch", ...).
	Pairs map[string]int `json:"pairs"`
}

// FusedPairs is the total number of fused pairs across patterns.
func (r *LoweringReport) FusedPairs() int {
	n := 0
	for _, v := range r.Pairs {
		n += v
	}
	return n
}

// FusedOps is the number of DSOD ops covered by fusion. Pair patterns
// absorb two ops each; arith+branch absorbs one op into the terminator.
func (r *LoweringReport) FusedOps() int {
	return 2*r.FusedPairs() - r.Pairs["arith+branch"]
}

// FusedDensity is the fraction of DSOD ops covered by fusion (0 when the
// spec has no ops).
func (r *LoweringReport) FusedDensity() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.FusedOps()) / float64(r.Ops)
}

// PatternCounts returns a copy of the per-pattern pair counts keyed by
// pattern name, for reports.
func (r *LoweringReport) PatternCounts() map[string]int {
	m := make(map[string]int, len(r.Pairs))
	for k, v := range r.Pairs {
		m[k] = v
	}
	return m
}

// Threaded returns the spec's compiled threaded-code stream. Specs sealed
// by Seal carry one already; for externally constructed sealed specs
// (tests, deserialization) the stream is lowered on demand.
func (s *SealedSpec) Threaded() *ThreadedCode {
	if s.threaded != nil {
		return s.threaded
	}
	return s.lowerThreaded()
}

// tgroup is one planned instruction of a block's op run: the TKind, how
// many DSOD ops it consumes (2 for fused pairs), and how many elided
// no-effect ops precede it (their walker steps fold into this
// instruction's batched count).
type tgroup struct {
	kind  TKind
	n     int
	extra int
	opIdx int32
}

// lowerThreaded compiles the sealed spec into its threaded-code stream.
// Two passes: the first plans each live block's instruction groups (the
// peephole fuser runs here) and assigns block pcs; the second emits
// instructions with successor pcs resolved.
func (s *SealedSpec) lowerThreaded() *ThreadedCode {
	tc := &ThreadedCode{
		BlockPC:    make([]int32, len(s.blocks)),
		DanglingPC: 0,
	}
	r := &tc.Report

	// Pass 1: plan groups per live block, assign pcs. pc 0 is the shared
	// dangling instruction every tombstone id resolves to.
	r.Pairs = make(map[string]int)
	plans := make([][]tgroup, len(s.blocks))
	termFuse := make([]int32, len(s.blocks))
	tailNops := make([]int, len(s.blocks))
	pc := int32(1)
	for id := range s.blocks {
		b := &s.blocks[id]
		termFuse[id] = -1
		if !b.Live {
			tc.BlockPC[id] = tc.DanglingPC
			continue
		}
		dsod := s.dsod[b.DSODStart:b.DSODEnd]
		r.Ops += len(dsod)
		var gs []tgroup
		pending := 0 // elided nops since the last emitted instruction
		for i := 0; i < len(dsod); {
			op := &dsod[i].Op
			if i+1 < len(dsod) {
				if fk, ok := fusePair(op, &dsod[i+1].Op); ok {
					gs = append(gs, tgroup{kind: fk, n: 2, extra: pending, opIdx: int32(i)})
					pending = 0
					r.Pairs[tkindNames[fk]]++
					i += 2
					continue
				}
			}
			if i == len(dsod)-1 && fusesIntoBranch(op, b) {
				termFuse[id] = int32(i)
				r.Pairs[tkindNames[TBranchArith]]++
				i++
				continue
			}
			k := s.opTKind(op)
			if k == TNop {
				// No simulated effect and no possible anomaly: emit nothing.
				// The walker step it would burn folds into the next
				// instruction's (or the terminator's) batched count.
				pending++
				r.Elided++
				i++
				continue
			}
			gs = append(gs, tgroup{kind: k, n: 1, extra: pending, opIdx: int32(i)})
			pending = 0
			i++
		}
		plans[id] = gs
		tailNops[id] = pending
		tc.BlockPC[id] = pc
		pc += int32(len(gs)) + 1 // groups plus the terminator
	}

	// Pass 2: emit.
	instrs := make([]TOp, 0, pc)
	instrs = append(instrs, TOp{Kind: TDangling})
	for id := range s.blocks {
		b := &s.blocks[id]
		if !b.Live {
			continue
		}
		dsod := s.dsod[b.DSODStart:b.DSODEnd]
		stepsSince := 0
		for _, g := range plans[id] {
			d := &dsod[g.opIdx]
			stepsSince += g.extra + g.n
			t := TOp{
				Kind:    g.kind,
				StepsAt: uint16(stepsSince),
				Next:    int32(len(instrs)) + 1,
				Blk:     b,
			}
			s.fillPrimary(&t, d)
			if g.n == 2 {
				s.fillSecond(&t, &dsod[g.opIdx+1])
			}
			switch g.kind {
			case TCall, TCallPtr:
				// Flush site: the descent (or, for TCallPtr, the dynamic
				// decision whether to descend) commits the running count.
				stepsSince = 0
			}
			if g.kind == TCall {
				callee := s.HandlerEntry(d.Op.Handler)
				t.CalleeID = int32(callee)
				t.CalleeTemps = int32(s.HandlerTemps(d.Op.Handler))
				t.CalleePC = tc.BlockPC[callee]
			}
			instrs = append(instrs, t)
		}

		term := TOp{
			Blk:    b,
			Term:   b.Term,
			CmdEnd: b.Kind == ir.KindCmdEnd,
			Edge:   NoEdge,
			Edge2:  NoEdge,
			TgtID:  NoBlock,
			Tgt2ID: NoBlock,
		}
		stepsSince += tailNops[id]
		if fi := termFuse[id]; fi >= 0 {
			stepsSince++
			s.fillPrimary(&term, &dsod[fi])
		}
		term.StepsAt = uint16(stepsSince)
		switch {
		case !b.HasNBTD:
			switch {
			case b.Halts:
				term.Kind = THalt
			case b.Returns:
				term.Kind = TReturn
			case b.Next == NoBlock:
				term.Kind = TNoSucc
			default:
				term.Kind = TNext
				term.TgtID = b.Next
				term.TgtPC = tc.BlockPC[b.Next]
				term.Edge = b.NextEdge
			}
		case b.TermKind == ir.TermBranch:
			term.Kind = TBranch
			if termFuse[id] >= 0 {
				term.Kind = TBranchArith
			}
			t := b.Term
			term.A2, term.B2 = int32(t.A), int32(t.B)
			term.Width2, term.Signed2, term.Rel = t.Width, t.Signed, t.Rel
			term.TakenOK = b.TakenSeen && b.TakenNext != NoBlock
			if term.TakenOK {
				term.TgtID = b.TakenNext
				term.TgtPC = tc.BlockPC[b.TakenNext]
				term.Edge = b.TakenEdge
			}
			term.NotTakenOK = b.NotTakenSeen && b.NotTakenNext != NoBlock
			if term.NotTakenOK {
				term.Tgt2ID = b.NotTakenNext
				term.Tgt2PC = tc.BlockPC[b.NotTakenNext]
				term.Edge2 = b.NotTakenEdge
			}
		case b.TermKind == ir.TermSwitch:
			term.Kind = TSwitch
			term.A2 = int32(b.Term.A)
			term.CmdDecision = b.Kind == ir.KindCmdDecision
		default:
			// The sealed walker cannot follow an NBTD of any other kind
			// either; a spec that produced one would already misbehave
			// there. Fail loudly at lowering instead of at enforcement.
			panic(fmt.Sprintf("core: threaded lowering: block %d has unsupported NBTD terminator %v", id, b.TermKind))
		}
		instrs = append(instrs, term)
	}

	tc.Instrs = instrs
	tc.EntryPC = tc.BlockPC[s.Entry]
	r.Instrs = len(instrs)
	return tc
}

// fusePair reports the fused kind for an adjacent op pair, if the peephole
// patterns cover it. Calls are never part of a pair, so resume pcs always
// land on instruction boundaries, and jump targets always land on block
// starts — fusion never needs a mid-pair entry point.
func fusePair(a, b *ir.Op) (TKind, bool) {
	switch a.Code {
	case ir.OpLoad:
		switch b.Code {
		case ir.OpArith:
			return TLoadArith, true
		case ir.OpConst:
			return TLoadConst, true
		}
	case ir.OpConst:
		switch b.Code {
		case ir.OpArith:
			return TConstArith, true
		case ir.OpStore:
			return TConstStore, true
		case ir.OpBufStore:
			return TConstBufStore, true
		case ir.OpConst:
			return TConstConst, true
		}
	case ir.OpArith:
		if b.Code == ir.OpStore {
			return TArithStore, true
		}
	case ir.OpBufLoad:
		if b.Code == ir.OpStore {
			return TBufLoadStore, true
		}
	case ir.OpBufStore:
		if b.Code == ir.OpConst {
			return TBufStoreConst, true
		}
	case ir.OpStore:
		switch b.Code {
		case ir.OpConst:
			return TStoreConst, true
		case ir.OpLoad:
			return TStoreLoad, true
		}
	}
	return TNop, false
}

// fusesIntoBranch reports whether a block's final unconsumed op is a
// compare-style arith whose result feeds the block's conditional branch —
// the TBranchArith pattern.
func fusesIntoBranch(op *ir.Op, b *SealedBlock) bool {
	return op.Code == ir.OpArith && b.HasNBTD && b.TermKind == ir.TermBranch &&
		b.Term != nil && (b.Term.A == op.Dst || b.Term.B == op.Dst)
}

// opTKind maps a single (unfused) op to its instruction kind. Opaque
// static calls — whose callee the spec never observed — lower to TNop, as
// the walkers skip them while still counting the step.
func (s *SealedSpec) opTKind(op *ir.Op) TKind {
	switch op.Code {
	case ir.OpConst:
		return TConst
	case ir.OpLoad:
		return TLoad
	case ir.OpLoadFunc:
		return TLoadFunc
	case ir.OpArith:
		return TArith
	case ir.OpStore:
		return TStore
	case ir.OpStoreFunc:
		return TStoreFunc
	case ir.OpBufLoad:
		return TBufLoad
	case ir.OpBufStore:
		return TBufStore
	case ir.OpIOToBuf:
		return TIOToBuf
	case ir.OpDMAToBuf:
		return TDMAToBuf
	case ir.OpDMAFromBuf:
		return TDMAFromBuf
	case ir.OpDMARead:
		return TDMARead
	case ir.OpDMAWrite:
		return TDMAWrite
	case ir.OpIOIn:
		return TIOIn
	case ir.OpIOAddr:
		return TIOAddr
	case ir.OpIOLen:
		return TIOLen
	case ir.OpIOIsWrite:
		return TIOIsWrite
	case ir.OpEnvRead:
		return TEnvRead
	case ir.OpCall:
		if s.HandlerEntry(op.Handler) == NoBlock {
			return TNop // opaque: library or unobserved callee
		}
		return TCall
	case ir.OpCallPtr:
		return TCallPtr
	default:
		// Ops the walkers' switches fall through on (OpIOOut, OpIRQRaise,
		// OpIRQLower, OpWork) burn a step with no simulated effect.
		return TNop
	}
}

// fillPrimary flattens an op into the instruction's primary operand bank.
func (s *SealedSpec) fillPrimary(t *TOp, d *SealedOp) {
	op := &d.Op
	t.Op = op
	t.Dst, t.A, t.B = int32(op.Dst), int32(op.A), int32(op.B)
	t.Src, t.Idx = int32(op.Src), int32(op.Idx)
	t.Field = int32(op.Field)
	t.Imm = op.Imm
	t.ALU, t.Width, t.Signed = op.ALU, op.Width, op.Signed
	t.ParamIndexed = d.ParamIndexed
	if op.Code == ir.OpStore {
		t.IsParam = s.ParamField(op.Field)
	}
}

// fillSecond flattens a fused pair's second op into the secondary bank.
func (s *SealedSpec) fillSecond(t *TOp, d *SealedOp) {
	op := &d.Op
	t.Op2 = op
	t.Dst2, t.A2, t.B2 = int32(op.Dst), int32(op.A), int32(op.B)
	t.Src2, t.Idx2 = int32(op.Src), int32(op.Idx)
	t.Field2 = int32(op.Field)
	t.Imm2 = op.Imm
	t.ALU2, t.Width2, t.Signed2 = op.ALU, op.Width, op.Signed
	t.ParamIndexed2 = d.ParamIndexed
	if op.Code == ir.OpStore {
		t.IsParam2 = s.ParamField(op.Field)
	}
}
