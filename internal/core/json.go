package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"sedspec/internal/analysis"
	"sedspec/internal/ir"
)

// The serialized form references ops and terminators by position within
// the device program; loading requires the same program (the "source
// code" travels separately, as in the paper's deployment).

type dsodJSON struct {
	Ref          analysis.OpRef `json:"ref"`
	Sync         bool           `json:"sync,omitempty"`
	ParamIndexed bool           `json:"paramIndexed,omitempty"`
}

type caseJSON struct {
	Value uint64 `json:"value"`
	Next  int    `json:"next"`
}

type nbtdJSON struct {
	Kind         ir.TermKind `json:"kind"`
	TakenSeen    bool        `json:"takenSeen,omitempty"`
	NotTakenSeen bool        `json:"notTakenSeen,omitempty"`
	TakenNext    int         `json:"takenNext"`
	NotTakenNext int         `json:"notTakenNext"`
	Cases        []caseJSON  `json:"cases,omitempty"`
}

type blockJSON struct {
	ID      int          `json:"id"`
	Ref     ir.BlockRef  `json:"ref"`
	Kind    ir.BlockKind `json:"kind"`
	DSOD    []dsodJSON   `json:"dsod,omitempty"`
	NBTD    *nbtdJSON    `json:"nbtd,omitempty"`
	Next    int          `json:"next"`
	Returns bool         `json:"returns,omitempty"`
	Halts   bool         `json:"halts,omitempty"`
	Visits  int          `json:"visits"`
}

type refMapJSON struct {
	Ref ir.BlockRef `json:"ref"`
	ID  int         `json:"id"`
}

type indirectJSON struct {
	Field   int      `json:"field"`
	Targets []uint64 `json:"targets"`
}

type accessJSON struct {
	Cmd    uint64 `json:"cmd"`
	Blocks []int  `json:"blocks"`
}

type specJSON struct {
	Device   string           `json:"device"`
	Entry    int              `json:"entry"`
	Params   []analysis.Param `json:"params"`
	Blocks   []*blockJSON     `json:"blocks"`
	ByRef    []refMapJSON     `json:"byRef"`
	Indirect []indirectJSON   `json:"indirect,omitempty"`
	Access   []accessJSON     `json:"access,omitempty"`
	Global   []int            `json:"global,omitempty"`
	Stats    Stats            `json:"stats"`
}

// Save writes the specification as JSON.
func (s *Spec) Save(w io.Writer) error {
	out := specJSON{
		Device: s.Device,
		Entry:  s.Entry,
		Params: s.Params.Params,
		Stats:  s.Stats,
	}
	for _, b := range s.Blocks {
		if b == nil {
			out.Blocks = append(out.Blocks, nil)
			continue
		}
		jb := &blockJSON{
			ID: b.ID, Ref: b.Ref, Kind: b.Kind, Next: b.Next,
			Returns: b.Returns, Halts: b.Halts, Visits: b.Visits,
		}
		for _, d := range b.DSOD {
			jb.DSOD = append(jb.DSOD, dsodJSON{Ref: d.Ref, Sync: d.Sync, ParamIndexed: d.ParamIndexed})
		}
		if b.NBTD != nil {
			jn := &nbtdJSON{
				Kind:      b.NBTD.Kind,
				TakenSeen: b.NBTD.TakenSeen, NotTakenSeen: b.NBTD.NotTakenSeen,
				TakenNext: b.NBTD.TakenNext, NotTakenNext: b.NBTD.NotTakenNext,
			}
			vals := make([]uint64, 0, len(b.NBTD.CaseNext))
			for v := range b.NBTD.CaseNext {
				vals = append(vals, v)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			for _, v := range vals {
				jn.Cases = append(jn.Cases, caseJSON{Value: v, Next: b.NBTD.CaseNext[v]})
			}
			jb.NBTD = jn
		}
		out.Blocks = append(out.Blocks, jb)
	}
	for ref, id := range s.byRef {
		out.ByRef = append(out.ByRef, refMapJSON{Ref: ref, ID: id})
	}
	sort.Slice(out.ByRef, func(i, j int) bool {
		a, b := out.ByRef[i].Ref, out.ByRef[j].Ref
		if a.Handler != b.Handler {
			return a.Handler < b.Handler
		}
		return a.Block < b.Block
	})
	for field, set := range s.IndirectTargets {
		ij := indirectJSON{Field: field}
		for t := range set {
			ij.Targets = append(ij.Targets, t)
		}
		sort.Slice(ij.Targets, func(i, j int) bool { return ij.Targets[i] < ij.Targets[j] })
		out.Indirect = append(out.Indirect, ij)
	}
	sort.Slice(out.Indirect, func(i, j int) bool { return out.Indirect[i].Field < out.Indirect[j].Field })
	for cmd, set := range s.CmdTable.Access {
		aj := accessJSON{Cmd: cmd}
		for b := range set {
			aj.Blocks = append(aj.Blocks, b)
		}
		sort.Ints(aj.Blocks)
		out.Access = append(out.Access, aj)
	}
	sort.Slice(out.Access, func(i, j int) bool { return out.Access[i].Cmd < out.Access[j].Cmd })
	for b := range s.CmdTable.Global {
		out.Global = append(out.Global, b)
	}
	sort.Ints(out.Global)

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("core: save spec: %w", err)
	}
	return nil
}

// Load reads a JSON specification and rebinds it to the device program it
// was built from.
func Load(prog *ir.Program, r io.Reader) (*Spec, error) {
	var in specJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: load spec: %w", err)
	}
	if in.Device != prog.Name {
		return nil, fmt.Errorf("core: spec is for device %q, program is %q", in.Device, prog.Name)
	}

	s := &Spec{
		Device:          in.Device,
		prog:            prog,
		Params:          analysis.NewSelection(prog, in.Params),
		Entry:           in.Entry,
		byRef:           make(map[ir.BlockRef]int, len(in.ByRef)),
		IndirectTargets: make(map[int]map[uint64]bool, len(in.Indirect)),
		CmdTable: &CmdAccessTable{
			Access: make(map[uint64]map[int]bool, len(in.Access)),
			Global: make(map[int]bool, len(in.Global)),
		},
		Stats: in.Stats,
	}

	resolveOp := func(ref analysis.OpRef) (*ir.Op, error) {
		if ref.Handler < 0 || ref.Handler >= len(prog.Handlers) {
			return nil, fmt.Errorf("core: load spec: handler %d out of range", ref.Handler)
		}
		h := &prog.Handlers[ref.Handler]
		if ref.Block < 0 || ref.Block >= len(h.Blocks) {
			return nil, fmt.Errorf("core: load spec: block %d out of range in %s", ref.Block, h.Name)
		}
		blk := &h.Blocks[ref.Block]
		if ref.Op < 0 || ref.Op >= len(blk.Ops) {
			return nil, fmt.Errorf("core: load spec: op %d out of range in %s/%s", ref.Op, h.Name, blk.Label)
		}
		return &blk.Ops[ref.Op], nil
	}

	for _, jb := range in.Blocks {
		if jb == nil {
			s.Blocks = append(s.Blocks, nil)
			continue
		}
		b := &ESBlock{
			ID: jb.ID, Ref: jb.Ref, Kind: jb.Kind, Next: jb.Next,
			Returns: jb.Returns, Halts: jb.Halts, Visits: jb.Visits,
		}
		for _, d := range jb.DSOD {
			op, err := resolveOp(d.Ref)
			if err != nil {
				return nil, err
			}
			b.DSOD = append(b.DSOD, DSODOp{Op: op, Ref: d.Ref, Sync: d.Sync, ParamIndexed: d.ParamIndexed})
		}
		if jb.NBTD != nil {
			if jb.Ref.Handler >= len(prog.Handlers) ||
				jb.Ref.Block >= len(prog.Handlers[jb.Ref.Handler].Blocks) {
				return nil, fmt.Errorf("core: load spec: NBTD block ref out of range")
			}
			term := &prog.Handlers[jb.Ref.Handler].Blocks[jb.Ref.Block].Term
			n := &NBTD{
				Kind: jb.NBTD.Kind, Term: term,
				TakenSeen: jb.NBTD.TakenSeen, NotTakenSeen: jb.NBTD.NotTakenSeen,
				TakenNext: jb.NBTD.TakenNext, NotTakenNext: jb.NBTD.NotTakenNext,
			}
			if len(jb.NBTD.Cases) > 0 {
				n.CaseNext = make(map[uint64]int, len(jb.NBTD.Cases))
				for _, c := range jb.NBTD.Cases {
					n.CaseNext[c.Value] = c.Next
				}
			}
			b.NBTD = n
		}
		s.Blocks = append(s.Blocks, b)
	}
	for _, rm := range in.ByRef {
		s.byRef[rm.Ref] = rm.ID
	}
	for _, ij := range in.Indirect {
		set := make(map[uint64]bool, len(ij.Targets))
		for _, t := range ij.Targets {
			set[t] = true
		}
		s.IndirectTargets[ij.Field] = set
	}
	for _, aj := range in.Access {
		set := make(map[int]bool, len(aj.Blocks))
		for _, b := range aj.Blocks {
			set[b] = true
		}
		s.CmdTable.Access[aj.Cmd] = set
	}
	for _, b := range in.Global {
		s.CmdTable.Global[b] = true
	}
	return s, nil
}
