package core_test

import (
	"testing"

	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// assertSealedEquivalent checks every sealed lowering against the mutable
// spec it came from: the flat block table, the DSOD arena, the case runs,
// the dense id arrays, the indirect-target slices, the access bitsets, and
// the parameter bitset must answer exactly as the map-based originals.
func assertSealedEquivalent(t *testing.T, spec *core.Spec) {
	t.Helper()
	ss := spec.Seal()
	prog := spec.Program()

	if ss.Device != spec.Device {
		t.Errorf("sealed device = %q, want %q", ss.Device, spec.Device)
	}
	if ss.Entry != spec.Entry {
		t.Errorf("sealed entry = %d, want %d", ss.Entry, spec.Entry)
	}
	if ss.Program() != prog {
		t.Error("sealed spec lost the program pointer")
	}
	if ss.NumBlocks() != len(spec.Blocks) {
		t.Fatalf("sealed id space = %d, want %d", ss.NumBlocks(), len(spec.Blocks))
	}

	for id, b := range spec.Blocks {
		sb := ss.Block(id)
		if b == nil {
			if sb != nil {
				t.Errorf("block %d: tombstone expected, got live block", id)
			}
			continue
		}
		if sb == nil {
			t.Errorf("block %d: live block expected, got tombstone", id)
			continue
		}
		if sb.Ref != b.Ref || sb.Kind != b.Kind || sb.Returns != b.Returns || sb.Halts != b.Halts {
			t.Errorf("block %d: identity mismatch: %+v vs %+v", id, sb, b)
		}
		if want := prog.Handlers[b.Ref.Handler].NumTemps; int(sb.NumTemps) != want {
			t.Errorf("block %d: NumTemps = %d, want %d", id, sb.NumTemps, want)
		}

		dsod := ss.DSOD(sb)
		if len(dsod) != len(b.DSOD) {
			t.Fatalf("block %d: DSOD length %d, want %d", id, len(dsod), len(b.DSOD))
		}
		for i := range dsod {
			if dsod[i].Op != *b.DSOD[i].Op {
				t.Errorf("block %d op %d: arena op copy diverges", id, i)
			}
			if dsod[i].Sync != b.DSOD[i].Sync ||
				dsod[i].ParamIndexed != b.DSOD[i].ParamIndexed {
				t.Errorf("block %d op %d: DSOD metadata diverges", id, i)
			}
		}

		if (b.NBTD != nil) != sb.HasNBTD {
			t.Fatalf("block %d: HasNBTD = %v, want %v", id, sb.HasNBTD, b.NBTD != nil)
		}
		if b.NBTD == nil {
			if int(sb.Next) != b.Next {
				t.Errorf("block %d: Next = %d, want %d", id, sb.Next, b.Next)
			}
			continue
		}
		n := b.NBTD
		if sb.TermKind != n.Kind || sb.Term != n.Term {
			t.Errorf("block %d: terminator lowering diverges", id)
		}
		if sb.TakenSeen != n.TakenSeen || sb.NotTakenSeen != n.NotTakenSeen ||
			int(sb.TakenNext) != n.TakenNext || int(sb.NotTakenNext) != n.NotTakenNext {
			t.Errorf("block %d: branch arms diverge", id)
		}
		for sel, want := range n.CaseNext {
			got, ok := ss.CaseNext(sb, sel)
			if !ok || got != want {
				t.Errorf("block %d: CaseNext(%#x) = %d,%v, want %d,true", id, sel, got, ok, want)
			}
			// A neighbouring unseen selector must miss (probes the binary
			// search boundaries).
			if _, seen := n.CaseNext[sel+1]; !seen {
				if _, ok := ss.CaseNext(sb, sel+1); ok {
					t.Errorf("block %d: CaseNext(%#x) hit, want miss", id, sel+1)
				}
			}
		}
	}

	// Dense id arrays vs byRef.
	for h := range prog.Handlers {
		for bi := range prog.Handlers[h].Blocks {
			ref := ir.BlockRef{Handler: h, Block: bi}
			if got, want := ss.BlockID(h, bi), spec.BlockFor(ref); got != want {
				t.Errorf("BlockID(%d,%d) = %d, want %d", h, bi, got, want)
			}
		}
		if got, want := ss.HandlerEntry(h), spec.BlockFor(ir.BlockRef{Handler: h, Block: 0}); got != want {
			t.Errorf("HandlerEntry(%d) = %d, want %d", h, got, want)
		}
	}
	if ss.BlockID(-1, 0) != core.NoBlock || ss.BlockID(len(prog.Handlers), 0) != core.NoBlock {
		t.Error("out-of-range handler must resolve to NoBlock")
	}

	// Indirect targets.
	for field, set := range spec.IndirectTargets {
		for target := range set {
			if !ss.LegitimateTarget(field, target) {
				t.Errorf("LegitimateTarget(%d, %#x) = false, want true", field, target)
			}
			if ss.LegitimateTarget(field, target+1) != spec.LegitimateTarget(field, target+1) {
				t.Errorf("LegitimateTarget(%d, %#x) diverges on probe", field, target+1)
			}
		}
	}
	if ss.LegitimateTarget(-1, 0) || ss.LegitimateTarget(len(prog.Fields), 0) {
		t.Error("out-of-range field must have no legitimate targets")
	}

	// Access table: exhaustive over learned commands × id space, plus an
	// unlearned command probe.
	probe := []uint64{0, 1, 0xFF, ^uint64(0)}
	for cmd := range spec.CmdTable.Access {
		probe = append(probe, cmd, cmd+1)
	}
	for _, cmd := range probe {
		for id := -1; id <= len(spec.Blocks); id++ {
			for _, active := range []bool{true, false} {
				want := spec.CmdTable.Accessible(cmd, active, id)
				if got := ss.Accessible(cmd, active, id); got != want {
					t.Errorf("Accessible(%#x, %v, %d) = %v, want %v", cmd, active, id, got, want)
				}
			}
		}
	}

	// Parameter bitset.
	for f := -1; f <= len(prog.Fields); f++ {
		if got, want := ss.ParamField(f), spec.Params.Contains(f); got != want {
			t.Errorf("ParamField(%d) = %v, want %v", f, got, want)
		}
	}
}

func TestSealEquivalence(t *testing.T) {
	for _, disable := range []bool{false, true} {
		prog := buildReducible(t)
		spec := learn(t, prog, reqs(), core.BuildOpts{DisableReduction: disable})
		assertSealedEquivalent(t, spec)
	}
}

// buildWideSwitch constructs a program whose decode switch has more
// observed selectors than caseMapThreshold, forcing the sealed block onto
// the map fallback.
func buildWideSwitch(t testing.TB, arms int) (*ir.Program, []*interp.Request) {
	t.Helper()
	b := ir.NewBuilder("wideswitch")
	last := b.Int("last", ir.W8, ir.HWRegister())

	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	v := e.IOIn(ir.W8, "v = ioread8()")
	cases := make([]ir.SwitchArm, arms)
	for i := range cases {
		cases[i] = ir.Case(uint64(i), "body")
	}
	e.Switch(v, "switch (v)", "body", cases...)

	body := h.Block("body")
	w := body.IOAddr("w = req->addr")
	body.Store(last, w, "s->last = w")
	body.Jump("out", "goto out")
	h.Block("out").Exit().Halt("return")

	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var rs []*interp.Request
	for i := 0; i < arms; i++ {
		rs = append(rs, interp.NewWrite(interp.SpacePIO, 0, []byte{byte(i)}))
	}
	return prog, rs
}

func TestSealWideSwitchMapFallback(t *testing.T) {
	prog, rs := buildWideSwitch(t, 40) // > caseMapThreshold
	spec := learn(t, prog, rs, core.BuildOpts{})
	var wide *core.ESBlock
	for _, b := range spec.Blocks {
		if b != nil && b.NBTD != nil && len(b.NBTD.CaseNext) == 40 {
			wide = b
		}
	}
	if wide == nil {
		t.Fatal("no 40-arm switch block observed")
	}
	ss := spec.Seal()
	if sb := ss.Block(wide.ID); sb.CaseMap == nil {
		t.Error("wide switch should use the map fallback")
	}
	assertSealedEquivalent(t, spec)
}

func TestSealedInvariants(t *testing.T) {
	prog := buildReducible(t)
	spec := learn(t, prog, reqs(), core.BuildOpts{})
	ss := spec.Seal() // Seal itself asserts (panics on violation)
	if err := ss.CheckInvariants(); err != nil {
		t.Fatalf("freshly sealed spec violates invariants: %v", err)
	}

	// Corrupt the sealed structures one at a time (Block returns a pointer
	// into the flat table) and verify each violation is caught.
	sb := ss.Block(spec.Entry)
	if sb == nil {
		t.Fatal("entry block missing")
	}
	corruptions := []struct {
		name    string
		mutate  func()
		restore func()
	}{
		{"dsod range", func() { sb.DSODEnd = 1 << 30 }, func(end int32) func() {
			return func() { sb.DSODEnd = end }
		}(sb.DSODEnd)},
		{"next id", func() { sb.Next = 1 << 30 }, func(next int32) func() {
			return func() { sb.Next = next }
		}(sb.Next)},
		{"taken id", func() { sb.TakenNext = -7 }, func(next int32) func() {
			return func() { sb.TakenNext = next }
		}(sb.TakenNext)},
		{"entry", func() { ss.Entry = -1 }, func(e int) func() {
			return func() { ss.Entry = e }
		}(ss.Entry)},
	}
	for _, c := range corruptions {
		c.mutate()
		if err := ss.CheckInvariants(); err == nil {
			t.Errorf("%s corruption not detected", c.name)
		}
		c.restore()
	}
	if err := ss.CheckInvariants(); err != nil {
		t.Fatalf("restored spec still violates invariants: %v", err)
	}
}

func TestSealSnapshotIsolation(t *testing.T) {
	prog := buildReducible(t)
	spec := learn(t, prog, reqs(), core.BuildOpts{})
	ss := spec.Seal()
	entry := ss.Block(spec.Entry)
	if entry == nil {
		t.Fatal("entry block missing from sealed spec")
	}
	wantOps := len(ss.DSOD(entry))

	// Mutating the spec after sealing must not leak into the snapshot.
	spec.Blocks[spec.Entry].DSOD = nil
	spec.Blocks[spec.Entry].Next = core.NoBlock
	if got := len(ss.DSOD(entry)); got != wantOps {
		t.Errorf("sealed DSOD changed after spec mutation: %d, want %d", got, wantOps)
	}
}
