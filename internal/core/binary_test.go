package core_test

import (
	"bytes"
	"testing"

	"sedspec/internal/core"
	"sedspec/internal/ir"
)

func TestSpecBinaryRoundTrip(t *testing.T) {
	prog := buildReducible(t)
	spec := learn(t, prog, reqs(), core.BuildOpts{})

	data, err := spec.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.DecodeBinary(prog, data)
	if err != nil {
		t.Fatal(err)
	}

	// The decoded spec must render identically in every serialized view:
	// the ES-CFG structure (Dot), the full sorted JSON form, and a
	// re-encoding of the binary form itself.
	if back.Dot() != spec.Dot() {
		t.Error("ES-CFG structure changed across the binary round trip")
	}
	var j1, j2 bytes.Buffer
	if err := spec.Save(&j1); err != nil {
		t.Fatal(err)
	}
	if err := back.Save(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Error("JSON rendering changed across the binary round trip")
	}
	data2, err := back.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("re-encoding the decoded spec produced different bytes")
	}
	if back.Stats != spec.Stats {
		t.Errorf("stats changed: %+v vs %+v", back.Stats, spec.Stats)
	}
}

func TestSpecBinaryDeterministic(t *testing.T) {
	prog := buildReducible(t)
	spec := learn(t, prog, reqs(), core.BuildOpts{})
	a, err := spec.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("encoding the same spec twice produced different bytes")
	}
}

func TestDecodeBinaryRejects(t *testing.T) {
	prog := buildReducible(t)
	spec := learn(t, prog, reqs(), core.BuildOpts{})
	data, err := spec.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := core.DecodeBinary(prog, []byte("not a spec blob")); err == nil {
		t.Error("bad magic must fail to decode")
	}
	for _, n := range []int{4, 8, len(data) / 2, len(data) - 3} {
		if _, err := core.DecodeBinary(prog, data[:n]); err == nil {
			t.Errorf("truncation to %d bytes must fail to decode", n)
		}
	}

	b2 := ir.NewBuilder("other")
	h := b2.Handler("dispatch")
	h.Block("e").Entry().Halt("return")
	other, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.DecodeBinary(other, data); err == nil {
		t.Error("decoding a spec against the wrong device must fail")
	}
}

func TestSpecBinarySealEquivalence(t *testing.T) {
	prog := buildReducible(t)
	spec := learn(t, prog, reqs(), core.BuildOpts{})
	data, err := spec.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := core.DecodeBinary(prog, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Seal().CheckInvariants(); err != nil {
		t.Errorf("sealed decoded spec violates invariants: %v", err)
	}
}
