package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"sedspec/internal/analysis"
	"sedspec/internal/ir"
)

// Binary spec codec. The layout mirrors the JSON form (json.go) field for
// field, with every map rendered in sorted order so that encoding the same
// spec always yields the same bytes — the spec store content-addresses
// blobs by their hash, which only works if encoding is deterministic.
//
// Like the JSON form, the binary form references ops and terminators by
// position within the device program; decoding requires the same program.

// specMagic identifies a binary spec blob; specFormat is bumped on any
// layout change.
var specMagic = [4]byte{'S', 'E', 'D', 'S'}

const specFormat = 1

const (
	blkFlagReturns = 1 << iota
	blkFlagHalts
	blkFlagNBTD
)

const (
	dsodFlagSync = 1 << iota
	dsodFlagParamIndexed
)

const (
	nbtdFlagTakenSeen = 1 << iota
	nbtdFlagNotTakenSeen
)

type binWriter struct {
	buf []byte
}

func (w *binWriter) u(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *binWriter) i(v int)    { w.buf = binary.AppendVarint(w.buf, int64(v)) }
func (w *binWriter) b(v byte)   { w.buf = append(w.buf, v) }
func (w *binWriter) s(v string) { w.u(uint64(len(v))); w.buf = append(w.buf, v...) }
func (w *binWriter) bool(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// EncodeBinary serializes the specification into the compact binary form.
// The output is deterministic: encoding the same spec twice produces
// identical bytes.
func (s *Spec) EncodeBinary() ([]byte, error) {
	w := &binWriter{buf: make([]byte, 0, 4096)}
	w.buf = append(w.buf, specMagic[:]...)
	w.u(specFormat)
	w.s(s.Device)
	w.i(s.Entry)

	w.u(uint64(len(s.Params.Params)))
	for _, p := range s.Params.Params {
		w.i(p.Field)
		w.s(p.Name)
		w.b(byte(p.Class))
		w.i(p.Rule)
	}

	w.u(uint64(len(s.Blocks)))
	for _, b := range s.Blocks {
		if b == nil {
			w.b(0)
			continue
		}
		w.b(1)
		w.i(b.ID)
		w.i(b.Ref.Handler)
		w.i(b.Ref.Block)
		w.b(byte(b.Kind))
		var flags byte
		flags |= w.bool(b.Returns) * blkFlagReturns
		flags |= w.bool(b.Halts) * blkFlagHalts
		if b.NBTD != nil {
			flags |= blkFlagNBTD
		}
		w.b(flags)
		w.u(uint64(len(b.DSOD)))
		for _, d := range b.DSOD {
			w.i(d.Ref.Handler)
			w.i(d.Ref.Block)
			w.i(d.Ref.Op)
			var df byte
			df |= w.bool(d.Sync) * dsodFlagSync
			df |= w.bool(d.ParamIndexed) * dsodFlagParamIndexed
			w.b(df)
		}
		if b.NBTD != nil {
			n := b.NBTD
			w.b(byte(n.Kind))
			var nf byte
			nf |= w.bool(n.TakenSeen) * nbtdFlagTakenSeen
			nf |= w.bool(n.NotTakenSeen) * nbtdFlagNotTakenSeen
			w.b(nf)
			w.i(n.TakenNext)
			w.i(n.NotTakenNext)
			vals := make([]uint64, 0, len(n.CaseNext))
			for v := range n.CaseNext {
				vals = append(vals, v)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			w.u(uint64(len(vals)))
			for _, v := range vals {
				w.u(v)
				w.i(n.CaseNext[v])
			}
		}
		w.i(b.Next)
		w.i(b.Visits)
	}

	refs := make([]ir.BlockRef, 0, len(s.byRef))
	for ref := range s.byRef {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Handler != refs[j].Handler {
			return refs[i].Handler < refs[j].Handler
		}
		return refs[i].Block < refs[j].Block
	})
	w.u(uint64(len(refs)))
	for _, ref := range refs {
		w.i(ref.Handler)
		w.i(ref.Block)
		w.i(s.byRef[ref])
	}

	fields := make([]int, 0, len(s.IndirectTargets))
	for f := range s.IndirectTargets {
		fields = append(fields, f)
	}
	sort.Ints(fields)
	w.u(uint64(len(fields)))
	for _, f := range fields {
		w.i(f)
		set := s.IndirectTargets[f]
		targets := make([]uint64, 0, len(set))
		for t := range set {
			targets = append(targets, t)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
		w.u(uint64(len(targets)))
		for _, t := range targets {
			w.u(t)
		}
	}

	cmds := make([]uint64, 0, len(s.CmdTable.Access))
	for c := range s.CmdTable.Access {
		cmds = append(cmds, c)
	}
	sort.Slice(cmds, func(i, j int) bool { return cmds[i] < cmds[j] })
	w.u(uint64(len(cmds)))
	for _, c := range cmds {
		w.u(c)
		set := s.CmdTable.Access[c]
		blocks := make([]int, 0, len(set))
		for b := range set {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		w.u(uint64(len(blocks)))
		for _, b := range blocks {
			w.i(b)
		}
	}

	global := make([]int, 0, len(s.CmdTable.Global))
	for b := range s.CmdTable.Global {
		global = append(global, b)
	}
	sort.Ints(global)
	w.u(uint64(len(global)))
	for _, b := range global {
		w.i(b)
	}

	st := s.Stats
	for _, v := range []int{
		st.TrainingRounds, st.ObservedBlocks, st.ESBlocks,
		st.CompressedBlocks, st.MergedBranches, st.KeptOps,
		st.DroppedOps, st.SyncPoints, st.Commands, st.IndirectTargets,
	} {
		w.i(v)
	}
	return w.buf, nil
}

type binReader struct {
	buf []byte
	off int
	err error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("core: decode spec: "+format, args...)
	}
}

func (r *binReader) u() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) i() int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail("truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return int(v)
}

func (r *binReader) b() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail("truncated byte at offset %d", r.off)
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *binReader) s() string {
	n := r.u()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("string length %d exceeds remaining %d bytes", n, len(r.buf)-r.off)
		return ""
	}
	v := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return v
}

// count reads a collection length and bounds it against the remaining
// input (each element needs at least one byte) so a corrupt length cannot
// drive a huge allocation.
func (r *binReader) count() int {
	n := r.u()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail("collection length %d exceeds remaining %d bytes", n, len(r.buf)-r.off)
		return 0
	}
	return int(n)
}

// DecodeBinary reads a binary specification and rebinds it to the device
// program it was built from, validating every program reference.
func DecodeBinary(prog *ir.Program, data []byte) (*Spec, error) {
	r := &binReader{buf: data}
	if len(data) < len(specMagic) || string(data[:4]) != string(specMagic[:]) {
		return nil, fmt.Errorf("core: decode spec: bad magic (not a binary spec blob)")
	}
	r.off = len(specMagic)
	if f := r.u(); r.err == nil && f != specFormat {
		return nil, fmt.Errorf("core: decode spec: unsupported format %d (want %d)", f, specFormat)
	}
	device := r.s()
	if r.err == nil && device != prog.Name {
		return nil, fmt.Errorf("core: spec is for device %q, program is %q", device, prog.Name)
	}

	s := &Spec{
		Device:          device,
		prog:            prog,
		Entry:           r.i(),
		byRef:           make(map[ir.BlockRef]int),
		IndirectTargets: make(map[int]map[uint64]bool),
		CmdTable: &CmdAccessTable{
			Access: make(map[uint64]map[int]bool),
			Global: make(map[int]bool),
		},
	}

	resolveOp := func(ref analysis.OpRef) *ir.Op {
		if r.err != nil {
			return nil
		}
		if ref.Handler < 0 || ref.Handler >= len(prog.Handlers) {
			r.fail("handler %d out of range", ref.Handler)
			return nil
		}
		h := &prog.Handlers[ref.Handler]
		if ref.Block < 0 || ref.Block >= len(h.Blocks) {
			r.fail("block %d out of range in %s", ref.Block, h.Name)
			return nil
		}
		blk := &h.Blocks[ref.Block]
		if ref.Op < 0 || ref.Op >= len(blk.Ops) {
			r.fail("op %d out of range in %s/%s", ref.Op, h.Name, blk.Label)
			return nil
		}
		return &blk.Ops[ref.Op]
	}

	params := make([]analysis.Param, r.count())
	for i := range params {
		params[i] = analysis.Param{
			Field: r.i(),
			Name:  r.s(),
			Class: analysis.ParamClass(r.b()),
			Rule:  r.i(),
		}
	}
	s.Params = analysis.NewSelection(prog, params)

	nblocks := r.count()
	for bi := 0; bi < nblocks && r.err == nil; bi++ {
		if r.b() == 0 {
			s.Blocks = append(s.Blocks, nil)
			continue
		}
		b := &ESBlock{
			ID:   r.i(),
			Ref:  ir.BlockRef{Handler: r.i(), Block: r.i()},
			Kind: ir.BlockKind(r.b()),
		}
		flags := r.b()
		b.Returns = flags&blkFlagReturns != 0
		b.Halts = flags&blkFlagHalts != 0
		ndsod := r.count()
		for i := 0; i < ndsod && r.err == nil; i++ {
			ref := analysis.OpRef{Handler: r.i(), Block: r.i(), Op: r.i()}
			df := r.b()
			op := resolveOp(ref)
			if r.err != nil {
				break
			}
			b.DSOD = append(b.DSOD, DSODOp{
				Op: op, Ref: ref,
				Sync:         df&dsodFlagSync != 0,
				ParamIndexed: df&dsodFlagParamIndexed != 0,
			})
		}
		if flags&blkFlagNBTD != 0 && r.err == nil {
			if b.Ref.Handler < 0 || b.Ref.Handler >= len(prog.Handlers) ||
				b.Ref.Block < 0 || b.Ref.Block >= len(prog.Handlers[b.Ref.Handler].Blocks) {
				r.fail("NBTD block ref out of range")
			} else {
				n := &NBTD{
					Kind: ir.TermKind(r.b()),
					Term: &prog.Handlers[b.Ref.Handler].Blocks[b.Ref.Block].Term,
				}
				nf := r.b()
				n.TakenSeen = nf&nbtdFlagTakenSeen != 0
				n.NotTakenSeen = nf&nbtdFlagNotTakenSeen != 0
				n.TakenNext = r.i()
				n.NotTakenNext = r.i()
				ncases := r.count()
				if ncases > 0 {
					n.CaseNext = make(map[uint64]int, ncases)
					for i := 0; i < ncases && r.err == nil; i++ {
						v := r.u()
						n.CaseNext[v] = r.i()
					}
				}
				b.NBTD = n
			}
		}
		b.Next = r.i()
		b.Visits = r.i()
		s.Blocks = append(s.Blocks, b)
	}

	nrefs := r.count()
	for i := 0; i < nrefs && r.err == nil; i++ {
		ref := ir.BlockRef{Handler: r.i(), Block: r.i()}
		s.byRef[ref] = r.i()
	}

	nind := r.count()
	for i := 0; i < nind && r.err == nil; i++ {
		f := r.i()
		ntargets := r.count()
		set := make(map[uint64]bool, ntargets)
		for j := 0; j < ntargets && r.err == nil; j++ {
			set[r.u()] = true
		}
		s.IndirectTargets[f] = set
	}

	ncmds := r.count()
	for i := 0; i < ncmds && r.err == nil; i++ {
		cmd := r.u()
		nb := r.count()
		set := make(map[int]bool, nb)
		for j := 0; j < nb && r.err == nil; j++ {
			set[r.i()] = true
		}
		s.CmdTable.Access[cmd] = set
	}

	nglobal := r.count()
	for i := 0; i < nglobal && r.err == nil; i++ {
		s.CmdTable.Global[r.i()] = true
	}

	for _, p := range []*int{
		&s.Stats.TrainingRounds, &s.Stats.ObservedBlocks, &s.Stats.ESBlocks,
		&s.Stats.CompressedBlocks, &s.Stats.MergedBranches, &s.Stats.KeptOps,
		&s.Stats.DroppedOps, &s.Stats.SyncPoints, &s.Stats.Commands,
		&s.Stats.IndirectTargets,
	} {
		*p = r.i()
	}
	if r.err != nil {
		return nil, r.err
	}
	if s.Entry < 0 || s.Entry >= len(s.Blocks) || s.Blocks[s.Entry] == nil {
		return nil, fmt.Errorf("core: decode spec: entry block %d invalid", s.Entry)
	}
	return s, nil
}
