// Package core implements SEDSpec's execution specification: the ES-CFG
// (paper §V). An execution specification abstracts an emulated device's
// legitimate control flow and device-state changes, learned from the
// device-state-change log collected under benign training samples, and is
// later enforced at runtime by the ES-Checker.
//
// The ES-CFG's basic blocks carry Device State Operation Data (DSOD) — the
// retained source statements that manipulate device state — and Next Block
// Transition Data (NBTD) — the statements that select the successor block
// from device-state parameters. Construction follows the paper's
// Algorithm 1, then applies control-flow reduction (merging conditional
// arms that reach the same block) and data-dependency recovery (retaining
// the computation of branch variables when derivable from device state and
// I/O data, inserting sync points when not).
package core

import (
	"fmt"
	"sort"
	"strings"

	"sedspec/internal/analysis"
	"sedspec/internal/ir"
)

// NoBlock marks an absent ES successor.
const NoBlock = -1

// DSODOp is one retained statement of a basic block's DSOD.
type DSODOp struct {
	// Op points into the device program (carrying the source statement).
	Op *ir.Op
	// Ref locates the op for serialization.
	Ref analysis.OpRef
	// Sync marks a sync point: the value is not derivable from device
	// state or I/O data and must be synchronized with the environment at
	// check time (paper §V-D).
	Sync bool
	// ParamIndexed marks buffer accesses whose index (or copy length)
	// derives from a device-state parameter. The parameter check's buffer
	// overflow test applies only to these — an access through a
	// temporary unrelated to the device state (CVE-2015-7504's case)
	// falls outside it, exactly as the paper reports (§VII-B2).
	ParamIndexed bool
}

// NBTD is a basic block's Next Block Transition Data: the conditional or
// switch terminator with the observed arm/target information.
type NBTD struct {
	Kind ir.TermKind
	// Term points to the original terminator (condition operands,
	// relation, source statement).
	Term *ir.Term

	// Conditional arms: which were observed during training and which ES
	// block each leads to (NoBlock when unobserved).
	TakenSeen    bool
	NotTakenSeen bool
	TakenNext    int
	NotTakenNext int

	// Switch: observed selector values and their ES successors. For
	// command-decision blocks the keys are the device commands of the
	// command access table.
	CaseNext map[uint64]int
}

// ESBlock is one basic block of the ES-CFG.
type ESBlock struct {
	ID   int
	Ref  ir.BlockRef
	Kind ir.BlockKind

	DSOD []DSODOp
	// NBTD is nil for blocks that transition unconditionally; Next then
	// holds the successor (NoBlock for return/halt blocks).
	NBTD *NBTD
	Next int

	// Returns marks blocks ending the handler (return) and Halts marks
	// blocks ending the I/O round.
	Returns bool
	Halts   bool

	// Visits counts training observations, for statistics.
	Visits int
}

// CmdAccessTable is the command access control table of Algorithm 1: for
// each device command observed at a command-decision block, the set of ES
// blocks legitimately accessible while the command is active.
type CmdAccessTable struct {
	// Access maps a command value to the accessible ES block set.
	Access map[uint64]map[int]bool
	// Global holds blocks accessible outside any command window.
	Global map[int]bool
}

// Accessible reports whether a block may execute under the command. cmdOK
// distinguishes "no active command" (always allowed if globally seen).
func (t *CmdAccessTable) Accessible(cmd uint64, active bool, block int) bool {
	if t.Global[block] {
		return true
	}
	if !active {
		return false
	}
	av, ok := t.Access[cmd]
	return ok && av[block]
}

// Commands returns the number of learned commands.
func (t *CmdAccessTable) Commands() int { return len(t.Access) }

// Stats summarizes specification construction.
type Stats struct {
	TrainingRounds int `json:"trainingRounds"`
	// ObservedBlocks is the number of distinct original blocks seen.
	ObservedBlocks int `json:"observedBlocks"`
	// ESBlocks is the block count after reduction.
	ESBlocks int `json:"esBlocks"`
	// CompressedBlocks counts blocks elided by path compression.
	CompressedBlocks int `json:"compressedBlocks"`
	// MergedBranches counts NBTDs removed because both arms converged.
	MergedBranches int `json:"mergedBranches"`
	// KeptOps and DroppedOps count DSOD retention across the program.
	KeptOps    int `json:"keptOps"`
	DroppedOps int `json:"droppedOps"`
	// SyncPoints counts retained environment reads.
	SyncPoints int `json:"syncPoints"`
	// Commands is the command-access-table size.
	Commands int `json:"commands"`
	// IndirectTargets counts learned (function pointer, target) pairs.
	IndirectTargets int `json:"indirectTargets"`
}

// Spec is a device's execution specification.
type Spec struct {
	Device string
	prog   *ir.Program
	// Params is the device state: the parameters selected by the CFG
	// analyzer, which the check strategies guard.
	Params *analysis.Selection

	Blocks []*ESBlock
	byRef  map[ir.BlockRef]int

	// Entry is the ES block the checker starts each I/O round at.
	Entry int

	// IndirectTargets maps each function-pointer field to the set of
	// handler indices legitimately stored in it, learned from TIP-backed
	// observations. The indirect-jump check validates against this.
	IndirectTargets map[int]map[uint64]bool

	CmdTable *CmdAccessTable
	Stats    Stats
}

// Program returns the device program the spec was built from.
func (s *Spec) Program() *ir.Program { return s.prog }

// BlockFor returns the ES block id for an original block, or NoBlock.
func (s *Spec) BlockFor(ref ir.BlockRef) int {
	if id, ok := s.byRef[ref]; ok {
		return id
	}
	return NoBlock
}

// Covers reports whether the original block is part of the specification
// (directly or merged into another block). The effective-coverage metric
// is computed against this.
func (s *Spec) Covers(ref ir.BlockRef) bool {
	_, ok := s.byRef[ref]
	return ok
}

// Block returns the ES block by id; nil if out of range.
func (s *Spec) Block(id int) *ESBlock {
	if id < 0 || id >= len(s.Blocks) {
		return nil
	}
	return s.Blocks[id]
}

// LegitimateTarget reports whether storing target in the function-pointer
// field was observed during training.
func (s *Spec) LegitimateTarget(field int, target uint64) bool {
	set, ok := s.IndirectTargets[field]
	return ok && set[target]
}

// String renders a construction summary.
func (s *Spec) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "execution specification for %s:\n", s.Device)
	fmt.Fprintf(&sb, "  training rounds:   %d\n", s.Stats.TrainingRounds)
	fmt.Fprintf(&sb, "  observed blocks:   %d\n", s.Stats.ObservedBlocks)
	fmt.Fprintf(&sb, "  ES blocks:         %d (%d compressed, %d branches merged)\n",
		s.Stats.ESBlocks, s.Stats.CompressedBlocks, s.Stats.MergedBranches)
	fmt.Fprintf(&sb, "  DSOD ops:          %d kept / %d dropped\n", s.Stats.KeptOps, s.Stats.DroppedOps)
	fmt.Fprintf(&sb, "  sync points:       %d\n", s.Stats.SyncPoints)
	fmt.Fprintf(&sb, "  commands:          %d\n", s.Stats.Commands)
	fmt.Fprintf(&sb, "  indirect targets:  %d\n", s.Stats.IndirectTargets)
	fmt.Fprintf(&sb, "  device state:      %d params\n", len(s.Params.Params))
	return sb.String()
}

// Dot renders the ES-CFG in Graphviz format.
func (s *Spec) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", s.Device+"_es_cfg")
	for _, b := range s.Blocks {
		if b == nil {
			continue
		}
		orig := s.prog.Block(b.Ref)
		h := s.prog.Handlers[b.Ref.Handler]
		fmt.Fprintf(&sb, "  n%d [label=\"%s/%s\\n%s dsod=%d\"];\n",
			b.ID, h.Name, orig.Label, b.Kind, len(b.DSOD))
		switch {
		case b.NBTD != nil && b.NBTD.Kind == ir.TermBranch:
			if b.NBTD.TakenSeen {
				fmt.Fprintf(&sb, "  n%d -> n%d [label=\"T\"];\n", b.ID, b.NBTD.TakenNext)
			}
			if b.NBTD.NotTakenSeen {
				fmt.Fprintf(&sb, "  n%d -> n%d [label=\"N\"];\n", b.ID, b.NBTD.NotTakenNext)
			}
		case b.NBTD != nil && b.NBTD.Kind == ir.TermSwitch:
			vals := make([]uint64, 0, len(b.NBTD.CaseNext))
			for v := range b.NBTD.CaseNext {
				vals = append(vals, v)
			}
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			for _, v := range vals {
				fmt.Fprintf(&sb, "  n%d -> n%d [label=\"cmd %#x\"];\n", b.ID, b.NBTD.CaseNext[v], v)
			}
		case b.Next != NoBlock:
			fmt.Fprintf(&sb, "  n%d -> n%d;\n", b.ID, b.Next)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
