package core

import (
	"errors"
	"fmt"
	"sort"

	"sedspec/internal/analysis"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// ErrNoTraining is returned when the log contains no usable rounds.
var ErrNoTraining = errors.New("core: no usable training rounds")

// BuildOpts tunes specification construction (ablation switches).
type BuildOpts struct {
	// DisableReduction skips control-flow reduction (paper §V-C): no
	// block compression and no branch merging. Used by the reduction
	// ablation.
	DisableReduction bool
}

// Build constructs the execution specification from the device program
// ("source code"), the CFG analyzer's parameter selection, and the
// device-state-change log, following Algorithm 1 and then applying
// control-flow reduction and data-dependency recovery.
func Build(prog *ir.Program, params *analysis.Selection, log *analysis.Log) (*Spec, error) {
	return BuildWith(prog, params, log, BuildOpts{})
}

// BuildWith is Build with explicit options.
func BuildWith(prog *ir.Program, params *analysis.Selection, log *analysis.Log, opts BuildOpts) (*Spec, error) {
	b := &builder{
		opts:      opts,
		prog:      prog,
		params:    params,
		obs:       make(map[ir.BlockRef]*obsBlock),
		indirect:  make(map[int]map[uint64]bool),
		cmdAccess: make(map[uint64]map[ir.BlockRef]bool),
		global:    make(map[ir.BlockRef]bool),
		slices:    make(map[int]*analysis.Slice),
		flows:     make(map[int]*analysis.HandlerFlow),
	}
	rounds := log.CleanRounds()
	if len(rounds) == 0 {
		return nil, ErrNoTraining
	}
	for _, r := range rounds {
		b.scanRound(r)
	}
	return b.finish(len(rounds))
}

// obsBlock accumulates training observations for one original block.
type obsBlock struct {
	ref    ir.BlockRef
	visits int

	takenSeen    bool
	notTakenSeen bool
	casesSeen    map[uint64]bool
}

type builder struct {
	opts   BuildOpts
	prog   *ir.Program
	params *analysis.Selection

	obs      map[ir.BlockRef]*obsBlock
	indirect map[int]map[uint64]bool

	// Command access collection (Algorithm 1 lines 14-21). The active
	// command persists across I/O rounds: device commands commonly span
	// several port accesses.
	cmdAccess map[uint64]map[ir.BlockRef]bool
	global    map[ir.BlockRef]bool
	activeCmd uint64
	cmdActive bool

	slices map[int]*analysis.Slice
	flows  map[int]*analysis.HandlerFlow
}

func (b *builder) sliceOf(h int) *analysis.Slice {
	s := b.slices[h]
	if s == nil {
		s = analysis.ComputeSlice(b.prog, h)
		b.slices[h] = s
	}
	return s
}

func (b *builder) flowOf(h int) *analysis.HandlerFlow {
	f := b.flows[h]
	if f == nil {
		f = analysis.FlowOf(b.prog, h)
		b.flows[h] = f
	}
	return f
}

// paramIndexed reports whether a buffer op's index (or copy length)
// derives from a selected device-state parameter.
func (b *builder) paramIndexed(handler int, op *ir.Op) bool {
	hf := b.flowOf(handler)
	check := func(t int) bool {
		for f := range hf.TempInfluence(t).Fields {
			if b.params.Contains(f) {
				return true
			}
		}
		return false
	}
	switch op.Code {
	case ir.OpBufLoad, ir.OpBufStore:
		return check(op.Idx)
	case ir.OpDMAToBuf, ir.OpDMAFromBuf, ir.OpIOToBuf:
		return check(op.Idx) || check(op.B)
	default:
		return false
	}
}

func (b *builder) touch(ref ir.BlockRef) *obsBlock {
	o := b.obs[ref]
	if o == nil {
		o = &obsBlock{ref: ref}
		b.obs[ref] = o
	}
	o.visits++
	return o
}

// scanRound is the per-log body of Algorithm 1: restore the round's control
// flow and record block observations, branch arms, commands, and access
// vectors.
func (b *builder) scanRound(r *analysis.Round) {
	for _, ev := range r.Events {
		// The specification covers device code only; shared-library and
		// kernel control flow is outside it, like the trace filters.
		if b.prog.Handlers[ev.Block.Handler].Region != ir.RegionDevice {
			continue
		}

		// Indirect-call observations record legitimate targets but are
		// not separate block visits.
		if ev.IndirectField >= 0 {
			if ref, ok := b.prog.BlockAt(ev.Target); ok {
				set := b.indirect[ev.IndirectField]
				if set == nil {
					set = make(map[uint64]bool)
					b.indirect[ev.IndirectField] = set
				}
				set[uint64(ref.Handler)] = true
			}
			continue
		}

		o := b.touch(ev.Block)
		block := b.prog.Block(ev.Block)

		switch ev.Term {
		case ir.TermBranch:
			if ev.Taken {
				o.takenSeen = true
			} else {
				o.notTakenSeen = true
			}
		case ir.TermSwitch:
			if o.casesSeen == nil {
				o.casesSeen = make(map[uint64]bool)
			}
			o.casesSeen[ev.CmdValue] = true
			if block.Kind == ir.KindCmdDecision {
				b.activeCmd = ev.CmdValue
				b.cmdActive = true
				if b.cmdAccess[b.activeCmd] == nil {
					b.cmdAccess[b.activeCmd] = make(map[ir.BlockRef]bool)
				}
			}
		}

		// Access vector update (UpdateAV / UpdateCAT).
		if b.cmdActive {
			b.cmdAccess[b.activeCmd][ev.Block] = true
		} else {
			b.global[ev.Block] = true
		}
		if block.Kind == ir.KindCmdEnd {
			b.cmdActive = false
		}
	}
}

// finish builds ES blocks from the observations, links successors, applies
// reduction, and assembles the final specification.
func (b *builder) finish(rounds int) (*Spec, error) {
	refs := make([]ir.BlockRef, 0, len(b.obs))
	for ref := range b.obs {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Handler != refs[j].Handler {
			return refs[i].Handler < refs[j].Handler
		}
		return refs[i].Block < refs[j].Block
	})

	s := &Spec{
		Device:          b.prog.Name,
		prog:            b.prog,
		Params:          b.params,
		byRef:           make(map[ir.BlockRef]int, len(refs)),
		IndirectTargets: b.indirect,
	}

	for _, ref := range refs {
		id := len(s.Blocks)
		s.byRef[ref] = id
		s.Blocks = append(s.Blocks, b.makeBlock(id, ref))
	}
	b.linkBlocks(s)

	// Control-flow reduction (paper §V-C).
	if !b.opts.DisableReduction {
		for {
			compressed := compressBlocks(s)
			merged := mergeBranches(s)
			s.Stats.CompressedBlocks += compressed
			s.Stats.MergedBranches += merged
			if compressed == 0 && merged == 0 {
				break
			}
		}
	}

	// Command access table over final block ids.
	s.CmdTable = &CmdAccessTable{
		Access: make(map[uint64]map[int]bool, len(b.cmdAccess)),
		Global: make(map[int]bool, len(b.global)),
	}
	for cmd, set := range b.cmdAccess {
		av := make(map[int]bool, len(set))
		for ref := range set {
			if id, ok := s.byRef[ref]; ok {
				av[id] = true
			}
		}
		s.CmdTable.Access[cmd] = av
	}
	for ref := range b.global {
		if id, ok := s.byRef[ref]; ok {
			s.CmdTable.Global[id] = true
		}
	}

	entryRef := ir.BlockRef{Handler: b.prog.DispatchHandler, Block: 0}
	entry, ok := s.byRef[entryRef]
	if !ok {
		return nil, fmt.Errorf("core: dispatch entry never observed: %w", ErrNoTraining)
	}
	s.Entry = entry

	// Statistics.
	s.Stats.TrainingRounds = rounds
	s.Stats.ObservedBlocks = len(refs)
	for _, blk := range s.Blocks {
		if blk != nil {
			s.Stats.ESBlocks++
		}
	}
	for _, sl := range b.slices {
		s.Stats.KeptOps += sl.KeptOps
		s.Stats.DroppedOps += sl.DroppedOps
		s.Stats.SyncPoints += len(sl.SyncPoints)
	}
	s.Stats.Commands = len(s.CmdTable.Access)
	for _, set := range b.indirect {
		s.Stats.IndirectTargets += len(set)
	}
	return s, nil
}

// makeBlock builds the ES block for one observed original block: DSOD from
// the retained-op slice (data-dependency recovery marks environment reads
// as sync points) and the NBTD skeleton.
func (b *builder) makeBlock(id int, ref ir.BlockRef) *ESBlock {
	o := b.obs[ref]
	block := b.prog.Block(ref)
	sl := b.sliceOf(ref.Handler)

	es := &ESBlock{
		ID:     id,
		Ref:    ref,
		Kind:   block.Kind,
		Next:   NoBlock,
		Visits: o.visits,
	}
	for oi := range block.Ops {
		if !sl.Kept[ref.Block][oi] {
			continue
		}
		op := &block.Ops[oi]
		es.DSOD = append(es.DSOD, DSODOp{
			Op:           op,
			Ref:          analysis.OpRef{Handler: ref.Handler, Block: ref.Block, Op: oi},
			Sync:         op.Code == ir.OpEnvRead,
			ParamIndexed: b.paramIndexed(ref.Handler, op),
		})
	}

	switch block.Term.Kind {
	case ir.TermBranch:
		es.NBTD = &NBTD{
			Kind:         ir.TermBranch,
			Term:         &block.Term,
			TakenSeen:    o.takenSeen,
			NotTakenSeen: o.notTakenSeen,
			TakenNext:    NoBlock,
			NotTakenNext: NoBlock,
		}
	case ir.TermSwitch:
		es.NBTD = &NBTD{
			Kind:     ir.TermSwitch,
			Term:     &block.Term,
			CaseNext: make(map[uint64]int, len(o.casesSeen)),
		}
	case ir.TermReturn:
		es.Returns = true
	case ir.TermHalt:
		es.Halts = true
	}
	return es
}

// linkBlocks resolves successor ES ids from the static program.
func (b *builder) linkBlocks(s *Spec) {
	lookup := func(handler, blockIdx int) int {
		if id, ok := s.byRef[ir.BlockRef{Handler: handler, Block: blockIdx}]; ok {
			return id
		}
		return NoBlock
	}
	for _, es := range s.Blocks {
		block := b.prog.Block(es.Ref)
		o := b.obs[es.Ref]
		switch block.Term.Kind {
		case ir.TermJump:
			es.Next = lookup(es.Ref.Handler, block.Term.Target)
		case ir.TermBranch:
			if es.NBTD.TakenSeen {
				es.NBTD.TakenNext = lookup(es.Ref.Handler, block.Term.Taken)
			}
			if es.NBTD.NotTakenSeen {
				es.NBTD.NotTakenNext = lookup(es.Ref.Handler, block.Term.NotTaken)
			}
		case ir.TermSwitch:
			for v := range o.casesSeen {
				es.NBTD.CaseNext[v] = lookup(es.Ref.Handler, staticSwitchTarget(&block.Term, v))
			}
		}
	}
}

// staticSwitchTarget resolves a selector value against the switch cases.
func staticSwitchTarget(t *ir.Term, v uint64) int {
	for _, c := range t.Cases {
		if c.Value == v {
			return c.Target
		}
	}
	return t.Default
}

// compressBlocks elides normal blocks with no DSOD and an unconditional
// successor, re-pointing every reference to their (transitive) target. It
// returns the number of blocks removed.
func compressBlocks(s *Spec) int {
	// resolve follows compressible chains with a cycle guard.
	var resolve func(id int, hops int) int
	compressible := func(id int) bool {
		blk := s.Block(id)
		return blk != nil && blk.Kind == ir.KindNormal && len(blk.DSOD) == 0 &&
			blk.NBTD == nil && !blk.Returns && !blk.Halts && blk.Next != NoBlock
	}
	resolve = func(id, hops int) int {
		if hops > len(s.Blocks) || !compressible(id) {
			return id
		}
		return resolve(s.Block(id).Next, hops+1)
	}

	redirect := func(id int) int {
		if id == NoBlock {
			return id
		}
		return resolve(id, 0)
	}

	removed := 0
	for _, blk := range s.Blocks {
		if blk == nil {
			continue
		}
		if blk.NBTD != nil {
			blk.NBTD.TakenNext = redirect(blk.NBTD.TakenNext)
			blk.NBTD.NotTakenNext = redirect(blk.NBTD.NotTakenNext)
			for v, n := range blk.NBTD.CaseNext {
				blk.NBTD.CaseNext[v] = redirect(n)
			}
		} else {
			blk.Next = redirect(blk.Next)
		}
	}
	for ref, id := range s.byRef {
		if t := redirect(id); t != id {
			s.byRef[ref] = t
		}
	}
	for i, blk := range s.Blocks {
		if blk != nil && compressible(blk.ID) && resolve(blk.ID, 0) != blk.ID {
			s.Blocks[i] = nil
			removed++
		}
	}
	return removed
}

// mergeBranches removes NBTDs whose observed arms converge on the same ES
// block (paper §V-C: merge and remove the NBTD of the previous block).
func mergeBranches(s *Spec) int {
	merged := 0
	for _, blk := range s.Blocks {
		if blk == nil || blk.NBTD == nil || blk.NBTD.Kind != ir.TermBranch {
			continue
		}
		n := blk.NBTD
		if n.TakenSeen && n.NotTakenSeen && n.TakenNext == n.NotTakenNext && n.TakenNext != NoBlock {
			blk.Next = n.TakenNext
			blk.NBTD = nil
			merged++
		}
	}
	return merged
}

// InitialShadow builds the shadow device state the checker starts from: a
// copy of the device control structure at deployment time (paper §V-A1).
func (s *Spec) InitialShadow(deviceState *interp.State) *interp.State {
	return deviceState.Clone()
}
