// Package simclock provides a deterministic virtual clock and a seeded
// pseudo-random source for reproducible experiments.
//
// The paper's evaluation runs workloads for 10, 20, and 30 wall-clock hours
// (Table II). This repository replays the same event volumes against a
// virtual clock advanced by emulated I/O work, so multi-hour experiments
// complete in seconds while preserving event counts and ratios.
package simclock

import "time"

// Clock is a manually advanced virtual clock. The zero value is a clock at
// virtual time zero, ready to use.
type Clock struct {
	now time.Duration
}

// New returns a clock starting at virtual time zero.
func New() *Clock { return &Clock{} }

// Now returns the current virtual time as an offset from the clock's epoch.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative durations are ignored so
// that callers converting from subtractions cannot rewind time.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceMicros moves the clock forward by n microseconds.
func (c *Clock) AdvanceMicros(n int64) {
	if n > 0 {
		c.now += time.Duration(n) * time.Microsecond
	}
}

// Hours reports the number of whole virtual hours elapsed.
func (c *Clock) Hours() int { return int(c.now / time.Hour) }

// Rand is a small, fast, deterministic pseudo-random source (xorshift64*).
// It is intentionally independent of math/rand so that experiment replay is
// stable across Go releases. The zero value is not valid; use NewRand.
type Rand struct {
	state uint64
}

// NewRand returns a deterministic source seeded with seed. A zero seed is
// remapped to a fixed non-zero constant because the xorshift state must be
// non-zero.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next value in the sequence.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics if n <= 0, mirroring math/rand.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("simclock: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p in [0, 1].
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Pick returns a uniformly chosen element of xs. It panics on an empty
// slice.
func Pick[T any](r *Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}
