package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := New()
	if c.Now() != 0 {
		t.Fatal("new clock should start at zero")
	}
	c.Advance(90 * time.Minute)
	if c.Hours() != 1 {
		t.Errorf("Hours = %d, want 1", c.Hours())
	}
	c.AdvanceMicros(30 * 60 * 1e6)
	if c.Hours() != 2 {
		t.Errorf("Hours = %d, want 2", c.Hours())
	}
}

func TestClockIgnoresRewind(t *testing.T) {
	c := New()
	c.Advance(time.Hour)
	c.Advance(-time.Hour)
	c.AdvanceMicros(-5)
	if c.Now() != time.Hour {
		t.Errorf("Now = %v, want 1h (negative advances ignored)", c.Now())
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same sequence")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Error("different seeds should diverge immediately (statistically)")
	}
}

func TestRandZeroSeedRemapped(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed must not produce a stuck zero state")
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestFloat64RangeProperty(t *testing.T) {
	r := NewRand(7)
	prop := func(uint8) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnInRangeProperty(t *testing.T) {
	r := NewRand(11)
	prop := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBoolRoughlyCalibrated(t *testing.T) {
	r := NewRand(13)
	hits := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	ratio := float64(hits) / n
	if ratio < 0.20 || ratio > 0.30 {
		t.Errorf("Bool(0.25) hit ratio = %.3f, want ~0.25", ratio)
	}
}

func TestPick(t *testing.T) {
	r := NewRand(17)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Pick over 100 draws covered %d of 3 values", len(seen))
	}
}
