package specstore_test

import (
	"os"
	"path/filepath"
	"testing"

	"sedspec/internal/ir"
	"sedspec/internal/specstore"
)

func buildProg(t *testing.T, name string) *ir.Program {
	t.Helper()
	b := ir.NewBuilder(name)
	h := b.Handler("dispatch")
	h.Block("e").Entry().Halt("return")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProgramHashDeterministicAndSensitive(t *testing.T) {
	a1 := specstore.ProgramHash(buildProg(t, "dev"))
	a2 := specstore.ProgramHash(buildProg(t, "dev"))
	if a1 != a2 {
		t.Error("two builds of the same program hash differently")
	}
	if b := specstore.ProgramHash(buildProg(t, "other")); b == a1 {
		t.Error("different programs share a hash")
	}
}

func TestCorpusHashes(t *testing.T) {
	if specstore.CorpusHash("a") != specstore.CorpusHash("a") {
		t.Error("corpus hash not deterministic")
	}
	if specstore.CorpusHash("a") == specstore.CorpusHash("b") {
		t.Error("distinct corpora share a hash")
	}
	// Tag boundaries matter: ("ab","c") and ("a","bc") are different corpora.
	if specstore.CorpusHash("ab", "c") == specstore.CorpusHash("a", "bc") {
		t.Error("corpus hash ignores tag boundaries")
	}

	w := []specstore.WarningRecord{{Strategy: "conditional-jump-check", Addr: 1, Write: true, Data: []byte{0xF0}}}
	if specstore.EnhancedCorpusHash("p", w) != specstore.EnhancedCorpusHash("p", w) {
		t.Error("enhanced corpus hash not deterministic")
	}
	if specstore.EnhancedCorpusHash("p", w) == specstore.EnhancedCorpusHash("q", w) {
		t.Error("enhanced corpus hash ignores the parent")
	}
	if specstore.EnhancedCorpusHash("p", w) == specstore.EnhancedCorpusHash("p", nil) {
		t.Error("enhanced corpus hash ignores the warnings")
	}
}

func TestOpenRejectsCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "index.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := specstore.Open(dir); err == nil {
		t.Error("corrupt index must fail to open")
	}
}

func TestOpenEmptyStore(t *testing.T) {
	dir := t.TempDir()
	st, err := specstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Latest("dev"); ok {
		t.Error("empty store reports a latest version")
	}
	if vs := st.Versions("dev"); vs != nil {
		t.Errorf("empty store reports versions: %v", vs)
	}
	if _, ok := st.Lookup(specstore.Key{Device: "dev"}); ok {
		t.Error("empty store reports a lookup hit")
	}
}
