package specstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestValidateNamespace(t *testing.T) {
	valid := []string{
		"a", "tenant", "tenant-1", "prod_eu", "team.alpha", "T9",
		"0numeric", strings.Repeat("x", MaxNamespaceLen),
	}
	for _, name := range valid {
		if err := ValidateNamespace(name); err != nil {
			t.Errorf("ValidateNamespace(%q) = %v, want nil", name, err)
		}
	}

	invalid := []string{
		"",
		".",
		"..",
		"../escape",
		"..\\escape",
		"a/../b",
		"a/b",
		`a\b`,
		"/abs",
		"/etc/passwd",
		"C:\\win",
		"-flag",
		"_hidden",
		".dotfile",
		"sp ace",
		"semi;colon",
		"null\x00byte",
		"uni\u2044code", // fraction slash
		strings.Repeat("x", MaxNamespaceLen+1),
	}
	for _, name := range invalid {
		if err := ValidateNamespace(name); err == nil {
			t.Errorf("ValidateNamespace(%q) = nil, want error", name)
		}
	}
}

func TestOpenNamespaceRejectsTraversal(t *testing.T) {
	root := t.TempDir()
	// A sibling directory the traversal would land in if unguarded.
	outside := filepath.Join(root, "..", "outside")

	for _, name := range []string{"../outside", "..", "", "/abs", "a/b"} {
		if _, err := OpenNamespace(root, name); err == nil {
			t.Errorf("OpenNamespace(root, %q) = nil error, want rejection", name)
		}
	}
	if _, err := os.Stat(outside); !os.IsNotExist(err) {
		t.Fatalf("traversal attempt created %s", outside)
	}
}

func TestOpenNamespaceIsolation(t *testing.T) {
	root := t.TempDir()
	a, err := OpenNamespace(root, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	b, err := OpenNamespace(root, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if a.Tenant() != "alpha" || b.Tenant() != "beta" {
		t.Fatalf("tenant stamps wrong: %q / %q", a.Tenant(), b.Tenant())
	}
	if a.Dir() == b.Dir() {
		t.Fatalf("namespaces share a directory: %s", a.Dir())
	}
	for _, st := range []*Store{a, b} {
		if got := filepath.Dir(st.Dir()); got != root {
			t.Fatalf("namespace dir %s escaped root %s", st.Dir(), root)
		}
		if _, err := os.Stat(filepath.Join(st.Dir(), "blobs")); err != nil {
			t.Fatalf("namespace store not initialised: %v", err)
		}
	}
	// Reopening an existing namespace must succeed (idempotent create).
	if _, err := OpenNamespace(root, "alpha"); err != nil {
		t.Fatalf("reopen: %v", err)
	}
}
