package specstore_test

import (
	"testing"

	"sedspec/internal/obs/coverage"
	"sedspec/internal/specstore"
)

func TestCoverageRoundTrip(t *testing.T) {
	st, err := specstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	if _, ok, err := st.LoadCoverage("testdev", 1); err != nil || ok {
		t.Fatalf("empty store: ok=%t err=%v, want miss", ok, err)
	}

	p := &coverage.Profile{
		Device: "testdev", Generation: 1, Rounds: 42,
		Blocks: []coverage.BlockCov{
			{ID: 0, Handler: 0, Block: 0, Kind: "entry", TrainVisits: 3, Hits: 42},
		},
		Edges: []coverage.EdgeCov{
			{FromHandler: 0, FromBlock: 0, ToHandler: 1, ToBlock: 0, Kind: "seq", Hits: 42},
		},
		Commands: []uint64{0x10},
	}
	if err := st.PutCoverage(p); err != nil {
		t.Fatal(err)
	}
	back, ok, err := st.LoadCoverage("testdev", 1)
	if err != nil || !ok {
		t.Fatalf("LoadCoverage: ok=%t err=%v", ok, err)
	}
	if back.Rounds != 42 || len(back.Blocks) != 1 || len(back.Edges) != 1 || back.Edges[0].Kind != "seq" {
		t.Fatalf("round trip lost data: %+v", back)
	}

	// Republishing overwrites: the newest aggregate wins.
	p.Rounds = 100
	if err := st.PutCoverage(p); err != nil {
		t.Fatal(err)
	}
	back, ok, err = st.LoadCoverage("testdev", 1)
	if err != nil || !ok || back.Rounds != 100 {
		t.Fatalf("overwrite: rounds=%d ok=%t err=%v, want 100", back.Rounds, ok, err)
	}

	// Other generations stay independent, and a reopened store sees the
	// published profile.
	if _, ok, _ := st.LoadCoverage("testdev", 2); ok {
		t.Error("generation 2 unexpectedly present")
	}
	st2, err := specstore.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if back, ok, _ := st2.LoadCoverage("testdev", 1); !ok || back.Rounds != 100 {
		t.Errorf("reopened store lost coverage: ok=%t %+v", ok, back)
	}
}
