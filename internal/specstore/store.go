// Package specstore is the spec lifecycle subsystem: a content-addressed,
// versioned on-disk store of learned execution specifications.
//
// The paper's deployment model separates learning (offline, against a
// benign training corpus) from enforcement (online, per I/O). The store is
// the artifact channel between the two: a spec learned once for a
// (device program, training corpus) pair is persisted as a binary blob and
// keyed by the content hashes of both inputs, so relearning the same
// device+corpus is a cache hit rather than a fresh training run. Each
// published version carries generation metadata and — for versions produced
// by the enhancement pipeline — the audit trail of warnings that drove the
// relearn, which is what lets an operator answer "why did the spec change"
// after the fact.
//
// Layout under the store directory:
//
//	index.json         version metadata, append-ordered
//	blobs/<sha256>.spec binary spec blobs (core.Spec EncodeBinary form)
package specstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"sedspec/internal/core"
	"sedspec/internal/ir"
	"sedspec/internal/obs/span"
	"sedspec/internal/obs/stream"
)

// Key identifies a spec by the content of its inputs: the device program
// it was learned against and the training corpus that produced it.
type Key struct {
	Device      string `json:"device"`
	ProgramHash string `json:"programHash"`
	CorpusHash  string `json:"corpusHash"`
}

// WarningRecord is one audited warning that contributed to an enhanced
// spec version: the I/O request that tripped a non-blocking check in
// enhancement mode, replayed into the training corpus of the child spec.
type WarningRecord struct {
	Strategy string `json:"strategy"`
	Session  int    `json:"session"`
	Round    uint64 `json:"round"`
	SpecGen  uint64 `json:"specGen"`
	Space    int    `json:"space"`
	Addr     uint64 `json:"addr"`
	Write    bool   `json:"write"`
	Data     []byte `json:"data,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// VersionMeta describes one published spec version.
type VersionMeta struct {
	Device      string `json:"device"`
	Generation  uint64 `json:"generation"`
	ProgramHash string `json:"programHash"`
	CorpusHash  string `json:"corpusHash"`
	// Blob is the content address: the hex sha256 of the binary encoding.
	Blob string `json:"blob"`
	// Parent is the generation this version was enhanced from (0 for
	// versions created by a fresh learn).
	Parent uint64 `json:"parent,omitempty"`
	// CreatedBy records the pipeline that produced the version: "learn"
	// for a fresh training run, "enhance" for the warning-replay pipeline.
	CreatedBy string `json:"createdBy"`
	// Warnings is the audit trail: the warnings whose replay produced this
	// version (enhance only).
	Warnings []WarningRecord `json:"warnings,omitempty"`
}

// Key returns the content-address key of the version.
func (m VersionMeta) Key() Key {
	return Key{Device: m.Device, ProgramHash: m.ProgramHash, CorpusHash: m.CorpusHash}
}

type indexFile struct {
	Versions []VersionMeta `json:"versions"`
}

// Store is an open spec store. All methods are safe for concurrent use.
type Store struct {
	mu  sync.Mutex
	dir string
	idx indexFile
	// tenant is the namespace this store belongs to (set by
	// OpenNamespace, empty for a root store); stamped on published
	// KindSpec events.
	tenant string
	// hub overrides the publication hub (SetStream); nil selects
	// stream.Default() at publish time.
	hub    *stream.Hub
	hubSet bool
}

// Open opens (creating if needed) a spec store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		return nil, fmt.Errorf("specstore: open %s: %w", dir, err)
	}
	st := &Store{dir: dir}
	data, err := os.ReadFile(filepath.Join(dir, "index.json"))
	switch {
	case os.IsNotExist(err):
	case err != nil:
		return nil, fmt.Errorf("specstore: open %s: %w", dir, err)
	default:
		if err := json.Unmarshal(data, &st.idx); err != nil {
			return nil, fmt.Errorf("specstore: open %s: corrupt index: %w", dir, err)
		}
	}
	return st, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Tenant returns the namespace the store was opened under ("" for a
// root store).
func (st *Store) Tenant() string { return st.tenant }

// SetStream selects the telemetry hub the store publishes KindSpec
// events into (default stream.Default()). SetStream(nil) disables
// publication. Call before sharing the store across goroutines.
func (st *Store) SetStream(h *stream.Hub) {
	st.hub, st.hubSet = h, true
}

func (st *Store) blobPath(blob string) string {
	return filepath.Join(st.dir, "blobs", blob+".spec")
}

// persistIndex writes index.json atomically (write-to-temp + rename).
// Caller holds st.mu.
func (st *Store) persistIndex() error {
	data, err := json.MarshalIndent(&st.idx, "", " ")
	if err != nil {
		return fmt.Errorf("specstore: encode index: %w", err)
	}
	tmp := filepath.Join(st.dir, "index.json.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("specstore: write index: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, "index.json")); err != nil {
		return fmt.Errorf("specstore: commit index: %w", err)
	}
	return nil
}

// Put publishes a spec version. The blob is content-addressed by the hash
// of its binary encoding; meta.Device, meta.Generation, and meta.Blob are
// filled in by the store (Generation is the next per-device generation).
// Publishing a spec whose (key, blob) already exists is idempotent and
// returns the existing version.
func (st *Store) Put(spec *core.Spec, meta VersionMeta) (VersionMeta, error) {
	sp := span.Default().Start("store.put", span.Device(spec.Device))
	m, fresh, err := st.put(spec, meta)
	sp.End(span.Gen(m.Generation))
	if err == nil && fresh {
		hub := st.hub
		if !st.hubSet {
			hub = stream.Default()
		}
		// A fresh generation landing in the store is a fleet-visible
		// lifecycle moment: operators tailing the stream see enhancement
		// pipelines produce versions before any engine swaps to them.
		hub.Publish(stream.Event{
			Kind:    stream.KindSpec,
			Tenant:  st.tenant,
			Device:  m.Device,
			Session: -1,
			SpecGen: m.Generation,
			Spec: &stream.SpecInfo{
				Generation: m.Generation,
				Parent:     m.Parent,
				CreatedBy:  m.CreatedBy,
				Blob:       m.Blob,
			},
		})
	}
	return m, err
}

func (st *Store) put(spec *core.Spec, meta VersionMeta) (VersionMeta, bool, error) {
	data, err := spec.EncodeBinary()
	if err != nil {
		return VersionMeta{}, false, fmt.Errorf("specstore: put: %w", err)
	}
	sum := sha256.Sum256(data)
	blob := hex.EncodeToString(sum[:])

	st.mu.Lock()
	defer st.mu.Unlock()

	meta.Device = spec.Device
	meta.Blob = blob
	var gen uint64
	for _, v := range st.idx.Versions {
		if v.Device != meta.Device {
			continue
		}
		if v.Generation > gen {
			gen = v.Generation
		}
		if v.Blob == blob && v.ProgramHash == meta.ProgramHash && v.CorpusHash == meta.CorpusHash {
			return v, false, nil
		}
	}
	meta.Generation = gen + 1

	path := st.blobPath(blob)
	if _, err := os.Stat(path); os.IsNotExist(err) {
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return VersionMeta{}, false, fmt.Errorf("specstore: write blob: %w", err)
		}
		if err := os.Rename(tmp, path); err != nil {
			return VersionMeta{}, false, fmt.Errorf("specstore: commit blob: %w", err)
		}
	}

	st.idx.Versions = append(st.idx.Versions, meta)
	if err := st.persistIndex(); err != nil {
		return VersionMeta{}, false, err
	}
	return meta, true, nil
}

// Lookup returns the newest version matching the key, if any. This is the
// cache-hit path: a caller about to learn checks Lookup first and loads
// the blob instead of training when the same program+corpus was already
// learned.
func (st *Store) Lookup(key Key) (VersionMeta, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := len(st.idx.Versions) - 1; i >= 0; i-- {
		if st.idx.Versions[i].Key() == key {
			return st.idx.Versions[i], true
		}
	}
	return VersionMeta{}, false
}

// Latest returns the newest version for the device, if any.
func (st *Store) Latest(device string) (VersionMeta, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var best VersionMeta
	found := false
	for _, v := range st.idx.Versions {
		if v.Device == device && (!found || v.Generation > best.Generation) {
			best, found = v, true
		}
	}
	return best, found
}

// Versions returns all versions for the device in generation order.
func (st *Store) Versions(device string) []VersionMeta {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []VersionMeta
	for _, v := range st.idx.Versions {
		if v.Device == device {
			out = append(out, v)
		}
	}
	return out
}

// Load reads a version's blob and rebinds it to the device program.
func (st *Store) Load(prog *ir.Program, meta VersionMeta) (*core.Spec, error) {
	sp := span.Default().Start("store.get", span.Device(meta.Device), span.Gen(meta.Generation))
	defer sp.End()
	data, err := os.ReadFile(st.blobPath(meta.Blob))
	if err != nil {
		return nil, fmt.Errorf("specstore: load gen %d: %w", meta.Generation, err)
	}
	sum := sha256.Sum256(data)
	if hex.EncodeToString(sum[:]) != meta.Blob {
		return nil, fmt.Errorf("specstore: load gen %d: blob hash mismatch (corrupt store)", meta.Generation)
	}
	spec, err := core.DecodeBinary(prog, data)
	if err != nil {
		return nil, fmt.Errorf("specstore: load gen %d: %w", meta.Generation, err)
	}
	return spec, nil
}

// ProgramHash computes a content hash of the device program: name, control
// structure layout, and every handler's blocks, ops, and terminators. Two
// builds of the same device program hash identically; any change to the
// program (the spec's "source code") changes the hash and misses the cache.
func ProgramHash(prog *ir.Program) string {
	h := sha256.New()
	fmt.Fprintf(h, "program %s dispatch=%d arena=%d\n", prog.Name, prog.DispatchHandler, prog.ArenaSize)
	for i := range prog.Fields {
		fmt.Fprintf(h, "field %+v\n", prog.Fields[i])
	}
	for i := range prog.Handlers {
		hd := &prog.Handlers[i]
		fmt.Fprintf(h, "handler %s idx=%d region=%d temps=%d\n", hd.Name, hd.Index, hd.Region, hd.NumTemps)
		for j := range hd.Blocks {
			b := &hd.Blocks[j]
			fmt.Fprintf(h, "block %s kind=%d\n", b.Label, b.Kind)
			for k := range b.Ops {
				fmt.Fprintf(h, "op %+v\n", b.Ops[k])
			}
			fmt.Fprintf(h, "term %+v\n", b.Term)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CorpusHash derives a content hash for a training corpus from
// caller-supplied tags (a corpus name, seed, sample count — whatever
// deterministically identifies the training input).
func CorpusHash(tags ...string) string {
	h := sha256.New()
	for _, t := range tags {
		fmt.Fprintf(h, "%d:%s\n", len(t), t)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// EnhancedCorpusHash derives the corpus hash of an enhanced spec: the
// parent corpus extended by the audited warning replays. Enhancing the
// same parent with the same warnings lands on the same key.
func EnhancedCorpusHash(parent string, warnings []WarningRecord) string {
	h := sha256.New()
	fmt.Fprintf(h, "parent %s\n", parent)
	for _, w := range warnings {
		fmt.Fprintf(h, "warn %s space=%d addr=%#x write=%t data=%x\n",
			w.Strategy, w.Space, w.Addr, w.Write, w.Data)
	}
	return hex.EncodeToString(h.Sum(nil))
}
