package specstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"sedspec/internal/obs/coverage"
)

// Coverage profiles live next to the spec blobs, one JSON file per
// (device, generation):
//
//	coverage/<device>-g<generation>.coverage.json
//
// A profile is runtime evidence about a version — how enforcement
// actually exercised the spec's structure — so unlike blobs it is keyed
// by version, not content, and republishing overwrites: the newest
// aggregate wins.

func (st *Store) coveragePath(device string, gen uint64) string {
	return filepath.Join(st.dir, "coverage", fmt.Sprintf("%s-g%d.coverage.json", device, gen))
}

// PutCoverage persists a coverage profile for a spec generation.
func (st *Store) PutCoverage(p *coverage.Profile) error {
	data, err := json.MarshalIndent(p, "", " ")
	if err != nil {
		return fmt.Errorf("specstore: encode coverage: %w", err)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := os.MkdirAll(filepath.Join(st.dir, "coverage"), 0o755); err != nil {
		return fmt.Errorf("specstore: put coverage: %w", err)
	}
	path := st.coveragePath(p.Device, p.Generation)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("specstore: write coverage: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("specstore: commit coverage: %w", err)
	}
	return nil
}

// LoadCoverage reads the persisted coverage profile of a spec generation.
// ok is false when none was published.
func (st *Store) LoadCoverage(device string, gen uint64) (*coverage.Profile, bool, error) {
	st.mu.Lock()
	path := st.coveragePath(device, gen)
	st.mu.Unlock()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("specstore: load coverage gen %d: %w", gen, err)
	}
	var p coverage.Profile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, false, fmt.Errorf("specstore: load coverage gen %d: %w", gen, err)
	}
	return &p, true, nil
}
