package specstore

import (
	"fmt"
	"path/filepath"
	"strings"
)

// MaxNamespaceLen bounds tenant namespace names; long enough for any
// reasonable deployment name, short enough that the name stays a sane
// single path component on every filesystem.
const MaxNamespaceLen = 64

// ValidateNamespace checks that a tenant namespace name is safe to use
// as a single directory component under a store root. The control
// plane accepts tenant names over the network, so the name must never
// be able to escape the root: no path separators (which rules out
// `../` traversal and absolute paths in one stroke), no `.`/`..`, no
// empty or oversized names, and a conservative first character so
// names never collide with the store's own files or look like flags.
//
// Allowed: letters, digits, `-`, `_`, `.` — starting with a letter or
// digit.
func ValidateNamespace(name string) error {
	if name == "" {
		return fmt.Errorf("specstore: namespace name is empty")
	}
	if len(name) > MaxNamespaceLen {
		return fmt.Errorf("specstore: namespace %q exceeds %d bytes", name, MaxNamespaceLen)
	}
	if name == "." || name == ".." {
		return fmt.Errorf("specstore: namespace %q is a relative path component", name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
			if i == 0 {
				return fmt.Errorf("specstore: namespace %q must start with a letter or digit", name)
			}
		default:
			return fmt.Errorf("specstore: namespace %q contains forbidden byte %q", name, c)
		}
	}
	// Belt and braces: the character whitelist above already excludes
	// separators, but assert the filesystem-level property the whole
	// scheme depends on so a future whitelist edit cannot silently
	// reopen traversal.
	if filepath.Base(name) != name || strings.ContainsAny(name, `/\`) {
		return fmt.Errorf("specstore: namespace %q is not a single path component", name)
	}
	return nil
}

// OpenNamespace opens (creating if needed) the tenant's spec store
// under root: a fully independent store at root/<tenant>, so tenants
// never see each other's generations or blobs. The tenant name is
// validated with ValidateNamespace and stamped onto every KindSpec
// event the namespace store publishes.
func OpenNamespace(root, tenant string) (*Store, error) {
	if err := ValidateNamespace(tenant); err != nil {
		return nil, err
	}
	st, err := Open(filepath.Join(root, tenant))
	if err != nil {
		return nil, err
	}
	st.tenant = tenant
	return st, nil
}
