package cvesim_test

import (
	"testing"

	"sedspec/internal/checker"
	"sedspec/internal/cvesim"
)

// TestGroundTruth verifies every PoC's exploit effect on an unprotected
// device (except the DoS case, whose "success" is state-based).
func TestGroundTruth(t *testing.T) {
	for _, p := range cvesim.All() {
		t.Run(p.CVE, func(t *testing.T) {
			out, err := p.RunUnprotected()
			if err != nil {
				t.Fatalf("RunUnprotected: %v", err)
			}
			if !out.Succeeded {
				t.Errorf("%s exploit did not reach the unprotected device", p.CVE)
			}
		})
	}
}

// TestDetectionMatrix reproduces the per-strategy columns of Table III:
// every expected strategy detects its PoC in isolation, and the documented
// miss stays missed under full protection.
func TestDetectionMatrix(t *testing.T) {
	strategies := []checker.Strategy{
		checker.StrategyParameter,
		checker.StrategyIndirectJump,
		checker.StrategyConditionalJump,
	}
	for _, p := range cvesim.All() {
		p := p
		t.Run(p.CVE, func(t *testing.T) {
			expected := make(map[checker.Strategy]bool, len(p.Expected))
			for _, s := range p.Expected {
				expected[s] = true
			}
			for _, s := range strategies {
				out, err := p.RunProtected(s)
				if err != nil {
					t.Fatalf("RunProtected(%v): %v", s, err)
				}
				if expected[s] && !out.Detected {
					t.Errorf("strategy %v should detect %s", s, p.CVE)
				}
				if expected[s] && out.Detected && out.Anomaly.Strategy != s {
					t.Errorf("anomaly strategy = %v, want %v", out.Anomaly.Strategy, s)
				}
			}
			// Full protection: detected iff any strategy is expected.
			out, err := p.RunProtected()
			if err != nil {
				t.Fatalf("RunProtected(all): %v", err)
			}
			if len(p.Expected) > 0 && !out.Detected {
				t.Errorf("%s should be detected under full protection", p.CVE)
			}
			if len(p.Expected) == 0 {
				if out.Detected {
					t.Errorf("%s should be missed (documented false negative)", p.CVE)
				}
				if !out.Succeeded {
					t.Errorf("%s exploit should succeed despite protection", p.CVE)
				}
			}
			if len(p.Expected) > 0 && out.Detected && out.Succeeded {
				t.Errorf("%s blocked but the exploit effect still reached the device", p.CVE)
			}
		})
	}
}

// TestBenignCleanUnderProtection re-runs each PoC's training workload
// under full protection: zero anomalies expected.
func TestBenignCleanUnderProtection(t *testing.T) {
	for _, p := range cvesim.All() {
		p := p
		t.Run(p.CVE, func(t *testing.T) {
			n, err := p.VerifyBenign()
			if err != nil {
				t.Fatalf("VerifyBenign: %v", err)
			}
			if n != 0 {
				t.Errorf("benign anomalies = %d, want 0", n)
			}
		})
	}
}

func TestByCVE(t *testing.T) {
	if cvesim.ByCVE("CVE-2015-3456") == nil {
		t.Error("Venom PoC missing")
	}
	if cvesim.ByCVE("CVE-0000-0000") != nil {
		t.Error("unknown CVE should return nil")
	}
	if len(cvesim.All()) != 9 {
		t.Errorf("PoC count = %d, want 9 (8 case studies + the miss)", len(cvesim.All()))
	}
}
