// Package cvesim packages the proof-of-concept exploit streams of the
// paper's case studies (§VII-B2) so that the experiment harness can replay
// them against protected and unprotected devices. Each PoC carries the CVE
// identity, the QEMU version the paper used, the check strategies the
// paper reports detecting it (Table III), a benign training routine, the
// exploit itself, and a ground-truth probe for whether the exploit's
// effect reached the device.
package cvesim

import (
	"errors"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/machine"
)

// PoC is one replayable case study.
type PoC struct {
	// CVE is the vulnerability identifier.
	CVE string
	// Device names the emulated device.
	Device string
	// QEMU is the QEMU version the paper evaluated against.
	QEMU string
	// Expected lists the strategies Table III reports detecting the
	// exploit (empty for the documented miss, CVE-2016-1568).
	Expected []checker.Strategy

	// Build constructs a fresh vulnerable device and its attachment
	// options.
	Build func() (machine.Device, []machine.AttachOption)
	// Train is the device's benign training routine.
	Train sedspec.TrainFunc
	// Exploit drives the proof of concept. A blocked I/O surfaces as an
	// error wrapping a *checker.Anomaly.
	Exploit func(d *sedspec.Driver, m *machine.Machine) error
	// Succeeded probes the device/machine for the exploit's effect.
	Succeeded func(dev machine.Device, m *machine.Machine) bool
}

// Outcome is the result of replaying a PoC.
type Outcome struct {
	CVE       string
	Strategy  checker.Strategy // strategy under test (0 = all)
	Detected  bool
	Anomaly   *checker.Anomaly
	Succeeded bool // ground truth: exploit effect reached the device
	// Spec is the specification the protected run enforced (nil for
	// unprotected runs) — the generation an Anomaly can be audited
	// against with checker.TrainingCoverage.
	Spec *sedspec.Spec
	// Checker is the protected run's checker (nil for unprotected runs);
	// its coverage map records which spec structure the run exercised.
	Checker *checker.Checker
}

// attach builds a machine with the PoC's device.
func (p *PoC) attach() (*machine.Machine, *machine.Attached) {
	m := machine.New(machine.WithMemory(1 << 20))
	dev, opts := p.Build()
	att := m.Attach(dev, opts...)
	return m, att
}

// RunUnprotected replays the exploit with no checker, returning the
// ground-truth outcome.
func (p *PoC) RunUnprotected() (Outcome, error) {
	m, att := p.attach()
	err := p.Exploit(sedspec.NewDriver(att), m)
	if err != nil && !errors.Is(err, machine.ErrBlocked) {
		return Outcome{}, err
	}
	return Outcome{
		CVE:       p.CVE,
		Succeeded: p.Succeeded(att.Dev(), m),
	}, nil
}

// RunProtected learns a specification from the PoC's training routine,
// attaches a checker restricted to the given strategies (none = all
// three), and replays the exploit.
func (p *PoC) RunProtected(strategies ...checker.Strategy) (Outcome, error) {
	return p.RunProtectedWith(nil, strategies...)
}

// RunProtectedWith is RunProtected with extra checker options prepended
// (e.g. checker.WithReferenceSimulation for the sealed-vs-unsealed
// differential).
func (p *PoC) RunProtectedWith(extra []checker.Option, strategies ...checker.Strategy) (Outcome, error) {
	m, att := p.attach()
	spec, err := sedspec.Learn(att, p.Train)
	if err != nil {
		return Outcome{}, err
	}
	var opts []checker.Option
	opts = append(opts, extra...)
	if len(strategies) > 0 {
		opts = append(opts, checker.WithStrategies(strategies...))
	}
	opts = append(opts, checker.WithBudget(200_000))
	chk := sedspec.Protect(att, spec, opts...)

	out := Outcome{CVE: p.CVE, Spec: spec, Checker: chk}
	if len(strategies) == 1 {
		out.Strategy = strategies[0]
	}
	err = p.Exploit(sedspec.NewDriver(att), m)
	var anom *checker.Anomaly
	if errors.As(err, &anom) {
		out.Detected = true
		out.Anomaly = anom
	} else if err != nil && !errors.Is(err, machine.ErrBlocked) && !errors.Is(err, machine.ErrHalted) {
		return Outcome{}, err
	}
	out.Succeeded = p.Succeeded(att.Dev(), m)
	return out, nil
}

// VerifyBenign learns a spec and replays the PoC's training routine under
// full protection, returning the number of anomalies (expected zero).
func (p *PoC) VerifyBenign() (int, error) {
	m, att := p.attach()
	spec, err := sedspec.Learn(att, p.Train)
	if err != nil {
		return 0, err
	}
	chk := sedspec.Protect(att, spec)
	if err := p.Train(sedspec.NewDriver(att)); err != nil {
		return 0, err
	}
	_ = m
	st := chk.Stats()
	return int(st.ParamAnomalies + st.IndirectAnomalies + st.CondAnomalies), nil
}

// All returns the paper's eight case studies plus the documented miss.
func All() []*PoC {
	return []*PoC{
		Venom(),
		EHCI14364(),
		PCNet7504(),
		PCNet7512(),
		PCNet7909(),
		SDHCI3409(),
		SCSI5158(),
		SCSI4439(),
		EHCI1568(),
	}
}

// ByCVE returns the PoC with the given identifier, or nil.
func ByCVE(id string) *PoC {
	for _, p := range All() {
		if p.CVE == id {
			return p
		}
	}
	return nil
}
