package cvesim

import (
	"encoding/binary"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/ehci"
	"sedspec/internal/devices/fdc"
	"sedspec/internal/devices/pcnet"
	"sedspec/internal/devices/scsi"
	"sedspec/internal/devices/sdhci"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/workload"
)

var lightCfg = workload.TrainConfig{Light: true}

// Venom is CVE-2015-3456: unbounded FDC FIFO index growth after an invalid
// command.
func Venom() *PoC {
	return &PoC{
		CVE:    "CVE-2015-3456",
		Device: "fdc",
		QEMU:   "v2.3.0",
		Expected: []checker.Strategy{
			checker.StrategyParameter,
			checker.StrategyConditionalJump,
		},
		Build: func() (machine.Device, []machine.AttachOption) {
			return fdc.New(fdc.Options{}), []machine.AttachOption{machine.WithPIO(0, fdc.PortCount)}
		},
		Train: func(d *sedspec.Driver) error { return workload.TrainFDC(d, lightCfg) },
		Exploit: func(d *sedspec.Driver, _ *machine.Machine) error {
			g := fdc.NewGuest(d)
			if err := g.PushFIFO(0x77); err != nil { // invalid command
				return err
			}
			for i := 0; i < 540; i++ {
				if err := g.PushFIFO(0x42); err != nil {
					return err
				}
			}
			return nil
		},
		Succeeded: func(dev machine.Device, _ *machine.Machine) bool {
			pos, _ := dev.State().IntByName("data_pos")
			return pos > fdc.FifoSize
		},
	}
}

// EHCI14364 is CVE-2020-14364: oversized setup_len plus negative
// setup_index walking writes onto the device callback pointer.
func EHCI14364() *PoC {
	return &PoC{
		CVE:    "CVE-2020-14364",
		Device: "ehci",
		QEMU:   "v5.1.0",
		Expected: []checker.Strategy{
			checker.StrategyParameter,
			checker.StrategyIndirectJump,
		},
		Build: func() (machine.Device, []machine.AttachOption) {
			return ehci.New(ehci.Options{}), []machine.AttachOption{machine.WithMMIO(0, ehci.RegionSize)}
		},
		Train: func(d *sedspec.Driver) error { return workload.TrainEHCI(d, lightCfg) },
		Exploit: func(d *sedspec.Driver, m *machine.Machine) error {
			g := ehci.NewGuest(d)
			dev := d.Attached().Dev()
			gadget := uint64(dev.Program().HandlerIndex("host_gadget"))
			if err := m.Mem.Write(0x8000, []byte{0x00, ehci.ReqClearFeature, 0, 0, 0, 0, 0xFF, 0xFF}); err != nil {
				return err
			}
			overwrite := make([]byte, 8)
			binary.LittleEndian.PutUint32(overwrite, 0xFFFF_FFE4) // -28
			if err := m.Mem.Write(0x9000, overwrite); err != nil {
				return err
			}
			payload := make([]byte, 8)
			binary.LittleEndian.PutUint64(payload, gadget)
			if err := m.Mem.Write(0xA000, payload); err != nil {
				return err
			}
			return g.Run([]ehci.TD{
				{Pid: ehci.PidSetup, Len: 8, Buffer: 0x8000},
				{Pid: ehci.PidOut, Len: 4096, Buffer: 0x8100},
				{Pid: ehci.PidOut, Len: 8, Buffer: 0x9000},
				{Pid: ehci.PidOut, Len: 8, Buffer: 0xA000},
				{Pid: ehci.PidIn, Len: 4, Buffer: 0x8200, IOC: true},
			})
		},
		Succeeded: func(dev machine.Device, _ *machine.Machine) bool {
			v, _ := dev.State().IntByName("frindex")
			return v == 0xBAD
		},
	}
}

func pcnetPoC(cve string, expected []checker.Strategy,
	exploit func(g *pcnet.Guest, d *sedspec.Driver, m *machine.Machine) error,
	succeeded func(dev machine.Device, m *machine.Machine) bool) *PoC {
	return &PoC{
		CVE:      cve,
		Device:   "pcnet",
		QEMU:     map[string]string{"CVE-2015-7504": "v2.4.0", "CVE-2015-7512": "v2.4.0", "CVE-2016-7909": "v2.6.0"}[cve],
		Expected: expected,
		Build: func() (machine.Device, []machine.AttachOption) {
			return pcnet.New(pcnet.Options{}), []machine.AttachOption{machine.WithPIO(0, pcnet.PortCount)}
		},
		Train: func(d *sedspec.Driver) error { return workload.TrainPCNet(d, lightCfg) },
		Exploit: func(d *sedspec.Driver, m *machine.Machine) error {
			return exploit(pcnet.NewGuest(d), d, m)
		},
		Succeeded: succeeded,
	}
}

// PCNet7504 is CVE-2015-7504: the receive FCS append lands on the
// interrupt callback pointer.
func PCNet7504() *PoC {
	return pcnetPoC("CVE-2015-7504",
		[]checker.Strategy{checker.StrategyIndirectJump},
		func(g *pcnet.Guest, d *sedspec.Driver, _ *machine.Machine) error {
			g.RxLen = 2
			if err := g.Setup(0); err != nil {
				return err
			}
			if err := g.ProvideRx(0); err != nil {
				return err
			}
			dev := d.Attached().Dev()
			gadget := uint32(dev.Program().HandlerIndex("host_gadget"))
			f := make([]byte, pcnet.BufSize)
			binary.LittleEndian.PutUint32(f[pcnet.BufSize-4:], gadget)
			return g.InjectWireFrame(f)
		},
		func(dev machine.Device, _ *machine.Machine) bool {
			v, _ := dev.State().IntByName("csr0")
			return v == 0xFFFF
		})
}

// PCNet7512 is CVE-2015-7512: xmit_pos accumulation past the frame buffer
// in loopback.
func PCNet7512() *PoC {
	return pcnetPoC("CVE-2015-7512",
		[]checker.Strategy{checker.StrategyParameter, checker.StrategyIndirectJump},
		func(g *pcnet.Guest, d *sedspec.Driver, _ *machine.Machine) error {
			if err := g.Setup(pcnet.ModeLoop); err != nil {
				return err
			}
			if err := g.ProvideRx(0); err != nil {
				return err
			}
			dev := d.Attached().Dev()
			gadget := uint64(dev.Program().HandlerIndex("host_gadget"))
			chunk1 := make([]byte, 4000)
			chunk2 := make([]byte, 128)
			binary.LittleEndian.PutUint64(chunk2[96:], gadget)
			return g.Transmit(chunk1, chunk2)
		},
		func(dev machine.Device, _ *machine.Machine) bool {
			v, _ := dev.State().IntByName("csr0")
			return v == 0xFFFF
		})
}

// PCNet7909 is CVE-2016-7909: RCVRL = 0 spins the receive-ring scan.
func PCNet7909() *PoC {
	return pcnetPoC("CVE-2016-7909",
		[]checker.Strategy{checker.StrategyConditionalJump},
		func(g *pcnet.Guest, d *sedspec.Driver, _ *machine.Machine) error {
			d.Attached().Interp().SetStepBudget(200_000)
			g.RxLen = 0
			if err := g.Setup(0); err != nil {
				return err
			}
			return g.InjectWireFrame(make([]byte, 64))
		},
		func(dev machine.Device, m *machine.Machine) bool {
			// Success for the attacker is the hang (denial of service):
			// probe by injecting one more frame and seeing the emulation
			// exhaust its step budget. On a protected machine the halt
			// blocks the probe, so the attack never "succeeds".
			att := m.Device("pcnet")
			if att == nil {
				return false
			}
			res, err := att.DispatchDirect(interp.NewWrite(interp.SpacePIO, pcnet.PortWire, make([]byte, 64)))
			if err != nil {
				return false
			}
			return res.Fault != nil && res.Fault.Kind == interp.FaultStepBudget
		})
}

// SDHCI3409 is CVE-2021-3409: BLKSIZE shrunk mid-transfer underflows the
// remaining-bytes expression.
func SDHCI3409() *PoC {
	return &PoC{
		CVE:      "CVE-2021-3409",
		Device:   "sdhci",
		QEMU:     "v5.2.0",
		Expected: []checker.Strategy{checker.StrategyParameter},
		Build: func() (machine.Device, []machine.AttachOption) {
			return sdhci.New(sdhci.Options{}), []machine.AttachOption{machine.WithMMIO(0, sdhci.RegionSize)}
		},
		Train: func(d *sedspec.Driver) error { return workload.TrainSDHCI(d, lightCfg) },
		Exploit: func(d *sedspec.Driver, _ *machine.Machine) error {
			g := sdhci.NewGuest(d)
			if err := g.InitCard(); err != nil {
				return err
			}
			if err := g.Write32(sdhci.RegSDMA, g.DMABuf); err != nil {
				return err
			}
			if err := g.Write16(sdhci.RegBlkSize, 512); err != nil {
				return err
			}
			if err := g.Write16(sdhci.RegBlkCnt, 4); err != nil {
				return err
			}
			if err := g.Command(sdhci.CmdWriteMulti, 0); err != nil {
				return err
			}
			if err := g.Write16(sdhci.RegBlkSize, 64); err != nil {
				return err
			}
			return g.ResumeDMA()
		},
		Succeeded: func(dev machine.Device, _ *machine.Machine) bool {
			v, _ := dev.State().IntByName("space_left")
			return v >= 0xFF00 // the underflow was latched
		},
	}
}

func scsiPoC(cve string, expected []checker.Strategy,
	exploit func(g *scsi.Guest, m *machine.Machine) error,
	succeeded func(dev machine.Device, m *machine.Machine) bool) *PoC {
	return &PoC{
		CVE:      cve,
		Device:   "scsi",
		QEMU:     map[string]string{"CVE-2015-5158": "v2.4.0", "CVE-2016-4439": "v2.6.0"}[cve],
		Expected: expected,
		Build: func() (machine.Device, []machine.AttachOption) {
			return scsi.New(scsi.Options{}), []machine.AttachOption{machine.WithPIO(0, scsi.PortCount)}
		},
		Train: func(d *sedspec.Driver) error { return workload.TrainSCSI(d, lightCfg) },
		Exploit: func(d *sedspec.Driver, m *machine.Machine) error {
			return exploit(scsi.NewGuest(d), m)
		},
		Succeeded: succeeded,
	}
}

// SCSI5158 is CVE-2015-5158: oversized DMA-selected command block
// overflowing cmdbuf.
func SCSI5158() *PoC {
	return scsiPoC("CVE-2015-5158",
		[]checker.Strategy{checker.StrategyConditionalJump},
		func(g *scsi.Guest, m *machine.Machine) error {
			blk := make([]byte, 201)
			blk[0] = 200
			for i := 1; i < len(blk); i++ {
				blk[i] = 0xEE
			}
			if err := m.Mem.Write(uint64(g.DMABuf), blk); err != nil {
				return err
			}
			if err := g.SetDMA(g.DMABuf); err != nil {
				return err
			}
			return g.Cmd(scsi.ESPDMASel)
		},
		func(dev machine.Device, _ *machine.Machine) bool {
			v, _ := dev.State().IntByName("dest_id")
			return v == 0xEE
		})
}

// SCSI4439 is CVE-2016-4439: unbounded TI FIFO writes walking the write
// pointer out of the buffer.
func SCSI4439() *PoC {
	return scsiPoC("CVE-2016-4439",
		[]checker.Strategy{checker.StrategyParameter, checker.StrategyConditionalJump},
		func(g *scsi.Guest, _ *machine.Machine) error {
			for i := 0; i < 20; i++ {
				if err := g.PushFIFO(0x41); err != nil {
					return err
				}
			}
			return g.Cmd(scsi.ESPSelATN)
		},
		func(dev machine.Device, _ *machine.Machine) bool {
			wp, _ := dev.State().IntByName("ti_wptr")
			return wp > scsi.TIBufSize
		})
}

// EHCI1568 is CVE-2016-1568, the paper's documented miss: a use-after-free
// whose exploit path is control-flow-identical to benign traffic.
func EHCI1568() *PoC {
	return &PoC{
		CVE:      "CVE-2016-1568",
		Device:   "ehci",
		QEMU:     "v2.5.0",
		Expected: nil, // no strategy detects it
		Build: func() (machine.Device, []machine.AttachOption) {
			return ehci.New(ehci.Options{}), []machine.AttachOption{machine.WithMMIO(0, ehci.RegionSize)}
		},
		Train: func(d *sedspec.Driver) error { return workload.TrainEHCI(d, lightCfg) },
		Exploit: func(d *sedspec.Driver, m *machine.Machine) error {
			g := ehci.NewGuest(d)
			if err := m.Mem.Write(0xF000, []byte{0xAA, 0xAA}); err != nil {
				return err
			}
			if err := g.ControlIn(ehci.ReqGetStatus, 0, 2); err != nil {
				return err
			}
			if err := g.Doorbell(); err != nil {
				return err
			}
			buf := make([]byte, 16)
			binary.LittleEndian.PutUint32(buf[ehci.TDToken:], ehci.PidIn|64<<16)
			binary.LittleEndian.PutUint32(buf[ehci.TDBuffer:], 0xF000)
			if err := m.Mem.Write(0x0810, buf); err != nil {
				return err
			}
			return g.Resume()
		},
		Succeeded: func(_ machine.Device, m *machine.Machine) bool {
			got := make([]byte, 1)
			if err := m.Mem.Read(0xF000, got); err != nil {
				return false
			}
			return got[0] != 0xAA // the wild write landed
		},
	}
}
