package itccfg

import (
	"strings"
	"testing"

	"sedspec/internal/interp"
	"sedspec/internal/ir"
	"sedspec/internal/trace"
)

// buildBranchy builds a device with one conditional whose taken arm only
// fires for large inputs, a switch over two commands, and an indirect call.
func buildBranchy(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("branchy")
	lvl := b.Int("lvl", ir.W8, ir.HWRegister())
	cb := b.Func("cb")

	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	fv := e.FuncValue("on_high", "s->cb = on_high")
	e.StoreFunc(cb, fv, "s->cb = on_high")
	addr := e.IOAddr("addr")
	e.Switch(addr, "switch (addr)", "out",
		ir.Case(0, "set"),
		ir.Case(1, "check"),
	)

	s := h.Block("set")
	v := s.IOIn(ir.W8, "v = ioread8()")
	s.Store(lvl, v, "s->lvl = v")
	s.Jump("out", "goto out")

	c := h.Block("check").CmdDecision()
	lv := c.Load(lvl, "l = s->lvl")
	hi := c.Const(200, "200")
	c.Branch(lv, ir.RelGT, hi, ir.W8, false, "if (l > 200)", "high", "out")

	hb := h.Block("high")
	hb.CallPtr(cb, "s->cb()")
	hb.Jump("out", "goto out")

	h.Block("out").Exit().Halt("return")

	oh := b.Handler("on_high")
	ohb := oh.Block("body")
	ohb.IRQRaise("irq")
	ohb.Return("return")

	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog
}

func collect(t testing.TB, prog *ir.Program, reqs []*interp.Request) *Graph {
	t.Helper()
	st := interp.NewState(prog)
	in := interp.New(prog, st, nil)
	col := trace.NewCollector(trace.DeviceConfig(prog))
	in.SetTracer(col)
	for _, r := range reqs {
		if res := in.Dispatch(r); res.Fault != nil {
			t.Fatalf("fault: %v", res.Fault)
		}
	}
	runs, err := trace.Decode(prog, col.Packets())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	g := New(prog)
	for _, r := range runs {
		g.AddRun(r)
	}
	return g
}

func TestGraphMergesRuns(t *testing.T) {
	prog := buildBranchy(t)
	g := collect(t, prog, []*interp.Request{
		interp.NewWrite(interp.SpacePIO, 0, []byte{10}),
		interp.NewWrite(interp.SpacePIO, 1, nil),
		interp.NewWrite(interp.SpacePIO, 0, []byte{20}),
		interp.NewWrite(interp.SpacePIO, 1, nil),
	})
	if g.Runs() != 4 {
		t.Errorf("Runs = %d, want 4", g.Runs())
	}
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty graph")
	}
	entry := ir.BlockRef{Handler: 0, Block: 0}
	if !g.HasNode(entry) {
		t.Error("entry node missing")
	}
	// With only small lvl values the "high" block is never reached.
	high := ir.BlockRef{Handler: 0, Block: 3}
	if g.HasNode(high) {
		t.Error("high block should be unobserved")
	}
}

func TestCondBlocksArmCoverage(t *testing.T) {
	prog := buildBranchy(t)
	// Only not-taken observed (lvl small).
	g := collect(t, prog, []*interp.Request{
		interp.NewWrite(interp.SpacePIO, 0, []byte{10}),
		interp.NewWrite(interp.SpacePIO, 1, nil),
	})
	cbs := g.CondBlocks()
	if len(cbs) != 1 {
		t.Fatalf("CondBlocks = %d, want 1", len(cbs))
	}
	if cbs[0].SeenTaken || !cbs[0].SeenNotTaken {
		t.Errorf("arm coverage = %+v, want not-taken only", cbs[0])
	}

	// Now cover both arms.
	g2 := collect(t, prog, []*interp.Request{
		interp.NewWrite(interp.SpacePIO, 0, []byte{10}),
		interp.NewWrite(interp.SpacePIO, 1, nil),
		interp.NewWrite(interp.SpacePIO, 0, []byte{250}),
		interp.NewWrite(interp.SpacePIO, 1, nil),
	})
	cbs2 := g2.CondBlocks()
	if len(cbs2) != 1 || !cbs2[0].SeenTaken || !cbs2[0].SeenNotTaken {
		t.Errorf("arm coverage = %+v, want both", cbs2)
	}
}

func TestIndirectSites(t *testing.T) {
	prog := buildBranchy(t)
	g := collect(t, prog, []*interp.Request{
		interp.NewWrite(interp.SpacePIO, 0, []byte{250}),
		interp.NewWrite(interp.SpacePIO, 1, nil),
	})
	sites := g.IndirectSites()
	// The entry switch and the "high" indirect call are both sites.
	if len(sites) != 2 {
		t.Fatalf("sites = %d, want 2: %v", len(sites), sites)
	}
	high := ir.BlockRef{Handler: 0, Block: 3}
	targets, ok := sites[high]
	if !ok || len(targets) != 1 {
		t.Fatalf("high-site targets = %v", targets)
	}
	if targets[0] != (ir.BlockRef{Handler: prog.HandlerIndex("on_high"), Block: 0}) {
		t.Errorf("icall target = %v", targets[0])
	}
}

func TestBlockCoverageGrows(t *testing.T) {
	prog := buildBranchy(t)
	partial := collect(t, prog, []*interp.Request{
		interp.NewWrite(interp.SpacePIO, 0, []byte{10}),
	})
	full := collect(t, prog, []*interp.Request{
		interp.NewWrite(interp.SpacePIO, 0, []byte{250}),
		interp.NewWrite(interp.SpacePIO, 1, nil),
	})
	pc, fc := partial.BlockCoverage(), full.BlockCoverage()
	if pc <= 0 || pc >= 1 {
		t.Errorf("partial coverage = %f, want in (0,1)", pc)
	}
	if fc <= pc {
		t.Errorf("coverage should grow: %f -> %f", pc, fc)
	}
}

func TestEdgeCountsAccumulate(t *testing.T) {
	prog := buildBranchy(t)
	reqs := make([]*interp.Request, 0, 6)
	for i := 0; i < 3; i++ {
		reqs = append(reqs,
			interp.NewWrite(interp.SpacePIO, 0, []byte{10}),
			interp.NewWrite(interp.SpacePIO, 1, nil))
	}
	g := collect(t, prog, reqs)
	check := ir.BlockRef{Handler: 0, Block: 2}
	out := ir.BlockRef{Handler: 0, Block: 4}
	if !g.HasEdge(check, out, trace.EdgeNotTaken) {
		t.Fatal("missing not-taken edge")
	}
	for _, e := range g.OutEdges(check) {
		if e.To == out && e.Count != 3 {
			t.Errorf("edge count = %d, want 3", e.Count)
		}
	}
}

func TestDotRendering(t *testing.T) {
	prog := buildBranchy(t)
	g := collect(t, prog, []*interp.Request{
		interp.NewWrite(interp.SpacePIO, 0, []byte{10}),
	})
	dot := g.Dot()
	for _, want := range []string{"digraph", "dispatch/entry", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("Dot output missing %q", want)
		}
	}
}
