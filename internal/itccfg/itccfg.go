// Package itccfg constructs the Indirect Targets Connected Control Flow
// Graph (ITC-CFG) from decoded processor-trace runs, following FlowGuard's
// approach as used by SEDSpec's data-collection phase.
//
// The graph's nodes are basic blocks observed executing; its edges are the
// traversed control-flow transfers, with indirect transfers (switch
// dispatch, function-pointer calls, returns) connected to the concrete
// targets recorded in TIP packets.
package itccfg

import (
	"fmt"
	"sort"
	"strings"

	"sedspec/internal/ir"
	"sedspec/internal/trace"
)

// Node is one observed basic block.
type Node struct {
	Ref ir.BlockRef
	// Count is how many times the block was entered across all runs.
	Count int
}

// EdgeKey identifies an edge by endpoints and kind.
type EdgeKey struct {
	From ir.BlockRef
	To   ir.BlockRef
	Kind trace.EdgeKind
}

// Edge is one observed control-flow transfer.
type Edge struct {
	EdgeKey
	Count int
}

// Graph is the merged ITC-CFG over any number of runs.
type Graph struct {
	prog  *ir.Program
	nodes map[ir.BlockRef]*Node
	edges map[EdgeKey]*Edge
	runs  int
}

// New returns an empty graph for the program.
func New(p *ir.Program) *Graph {
	return &Graph{
		prog:  p,
		nodes: make(map[ir.BlockRef]*Node),
		edges: make(map[EdgeKey]*Edge),
	}
}

// Program returns the underlying device program.
func (g *Graph) Program() *ir.Program { return g.prog }

// Runs reports how many runs have been merged in.
func (g *Graph) Runs() int { return g.runs }

// NumNodes reports the number of distinct observed blocks.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges reports the number of distinct observed edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddRun merges one decoded run into the graph.
func (g *Graph) AddRun(run trace.Run) {
	g.runs++
	g.touch(run.Start)
	for _, s := range run.Steps {
		if !s.HasNext {
			continue
		}
		g.touch(s.Next)
		key := EdgeKey{From: s.Block, To: s.Next, Kind: s.Kind}
		e := g.edges[key]
		if e == nil {
			e = &Edge{EdgeKey: key}
			g.edges[key] = e
		}
		e.Count++
	}
}

func (g *Graph) touch(ref ir.BlockRef) {
	n := g.nodes[ref]
	if n == nil {
		n = &Node{Ref: ref}
		g.nodes[ref] = n
	}
	n.Count++
}

// HasNode reports whether the block was ever observed.
func (g *Graph) HasNode(ref ir.BlockRef) bool { return g.nodes[ref] != nil }

// HasEdge reports whether the exact edge was observed.
func (g *Graph) HasEdge(from, to ir.BlockRef, kind trace.EdgeKind) bool {
	return g.edges[EdgeKey{From: from, To: to, Kind: kind}] != nil
}

// Nodes returns the observed blocks in deterministic order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return lessRef(out[i].Ref, out[j].Ref) })
	return out
}

// Edges returns the observed edges in deterministic order.
func (g *Graph) Edges() []*Edge {
	out := make([]*Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return lessRef(out[i].From, out[j].From)
		}
		if out[i].To != out[j].To {
			return lessRef(out[i].To, out[j].To)
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// OutEdges returns the observed edges leaving a block, in deterministic
// order.
func (g *Graph) OutEdges(from ir.BlockRef) []*Edge {
	var out []*Edge
	for _, e := range g.edges {
		if e.From == from {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].To != out[j].To {
			return lessRef(out[i].To, out[j].To)
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// CondBlocks returns observed blocks ending in a conditional branch, with
// which arms were seen. The CFG analyzer scans these for device-state
// parameter extraction, and the ES-CFG constructor uses the arm coverage
// for the conditional-jump check.
func (g *Graph) CondBlocks() []CondBlock {
	var out []CondBlock
	for ref := range g.nodes {
		b := g.prog.Block(ref)
		if b.Term.Kind != ir.TermBranch {
			continue
		}
		cb := CondBlock{Ref: ref}
		for _, e := range g.edges {
			if e.From != ref {
				continue
			}
			switch e.Kind {
			case trace.EdgeTaken:
				cb.SeenTaken = true
			case trace.EdgeNotTaken:
				cb.SeenNotTaken = true
			}
		}
		out = append(out, cb)
	}
	sort.Slice(out, func(i, j int) bool { return lessRef(out[i].Ref, out[j].Ref) })
	return out
}

// CondBlock summarizes conditional-arm coverage for one block.
type CondBlock struct {
	Ref          ir.BlockRef
	SeenTaken    bool
	SeenNotTaken bool
}

// IndirectSites returns, for each block with observed indirect transfers
// (switch or function-pointer call), the set of observed targets —
// the "indirect targets connected" part of the ITC-CFG.
func (g *Graph) IndirectSites() map[ir.BlockRef][]ir.BlockRef {
	sites := make(map[ir.BlockRef][]ir.BlockRef)
	for _, e := range g.edges {
		if e.Kind != trace.EdgeSwitch && e.Kind != trace.EdgeIndirectCall {
			continue
		}
		sites[e.From] = append(sites[e.From], e.To)
	}
	for from := range sites {
		ts := sites[from]
		sort.Slice(ts, func(i, j int) bool { return lessRef(ts[i], ts[j]) })
		sites[from] = dedupRefs(ts)
	}
	return sites
}

// BlockCoverage returns the fraction of the program's device-region blocks
// observed in the graph. The fuzzer uses this for the effective-coverage
// metric (Table III).
func (g *Graph) BlockCoverage() float64 {
	total := 0
	for hi := range g.prog.Handlers {
		if g.prog.Handlers[hi].Region != ir.RegionDevice {
			continue
		}
		total += len(g.prog.Handlers[hi].Blocks)
	}
	if total == 0 {
		return 0
	}
	covered := 0
	for ref := range g.nodes {
		if g.prog.Handlers[ref.Handler].Region == ir.RegionDevice {
			covered++
		}
	}
	return float64(covered) / float64(total)
}

// Dot renders the graph in Graphviz format for inspection tooling.
func (g *Graph) Dot() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.prog.Name)
	for _, n := range g.Nodes() {
		b := g.prog.Block(n.Ref)
		h := g.prog.Handlers[n.Ref.Handler]
		fmt.Fprintf(&sb, "  %q [label=\"%s/%s\\nx%d\"];\n",
			refID(n.Ref), h.Name, b.Label, n.Count)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  %q -> %q [label=\"%s x%d\"];\n",
			refID(e.From), refID(e.To), e.Kind, e.Count)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func refID(r ir.BlockRef) string { return fmt.Sprintf("h%db%d", r.Handler, r.Block) }

func lessRef(a, b ir.BlockRef) bool {
	if a.Handler != b.Handler {
		return a.Handler < b.Handler
	}
	return a.Block < b.Block
}

func dedupRefs(in []ir.BlockRef) []ir.BlockRef {
	out := in[:0]
	for i, r := range in {
		if i == 0 || r != in[i-1] {
			out = append(out, r)
		}
	}
	return out
}
