package machine

import (
	"errors"
	"fmt"
	"sync"
)

// This file adds the guest-session abstraction for concurrent
// enforcement: N independent instances of the same device program, each
// with its own control structure and interpreter, so parallel guests can
// drive the same device model. A Machine itself is single-threaded (its
// guest memory, virtual clock, interrupt controller, and work model are
// unsynchronized, like a QEMU instance under its big lock), so parallel
// sessions are hosted one machine each via Pool; NewSessionOn exists for
// serially-multiplexed co-hosting on one machine.

// BuildFunc constructs a fresh instance of a device plus the attachment
// options (bus windows, speed) it should be plugged in with. It must
// return a new Device and State on every call: sessions own their control
// structures.
type BuildFunc func() (Device, []AttachOption)

// Session is one guest driving its own instance of a device program: its
// own device state, its own interpreter, its own hosting machine (or a
// shared one, via NewSessionOn).
type Session struct {
	id  int
	m   *Machine
	att *Attached
}

// NewSession builds a fresh machine and attaches a fresh device instance
// to it. Each session created this way is fully independent and may be
// driven concurrently with its siblings.
func NewSession(id int, build BuildFunc, mopts ...Option) *Session {
	return NewSessionOn(New(mopts...), id, build)
}

// NewSessionOn attaches a fresh device instance to an existing machine.
// Sessions sharing one machine share its guest memory, clock, and
// interrupt controller and must be driven serially; use NewSession or
// Pool for parallel guests.
func NewSessionOn(m *Machine, id int, build BuildFunc) *Session {
	dev, opts := build()
	opts = append(opts, WithSessionID(id))
	return &Session{id: id, m: m, att: m.Attach(dev, opts...)}
}

// ID returns the session's identifier.
func (s *Session) ID() int { return s.id }

// Machine returns the hosting machine.
func (s *Session) Machine() *Machine { return s.m }

// Attached returns the session's device attachment.
func (s *Session) Attached() *Attached { return s.att }

// Device returns the session's device instance.
func (s *Session) Device() Device { return s.att.Dev() }

// Pool is a set of parallel guest sessions, one machine each, all running
// instances of the same device build. It is the substrate the concurrent
// enforcement engine is benchmarked on: every session gets a per-session
// checker from one shared sealed spec and the pool drives them in
// parallel.
type Pool struct {
	sessions []*Session
}

// NewPool builds n independent sessions (ids 0..n-1), each on its own
// machine.
func NewPool(n int, build BuildFunc, mopts ...Option) *Pool {
	p := &Pool{sessions: make([]*Session, n)}
	for i := range p.sessions {
		p.sessions[i] = NewSession(i, build, mopts...)
	}
	return p
}

// Len returns the number of sessions.
func (p *Pool) Len() int { return len(p.sessions) }

// Session returns the i-th session.
func (p *Pool) Session(i int) *Session { return p.sessions[i] }

// Sessions returns all sessions in id order.
func (p *Pool) Sessions() []*Session { return p.sessions }

// Run drives fn for every session on its own goroutine and waits for all
// of them, returning the joined per-session errors (each annotated with
// its session id). fn must confine itself to its session's machine plus
// read-only shared state.
func (p *Pool) Run(fn func(s *Session) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(p.sessions))
	for i, s := range p.sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			if err := fn(s); err != nil {
				errs[i] = fmt.Errorf("session %d: %w", s.id, err)
			}
		}(i, s)
	}
	wg.Wait()
	return errors.Join(errs...)
}
