package machine

import (
	"errors"
	"testing"

	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// toyDevice is a minimal Device for machine tests: port 0 stores a value,
// port 1 raises the IRQ and does DMA from a guest address in the payload.
type toyDevice struct {
	prog  *ir.Program
	state *interp.State
}

func newToyDevice(t *testing.T) *toyDevice {
	t.Helper()
	b := ir.NewBuilder("toy")
	reg := b.Int("reg", ir.W8, ir.HWRegister())
	buf := b.Buf("buf", 32)

	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	addr := e.IOAddr("addr = req->addr")
	base := e.Const(0x100, "base")
	rel := e.Arith(ir.ALUSub, addr, base, ir.W16, false, "rel = addr - base")
	e.Switch(rel, "switch (rel)", "out",
		ir.Case(0, "store"),
		ir.Case(1, "dma"),
	)

	s := h.Block("store")
	v := s.IOIn(ir.W8, "v = ioread8()")
	s.Store(reg, v, "s->reg = v")
	s.Jump("out", "goto out")

	d := h.Block("dma")
	gaddr := d.IOIn(ir.W32, "gaddr = ioread32()")
	idx := d.Const(0, "0")
	n := d.Const(16, "16")
	d.DMAToBuf(buf, idx, gaddr, n, false, "dma_read(buf, gaddr, 16)")
	nw := d.Const(1024, "work = 1KiB")
	d.Work(nw, "emulate work")
	d.IRQRaise("raise irq")
	d.Jump("out", "goto out")

	h.Block("out").Exit().Halt("return")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return &toyDevice{prog: prog, state: interp.NewState(prog)}
}

func (d *toyDevice) Name() string         { return "toy" }
func (d *toyDevice) Program() *ir.Program { return d.prog }
func (d *toyDevice) State() *interp.State { return d.state }
func (d *toyDevice) Reset()               { d.state.Reset() }

func TestGuestMemoryBounds(t *testing.T) {
	g := NewGuestMemory(64)
	if err := g.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 3)
	if err := g.Read(0, buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if buf[2] != 3 {
		t.Errorf("buf = %v", buf)
	}
	if err := g.Read(63, buf); err == nil {
		t.Error("out-of-range read should fail")
	}
	if err := g.Write(62, buf); err == nil {
		t.Error("out-of-range write should fail")
	}
	// Overflow-resistant addressing.
	if err := g.Read(^uint64(0), buf[:1]); err == nil {
		t.Error("wrapping address should fail")
	}
}

func TestIRQController(t *testing.T) {
	c := NewIRQController()
	c.Assert(3)
	c.Assert(3) // still asserted: no second delivery
	if got := c.Deliveries(3); got != 1 {
		t.Errorf("Deliveries = %d, want 1", got)
	}
	if !c.Level(3) {
		t.Error("line should be high")
	}
	c.Deassert(3)
	c.Assert(3)
	if got := c.Deliveries(3); got != 2 {
		t.Errorf("Deliveries = %d, want 2", got)
	}
}

func TestDispatchRouting(t *testing.T) {
	m := New()
	dev := newToyDevice(t)
	m.Attach(dev, WithPIO(0x100, 4))

	if _, err := m.PIOWrite(0x100, []byte{0x42}); err != nil {
		t.Fatalf("PIOWrite: %v", err)
	}
	if got, _ := dev.state.IntByName("reg"); got != 0x42 {
		t.Errorf("reg = %#x, want 0x42", got)
	}

	_, err := m.PIOWrite(0x500, []byte{1})
	if !errors.Is(err, ErrNoDevice) {
		t.Errorf("unclaimed port error = %v, want ErrNoDevice", err)
	}
}

func TestDMAAndIRQThroughMachine(t *testing.T) {
	m := New(WithMemory(1 << 16))
	dev := newToyDevice(t)
	a := m.Attach(dev, WithPIO(0x100, 4), WithIRQLine(5))

	// Seed guest memory, then ask the device to DMA it in.
	want := []byte("0123456789abcdef")
	if err := m.Mem.Write(0x2000, want); err != nil {
		t.Fatalf("seed: %v", err)
	}
	if _, err := m.PIOWrite(0x101, []byte{0x00, 0x20, 0x00, 0x00}); err != nil {
		t.Fatalf("PIOWrite: %v", err)
	}
	got := dev.state.Buf(dev.prog.FieldIndex("buf"))[:16]
	if string(got) != string(want) {
		t.Errorf("buf = %q, want %q", got, want)
	}
	if !m.IRQ.Level(5) {
		t.Error("irq line 5 should be asserted")
	}
	if a.IRQLine() != 5 {
		t.Errorf("IRQLine = %d", a.IRQLine())
	}
}

func TestWorkAdvancesClock(t *testing.T) {
	m := New()
	dev := newToyDevice(t)
	m.Attach(dev, WithPIO(0x100, 4), WithSpeed(100))
	before := m.Clock.Now()
	if _, err := m.PIOWrite(0x101, []byte{0, 0, 0, 0}); err != nil {
		t.Fatalf("PIOWrite: %v", err)
	}
	// 1KiB work at 100 B/µs = 10µs, plus 1µs dispatch cost.
	elapsed := m.Clock.Now() - before
	if elapsed.Microseconds() != 11 {
		t.Errorf("elapsed = %v, want 11µs", elapsed)
	}
}

// blockingInterposer rejects all writes to a specific port.
type blockingInterposer struct {
	port uint64
	halt *Machine
	hits int
}

func (b *blockingInterposer) PreIO(_ Device, req *interp.Request) error {
	b.hits++
	if req.Addr == b.port {
		if b.halt != nil {
			b.halt.Halt()
		}
		return errors.New("anomaly detected")
	}
	return nil
}

func TestInterposerBlocks(t *testing.T) {
	m := New()
	dev := newToyDevice(t)
	a := m.Attach(dev, WithPIO(0x100, 4))
	ip := &blockingInterposer{port: 0x100}
	a.AddInterposer(ip)

	_, err := m.PIOWrite(0x100, []byte{0x99})
	if !errors.Is(err, ErrBlocked) {
		t.Fatalf("err = %v, want ErrBlocked", err)
	}
	if got, _ := dev.state.IntByName("reg"); got != 0 {
		t.Error("blocked write must not reach the device")
	}
	// Other ports pass through.
	if _, err := m.PIOWrite(0x103, nil); err != nil {
		t.Fatalf("pass-through failed: %v", err)
	}
	if ip.hits != 2 {
		t.Errorf("interposer hits = %d, want 2", ip.hits)
	}
	a.ClearInterposers()
	if _, err := m.PIOWrite(0x100, []byte{0x99}); err != nil {
		t.Fatalf("after clear: %v", err)
	}
}

func TestInterposerHaltsMachine(t *testing.T) {
	m := New()
	dev := newToyDevice(t)
	a := m.Attach(dev, WithPIO(0x100, 4))
	a.AddInterposer(&blockingInterposer{port: 0x100, halt: m})

	if _, err := m.PIOWrite(0x100, []byte{0x99}); err == nil {
		t.Fatal("want error")
	}
	if !m.Halted() {
		t.Fatal("machine should be halted")
	}
	if _, err := m.PIOWrite(0x103, nil); !errors.Is(err, ErrHalted) {
		t.Errorf("post-halt err = %v, want ErrHalted", err)
	}
	m.Resume()
	if _, err := m.PIOWrite(0x103, nil); err != nil {
		t.Errorf("after Resume: %v", err)
	}
}

func TestDeviceLookup(t *testing.T) {
	m := New()
	dev := newToyDevice(t)
	m.Attach(dev, WithPIO(0x100, 4))
	if m.Device("toy") == nil {
		t.Error("Device(toy) = nil")
	}
	if m.Device("ghost") != nil {
		t.Error("Device(ghost) should be nil")
	}
	if len(m.Devices()) != 1 {
		t.Error("Devices() should have 1 entry")
	}
}

func TestMMIORouting(t *testing.T) {
	m := New()
	dev := newToyDevice(t)
	m.Attach(dev, WithMMIO(0xE000_0100, 4))
	if _, err := m.MMIOWrite(0xE000_0100, []byte{0x7}); err != nil {
		t.Fatalf("MMIOWrite: %v", err)
	}
	if got, _ := dev.state.IntByName("reg"); got != 0x7 {
		t.Errorf("reg = %#x, want 0x7", got)
	}
	if _, _, err := m.MMIORead(0xE000_0200); !errors.Is(err, ErrNoDevice) {
		t.Errorf("err = %v, want ErrNoDevice", err)
	}
}
