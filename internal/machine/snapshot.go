package machine

import (
	"fmt"
	"time"
)

// Snapshot captures the machine's restorable state: guest memory, every
// attached device's control structure, and the virtual clock. The paper's
// discussion (§VIII) names rollback to a pre-exploitation point as the
// natural next step beyond halting; Snapshot/Restore provide it.
type Snapshot struct {
	mem     []byte
	devices [][]byte
	clock   time.Duration
}

// Snapshot captures the current machine state.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		mem:   append([]byte(nil), m.Mem.data...),
		clock: m.Clock.Now(),
	}
	for _, a := range m.devices {
		s.devices = append(s.devices, append([]byte(nil), a.dev.State().Bytes()...))
	}
	return s
}

// Restore rolls the machine back to the snapshot and clears a halt. It
// fails if the device set changed since the snapshot was taken.
func (m *Machine) Restore(s *Snapshot) error {
	if len(s.devices) != len(m.devices) {
		return fmt.Errorf("machine: snapshot has %d devices, machine has %d",
			len(s.devices), len(m.devices))
	}
	if len(s.mem) != len(m.Mem.data) {
		return fmt.Errorf("machine: snapshot memory size %d != %d", len(s.mem), len(m.Mem.data))
	}
	for i, a := range m.devices {
		if len(s.devices[i]) != len(a.dev.State().Bytes()) {
			return fmt.Errorf("machine: device %d control structure size changed", i)
		}
	}
	copy(m.Mem.data, s.mem)
	for i, a := range m.devices {
		copy(a.dev.State().Bytes(), s.devices[i])
	}
	// The clock cannot rewind (monotonic virtual time); account the
	// restore as elapsed time instead.
	if d := s.clock - m.Clock.Now(); d > 0 {
		m.Clock.Advance(d)
	}
	m.halted = false
	return nil
}
