package machine

import (
	"fmt"

	"sedspec/internal/interp"
)

// Verdict is the per-request outcome of a batched pre-I/O check. A
// batch interposer returns one Verdict per request it looked at;
// requests past the first short-circuit point are left with
// Checked=false and must be re-presented (the dispatcher below does
// this automatically).
type Verdict struct {
	// Checked reports whether the interposer actually examined this
	// request. A batch short-circuits at the first anomaly or at the
	// first round that desynchronized the shadow state, leaving the
	// tail unchecked.
	Checked bool
	// Blocked reports that this request must not reach the device.
	Blocked bool
	// Err is the blocking error (the anomaly) when Blocked is set.
	Err error
	// Halt, when non-nil on a blocked verdict, is the enforcement action
	// the dispatcher runs when it reaches the blocked request. A batched
	// checker defers its halt hook here so the clean prefix still reaches
	// the device first — exactly the order per-round delivery produces.
	Halt func()
}

// BatchInterposer is an Interposer that can additionally vet a whole
// burst of requests in one call, amortizing its per-round fixed costs
// across the batch. PreIOBatch must return exactly one Verdict per
// request and must mark a non-empty checked prefix (Verdicts are
// consumed prefix-wise: the dispatcher executes checked rounds in
// order and re-presents the unchecked tail).
type BatchInterposer interface {
	Interposer
	PreIOBatch(reqs []*interp.Request) []Verdict
}

// DispatchBatch delivers a burst of requests — a descriptor-ring sweep,
// an EHCI schedule walk, a CDB push — through the interposer chain and
// the device in one call. With a single batch-capable interposer
// installed (the common enforcement configuration) the whole burst is
// vetted per batch: one PreIOBatch call covers a checked prefix, the
// checked rounds execute, and any unchecked tail is re-presented until
// the burst is consumed or a request is blocked. Any other interposer
// configuration falls back to per-request DispatchDirect so semantics
// are identical whether or not the interposers understand batches.
//
// Results are positional: results[i] is non-nil iff request i reached
// the device. On a blocked request or a halted machine the error
// reports the first failure and the partial results are returned.
func (a *Attached) DispatchBatch(reqs []*interp.Request) ([]*interp.Result, error) {
	m := a.machine
	results := make([]*interp.Result, len(reqs))
	var bi BatchInterposer
	if len(a.interposers) == 1 {
		bi, _ = a.interposers[0].(BatchInterposer)
	}
	if bi == nil && len(a.interposers) > 0 {
		for i, req := range reqs {
			res, err := a.DispatchDirect(req)
			if err != nil {
				return results, err
			}
			results[i] = res
		}
		return results, nil
	}
	pi, _ := any(bi).(PostInterposer)
	for start := 0; start < len(reqs); {
		if m.halted {
			return results, ErrHalted
		}
		sub := reqs[start:]
		checked := len(sub)
		var verdicts []Verdict
		if bi != nil {
			verdicts = bi.PreIOBatch(sub)
			checked = 0
			for checked < len(sub) && verdicts[checked].Checked {
				checked++
			}
			if checked == 0 {
				return results, fmt.Errorf("machine: batch interposer made no progress at request %d", start)
			}
		}
		for k := 0; k < checked; k++ {
			a.round++
			if verdicts != nil && verdicts[k].Blocked {
				if h := verdicts[k].Halt; h != nil {
					h()
				}
				return results, fmt.Errorf("%w: %w", ErrBlocked, verdicts[k].Err)
			}
			if m.halted {
				return results, ErrHalted
			}
			m.Clock.AdvanceMicros(1)
			m.burn(vmExitCost)
			req := sub[k]
			req.Rewind()
			results[start+k] = a.in.Dispatch(req)
		}
		// One post-I/O point per delivered prefix instead of one per
		// round: a batch short-circuits at the first round that leaves
		// the interposer desynchronized, so only the last checked round
		// can need post-I/O work — the per-round calls before it would
		// all be no-ops, observably identical to per-round delivery.
		if pi != nil {
			pi.PostIO(a.dev, sub[checked-1], results[start+checked-1])
		}
		start += checked
	}
	return results, nil
}
