// Package machine provides the miniature hypervisor substrate that hosts
// emulated devices: guest memory, a PMIO/MMIO bus, an interrupt controller,
// DMA services, and the interposition point where SEDSpec's ES-Checker
// validates each I/O interaction before the device consumes it.
//
// It stands in for the QEMU/KVM dispatch path of the paper: a guest I/O
// request is routed to the owning device's emulation routine, which may
// raise interrupts and access guest memory, then control returns to the
// guest.
package machine

import (
	"errors"
	"fmt"

	"sedspec/internal/interp"
	"sedspec/internal/ir"
	"sedspec/internal/simclock"
)

// Errors returned by the dispatch path.
var (
	// ErrHalted means the machine was halted (protection mode stop).
	ErrHalted = errors.New("machine: halted")
	// ErrNoDevice means no device claims the address.
	ErrNoDevice = errors.New("machine: no device at address")
	// ErrBlocked wraps an interposer rejection (checker anomaly).
	ErrBlocked = errors.New("machine: I/O blocked by interposer")
)

// Device is an emulated device attachable to a machine.
type Device interface {
	// Name identifies the device (for example "fdc").
	Name() string
	// Program is the device's emulation program.
	Program() *ir.Program
	// State is the device's control structure.
	State() *interp.State
	// Reset re-initializes the control structure to power-on values.
	Reset()
}

// Interposer inspects an I/O request before the device executes it. A
// non-nil error blocks the request; the ES-Checker in protection mode also
// halts the machine.
type Interposer interface {
	PreIO(dev Device, req *interp.Request) error
}

// PostInterposer is an optional extension: PostIO runs after the device
// executed an allowed request. The ES-Checker uses it to resynchronize its
// shadow device state after warning-only rounds in enhancement mode.
type PostInterposer interface {
	PostIO(dev Device, req *interp.Request, res *interp.Result)
}

// GuestMemory is the guest's physical memory.
type GuestMemory struct {
	data []byte
}

// NewGuestMemory allocates size bytes of guest memory.
func NewGuestMemory(size int) *GuestMemory {
	return &GuestMemory{data: make([]byte, size)}
}

// Size returns the memory size in bytes.
func (g *GuestMemory) Size() int { return len(g.data) }

// Read copies guest memory at addr into buf.
func (g *GuestMemory) Read(addr uint64, buf []byte) error {
	if addr > uint64(len(g.data)) || addr+uint64(len(buf)) > uint64(len(g.data)) {
		return fmt.Errorf("machine: guest read [%#x,+%d) out of range", addr, len(buf))
	}
	copy(buf, g.data[addr:])
	return nil
}

// Write copies buf into guest memory at addr.
func (g *GuestMemory) Write(addr uint64, buf []byte) error {
	if addr > uint64(len(g.data)) || addr+uint64(len(buf)) > uint64(len(g.data)) {
		return fmt.Errorf("machine: guest write [%#x,+%d) out of range", addr, len(buf))
	}
	copy(g.data[addr:], buf)
	return nil
}

// IRQController tracks interrupt line levels and delivery counts.
type IRQController struct {
	level map[int]bool
	count map[int]int
}

// NewIRQController returns an empty controller.
func NewIRQController() *IRQController {
	return &IRQController{level: make(map[int]bool), count: make(map[int]int)}
}

// Assert raises a line; each rising edge counts one delivery.
func (c *IRQController) Assert(line int) {
	if !c.level[line] {
		c.level[line] = true
		c.count[line]++
	}
}

// Deassert lowers a line.
func (c *IRQController) Deassert(line int) { c.level[line] = false }

// Level reports a line's current level.
func (c *IRQController) Level(line int) bool { return c.level[line] }

// Deliveries reports how many rising edges a line has seen.
func (c *IRQController) Deliveries(line int) int { return c.count[line] }

// Machine hosts devices and routes guest I/O to them.
type Machine struct {
	Mem   *GuestMemory
	IRQ   *IRQController
	Clock *simclock.Clock

	devices []*Attached
	halted  bool
	// workScratch is reused by the emulation-work model.
	workScratch [4096]byte
	workSum     uint64
}

// Option configures a Machine.
type Option func(*Machine)

// WithMemory sets guest memory size (default 16 MiB).
func WithMemory(size int) Option {
	return func(m *Machine) { m.Mem = NewGuestMemory(size) }
}

// New creates a machine.
func New(opts ...Option) *Machine {
	m := &Machine{
		IRQ:   NewIRQController(),
		Clock: simclock.New(),
	}
	for _, o := range opts {
		o(m)
	}
	if m.Mem == nil {
		m.Mem = NewGuestMemory(16 << 20)
	}
	return m
}

// Halted reports whether the machine is stopped.
func (m *Machine) Halted() bool { return m.halted }

// Halt stops the machine; all further I/O fails with ErrHalted. The
// ES-Checker calls this in protection mode.
func (m *Machine) Halt() { m.halted = true }

// Resume clears a halt (used between experiments).
func (m *Machine) Resume() { m.halted = false }

// Attached is a device plugged into a machine, with its bus windows and
// interpreter.
type Attached struct {
	dev     Device
	in      *interp.Interp
	machine *Machine

	irqLine  int
	pioBase  uint64
	pioSize  uint64
	mmioBase uint64
	mmioSize uint64

	interposers []Interposer

	// bytesPerMicro calibrates how much virtual time emulation work
	// consumes (device speed).
	bytesPerMicro int

	// env values are stable per machine: link up, media present, and a
	// per-round turn token derived from the round counter.
	linkUp       bool
	mediaPresent bool
	round        uint64

	// sessionID identifies the guest session this attachment serves, for
	// observability events; -1 means unassigned (single-guest machine).
	sessionID int
}

// AttachOption configures device attachment.
type AttachOption func(*Attached)

// WithPIO claims a port window [base, base+size).
func WithPIO(base, size uint64) AttachOption {
	return func(a *Attached) { a.pioBase, a.pioSize = base, size }
}

// WithMMIO claims an MMIO window [base, base+size).
func WithMMIO(base, size uint64) AttachOption {
	return func(a *Attached) { a.mmioBase, a.mmioSize = base, size }
}

// WithIRQLine sets the device's interrupt line (default: attachment order).
func WithIRQLine(line int) AttachOption {
	return func(a *Attached) { a.irqLine = line }
}

// WithSpeed sets the device speed in bytes of emulation work per
// microsecond of virtual time (default 100).
func WithSpeed(bytesPerMicro int) AttachOption {
	return func(a *Attached) {
		if bytesPerMicro > 0 {
			a.bytesPerMicro = bytesPerMicro
		}
	}
}

// WithLink sets the device's link status (default up).
func WithLink(up bool) AttachOption {
	return func(a *Attached) { a.linkUp = up }
}

// WithMedia sets media presence (default present).
func WithMedia(present bool) AttachOption {
	return func(a *Attached) { a.mediaPresent = present }
}

// WithSessionID tags the attachment with the guest session it serves.
// The ID flows into every flight-recorder event the checker emits for
// this device, so concurrent-session traces stay attributable.
func WithSessionID(id int) AttachOption {
	return func(a *Attached) {
		if id >= 0 {
			a.sessionID = id
		}
	}
}

// SetLink changes the device's link status at runtime (cable pull /
// replug). Stable within an I/O round.
func (a *Attached) SetLink(up bool) { a.linkUp = up }

// SetMedia changes media presence at runtime (disk eject / insert).
func (a *Attached) SetMedia(present bool) { a.mediaPresent = present }

// Attach plugs a device into the machine and returns its attachment.
func (m *Machine) Attach(dev Device, opts ...AttachOption) *Attached {
	a := &Attached{
		dev:           dev,
		machine:       m,
		irqLine:       len(m.devices),
		bytesPerMicro: 100,
		linkUp:        true,
		mediaPresent:  true,
		sessionID:     -1,
	}
	for _, o := range opts {
		o(a)
	}
	a.in = interp.New(dev.Program(), dev.State(), a)
	m.devices = append(m.devices, a)
	return a
}

// Device returns the attachment for the named device, or nil.
func (m *Machine) Device(name string) *Attached {
	for _, a := range m.devices {
		if a.dev.Name() == name {
			return a
		}
	}
	return nil
}

// Devices returns all attachments in attach order.
func (m *Machine) Devices() []*Attached { return m.devices }

// Dev returns the attached device.
func (a *Attached) Dev() Device { return a.dev }

// Machine returns the hosting machine.
func (a *Attached) Machine() *Machine { return a.machine }

// Interp returns the device's interpreter, for installing tracers,
// observers, and watch sets during specification construction.
func (a *Attached) Interp() *interp.Interp { return a.in }

// IRQLine returns the device's interrupt line number.
func (a *Attached) IRQLine() int { return a.irqLine }

// SessionID returns the guest-session ID tagged at attach time, or -1
// for a single-guest machine.
func (a *Attached) SessionID() int { return a.sessionID }

// AddInterposer appends an I/O interposer (the ES-Checker).
func (a *Attached) AddInterposer(i Interposer) { a.interposers = append(a.interposers, i) }

// Interposers returns the attached interposers in dispatch order. The
// facade's Unprotect walks this to retire checkers (fold their stats,
// close their recorders) before detaching them.
func (a *Attached) Interposers() []Interposer {
	out := make([]Interposer, len(a.interposers))
	copy(out, a.interposers)
	return out
}

// ClearInterposers removes all interposers.
func (a *Attached) ClearInterposers() { a.interposers = nil }

// Env implementation: the attachment is the device's machine environment.

// DMARead implements interp.Env.
func (a *Attached) DMARead(addr uint64, buf []byte) error {
	return a.machine.Mem.Read(addr, buf)
}

// DMAWrite implements interp.Env.
func (a *Attached) DMAWrite(addr uint64, buf []byte) error {
	return a.machine.Mem.Write(addr, buf)
}

// RaiseIRQ implements interp.Env.
func (a *Attached) RaiseIRQ() { a.machine.IRQ.Assert(a.irqLine) }

// LowerIRQ implements interp.Env.
func (a *Attached) LowerIRQ() { a.machine.IRQ.Deassert(a.irqLine) }

// vmExitCost is the fixed per-dispatch CPU model (units of burn
// iterations): the VM exit/entry, dispatch, and locking a real hypervisor
// pays before the device emulation proper runs.
const vmExitCost = 24576

// workScale is the CPU burned per byte of emulation work, standing in for
// the checksum, format, and block/medium layers of real device emulation.
const workScale = 4

// burn consumes a deterministic amount of CPU (n iterations).
func (m *Machine) burn(n int) {
	var sum uint64
	for done := 0; done < n; done += len(m.workScratch) {
		c := len(m.workScratch)
		if rem := n - done; rem < c {
			c = rem
		}
		for i := 0; i < c; i++ {
			sum = sum*31 + uint64(m.workScratch[i]) + uint64(i)
		}
	}
	m.workSum += sum
}

// Work implements interp.Env: n bytes of emulation work advance the virtual
// clock per the device speed and burn a deterministic amount of CPU so
// wall-clock benchmarks have a realistic emulation baseline.
func (a *Attached) Work(n int) {
	m := a.machine
	m.Clock.AdvanceMicros(int64(n / a.bytesPerMicro))
	m.burn(n * workScale)
}

// ReadEnv implements interp.Env. Values are stable within an I/O round so
// the ES-Checker's sync points and the device observe the same value: link
// and media are machine configuration, and the turn token is derived from
// the round counter, which DispatchDirect increments before interposers
// run.
func (a *Attached) ReadEnv(kind ir.EnvKind) uint64 {
	switch kind {
	case ir.EnvLink:
		if a.linkUp {
			return 1
		}
		return 0
	case ir.EnvMedia:
		if a.mediaPresent {
			return 1
		}
		return 0
	case ir.EnvTurn:
		return a.round & 1
	default:
		return 0
	}
}

var _ interp.Env = (*Attached)(nil)

func (a *Attached) claims(space interp.Space, addr uint64) bool {
	switch space {
	case interp.SpacePIO:
		return a.pioSize > 0 && addr >= a.pioBase && addr < a.pioBase+a.pioSize
	case interp.SpaceMMIO:
		return a.mmioSize > 0 && addr >= a.mmioBase && addr < a.mmioBase+a.mmioSize
	default:
		return false
	}
}

func (m *Machine) route(space interp.Space, addr uint64) *Attached {
	for _, a := range m.devices {
		if a.claims(space, addr) {
			return a
		}
	}
	return nil
}

// Dispatch routes one I/O request to the owning device, running
// interposers first. It returns the device's execution result; a blocked
// request returns a nil result and an error wrapping ErrBlocked.
func (m *Machine) Dispatch(req *interp.Request) (*interp.Result, error) {
	if m.halted {
		return nil, ErrHalted
	}
	a := m.route(req.Space, req.Addr)
	if a == nil {
		return nil, fmt.Errorf("%w: %s %#x", ErrNoDevice, req.Space, req.Addr)
	}
	return a.DispatchDirect(req)
}

// DispatchDirect dispatches a request to this device, bypassing routing but
// honoring interposers and the halt state.
func (a *Attached) DispatchDirect(req *interp.Request) (*interp.Result, error) {
	m := a.machine
	if m.halted {
		return nil, ErrHalted
	}
	a.round++
	for _, ip := range a.interposers {
		if err := ip.PreIO(a.dev, req); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBlocked, err)
		}
		if m.halted { // the interposer may have halted the machine
			return nil, ErrHalted
		}
	}
	// Base dispatch cost: one VM exit and re-entry. In a KVM/QEMU stack
	// this costs on the order of a microsecond of host CPU regardless of
	// what the device then does; modelling it keeps relative checker
	// overhead honest.
	m.Clock.AdvanceMicros(1)
	m.burn(vmExitCost)
	req.Rewind()
	res := a.in.Dispatch(req)
	for _, ip := range a.interposers {
		if pi, ok := ip.(PostInterposer); ok {
			pi.PostIO(a.dev, req, res)
		}
	}
	return res, nil
}

// PIOWrite issues a guest port write.
func (m *Machine) PIOWrite(port uint64, data []byte) (*interp.Result, error) {
	return m.Dispatch(interp.NewWrite(interp.SpacePIO, port, data))
}

// PIORead issues a guest port read and returns the device's response bytes.
func (m *Machine) PIORead(port uint64) ([]byte, *interp.Result, error) {
	req := interp.NewRead(interp.SpacePIO, port)
	res, err := m.Dispatch(req)
	if err != nil {
		return nil, nil, err
	}
	return res.Output, res, nil
}

// MMIOWrite issues a guest MMIO write.
func (m *Machine) MMIOWrite(addr uint64, data []byte) (*interp.Result, error) {
	return m.Dispatch(interp.NewWrite(interp.SpaceMMIO, addr, data))
}

// MMIORead issues a guest MMIO read.
func (m *Machine) MMIORead(addr uint64) ([]byte, *interp.Result, error) {
	req := interp.NewRead(interp.SpaceMMIO, addr)
	res, err := m.Dispatch(req)
	if err != nil {
		return nil, nil, err
	}
	return res.Output, res, nil
}
