package machine

import (
	"fmt"
	"strings"
	"testing"
)

// toyBuild adapts the toy device to a session BuildFunc: a fresh device
// instance (own program, own state) per call.
func toyBuild(t *testing.T) BuildFunc {
	t.Helper()
	return func() (Device, []AttachOption) {
		return newToyDevice(t), []AttachOption{WithPIO(0x100, 4), WithIRQLine(5)}
	}
}

func TestSessionOwnsDeviceInstance(t *testing.T) {
	p := NewPool(3, toyBuild(t), WithMemory(1<<16))
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	for i, s := range p.Sessions() {
		if s.ID() != i {
			t.Errorf("session %d has ID %d", i, s.ID())
		}
		if _, err := s.Machine().PIOWrite(0x100, []byte{byte(0x10 + i)}); err != nil {
			t.Fatalf("session %d PIOWrite: %v", i, err)
		}
	}
	// Each session's device state holds its own value: no instance is
	// shared across sessions.
	for i, s := range p.Sessions() {
		got, _ := s.Device().State().IntByName("reg")
		if got != uint64(0x10+i) {
			t.Errorf("session %d reg = %#x, want %#x", i, got, 0x10+i)
		}
		for j, o := range p.Sessions() {
			if i != j && (s.Device() == o.Device() || s.Machine() == o.Machine()) {
				t.Fatalf("sessions %d and %d share a device or machine", i, j)
			}
		}
	}
}

func TestPoolRunParallelIsolation(t *testing.T) {
	const n = 8
	p := NewPool(n, toyBuild(t), WithMemory(1<<16))
	// Seed each session's guest memory with a distinct pattern, then let
	// every session concurrently DMA its own pattern in and raise its IRQ.
	for i, s := range p.Sessions() {
		pattern := make([]byte, 16)
		for j := range pattern {
			pattern[j] = byte(i*16 + j)
		}
		if err := s.Machine().Mem.Write(0x2000, pattern); err != nil {
			t.Fatalf("seed session %d: %v", i, err)
		}
	}
	err := p.Run(func(s *Session) error {
		for k := 0; k < 50; k++ {
			if _, err := s.Machine().PIOWrite(0x101, []byte{0x00, 0x20, 0x00, 0x00}); err != nil {
				return err
			}
			if _, err := s.Machine().PIOWrite(0x100, []byte{byte(s.ID())}); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range p.Sessions() {
		buf := s.Device().State().Buf(s.Device().Program().FieldIndex("buf"))
		if buf[0] != byte(i*16) || buf[15] != byte(i*16+15) {
			t.Errorf("session %d DMA buffer corrupted: % x", i, buf[:16])
		}
		if got, _ := s.Device().State().IntByName("reg"); got != uint64(i) {
			t.Errorf("session %d reg = %#x, want %#x", i, got, i)
		}
		if !s.Machine().IRQ.Level(5) {
			t.Errorf("session %d IRQ not asserted", i)
		}
	}
}

func TestPoolRunJoinsErrors(t *testing.T) {
	p := NewPool(4, toyBuild(t))
	err := p.Run(func(s *Session) error {
		if s.ID()%2 == 1 {
			return fmt.Errorf("boom %d", s.ID())
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected joined error")
	}
	for _, want := range []string{"session 1: boom 1", "session 3: boom 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

// TestNewSessionOnSharedMachine exercises serially-multiplexed co-hosting:
// two device instances on one machine, one on the PIO space and one on
// the MMIO space (the toy device decodes relative to base 0x100).
func TestNewSessionOnSharedMachine(t *testing.T) {
	m := New(WithMemory(1 << 16))
	s0 := NewSessionOn(m, 0, func() (Device, []AttachOption) {
		return newToyDevice(t), []AttachOption{WithPIO(0x100, 4)}
	})
	s1 := NewSessionOn(m, 1, func() (Device, []AttachOption) {
		return newToyDevice(t), []AttachOption{WithMMIO(0x100, 4)}
	})
	if s0.Machine() != m || s1.Machine() != m {
		t.Fatal("sessions not bound to the given machine")
	}
	if _, err := m.PIOWrite(0x100, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.MMIOWrite(0x100, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if got, _ := s0.Device().State().IntByName("reg"); got != 7 {
		t.Errorf("dev0 reg = %d, want 7", got)
	}
	if got, _ := s1.Device().State().IntByName("reg"); got != 9 {
		t.Errorf("dev1 reg = %d, want 9", got)
	}
}
