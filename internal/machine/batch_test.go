package machine

import (
	"errors"
	"fmt"
	"testing"

	"sedspec/internal/interp"
)

// scriptedBatcher is a BatchInterposer whose verdicts follow a script:
// prefix[i] is how many requests the i-th PreIOBatch call marks checked
// (0 = whole sub-batch); block, when >= 0, marks that absolute request
// index blocked. It records every delivery for assertions.
type scriptedBatcher struct {
	prefix  []int
	call    int
	seen    int
	block   int
	halts   int
	haltsFn bool
	batches [][]int // request counts per PreIOBatch call
	preIOs  int
}

func (s *scriptedBatcher) PreIO(Device, *interp.Request) error {
	s.preIOs++
	return nil
}

func (s *scriptedBatcher) PreIOBatch(reqs []*interp.Request) []Verdict {
	s.batches = append(s.batches, []int{len(reqs)})
	n := len(reqs)
	if s.call < len(s.prefix) && s.prefix[s.call] > 0 && s.prefix[s.call] < n {
		n = s.prefix[s.call]
	}
	s.call++
	vs := make([]Verdict, len(reqs))
	for i := 0; i < n; i++ {
		abs := s.seen + i
		vs[i].Checked = true
		if abs == s.block {
			vs[i].Blocked = true
			vs[i].Err = fmt.Errorf("scripted block at %d", abs)
			if s.haltsFn {
				vs[i].Halt = func() { s.halts++ }
			}
			n = i + 1
			break
		}
	}
	s.seen += n
	return vs
}

func storeReqs(n int) []*interp.Request {
	reqs := make([]*interp.Request, n)
	for i := range reqs {
		reqs[i] = interp.NewWrite(interp.SpacePIO, 0x100, []byte{byte(i + 1)})
	}
	return reqs
}

// TestDispatchBatchConsumesPrefixes re-presents unchecked tails until the
// burst is consumed, and every checked round reaches the device in order.
func TestDispatchBatchConsumesPrefixes(t *testing.T) {
	m := New()
	dev := newToyDevice(t)
	a := m.Attach(dev, WithPIO(0x100, 4))
	sb := &scriptedBatcher{prefix: []int{3, 2, 0}, block: -1}
	a.AddInterposer(sb)

	reqs := storeReqs(8)
	results, err := a.DispatchBatch(reqs)
	if err != nil {
		t.Fatalf("DispatchBatch: %v", err)
	}
	if len(sb.batches) != 3 {
		t.Fatalf("PreIOBatch calls = %d, want 3", len(sb.batches))
	}
	for i, want := range []int{8, 5, 3} {
		if sb.batches[i][0] != want {
			t.Errorf("call %d saw %d requests, want %d", i, sb.batches[i][0], want)
		}
	}
	for i, res := range results {
		if res == nil {
			t.Fatalf("request %d has no result", i)
		}
	}
	if got, _ := dev.state.IntByName("reg"); got != 8 {
		t.Errorf("reg = %d, want 8 (last request)", got)
	}
	if a.round != 8 {
		t.Errorf("round = %d, want 8", a.round)
	}
	if sb.preIOs != 0 {
		t.Errorf("per-round PreIO called %d times alongside batches", sb.preIOs)
	}
}

// TestDispatchBatchBlocked stops at the blocked request: the clean prefix
// reaches the device, the halt action runs, and the tail never executes.
func TestDispatchBatchBlocked(t *testing.T) {
	m := New()
	dev := newToyDevice(t)
	a := m.Attach(dev, WithPIO(0x100, 4))
	sb := &scriptedBatcher{block: 3, haltsFn: true}
	a.AddInterposer(sb)

	results, err := a.DispatchBatch(storeReqs(6))
	if !errors.Is(err, ErrBlocked) {
		t.Fatalf("err = %v, want ErrBlocked", err)
	}
	if sb.halts != 1 {
		t.Errorf("halt action ran %d times, want 1", sb.halts)
	}
	// Requests 0..2 executed, 3.. did not.
	for i := 0; i < 3; i++ {
		if results[i] == nil {
			t.Errorf("request %d should have executed", i)
		}
	}
	for i := 3; i < 6; i++ {
		if results[i] != nil {
			t.Errorf("request %d should not have executed", i)
		}
	}
	if got, _ := dev.state.IntByName("reg"); got != 3 {
		t.Errorf("reg = %d, want 3 (last clean request)", got)
	}
}

// plainInterposer is a non-batch interposer counting calls.
type plainInterposer struct{ n int }

func (p *plainInterposer) PreIO(Device, *interp.Request) error {
	p.n++
	return nil
}

// TestDispatchBatchFallsBackPerRequest uses DispatchDirect when the
// interposer chain is not a single batch-capable interposer.
func TestDispatchBatchFallsBackPerRequest(t *testing.T) {
	m := New()
	dev := newToyDevice(t)
	a := m.Attach(dev, WithPIO(0x100, 4))
	pi := &plainInterposer{}
	a.AddInterposer(pi)

	if _, err := a.DispatchBatch(storeReqs(5)); err != nil {
		t.Fatalf("DispatchBatch: %v", err)
	}
	if pi.n != 5 {
		t.Errorf("PreIO calls = %d, want 5", pi.n)
	}
	if got, _ := dev.state.IntByName("reg"); got != 5 {
		t.Errorf("reg = %d, want 5", got)
	}
}

// TestDispatchBatchNoInterposers executes the burst bare.
func TestDispatchBatchNoInterposers(t *testing.T) {
	m := New()
	dev := newToyDevice(t)
	a := m.Attach(dev, WithPIO(0x100, 4))
	results, err := a.DispatchBatch(storeReqs(4))
	if err != nil {
		t.Fatalf("DispatchBatch: %v", err)
	}
	if len(results) != 4 || results[3] == nil {
		t.Fatalf("results incomplete: %v", results)
	}
	if a.round != 4 {
		t.Errorf("round = %d, want 4", a.round)
	}
}

// TestDispatchBatchHalted refuses to run on a halted machine, like
// DispatchDirect.
func TestDispatchBatchHalted(t *testing.T) {
	m := New()
	dev := newToyDevice(t)
	a := m.Attach(dev, WithPIO(0x100, 4))
	m.Halt()
	if _, err := a.DispatchBatch(storeReqs(2)); !errors.Is(err, ErrHalted) {
		t.Errorf("err = %v, want ErrHalted", err)
	}
}

// TestDispatchBatchNoProgress surfaces a defective interposer that marks
// nothing checked instead of spinning forever.
func TestDispatchBatchNoProgress(t *testing.T) {
	m := New()
	dev := newToyDevice(t)
	a := m.Attach(dev, WithPIO(0x100, 4))
	a.AddInterposer(&stuckBatcher{})
	if _, err := a.DispatchBatch(storeReqs(2)); err == nil {
		t.Error("no-progress batch should error")
	}
}

type stuckBatcher struct{}

func (s *stuckBatcher) PreIO(Device, *interp.Request) error { return nil }
func (s *stuckBatcher) PreIOBatch(reqs []*interp.Request) []Verdict {
	return make([]Verdict, len(reqs))
}
