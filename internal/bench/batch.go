package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"sedspec/internal/checker"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
)

// DefaultBatchSize is the delivery window used when a benchmark does not
// choose its own: large enough that the per-delivery fixed costs (epoch
// bracket, arena and journal reset, counter and summary publication) are
// fully amortized — the per-round delta is flat from ~16 up — and sized
// like a full ring sweep on the ring/doorbell devices.
const DefaultBatchSize = 64

// BatchBenchRow is one device's batched-delivery comparison: the same
// captured benign stream replayed through two sessions of one shared
// threaded engine, one driven per round (PreIO) and one in ring-sweep
// batches (PreIOBatch), so the row isolates exactly what batching
// amortizes — epoch brackets, arena resets, journal epochs, counter and
// metrics publication.
type BatchBenchRow struct {
	Device             string  `json:"device"`
	Requests           int     `json:"requests"`
	Iters              int     `json:"iters"`
	BatchSize          int     `json:"batch_size"`
	PerRoundNsPerOp    float64 `json:"per_round_ns_per_op"`
	BatchedNsPerOp     float64 `json:"batched_ns_per_op"`
	SpeedupPct         float64 `json:"speedup_pct"` // (per_round-batched)/per_round
	BatchedAllocsPerOp float64 `json:"batched_allocs_per_op"`
}

// Both delivery harnesses below mirror the machine dispatcher's
// interposer protocol, minus what batching does not change: the device
// model, the virtual clock, and the halt checks are identical per-op in
// DispatchDirect and DispatchBatch, so they are excluded from both
// sides; the interposer-facing work — interface dispatch, the per-round
// PostInterposer discovery, verdict handling — is exactly what the two
// paths do differently, so it is reproduced faithfully.

// stepRound replays captured request j through the per-round delivery
// protocol: DispatchDirect's interposer walk, with its interface PreIO
// call and its per-round PostInterposer type assertion. The caller
// tracks the stream position and resynchronizes at each wrap, so the
// timed loop carries no modulo of its own.
func (r *CheckerReplay) stepRound(ips []machine.Interposer, dev machine.Device, j int) error {
	req := r.Reqs[j]
	for _, ip := range ips {
		if err := ip.PreIO(dev, req); err != nil {
			return fmt.Errorf("bench: %s per-round replay round %d: %v", r.Target.Name, j, err)
		}
	}
	for _, ip := range ips {
		if pi, ok := ip.(machine.PostInterposer); ok {
			pi.PostIO(dev, req, nil)
		}
	}
	return nil
}

// timeChunkRound replays n rounds through the per-round protocol from
// stream position j, returning elapsed wall time, the heap allocation
// count delta, and the next stream position.
func (r *CheckerReplay) timeChunkRound(chk *checker.Checker, ips []machine.Interposer, dev machine.Device, j, n int) (time.Duration, uint64, int, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if j == 0 {
			chk.ResyncShadow(r.start)
		}
		if err := r.stepRound(ips, dev, j); err != nil {
			return 0, 0, 0, err
		}
		if j++; j == len(r.Reqs) {
			j = 0
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, j, nil
}

// stepBatch replays one batch window starting at stream position j
// through the batched delivery protocol: DispatchBatch's hoisted
// BatchInterposer and PostInterposer, one PreIOBatch per window, the
// verdict prefix scan, and one post-I/O point per delivered window.
// The caller resynchronizes at each wrap of the captured stream like
// StepStream; windows never straddle the wrap, so every batch sees the
// control state its requests were recorded against. It returns the
// number of rounds consumed.
func (r *CheckerReplay) stepBatch(bi machine.BatchInterposer, pi machine.PostInterposer, dev machine.Device, reqs []*interp.Request, j, size int) (int, error) {
	end := j + size
	if end > len(reqs) {
		end = len(reqs)
	}
	vs := bi.PreIOBatch(reqs[j:end])
	for k := range vs {
		if !vs[k].Checked || vs[k].Err != nil {
			return 0, fmt.Errorf("bench: %s batched replay round %d: checked=%v err=%v",
				r.Target.Name, j+k, vs[k].Checked, vs[k].Err)
		}
	}
	// DispatchBatch's protocol: one post-I/O resync point per delivered
	// prefix, after its last round.
	pi.PostIO(dev, reqs[end-1], nil)
	return end - j, nil
}

// timeChunkBatch replays whole batches from stream position j until at
// least n rounds have been consumed, returning elapsed wall time, the
// heap allocation count delta, the rounds actually consumed, and the
// next stream position.
func (r *CheckerReplay) timeChunkBatch(bi machine.BatchInterposer, pi machine.PostInterposer, dev machine.Device, chk *checker.Checker, reqs []*interp.Request, j, n, size int) (time.Duration, uint64, int, int, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	consumed := 0
	for consumed < n {
		if j == 0 {
			chk.ResyncShadow(r.start)
		}
		c, err := r.stepBatch(bi, pi, dev, reqs, j, size)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		consumed += c
		if j += c; j == len(reqs) {
			j = 0
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, consumed, j, nil
}

// BatchOverhead measures per-round against batched delivery on one
// device. Both sides are sessions of the same shared threaded engine —
// the production enforcement configuration — so epoch brackets, spec
// adoption, and per-session counter banks cost both sides alike and the
// delta is purely the per-round fixed costs the batch path amortizes.
// Timing interleaves chunks like CheckerOverhead. The batched side must
// run allocation-free at steady state; any nonzero minimum chunk rate
// fails the measurement rather than reporting a float.
func BatchOverhead(t *Target, ops, iters, batchSize int) (*BatchBenchRow, error) {
	r, err := NewCheckerReplay(t, ops)
	if err != nil {
		return nil, err
	}
	if batchSize < 1 {
		batchSize = 1
	}
	sh := checker.NewShared(r.Spec, checker.WithEnv(r.att))
	chkRound := sh.NewSession(r.start)
	chkBatch := sh.NewSession(r.start)
	batchReqs := r.CloneReqs()
	ips := []machine.Interposer{chkRound}
	var bi machine.BatchInterposer = chkBatch
	var pi machine.PostInterposer = chkBatch
	dev := r.att.Dev()

	// Warm both sessions over one full cycle, growing arenas and the
	// verdict buffer to steady state.
	chkRound.ResyncShadow(r.start)
	for i := 0; i < len(r.Reqs); i++ {
		if err := r.stepRound(ips, dev, i); err != nil {
			return nil, err
		}
	}
	chkBatch.ResyncShadow(r.start)
	for j := 0; j < len(batchReqs); {
		c, err := r.stepBatch(bi, pi, dev, batchReqs, j, batchSize)
		if err != nil {
			return nil, err
		}
		j += c
	}

	if iters < 1 {
		iters = 1
	}
	chunk := iters / checkerBenchChunks
	if chunk < 1 {
		chunk = 1
	}
	// Per-op cost is estimated as the minimum over interleaved chunks on
	// each side: scheduler preemption and cache pollution only ever make
	// a chunk slower, so the fastest chunk is the robust estimate of the
	// uncontended cost, and interleaving exposes both sides to the same
	// conditions. Sums would let one noisy chunk swing the comparison.
	roundNs, batchNs := -1.0, -1.0
	minRate := -1.0
	jR, jB := 0, 0
	runtime.GC()
	for done := 0; done < iters; {
		n := chunk
		if iters-done < n {
			n = iters - done
		}
		a, _, nextR, err := r.timeChunkRound(chkRound, ips, dev, jR, n)
		if err != nil {
			return nil, err
		}
		jR = nextR
		b, m, consumed, nextB, err := r.timeChunkBatch(bi, pi, dev, chkBatch, batchReqs, jB, n, batchSize)
		if err != nil {
			return nil, err
		}
		jB = nextB
		if ns := float64(a.Nanoseconds()) / float64(n); roundNs < 0 || ns < roundNs {
			roundNs = ns
		}
		if ns := float64(b.Nanoseconds()) / float64(consumed); batchNs < 0 || ns < batchNs {
			batchNs = ns
		}
		if rate := float64(m) / float64(consumed); minRate < 0 || rate < minRate {
			minRate = rate
		}
		done += n
	}
	if minRate > 0 {
		return nil, fmt.Errorf("bench: %s batched replay allocates at steady state: %.3g allocs/op",
			t.Name, minRate)
	}
	return &BatchBenchRow{
		Device:             t.Name,
		Requests:           len(r.Reqs),
		Iters:              iters,
		BatchSize:          batchSize,
		PerRoundNsPerOp:    roundNs,
		BatchedNsPerOp:     batchNs,
		SpeedupPct:         100 * (roundNs - batchNs) / roundNs,
		BatchedAllocsPerOp: 0,
	}, nil
}

// WriteBatchJSON emits the batched-delivery comparison rows as indented
// JSON (BENCH_batch.json).
func WriteBatchJSON(w io.Writer, rows []*BatchBenchRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Benchmark string           `json:"benchmark"`
		Rows      []*BatchBenchRow `json:"rows"`
	}{Benchmark: "checker_batch", Rows: rows})
}
