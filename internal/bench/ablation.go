package bench

import (
	"fmt"
	"io"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/simclock"
	"sedspec/internal/trace"
)

// AblationReductionRow compares specifications built with and without
// control-flow reduction: size and runtime simulation effort.
type AblationReductionRow struct {
	Device           string
	BlocksReduced    int
	BlocksUnreduced  int
	StepsReduced     uint64
	StepsUnreduced   uint64
	MergedBranches   int
	CompressedBlocks int
	SyncPoints       int
	KeptOps, DropOps int
	CommandsInTable  int
}

// AblationReduction measures the effect of the §V-C reduction.
func AblationReduction(t *Target, opsPerRun int) (*AblationReductionRow, error) {
	row := &AblationReductionRow{Device: t.Name}

	run := func(opts core.BuildOpts) (int, uint64, error) {
		_, att := t.setup()
		r, err := sedspec.LearnFull(att, t.Train)
		if err != nil {
			return 0, 0, err
		}
		spec := r.Spec
		if opts.DisableReduction {
			spec, err = core.BuildWith(att.Dev().Program(), r.Params, r.Log, opts)
			if err != nil {
				return 0, 0, err
			}
		} else {
			row.MergedBranches = spec.Stats.MergedBranches
			row.CompressedBlocks = spec.Stats.CompressedBlocks
			row.SyncPoints = spec.Stats.SyncPoints
			row.KeptOps = spec.Stats.KeptOps
			row.DropOps = spec.Stats.DroppedOps
			row.CommandsInTable = spec.Stats.Commands
		}
		chk := sedspec.Protect(att, spec)
		rng := simclock.NewRand(23)
		s := t.NewSession(sedspec.NewDriver(att), rng)
		if err := s.Prepare(); err != nil {
			return 0, 0, err
		}
		for i := 0; i < opsPerRun; i++ {
			if err := s.Op(); err != nil {
				return 0, 0, err
			}
		}
		return spec.Stats.ESBlocks, chk.Stats().StepsSimulated, nil
	}

	var err error
	row.BlocksReduced, row.StepsReduced, err = run(core.BuildOpts{})
	if err != nil {
		return nil, fmt.Errorf("bench: reduction ablation %s: %w", t.Name, err)
	}
	row.BlocksUnreduced, row.StepsUnreduced, err = run(core.BuildOpts{DisableReduction: true})
	if err != nil {
		return nil, fmt.Errorf("bench: reduction ablation %s: %w", t.Name, err)
	}
	return row, nil
}

// AblationFilterRow compares trace volume with and without the paper's
// IPT filters (§IV-A).
type AblationFilterRow struct {
	Device            string
	PacketsFiltered   int
	PacketsUnfiltered int
	DroppedRange      int
	DroppedKernel     int
}

// AblationFilters runs the training workload twice, collecting packets
// with the device filters and with no filters at all.
func AblationFilters(t *Target) (*AblationFilterRow, error) {
	row := &AblationFilterRow{Device: t.Name}

	run := func(cfg trace.Config, useDeviceCfg bool) (trace.Stats, error) {
		_, att := t.setup()
		if useDeviceCfg {
			cfg = trace.DeviceConfig(att.Dev().Program())
		}
		col := trace.NewCollector(cfg)
		att.Interp().SetTracer(col)
		defer att.Interp().SetTracer(nil)
		if err := t.Train(sedspec.NewDriver(att)); err != nil {
			return trace.Stats{}, err
		}
		return col.Stats(), nil
	}

	fs, err := run(trace.Config{}, true)
	if err != nil {
		return nil, fmt.Errorf("bench: filter ablation %s: %w", t.Name, err)
	}
	us, err := run(trace.Config{}, false)
	if err != nil {
		return nil, fmt.Errorf("bench: filter ablation %s: %w", t.Name, err)
	}
	row.PacketsFiltered = fs.Packets
	row.PacketsUnfiltered = us.Packets
	row.DroppedRange = fs.FilteredRange
	row.DroppedKernel = fs.FilteredKernel
	return row, nil
}

// AblationAccessSteps measures checker simulation effort with the command
// access table check on and off (the table's runtime cost).
func AblationAccessSteps(t *Target, opsPerRun int) (withAC, withoutAC uint64, err error) {
	run := func(on bool) (uint64, error) {
		_, att := t.setup()
		spec, err := t.learn(att)
		if err != nil {
			return 0, err
		}
		chk := sedspec.Protect(att, spec, checker.WithAccessControl(on))
		rng := simclock.NewRand(29)
		s := t.NewSession(sedspec.NewDriver(att), rng)
		if err := s.Prepare(); err != nil {
			return 0, err
		}
		for i := 0; i < opsPerRun; i++ {
			if err := s.Op(); err != nil {
				return 0, err
			}
		}
		return chk.Stats().StepsSimulated, nil
	}
	withAC, err = run(true)
	if err != nil {
		return 0, 0, err
	}
	withoutAC, err = run(false)
	return withAC, withoutAC, err
}

// WriteAblations renders ablation results.
func WriteAblations(w io.Writer, reds []*AblationReductionRow, filts []*AblationFilterRow) {
	fmt.Fprintln(w, "Ablation — control-flow reduction (spec size / simulated steps)")
	for _, r := range reds {
		fmt.Fprintf(w, "  %-7s blocks %4d -> %4d (compressed %d, merged %d)   steps %8d -> %8d   kept/dropped ops %d/%d   sync points %d   commands %d\n",
			r.Device, r.BlocksUnreduced, r.BlocksReduced, r.CompressedBlocks, r.MergedBranches,
			r.StepsUnreduced, r.StepsReduced, r.KeptOps, r.DropOps, r.SyncPoints, r.CommandsInTable)
	}
	fmt.Fprintln(w, "Ablation — trace filters (packet volume)")
	for _, f := range filts {
		fmt.Fprintf(w, "  %-7s packets %8d (filtered) vs %8d (unfiltered); dropped by range %d, by ring filter %d\n",
			f.Device, f.PacketsFiltered, f.PacketsUnfiltered, f.DroppedRange, f.DroppedKernel)
	}
}
