package bench_test

import (
	"strings"
	"testing"

	"sedspec/internal/bench"
)

func TestTable1SelectsExpectedParams(t *testing.T) {
	rows, err := bench.Table1(true)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	want := map[string][]string{
		"fdc":   {"fifo", "data_pos", "data_len", "msr", "irq_cb"},
		"pcnet": {"buffer", "xmit_pos", "irq_cb", "rcvrl"},
		"sdhci": {"fifo_buffer", "data_count", "blksize", "irq_cb"},
		"scsi":  {"ti_buf", "ti_wptr", "cmdbuf", "irq_cb"},
		"ehci":  {"data_buf", "setup_index", "setup_buf", "irq_cb"},
	}
	for _, r := range rows {
		names := make(map[string]bool, len(r.Params))
		for _, p := range r.Params {
			names[p.Name] = true
		}
		for _, n := range want[r.Device] {
			if !names[n] {
				t.Errorf("%s: parameter %q not selected (have %v)", r.Device, n, names)
			}
		}
	}
	var sb strings.Builder
	bench.WriteTable1(&sb, rows)
	if !strings.Contains(sb.String(), "Table I") {
		t.Error("WriteTable1 produced no header")
	}
}

func TestTable2FalsePositiveRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("long-run interaction study")
	}
	cfg := bench.DefaultFPConfig()
	// Shrink the study for CI while keeping the regime.
	cfg.Hours = []int{1, 2, 3}
	cfg.CasesPerHour = 40
	cfg.RarePerCase = 0.02 // scaled up to keep expected counts similar
	for _, target := range bench.Targets(true) {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			row, err := bench.Table2(target, cfg)
			if err != nil {
				t.Fatalf("Table2: %v", err)
			}
			last := row.Counts[len(row.Counts)-1]
			if last == 0 {
				t.Errorf("%s: no false positives at all — rare commands not flagged?", target.Name)
			}
			if row.FPR > 0.05 {
				t.Errorf("%s: FPR = %.2f%% far above the paper's regime", target.Name, row.FPR*100)
			}
			// Counts are cumulative snapshots.
			for i := 1; i < len(row.Counts); i++ {
				if row.Counts[i] < row.Counts[i-1] {
					t.Errorf("%s: counts not monotonic: %v", target.Name, row.Counts)
				}
			}
		})
	}
}

func TestTable3MatchesPaperMatrix(t *testing.T) {
	rows, err := bench.Table3Detection()
	if err != nil {
		t.Fatalf("Table3Detection: %v", err)
	}
	// The paper's checkmarks (Table III + §VII-B2 text).
	type marks struct{ param, indirect, cond, detected bool }
	want := map[string]marks{
		"CVE-2015-3456":  {param: true, cond: true, detected: true},
		"CVE-2020-14364": {param: true, indirect: true, detected: true},
		"CVE-2015-7504":  {indirect: true, detected: true},
		"CVE-2015-7512":  {param: true, indirect: true, detected: true},
		"CVE-2016-7909":  {cond: true, detected: true},
		"CVE-2021-3409":  {param: true, detected: true},
		"CVE-2015-5158":  {cond: true, detected: true},
		"CVE-2016-4439":  {param: true, cond: true, detected: true},
		"CVE-2016-1568":  {}, // the documented miss
	}
	for _, r := range rows {
		w, ok := want[r.CVE]
		if !ok {
			t.Errorf("unexpected CVE %s", r.CVE)
			continue
		}
		if r.Param != w.param || r.Indirect != w.indirect || r.Cond != w.cond || r.Detected != w.detected {
			t.Errorf("%s: got param=%v indirect=%v cond=%v detected=%v, want %+v",
				r.CVE, r.Param, r.Indirect, r.Cond, r.Detected, w)
		}
		if w.detected && r.Succeeded {
			t.Errorf("%s: exploit effect reached the device despite detection", r.CVE)
		}
	}
}

func TestEffectiveCoverageInPaperRange(t *testing.T) {
	for _, target := range bench.Targets(true) {
		target := target
		t.Run(target.Name, func(t *testing.T) {
			cov, err := bench.EffectiveCoverage(target, 600, 3)
			if err != nil {
				t.Fatalf("EffectiveCoverage: %v", err)
			}
			// Paper: 93.5% — 97.3%. Accept a generous band around it.
			if cov < 0.80 || cov > 1.0 {
				t.Errorf("coverage = %.1f%%, want within (80%%, 100%%]", cov*100)
			}
			if cov == 1.0 {
				t.Logf("note: %s coverage is 100%% — rare ops added no new blocks this seed", target.Name)
			}
		})
	}
}

func TestFigure34StorageOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock performance study")
	}
	// Wall-clock measurement: retry before failing, since other test
	// packages (and their benchmarks) may run concurrently on shared CPU.
	target := bench.TargetByName("sdhci", true)
	var lastBad float64
	for attempt := 0; attempt < 3; attempt++ {
		points, err := bench.Figure34(target, []int{64, 512}, 4, true)
		if err != nil {
			t.Fatalf("Figure34: %v", err)
		}
		ok := true
		for _, p := range points {
			if p.Normalized < 0.5 || p.Normalized > 1.2 {
				ok = false
				lastBad = p.Normalized
			}
		}
		if ok {
			return
		}
	}
	t.Errorf("normalized throughput %.2f outside sane band after retries", lastBad)
}

func TestFigure5Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock performance study")
	}
	var lastBad string
	for attempt := 0; attempt < 3; attempt++ {
		points, err := bench.Figure5(200)
		if err != nil {
			t.Fatalf("Figure5: %v", err)
		}
		if len(points) != 5 {
			t.Fatalf("points = %d, want 5 (4 bandwidth series + ping)", len(points))
		}
		ok := true
		for _, p := range points {
			if p.OverheadPct > 60 {
				ok = false
				lastBad = p.Series
			}
		}
		if ok {
			return
		}
	}
	t.Errorf("%s overhead implausibly high after retries", lastBad)
}

func TestAblationReductionShrinksSpec(t *testing.T) {
	target := bench.TargetByName("ehci", true)
	row, err := bench.AblationReduction(target, 40)
	if err != nil {
		t.Fatalf("AblationReduction: %v", err)
	}
	if row.BlocksReduced >= row.BlocksUnreduced {
		t.Errorf("reduction did not shrink the spec: %d vs %d",
			row.BlocksReduced, row.BlocksUnreduced)
	}
	if row.DropOps == 0 {
		t.Error("slicing should drop some ops")
	}
	var sb strings.Builder
	bench.WriteAblations(&sb, []*bench.AblationReductionRow{row}, nil)
	if !strings.Contains(sb.String(), "Ablation") {
		t.Error("WriteAblations produced no header")
	}
}

func TestAblationFiltersDropPackets(t *testing.T) {
	// The FDC calls library and kernel helpers; the filters must drop
	// their control flow.
	target := bench.TargetByName("fdc", true)
	row, err := bench.AblationFilters(target)
	if err != nil {
		t.Fatalf("AblationFilters: %v", err)
	}
	if row.PacketsFiltered >= row.PacketsUnfiltered {
		t.Errorf("filters dropped nothing: %d vs %d",
			row.PacketsFiltered, row.PacketsUnfiltered)
	}
	if row.DroppedKernel == 0 || row.DroppedRange == 0 {
		t.Errorf("both filters should fire: range=%d kernel=%d",
			row.DroppedRange, row.DroppedKernel)
	}
}

func TestAblationAccessStepsRuns(t *testing.T) {
	target := bench.TargetByName("scsi", true)
	withAC, withoutAC, err := bench.AblationAccessSteps(target, 40)
	if err != nil {
		t.Fatalf("AblationAccessSteps: %v", err)
	}
	if withAC == 0 || withoutAC == 0 {
		t.Error("both runs should simulate steps")
	}
}

func TestComparisonNioh(t *testing.T) {
	rows, err := bench.ComparisonNioh()
	if err != nil {
		t.Fatalf("ComparisonNioh: %v", err)
	}
	byCVE := map[string]bench.CompRow{}
	for _, r := range rows {
		byCVE[r.CVE] = r
	}
	// The complementarity at the heart of the papers' comparison: both
	// catch Venom and the FIFO overflow; only SEDSpec sees the data
	// plane; only Nioh's manual model catches the UAF.
	if r := byCVE["CVE-2015-3456"]; !r.SEDSpec || !r.Nioh {
		t.Errorf("Venom should be caught by both: %+v", r)
	}
	if r := byCVE["CVE-2016-4439"]; !r.SEDSpec || !r.Nioh {
		t.Errorf("4439 should be caught by both: %+v", r)
	}
	if r := byCVE["CVE-2015-7504"]; !r.SEDSpec || r.Nioh {
		t.Errorf("7504 should be SEDSpec-only: %+v", r)
	}
	if r := byCVE["CVE-2016-1568"]; r.SEDSpec || !r.Nioh {
		t.Errorf("1568 should be Nioh-only: %+v", r)
	}
	if r := byCVE["CVE-2021-3409"]; r.NiohModel {
		t.Errorf("sdhci has no manual model: %+v", r)
	}
}
