package bench

import (
	"errors"
	"fmt"
	"io"

	"sedspec"
	"sedspec/internal/cvesim"
	"sedspec/internal/machine"
	"sedspec/internal/nioh"
)

// CompRow is one row of the SEDSpec-vs-Nioh comparison.
type CompRow struct {
	CVE     string
	Device  string
	SEDSpec bool
	Nioh    bool
	// NiohModel is false when no manual model exists for the device —
	// the scalability cost Nioh pays per device.
	NiohModel bool
	// Note explains route-dependent outcomes.
	Note string
}

// niohModelFor returns the hand-written model for a device, or nil.
func niohModelFor(device string) *nioh.FSM {
	switch device {
	case "fdc":
		return nioh.FDC()
	case "scsi":
		return nioh.SCSI()
	case "pcnet":
		return nioh.PCNet()
	case "ehci":
		return nioh.EHCI()
	default:
		return nil // nobody wrote an SDHCI model
	}
}

// notes for route-dependent Nioh outcomes (see internal/nioh tests for the
// request-visible routes the Nioh paper evaluated).
var niohNotes = map[string]string{
	"CVE-2016-7909":  "misses the init-block route; the CSR76 route is caught",
	"CVE-2015-5158":  "misses the raw-memory route; the honest-driver route is caught",
	"CVE-2015-7504":  "data plane: invisible to a request-level model",
	"CVE-2015-7512":  "data plane: invisible to a request-level model",
	"CVE-2020-14364": "setup packet lives in guest memory: invisible",
	"CVE-2016-1568":  "caught: the human encoded no-resume-after-unlink",
	"CVE-2021-3409":  "no manual model written for SDHCI",
}

// ComparisonNioh replays every case study under SEDSpec (all strategies)
// and under the Nioh baseline's hand-written model.
func ComparisonNioh() ([]CompRow, error) {
	var rows []CompRow
	for _, p := range cvesim.All() {
		row := CompRow{CVE: p.CVE, Device: p.Device, Note: niohNotes[p.CVE]}

		out, err := p.RunProtected()
		if err != nil {
			return nil, fmt.Errorf("bench: comparison %s (sedspec): %w", p.CVE, err)
		}
		row.SEDSpec = out.Detected

		if fsm := niohModelFor(p.Device); fsm != nil {
			row.NiohModel = true
			m := machine.New(machine.WithMemory(1 << 20))
			dev, opts := p.Build()
			att := m.Attach(dev, opts...)
			nioh.Protect(att, fsm)
			exErr := p.Exploit(sedspec.NewDriver(att), m)
			var v *nioh.Violation
			row.Nioh = errors.As(exErr, &v) || m.Halted()
			if exErr != nil && !row.Nioh && !errors.Is(exErr, machine.ErrBlocked) {
				return nil, fmt.Errorf("bench: comparison %s (nioh): %w", p.CVE, exErr)
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteComparison renders the comparison.
func WriteComparison(w io.Writer, rows []CompRow) {
	fmt.Fprintln(w, "Comparison — SEDSpec (automatic) vs Nioh baseline (manual FSM)")
	mark := func(b bool) string {
		if b {
			return "x"
		}
		return "-"
	}
	for _, r := range rows {
		niohMark := mark(r.Nioh)
		if !r.NiohModel {
			niohMark = "n/a"
		}
		fmt.Fprintf(w, "  %-15s %-7s sedspec=%-3s nioh=%-3s %s\n",
			r.CVE, r.Device, mark(r.SEDSpec), niohMark, r.Note)
	}
	fmt.Fprintln(w, "  manual effort: nioh needs a hand-written model per device"+
		" (fdc 130, scsi 95, pcnet 70, ehci 60 spec lines; sdhci unmodelled);"+
		" sedspec derives its specifications automatically from traces")
}
