package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/simclock"
)

// This file measures how checked-I/O throughput scales when one sealed
// specification is shared across N concurrent enforcement sessions
// (checker.Shared). Two probes:
//
//   - Throughput replays each device's captured benign stream through N
//     per-session checkers on N goroutines — the check loop alone, no
//     machine or device in the way. This is where contention on the
//     shared engine would show up, so it is the scaling headline.
//   - ThroughputE2E drives N full guest sessions (machine.Pool, one
//     machine + device instance each, ProtectShared interposers) through
//     the benign workload — the whole emulation stack under enforcement.
//
// Scaling is reported in work-normalized form so the numbers mean the
// same thing on any host. With cores = min(sessions, GOMAXPROCS):
//
//	cpu_ns_per_checked_io = wall * cores / rounds
//	agg_checked_ios_per_sec = sessions / cpu_ns_per_checked_io
//	scaling_x = sessions * c_1 / c_N
//
// On a host with >= N cores this reduces exactly to the direct wall-clock
// aggregate (N sessions run truly in parallel, wall ~= per-op cost x
// rounds/N). On a smaller host the N goroutines time-slice, wall grows by
// the slicing factor, and the normalization divides it back out — but
// cross-session interference is still measured, not assumed: any lock or
// cache-line contention on the shared engine inflates c_N and drags
// scaling_x below N either way. host_cpus in the JSON records which
// regime produced the numbers.

// ThroughputRow is one (device, session-count) scaling measurement of the
// concurrent check loop.
type ThroughputRow struct {
	Device      string  `json:"device"`
	Sessions    int     `json:"sessions"`
	CheckedIOs  uint64  `json:"checked_ios"`  // total rounds across sessions
	WallSeconds float64 `json:"wall_seconds"` //
	CoresUsed   int     `json:"cores_used"`   // min(sessions, GOMAXPROCS)
	CPUNsPerIO  float64 `json:"cpu_ns_per_checked_io"`
	AggPerSec   float64 `json:"agg_checked_ios_per_sec"`
	ScalingX    float64 `json:"scaling_x"`  // sessions * c_1/c_N
	Efficiency  float64 `json:"efficiency"` // ScalingX / sessions
	AllocsPerOp float64 `json:"check_allocs_per_op"`
}

// E2ERow is one (device, session-count) measurement of full guest
// sessions under shared enforcement: machine dispatch, device emulation,
// and per-session checking all included.
type E2ERow struct {
	Device      string  `json:"device"`
	Sessions    int     `json:"sessions"`
	CheckedIOs  uint64  `json:"checked_ios"`
	WallSeconds float64 `json:"wall_seconds"`
	CoresUsed   int     `json:"cores_used"`
	CPUNsPerIO  float64 `json:"cpu_ns_per_checked_io"`
	AggPerSec   float64 `json:"agg_checked_ios_per_sec"`
	ScalingX    float64 `json:"scaling_x"`
}

// SessionCounts returns the session ladder 1, 2, 4, 8, GOMAXPROCS,
// deduplicated and sorted.
func SessionCounts() []int {
	counts := []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)}
	sort.Ints(counts)
	out := counts[:1]
	for _, n := range counts[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// runConcurrentReplay replays iters rounds per session through n
// per-session checkers drawn from one shared engine, returning wall time
// and the heap-allocation delta across the timed window. The goroutines
// are spawned (and their sessions warmed) before the clock starts, parked
// on a start barrier, so only steady-state checking is inside the
// measurement.
func runConcurrentReplay(r *CheckerReplay, sh *checker.Shared, n, iters int) (time.Duration, uint64, error) {
	chks := make([]*checker.Checker, n)
	streams := make([][]*interp.Request, n)
	for i := 0; i < n; i++ {
		chks[i] = sh.NewSession(r.start)
		streams[i] = r.CloneReqs()
	}
	// Warm every session one full cycle: arenas grow to steady state here,
	// not inside the timed window.
	for i := 0; i < n; i++ {
		for k := 0; k < len(streams[i]); k++ {
			if err := r.StepStream(chks[i], streams[i], k); err != nil {
				return 0, 0, fmt.Errorf("bench: %s warm session %d: %w", r.Target.Name, i, err)
			}
		}
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chk, reqs := chks[i], streams[i]
			<-start
			for k := 0; k < iters; k++ {
				if err := r.StepStream(chk, reqs, k); err != nil {
					errs[i] = fmt.Errorf("session %d round %d: %w", i, k, err)
					return
				}
			}
		}(i)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	for _, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("bench: %s replay: %w", r.Target.Name, err)
		}
	}
	for _, chk := range chks {
		chk.Close()
	}
	st := sh.Stats()
	if st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies != 0 {
		return 0, 0, fmt.Errorf("bench: %s concurrent replay raised anomalies: %+v", r.Target.Name, st)
	}
	return wall, after.Mallocs - before.Mallocs, nil
}

// Throughput measures checked-I/O scaling for one device's captured
// replay across the given session counts (iters timed rounds per
// session).
func Throughput(r *CheckerReplay, iters int, counts []int) ([]*ThroughputRow, error) {
	t := r.Target
	// Best of three runs per point, with the repeats interleaved across
	// session counts (1,2,4,.. then again 1,2,4,..): a slow host phase —
	// GC, frequency dip, a neighbour process — then hits every point
	// rather than masquerading as contention at one. Each run gets a
	// fresh shared engine so counters and pool state stay independent.
	const repeats = 3
	walls := make([]time.Duration, len(counts))
	allocs := make([]uint64, len(counts))
	for rep := 0; rep < repeats; rep++ {
		for ci, n := range counts {
			sh := checker.NewShared(r.Spec, checker.WithEnv(r.att))
			w, m, err := runConcurrentReplay(r, sh, n, iters)
			if err != nil {
				return nil, err
			}
			if rep == 0 || w < walls[ci] {
				walls[ci], allocs[ci] = w, m
			}
		}
	}
	var rows []*ThroughputRow
	var c1 float64
	for ci, n := range counts {
		wall, mallocs := walls[ci], allocs[ci]
		rounds := uint64(n) * uint64(iters)
		cores := n
		if g := runtime.GOMAXPROCS(0); cores > g {
			cores = g
		}
		cn := float64(wall.Nanoseconds()) * float64(cores) / float64(rounds)
		if n == counts[0] {
			c1 = cn
		}
		row := &ThroughputRow{
			Device:      t.Name,
			Sessions:    n,
			CheckedIOs:  rounds,
			WallSeconds: wall.Seconds(),
			CoresUsed:   cores,
			CPUNsPerIO:  cn,
			AggPerSec:   float64(n) * 1e9 / cn,
			ScalingX:    float64(n) * c1 / cn,
			Efficiency:  c1 / cn,
			AllocsPerOp: float64(mallocs) / float64(rounds),
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ThroughputE2E measures full-stack scaling: N machines (machine.Pool),
// each hosting its own device instance protected by a per-session checker
// from one shared engine, each driven ops benign operations. Every
// session runs the same deterministic workload (one rng seed), so the
// request streams are identical across sessions and across runs.
func ThroughputE2E(t *Target, spec *core.Spec, ops int, counts []int) ([]*E2ERow, error) {
	var rows []*E2ERow
	var c1 float64
	for _, n := range counts {
		p := machine.NewPool(n, t.Build, machine.WithMemory(1<<20))
		sh := checker.NewShared(spec)
		work := make([]*Session, n)
		for i, s := range p.Sessions() {
			sedspec.ProtectShared(s.Attached(), sh)
			d := sedspec.NewDriver(s.Attached())
			work[i] = t.NewSession(d, simclock.NewRand(7))
			if work[i].Prepare != nil {
				if err := work[i].Prepare(); err != nil {
					return nil, fmt.Errorf("bench: e2e prepare %s session %d: %w", t.Name, i, err)
				}
			}
		}
		base := sh.Stats().Rounds
		t0 := time.Now()
		err := p.Run(func(s *machine.Session) error {
			w := work[s.ID()]
			for k := 0; k < ops; k++ {
				if err := w.Op(); err != nil {
					return err
				}
			}
			return nil
		})
		wall := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("bench: e2e %s x%d: %w", t.Name, n, err)
		}
		rounds := sh.Stats().Rounds - base
		if rounds == 0 {
			return nil, fmt.Errorf("bench: e2e %s x%d: no checked I/Os recorded", t.Name, n)
		}
		cores := n
		if g := runtime.GOMAXPROCS(0); cores > g {
			cores = g
		}
		cn := float64(wall.Nanoseconds()) * float64(cores) / float64(rounds)
		if n == counts[0] {
			c1 = cn
		}
		rows = append(rows, &E2ERow{
			Device:      t.Name,
			Sessions:    n,
			CheckedIOs:  rounds,
			WallSeconds: wall.Seconds(),
			CoresUsed:   cores,
			CPUNsPerIO:  cn,
			AggPerSec:   float64(n) * 1e9 / cn,
			ScalingX:    float64(n) * c1 / cn,
		})
	}
	return rows, nil
}

// WriteThroughputJSON emits both measurement families plus the host
// parameters needed to interpret them (BENCH_throughput.json).
func WriteThroughputJSON(w io.Writer, rows []*ThroughputRow, e2e []*E2ERow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Benchmark     string           `json:"benchmark"`
		HostCPUs      int              `json:"host_cpus"`
		SessionCounts []int            `json:"session_counts"`
		Normalization string           `json:"normalization"`
		Rows          []*ThroughputRow `json:"rows"`
		E2E           []*E2ERow        `json:"e2e_rows"`
	}{
		Benchmark:     "concurrent_throughput",
		HostCPUs:      runtime.GOMAXPROCS(0),
		SessionCounts: SessionCounts(),
		Normalization: "cpu_ns_per_checked_io = wall*min(sessions,host_cpus)/rounds; agg = sessions/cpu_ns; scaling_x = sessions*c1/cN (equals direct wall-clock aggregate scaling when host_cpus >= sessions)",
		Rows:          rows,
		E2E:           e2e,
	})
}
