package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/simclock"
)

// This file measures how checked-I/O throughput scales when one sealed
// specification is shared across N concurrent enforcement sessions
// (checker.Shared). Two probes:
//
//   - Throughput replays each device's captured benign stream through N
//     per-session checkers on N goroutines — the check loop alone, no
//     machine or device in the way. This is where contention on the
//     shared engine would show up, so it is the scaling headline. Every
//     (device, sessions) point is measured twice: once through the
//     per-round path (PreIO) and once through the batched path
//     (PreIOBatch windows of DefaultBatchSize), so the ablation shows
//     what batching buys at each point on the ladder.
//   - ThroughputE2E drives N full guest sessions (machine.Pool, one
//     machine + device instance each, ProtectShared interposers) through
//     the benign workload — the whole emulation stack under enforcement.
//
// GOMAXPROCS is pinned to min(sessions, host CPUs) for each row and
// restored afterwards, so a 2-session row really runs on at most two
// cores rather than letting the runtime spread bookkeeping across all of
// them; the pinned value is recorded in the row. Scaling is reported in
// work-normalized form so the numbers mean the same thing on any host.
// With cores = min(sessions, gomaxprocs):
//
//	cpu_ns_per_checked_io = wall * cores / rounds
//	agg_checked_ios_per_sec = sessions / cpu_ns_per_checked_io
//	scaling_x = sessions * c_1 / c_N
//
// On a host with >= N cores this reduces exactly to the direct wall-clock
// aggregate (N sessions run truly in parallel, wall ~= per-op cost x
// rounds/N). On a smaller host the N goroutines time-slice, wall grows by
// the slicing factor, and the normalization divides it back out — but
// cross-session interference is still measured, not assumed: any lock or
// cache-line contention on the shared engine inflates c_N and drags
// scaling_x below N either way. host_cpus and degraded_parallelism in
// the JSON record which regime produced the numbers.

// ThroughputRow is one (device, session-count, delivery-path) scaling
// measurement of the concurrent check loop.
type ThroughputRow struct {
	Device      string  `json:"device"`
	Sessions    int     `json:"sessions"`
	Batched     bool    `json:"batched"`
	BatchSize   int     `json:"batch_size,omitempty"` // 0 on per-round rows
	CheckedIOs  uint64  `json:"checked_ios"`          // total rounds across sessions
	WallSeconds float64 `json:"wall_seconds"`         //
	GoMaxProcs  int     `json:"gomaxprocs"`           // pinned for this row: min(sessions, host CPUs)
	CoresUsed   int     `json:"cores_used"`           // min(sessions, gomaxprocs)
	CPUNsPerIO  float64 `json:"cpu_ns_per_checked_io"`
	AggPerSec   float64 `json:"agg_checked_ios_per_sec"`
	ScalingX    float64 `json:"scaling_x"`  // sessions * c_1/c_N within the same delivery path
	Efficiency  float64 `json:"efficiency"` // ScalingX / sessions
}

// E2ERow is one (device, session-count) measurement of full guest
// sessions under shared enforcement: machine dispatch, device emulation,
// and per-session checking all included.
type E2ERow struct {
	Device      string  `json:"device"`
	Sessions    int     `json:"sessions"`
	CheckedIOs  uint64  `json:"checked_ios"`
	WallSeconds float64 `json:"wall_seconds"`
	GoMaxProcs  int     `json:"gomaxprocs"`
	CoresUsed   int     `json:"cores_used"`
	CPUNsPerIO  float64 `json:"cpu_ns_per_checked_io"`
	AggPerSec   float64 `json:"agg_checked_ios_per_sec"`
	ScalingX    float64 `json:"scaling_x"`
}

// SessionCounts returns the session ladder 1, 2, 4, 8, plus the host CPU
// count, deduplicated and sorted.
func SessionCounts() []int {
	counts := []int{1, 2, 4, 8, runtime.NumCPU()}
	sort.Ints(counts)
	out := counts[:1]
	for _, n := range counts[1:] {
		if n != out[len(out)-1] {
			out = append(out, n)
		}
	}
	return out
}

// DegradedParallelism reports whether the host cannot actually run the
// top of the session ladder in parallel: rows with sessions > host CPUs
// time-slice, so their scaling numbers are normalized estimates rather
// than direct wall-clock parallelism.
func DegradedParallelism() bool {
	counts := SessionCounts()
	return runtime.NumCPU() < counts[len(counts)-1]
}

// pinGOMAXPROCS sets GOMAXPROCS to min(n, host CPUs) and returns the
// pinned value.
func pinGOMAXPROCS(n int) int {
	g := n
	if nc := runtime.NumCPU(); g > nc {
		g = nc
	}
	runtime.GOMAXPROCS(g)
	return g
}

// runConcurrentReplay replays iters rounds per session through n
// per-session checkers drawn from one shared engine, returning wall time
// and the heap-allocation delta across the timed window. batchSize 0
// drives each session per round (PreIO, one call per request);
// batchSize >= 1 drives it in batched deliveries (PreIOBatch windows,
// capped at the stream wrap so every window sees the control state its
// requests were recorded against). Both loops carry the stream position
// with a compare-based wrap — no per-round modulo on either side. The
// goroutines are spawned (and their sessions warmed) before the clock
// starts, parked on a start barrier, so only steady-state checking is
// inside the measurement.
func runConcurrentReplay(r *CheckerReplay, sh *checker.Shared, n, iters, batchSize int) (time.Duration, uint64, error) {
	chks := make([]*checker.Checker, n)
	streams := make([][]*interp.Request, n)
	for i := 0; i < n; i++ {
		chks[i] = sh.NewSession(r.start)
		streams[i] = r.CloneReqs()
	}
	session := func(chk *checker.Checker, reqs []*interp.Request, iters int) error {
		j := 0
		if batchSize <= 0 {
			for k := 0; k < iters; k++ {
				if j == 0 {
					chk.ResyncShadow(r.start)
				}
				if err := chk.PreIO(nil, reqs[j]); err != nil {
					return fmt.Errorf("round %d: %w", k, err)
				}
				if j++; j == len(reqs) {
					j = 0
				}
			}
			return nil
		}
		for k := 0; k < iters; {
			if j == 0 {
				chk.ResyncShadow(r.start)
			}
			w := batchSize
			if rem := len(reqs) - j; w > rem {
				w = rem
			}
			if rem := iters - k; w > rem {
				w = rem
			}
			vs := chk.PreIOBatch(reqs[j : j+w])
			for x := range vs {
				if !vs[x].Checked || vs[x].Err != nil {
					return fmt.Errorf("round %d: checked=%v err=%v", k+x, vs[x].Checked, vs[x].Err)
				}
			}
			k += w
			if j += w; j == len(reqs) {
				j = 0
			}
		}
		return nil
	}
	// Warm every session one full cycle: arenas and verdict buffers grow
	// to steady state here, not inside the timed window.
	for i := 0; i < n; i++ {
		if err := session(chks[i], streams[i], len(streams[i])); err != nil {
			return 0, 0, fmt.Errorf("bench: %s warm session %d: %w", r.Target.Name, i, err)
		}
	}

	start := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chk, reqs := chks[i], streams[i]
			<-start
			if err := session(chk, reqs, iters); err != nil {
				errs[i] = fmt.Errorf("session %d %w", i, err)
			}
		}(i)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)
	runtime.ReadMemStats(&after)

	for _, err := range errs {
		if err != nil {
			return 0, 0, fmt.Errorf("bench: %s replay: %w", r.Target.Name, err)
		}
	}
	for _, chk := range chks {
		chk.Close()
	}
	st := sh.Stats()
	if st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies != 0 {
		return 0, 0, fmt.Errorf("bench: %s concurrent replay raised anomalies: %+v", r.Target.Name, st)
	}
	return wall, after.Mallocs - before.Mallocs, nil
}

// Throughput measures checked-I/O scaling for one device's captured
// replay across the given session counts (iters timed rounds per
// session), with a per-round/batched ablation at every point. The check
// loop must be allocation-free at steady state on every point; any point
// whose best repeat still allocates fails the experiment outright rather
// than reporting a rate.
func Throughput(r *CheckerReplay, iters int, counts []int) ([]*ThroughputRow, error) {
	t := r.Target
	if iters < 1 {
		iters = 1
	}
	// Best of three runs per point, with the repeats interleaved across
	// session counts and delivery paths (1,2,4,.. then again 1,2,4,..): a
	// slow host phase — GC, frequency dip, a neighbour process — then
	// hits every point rather than masquerading as contention at one.
	// Each run gets a fresh shared engine so counters and pool state stay
	// independent.
	const repeats = 3
	batchSizes := []int{0, DefaultBatchSize} // ablation: per-round, batched
	type point struct {
		wall    time.Duration
		mallocs uint64
		gmp     int
	}
	pts := make([]point, len(batchSizes)*len(counts))
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for rep := 0; rep < repeats; rep++ {
		for ci, n := range counts {
			gmp := pinGOMAXPROCS(n)
			for bi, bs := range batchSizes {
				sh := checker.NewShared(r.Spec, checker.WithEnv(r.att))
				w, m, err := runConcurrentReplay(r, sh, n, iters, bs)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					return nil, err
				}
				p := &pts[bi*len(counts)+ci]
				if rep == 0 || w < p.wall {
					p.wall = w
				}
				if rep == 0 || m < p.mallocs {
					p.mallocs = m
				}
				p.gmp = gmp
			}
		}
	}
	runtime.GOMAXPROCS(prev)

	var rows []*ThroughputRow
	for bi, bs := range batchSizes {
		var c1 float64
		for ci, n := range counts {
			p := pts[bi*len(counts)+ci]
			rounds := uint64(n) * uint64(iters)
			if p.mallocs != 0 {
				return nil, fmt.Errorf("bench: %s x%d (batch=%d) check loop allocates at steady state: "+
					"%d allocs over %d rounds; the enforcement hot path must be allocation-free",
					t.Name, n, bs, p.mallocs, rounds)
			}
			cores := n
			if cores > p.gmp {
				cores = p.gmp
			}
			cn := float64(p.wall.Nanoseconds()) * float64(cores) / float64(rounds)
			if ci == 0 {
				c1 = cn
			}
			rows = append(rows, &ThroughputRow{
				Device:      t.Name,
				Sessions:    n,
				Batched:     bs > 0,
				BatchSize:   bs,
				CheckedIOs:  rounds,
				WallSeconds: p.wall.Seconds(),
				GoMaxProcs:  p.gmp,
				CoresUsed:   cores,
				CPUNsPerIO:  cn,
				AggPerSec:   float64(n) * 1e9 / cn,
				ScalingX:    float64(n) * c1 / cn,
				Efficiency:  c1 / cn,
			})
		}
	}
	return rows, nil
}

// ThroughputE2E measures full-stack scaling: N machines (machine.Pool),
// each hosting its own device instance protected by a per-session checker
// from one shared engine, each driven ops benign operations. Every
// session runs the same deterministic workload (one rng seed), so the
// request streams are identical across sessions and across runs.
// GOMAXPROCS is pinned per point like Throughput.
func ThroughputE2E(t *Target, spec *core.Spec, ops int, counts []int) ([]*E2ERow, error) {
	var rows []*E2ERow
	var c1 float64
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, n := range counts {
		gmp := pinGOMAXPROCS(n)
		p := machine.NewPool(n, t.Build, machine.WithMemory(1<<20))
		sh := checker.NewShared(spec)
		work := make([]*Session, n)
		for i, s := range p.Sessions() {
			sedspec.ProtectShared(s.Attached(), sh)
			d := sedspec.NewDriver(s.Attached())
			work[i] = t.NewSession(d, simclock.NewRand(7))
			if work[i].Prepare != nil {
				if err := work[i].Prepare(); err != nil {
					return nil, fmt.Errorf("bench: e2e prepare %s session %d: %w", t.Name, i, err)
				}
			}
		}
		base := sh.Stats().Rounds
		t0 := time.Now()
		err := p.Run(func(s *machine.Session) error {
			w := work[s.ID()]
			for k := 0; k < ops; k++ {
				if err := w.Op(); err != nil {
					return err
				}
			}
			return nil
		})
		wall := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("bench: e2e %s x%d: %w", t.Name, n, err)
		}
		rounds := sh.Stats().Rounds - base
		if rounds == 0 {
			return nil, fmt.Errorf("bench: e2e %s x%d: no checked I/Os recorded", t.Name, n)
		}
		cores := n
		if cores > gmp {
			cores = gmp
		}
		cn := float64(wall.Nanoseconds()) * float64(cores) / float64(rounds)
		if n == counts[0] {
			c1 = cn
		}
		rows = append(rows, &E2ERow{
			Device:      t.Name,
			Sessions:    n,
			CheckedIOs:  rounds,
			WallSeconds: wall.Seconds(),
			GoMaxProcs:  gmp,
			CoresUsed:   cores,
			CPUNsPerIO:  cn,
			AggPerSec:   float64(n) * 1e9 / cn,
			ScalingX:    float64(n) * c1 / cn,
		})
	}
	return rows, nil
}

// WriteThroughputJSON emits both measurement families plus the host
// parameters needed to interpret them (BENCH_throughput.json, version 2:
// per-row gomaxprocs and per-round/batched ablation rows, top-level
// degraded_parallelism flag).
func WriteThroughputJSON(w io.Writer, rows []*ThroughputRow, e2e []*E2ERow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Benchmark           string           `json:"benchmark"`
		Version             int              `json:"version"`
		HostCPUs            int              `json:"host_cpus"`
		DegradedParallelism bool             `json:"degraded_parallelism"`
		SessionCounts       []int            `json:"session_counts"`
		BatchSize           int              `json:"batch_size"`
		Normalization       string           `json:"normalization"`
		Rows                []*ThroughputRow `json:"rows"`
		E2E                 []*E2ERow        `json:"e2e_rows"`
	}{
		Benchmark:           "concurrent_throughput",
		Version:             2,
		HostCPUs:            runtime.NumCPU(),
		DegradedParallelism: DegradedParallelism(),
		SessionCounts:       SessionCounts(),
		BatchSize:           DefaultBatchSize,
		Normalization:       "cpu_ns_per_checked_io = wall*min(sessions,gomaxprocs)/rounds; agg = sessions/cpu_ns; scaling_x = sessions*c1/cN within one delivery path (equals direct wall-clock aggregate scaling when host_cpus >= sessions)",
		Rows:                rows,
		E2E:                 e2e,
	})
}
