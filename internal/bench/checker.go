package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/simclock"
)

// reqRecorder is an interposer that deep-copies the benign request stream
// flowing into a device so it can later be replayed straight into a
// checker, without the device or machine in the loop.
type reqRecorder struct {
	reqs []*interp.Request
}

func (r *reqRecorder) PreIO(_ machine.Device, req *interp.Request) error {
	cl := &interp.Request{Space: req.Space, Addr: req.Addr, Write: req.Write}
	if len(req.Data) > 0 {
		cl.Data = append([]byte(nil), req.Data...)
	}
	r.reqs = append(r.reqs, cl)
	return nil
}

// CheckerReplay is a captured benign I/O stream plus everything needed to
// replay it through a fresh ES-Checker: the learned spec, the device
// control structure snapshot taken at capture start, and the machine
// attachment (kept alive so DMA sync points read the same guest memory
// the capture saw).
type CheckerReplay struct {
	Target *Target
	Spec   *core.Spec
	Reqs   []*interp.Request

	att   *machine.Attached
	start *interp.State
}

// NewCheckerReplay learns the target's spec, brings the device up, and
// records the request stream of ops benign session operations. The
// captured stream is validated by replaying it through both engines for
// two full cycles: a clean capture raises zero anomalies, which is what
// makes cyclic replay a faithful per-I/O overhead probe.
func NewCheckerReplay(t *Target, ops int) (*CheckerReplay, error) {
	_, att := t.setup()
	spec, err := t.learn(att)
	if err != nil {
		return nil, err
	}
	d := sedspec.NewDriver(att)
	sess := t.NewSession(d, simclock.NewRand(7))
	if sess.Prepare != nil {
		if err := sess.Prepare(); err != nil {
			return nil, fmt.Errorf("bench: prepare %s: %w", t.Name, err)
		}
	}
	start := att.Dev().State().Clone()

	rec := &reqRecorder{}
	att.AddInterposer(rec)
	for i := 0; i < ops; i++ {
		if err := sess.Op(); err != nil {
			return nil, fmt.Errorf("bench: capture %s op %d: %w", t.Name, i, err)
		}
	}
	att.ClearInterposers()
	if len(rec.reqs) == 0 {
		return nil, fmt.Errorf("bench: capture %s: empty request stream", t.Name)
	}

	r := &CheckerReplay{Target: t, Spec: spec, Reqs: rec.reqs, att: att, start: start}
	for _, engine := range []string{"threaded", "switch", "reference"} {
		if err := r.validate(engine); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// NewChecker builds a detached checker over the captured spec, wired to
// the capture machine's environment.
func (r *CheckerReplay) NewChecker(opts ...checker.Option) *checker.Checker {
	opts = append([]checker.Option{checker.WithEnv(r.att)}, opts...)
	return checker.New(r.Spec, r.start, opts...)
}

// Step replays request i (cyclically) through chk. At each wrap of the
// captured stream the shadow is resynchronized to the capture-start
// snapshot, so the simulation always sees the control-structure state the
// stream was recorded against.
func (r *CheckerReplay) Step(chk *checker.Checker, i int) error {
	return r.StepStream(chk, r.Reqs, i)
}

// StepStream is Step over an explicit request stream. Concurrent replay
// sessions each need their own stream (CloneReqs): a Request carries
// mutable read/response cursors, so sharing one across goroutines would
// race.
func (r *CheckerReplay) StepStream(chk *checker.Checker, reqs []*interp.Request, i int) error {
	j := i % len(reqs)
	if j == 0 {
		chk.ResyncShadow(r.start)
	}
	return chk.PreIO(nil, reqs[j])
}

// CloneReqs deep-copies the captured request stream for one replay
// session. The payload bytes are copied too, so sessions share nothing
// mutable.
func (r *CheckerReplay) CloneReqs() []*interp.Request {
	out := make([]*interp.Request, len(r.Reqs))
	for i, req := range r.Reqs {
		cl := &interp.Request{Space: req.Space, Addr: req.Addr, Write: req.Write}
		if len(req.Data) > 0 {
			cl.Data = append([]byte(nil), req.Data...)
		}
		out[i] = cl
	}
	return out
}

// validate replays two full cycles through one of the three engines
// ("threaded", "switch", "reference") and fails on any anomaly.
func (r *CheckerReplay) validate(engine string) error {
	var opts []checker.Option
	switch engine {
	case "reference":
		opts = append(opts, checker.WithReferenceSimulation())
	case "switch":
		opts = append(opts, checker.WithThreadedDispatch(false))
	}
	chk := r.NewChecker(opts...)
	for i := 0; i < 2*len(r.Reqs); i++ {
		if err := r.Step(chk, i); err != nil {
			return fmt.Errorf("bench: %s replay (%s engine) request %d: %w",
				r.Target.Name, engine, i%len(r.Reqs), err)
		}
	}
	if st := chk.Stats(); st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies != 0 {
		return fmt.Errorf("bench: %s replay (%s engine): captured stream raised anomalies: %+v",
			r.Target.Name, engine, st)
	}
	return nil
}

// CheckerBenchRow is one device's per-I/O checker overhead measurement:
// the pre-seal baseline (reference map-walking engine) against the sealed
// fast path, plus the fast path's steady-state heap traffic.
type CheckerBenchRow struct {
	Device            string  `json:"device"`
	Requests          int     `json:"requests"`           // captured stream length
	Iters             int     `json:"iters"`              // timed replay rounds per engine
	BaselineNsPerOp   float64 `json:"baseline_ns_per_op"` // reference engine
	SealedNsPerOp     float64 `json:"sealed_ns_per_op"`
	SpeedupPct        float64 `json:"speedup_pct"` // (baseline-sealed)/baseline
	SealedAllocsPerOp float64 `json:"sealed_allocs_per_op"`
}

// TimeChunk replays [from, from+n) rounds through a warmed checker,
// returning elapsed wall time and the heap allocation count delta. The
// recorder-overhead guard test uses it for interleaved trials.
func (r *CheckerReplay) TimeChunk(chk *checker.Checker, from, n int) (time.Duration, uint64, error) {
	return r.timeChunk(chk, from, n)
}

// timeChunk replays [from, from+n) rounds through a warmed checker,
// returning elapsed wall time and the heap allocation count delta.
func (r *CheckerReplay) timeChunk(chk *checker.Checker, from, n int) (time.Duration, uint64, error) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := from; i < from+n; i++ {
		if err := r.Step(chk, i); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs, nil
}

// checkerBenchChunks is how many alternating chunks the timed iterations
// are split into per engine. Pairing short baseline and sealed chunks
// back to back makes scheduler and frequency noise hit both engines
// alike, which keeps the reported delta stable on busy machines — the
// per-engine minimum of independent long runs does not.
const checkerBenchChunks = 32

// CheckerOverhead captures a benign stream for the target and measures
// per-I/O simulation cost under both engines. Both checkers are warmed
// for a full cycle (growing frame and temp stacks to steady state), then
// iters rounds per engine are timed as checkerBenchChunks interleaved
// baseline/sealed chunk pairs whose times are summed per engine. The
// sealed side is pinned to the switch walker so the row keeps measuring
// what it always has; DispatchOverhead covers walker versus threaded.
func CheckerOverhead(t *Target, ops, iters int) (*CheckerBenchRow, error) {
	r, err := NewCheckerReplay(t, ops)
	if err != nil {
		return nil, err
	}
	chkBase := r.NewChecker(checker.WithReferenceSimulation())
	chkSealed := r.NewChecker(checker.WithThreadedDispatch(false))
	baseNs, sealedNs, allocs, err := r.timePair(chkBase, chkSealed, iters)
	if err != nil {
		return nil, err
	}
	return &CheckerBenchRow{
		Device:            t.Name,
		Requests:          len(r.Reqs),
		Iters:             iters,
		BaselineNsPerOp:   baseNs,
		SealedNsPerOp:     sealedNs,
		SpeedupPct:        100 * (baseNs - sealedNs) / baseNs,
		SealedAllocsPerOp: allocs,
	}, nil
}

// timePair warms two checkers over one full cycle each, then times iters
// replay rounds per checker as checkerBenchChunks interleaved chunk
// pairs. It returns each side's ns/op plus the second checker's
// steady-state allocation rate.
//
// The allocation rate is the minimum per-chunk rate, not the mean: the
// Go runtime allocates in the background on its own schedule (scavenger
// timers, GC worker goroutines), and those strays land in the process-
// wide malloc counter a chunk measurement reads. An engine that really
// allocates on the check path does so in every chunk, so the minimum
// reports true steady-state traffic while discounting one-off background
// noise — this is what kept BENCH_checker.json's alloc column at values
// like 1e-6 instead of a clean zero.
func (r *CheckerReplay) timePair(chkA, chkB *checker.Checker, iters int) (aNs, bNs, bAllocs float64, err error) {
	for i := 0; i < len(r.Reqs); i++ {
		if err := r.Step(chkA, i); err != nil {
			return 0, 0, 0, err
		}
		if err := r.Step(chkB, i); err != nil {
			return 0, 0, 0, err
		}
	}

	if iters < 1 {
		iters = 1 // a zero would divide the per-op averages into NaN
	}
	chunk := iters / checkerBenchChunks
	if chunk < 1 {
		chunk = 1
	}
	var aTot, bTot time.Duration
	minRate := -1.0
	done := 0
	runtime.GC()
	for done < iters {
		n := chunk
		if iters-done < n {
			n = iters - done
		}
		a, _, err := r.timeChunk(chkA, done, n)
		if err != nil {
			return 0, 0, 0, err
		}
		b, m, err := r.timeChunk(chkB, done, n)
		if err != nil {
			return 0, 0, 0, err
		}
		aTot += a
		bTot += b
		if rate := float64(m) / float64(n); minRate < 0 || rate < minRate {
			minRate = rate
		}
		done += n
	}
	if minRate < 0 {
		minRate = 0
	}
	return float64(aTot.Nanoseconds()) / float64(iters),
		float64(bTot.Nanoseconds()) / float64(iters), minRate, nil
}

// DispatchBenchRow is one device's dispatch-engine comparison: the sealed
// switch walker against the threaded-code engine over the same captured
// stream, plus the threaded engine's steady-state allocation rate and the
// stream's fusion statistics from the lowering report.
type DispatchBenchRow struct {
	Device              string  `json:"device"`
	Requests            int     `json:"requests"`
	Iters               int     `json:"iters"`
	SwitchNsPerOp       float64 `json:"switch_ns_per_op"`
	ThreadedNsPerOp     float64 `json:"threaded_ns_per_op"`
	SpeedupPct          float64 `json:"speedup_pct"` // (switch-threaded)/switch
	ThreadedAllocsPerOp float64 `json:"threaded_allocs_per_op"`
	FusedPairs          int     `json:"fused_pairs"`
	FusedDensity        float64 `json:"fused_density"`
}

// DispatchOverhead measures the switch walker against the threaded-code
// engine on one device, interleaving timed chunks like CheckerOverhead so
// both engines see the same machine noise.
func DispatchOverhead(t *Target, ops, iters int) (*DispatchBenchRow, error) {
	r, err := NewCheckerReplay(t, ops)
	if err != nil {
		return nil, err
	}
	chkSwitch := r.NewChecker(checker.WithThreadedDispatch(false))
	chkThreaded := r.NewChecker()
	switchNs, threadedNs, allocs, err := r.timePair(chkSwitch, chkThreaded, iters)
	if err != nil {
		return nil, err
	}
	rep := r.Spec.Seal().Threaded().Report
	return &DispatchBenchRow{
		Device:              t.Name,
		Requests:            len(r.Reqs),
		Iters:               iters,
		SwitchNsPerOp:       switchNs,
		ThreadedNsPerOp:     threadedNs,
		SpeedupPct:          100 * (switchNs - threadedNs) / switchNs,
		ThreadedAllocsPerOp: allocs,
		FusedPairs:          rep.FusedPairs(),
		FusedDensity:        rep.FusedDensity(),
	}, nil
}

// WriteDispatchJSON emits the dispatch comparison rows as indented JSON
// (BENCH_dispatch.json).
func WriteDispatchJSON(w io.Writer, rows []*DispatchBenchRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Benchmark string              `json:"benchmark"`
		Rows      []*DispatchBenchRow `json:"rows"`
	}{Benchmark: "checker_dispatch", Rows: rows})
}

// WriteCheckerJSON emits the measurement rows as indented JSON
// (BENCH_checker.json).
func WriteCheckerJSON(w io.Writer, rows []*CheckerBenchRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Benchmark string             `json:"benchmark"`
		Rows      []*CheckerBenchRow `json:"rows"`
	}{Benchmark: "checker_per_io", Rows: rows})
}
