package bench

import (
	"fmt"
	"io"
	"strings"

	"sedspec"
	"sedspec/internal/analysis"
	"sedspec/internal/checker"
	"sedspec/internal/cvesim"
	"sedspec/internal/fuzzer"
	"sedspec/internal/simclock"
	"sedspec/internal/workload"
)

// --- Table I: device-state parameter selection ---

// Table1Row is one device's parameter selection.
type Table1Row struct {
	Device string
	Params []analysis.Param
}

// Table1 runs the CFG analyzer over every device and reports the selected
// device-state parameters by class (the paper's Table I taxonomy).
func Table1(light bool) ([]Table1Row, error) {
	var rows []Table1Row
	for _, t := range Targets(light) {
		_, att := t.setup()
		r, err := sedspec.LearnFull(att, t.Train)
		if err != nil {
			return nil, fmt.Errorf("bench: table1 %s: %w", t.Name, err)
		}
		rows = append(rows, Table1Row{Device: t.Name, Params: r.Params.Params})
	}
	return rows, nil
}

// WriteTable1 renders Table I.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table I — Selection of Device State Parameters")
	for _, r := range rows {
		byClass := map[analysis.ParamClass][]string{}
		for _, p := range r.Params {
			byClass[p.Class] = append(byClass[p.Class], p.Name)
		}
		fmt.Fprintf(w, "  %-6s register: %-28s buffer: %-22s index/count: %-34s funcptr: %s\n",
			r.Device,
			strings.Join(byClass[analysis.ClassRegister], ","),
			strings.Join(byClass[analysis.ClassBuffer], ","),
			strings.Join(byClass[analysis.ClassIndex], ","),
			strings.Join(byClass[analysis.ClassFuncPtr], ","))
	}
}

// --- Table II: false positives over time ---

// FPConfig tunes the long-run interaction study.
type FPConfig struct {
	// Hours are the snapshot points (paper: 10, 20, 30).
	Hours []int
	// CasesPerHour is how many test cases one virtual hour holds.
	CasesPerHour int
	// OpsPerCase is the I/O-sequence batch size of one test case.
	OpsPerCase int
	// RarePerCase is the probability a case contains one rare command.
	RarePerCase float64
	Seed        uint64
}

// DefaultFPConfig mirrors the paper's regime: test cases of substantial
// I/O volume, with false positives confined to exceedingly rare commands.
func DefaultFPConfig() FPConfig {
	return FPConfig{
		Hours:        []int{10, 20, 30},
		CasesPerHour: 50,
		OpsPerCase:   40,
		RarePerCase:  0.0015,
		Seed:         7,
	}
}

// Table2Row is one device's false-positive counts at each snapshot.
type Table2Row struct {
	Device     string
	Counts     []int // cumulative FP cases at each Hours entry
	TotalCases int
	FPR        float64
}

// Table2 runs the three interaction modes (sequential, random,
// random-with-delay) against a protected device for the configured virtual
// hours, counting legitimate test cases flagged as anomalous.
func Table2(t *Target, cfg FPConfig) (*Table2Row, error) {
	m, att := t.setup()
	spec, err := t.learn(att)
	if err != nil {
		return nil, err
	}
	chk := sedspec.Protect(att, spec, checker.WithMode(checker.ModeEnhancement))

	rng := simclock.NewRand(cfg.Seed)
	d := sedspec.NewDriver(att)
	s := t.NewSession(d, rng)
	if err := s.Prepare(); err != nil {
		return nil, fmt.Errorf("bench: table2 %s prepare: %w", t.Name, err)
	}

	row := &Table2Row{Device: t.Name, Counts: make([]int, len(cfg.Hours))}
	lastHours := cfg.Hours[len(cfg.Hours)-1]
	totalCases := lastHours * cfg.CasesPerHour
	perCase := 3600.0 / float64(cfg.CasesPerHour) // seconds of virtual time

	fpCases := 0
	for c := 0; c < totalCases; c++ {
		mode := workload.Modes()[c%3]
		warningsBefore := len(chk.Warnings())
		rareAt := -1
		if rng.Float64() < cfg.RarePerCase*t.RareWeight {
			rareAt = rng.Intn(cfg.OpsPerCase)
		}
		caseRng := rng
		if mode == workload.Sequential {
			caseRng = simclock.NewRand(cfg.Seed) // fixed order every case
		}
		sSeq := t.NewSession(d, caseRng)
		for op := 0; op < cfg.OpsPerCase; op++ {
			var err error
			if op == rareAt {
				err = s.Rare()
			} else if mode == workload.Sequential {
				err = sSeq.Op()
			} else {
				err = s.Op()
			}
			if err != nil {
				return nil, fmt.Errorf("bench: table2 %s case %d: %w", t.Name, c, err)
			}
			if mode == workload.RandomDelay {
				m.Clock.AdvanceMicros(int64(rng.Intn(100_000)))
			}
		}
		m.Clock.AdvanceMicros(int64(perCase * 1e6))
		if len(chk.Warnings()) > warningsBefore {
			fpCases++
		}
		for hi, h := range cfg.Hours {
			if c+1 == h*cfg.CasesPerHour {
				row.Counts[hi] = fpCases
			}
		}
	}
	row.TotalCases = totalCases
	row.FPR = float64(fpCases) / float64(totalCases)
	return row, nil
}

// WriteTable2 renders Table II.
func WriteTable2(w io.Writer, hours []int, rows []*Table2Row) {
	fmt.Fprintln(w, "Table II — False Positives Over Time")
	fmt.Fprintf(w, "  %-8s", "Device")
	for _, h := range hours {
		fmt.Fprintf(w, " %3d hours", h)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8s", r.Device)
		for _, c := range r.Counts {
			fmt.Fprintf(w, " %9d", c)
		}
		fmt.Fprintln(w)
	}
}

// --- Table III: detection matrix, FPR, effective coverage ---

// Table3Row is one CVE case study's outcome.
type Table3Row struct {
	Device    string
	CVE       string
	QEMU      string
	Param     bool
	Indirect  bool
	Cond      bool
	Detected  bool
	Succeeded bool // exploit effect reached the device despite protection
}

// Table3Detection replays every PoC per strategy, reproducing the
// checkmark matrix of Table III.
func Table3Detection() ([]Table3Row, error) {
	var rows []Table3Row
	for _, p := range cvesim.All() {
		row := Table3Row{Device: p.Device, CVE: p.CVE, QEMU: p.QEMU}
		for _, s := range []checker.Strategy{
			checker.StrategyParameter,
			checker.StrategyIndirectJump,
			checker.StrategyConditionalJump,
		} {
			out, err := p.RunProtected(s)
			if err != nil {
				return nil, fmt.Errorf("bench: table3 %s/%v: %w", p.CVE, s, err)
			}
			if out.Detected {
				switch s {
				case checker.StrategyParameter:
					row.Param = true
				case checker.StrategyIndirectJump:
					row.Indirect = true
				case checker.StrategyConditionalJump:
					row.Cond = true
				}
			}
		}
		full, err := p.RunProtected()
		if err != nil {
			return nil, err
		}
		row.Detected = full.Detected
		row.Succeeded = full.Succeeded
		rows = append(rows, row)
	}
	return rows, nil
}

// EffectiveCoverage computes the fraction of legitimate code paths
// (approximated by fuzzing the device with its full benign-plus-rare
// operation mix) that the execution specification covers.
func EffectiveCoverage(t *Target, fuzzOps int, seed uint64) (float64, error) {
	_, att := t.setup()
	spec, err := t.learn(att)
	if err != nil {
		return 0, err
	}

	rng := simclock.NewRand(seed)
	att.Dev().Reset()
	d := sedspec.NewDriver(att)
	s := t.NewSession(d, rng)
	covered, err := fuzzer.Blocks(att, func() error {
		if err := s.Prepare(); err != nil {
			return err
		}
		for i := 0; i < fuzzOps; i++ {
			var err error
			if rng.Bool(0.04) {
				err = s.Rare()
			} else {
				err = s.Op()
			}
			if err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("bench: coverage fuzz %s: %w", t.Name, err)
	}
	if len(covered) == 0 {
		return 0, fmt.Errorf("bench: coverage fuzz %s reached no blocks", t.Name)
	}
	hit := 0
	for ref := range covered {
		if spec.Covers(ref) {
			hit++
		}
	}
	return float64(hit) / float64(len(covered)), nil
}

// WriteTable3 renders Table III.
func WriteTable3(w io.Writer, rows []Table3Row, fpr map[string]float64, cov map[string]float64) {
	fmt.Fprintln(w, "Table III — Main results")
	fmt.Fprintf(w, "  %-7s %-15s %-7s %-6s %-9s %-5s %-8s %-6s %-9s\n",
		"Device", "CVE", "QEMU", "Param", "Indirect", "Cond", "Detected", "FPR", "Coverage")
	mark := func(b bool) string {
		if b {
			return "x"
		}
		return "-"
	}
	for _, r := range rows {
		fprS, covS := "", ""
		if v, ok := fpr[r.Device]; ok {
			fprS = fmt.Sprintf("%.2f%%", v*100)
		}
		if v, ok := cov[r.Device]; ok {
			covS = fmt.Sprintf("%.1f%%", v*100)
		}
		fmt.Fprintf(w, "  %-7s %-15s %-7s %-6s %-9s %-5s %-8s %-6s %-9s\n",
			r.Device, r.CVE, r.QEMU, mark(r.Param), mark(r.Indirect), mark(r.Cond),
			mark(r.Detected), fprS, covS)
	}
}
