package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/core"
	"sedspec/internal/specstore"
)

// SwapBenchRow is one device's spec lifecycle measurement: what a fresh
// learn costs against a store cache hit, and what continuous hot-swapping
// costs the per-I/O check path.
type SwapBenchRow struct {
	Device   string `json:"device"`
	Requests int    `json:"requests"` // captured stream length
	Iters    int    `json:"iters"`    // timed replay rounds per phase

	// Store cache hit vs relearn.
	LearnNs      int64   `json:"learn_ns"`      // full training run + spec construction
	StoreLoadNs  int64   `json:"store_load_ns"` // Lookup + blob read + DecodeBinary
	CacheSpeedup float64 `json:"cache_speedup_x"`

	// Per-I/O check cost with and without a concurrent swapper.
	SteadyNsPerOp    float64 `json:"steady_ns_per_op"`
	UnderSwapNsPerOp float64 `json:"under_swap_ns_per_op"`
	SwapCostRatio    float64 `json:"swap_cost_ratio"` // under-swap / steady

	// Swap latency: publication plus grace period, averaged over every
	// swap applied while the session was replaying.
	Swaps         uint64  `json:"swaps"`
	SwapLatencyNs float64 `json:"swap_latency_ns"`
}

// SwapBench measures the spec lifecycle for one target: (1) a fresh learn
// against a store cache hit of the same spec, (2) the sealed per-I/O
// check cost in steady state against the same replay with another
// goroutine hot-swapping two equivalent spec versions as fast as the
// grace period allows.
func SwapBench(t *Target, storeDir string, ops, iters int) (*SwapBenchRow, error) {
	// Fresh learn, timed.
	_, att := t.setup()
	t0 := time.Now()
	spec, err := t.learn(att)
	if err != nil {
		return nil, err
	}
	learnNs := time.Since(t0).Nanoseconds()

	// Publish, then time the cache-hit path (best of three: the store is
	// warm in any deployment that benefits from it).
	st, err := specstore.Open(storeDir)
	if err != nil {
		return nil, err
	}
	key := sedspec.StoreKey(att, "bench-"+t.Name)
	if _, err := st.Put(spec, specstore.VersionMeta{
		ProgramHash: key.ProgramHash, CorpusHash: key.CorpusHash, CreatedBy: "learn",
	}); err != nil {
		return nil, err
	}
	prog := att.Dev().Program()
	loadNs := int64(1<<62 - 1)
	for trial := 0; trial < 3; trial++ {
		t1 := time.Now()
		vm, ok := st.Lookup(key)
		if !ok {
			return nil, fmt.Errorf("bench: swap %s: published version not found", t.Name)
		}
		if _, err := st.Load(prog, vm); err != nil {
			return nil, err
		}
		if d := time.Since(t1).Nanoseconds(); d < loadNs {
			loadNs = d
		}
	}

	// Replay harness plus an equivalent second version for the swapper.
	r, err := NewCheckerReplay(t, ops)
	if err != nil {
		return nil, err
	}
	data, err := r.Spec.EncodeBinary()
	if err != nil {
		return nil, err
	}
	specB, err := core.DecodeBinary(r.Spec.Program(), data)
	if err != nil {
		return nil, err
	}

	// One session per phase: a captured stream is only anomaly-free when
	// replayed contiguously (request j expects the state requests 0..j-1
	// built), so the steady and under-swap phases each need their own
	// session walking its own contiguous pass.
	sh := checker.NewShared(r.Spec, checker.WithEnv(r.att))
	chkSteady := sh.NewSession(r.start)
	chkSwap := sh.NewSession(r.start)
	for i := 0; i < 2*len(r.Reqs); i++ { // warm both to steady state
		if err := r.Step(chkSteady, i); err != nil {
			return nil, err
		}
		if err := r.Step(chkSwap, i); err != nil {
			return nil, err
		}
	}
	if iters < 1 {
		iters = 1
	}

	// Interleaved steady/under-swap chunk pairs, so machine noise hits
	// both phases alike. Within the under-swap chunk the spec is
	// republished every swapStride rounds, so successive rounds keep
	// adopting freshly swapped versions. Swaps are injected at round
	// boundaries from this goroutine rather than raced from a background
	// one: on a single-core runner a concurrent swapper only gets the CPU
	// on preemption quanta, so its "latency" measures scheduler
	// time-slicing, while boundary injection drives the same publication
	// and adoption path deterministically on any machine (the -race suite
	// covers the truly concurrent case). Both phases time replay spans of
	// identical length; time spent inside Swap itself is reported
	// separately as SwapLatencyNs.
	const (
		pairs      = 8
		swapStride = 128
	)
	chunk := iters / pairs
	if chunk < 1 {
		chunk = 1
	}
	specs := [2]*core.Spec{specB, r.Spec}
	var steadyNs, swapNs, swapBusy time.Duration
	var swaps uint64
	span := func(chk *checker.Checker, from, n int) (time.Duration, error) {
		t2 := time.Now()
		for i := from; i < from+n; i++ {
			if err := r.Step(chk, i); err != nil {
				return 0, err
			}
		}
		return time.Since(t2), nil
	}
	done := 0
	runtime.GC()
	for done < iters {
		n := chunk
		if iters-done < n {
			n = iters - done
		}
		for off := 0; off < n; off += swapStride {
			k := swapStride
			if n-off < k {
				k = n - off
			}
			d, err := span(chkSteady, done+off, k)
			if err != nil {
				return nil, err
			}
			steadyNs += d
		}
		for off := 0; off < n; off += swapStride {
			k := swapStride
			if n-off < k {
				k = n - off
			}
			d, err := span(chkSwap, done+off, k)
			if err != nil {
				return nil, err
			}
			swapNs += d
			t3 := time.Now()
			if err := sh.Swap(specs[swaps%2]); err != nil {
				return nil, fmt.Errorf("bench: swap %s: %w", t.Name, err)
			}
			swapBusy += time.Since(t3)
			swaps++
		}
		done += n
	}

	steady := float64(steadyNs.Nanoseconds()) / float64(iters)
	under := float64(swapNs.Nanoseconds()) / float64(iters)
	row := &SwapBenchRow{
		Device:           t.Name,
		Requests:         len(r.Reqs),
		Iters:            iters,
		LearnNs:          learnNs,
		StoreLoadNs:      loadNs,
		CacheSpeedup:     float64(learnNs) / float64(loadNs),
		SteadyNsPerOp:    steady,
		UnderSwapNsPerOp: under,
		SwapCostRatio:    under / steady,
		Swaps:            swaps,
	}
	if swaps > 0 {
		row.SwapLatencyNs = float64(swapBusy.Nanoseconds()) / float64(swaps)
	}
	return row, nil
}

// WriteSwapJSON emits the swap experiment rows as indented JSON
// (BENCH_swap.json).
func WriteSwapJSON(w io.Writer, rows []*SwapBenchRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Benchmark string          `json:"benchmark"`
		Rows      []*SwapBenchRow `json:"rows"`
	}{Benchmark: "spec_swap", Rows: rows})
}
