package bench

import (
	"fmt"
	"io"
	"time"

	"sedspec"
	"sedspec/internal/simclock"
)

// PerfPoint is one (device, block size, direction) measurement of
// Figures 3 and 4.
type PerfPoint struct {
	Device   string
	BlockKiB int
	Write    bool
	// Normalized is protected/baseline throughput (Figure 3; 1.0 = no
	// overhead, lower = slower under protection).
	Normalized float64
	// NormalizedLatency is protected/baseline per-operation latency
	// (Figure 4; 1.0 = no overhead, higher = slower).
	NormalizedLatency float64
	BaselineMBps      float64
	ProtectedMBps     float64
}

// measureTransfer times moving totalBytes through the device in
// block-sized operations and returns (seconds, ops).
func measureTransfer(t *Target, protect bool, block, totalBytes int, write bool) (float64, int, error) {
	_, att := t.setup()
	if protect {
		spec, err := t.learn(att)
		if err != nil {
			return 0, 0, err
		}
		sedspec.Protect(att, spec)
	}
	rng := simclock.NewRand(11)
	s := t.NewSession(sedspec.NewDriver(att), rng)
	if err := s.Prepare(); err != nil {
		return 0, 0, err
	}
	// Warm up one block.
	if err := s.Transfer(write, block); err != nil {
		return 0, 0, err
	}

	ops := totalBytes / block
	if ops < 1 {
		ops = 1
	}
	start := time.Now()
	for i := 0; i < ops; i++ {
		if err := s.Transfer(write, block); err != nil {
			return 0, 0, fmt.Errorf("bench: transfer %s: %w", t.Name, err)
		}
	}
	return time.Since(start).Seconds(), ops, nil
}

// Figure34 sweeps block sizes for a storage device and reports normalized
// throughput (Figure 3) and latency (Figure 4) of the protected device
// against the unprotected baseline.
func Figure34(t *Target, blockKiB []int, totalMiB int, write bool) ([]PerfPoint, error) {
	var points []PerfPoint
	for _, bk := range blockKiB {
		block := bk << 10
		total := totalMiB << 20
		base, ops, err := measureTransfer(t, false, block, total, write)
		if err != nil {
			return nil, err
		}
		prot, _, err := measureTransfer(t, true, block, total, write)
		if err != nil {
			return nil, err
		}
		mb := float64(ops*block) / (1 << 20)
		points = append(points, PerfPoint{
			Device:            t.Name,
			BlockKiB:          bk,
			Write:             write,
			Normalized:        base / prot,
			NormalizedLatency: prot / base,
			BaselineMBps:      mb / base,
			ProtectedMBps:     mb / prot,
		})
	}
	return points, nil
}

// WriteFigure34 renders the storage performance series.
func WriteFigure34(w io.Writer, points []PerfPoint) {
	fmt.Fprintln(w, "Figures 3/4 — Normalized storage throughput and latency (protected vs baseline)")
	fmt.Fprintf(w, "  %-7s %-9s %-6s %12s %12s %12s %12s\n",
		"Device", "Block", "Dir", "Base MB/s", "Prot MB/s", "Thru (norm)", "Lat (norm)")
	for _, p := range points {
		dir := "read"
		if p.Write {
			dir = "write"
		}
		fmt.Fprintf(w, "  %-7s %6dKiB %-6s %12.1f %12.1f %12.3f %12.3f\n",
			p.Device, p.BlockKiB, dir, p.BaselineMBps, p.ProtectedMBps,
			p.Normalized, p.NormalizedLatency)
	}
}

// NetPoint is one Figure 5 measurement.
type NetPoint struct {
	Series        string // "tcp-up", "tcp-down", "udp-up", "udp-down", "ping"
	BaselineMBps  float64
	ProtectedMBps float64
	// OverheadPct is the bandwidth reduction (or latency increase for
	// ping), in percent.
	OverheadPct float64
}

// netRun pushes frames through PCNet for the given series and returns
// seconds per payload byte.
func netRun(t *Target, protect bool, series string, frames, frameSize int) (float64, error) {
	m, att := t.setup()
	if protect {
		spec, err := t.learn(att)
		if err != nil {
			return 0, err
		}
		sedspec.Protect(att, spec)
	}
	rng := simclock.NewRand(13)
	s := t.NewSession(sedspec.NewDriver(att), rng)
	if err := s.Prepare(); err != nil {
		return 0, err
	}
	_ = m

	up := series == "tcp-up" || series == "udp-up"
	tcp := series == "tcp-up" || series == "tcp-down"
	// Warm-up.
	if err := s.Transfer(up, frameSize); err != nil {
		return 0, err
	}

	start := time.Now()
	for i := 0; i < frames; i++ {
		if err := s.Transfer(up, frameSize); err != nil {
			return 0, fmt.Errorf("bench: net %s: %w", series, err)
		}
		// TCP carries reverse ack traffic every few segments.
		if tcp && i%4 == 3 {
			if err := s.Transfer(!up, 64); err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start).Seconds(), nil
}

// Figure5 measures PCNet TCP/UDP bandwidth in both directions and the ping
// round-trip latency, protected against baseline.
func Figure5(frames int) ([]NetPoint, error) {
	t := TargetByName("pcnet", true)
	var points []NetPoint
	const frameSize = 1500

	for _, series := range []string{"tcp-up", "tcp-down", "udp-up", "udp-down"} {
		base, err := netRun(t, false, series, frames, frameSize)
		if err != nil {
			return nil, err
		}
		prot, err := netRun(t, true, series, frames, frameSize)
		if err != nil {
			return nil, err
		}
		mb := float64(frames*frameSize) / (1 << 20)
		points = append(points, NetPoint{
			Series:        series,
			BaselineMBps:  mb / base,
			ProtectedMBps: mb / prot,
			OverheadPct:   (1 - base/prot) * 100, // bandwidth reduction
		})
	}

	// Ping: a small echo out and its reply back, 100 rounds.
	ping := func(protect bool) (float64, error) {
		_, att := t.setup()
		if protect {
			spec, err := t.learn(att)
			if err != nil {
				return 0, err
			}
			sedspec.Protect(att, spec)
		}
		rng := simclock.NewRand(17)
		s := t.NewSession(sedspec.NewDriver(att), rng)
		if err := s.Prepare(); err != nil {
			return 0, err
		}
		start := time.Now()
		const rounds = 100
		for i := 0; i < rounds; i++ {
			if err := s.Transfer(true, 64); err != nil { // echo request out
				return 0, err
			}
			if err := s.Transfer(false, 64); err != nil { // reply in
				return 0, err
			}
		}
		return time.Since(start).Seconds() / rounds, nil
	}
	baseRTT, err := ping(false)
	if err != nil {
		return nil, err
	}
	protRTT, err := ping(true)
	if err != nil {
		return nil, err
	}
	points = append(points, NetPoint{
		Series:        "ping",
		BaselineMBps:  baseRTT * 1e6, // microseconds per round trip
		ProtectedMBps: protRTT * 1e6,
		OverheadPct:   (protRTT - baseRTT) / baseRTT * 100,
	})
	return points, nil
}

// WriteFigure5 renders the network series.
func WriteFigure5(w io.Writer, points []NetPoint) {
	fmt.Fprintln(w, "Figure 5 — PCNet bandwidth and ping latency (protected vs baseline)")
	for _, p := range points {
		if p.Series == "ping" {
			fmt.Fprintf(w, "  %-9s baseline %8.1fµs  protected %8.1fµs  overhead %+.1f%%\n",
				p.Series, p.BaselineMBps, p.ProtectedMBps, p.OverheadPct)
			continue
		}
		fmt.Fprintf(w, "  %-9s baseline %8.1fMB/s protected %8.1fMB/s overhead %+.1f%%\n",
			p.Series, p.BaselineMBps, p.ProtectedMBps, p.OverheadPct)
	}
}
