package bench

import (
	"bytes"
	"testing"

	"sedspec/internal/core"
)

func TestBenchSpecBinaryRoundTrip(t *testing.T) {
	for _, tg := range Targets(true) {
		t.Run(tg.Name, func(t *testing.T) {
			_, att := tg.setup()
			spec, err := tg.learn(att)
			if err != nil {
				t.Fatal(err)
			}
			data, err := spec.EncodeBinary()
			if err != nil {
				t.Fatal(err)
			}
			back, err := core.DecodeBinary(att.Dev().Program(), data)
			if err != nil {
				t.Fatal(err)
			}
			var j1, j2 bytes.Buffer
			if err := spec.Save(&j1); err != nil {
				t.Fatal(err)
			}
			if err := back.Save(&j2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
				t.Error("JSON rendering changed across the binary round trip")
			}
		})
	}
}
