package bench_test

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"sedspec/internal/bench"
)

func TestThroughputScalesAcrossSessions(t *testing.T) {
	// One device, small iteration counts: the point is that the harness
	// runs, its invariants hold, and concurrency does not wreck per-op
	// cost. sedbench runs the full ladder over all five devices.
	tgt := bench.TargetByName("fdc", true)
	r, err := bench.NewCheckerReplay(tgt, 40)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{1, 4}
	rows, err := bench.Throughput(r, 5000, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(counts) {
		t.Fatalf("rows = %d, want %d", len(rows), len(counts))
	}
	for i, row := range rows {
		if row.Sessions != counts[i] || row.Device != "fdc" {
			t.Errorf("row %d mislabeled: %+v", i, row)
		}
		if row.CheckedIOs != uint64(counts[i])*5000 {
			t.Errorf("row %d checked %d I/Os, want %d", i, row.CheckedIOs, counts[i]*5000)
		}
		if row.CPUNsPerIO <= 0 || row.AggPerSec <= 0 {
			t.Errorf("row %d has empty measurement: %+v", i, row)
		}
		if row.AllocsPerOp > 0.01 {
			t.Errorf("row %d allocates %.4f/op in the check loop, want ~0", i, row.AllocsPerOp)
		}
	}
	if rows[0].ScalingX != 1 {
		t.Errorf("baseline scaling = %f, want 1", rows[0].ScalingX)
	}
	// Per-op CPU cost must not blow up under concurrency (the path is
	// lock-free); allow 2x for scheduler and cache noise on small runs.
	if rows[1].CPUNsPerIO > 2*rows[0].CPUNsPerIO {
		t.Errorf("4-session per-op cost %.0fns vs baseline %.0fns: contention on the shared engine",
			rows[1].CPUNsPerIO, rows[0].CPUNsPerIO)
	}

	e2e, err := bench.ThroughputE2E(tgt, r.Spec, 30, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(e2e) != len(counts) {
		t.Fatalf("e2e rows = %d, want %d", len(e2e), len(counts))
	}
	for i, row := range e2e {
		if row.CheckedIOs == 0 || row.AggPerSec <= 0 {
			t.Errorf("e2e row %d empty: %+v", i, row)
		}
	}

	var buf bytes.Buffer
	if err := bench.WriteThroughputJSON(&buf, rows, e2e); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Benchmark string `json:"benchmark"`
		HostCPUs  int    `json:"host_cpus"`
		Rows      []struct {
			Device string `json:"device"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("emitted JSON invalid: %v", err)
	}
	if out.Benchmark != "concurrent_throughput" || out.HostCPUs != runtime.GOMAXPROCS(0) {
		t.Errorf("JSON header wrong: %+v", out)
	}
	if len(out.Rows) != len(rows) {
		t.Errorf("JSON rows = %d, want %d", len(out.Rows), len(rows))
	}
}

func TestSessionCountsLadder(t *testing.T) {
	counts := bench.SessionCounts()
	if len(counts) == 0 || counts[0] != 1 {
		t.Fatalf("ladder must start at 1: %v", counts)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Fatalf("ladder not strictly increasing: %v", counts)
		}
	}
	seen := map[int]bool{}
	for _, n := range counts {
		seen[n] = true
	}
	for _, want := range []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)} {
		if !seen[want] {
			t.Errorf("ladder %v missing %d", counts, want)
		}
	}
}
