package bench_test

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"sedspec/internal/bench"
)

func TestThroughputScalesAcrossSessions(t *testing.T) {
	// One device, small iteration counts: the point is that the harness
	// runs, its invariants hold, and concurrency does not wreck per-op
	// cost. sedbench runs the full ladder over all five devices.
	tgt := bench.TargetByName("fdc", true)
	r, err := bench.NewCheckerReplay(tgt, 40)
	if err != nil {
		t.Fatal(err)
	}
	counts := []int{1, 4}
	rows, err := bench.Throughput(r, 5000, counts)
	if err != nil {
		t.Fatal(err)
	}
	// One row per (session count, delivery path): per-round first, then
	// batched.
	if len(rows) != 2*len(counts) {
		t.Fatalf("rows = %d, want %d", len(rows), 2*len(counts))
	}
	for i, row := range rows {
		wantN := counts[i%len(counts)]
		wantBatched := i >= len(counts)
		if row.Sessions != wantN || row.Device != "fdc" || row.Batched != wantBatched {
			t.Errorf("row %d mislabeled: %+v", i, row)
		}
		if row.Batched && row.BatchSize != bench.DefaultBatchSize {
			t.Errorf("row %d batch size = %d, want %d", i, row.BatchSize, bench.DefaultBatchSize)
		}
		if row.CheckedIOs != uint64(wantN)*5000 {
			t.Errorf("row %d checked %d I/Os, want %d", i, row.CheckedIOs, wantN*5000)
		}
		if row.CPUNsPerIO <= 0 || row.AggPerSec <= 0 {
			t.Errorf("row %d has empty measurement: %+v", i, row)
		}
		wantG := wantN
		if nc := runtime.NumCPU(); wantG > nc {
			wantG = nc
		}
		if row.GoMaxProcs != wantG {
			t.Errorf("row %d gomaxprocs = %d, want pinned %d", i, row.GoMaxProcs, wantG)
		}
	}
	for _, i := range []int{0, len(counts)} {
		if rows[i].ScalingX != 1 {
			t.Errorf("row %d baseline scaling = %f, want 1", i, rows[i].ScalingX)
		}
	}
	// Per-op CPU cost must not blow up under concurrency (the path is
	// lock-free); allow 2x for scheduler and cache noise on small runs.
	if rows[1].CPUNsPerIO > 2*rows[0].CPUNsPerIO {
		t.Errorf("4-session per-op cost %.0fns vs baseline %.0fns: contention on the shared engine",
			rows[1].CPUNsPerIO, rows[0].CPUNsPerIO)
	}

	e2e, err := bench.ThroughputE2E(tgt, r.Spec, 30, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(e2e) != len(counts) {
		t.Fatalf("e2e rows = %d, want %d", len(e2e), len(counts))
	}
	for i, row := range e2e {
		if row.CheckedIOs == 0 || row.AggPerSec <= 0 {
			t.Errorf("e2e row %d empty: %+v", i, row)
		}
	}

	var buf bytes.Buffer
	if err := bench.WriteThroughputJSON(&buf, rows, e2e); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Benchmark           string `json:"benchmark"`
		Version             int    `json:"version"`
		HostCPUs            int    `json:"host_cpus"`
		DegradedParallelism bool   `json:"degraded_parallelism"`
		Rows                []struct {
			Device     string `json:"device"`
			GoMaxProcs int    `json:"gomaxprocs"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("emitted JSON invalid: %v", err)
	}
	if out.Benchmark != "concurrent_throughput" || out.Version != 2 || out.HostCPUs != runtime.NumCPU() {
		t.Errorf("JSON header wrong: %+v", out)
	}
	if out.DegradedParallelism != bench.DegradedParallelism() {
		t.Errorf("degraded_parallelism = %v, want %v", out.DegradedParallelism, bench.DegradedParallelism())
	}
	if len(out.Rows) != len(rows) {
		t.Errorf("JSON rows = %d, want %d", len(out.Rows), len(rows))
	}
	for i, row := range out.Rows {
		if row.GoMaxProcs == 0 {
			t.Errorf("JSON row %d missing gomaxprocs", i)
		}
	}
}

func TestSessionCountsLadder(t *testing.T) {
	counts := bench.SessionCounts()
	if len(counts) == 0 || counts[0] != 1 {
		t.Fatalf("ladder must start at 1: %v", counts)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Fatalf("ladder not strictly increasing: %v", counts)
		}
	}
	seen := map[int]bool{}
	for _, n := range counts {
		seen[n] = true
	}
	for _, want := range []int{1, 2, 4, 8, runtime.NumCPU()} {
		if !seen[want] {
			t.Errorf("ladder %v missing %d", counts, want)
		}
	}
}
