package bench

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"sedspec/internal/checker"
)

// CoverageBenchRow is one device's coverage-counter overhead measurement:
// the sealed walker with ES-CFG coverage counters on (the default)
// against the same walker with WithCoverage(false), plus the instrumented
// walker's steady-state heap traffic — which must stay at zero, since the
// counters live in a preallocated per-generation arena.
type CoverageBenchRow struct {
	Device         string  `json:"device"`
	Requests       int     `json:"requests"` // captured stream length
	Iters          int     `json:"iters"`    // timed replay rounds per side
	OffNsPerOp     float64 `json:"off_ns_per_op"`
	OnNsPerOp      float64 `json:"on_ns_per_op"`
	OverheadPct    float64 `json:"overhead_pct"` // (on-off)/off
	OnAllocsPerOp  float64 `json:"on_allocs_per_op"`
	TrainedEdges   int     `json:"trained_edges"`
	CoveredAtEnd   int     `json:"covered_at_end"`  // edges with hits after the run
	RoundsProfiled uint64  `json:"rounds_profiled"` // profile rounds after the run
}

// CoverageOverhead captures a benign stream for the target and measures
// the per-I/O cost the coverage counters add to the sealed walker. Both
// checkers run the sealed engine and are warmed for a full cycle; iters
// rounds per side are then timed as interleaved off/on chunk pairs (same
// noise-pairing rationale as CheckerOverhead), and each side reports its
// fastest chunk — the minimum is the least-noisy estimate of the path's
// true cost, matching the overhead-guard test's methodology so the
// committed BENCH numbers and the CI gate measure the same thing.
func CoverageOverhead(t *Target, ops, iters int) (*CoverageBenchRow, error) {
	r, err := NewCheckerReplay(t, ops)
	if err != nil {
		return nil, err
	}
	chkOff := r.NewChecker(checker.WithCoverage(false))
	chkOn := r.NewChecker()
	for i := 0; i < len(r.Reqs); i++ {
		if err := r.Step(chkOff, i); err != nil {
			return nil, err
		}
		if err := r.Step(chkOn, i); err != nil {
			return nil, err
		}
	}

	if iters < 1 {
		iters = 1
	}
	chunk := iters / checkerBenchChunks
	if chunk < 1 {
		chunk = 1
	}
	var minOff, minOn time.Duration = -1, -1
	var onMallocs, timed uint64
	const passes = 3
	for pass := 0; pass < passes; pass++ {
		done := 0
		runtime.GC()
		for done < iters {
			n := chunk
			if iters-done < n {
				n = iters - done
			}
			off, _, err := r.timeChunk(chkOff, done, n)
			if err != nil {
				return nil, err
			}
			on, m, err := r.timeChunk(chkOn, done, n)
			if err != nil {
				return nil, err
			}
			if minOff < 0 || off/time.Duration(n) < minOff {
				minOff = off / time.Duration(n)
			}
			if minOn < 0 || on/time.Duration(n) < minOn {
				minOn = on / time.Duration(n)
			}
			onMallocs += m
			timed += uint64(n)
			done += n
		}
	}

	offOp := float64(minOff.Nanoseconds())
	onOp := float64(minOn.Nanoseconds())
	row := &CoverageBenchRow{
		Device:        t.Name,
		Requests:      len(r.Reqs),
		Iters:         iters,
		OffNsPerOp:    offOp,
		OnNsPerOp:     onOp,
		OverheadPct:   100 * (onOp - offOp) / offOp,
		OnAllocsPerOp: float64(onMallocs) / float64(timed),
	}
	if p := chkOn.CoverageProfile(); p != nil {
		row.TrainedEdges = len(p.Edges)
		row.RoundsProfiled = p.Rounds
		for _, e := range p.Edges {
			if e.Hits > 0 {
				row.CoveredAtEnd++
			}
		}
	}
	return row, nil
}

// WriteCoverageJSON emits the measurement rows as indented JSON
// (BENCH_coverage.json).
func WriteCoverageJSON(w io.Writer, rows []*CoverageBenchRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Benchmark string              `json:"benchmark"`
		Rows      []*CoverageBenchRow `json:"rows"`
	}{Benchmark: "coverage_per_io", Rows: rows})
}
