// Package bench regenerates every table and figure of the paper's
// evaluation (§VII): the device-state parameter selection (Table I), false
// positives over time (Table II), the detection/FPR/coverage matrix
// (Table III), storage throughput and latency under protection (Figures 3
// and 4), and network bandwidth and ping latency (Figure 5), plus the
// ablations called out in DESIGN.md.
package bench

import (
	"fmt"

	"sedspec"
	"sedspec/internal/devices/ehci"
	"sedspec/internal/devices/fdc"
	"sedspec/internal/devices/pcnet"
	"sedspec/internal/devices/scsi"
	"sedspec/internal/devices/sdhci"
	"sedspec/internal/machine"
	"sedspec/internal/simclock"
	"sedspec/internal/workload"
)

// Session is a live guest bound to one device: one benign operation, one
// rare (legitimate-but-untrained) operation, and a bulk transfer of n
// bytes for the performance figures.
type Session struct {
	Op       func() error
	Rare     func() error
	Transfer func(write bool, n int) error
	// Prepare runs device bring-up (executed once, before measurement).
	Prepare func() error
}

// Target describes one evaluated device.
type Target struct {
	Name    string
	Storage bool
	// RareWeight tunes the rare-command probability for Table II so FP
	// counts land in the paper's regime.
	RareWeight float64
	Build      func() (machine.Device, []machine.AttachOption)
	Train      sedspec.TrainFunc
	NewSession func(d *sedspec.Driver, rng *simclock.Rand) *Session
}

// Cfg selects training depth for the harness.
func trainCfg(light bool) workload.TrainConfig { return workload.TrainConfig{Light: light} }

// Targets returns the five evaluated devices.
func Targets(light bool) []*Target {
	cfg := trainCfg(light)
	return []*Target{
		{
			Name: "fdc", Storage: true, RareWeight: 1.0,
			Build: func() (machine.Device, []machine.AttachOption) {
				return fdc.New(fdc.Options{}), []machine.AttachOption{machine.WithPIO(0, fdc.PortCount)}
			},
			Train: func(d *sedspec.Driver) error { return workload.TrainFDC(d, cfg) },
			NewSession: func(d *sedspec.Driver, rng *simclock.Rand) *Session {
				g := fdc.NewGuest(d)
				return &Session{
					Prepare: func() error {
						if err := g.Reset(); err != nil {
							return err
						}
						return g.Specify()
					},
					Op:   func() error { return workload.FDCOp(g, rng) },
					Rare: func() error { return workload.FDCRareOp(g, rng) },
					Transfer: func(write bool, n int) error {
						sectors := n / fdc.SectorSize
						for sectors > 0 {
							span := sectors
							if span > 8 {
								span = 8
							}
							var err error
							if write {
								err = g.WriteSectors(0, 0, 1, byte(span))
							} else {
								err = g.ReadSectors(0, 0, 1, byte(span))
							}
							if err != nil {
								return err
							}
							sectors -= span
						}
						return nil
					},
				}
			},
		},
		{
			Name: "ehci", Storage: true, RareWeight: 1.2,
			Build: func() (machine.Device, []machine.AttachOption) {
				return ehci.New(ehci.Options{}), []machine.AttachOption{machine.WithMMIO(0, ehci.RegionSize)}
			},
			Train: func(d *sedspec.Driver) error { return workload.TrainEHCI(d, cfg) },
			NewSession: func(d *sedspec.Driver, rng *simclock.Rand) *Session {
				g := ehci.NewGuest(d)
				return &Session{
					Prepare: func() error { return g.NoDataRequest(ehci.ReqSetConfig, 1) },
					Op:      func() error { return workload.EHCIOp(g, rng) },
					Rare:    func() error { return workload.EHCIRareOp(g, rng) },
					Transfer: func(write bool, n int) error {
						for n > 0 {
							chunk := n
							if chunk > 3072 {
								chunk = 3072
							}
							var err error
							if write {
								err = g.ControlOut(ehci.ReqClearFeature, 0, make([]byte, chunk))
							} else {
								err = g.ControlIn(ehci.ReqGetDescriptor, 0x0200, uint16(chunk))
							}
							if err != nil {
								return err
							}
							n -= chunk
						}
						return nil
					},
				}
			},
		},
		{
			Name: "pcnet", Storage: false, RareWeight: 1.0,
			Build: func() (machine.Device, []machine.AttachOption) {
				return pcnet.New(pcnet.Options{}), []machine.AttachOption{machine.WithPIO(0, pcnet.PortCount)}
			},
			Train: func(d *sedspec.Driver) error { return workload.TrainPCNet(d, cfg) },
			NewSession: func(d *sedspec.Driver, rng *simclock.Rand) *Session {
				g := pcnet.NewGuest(d)
				return &Session{
					Prepare: func() error { g.RxLen = 4; return g.Setup(0) },
					Op:      func() error { return workload.PCNetOp(g, rng) },
					Rare:    func() error { return workload.PCNetRareOp(g, rng) },
					Transfer: func(write bool, n int) error {
						for n > 0 {
							chunk := n
							if chunk > 1500 {
								chunk = 1500
							}
							var err error
							if write {
								err = g.Transmit(make([]byte, chunk))
							} else {
								slot := uint16(rng.Intn(int(g.RxLen)))
								if err = g.ProvideRx(slot); err != nil {
									return err
								}
								err = g.InjectWireFrame(make([]byte, chunk))
							}
							if err != nil {
								return err
							}
							n -= chunk
						}
						return nil
					},
				}
			},
		},
		{
			Name: "sdhci", Storage: true, RareWeight: 1.5,
			Build: func() (machine.Device, []machine.AttachOption) {
				return sdhci.New(sdhci.Options{}), []machine.AttachOption{machine.WithMMIO(0, sdhci.RegionSize)}
			},
			Train: func(d *sedspec.Driver) error { return workload.TrainSDHCI(d, cfg) },
			NewSession: func(d *sedspec.Driver, rng *simclock.Rand) *Session {
				g := sdhci.NewGuest(d)
				return &Session{
					Prepare: func() error { return g.InitCard() },
					Op:      func() error { return workload.SDHCIOp(g, rng) },
					Rare:    func() error { return workload.SDHCIRareOp(g, rng) },
					Transfer: func(write bool, n int) error {
						blocks := n / 512
						for blocks > 0 {
							span := blocks
							if span > 8 {
								span = 8
							}
							if err := g.Transfer(write, 512, uint16(span)); err != nil {
								return err
							}
							blocks -= span
						}
						return nil
					},
				}
			},
		},
		{
			Name: "scsi", Storage: true, RareWeight: 0.8,
			Build: func() (machine.Device, []machine.AttachOption) {
				return scsi.New(scsi.Options{}), []machine.AttachOption{machine.WithPIO(0, scsi.PortCount)}
			},
			Train: func(d *sedspec.Driver) error { return workload.TrainSCSI(d, cfg) },
			NewSession: func(d *sedspec.Driver, rng *simclock.Rand) *Session {
				g := scsi.NewGuest(d)
				return &Session{
					Prepare: func() error { return g.TestUnitReady() },
					Op:      func() error { return workload.SCSIOp(g, rng) },
					Rare:    func() error { return workload.SCSIRareOp(g, rng) },
					Transfer: func(write bool, n int) error {
						blocks := n / 512
						for blocks > 0 {
							span := blocks
							if span > 16 {
								span = 16
							}
							var err error
							if write {
								err = g.Write10(0, byte(span))
							} else {
								err = g.Read10(0, byte(span))
							}
							if err != nil {
								return err
							}
							blocks -= span
						}
						return nil
					},
				}
			},
		},
	}
}

// TargetByName returns the named target, or nil.
func TargetByName(name string, light bool) *Target {
	for _, t := range Targets(light) {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// setup builds a machine and attaches the target's device.
func (t *Target) setup() (*machine.Machine, *machine.Attached) {
	m := machine.New(machine.WithMemory(1 << 20))
	dev, opts := t.Build()
	att := m.Attach(dev, opts...)
	return m, att
}

// learn builds the target's execution specification.
func (t *Target) learn(att *machine.Attached) (*sedspec.Spec, error) {
	spec, err := sedspec.Learn(att, t.Train)
	if err != nil {
		return nil, fmt.Errorf("bench: learn %s: %w", t.Name, err)
	}
	return spec, nil
}
