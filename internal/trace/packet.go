// Package trace is the software stand-in for Intel Processor Trace (IPT)
// used by SEDSpec's data-collection phase (paper §IV-A).
//
// The collector receives branch events from the interpreter and encodes
// them as IPT-style packets: PGE/PGD at trace enable/disable (I/O entry and
// exit), TNT bits for conditional branches (packed several to a packet, as
// hardware does), and TIP packets carrying the target of indirect
// transfers (switch dispatch, indirect calls, returns). The paper's three
// filters are reproduced: an address-range filter restricted to the
// device's code region, suppression of kernel-space control flow, and
// trace start/stop at the I/O boundary.
//
// The decoder reconstructs the executed control flow the way a real IPT
// decoder does: it walks the static program from the PGE address, consumes
// one TNT bit per conditional branch and one TIP per indirect transfer,
// and treats calls leaving the filtered region as opaque.
package trace

import "fmt"

// PacketKind enumerates the packet types the collector emits.
type PacketKind uint8

const (
	// PktPGE marks trace enable (Packet Generation Enable) with the IP at
	// which tracing began.
	PktPGE PacketKind = iota + 1
	// PktPGD marks trace disable.
	PktPGD
	// PktTNT carries up to 6 Taken/Not-taken bits for conditional
	// branches, oldest first.
	PktTNT
	// PktTIP carries the target IP of an indirect transfer. A target of
	// zero means the transfer left the traceable region.
	PktTIP
)

func (k PacketKind) String() string {
	switch k {
	case PktPGE:
		return "PGE"
	case PktPGD:
		return "PGD"
	case PktTNT:
		return "TNT"
	case PktTIP:
		return "TIP"
	default:
		return fmt.Sprintf("PacketKind(%d)", uint8(k))
	}
}

// tntCapacity is the number of branch bits a TNT packet holds. Hardware
// short TNT packets hold 6.
const tntCapacity = 6

// Packet is one trace packet.
type Packet struct {
	Kind PacketKind
	// Addr is the IP for PGE/PGD/TIP packets.
	Addr uint64
	// Bits holds TNT branch outcomes, oldest first (len <= tntCapacity).
	Bits []bool
}

func (p Packet) String() string {
	switch p.Kind {
	case PktTNT:
		s := make([]byte, len(p.Bits))
		for i, b := range p.Bits {
			if b {
				s[i] = 'T'
			} else {
				s[i] = 'N'
			}
		}
		return fmt.Sprintf("TNT[%s]", s)
	default:
		return fmt.Sprintf("%s(%#x)", p.Kind, p.Addr)
	}
}

// Stats counts collector activity, used by the filter ablation.
type Stats struct {
	// Packets is the number of packets emitted.
	Packets int
	// Events is the number of raw trace events received.
	Events int
	// FilteredRange counts events dropped by the address-range filter.
	FilteredRange int
	// FilteredKernel counts events dropped by the ring filter.
	FilteredKernel int
}
