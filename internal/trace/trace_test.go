package trace

import (
	"testing"

	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// buildTraced constructs a device exercising every packet-generating
// construct: a switch (TIP), a loop with a conditional branch (TNT), a
// direct call to a device handler, a direct call to a library helper
// (opaque), a kernel call (suppressed), and an indirect call through a
// function pointer (TIP).
func buildTraced(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("traced")
	cnt := b.Int("cnt", ir.W32)
	cb := b.Func("cb")

	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	fv := e.FuncValue("tick", "s->cb = tick")
	e.StoreFunc(cb, fv, "s->cb = tick")
	addr := e.IOAddr("addr = req->addr")
	e.Switch(addr, "switch (addr)", "out",
		ir.Case(0, "loop"),
		ir.Case(1, "callout"),
	)

	l := h.Block("loop")
	c := l.Load(cnt, "c = s->cnt")
	one := l.Const(1, "1")
	c2 := l.Arith(ir.ALUAdd, c, one, ir.W32, false, "c+1")
	l.Store(cnt, c2, "s->cnt = c+1")
	lim := l.Const(3, "3")
	l.Branch(c2, ir.RelLT, lim, ir.W32, false, "if (c < 3)", "loop", "out")

	co := h.Block("callout")
	co.Call("helper_dev", "helper_dev()")
	co.Call("helper_lib", "memcpy()")
	co.Call("helper_kern", "copy_from_user()")
	co.CallPtr(cb, "s->cb()")
	co.Jump("out", "goto out")

	h.Block("out").Exit().Halt("return")

	hd := b.Handler("helper_dev")
	hdb := hd.Block("body")
	z := hdb.Const(0, "0")
	hdb.Store(cnt, z, "s->cnt = 0")
	hdb.Return("return")

	hl := b.Handler("helper_lib", ir.Library())
	hlb := hl.Block("body")
	x := hlb.Const(5, "x=5")
	y := hlb.Const(5, "y=5")
	hlb.Branch(x, ir.RelEQ, y, ir.W8, false, "if (x==y)", "t", "f")
	hl.Block("t").Return("return")
	hl.Block("f").Return("return")

	hk := b.Handler("helper_kern", ir.Kernel())
	hkb := hk.Block("body")
	kx := hkb.Const(5, "x=5")
	ky := hkb.Const(5, "y=5")
	hkb.Branch(kx, ir.RelEQ, ky, ir.W8, false, "if (x==y)", "t", "f")
	hk.Block("t").Return("return")
	hk.Block("f").Return("return")

	tick := b.Handler("tick")
	tb := tick.Block("body")
	tb.IRQRaise("raise irq")
	tb.Return("return")

	b.Dispatch("dispatch")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog
}

func runTraced(t testing.TB, prog *ir.Program, port uint64) []Packet {
	t.Helper()
	st := interp.NewState(prog)
	in := interp.New(prog, st, nil)
	col := NewCollector(DeviceConfig(prog))
	in.SetTracer(col)
	res := in.Dispatch(interp.NewWrite(interp.SpacePIO, port, nil))
	if res.Fault != nil {
		t.Fatalf("fault: %v", res.Fault)
	}
	return col.Packets()
}

func TestCollectorPacketShape(t *testing.T) {
	prog := buildTraced(t)
	pkts := runTraced(t, prog, 0) // loop path: switch TIP + 3 TNT bits + halt TIP

	if pkts[0].Kind != PktPGE {
		t.Fatalf("first packet = %v, want PGE", pkts[0])
	}
	if pkts[len(pkts)-1].Kind != PktPGD {
		t.Fatalf("last packet = %v, want PGD", pkts[len(pkts)-1])
	}
	var tips, tntBits int
	for _, p := range pkts {
		switch p.Kind {
		case PktTIP:
			tips++
		case PktTNT:
			tntBits += len(p.Bits)
		}
	}
	// One switch TIP + one halt TIP; loop runs 3 times: T,T,N.
	if tips != 2 {
		t.Errorf("TIP count = %d, want 2", tips)
	}
	if tntBits != 3 {
		t.Errorf("TNT bits = %d, want 3", tntBits)
	}
}

func TestCollectorFiltersLibraryAndKernel(t *testing.T) {
	prog := buildTraced(t)
	st := interp.NewState(prog)
	in := interp.New(prog, st, nil)
	col := NewCollector(DeviceConfig(prog))
	in.SetTracer(col)
	res := in.Dispatch(interp.NewWrite(interp.SpacePIO, 1, nil))
	if res.Fault != nil {
		t.Fatalf("fault: %v", res.Fault)
	}
	stats := col.Stats()
	if stats.FilteredKernel == 0 {
		t.Error("kernel events should have been filtered")
	}
	if stats.FilteredRange == 0 {
		t.Error("library events should have been range-filtered")
	}
	// No packet may carry a library or kernel source branch: all TIP
	// targets must be device-range or zero, all packets device-derived.
	for _, p := range col.Packets() {
		if p.Kind == PktTIP && p.Addr != 0 && (p.Addr < ir.DeviceBase || p.Addr >= ir.LibraryBase) {
			t.Errorf("TIP target %#x outside device region", p.Addr)
		}
	}
}

func TestCollectorUnfilteredSeesEverything(t *testing.T) {
	prog := buildTraced(t)
	st := interp.NewState(prog)
	in := interp.New(prog, st, nil)
	filtered := NewCollector(DeviceConfig(prog))
	in.SetTracer(filtered)
	if res := in.Dispatch(interp.NewWrite(interp.SpacePIO, 1, nil)); res.Fault != nil {
		t.Fatal(res.Fault)
	}

	st2 := interp.NewState(prog)
	in2 := interp.New(prog, st2, nil)
	open := NewCollector(Config{})
	in2.SetTracer(open)
	if res := in2.Dispatch(interp.NewWrite(interp.SpacePIO, 1, nil)); res.Fault != nil {
		t.Fatal(res.Fault)
	}

	if open.Stats().Packets <= filtered.Stats().Packets {
		t.Errorf("unfiltered packets (%d) should exceed filtered (%d)",
			open.Stats().Packets, filtered.Stats().Packets)
	}
}

func TestDecodeLoopPath(t *testing.T) {
	prog := buildTraced(t)
	pkts := runTraced(t, prog, 0)
	runs, err := Decode(prog, pkts)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(runs))
	}
	run := runs[0]
	entry := ir.BlockRef{Handler: 0, Block: 0}
	if run.Start != entry {
		t.Errorf("Start = %v, want entry", run.Start)
	}
	// Expected edges: switch(entry->loop), taken, taken, not-taken, halt.
	wantKinds := []EdgeKind{EdgeSwitch, EdgeTaken, EdgeTaken, EdgeNotTaken, EdgeHalt}
	if len(run.Steps) != len(wantKinds) {
		t.Fatalf("steps = %d, want %d: %+v", len(run.Steps), len(wantKinds), run.Steps)
	}
	for i, want := range wantKinds {
		if run.Steps[i].Kind != want {
			t.Errorf("step %d kind = %v, want %v", i, run.Steps[i].Kind, want)
		}
	}
}

func TestDecodeCallPath(t *testing.T) {
	prog := buildTraced(t)
	pkts := runTraced(t, prog, 1)
	runs, err := Decode(prog, pkts)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	run := runs[0]
	// Expected: switch(entry->callout), call(helper_dev), return,
	// opaque(lib), opaque(kern), icall(tick), return, jump(out), halt.
	wantKinds := []EdgeKind{
		EdgeSwitch, EdgeCall, EdgeReturn, EdgeOpaque, EdgeOpaque,
		EdgeIndirectCall, EdgeReturn, EdgeJump, EdgeHalt,
	}
	if len(run.Steps) != len(wantKinds) {
		t.Fatalf("steps = %d, want %d: %+v", len(run.Steps), len(wantKinds), run.Steps)
	}
	for i, want := range wantKinds {
		if run.Steps[i].Kind != want {
			t.Errorf("step %d kind = %v, want %v", i, run.Steps[i].Kind, want)
		}
	}
	// The indirect call's target must be the tick handler's entry.
	tickEntry := ir.BlockRef{Handler: prog.HandlerIndex("tick"), Block: 0}
	if run.Steps[5].Next != tickEntry {
		t.Errorf("icall target = %v, want %v", run.Steps[5].Next, tickEntry)
	}
}

func TestDecodeMultipleRuns(t *testing.T) {
	prog := buildTraced(t)
	st := interp.NewState(prog)
	in := interp.New(prog, st, nil)
	col := NewCollector(DeviceConfig(prog))
	in.SetTracer(col)
	for i := 0; i < 5; i++ {
		if res := in.Dispatch(interp.NewWrite(interp.SpacePIO, uint64(i%2), nil)); res.Fault != nil {
			t.Fatal(res.Fault)
		}
	}
	runs, err := Decode(prog, col.Packets())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(runs) != 5 {
		t.Errorf("runs = %d, want 5", len(runs))
	}
}

func TestDecodeErrors(t *testing.T) {
	prog := buildTraced(t)
	good := runTraced(t, prog, 0)

	tests := []struct {
		name string
		mut  func([]Packet) []Packet
	}{
		{"missing PGE", func(p []Packet) []Packet { return p[1:] }},
		{"missing PGD", func(p []Packet) []Packet { return p[:len(p)-1] }},
		{"truncated", func(p []Packet) []Packet { return p[:2] }},
		{"bogus TIP target", func(p []Packet) []Packet {
			out := append([]Packet(nil), p...)
			for i := range out {
				if out[i].Kind == PktTIP && out[i].Addr != 0 {
					out[i].Addr = 0xdeadbeef
					break
				}
			}
			return out
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(prog, tt.mut(good)); err == nil {
				t.Error("Decode succeeded, want error")
			}
		})
	}
}

func TestTNTPacking(t *testing.T) {
	// A long loop should pack TNT bits 6 per packet.
	b := ir.NewBuilder("longloop")
	cnt := b.Int("cnt", ir.W32)
	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	e.Jump("loop", "loop:")
	l := h.Block("loop")
	c := l.Load(cnt, "c")
	one := l.Const(1, "1")
	c2 := l.Arith(ir.ALUAdd, c, one, ir.W32, false, "c+1")
	l.Store(cnt, c2, "cnt")
	lim := l.Const(20, "20")
	l.Branch(c2, ir.RelLT, lim, ir.W32, false, "if (c<20)", "loop", "out")
	h.Block("out").Exit().Halt("return")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	st := interp.NewState(prog)
	in := interp.New(prog, st, nil)
	col := NewCollector(DeviceConfig(prog))
	in.SetTracer(col)
	if res := in.Dispatch(interp.NewWrite(interp.SpacePIO, 0, nil)); res.Fault != nil {
		t.Fatal(res.Fault)
	}
	var tntPkts, bits int
	for _, p := range col.Packets() {
		if p.Kind == PktTNT {
			tntPkts++
			bits += len(p.Bits)
			if len(p.Bits) > 6 {
				t.Errorf("TNT packet with %d bits", len(p.Bits))
			}
		}
	}
	if bits != 20 {
		t.Errorf("bits = %d, want 20", bits)
	}
	if tntPkts != 4 { // 6+6+6+2
		t.Errorf("TNT packets = %d, want 4", tntPkts)
	}
	// And the decode must reproduce 19 taken + 1 not-taken.
	runs, err := Decode(prog, col.Packets())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	var taken, notTaken int
	for _, s := range runs[0].Steps {
		switch s.Kind {
		case EdgeTaken:
			taken++
		case EdgeNotTaken:
			notTaken++
		}
	}
	if taken != 19 || notTaken != 1 {
		t.Errorf("taken/not = %d/%d, want 19/1", taken, notTaken)
	}
}

func TestCollectorReset(t *testing.T) {
	prog := buildTraced(t)
	col := NewCollector(DeviceConfig(prog))
	col.TraceStart(ir.DeviceBase)
	col.TraceEnd(ir.DeviceBase)
	if len(col.Packets()) == 0 {
		t.Fatal("no packets")
	}
	col.Reset()
	if len(col.Packets()) != 0 || col.Stats().Packets != 0 {
		t.Error("Reset should clear packets and stats")
	}
}
