package trace

import (
	"fmt"

	"sedspec/internal/ir"
)

// EdgeKind classifies a traversed control-flow edge.
type EdgeKind uint8

const (
	// EdgeJump is an unconditional jump.
	EdgeJump EdgeKind = iota + 1
	// EdgeTaken is a conditional branch's taken arm.
	EdgeTaken
	// EdgeNotTaken is a conditional branch's fall-through arm.
	EdgeNotTaken
	// EdgeSwitch is a switch-table dispatch (indirect).
	EdgeSwitch
	// EdgeCall is a direct call into a traced handler.
	EdgeCall
	// EdgeIndirectCall is a call through a function pointer (indirect).
	EdgeIndirectCall
	// EdgeReturn is a return to the caller.
	EdgeReturn
	// EdgeHalt ends the I/O round.
	EdgeHalt
	// EdgeOpaque is a call that left the traced region; execution resumes
	// after the call site with no visibility into the callee.
	EdgeOpaque
)

var edgeNames = map[EdgeKind]string{
	EdgeJump: "jump", EdgeTaken: "taken", EdgeNotTaken: "not-taken",
	EdgeSwitch: "switch", EdgeCall: "call", EdgeIndirectCall: "icall",
	EdgeReturn: "return", EdgeHalt: "halt", EdgeOpaque: "opaque",
}

func (k EdgeKind) String() string {
	if s, ok := edgeNames[k]; ok {
		return s
	}
	return fmt.Sprintf("EdgeKind(%d)", uint8(k))
}

// Indirect reports whether the edge came from an indirect transfer (TIP).
func (k EdgeKind) Indirect() bool {
	return k == EdgeSwitch || k == EdgeIndirectCall || k == EdgeReturn
}

// Step is one traversed edge in a decoded run.
type Step struct {
	Block   ir.BlockRef
	Kind    EdgeKind
	Next    ir.BlockRef
	HasNext bool
}

// Run is the decoded control flow of one I/O interaction (PGE..PGD).
type Run struct {
	Start ir.BlockRef
	Steps []Step
}

// DecodeError reports a packet/program mismatch at a packet offset.
type DecodeError struct {
	Offset int
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("trace: decode error at packet %d: %s", e.Offset, e.Reason)
}

// Decode reconstructs the executed device-region control flow from a packet
// stream, walking the static program exactly as an IPT decoder walks the
// binary: one TNT bit per conditional branch, one TIP per indirect
// transfer, calls out of the traced region treated as opaque.
func Decode(p *ir.Program, packets []Packet) ([]Run, error) {
	d := &decoder{prog: p, packets: packets}
	var runs []Run
	for d.pos < len(d.packets) {
		pk := d.packets[d.pos]
		if pk.Kind != PktPGE {
			return nil, d.errf("expected PGE, got %s", pk)
		}
		d.pos++
		run, err := d.decodeRun(pk.Addr)
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

type decoder struct {
	prog    *ir.Program
	packets []Packet
	pos     int
	// tntBits holds bits from the TNT packet being consumed.
	tntBits []bool
}

func (d *decoder) errf(format string, args ...any) error {
	return &DecodeError{Offset: d.pos, Reason: fmt.Sprintf(format, args...)}
}

// deviceRange reports whether addr lies in the device code region.
func (d *decoder) deviceRange(addr uint64) bool {
	return addr >= ir.DeviceBase && addr < d.prog.DeviceCodeEnd
}

// nextTNT consumes one branch bit.
func (d *decoder) nextTNT() (bool, error) {
	for len(d.tntBits) == 0 {
		if d.pos >= len(d.packets) {
			return false, d.errf("packet stream exhausted awaiting TNT")
		}
		pk := d.packets[d.pos]
		if pk.Kind != PktTNT {
			return false, d.errf("expected TNT, got %s", pk)
		}
		d.tntBits = pk.Bits
		d.pos++
	}
	b := d.tntBits[0]
	d.tntBits = d.tntBits[1:]
	return b, nil
}

// nextTIP consumes one TIP packet. Pending TNT bits indicate a desync.
func (d *decoder) nextTIP() (uint64, error) {
	if len(d.tntBits) != 0 {
		return 0, d.errf("pending TNT bits when TIP expected")
	}
	if d.pos >= len(d.packets) {
		return 0, d.errf("packet stream exhausted awaiting TIP")
	}
	pk := d.packets[d.pos]
	if pk.Kind != PktTIP {
		return 0, d.errf("expected TIP, got %s", pk)
	}
	d.pos++
	return pk.Addr, nil
}

type decodeFrame struct {
	ref ir.BlockRef
	op  int
}

func (d *decoder) decodeRun(startAddr uint64) (Run, error) {
	start, ok := d.prog.BlockAt(startAddr)
	if !ok {
		return Run{}, d.errf("PGE address %#x resolves to no block", startAddr)
	}
	run := Run{Start: start}
	frames := []decodeFrame{{ref: start}}

	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		b := d.prog.Block(f.ref)
		h := &d.prog.Handlers[f.ref.Handler]

		advanced, err := d.walkOps(&run, &frames, f, b)
		if err != nil {
			return Run{}, err
		}
		if advanced {
			continue // descended into a callee
		}

		done, err := d.walkTerm(&run, &frames, f, b, h)
		if err != nil {
			return Run{}, err
		}
		if done {
			break
		}
	}

	// The run must close with PGD (TNT buffer already flushed by the
	// collector before PGD).
	if len(d.tntBits) != 0 {
		d.tntBits = nil
		return Run{}, d.errf("unconsumed TNT bits at end of run")
	}
	if d.pos >= len(d.packets) || d.packets[d.pos].Kind != PktPGD {
		return Run{}, d.errf("expected PGD at end of run")
	}
	d.pos++
	return run, nil
}

// walkOps scans the current block's ops from the frame's op cursor,
// handling call sites. It reports whether the walker descended into a
// callee (the caller frame's cursor has been advanced).
func (d *decoder) walkOps(run *Run, frames *[]decodeFrame, f *decodeFrame, b *ir.Block) (bool, error) {
	for i := f.op; i < len(b.Ops); i++ {
		op := &b.Ops[i]
		switch op.Code {
		case ir.OpCall:
			callee := &d.prog.Handlers[op.Handler]
			calleeAddr := callee.Blocks[0].Addr
			if !d.deviceRange(calleeAddr) {
				run.Steps = append(run.Steps, Step{Block: f.ref, Kind: EdgeOpaque})
				continue
			}
			f.op = i + 1
			next := ir.BlockRef{Handler: op.Handler, Block: 0}
			run.Steps = append(run.Steps, Step{Block: f.ref, Kind: EdgeCall, Next: next, HasNext: true})
			*frames = append(*frames, decodeFrame{ref: next})
			return true, nil
		case ir.OpCallPtr:
			target, err := d.nextTIP()
			if err != nil {
				return false, err
			}
			if target == 0 || !d.deviceRange(target) {
				run.Steps = append(run.Steps, Step{Block: f.ref, Kind: EdgeOpaque})
				continue
			}
			ref, ok := d.prog.BlockAt(target)
			if !ok {
				return false, d.errf("TIP %#x resolves to no block", target)
			}
			f.op = i + 1
			run.Steps = append(run.Steps, Step{Block: f.ref, Kind: EdgeIndirectCall, Next: ref, HasNext: true})
			*frames = append(*frames, decodeFrame{ref: ref})
			return true, nil
		}
	}
	return false, nil
}

// walkTerm resolves the block terminator. It reports whether the run is
// complete.
func (d *decoder) walkTerm(run *Run, frames *[]decodeFrame, f *decodeFrame, b *ir.Block, h *ir.Handler) (bool, error) {
	t := &b.Term
	inHandler := func(blockIdx int) ir.BlockRef {
		return ir.BlockRef{Handler: f.ref.Handler, Block: blockIdx}
	}
	switch t.Kind {
	case ir.TermJump:
		next := inHandler(t.Target)
		run.Steps = append(run.Steps, Step{Block: f.ref, Kind: EdgeJump, Next: next, HasNext: true})
		f.ref, f.op = next, 0
	case ir.TermBranch:
		taken, err := d.nextTNT()
		if err != nil {
			return false, err
		}
		kind, tgt := EdgeNotTaken, t.NotTaken
		if taken {
			kind, tgt = EdgeTaken, t.Taken
		}
		next := inHandler(tgt)
		run.Steps = append(run.Steps, Step{Block: f.ref, Kind: kind, Next: next, HasNext: true})
		f.ref, f.op = next, 0
	case ir.TermSwitch:
		target, err := d.nextTIP()
		if err != nil {
			return false, err
		}
		ref, ok := d.prog.BlockAt(target)
		if !ok || ref.Handler != f.ref.Handler {
			return false, d.errf("switch TIP %#x resolves to no block in handler %s", target, h.Name)
		}
		run.Steps = append(run.Steps, Step{Block: f.ref, Kind: EdgeSwitch, Next: ref, HasNext: true})
		f.ref, f.op = ref, 0
	case ir.TermReturn:
		target, err := d.nextTIP()
		if err != nil {
			return false, err
		}
		*frames = (*frames)[:len(*frames)-1]
		if len(*frames) == 0 {
			if target != 0 {
				return false, d.errf("top-level return TIP %#x, want 0", target)
			}
			run.Steps = append(run.Steps, Step{Block: f.ref, Kind: EdgeReturn})
			return true, nil
		}
		caller := &(*frames)[len(*frames)-1]
		callerBlock := d.prog.Block(caller.ref)
		if want := callerBlock.OpAddr(caller.op); target != want {
			return false, d.errf("return TIP %#x, want resume at %#x", target, want)
		}
		run.Steps = append(run.Steps, Step{Block: f.ref, Kind: EdgeReturn, Next: caller.ref, HasNext: true})
	case ir.TermHalt:
		target, err := d.nextTIP()
		if err != nil {
			return false, err
		}
		if target != 0 {
			return false, d.errf("halt TIP %#x, want 0", target)
		}
		run.Steps = append(run.Steps, Step{Block: f.ref, Kind: EdgeHalt})
		*frames = (*frames)[:0]
		return true, nil
	default:
		return false, d.errf("block %s/%s has invalid terminator", h.Name, b.Label)
	}
	return false, nil
}
