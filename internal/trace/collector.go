package trace

import (
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// Config selects the collector's filters, mirroring the IPT configuration
// the paper's IPT module programs (paper §IV-A).
type Config struct {
	// FilterStart/FilterEnd restrict collection to branch sources in
	// [FilterStart, FilterEnd) — the emulated device's code range. Zero
	// values disable the range filter.
	FilterStart uint64
	FilterEnd   uint64
	// SuppressKernel drops events whose source is kernel-space code.
	SuppressKernel bool
}

// DeviceConfig returns the standard configuration for a device program:
// range-filtered to the device's code and kernel-suppressed.
func DeviceConfig(p *ir.Program) Config {
	return Config{
		FilterStart:    ir.DeviceBase,
		FilterEnd:      p.DeviceCodeEnd,
		SuppressKernel: true,
	}
}

// Collector buffers trace packets. It implements interp.Tracer and is
// installed on a device's interpreter during the data-collection phase.
type Collector struct {
	cfg     Config
	packets []Packet
	tntBuf  []bool
	stats   Stats
}

var _ interp.Tracer = (*Collector)(nil)

// NewCollector returns a collector with the given filter configuration.
func NewCollector(cfg Config) *Collector {
	return &Collector{cfg: cfg, tntBuf: make([]bool, 0, tntCapacity)}
}

// Packets returns the collected packet stream.
func (c *Collector) Packets() []Packet { return c.packets }

// Stats returns collection statistics.
func (c *Collector) Stats() Stats { return c.stats }

// Reset clears the packet buffer and statistics.
func (c *Collector) Reset() {
	c.packets = c.packets[:0]
	c.tntBuf = c.tntBuf[:0]
	c.stats = Stats{}
}

// pass applies the configured filters to a branch source address.
func (c *Collector) pass(from uint64) bool {
	c.stats.Events++
	if c.cfg.SuppressKernel && from >= ir.KernelBase {
		c.stats.FilteredKernel++
		return false
	}
	if c.cfg.FilterEnd != 0 && (from < c.cfg.FilterStart || from >= c.cfg.FilterEnd) {
		c.stats.FilteredRange++
		return false
	}
	return true
}

func (c *Collector) emit(p Packet) {
	c.packets = append(c.packets, p)
	c.stats.Packets++
}

func (c *Collector) flushTNT() {
	if len(c.tntBuf) == 0 {
		return
	}
	bits := make([]bool, len(c.tntBuf))
	copy(bits, c.tntBuf)
	c.emit(Packet{Kind: PktTNT, Bits: bits})
	c.tntBuf = c.tntBuf[:0]
}

// TraceStart implements interp.Tracer.
func (c *Collector) TraceStart(addr uint64) {
	c.emit(Packet{Kind: PktPGE, Addr: addr})
}

// TraceEnd implements interp.Tracer.
func (c *Collector) TraceEnd(addr uint64) {
	c.flushTNT()
	c.emit(Packet{Kind: PktPGD, Addr: addr})
}

// TraceBranch implements interp.Tracer.
func (c *Collector) TraceBranch(from uint64, taken bool) {
	if !c.pass(from) {
		return
	}
	c.tntBuf = append(c.tntBuf, taken)
	if len(c.tntBuf) == tntCapacity {
		c.flushTNT()
	}
}

// TraceIndirect implements interp.Tracer.
func (c *Collector) TraceIndirect(from, target uint64) {
	if !c.pass(from) {
		return
	}
	// TNT bits must stay ordered relative to TIPs for the decoder.
	c.flushTNT()
	c.emit(Packet{Kind: PktTIP, Addr: target})
}
