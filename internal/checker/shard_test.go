package checker_test

import (
	"sync"
	"testing"

	"sedspec/internal/checker"
	"sedspec/internal/interp"
)

// cloneStream deep-copies a request stream (requests carry mutable
// cursors, so concurrent sessions must not share one).
func cloneStream(reqs []*interp.Request) []*interp.Request {
	out := make([]*interp.Request, len(reqs))
	for i, req := range reqs {
		cl := &interp.Request{Space: req.Space, Addr: req.Addr, Write: req.Write}
		if len(req.Data) > 0 {
			cl.Data = append([]byte(nil), req.Data...)
		}
		out[i] = cl
	}
	return out
}

// TestShardedFoldCloseVsRead is the retired-bank fold correctness
// argument under sharding: with sessions spread across every shard, some
// closing (folding their counters into their shard's retired bank) while
// other goroutines concurrently read Shared.Stats and CoverageSnapshots,
// every aggregate read must see each session's counts exactly once —
// quiesced sessions' stats live either in their live bank or in the
// shard's retired bank, so any loss or double-fold shows up as a wrong
// total. Run under -race this also proves the fold takes no unlocked
// shortcuts.
func TestShardedFoldCloseVsRead(t *testing.T) {
	spec, reqs, start, att := benignStream(t)

	// Serial baseline: one session's worth of counters and coverage.
	base := checker.NewShared(spec, checker.WithEnv(att))
	bc := base.NewSession(start)
	for _, req := range cloneStream(reqs) {
		if err := bc.PreIO(nil, req); err != nil {
			t.Fatalf("baseline: %v", err)
		}
	}
	bc.Close()
	baseline := base.Stats()
	baseCov := base.CoverageSnapshots()[1]
	if baseline.Rounds == 0 || baseCov == nil {
		t.Fatalf("degenerate baseline: %+v cov=%v", baseline, baseCov)
	}

	const n = 16
	sh := checker.NewShared(spec, checker.WithEnv(att))
	chks := make([]*checker.Checker, n)
	for i := range chks {
		chks[i] = sh.NewSession(start)
	}
	// Drive every session to completion concurrently; even sessions use
	// the batched path, odd the per-round path — identical counters.
	var drive sync.WaitGroup
	for i, chk := range chks {
		drive.Add(1)
		go func(i int, chk *checker.Checker) {
			defer drive.Done()
			stream := cloneStream(reqs)
			if i%2 == 0 {
				for j := 0; j < len(stream); j += 5 {
					end := j + 5
					if end > len(stream) {
						end = len(stream)
					}
					for _, v := range chk.PreIOBatch(stream[j:end]) {
						if v.Err != nil {
							t.Errorf("session %d: %v", i, v.Err)
						}
					}
				}
			} else {
				for _, req := range stream {
					if err := chk.PreIO(nil, req); err != nil {
						t.Errorf("session %d: %v", i, err)
					}
				}
			}
		}(i, chk)
	}
	drive.Wait()

	want := checker.Stats{}
	for i := 0; i < n; i++ {
		want = statsSum(want, baseline)
	}
	if got := sh.Stats(); got != want {
		t.Fatalf("pre-close aggregate:\n  got:  %+v\n  want: %+v", got, want)
	}
	wantBlocks := uint64(0)
	for _, v := range baseCov.Blocks {
		wantBlocks += v
	}
	wantBlocks *= n

	// Close half the sessions from several goroutines while readers
	// hammer the aggregates. Every Stats read during the churn must
	// equal the full total exactly; coverage reads are a lower bound
	// while live sessions hold unpublished pending counts, and exact
	// after every fold.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := sh.Stats(); got != want {
					t.Errorf("mid-close aggregate:\n  got:  %+v\n  want: %+v", got, want)
					return
				}
				snap := sh.CoverageSnapshots()[1]
				if snap == nil {
					t.Error("mid-close coverage snapshot missing generation 1")
					return
				}
				var blocks uint64
				for _, v := range snap.Blocks {
					blocks += v
				}
				if blocks > wantBlocks {
					t.Errorf("mid-close coverage over-counts: %d > %d", blocks, wantBlocks)
					return
				}
			}
		}()
	}
	var closers sync.WaitGroup
	for i := 0; i < n; i += 2 {
		closers.Add(1)
		go func(chk *checker.Checker) {
			defer closers.Done()
			chk.Close()
		}(chks[i])
	}
	closers.Wait()
	close(stop)
	readers.Wait()

	if got := sh.Stats(); got != want {
		t.Errorf("post-close aggregate:\n  got:  %+v\n  want: %+v", got, want)
	}
	if got := sh.Sessions(); got != n/2 {
		t.Errorf("open sessions = %d, want %d", got, n/2)
	}
	for i := 1; i < n; i += 2 {
		chks[i].Close()
	}
	if got := sh.Stats(); got != want {
		t.Errorf("final aggregate:\n  got:  %+v\n  want: %+v", got, want)
	}
	snap := sh.CoverageSnapshots()[1]
	var blocks uint64
	for _, v := range snap.Blocks {
		blocks += v
	}
	if blocks != wantBlocks {
		t.Errorf("final coverage blocks = %d, want %d (lost or double-folded)", blocks, wantBlocks)
	}
}

func statsSum(a, b checker.Stats) checker.Stats {
	return checker.Stats{
		Rounds:             a.Rounds + b.Rounds,
		ParamAnomalies:     a.ParamAnomalies + b.ParamAnomalies,
		IndirectAnomalies:  a.IndirectAnomalies + b.IndirectAnomalies,
		CondAnomalies:      a.CondAnomalies + b.CondAnomalies,
		Blocked:            a.Blocked + b.Blocked,
		Warnings:           a.Warnings + b.Warnings,
		Resyncs:            a.Resyncs + b.Resyncs,
		StepsSimulated:     a.StepsSimulated + b.StepsSimulated,
		SyncPointsResolved: a.SyncPointsResolved + b.SyncPointsResolved,
	}
}
