package checker_test

import (
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/obs"
	"sedspec/internal/obs/stream"
)

// Telemetry integration: the checker's rare paths publish typed events
// into the hub WithStream selects — session lifecycle, blocked
// anomalies with their frozen context, enhancement audits, and spec
// hot-swaps — and clean rounds publish nothing.

func kindsOf(evs []stream.Event) []stream.Kind {
	out := make([]stream.Kind, len(evs))
	for i := range evs {
		out[i] = evs[i].Kind
	}
	return out
}

// TestSerialCheckerStream: attach, blocked anomaly (with forensic
// context), and detach on a serial checker, published to a caller-owned
// hub. A benign run in between publishes nothing.
func TestSerialCheckerStream(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	hub := stream.NewHub()
	sub := hub.Subscribe()
	defer sub.Close()

	chk := sedspec.Protect(att, spec,
		checker.WithObs(obs.NewRegistry()),
		sedspec.WithStream(hub))
	d := sedspec.NewDriver(att)

	ev, ok := sub.TryRecv()
	if !ok || ev.Kind != stream.KindAttach || ev.Device != "testdev" {
		t.Fatalf("attach event = %+v, %v", ev, ok)
	}

	if err := benign(d); err != nil {
		t.Fatal(err)
	}
	if ev, ok := sub.TryRecv(); ok {
		t.Fatalf("clean rounds published %+v", ev)
	}

	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err == nil {
		t.Fatal("off-spec command not blocked")
	}
	ev, ok = sub.TryRecv()
	if !ok || ev.Kind != stream.KindAnomaly {
		t.Fatalf("anomaly event = %+v, %v", ev, ok)
	}
	a := ev.Anomaly
	if a == nil || a.Strategy == "" || a.Detail == "" || !a.Write {
		t.Fatalf("anomaly payload %+v", a)
	}
	if a.Ctx == nil || len(a.Ctx.Events) == 0 {
		t.Fatal("anomaly event lost its forensic context")
	}
	if final := a.Ctx.Events[len(a.Ctx.Events)-1]; final.Verdict != obs.VerdictBlocked {
		t.Errorf("context final verdict = %v", final.Verdict)
	}

	rounds := chk.Stats().Rounds
	chk.Close()
	chk.Close() // idempotent: one detach, not two
	ev, ok = sub.TryRecv()
	if !ok || ev.Kind != stream.KindDetach {
		t.Fatalf("detach event = %+v, %v", ev, ok)
	}
	if ev.Detach == nil || ev.Detach.Rounds != rounds || ev.Detach.Blocked == 0 {
		t.Errorf("detach counters %+v, want rounds %d", ev.Detach, rounds)
	}
	if ev, ok := sub.TryRecv(); ok {
		t.Fatalf("extra event after double close: %+v", ev)
	}
	if got := hub.Published(stream.KindDetach); got != 1 {
		t.Errorf("detach published %d times", got)
	}
}

// TestSharedStream: sessions inherit the engine's hub, audits flow in
// enhancement mode, and a hot-swap publishes an engine-level KindSwap.
func TestSharedStream(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	hub := stream.NewHub()
	sub := hub.Subscribe()
	defer sub.Close()

	sh := checker.NewShared(spec,
		checker.WithObs(obs.NewRegistry()),
		checker.WithMode(checker.ModeEnhancement),
		checker.WithStream(hub))
	chk := sedspec.ProtectShared(att, sh, checker.WithHalt(func() {}))
	d := sedspec.NewDriver(att)

	// The engine auto-assigns the session ID (a plain attachment carries
	// -1), so attach must stamp a resolved, non-negative identity.
	ev, ok := sub.TryRecv()
	if !ok || ev.Kind != stream.KindAttach || ev.Session < 0 {
		t.Fatalf("attach = %+v, %v", ev, ok)
	}

	// An off-spec command raises a non-parameter anomaly, which warns
	// (not blocks) in enhancement mode.
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
		t.Fatal(err)
	}
	ev, ok = sub.TryRecv()
	if !ok || ev.Kind != stream.KindAudit {
		t.Fatalf("audit = %+v, %v", ev, ok)
	}
	if ev.Audit == nil || ev.Audit.Strategy == "" {
		t.Errorf("audit payload %+v", ev.Audit)
	}

	if err := sh.Swap(spec); err != nil {
		t.Fatal(err)
	}
	ev, ok = sub.TryRecv()
	if !ok || ev.Kind != stream.KindSwap {
		t.Fatalf("swap = %+v, %v", ev, ok)
	}
	if ev.Session != -1 || ev.Swap == nil || ev.Swap.FromGen != 1 || ev.Swap.ToGen != 2 {
		t.Errorf("swap payload %+v session %d", ev.Swap, ev.Session)
	}

	chk.Close()
	if ev, ok := sub.TryRecv(); !ok || ev.Kind != stream.KindDetach {
		t.Fatalf("detach = %+v, %v (seen so far: %v)", ev, ok, kindsOf(hub.Recent(stream.MaskAll, 0)))
	}
}

// TestWithStreamNilDisables: WithStream(nil) keeps a checker entirely
// off every hub, including the process default.
func TestWithStreamNilDisables(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	before := stream.Default().Seq()
	chk := sedspec.Protect(att, spec,
		checker.WithObs(obs.NewRegistry()),
		sedspec.WithStream(nil))
	if err := benign(sedspec.NewDriver(att)); err != nil {
		t.Fatal(err)
	}
	chk.Close()
	if after := stream.Default().Seq(); after != before {
		t.Errorf("disabled checker advanced the default hub %d -> %d", before, after)
	}
}
