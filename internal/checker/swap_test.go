package checker_test

import (
	"runtime"
	"sync"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/fuzzer"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/obs"
)

// Hot-swap integration: compatibility gating, and the RCU publication
// path raced against the lock-free check path.

func TestSwapRejectsIncompatibleSpecs(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	sh := checker.NewShared(spec)

	// Wrong device name.
	bad := *spec
	bad.Device = "other"
	if err := sh.Swap(&bad); err == nil {
		t.Error("swap accepted a spec for a different device")
	}

	// Same device name, different program geometry: the patched testdev
	// variant adds a bounds-check block to the data path.
	m := machine.New()
	pdev := testdev.New(testdev.Options{FixVenom: true})
	patt := m.Attach(pdev, machine.WithPIO(testdev.PortCmd, testdev.PortCount))
	pspec, err := sedspec.Learn(patt, benign)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Swap(pspec); err == nil {
		t.Error("swap accepted a structurally incompatible program")
	}
	if sh.Generation() != 1 || sh.SwapCount() != 0 {
		t.Errorf("rejected swaps must not advance the generation: gen=%d swaps=%d",
			sh.Generation(), sh.SwapCount())
	}

	// An equivalent spec learned against a fresh build of the same program
	// is compatible (the structural path, not the pointer fast path).
	m2 := machine.New()
	dev2 := testdev.New(testdev.Options{})
	att2 := m2.Attach(dev2, machine.WithPIO(testdev.PortCmd, testdev.PortCount))
	spec2, err := sedspec.Learn(att2, benign)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Swap(spec2); err != nil {
		t.Errorf("swap rejected an equivalent spec: %v", err)
	}
	if sh.Generation() != 2 {
		t.Errorf("generation after swap = %d, want 2", sh.Generation())
	}
}

// TestSwapUnderHammer races continuous hot-swaps against four sessions of
// raw random I/O and a metrics-snapshot reader. Under -race this is the
// data-race-freedom proof for the swap path; after quiescing, accounting
// must balance exactly as if no swap had happened.
func TestSwapUnderHammer(t *testing.T) {
	_, att := setup(t)
	specA := learn(t, att)
	m2 := machine.New()
	dev2 := testdev.New(testdev.Options{})
	att2 := m2.Attach(dev2, machine.WithPIO(testdev.PortCmd, testdev.PortCount))
	specB, err := sedspec.Learn(att2, benign)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	sh := checker.NewShared(specA,
		checker.WithObs(reg),
		checker.WithMode(checker.ModeEnhancement))

	const n = 4
	p := machine.NewPool(n, testdevBuild)
	chks := make([]*checker.Checker, n)
	for i, s := range p.Sessions() {
		chks[i] = sedspec.ProtectShared(s.Attached(), sh, checker.WithHalt(func() {}))
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	var swapErr error
	wg.Add(2)
	go func() { // swapper
		defer wg.Done()
		specs := [2]*sedspec.Spec{specB, specA}
		for i := 0; ; i++ {
			if err := sh.Swap(specs[i%2]); err != nil {
				swapErr = err
				return
			}
			runtime.Gosched()
			select {
			case <-done:
				if i+1 >= 100 {
					return
				}
			default:
			}
		}
	}()
	go func() { // metrics reader
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				snap := reg.Snapshot().Device(specA.Device)
				if snap.Rounds < snap.Anomalies() {
					t.Errorf("mid-swap snapshot inconsistent: %d rounds < %d anomalies",
						snap.Rounds, snap.Anomalies())
					return
				}
			}
		}
	}()
	if err := p.Run(func(s *machine.Session) error {
		fuzzer.Hammer(s.Attached(), interp.SpacePIO, testdev.PortCmd, testdev.PortCount,
			uint64(1+s.ID()), 2000)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(done)
	wg.Wait()
	if swapErr != nil {
		t.Fatalf("Swap failed mid-hammer: %v", swapErr)
	}
	if sh.SwapCount() < 100 {
		t.Errorf("swaps = %d, want >= 100", sh.SwapCount())
	}

	// Exact accounting across the swaps: registry == sum of sessions plus
	// the engine's swap count on the device row.
	want := chks[0].Snapshot()
	for _, c := range chks[1:] {
		want = want.Merge(c.Snapshot())
	}
	want.Swaps = sh.SwapCount()
	if got := reg.Snapshot().Device(specA.Device); got != want {
		t.Errorf("registry snapshot != sessions + swaps:\n  got:  %+v\n  want: %+v", got, want)
	}
	if sh.Stats().Rounds != want.Rounds {
		t.Errorf("engine rounds %d != recorder rounds %d", sh.Stats().Rounds, want.Rounds)
	}
}
