package checker

import (
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/obs"
)

// Verdict is the per-request outcome of a batched check; it aliases the
// machine package's type so the checker satisfies machine.BatchInterposer.
type Verdict = machine.Verdict

var _ machine.BatchInterposer = (*Checker)(nil)

// PreIOBatch checks a whole burst of requests — a descriptor-ring sweep,
// an EHCI schedule walk, a SCSI CDB push — in one call, amortizing the
// per-round fixed costs across the batch: one frame-arena reset, one
// DMA-journal epoch, one coverage counter tick, and one obs/metrics
// publication per batch instead of per round. Per-op anomaly step
// totals and per-I/O verdicts are exactly those of the equivalent PreIO
// sequence.
//
// The batch simulates ahead of the device: request k+1 is checked
// before the device has consumed request k. That is sound because the
// shadow's DMA writeback journal stays live across the batch (a clean
// round's simulated writebacks equal the ones the device will perform),
// and it short-circuits the moment a round stops tracking the device —
// on the first anomaly (blocked or warned) and on the first round that
// set needResync (a warning or a disabled-strategy stop round). The
// unchecked tail is left with Checked=false for the dispatcher to
// re-present after the device catches up.
//
// Like PreIO, a shared-engine batch is bracketed by one RCU epoch
// marker, so a hot-swap takes effect at a batch boundary.
func (c *Checker) PreIOBatch(reqs []*interp.Request) []Verdict {
	if cap(c.verdicts) < len(reqs) {
		c.verdicts = make([]Verdict, len(reqs))
	}
	vs := c.verdicts[:len(reqs)]
	for i := range vs {
		vs[i] = Verdict{}
	}
	if len(reqs) == 0 {
		return vs
	}
	if c.shared != nil {
		c.epoch.Add(1)
		if v := c.shared.cur.Load(); v != c.ver {
			c.adopt(v)
		}
	}
	// One arena reset and one DMA-journal epoch for the whole batch. The
	// engines skip their per-round resets while c.batching is set; the
	// journal accumulates each clean round's writebacks so later rounds
	// observe the guest memory the device will have produced.
	c.frames = c.frames[:0]
	c.tempArena = c.tempArena[:0]
	c.flagArena = c.flagArena[:0]
	c.dmaLog = c.dmaLog[:0]
	if len(c.dmaShadow) > 0 {
		clear(c.dmaShadow)
	}
	c.batching = true
	c.batchSteps = 0
	round0 := c.stats.rounds.Load()
	checked := 0
	pub := uint64(0)
	// Clean rounds do not materialize individual ring events: their
	// histogram counts go through the recorder's deferred table and the
	// batch appends one KindBatch summary covering the clean prefix —
	// before any anomaly event, so the ring stays in round order. The
	// clock is frozen during check-ahead, so one timestamp read serves
	// the whole batch.
	var tick int64
	if c.rec != nil && c.clock != nil {
		tick = c.clock.Now().Microseconds()
	}
	okRounds, okSteps := uint64(0), uint64(0)
	emitSummary := func() {
		if okRounds == 0 {
			return
		}
		ev := c.rec.Append(tick)
		ev.Round = round0 + 1
		ev.Addr = reqs[0].Addr
		ev.Steps = uint32(okSteps)
		ev.Handler = uint16(c.entryRef.Handler)
		ev.Block = uint16(c.entryRef.Block)
		ev.Len = uint16(okRounds)
		ev.Kind = obs.KindBatch
		ev.SpecGen = uint16(c.specGen)
		ev.Strategy = obs.StrategyNone
		ev.Verdict = obs.VerdictOK
		okRounds, okSteps = 0, 0
	}
	// flushCounters publishes the batch's deferred counters: rounds up
	// to and including round k, and the accumulated step total. Called
	// before anomaly accounting so live readers never observe a warning
	// or block ahead of its round.
	flushCounters := func(k int) {
		if n := uint64(k) - pub; n > 0 {
			c.stats.rounds.Add(n)
			pub = uint64(k)
		}
		if c.batchSteps != 0 {
			c.stats.stepsSimulated.Add(c.batchSteps)
			c.batchSteps = 0
		}
	}
	for k, req := range reqs {
		round := round0 + uint64(k) + 1
		req.Rewind()
		anomaly := c.simulate(req)
		req.Rewind()
		checked = k + 1
		if anomaly == nil {
			// Clean round: the verdict slot is pre-zeroed, only Checked
			// needs writing. Latency is zero by construction — the clock
			// does not advance while the batch checks ahead of the device.
			if c.rec != nil {
				c.rec.CommitOKDeferred(0, uint32(c.roundSteps))
				okRounds++
				okSteps += uint64(c.roundSteps)
			}
			vs[k].Checked = true
			if c.needResync {
				break
			}
			continue
		}
		flushCounters(checked)
		if c.rec != nil {
			emitSummary()
		}
		err := c.finishRound(req, round, anomaly)
		vs[k] = Verdict{Checked: true, Blocked: err != nil, Err: err}
		if err != nil && c.haltFn != nil {
			// finishRound defers the halt in batch mode; the dispatcher
			// runs it after delivering the clean prefix to the device.
			vs[k].Halt = c.haltFn
		}
		break
	}
	flushCounters(checked)
	if c.rec != nil {
		emitSummary()
	}
	c.batching = false
	if c.cov != nil {
		c.cov.RoundEndN(checked)
	}
	if c.shared != nil {
		c.epoch.Add(1)
	}
	return vs
}
