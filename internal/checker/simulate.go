package checker

import (
	"encoding/binary"

	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// The simulation has two walkers over one shared DSOD-op engine:
//
//   - simulateSealed (sealed_sim.go) runs against the dense SealedSpec —
//     the production hot path, allocation-free in steady state;
//   - simulateRef (below) runs against the mutable Spec's maps — the
//     pre-seal baseline, retained behind WithReferenceSimulation for
//     differential testing and overhead accounting.
//
// Each walker owns a loop specialized to its op layout (execDSOD over the
// Spec's DSODOp slices, execDSODSealed over the flattened SealedOp arena)
// but both delegate every check to the shared parameter-check helpers
// below, and the differential test in the repository root pins the two
// engines to byte-identical anomaly streams.

// simulate walks the ES-CFG for one I/O request against the shadow device
// state, returning the first blocking-relevant anomaly, or nil. Anomalies
// of disabled strategies are not raised; the simulation then behaves like
// the device would (corrupting the shadow arena on unchecked overflows),
// so a later enabled strategy can still catch the consequence — exactly
// how the paper's per-strategy case studies work.
func (c *Checker) simulate(req *interp.Request) *Anomaly {
	if c.tprog != nil {
		return c.simulateThreaded(req)
	}
	if c.sealed != nil {
		return c.simulateSealed(req)
	}
	return c.simulateRef(req)
}

// simulateRef is the reference walker over the unsealed Spec.
func (c *Checker) simulateRef(req *interp.Request) *Anomaly {
	c.frames = c.frames[:0]
	c.push(c.spec.Entry, c.entryTemps)
	steps := 0
	// The DMA shadow map is the reference engine's writeback journal; in
	// a batch it persists as the batch's guest-memory overlay.
	if !c.batching && len(c.dmaShadow) > 0 {
		clear(c.dmaShadow)
	}
	a := c.walkRef(req, &steps)
	// Mirrors simulateSealed: the step count reaches the round's event
	// regardless of verdict, the aggregate only on clean rounds.
	c.roundSteps = steps
	if a == nil {
		if c.batching {
			c.batchSteps += uint64(steps)
		} else {
			c.stats.stepsSimulated.Add(uint64(steps))
		}
	}
	return a
}

func (c *Checker) walkRef(req *interp.Request, stepsp *int) *Anomaly {
	steps := *stepsp
	defer func() { *stepsp = steps }()
	for len(c.frames) > 0 {
		f := &c.frames[len(c.frames)-1]
		es := c.spec.Block(f.block)
		if es == nil {
			// Dangling successor: a path the spec cannot follow. The zero
			// BlockRef marks "no block" in the report.
			return tagEdge(c.condOrStop(ir.BlockRef{}, ir.SourceRef{}, "dangling ES successor"), "successor", 0)
		}

		descended, anomaly := c.execDSOD(f, es.DSOD, es.Ref, req, &steps)
		if anomaly != nil {
			return anomaly
		}
		if descended {
			continue
		}
		if steps > c.budget {
			return c.condOrStop(es.Ref, ir.SourceRef{}, "simulation budget exceeded (possible emulation loop)")
		}

		steps++ // the block transition itself
		done, anomaly := c.transitionRef(f, es)
		if anomaly != nil {
			return anomaly
		}
		if done {
			break
		}
	}
	return nil
}

// push opens a frame for the ES block with the given temp-bank size. The
// callers resolve numTemps from their engine's structures (the sealed
// per-handler array, or Program().Handlers as the pre-seal code did).
//
// The sealed engine carves the banks out of the flat arenas (bump
// allocation plus memclr; the pop in transitionSealed trims them back);
// the reference engine keeps the pre-seal per-depth slice-of-slices and
// element-loop zeroing.
func (c *Checker) push(block, numTemps int) {
	if c.sealed != nil {
		off := len(c.tempArena)
		end := off + numTemps
		if end > cap(c.tempArena) {
			ta := make([]uint64, end, 2*end)
			copy(ta, c.tempArena)
			c.tempArena = ta
			fa := make([]interp.Flags, end, 2*end)
			copy(fa, c.flagArena)
			c.flagArena = fa
		} else {
			c.tempArena = c.tempArena[:end]
			c.flagArena = c.flagArena[:end]
		}
		ts := c.tempArena[off:end:end]
		fs := c.flagArena[off:end:end]
		if !c.noClear {
			clear(ts)
			clear(fs)
		}
		c.frames = append(c.frames, simFrame{block: block, temps: ts, flags: fs, off: off})
		return
	}

	depth := len(c.frames)
	for len(c.temps) <= depth {
		c.temps = append(c.temps, nil)
		c.flags = append(c.flags, nil)
	}
	if cap(c.temps[depth]) < numTemps {
		c.temps[depth] = make([]uint64, numTemps)
		c.flags[depth] = make([]interp.Flags, numTemps)
	}
	ts := c.temps[depth][:numTemps]
	fs := c.flags[depth][:numTemps]
	// Pre-seal zeroing, element by element, kept for the baseline.
	for i := range ts {
		ts[i] = 0
		fs[i] = interp.Flags{}
	}
	c.frames = append(c.frames, simFrame{block: block, temps: ts, flags: fs})
}

// calleeEntry resolves a handler's entry ES block for direct and indirect
// calls.
func (c *Checker) calleeEntry(handler int) int {
	if c.sealed != nil {
		return c.sealed.HandlerEntry(handler)
	}
	return c.spec.BlockFor(ir.BlockRef{Handler: handler, Block: 0})
}

// paramField reports whether the field is a selected device-state
// parameter.
func (c *Checker) paramField(field int) bool {
	if c.sealed != nil {
		return c.sealed.ParamField(field)
	}
	return c.spec.Params.Contains(field)
}

// legitimateTarget consults the learned indirect-jump target sets.
func (c *Checker) legitimateTarget(field int, target uint64) bool {
	if c.sealed != nil {
		return c.sealed.LegitimateTarget(field, target)
	}
	return c.spec.LegitimateTarget(field, target)
}

// condOrStop raises a conditional-jump anomaly if the strategy is enabled;
// otherwise it silently stops the simulation (the spec cannot follow the
// path) and schedules a shadow resync.
func (c *Checker) condOrStop(ref ir.BlockRef, src ir.SourceRef, format string, args ...any) *Anomaly {
	if c.enabled[StrategyConditionalJump] {
		return c.anomaly(StrategyConditionalJump, ref, src, format, args...)
	}
	c.frames = c.frames[:0]
	c.needResync = true
	return nil
}

// execDSOD runs the block's retained ops from the frame cursor in the
// reference engine (the sealed twin is execDSODSealed in sealed_sim.go).
// It reports whether the walker descended into a callee.
func (c *Checker) execDSOD(f *simFrame, dsod []core.DSODOp, ref ir.BlockRef, req *interp.Request, steps *int) (bool, *Anomaly) {
	for i := f.op; i < len(dsod); i++ {
		*steps++
		d := &dsod[i]
		op := d.Op
		switch op.Code {
		case ir.OpConst:
			f.temps[op.Dst] = op.Imm
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpLoad:
			f.temps[op.Dst] = c.shadow.Int(op.Field)
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpLoadFunc:
			f.temps[op.Dst] = c.shadow.FuncPtr(op.Field)
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpArith:
			v, fl, divZero := interp.ALUExec(op.ALU, f.temps[op.A], f.temps[op.B], op.Width, op.Signed)
			if divZero {
				if c.enabled[StrategyParameter] {
					return false, c.anomaly(StrategyParameter, ref, op.Src0, "division by zero")
				}
				c.frames = c.frames[:0]
				c.needResync = true
				return false, nil
			}
			f.temps[op.Dst] = v
			f.flags[op.Dst] = fl
		case ir.OpStore:
			if a := c.checkIntStore(ref, op, f.flags); a != nil {
				return false, a
			}
			c.shadow.SetInt(op.Field, f.temps[op.Src])
		case ir.OpStoreFunc:
			c.shadow.SetFuncPtr(op.Field, f.temps[op.Src])
		case ir.OpBufLoad:
			v, a := c.bufAccess(ref, op, d.ParamIndexed, f.temps[op.Idx], 0, 0, false)
			if a != nil {
				return false, a
			}
			f.temps[op.Dst] = v
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpBufStore:
			if _, a := c.bufAccess(ref, op, d.ParamIndexed, f.temps[op.Idx], 0, byte(f.temps[op.Src]), true); a != nil {
				return false, a
			}
		case ir.OpIOToBuf:
			if a := c.checkCopyRange(ref, op, d.ParamIndexed, f.temps); a != nil {
				return false, a
			}
			req.Skip(int(f.temps[op.B] & 0xFFFF_FFFF))
		case ir.OpDMAToBuf:
			// Inbound DMA is performed against the shadow buffer (a
			// read-only peek at guest memory before the device runs):
			// command blocks and descriptors arriving by DMA feed
			// control-flow decisions, so the shadow must hold the real
			// content — and unchecked overflows must corrupt the shadow
			// the way they corrupt the device.
			if a := c.checkCopyRange(ref, op, d.ParamIndexed, f.temps); a != nil {
				return false, a
			}
			if a := c.dmaToShadow(ref, op, d.ParamIndexed, f.temps); a != nil {
				return false, a
			}
			if len(c.frames) == 0 {
				return false, nil // simulation stopped mid-copy
			}
		case ir.OpDMAFromBuf:
			// Outbound DMA is guest-visible: bounds-check only, never
			// performed. This asymmetry is the reduction that keeps the
			// checker cheap on read-heavy workloads.
			if a := c.checkCopyRange(ref, op, d.ParamIndexed, f.temps); a != nil {
				return false, a
			}
		case ir.OpDMARead:
			// Pre-seal implementation, preserved for faithful overhead
			// accounting: the stack buffer escapes through the Env
			// interface (one heap allocation per DMA-read op) and the
			// writeback overlay probes the journal unconditionally. The
			// sealed twin uses the checker's scratch buffer and skips the
			// overlay when the journal is empty.
			var buf [8]byte
			n := op.Width.Bytes()
			addr := f.temps[op.A]
			if err := c.env.DMARead(addr, buf[:n]); err != nil {
				if c.enabled[StrategyParameter] {
					return false, c.anomaly(StrategyParameter, ref, op.Src0, "DMA read out of guest memory: %v", err)
				}
				c.frames = c.frames[:0]
				c.needResync = true
				return false, nil
			}
			// Overlay this round's suppressed writebacks.
			for i := 0; i < n; i++ {
				if v, ok := c.dmaShadow[addr+uint64(i)]; ok {
					buf[i] = v
				}
			}
			f.temps[op.Dst] = binary.LittleEndian.Uint64(buf[:])
			if n < 8 {
				f.temps[op.Dst] &= op.Width.Mask()
			}
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpDMAWrite:
			// Suppressed guest write: journal it for this round's reads.
			if c.dmaShadow == nil {
				c.dmaShadow = make(map[uint64]byte)
			}
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], f.temps[op.Src])
			for i := 0; i < op.Width.Bytes(); i++ {
				c.dmaShadow[f.temps[op.A]+uint64(i)] = buf[i]
			}
		case ir.OpIOIn:
			f.temps[op.Dst] = req.Consume(op.Width.Bytes())
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpIOAddr:
			f.temps[op.Dst] = req.Addr
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpIOLen:
			f.temps[op.Dst] = uint64(req.Remaining())
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpIOIsWrite:
			if req.Write {
				f.temps[op.Dst] = 1
			} else {
				f.temps[op.Dst] = 0
			}
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpEnvRead:
			// Sync point: synchronize the non-derivable value with the
			// device environment (paper §V-D).
			f.temps[op.Dst] = c.env.ReadEnv(ir.EnvKind(op.Imm))
			f.flags[op.Dst] = interp.Flags{}
			c.stats.syncPointsResolved.Add(1)
		case ir.OpCall:
			callee := c.calleeEntry(op.Handler)
			if callee == core.NoBlock {
				continue // opaque: library or unobserved callee
			}
			f.op = i + 1
			c.push(callee, c.prog.Handlers[op.Handler].NumTemps)
			return true, nil
		case ir.OpCallPtr:
			target := c.shadow.FuncPtr(op.Field)
			if c.enabled[StrategyIndirectJump] && !c.legitimateTarget(op.Field, target) {
				return false, tagEdge(c.anomaly(StrategyIndirectJump, ref, op.Src0,
					"indirect jump via %q to unauthorized target %#x",
					c.prog.Fields[op.Field].Name, target), "indirect", target)
			}
			if target >= uint64(len(c.prog.Handlers)) {
				// Unchecked corrupted pointer: the device would crash.
				c.frames = c.frames[:0]
				c.needResync = true
				return false, nil
			}
			callee := c.calleeEntry(int(target))
			if callee == core.NoBlock {
				continue // opaque target
			}
			f.op = i + 1
			c.push(callee, c.prog.Handlers[target].NumTemps)
			return true, nil
		}
	}
	return false, nil
}

// checkIntStore applies the integer-overflow half of the parameter check:
// storing a value whose defining arithmetic overflowed for the parameter's
// signedness, or that exceeds the field's representable range, is an
// anomaly (paper §VI-A, UBSan-style type metadata plus flag bits).
func (c *Checker) checkIntStore(ref ir.BlockRef, op *ir.Op, flags []interp.Flags) *Anomaly {
	if !c.enabled[StrategyParameter] || !c.paramField(op.Field) {
		return nil
	}
	fld := &c.prog.Fields[op.Field]
	if flags[op.Src].OverflowFor(fld.Signed) {
		kind := "unsigned"
		if fld.Signed {
			kind = "signed"
		}
		return c.anomaly(StrategyParameter, ref, op.Src0,
			"%s integer overflow storing into %q", kind, fld.Name)
	}
	return nil
}

// bufAccess applies the buffer-overflow half of the parameter check —
// only when the access is indexed by a device-state parameter, per the
// paper — and otherwise mirrors the device's C semantics on the shadow
// arena, so downstream strategies see the corruption.
func (c *Checker) bufAccess(ref ir.BlockRef, op *ir.Op, paramIndexed bool, rawIdx uint64, delta int64, v byte, write bool) (uint64, *Anomaly) {
	fld := &c.prog.Fields[op.Field]
	var idx int64
	if op.Signed {
		idx = op.Width.SignExtend(rawIdx)
	} else {
		idx = int64(rawIdx & op.Width.Mask())
	}
	idx += delta
	off := int64(fld.Offset) + idx

	inField := idx >= 0 && idx < int64(fld.Size)
	if !inField {
		if c.enabled[StrategyParameter] && paramIndexed {
			return 0, c.anomaly(StrategyParameter, ref, op.Src0,
				"buffer overflow: %s[%d] outside [0,%d)", fld.Name, idx, fld.Size)
		}
		if off < 0 || off >= int64(c.prog.ArenaSize) {
			// The device would fault past the arena; stop simulating.
			c.frames = c.frames[:0]
			c.needResync = true
			return 0, nil
		}
	}
	arena := c.shadow.Bytes()
	if write {
		arena[off] = v
		return 0, nil
	}
	return uint64(arena[off]), nil
}

// dmaToShadow copies guest memory into the shadow buffer with the
// device's C semantics (neighbour corruption inside the arena, stop at the
// arena edge).
func (c *Checker) dmaToShadow(ref ir.BlockRef, op *ir.Op, paramIndexed bool, temps []uint64) *Anomaly {
	n := int(temps[op.B] & 0xFFFF_FFFF)
	addr := temps[op.A]

	// Fast path: the whole span is inside the buffer — one bulk read into
	// the shadow, mirroring the device's memcpy.
	fld := &c.prog.Fields[op.Field]
	var sidx int64
	if op.Signed {
		sidx = op.Width.SignExtend(temps[op.Idx])
	} else {
		sidx = int64(temps[op.Idx] & op.Width.Mask())
	}
	if sidx >= 0 && n >= 0 && sidx+int64(n) <= int64(fld.Size) {
		off := fld.Offset + int(sidx)
		if err := c.env.DMARead(addr, c.shadow.Bytes()[off:off+n]); err != nil {
			if c.enabled[StrategyParameter] && paramIndexed {
				return c.anomaly(StrategyParameter, ref, op.Src0, "DMA source out of guest memory: %v", err)
			}
			c.frames = c.frames[:0]
			c.needResync = true
		}
		return nil
	}

	var chunk [256]byte
	for copied := 0; copied < n; {
		cl := len(chunk)
		if rem := n - copied; rem < cl {
			cl = rem
		}
		if err := c.env.DMARead(addr+uint64(copied), chunk[:cl]); err != nil {
			if c.enabled[StrategyParameter] && paramIndexed {
				return c.anomaly(StrategyParameter, ref, op.Src0, "DMA source out of guest memory: %v", err)
			}
			c.frames = c.frames[:0]
			c.needResync = true
			return nil
		}
		for i := 0; i < cl; i++ {
			if _, a := c.bufAccess(ref, op, paramIndexed, temps[op.Idx], int64(copied+i), chunk[i], true); a != nil {
				return a
			}
			if len(c.frames) == 0 {
				return nil // stopped: shadow copy escaped the arena
			}
		}
		copied += cl
	}
	return nil
}

// checkCopyRange bounds-checks a bulk copy's buffer range (either
// direction) against the buffer's size — again only when the range derives
// from device-state parameters.
func (c *Checker) checkCopyRange(ref ir.BlockRef, op *ir.Op, paramIndexed bool, temps []uint64) *Anomaly {
	if !c.enabled[StrategyParameter] || !paramIndexed {
		return nil
	}
	fld := &c.prog.Fields[op.Field]
	n := int64(temps[op.B] & 0xFFFF_FFFF)
	var idx int64
	if op.Signed {
		idx = op.Width.SignExtend(temps[op.Idx])
	} else {
		idx = int64(temps[op.Idx] & op.Width.Mask())
	}
	if idx < 0 || n < 0 || idx+n > int64(fld.Size) {
		return c.anomaly(StrategyParameter, ref, op.Src0,
			"out-of-bounds read: %s[%d..%d) outside [0,%d)", fld.Name, idx, idx+n, fld.Size)
	}
	return nil
}

// transitionRef applies the block's NBTD (or unconditional successor) in
// the reference engine, running the conditional-jump check and the command
// access control.
func (c *Checker) transitionRef(f *simFrame, es *core.ESBlock) (bool, *Anomaly) {
	leavingCmdEnd := es.Kind == ir.KindCmdEnd

	next := core.NoBlock
	switch {
	case es.NBTD == nil:
		switch {
		case es.Halts:
			c.frames = c.frames[:0]
			return true, nil
		case es.Returns:
			c.frames = c.frames[:len(c.frames)-1]
			if leavingCmdEnd {
				c.cmdActive = false
			}
			return len(c.frames) == 0, nil
		default:
			next = es.Next
			if next == core.NoBlock {
				return true, tagEdge(c.condOrStop(es.Ref, ir.SourceRef{}, "successor outside specification"), "successor", 0)
			}
		}
	case es.NBTD.Kind == ir.TermBranch:
		t := es.NBTD.Term
		taken := t.Rel.Eval(f.temps[t.A], f.temps[t.B], t.Width, t.Signed)
		seen, tgt := es.NBTD.NotTakenSeen, es.NBTD.NotTakenNext
		if taken {
			seen, tgt = es.NBTD.TakenSeen, es.NBTD.TakenNext
		}
		if !seen || tgt == core.NoBlock {
			arm := "not-taken"
			if taken {
				arm = "taken"
			}
			return true, tagEdge(c.condOrStop(es.Ref, t.Src0, "untraversed %s branch", arm), "branch-"+arm, 0)
		}
		next = tgt
	case es.NBTD.Kind == ir.TermSwitch:
		t := es.NBTD.Term
		sel := f.temps[t.A]
		tgt, ok := es.NBTD.CaseNext[sel]
		if es.Kind == ir.KindCmdDecision {
			if !ok {
				return true, tagEdge(c.condOrStop(es.Ref, t.Src0, "unknown device command %#x", sel), "command", sel)
			}
			c.activeCmd = sel
			c.cmdActive = true
			c.suppressAccess = false
		} else if !ok {
			// A plain decode switch: an unseen selector that statically
			// lands on an already-observed arm (typically the default) is
			// legitimate traffic, not a new command.
			staticTgt := c.spec.BlockFor(ir.BlockRef{
				Handler: es.Ref.Handler,
				Block:   staticSwitchTargetIdx(t, sel),
			})
			if staticTgt == core.NoBlock {
				return true, tagEdge(c.condOrStop(es.Ref, t.Src0, "switch to untraversed arm for selector %#x", sel), "switch", sel)
			}
			tgt = staticTgt
		}
		if tgt == core.NoBlock {
			return true, tagEdge(c.condOrStop(es.Ref, t.Src0, "switch successor outside specification"), "successor", sel)
		}
		next = tgt
	}

	if leavingCmdEnd {
		c.cmdActive = false
	}

	// Command access control: under an active command, only blocks in the
	// command's access vector (or globally accessible blocks) may run.
	nextES := c.spec.Block(next)
	if nextES != nil && c.accessControl && c.cmdActive && !c.suppressAccess &&
		c.enabled[StrategyConditionalJump] &&
		!c.spec.CmdTable.Accessible(c.activeCmd, true, next) {
		return true, tagEdge(c.anomaly(StrategyConditionalJump, nextES.Ref, ir.SourceRef{},
			"block not accessible under command %#x", c.activeCmd), "access", c.activeCmd)
	}

	f.block = next
	f.op = 0
	return false, nil
}

func staticSwitchTargetIdx(t *ir.Term, v uint64) int {
	for _, cse := range t.Cases {
		if cse.Value == v {
			return cse.Target
		}
	}
	return t.Default
}
