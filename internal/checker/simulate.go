package checker

import (
	"encoding/binary"

	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// simulate walks the ES-CFG for one I/O request against the shadow device
// state, returning the first blocking-relevant anomaly, or nil. Anomalies
// of disabled strategies are not raised; the simulation then behaves like
// the device would (corrupting the shadow arena on unchecked overflows),
// so a later enabled strategy can still catch the consequence — exactly
// how the paper's per-strategy case studies work.
func (c *Checker) simulate(req *interp.Request) *Anomaly {
	c.frames = c.frames[:0]
	c.push(c.spec.Entry)
	steps := 0
	if len(c.dmaShadow) > 0 {
		clear(c.dmaShadow)
	}

	for len(c.frames) > 0 {
		f := &c.frames[len(c.frames)-1]
		es := c.spec.Block(f.block)
		if es == nil {
			// Dangling successor: a path the spec cannot follow.
			return c.condOrStop(&core.ESBlock{}, ir.SourceRef{}, "dangling ES successor")
		}

		descended, anomaly := c.execDSOD(f, es, req, &steps)
		if anomaly != nil {
			return anomaly
		}
		if descended {
			continue
		}
		if steps > c.budget {
			return c.condOrStop(es, ir.SourceRef{}, "simulation budget exceeded (possible emulation loop)")
		}

		steps++ // the block transition itself
		done, anomaly := c.transition(f, es)
		if anomaly != nil {
			return anomaly
		}
		if done {
			break
		}
	}
	c.stats.StepsSimulated += steps
	return nil
}

func (c *Checker) push(block int) {
	es := c.spec.Block(block)
	var numTemps int
	if es != nil {
		numTemps = c.spec.Program().Handlers[es.Ref.Handler].NumTemps
	}
	depth := len(c.frames)
	for len(c.temps) <= depth {
		c.temps = append(c.temps, nil)
		c.flags = append(c.flags, nil)
	}
	if cap(c.temps[depth]) < numTemps {
		c.temps[depth] = make([]uint64, numTemps)
		c.flags[depth] = make([]interp.Flags, numTemps)
	}
	ts := c.temps[depth][:numTemps]
	fs := c.flags[depth][:numTemps]
	for i := range ts {
		ts[i] = 0
		fs[i] = interp.Flags{}
	}
	c.frames = append(c.frames, simFrame{block: block, temps: ts, flags: fs})
}

// condOrStop raises a conditional-jump anomaly if the strategy is enabled;
// otherwise it silently stops the simulation (the spec cannot follow the
// path) and schedules a shadow resync.
func (c *Checker) condOrStop(es *core.ESBlock, src ir.SourceRef, format string, args ...any) *Anomaly {
	if c.enabled[StrategyConditionalJump] {
		return c.anomaly(StrategyConditionalJump, es, src, format, args...)
	}
	c.frames = c.frames[:0]
	c.needResync = true
	return nil
}

// execDSOD runs the block's retained ops from the frame cursor. It reports
// whether the walker descended into a callee.
func (c *Checker) execDSOD(f *simFrame, es *core.ESBlock, req *interp.Request, steps *int) (bool, *Anomaly) {
	prog := c.spec.Program()
	for i := f.op; i < len(es.DSOD); i++ {
		*steps++
		d := &es.DSOD[i]
		op := d.Op
		switch op.Code {
		case ir.OpConst:
			f.temps[op.Dst] = op.Imm
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpLoad:
			f.temps[op.Dst] = c.shadow.Int(op.Field)
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpLoadFunc:
			f.temps[op.Dst] = c.shadow.FuncPtr(op.Field)
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpArith:
			v, fl, divZero := interp.ALUExec(op.ALU, f.temps[op.A], f.temps[op.B], op.Width, op.Signed)
			if divZero {
				if c.enabled[StrategyParameter] {
					return false, c.anomaly(StrategyParameter, es, op.Src0, "division by zero")
				}
				c.frames = c.frames[:0]
				c.needResync = true
				return false, nil
			}
			f.temps[op.Dst] = v
			f.flags[op.Dst] = fl
		case ir.OpStore:
			if a := c.checkIntStore(es, op, f); a != nil {
				return false, a
			}
			c.shadow.SetInt(op.Field, f.temps[op.Src])
		case ir.OpStoreFunc:
			c.shadow.SetFuncPtr(op.Field, f.temps[op.Src])
		case ir.OpBufLoad:
			v, a := c.bufAccess(es, d, f, f.temps[op.Idx], 0, 0, false)
			if a != nil {
				return false, a
			}
			f.temps[op.Dst] = v
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpBufStore:
			if _, a := c.bufAccess(es, d, f, f.temps[op.Idx], 0, byte(f.temps[op.Src]), true); a != nil {
				return false, a
			}
		case ir.OpIOToBuf:
			if a := c.checkCopyRange(es, d, f); a != nil {
				return false, a
			}
			req.Skip(int(f.temps[op.B] & 0xFFFF_FFFF))
		case ir.OpDMAToBuf:
			// Inbound DMA is performed against the shadow buffer (a
			// read-only peek at guest memory before the device runs):
			// command blocks and descriptors arriving by DMA feed
			// control-flow decisions, so the shadow must hold the real
			// content — and unchecked overflows must corrupt the shadow
			// the way they corrupt the device.
			if a := c.checkCopyRange(es, d, f); a != nil {
				return false, a
			}
			if a := c.dmaToShadow(es, d, f); a != nil {
				return false, a
			}
			if len(c.frames) == 0 {
				return false, nil // simulation stopped mid-copy
			}
		case ir.OpDMAFromBuf:
			// Outbound DMA is guest-visible: bounds-check only, never
			// performed. This asymmetry is the reduction that keeps the
			// checker cheap on read-heavy workloads.
			if a := c.checkCopyRange(es, d, f); a != nil {
				return false, a
			}
		case ir.OpDMARead:
			var buf [8]byte
			n := op.Width.Bytes()
			addr := f.temps[op.A]
			if err := c.env.DMARead(addr, buf[:n]); err != nil {
				if c.enabled[StrategyParameter] {
					return false, c.anomaly(StrategyParameter, es, op.Src0, "DMA read out of guest memory: %v", err)
				}
				c.frames = c.frames[:0]
				c.needResync = true
				return false, nil
			}
			// Overlay this round's suppressed writebacks.
			for i := 0; i < n; i++ {
				if v, ok := c.dmaShadow[addr+uint64(i)]; ok {
					buf[i] = v
				}
			}
			f.temps[op.Dst] = binary.LittleEndian.Uint64(buf[:])
			if n < 8 {
				f.temps[op.Dst] &= op.Width.Mask()
			}
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpDMAWrite:
			// Suppressed guest write: journal it for this round's reads.
			if c.dmaShadow == nil {
				c.dmaShadow = make(map[uint64]byte)
			}
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], f.temps[op.Src])
			for i := 0; i < op.Width.Bytes(); i++ {
				c.dmaShadow[f.temps[op.A]+uint64(i)] = buf[i]
			}
		case ir.OpIOIn:
			f.temps[op.Dst] = req.Consume(op.Width.Bytes())
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpIOAddr:
			f.temps[op.Dst] = req.Addr
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpIOLen:
			f.temps[op.Dst] = uint64(req.Remaining())
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpIOIsWrite:
			if req.Write {
				f.temps[op.Dst] = 1
			} else {
				f.temps[op.Dst] = 0
			}
			f.flags[op.Dst] = interp.Flags{}
		case ir.OpEnvRead:
			// Sync point: synchronize the non-derivable value with the
			// device environment (paper §V-D).
			f.temps[op.Dst] = c.env.ReadEnv(ir.EnvKind(op.Imm))
			f.flags[op.Dst] = interp.Flags{}
			c.stats.SyncPointsResolved++
		case ir.OpCall:
			callee := c.spec.BlockFor(ir.BlockRef{Handler: op.Handler, Block: 0})
			if callee == core.NoBlock {
				continue // opaque: library or unobserved callee
			}
			f.op = i + 1
			c.push(callee)
			return true, nil
		case ir.OpCallPtr:
			target := c.shadow.FuncPtr(op.Field)
			if c.enabled[StrategyIndirectJump] && !c.spec.LegitimateTarget(op.Field, target) {
				return false, c.anomaly(StrategyIndirectJump, es, op.Src0,
					"indirect jump via %q to unauthorized target %#x",
					prog.Fields[op.Field].Name, target)
			}
			if target >= uint64(len(prog.Handlers)) {
				// Unchecked corrupted pointer: the device would crash.
				c.frames = c.frames[:0]
				c.needResync = true
				return false, nil
			}
			callee := c.spec.BlockFor(ir.BlockRef{Handler: int(target), Block: 0})
			if callee == core.NoBlock {
				continue // opaque target
			}
			f.op = i + 1
			c.push(callee)
			return true, nil
		}
	}
	return false, nil
}

// checkIntStore applies the integer-overflow half of the parameter check:
// storing a value whose defining arithmetic overflowed for the parameter's
// signedness, or that exceeds the field's representable range, is an
// anomaly (paper §VI-A, UBSan-style type metadata plus flag bits).
func (c *Checker) checkIntStore(es *core.ESBlock, op *ir.Op, f *simFrame) *Anomaly {
	if !c.enabled[StrategyParameter] || !c.spec.Params.Contains(op.Field) {
		return nil
	}
	fld := &c.spec.Program().Fields[op.Field]
	if f.flags[op.Src].OverflowFor(fld.Signed) {
		kind := "unsigned"
		if fld.Signed {
			kind = "signed"
		}
		return c.anomaly(StrategyParameter, es, op.Src0,
			"%s integer overflow storing into %q", kind, fld.Name)
	}
	return nil
}

// bufAccess applies the buffer-overflow half of the parameter check —
// only when the access is indexed by a device-state parameter, per the
// paper — and otherwise mirrors the device's C semantics on the shadow
// arena, so downstream strategies see the corruption.
func (c *Checker) bufAccess(es *core.ESBlock, d *core.DSODOp, f *simFrame, rawIdx uint64, delta int64, v byte, write bool) (uint64, *Anomaly) {
	op := d.Op
	prog := c.spec.Program()
	fld := &prog.Fields[op.Field]
	var idx int64
	if op.Signed {
		idx = op.Width.SignExtend(rawIdx)
	} else {
		idx = int64(rawIdx & op.Width.Mask())
	}
	idx += delta
	off := int64(fld.Offset) + idx

	inField := idx >= 0 && idx < int64(fld.Size)
	if !inField {
		if c.enabled[StrategyParameter] && d.ParamIndexed {
			return 0, c.anomaly(StrategyParameter, es, op.Src0,
				"buffer overflow: %s[%d] outside [0,%d)", fld.Name, idx, fld.Size)
		}
		if off < 0 || off >= int64(prog.ArenaSize) {
			// The device would fault past the arena; stop simulating.
			c.frames = c.frames[:0]
			c.needResync = true
			return 0, nil
		}
	}
	arena := c.shadow.Bytes()
	if write {
		arena[off] = v
		return 0, nil
	}
	return uint64(arena[off]), nil
}

// dmaToShadow copies guest memory into the shadow buffer with the
// device's C semantics (neighbour corruption inside the arena, stop at the
// arena edge).
func (c *Checker) dmaToShadow(es *core.ESBlock, d *core.DSODOp, f *simFrame) *Anomaly {
	op := d.Op
	n := int(f.temps[op.B] & 0xFFFF_FFFF)
	addr := f.temps[op.A]

	// Fast path: the whole span is inside the buffer — one bulk read into
	// the shadow, mirroring the device's memcpy.
	fld := &c.spec.Program().Fields[op.Field]
	var sidx int64
	if op.Signed {
		sidx = op.Width.SignExtend(f.temps[op.Idx])
	} else {
		sidx = int64(f.temps[op.Idx] & op.Width.Mask())
	}
	if sidx >= 0 && n >= 0 && sidx+int64(n) <= int64(fld.Size) {
		off := fld.Offset + int(sidx)
		if err := c.env.DMARead(addr, c.shadow.Bytes()[off:off+n]); err != nil {
			if c.enabled[StrategyParameter] && d.ParamIndexed {
				return c.anomaly(StrategyParameter, es, op.Src0, "DMA source out of guest memory: %v", err)
			}
			c.frames = c.frames[:0]
			c.needResync = true
		}
		return nil
	}

	var chunk [256]byte
	for copied := 0; copied < n; {
		cl := len(chunk)
		if rem := n - copied; rem < cl {
			cl = rem
		}
		if err := c.env.DMARead(addr+uint64(copied), chunk[:cl]); err != nil {
			if c.enabled[StrategyParameter] && d.ParamIndexed {
				return c.anomaly(StrategyParameter, es, op.Src0, "DMA source out of guest memory: %v", err)
			}
			c.frames = c.frames[:0]
			c.needResync = true
			return nil
		}
		for i := 0; i < cl; i++ {
			if _, a := c.bufAccess(es, d, f, f.temps[op.Idx], int64(copied+i), chunk[i], true); a != nil {
				return a
			}
			if len(c.frames) == 0 {
				return nil // stopped: shadow copy escaped the arena
			}
		}
		copied += cl
	}
	return nil
}

// checkCopyRange bounds-checks a bulk copy's buffer range (either
// direction) against the buffer's size — again only when the range derives
// from device-state parameters.
func (c *Checker) checkCopyRange(es *core.ESBlock, d *core.DSODOp, f *simFrame) *Anomaly {
	op := d.Op
	if !c.enabled[StrategyParameter] || !d.ParamIndexed {
		return nil
	}
	fld := &c.spec.Program().Fields[op.Field]
	n := int64(f.temps[op.B] & 0xFFFF_FFFF)
	var idx int64
	if op.Signed {
		idx = op.Width.SignExtend(f.temps[op.Idx])
	} else {
		idx = int64(f.temps[op.Idx] & op.Width.Mask())
	}
	if idx < 0 || n < 0 || idx+n > int64(fld.Size) {
		return c.anomaly(StrategyParameter, es, op.Src0,
			"out-of-bounds read: %s[%d..%d) outside [0,%d)", fld.Name, idx, idx+n, fld.Size)
	}
	return nil
}

// transition applies the block's NBTD (or unconditional successor),
// running the conditional-jump check and the command access control.
func (c *Checker) transition(f *simFrame, es *core.ESBlock) (bool, *Anomaly) {
	leavingCmdEnd := es.Kind == ir.KindCmdEnd

	next := core.NoBlock
	switch {
	case es.NBTD == nil:
		switch {
		case es.Halts:
			c.frames = c.frames[:0]
			return true, nil
		case es.Returns:
			c.frames = c.frames[:len(c.frames)-1]
			if leavingCmdEnd {
				c.cmdActive = false
			}
			return len(c.frames) == 0, nil
		default:
			next = es.Next
			if next == core.NoBlock {
				return true, c.condOrStop(es, ir.SourceRef{}, "successor outside specification")
			}
		}
	case es.NBTD.Kind == ir.TermBranch:
		t := es.NBTD.Term
		taken := t.Rel.Eval(f.temps[t.A], f.temps[t.B], t.Width, t.Signed)
		seen, tgt := es.NBTD.NotTakenSeen, es.NBTD.NotTakenNext
		if taken {
			seen, tgt = es.NBTD.TakenSeen, es.NBTD.TakenNext
		}
		if !seen || tgt == core.NoBlock {
			arm := "not-taken"
			if taken {
				arm = "taken"
			}
			return true, c.condOrStop(es, t.Src0, "untraversed %s branch", arm)
		}
		next = tgt
	case es.NBTD.Kind == ir.TermSwitch:
		t := es.NBTD.Term
		sel := f.temps[t.A]
		tgt, ok := es.NBTD.CaseNext[sel]
		if es.Kind == ir.KindCmdDecision {
			if !ok {
				return true, c.condOrStop(es, t.Src0, "unknown device command %#x", sel)
			}
			c.activeCmd = sel
			c.cmdActive = true
			c.suppressAccess = false
		} else if !ok {
			// A plain decode switch: an unseen selector that statically
			// lands on an already-observed arm (typically the default) is
			// legitimate traffic, not a new command.
			staticTgt := c.spec.BlockFor(ir.BlockRef{
				Handler: es.Ref.Handler,
				Block:   staticSwitchTargetIdx(t, sel),
			})
			if staticTgt == core.NoBlock {
				return true, c.condOrStop(es, t.Src0, "switch to untraversed arm for selector %#x", sel)
			}
			tgt = staticTgt
		}
		if tgt == core.NoBlock {
			return true, c.condOrStop(es, t.Src0, "switch successor outside specification")
		}
		next = tgt
	}

	if leavingCmdEnd {
		c.cmdActive = false
	}

	// Command access control: under an active command, only blocks in the
	// command's access vector (or globally accessible blocks) may run.
	nextES := c.spec.Block(next)
	if nextES != nil && c.accessControl && c.cmdActive && !c.suppressAccess &&
		c.enabled[StrategyConditionalJump] &&
		!c.spec.CmdTable.Accessible(c.activeCmd, true, next) {
		return true, c.anomaly(StrategyConditionalJump, nextES, ir.SourceRef{},
			"block not accessible under command %#x", c.activeCmd)
	}

	f.block = next
	f.op = 0
	return false, nil
}

func staticSwitchTargetIdx(t *ir.Term, v uint64) int {
	for _, cse := range t.Cases {
		if cse.Value == v {
			return cse.Target
		}
	}
	return t.Default
}
