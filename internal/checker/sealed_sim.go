package checker

import (
	"encoding/binary"

	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// simulateSealed is the production walker over the dense SealedSpec: flat
// block-table indexing, contiguous DSOD arena scans, binary-searched
// switch arms, and bitset access vectors. Steady-state rounds (no anomaly,
// no frame-stack growth) allocate nothing.
func (c *Checker) simulateSealed(req *interp.Request) *Anomaly {
	if !c.batching {
		c.frames = c.frames[:0]
		c.tempArena = c.tempArena[:0]
		c.flagArena = c.flagArena[:0]
		c.dmaLog = c.dmaLog[:0]
	} else if len(c.tempArena) != 0 {
		// Mid-batch after a Halts round: the frame stack is already empty
		// but the arenas kept their residue (a serial round's reset would
		// have cleared it). The DMA journal stays — it is the batch's
		// guest-memory overlay.
		c.frames = c.frames[:0]
		c.tempArena = c.tempArena[:0]
		c.flagArena = c.flagArena[:0]
	}
	c.push(c.sealed.Entry, c.entryTemps)
	if c.cov != nil {
		c.cov.HitBlock(c.sealed.Entry)
	}
	steps := 0
	a := c.walkSealed(req, &steps)
	// The round's step count feeds the flight-recorder event either way;
	// the aggregate counter keeps its pre-recorder semantics of counting
	// only completed (anomaly-free) rounds. In a batch the aggregate is
	// accumulated and published once at the batch boundary.
	c.roundSteps = steps
	if a == nil {
		if c.batching {
			c.batchSteps += uint64(steps)
		} else {
			c.stats.stepsSimulated.Add(uint64(steps))
		}
	}
	if c.cov != nil && !c.batching {
		c.cov.RoundEnd()
	}
	return a
}

func (c *Checker) walkSealed(req *interp.Request, stepsp *int) *Anomaly {
	steps := *stepsp
	defer func() { *stepsp = steps }()
	for len(c.frames) > 0 {
		f := &c.frames[len(c.frames)-1]
		b := c.sealed.Block(f.block)
		if b == nil {
			// Dangling successor: a path the spec cannot follow. The zero
			// BlockRef marks "no block" in the report.
			return tagEdge(c.condOrStop(ir.BlockRef{}, ir.SourceRef{}, "dangling ES successor"), "successor", 0)
		}

		descended, anomaly := c.execDSODSealed(f, c.sealed.DSOD(b), b.Ref, req, &steps)
		if anomaly != nil {
			return anomaly
		}
		if descended {
			continue
		}
		if steps > c.budget {
			return c.condOrStop(b.Ref, ir.SourceRef{}, "simulation budget exceeded (possible emulation loop)")
		}

		steps++ // the block transition itself
		done, anomaly := c.transitionSealed(f, b)
		if anomaly != nil {
			return anomaly
		}
		if done {
			break
		}
	}
	return nil
}

// execDSODSealed runs the block's lowered op records from the frame
// cursor: the sealed twin of execDSOD (simulate.go), iterating the
// contiguous SealedOp arena instead of per-block DSODOp slices with op
// pointers. The op semantics are the shared helpers'; the switch mirrors
// execDSOD case for case and the differential test pins the two engines
// to identical behaviour. It reports whether the walker descended into a
// callee.
func (c *Checker) execDSODSealed(f *simFrame, dsod []core.SealedOp, ref ir.BlockRef, req *interp.Request, steps *int) (bool, *Anomaly) {
	// The frame's temp and flag banks are hoisted into locals: the banks
	// never move while the frame executes, and the locals save a reload
	// through the frame pointer on every op.
	temps, flags := f.temps, f.flags
	for i := f.op; i < len(dsod); i++ {
		*steps++
		d := &dsod[i]
		op := &d.Op
		switch op.Code {
		case ir.OpConst:
			temps[op.Dst] = op.Imm
			flags[op.Dst] = interp.Flags{}
		case ir.OpLoad:
			temps[op.Dst] = c.shadow.Int(op.Field)
			flags[op.Dst] = interp.Flags{}
		case ir.OpLoadFunc:
			temps[op.Dst] = c.shadow.FuncPtr(op.Field)
			flags[op.Dst] = interp.Flags{}
		case ir.OpArith:
			v, fl, divZero := interp.ALUExec(op.ALU, temps[op.A], temps[op.B], op.Width, op.Signed)
			if divZero {
				if c.enabled[StrategyParameter] {
					return false, c.anomaly(StrategyParameter, ref, op.Src0, "division by zero")
				}
				c.frames = c.frames[:0]
				c.needResync = true
				return false, nil
			}
			temps[op.Dst] = v
			flags[op.Dst] = fl
		case ir.OpStore:
			if a := c.checkIntStore(ref, op, flags); a != nil {
				return false, a
			}
			c.shadow.SetInt(op.Field, temps[op.Src])
		case ir.OpStoreFunc:
			c.shadow.SetFuncPtr(op.Field, temps[op.Src])
		case ir.OpBufLoad:
			v, a := c.bufAccess(ref, op, d.ParamIndexed, temps[op.Idx], 0, 0, false)
			if a != nil {
				return false, a
			}
			temps[op.Dst] = v
			flags[op.Dst] = interp.Flags{}
		case ir.OpBufStore:
			if _, a := c.bufAccess(ref, op, d.ParamIndexed, temps[op.Idx], 0, byte(temps[op.Src]), true); a != nil {
				return false, a
			}
		case ir.OpIOToBuf:
			if a := c.checkCopyRange(ref, op, d.ParamIndexed, temps); a != nil {
				return false, a
			}
			req.Skip(int(temps[op.B] & 0xFFFF_FFFF))
		case ir.OpDMAToBuf:
			// See execDSOD: inbound DMA is performed against the shadow.
			if a := c.checkCopyRange(ref, op, d.ParamIndexed, temps); a != nil {
				return false, a
			}
			if a := c.dmaToShadow(ref, op, d.ParamIndexed, temps); a != nil {
				return false, a
			}
			if len(c.frames) == 0 {
				return false, nil // simulation stopped mid-copy
			}
		case ir.OpDMAFromBuf:
			// See execDSOD: outbound DMA is bounds-checked, never performed.
			if a := c.checkCopyRange(ref, op, d.ParamIndexed, temps); a != nil {
				return false, a
			}
		case ir.OpDMARead:
			buf := &c.dmaBuf
			n := op.Width.Bytes()
			addr := temps[op.A]
			if err := c.env.DMARead(addr, buf[:n]); err != nil {
				if c.enabled[StrategyParameter] {
					return false, c.anomaly(StrategyParameter, ref, op.Src0, "DMA read out of guest memory: %v", err)
				}
				c.frames = c.frames[:0]
				c.needResync = true
				return false, nil
			}
			// Overlay this round's suppressed writebacks (skipped entirely
			// in the common no-writeback round, and by a range compare
			// when the read cannot touch any journaled writeback).
			if len(c.dmaLog) > 0 && addr < c.dmaHi && c.dmaLo < addr+uint64(n) {
				for i := range c.dmaLog {
					c.dmaLog[i].overlay(buf[:], addr, n)
				}
			}
			temps[op.Dst] = binary.LittleEndian.Uint64(buf[:])
			if n < 8 {
				temps[op.Dst] &= op.Width.Mask()
			}
			flags[op.Dst] = interp.Flags{}
		case ir.OpDMAWrite:
			// Suppressed guest write: journal it for this round's reads.
			c.journalDMAWrite(temps[op.A], temps[op.Src], uint8(op.Width.Bytes()))
		case ir.OpIOIn:
			temps[op.Dst] = req.Consume(op.Width.Bytes())
			flags[op.Dst] = interp.Flags{}
		case ir.OpIOAddr:
			temps[op.Dst] = req.Addr
			flags[op.Dst] = interp.Flags{}
		case ir.OpIOLen:
			temps[op.Dst] = uint64(req.Remaining())
			flags[op.Dst] = interp.Flags{}
		case ir.OpIOIsWrite:
			if req.Write {
				temps[op.Dst] = 1
			} else {
				temps[op.Dst] = 0
			}
			flags[op.Dst] = interp.Flags{}
		case ir.OpEnvRead:
			// Sync point: synchronize the non-derivable value with the
			// device environment (paper §V-D).
			temps[op.Dst] = c.env.ReadEnv(ir.EnvKind(op.Imm))
			flags[op.Dst] = interp.Flags{}
			c.stats.syncPointsResolved.Add(1)
		case ir.OpCall:
			callee := c.sealed.HandlerEntry(op.Handler)
			if callee == core.NoBlock {
				continue // opaque: library or unobserved callee
			}
			f.op = i + 1
			c.push(callee, c.sealed.HandlerTemps(op.Handler))
			if c.cov != nil {
				c.cov.HitBlock(callee)
			}
			return true, nil
		case ir.OpCallPtr:
			target := c.shadow.FuncPtr(op.Field)
			if c.enabled[StrategyIndirectJump] && !c.sealed.LegitimateTarget(op.Field, target) {
				return false, tagEdge(c.anomaly(StrategyIndirectJump, ref, op.Src0,
					"indirect jump via %q to unauthorized target %#x",
					c.prog.Fields[op.Field].Name, target), "indirect", target)
			}
			if target >= uint64(len(c.prog.Handlers)) {
				// Unchecked corrupted pointer: the device would crash.
				c.frames = c.frames[:0]
				c.needResync = true
				return false, nil
			}
			callee := c.sealed.HandlerEntry(int(target))
			if callee == core.NoBlock {
				continue // opaque target
			}
			f.op = i + 1
			c.push(callee, c.sealed.HandlerTemps(int(target)))
			if c.cov != nil {
				c.cov.HitBlock(callee)
			}
			return true, nil
		}
	}
	return false, nil
}

// transitionSealed applies the sealed block's lowered NBTD (or
// unconditional successor), running the conditional-jump check and the
// command access control. It mirrors transitionRef over the dense
// structures; the differential test pins the two to identical behaviour.
func (c *Checker) transitionSealed(f *simFrame, b *core.SealedBlock) (bool, *Anomaly) {
	leavingCmdEnd := b.Kind == ir.KindCmdEnd

	next := core.NoBlock
	edge := int32(core.NoEdge)
	switch {
	case !b.HasNBTD:
		switch {
		case b.Halts:
			c.frames = c.frames[:0]
			return true, nil
		case b.Returns:
			c.frames = c.frames[:len(c.frames)-1]
			c.tempArena = c.tempArena[:f.off]
			c.flagArena = c.flagArena[:f.off]
			if leavingCmdEnd {
				c.cmdActive = false
			}
			return len(c.frames) == 0, nil
		default:
			next = int(b.Next)
			if next == core.NoBlock {
				return true, tagEdge(c.condOrStop(b.Ref, ir.SourceRef{}, "successor outside specification"), "successor", 0)
			}
			edge = b.NextEdge
		}
	case b.TermKind == ir.TermBranch:
		t := b.Term
		taken := t.Rel.Eval(f.temps[t.A], f.temps[t.B], t.Width, t.Signed)
		seen, tgt, e := b.NotTakenSeen, int(b.NotTakenNext), b.NotTakenEdge
		if taken {
			seen, tgt, e = b.TakenSeen, int(b.TakenNext), b.TakenEdge
		}
		if !seen || tgt == core.NoBlock {
			arm := "not-taken"
			if taken {
				arm = "taken"
			}
			return true, tagEdge(c.condOrStop(b.Ref, t.Src0, "untraversed %s branch", arm), "branch-"+arm, 0)
		}
		next, edge = tgt, e
	case b.TermKind == ir.TermSwitch:
		t := b.Term
		sel := f.temps[t.A]
		tgt, e, ok := c.sealed.CaseNextEdge(b, sel)
		if b.Kind == ir.KindCmdDecision {
			if !ok {
				return true, tagEdge(c.condOrStop(b.Ref, t.Src0, "unknown device command %#x", sel), "command", sel)
			}
			c.activeCmd = sel
			c.cmdActive = true
			c.suppressAccess = false
		} else if !ok {
			// A plain decode switch: an unseen selector that statically
			// lands on an already-observed arm (typically the default) is
			// legitimate traffic, not a new command. It carries no trained
			// edge slot: coverage counts it as a direct block hit.
			staticTgt := c.sealed.BlockID(b.Ref.Handler, staticSwitchTargetIdx(t, sel))
			if staticTgt == core.NoBlock {
				return true, tagEdge(c.condOrStop(b.Ref, t.Src0, "switch to untraversed arm for selector %#x", sel), "switch", sel)
			}
			tgt, e = staticTgt, core.NoEdge
		}
		if tgt == core.NoBlock {
			return true, tagEdge(c.condOrStop(b.Ref, t.Src0, "switch successor outside specification"), "successor", sel)
		}
		next, edge = tgt, e
	}

	if leavingCmdEnd {
		c.cmdActive = false
	}

	// Command access control: under an active command, only blocks in the
	// command's access vector (or globally accessible blocks) may run. The
	// block-table load happens only on the anomaly path (for the report's
	// BlockRef); dangling successors skip the check, as the walker raises
	// the dangling anomaly at the next loop head.
	if c.accessControl && c.cmdActive && !c.suppressAccess &&
		c.enabled[StrategyConditionalJump] &&
		!c.sealed.Accessible(c.activeCmd, true, next) {
		if nextB := c.sealed.Block(next); nextB != nil {
			return true, tagEdge(c.anomaly(StrategyConditionalJump, nextB.Ref, ir.SourceRef{},
				"block not accessible under command %#x", c.activeCmd), "access", c.activeCmd)
		}
	}

	// Coverage: one uncontended atomic add per transition — on the trained
	// edge when the transition has a slot, else directly on the target.
	if c.cov != nil {
		if edge != core.NoEdge {
			c.cov.HitEdge(int(edge))
		} else {
			c.cov.HitBlock(next)
		}
	}

	f.block = next
	f.op = 0
	return false, nil
}
