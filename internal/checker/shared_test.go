package checker_test

import (
	"sync"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
)

// testdevBuild is a session BuildFunc for the test device.
func testdevBuild() (machine.Device, []machine.AttachOption) {
	return testdev.New(testdev.Options{}),
		[]machine.AttachOption{machine.WithPIO(testdev.PortCmd, testdev.PortCount)}
}

func TestSharedSessionsConcurrent(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	sh := sedspec.NewSharedChecker(spec)
	if sh.Mode() != checker.ModeProtection {
		t.Fatalf("default mode = %v", sh.Mode())
	}
	if sh.Sealed() == nil {
		t.Fatal("shared engine lost its sealed spec")
	}

	const n = 8
	p := machine.NewPool(n, testdevBuild)
	var chks [n]*checker.Checker
	for i, s := range p.Sessions() {
		chks[i] = sedspec.ProtectShared(s.Attached(), sh)
	}
	if sh.Sessions() != n {
		t.Fatalf("Sessions = %d, want %d", sh.Sessions(), n)
	}
	if err := p.Run(func(s *machine.Session) error {
		return benign(sedspec.NewDriver(s.Attached()))
	}); err != nil {
		t.Fatal(err)
	}

	// Every session ran the same benign workload; the aggregate must be
	// exactly n times one session's counters, with zero anomalies.
	one := chks[0].Stats()
	if one.Rounds == 0 || one.StepsSimulated == 0 {
		t.Fatalf("session stats not accumulating: %+v", one)
	}
	for i, c := range chks {
		if c.Stats() != one {
			t.Errorf("session %d stats diverge: %+v vs %+v", i, c.Stats(), one)
		}
	}
	agg := sh.Stats()
	if agg.Rounds != n*one.Rounds || agg.StepsSimulated != n*one.StepsSimulated {
		t.Errorf("aggregate = %+v, want %d x %+v", agg, n, one)
	}
	if agg.Blocked != 0 || agg.ParamAnomalies != 0 {
		t.Errorf("benign workload produced anomalies: %+v", agg)
	}

	// Close folds counters into the retired bank: the aggregate is stable
	// across session churn.
	for _, c := range chks {
		c.Close()
		c.Close() // idempotent
	}
	if sh.Sessions() != 0 {
		t.Fatalf("Sessions after close = %d", sh.Sessions())
	}
	if got := sh.Stats(); got != agg {
		t.Errorf("retired aggregate %+v != live aggregate %+v", got, agg)
	}
}

func TestSharedWarningsAggregate(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	sh := sedspec.NewSharedChecker(spec, checker.WithMode(checker.ModeEnhancement))

	const n = 4
	p := machine.NewPool(n, testdevBuild)
	var chks [n]*checker.Checker
	for i, s := range p.Sessions() {
		chks[i] = sedspec.ProtectShared(s.Attached(), sh)
	}
	if err := p.Run(func(s *machine.Session) error {
		d := sedspec.NewDriver(s.Attached())
		_, err := d.Out8(testdev.PortCmd, testdev.CmdDiag) // off-spec: warns
		return err
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range chks {
		if len(c.Warnings()) != 1 {
			t.Errorf("session %d warnings = %d, want 1", i, len(c.Warnings()))
		}
	}
	if got := len(sh.Warnings()); got != n {
		t.Errorf("aggregate warnings = %d, want %d", got, n)
	}
	// Retire half the sessions: warnings survive in the retired buffer.
	chks[0].Close()
	chks[1].Close()
	if got := len(sh.Warnings()); got != n {
		t.Errorf("aggregate warnings after churn = %d, want %d", got, n)
	}
	if sh.Stats().Warnings != n {
		t.Errorf("warning counter = %d, want %d", sh.Stats().Warnings, n)
	}
}

func TestSharedScratchRecycled(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	sh := sedspec.NewSharedChecker(spec)

	// Run one session to grow its arenas, retire it, then verify a
	// follow-up session checks benign traffic without growing fresh
	// arenas: the steady-state loop plus pooled scratch allocate nothing.
	warm := func() {
		m := machine.New()
		dev := testdev.New(testdev.Options{})
		a := m.Attach(dev, machine.WithPIO(testdev.PortCmd, testdev.PortCount))
		c := sedspec.ProtectShared(a, sh)
		if err := benign(sedspec.NewDriver(a)); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	warm()
	warm()

	m := machine.New()
	dev := testdev.New(testdev.Options{})
	a := m.Attach(dev, machine.WithPIO(testdev.PortCmd, testdev.PortCount))
	c := sedspec.ProtectShared(a, sh)
	d := sedspec.NewDriver(a)
	if err := benign(d); err != nil { // settle steady state
		t.Fatal(err)
	}
	// Measure the per-session check loop alone (the interposer's PreIO on
	// a captured request), the path every checked I/O pays.
	req := interp.NewWrite(interp.SpacePIO, testdev.PortCmd, []byte{testdev.CmdStatus})
	if err := c.PreIO(nil, req); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := c.PreIO(nil, req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state check loop allocates %.1f/op, want 0", allocs)
	}
	c.Close()
}

func TestSharedRejectsReferenceSimulation(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: WithReferenceSimulation did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewShared", func() {
		checker.NewShared(spec, checker.WithReferenceSimulation())
	})
	sh := checker.NewShared(spec)
	mustPanic("NewSession", func() {
		sh.NewSession(att.Dev().State(), checker.WithReferenceSimulation())
	})
}

func TestSharedStatsWhileRunning(t *testing.T) {
	// Aggregate Stats/Warnings readers race benignly with running
	// sessions; under -race this proves the atomics/locks are sound.
	_, att := setup(t)
	spec := learn(t, att)
	sh := sedspec.NewSharedChecker(spec)
	p := machine.NewPool(4, testdevBuild)
	for _, s := range p.Sessions() {
		sedspec.ProtectShared(s.Attached(), sh)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = sh.Stats()
				_ = sh.Warnings()
			}
		}
	}()
	if err := p.Run(func(s *machine.Session) error {
		return benign(sedspec.NewDriver(s.Attached()))
	}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if sh.Stats().Rounds == 0 {
		t.Error("no rounds recorded")
	}
}
