package checker

import (
	"sedspec/internal/core"
)

// AnomalyCoverage relates an anomaly to the training corpus: whether the
// block it was raised at is part of the learned ES-CFG, how often
// training visited that block, and — the coverage map's core promise —
// whether the specific transition behind the anomaly was ever exercised
// in training. For a true positive EdgeTrained is false by construction:
// the checker only raises control-flow anomalies on transitions the
// trained spec does not contain.
type AnomalyCoverage struct {
	BlockInSpec      bool   `json:"block_in_spec"`
	BlockTrainVisits uint64 `json:"block_train_visits"`
	EdgeKind         string `json:"edge_kind"`
	EdgeSel          uint64 `json:"edge_sel"`
	EdgeTrained      bool   `json:"edge_trained"`
}

// TrainingCoverage computes the training-corpus view of an anomaly
// against the spec generation that raised it.
func TrainingCoverage(spec *core.Spec, a *Anomaly) AnomalyCoverage {
	cov := AnomalyCoverage{EdgeKind: a.EdgeKind, EdgeSel: a.EdgeSel}
	id := spec.BlockFor(a.Block)
	var es *core.ESBlock
	if id != core.NoBlock {
		es = spec.Block(id)
	}
	if es != nil {
		cov.BlockInSpec = true
		cov.BlockTrainVisits = uint64(es.Visits)
	}
	switch a.EdgeKind {
	case "branch-taken":
		cov.EdgeTrained = es != nil && es.NBTD != nil && es.NBTD.TakenSeen && es.NBTD.TakenNext != core.NoBlock
	case "branch-not-taken":
		cov.EdgeTrained = es != nil && es.NBTD != nil && es.NBTD.NotTakenSeen && es.NBTD.NotTakenNext != core.NoBlock
	case "command", "switch":
		if es != nil && es.NBTD != nil {
			_, cov.EdgeTrained = es.NBTD.CaseNext[a.EdgeSel]
		}
	case "access":
		// The anomaly's block is the transition target; trained means the
		// access table admits it under the active command.
		cov.EdgeTrained = es != nil && spec.CmdTable.Accessible(a.EdgeSel, true, id)
	case "indirect":
		// EdgeSel is the jump target; trained means some learned
		// function-pointer field legitimizes it.
		for field := range spec.IndirectTargets {
			if spec.LegitimateTarget(field, a.EdgeSel) {
				cov.EdgeTrained = true
				break
			}
		}
	default:
		// "successor", "parameter", "control": nothing in the trained
		// structure corresponds to the offending behavior.
	}
	return cov
}
