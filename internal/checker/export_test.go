package checker

// Test-only accessors for internal command-tracking state, used by the
// shadow-resync tests.

// AccessSuppressed reports whether access-vector checks are currently
// suppressed (post-resync, until the next command-decision block).
func (c *Checker) AccessSuppressed() bool { return c.suppressAccess }

// CommandActive reports the active-command tracking state.
func (c *Checker) CommandActive() (bool, uint64) { return c.cmdActive, c.activeCmd }

// Sealed reports whether the checker runs the sealed fast path.
func (c *Checker) Sealed() bool { return c.sealed != nil }

// MergeStats exposes Stats.merge for the aggregation property tests.
func MergeStats(a, b Stats) Stats { return a.merge(b) }
