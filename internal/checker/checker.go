// Package checker implements ES-Checker, SEDSpec's runtime-protection
// proxy (paper §VI). For every I/O interaction it simulates the device's
// execution specification on a shadow device state before the emulated
// device runs, applying three check strategies:
//
//   - the parameter check (integer overflow via flag bits at typed stores,
//     buffer overflow via index bounds on device-state buffers),
//   - the indirect-jump check (function-pointer call targets must be
//     legitimate ES-CFG blocks learned in training), and
//   - the conditional-jump check (branch arms and commands never traversed
//     in training are anomalies).
//
// In protection mode any anomaly blocks the I/O and halts the machine; in
// enhancement mode only parameter-check anomalies block, while the other
// strategies raise warnings and let execution continue.
package checker

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
	"sedspec/internal/machine"
	"sedspec/internal/obs"
	"sedspec/internal/obs/coverage"
	"sedspec/internal/obs/span"
	"sedspec/internal/obs/stream"
	"sedspec/internal/simclock"
)

// Strategy identifies a check strategy.
type Strategy uint8

const (
	// StrategyParameter is the parameter check.
	StrategyParameter Strategy = iota + 1
	// StrategyIndirectJump is the indirect jump check.
	StrategyIndirectJump
	// StrategyConditionalJump is the conditional jump check.
	StrategyConditionalJump
)

func (s Strategy) String() string {
	switch s {
	case StrategyParameter:
		return "parameter-check"
	case StrategyIndirectJump:
		return "indirect-jump-check"
	case StrategyConditionalJump:
		return "conditional-jump-check"
	default:
		return fmt.Sprintf("Strategy(%d)", uint8(s))
	}
}

// Mode selects the working mode (paper §VI-B).
type Mode uint8

const (
	// ModeProtection halts the machine on any anomaly.
	ModeProtection Mode = iota + 1
	// ModeEnhancement halts only on parameter-check anomalies and warns
	// on the rest.
	ModeEnhancement
)

func (m Mode) String() string {
	switch m {
	case ModeProtection:
		return "protection"
	case ModeEnhancement:
		return "enhancement"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Severity grades anomalies for alert classification (paper §VIII:
// "classify the alert levels based on different check strategies").
type Severity uint8

const (
	// SeverityCritical marks anomalies directly tied to exploitation
	// (parameter check): never false positives per the paper.
	SeverityCritical Severity = iota + 1
	// SeverityHigh marks control-flow hijack indicators (indirect jump
	// check).
	SeverityHigh
	// SeverityWarning marks irregular-operation indicators (conditional
	// jump check), which may be rare-command false positives.
	SeverityWarning
)

func (s Severity) String() string {
	switch s {
	case SeverityCritical:
		return "critical"
	case SeverityHigh:
		return "high"
	case SeverityWarning:
		return "warning"
	default:
		return fmt.Sprintf("Severity(%d)", uint8(s))
	}
}

// Anomaly describes one detected specification violation.
type Anomaly struct {
	Strategy Strategy
	Device   string
	Block    ir.BlockRef
	Src      ir.SourceRef
	Detail   string
	Round    uint64
	// Session is the guest-session ID when the anomaly was raised by a
	// session checker of a Shared engine; -1 for a serial checker, so
	// multi-session logs stay unambiguous.
	Session int
	// SpecGen is the spec-version generation that checked the round (1
	// before any hot-swap). Under a Shared engine with live swaps it names
	// the version that actually raised the anomaly, which can lag
	// Shared.Generation during a swap's grace period.
	SpecGen uint64
	// Ctx is the forensic flight-recorder context frozen when the
	// anomaly blocked the I/O: the last events of the session's check
	// stream, the final one being the blocked I/O itself. Nil for
	// non-blocking (warning) anomalies and when recording is disabled.
	Ctx *obs.AnomalyContext
	// EdgeKind classifies the untrained transition behind the anomaly for
	// coverage reports: "branch-taken", "branch-not-taken", "command",
	// "switch", "successor", "indirect", "access", or "parameter". EdgeSel
	// carries the observed selector, command, or jump target when the kind
	// has one. Both engines stamp these identically; the differential
	// anomaly identity deliberately excludes them.
	EdgeKind string
	EdgeSel  uint64
}

// tagEdge annotates an anomaly with the untrained transition that raised
// it. Nil-safe: condOrStop returns nil when the conditional-jump strategy
// is disabled.
func tagEdge(a *Anomaly, kind string, sel uint64) *Anomaly {
	if a != nil {
		a.EdgeKind, a.EdgeSel = kind, sel
	}
	return a
}

// Severity grades the anomaly by its strategy.
func (a *Anomaly) Severity() Severity {
	switch a.Strategy {
	case StrategyParameter:
		return SeverityCritical
	case StrategyIndirectJump:
		return SeverityHigh
	default:
		return SeverityWarning
	}
}

// Error implements error. The device name and round counter are always
// included, and the session ID when the anomaly was raised under a
// Shared engine, so interleaved multi-session logs stay attributable.
func (a *Anomaly) Error() string {
	if a.Session >= 0 {
		return fmt.Sprintf("sedspec: %s anomaly in %s session %d round %d at %s: %s",
			a.Strategy, a.Device, a.Session, a.Round, a.Src, a.Detail)
	}
	return fmt.Sprintf("sedspec: %s anomaly in %s round %d at %s: %s",
		a.Strategy, a.Device, a.Round, a.Src, a.Detail)
}

// Stats counts checker activity. All counters are uint64: round counts are
// unbounded over a deployment's lifetime, and Anomaly.Round is stamped
// straight from Rounds without conversion.
type Stats struct {
	Rounds             uint64
	ParamAnomalies     uint64
	IndirectAnomalies  uint64
	CondAnomalies      uint64
	Blocked            uint64
	Warnings           uint64
	Resyncs            uint64
	StepsSimulated     uint64
	SyncPointsResolved uint64
}

// merge returns the field-wise sum of two snapshots; Shared.Stats uses it
// to aggregate per-session counters.
func (s Stats) merge(o Stats) Stats {
	return Stats{
		Rounds:             s.Rounds + o.Rounds,
		ParamAnomalies:     s.ParamAnomalies + o.ParamAnomalies,
		IndirectAnomalies:  s.IndirectAnomalies + o.IndirectAnomalies,
		CondAnomalies:      s.CondAnomalies + o.CondAnomalies,
		Blocked:            s.Blocked + o.Blocked,
		Warnings:           s.Warnings + o.Warnings,
		Resyncs:            s.Resyncs + o.Resyncs,
		StepsSimulated:     s.StepsSimulated + o.StepsSimulated,
		SyncPointsResolved: s.SyncPointsResolved + o.SyncPointsResolved,
	}
}

// statCounters is the checker's internal counter bank. Each counter has a
// single writer — the goroutine driving the session — but is written with
// atomics so Shared.Stats can aggregate live across sessions without a
// lock on the check path. An uncontended atomic add on a cache line owned
// by the writing core costs a few nanoseconds against rounds measured in
// hundreds, so the serial engine pays nothing observable for this.
type statCounters struct {
	rounds             atomic.Uint64
	paramAnomalies     atomic.Uint64
	indirectAnomalies  atomic.Uint64
	condAnomalies      atomic.Uint64
	blocked            atomic.Uint64
	warnings           atomic.Uint64
	resyncs            atomic.Uint64
	stepsSimulated     atomic.Uint64
	syncPointsResolved atomic.Uint64
}

// snapshot loads a coherent-enough view of the counters: each field is
// read atomically; cross-field skew is bounded by in-flight rounds.
func (s *statCounters) snapshot() Stats {
	return Stats{
		Rounds:             s.rounds.Load(),
		ParamAnomalies:     s.paramAnomalies.Load(),
		IndirectAnomalies:  s.indirectAnomalies.Load(),
		CondAnomalies:      s.condAnomalies.Load(),
		Blocked:            s.blocked.Load(),
		Warnings:           s.warnings.Load(),
		Resyncs:            s.resyncs.Load(),
		StepsSimulated:     s.stepsSimulated.Load(),
		SyncPointsResolved: s.syncPointsResolved.Load(),
	}
}

// Checker is the ES-Checker proxy. It implements machine.Interposer (and
// the PostInterposer extension). One Checker is driven by one goroutine at
// a time, like the per-device dispatch path it guards; for N parallel
// guest sessions build one Shared engine and give each session its own
// Checker via Shared.NewSession — the sessions then run concurrently
// against one immutable sealed spec, with no lock on the check path.
type Checker struct {
	spec *core.Spec
	// sealed is the dense runtime form the simulation runs against; nil
	// only under WithReferenceSimulation.
	sealed *core.SealedSpec
	// prog caches spec.Program() for the hot path.
	prog *ir.Program
	mode Mode
	// enabled strategies, indexed by Strategy (all on by default). An
	// array rather than a map: it is consulted on the simulation's hot
	// path.
	enabled [4]bool
	env     interp.Env
	haltFn  func()
	budget  int
	// accessControl gates the command access table check (ablation
	// switch; on by default).
	accessControl bool

	shadow *interp.State

	cmdActive bool
	activeCmd uint64
	// suppressAccess disables access-vector checks after a shadow resync
	// until the next command-decision block restores tracking.
	suppressAccess bool

	needResync bool
	useRef     bool
	// useWalker pins the sealed switch walker as the dispatch engine
	// (WithThreadedDispatch(false)); by default the sealed spec's compiled
	// threaded stream drives the hot loop instead.
	useWalker bool
	// tprog is the threaded-code engine for the adopted sealed spec: the
	// per-version compiled instruction stream with handlers bound. Nil
	// under WithThreadedDispatch(false) or WithReferenceSimulation.
	tprog *threadedProg
	// Threaded-engine round state: the in-flight request, batched step
	// total, parked anomaly, and the current frame's temp/flag banks
	// (cached off the frame so op handlers skip a frame load).
	treq   *interp.Request
	tsteps int
	tanom  *Anomaly
	ttemps []uint64
	tflags []interp.Flags
	// warnMu guards warnings and audit. It is taken only on the
	// warning-append path (anomalous rounds) and by readers; the
	// steady-state check path never touches it.
	warnMu   sync.Mutex
	warnings []Anomaly
	audit    []AuditRecord
	stats    statCounters

	// shared is non-nil for session checkers built by Shared.NewSession:
	// the engine whose sealed spec this checker shares and whose aggregate
	// this session's counters roll up into. pooled is the recycled scratch
	// backing frames/arenas, returned to the shared pool by Close.
	shared *Shared
	pooled *scratch

	// ver is the adopted spec version under a Shared engine (nil for
	// serial checkers); specGen is its generation, stamped into events and
	// anomalies (serial checkers stamp 1). epoch is the RCU round marker:
	// odd while the checker is inside PreIO, even between rounds. Swap's
	// grace period waits on it; the checker's own goroutine is the only
	// writer.
	ver     *specVersion
	specGen uint64
	epoch   atomic.Uint64

	// rec is the flight recorder fed one event per checked I/O; nil only
	// when recording was explicitly disabled with WithRecorder(nil).
	// clock supplies event timestamps in simclock ticks (nil reads as
	// tick zero, e.g. in detached replay benchmarks).
	rec   *obs.Recorder
	clock *simclock.Clock
	// sessionID is the guest-session identity stamped into events and
	// anomalies; -1 until assigned (serial checkers resolve it to 0,
	// Shared.NewSession auto-assigns).
	sessionID int
	// traceDepth is the last-K window Freeze copies into an
	// AnomalyContext on a blocking anomaly.
	traceDepth int
	// obsReg is the registry the auto-created recorder registers with
	// (nil selects obs.Default()); recSet records that WithRecorder was
	// applied, including WithRecorder(nil) to disable recording.
	obsReg *obs.Registry
	recSet bool
	// hub is the telemetry hub lifecycle and anomaly events publish
	// into (stream.Default() unless WithStream redirected or disabled
	// it). Only the rare paths touch it — blocked anomalies, warnings,
	// attach/detach — never a clean check round. hubSet records that
	// WithStream was applied, including WithStream(nil) to disable
	// publication; closed makes Close idempotent for serial checkers.
	hub    *stream.Hub
	hubSet bool
	closed bool
	// tenant is the control-plane namespace stamped onto every published
	// event (empty for single-tenant CLI runs).
	tenant string
	// roundSteps is the last round's walker step count, captured for the
	// round's event.
	roundSteps int
	// cov is the active ES-CFG coverage map, sized for the adopted sealed
	// generation's block and edge tables; nil when disabled
	// (WithCoverage(false)) or under WithReferenceSimulation. covGens
	// keeps one map per generation this session has enforced, so a
	// hot-swap does not lose the retiring generation's counts; warnMu
	// guards the slice (appends happen only at swap adoption).
	cov     *coverage.Map
	covOff  bool
	covGens []covGen
	// entryRef is the entry block's reference, stamped into clean-round
	// events.
	entryRef ir.BlockRef

	frames []simFrame
	temps  [][]uint64
	flags  [][]interp.Flags
	// tempArena/flagArena back the sealed engine's frame banks: one flat
	// bump allocation per arena, so a push is an arena extension plus a
	// memclr and nested frames' banks sit adjacent in cache. The reference
	// engine keeps the pre-seal per-depth slices above.
	tempArena []uint64
	flagArena []interp.Flags

	// dmaShadow journals guest-memory writes the simulation suppresses
	// (descriptor writebacks), overlaid on subsequent reads within the
	// same round so loops that terminate via writeback terminate in the
	// simulation too. It never reaches real guest memory. The reference
	// engine uses the map; the sealed engine uses dmaLog, an append-only
	// journal scanned linearly on overlay — a round writes back at most a
	// few descriptor words, where a scan beats hashing.
	dmaShadow map[uint64]byte
	dmaLog    []dmaWrite
	// dmaLo/dmaHi bound the address range the journal covers, so reads
	// outside it — the common case in a schedule walk, where most reads
	// touch descriptors not yet written back — skip the overlay scan on
	// one compare. Valid only while len(dmaLog) > 0; set fresh by the
	// first append after a truncation.
	dmaLo, dmaHi uint64
	// entryTemps is the temp-bank size of the entry block's handler,
	// resolved once at construction for the per-round entry push.
	entryTemps int
	// dmaBuf is the word-sized scratch buffer for OpDMARead. It lives on
	// the checker (not the stack) because slices passed through the
	// interp.Env interface escape, and a stack buffer would cost one heap
	// allocation per DMA-read op.
	dmaBuf [8]byte
	// noClear is set when the sealed program passed the
	// definitely-assigned temp analysis: frame pushes skip zeroing the
	// temp and flag banks because no path can read another round's
	// residue (core.SealedSpec.TempsDefinitelyAssigned).
	noClear bool
	// batching is true while PreIOBatch drives the engines: per-round
	// arena resets, DMA journal truncation, coverage ticks, and obs/stat
	// publication are lifted to the batch boundary.
	batching bool
	// batchSteps accumulates clean rounds' step counts within a batch so
	// stepsSimulated is published once per batch instead of per round.
	batchSteps uint64
	// verdicts is PreIOBatch's reusable result buffer.
	verdicts []machine.Verdict
}

// covGen pairs a coverage map with the sealed generation it counts for.
type covGen struct {
	gen uint64
	m   *coverage.Map
}

// dmaWrite is one suppressed guest-memory write in the sealed engine's
// journal — the whole word a single OpDMAWrite produced, not a byte, so
// a journal entry costs one append and one overlap test however wide
// the write was. Overlay scans apply entries in append order, so a
// later write to the same range wins, matching the map's last-write
// semantics.
type dmaWrite struct {
	addr uint64
	val  [8]byte
	n    uint8
}

// journalDMAWrite records one suppressed guest write in the DMA
// journal. A write whose range exactly re-covers an earlier entry —
// the dominant pattern in ring sweeps, where every round rewrites the
// same descriptor status words — updates that entry in place, so a
// batch's journal stays bounded by the number of distinct writeback
// targets instead of growing per round. The in-place update is sound
// exactly when no later journal entry partially overlaps the range:
// the backward scan stops at the first (most recent) overlapping
// entry, so an exact match found there is the range's latest value and
// overwriting it preserves last-write-wins order.
func (c *Checker) journalDMAWrite(addr uint64, val uint64, n uint8) {
	if len(c.dmaLog) == 0 {
		c.dmaLo, c.dmaHi = addr, addr+uint64(n)
	} else {
		if addr < c.dmaLo {
			c.dmaLo = addr
		}
		if end := addr + uint64(n); end > c.dmaHi {
			c.dmaHi = end
		}
	}
	for j := len(c.dmaLog) - 1; j >= 0; j-- {
		w := &c.dmaLog[j]
		if addr < w.addr+uint64(w.n) && w.addr < addr+uint64(n) {
			if w.addr == addr && w.n == n {
				binary.LittleEndian.PutUint64(w.val[:], val)
				return
			}
			break
		}
	}
	w := dmaWrite{addr: addr, n: n}
	binary.LittleEndian.PutUint64(w.val[:], val)
	c.dmaLog = append(c.dmaLog, w)
}

// overlay copies the bytes of w that fall inside [addr, addr+n) into
// buf (which aliases that range).
func (w *dmaWrite) overlay(buf []byte, addr uint64, n int) {
	lo, hi := w.addr, w.addr+uint64(w.n)
	if lo < addr {
		lo = addr
	}
	if end := addr + uint64(n); hi > end {
		hi = end
	}
	for a := lo; a < hi; a++ {
		buf[a-addr] = w.val[a-w.addr]
	}
}

type simFrame struct {
	block int
	op    int
	temps []uint64
	flags []interp.Flags
	// off is the frame's start offset in the sealed engine's arenas; the
	// pop trims the arenas back to it. Unused by the reference engine.
	off int
}

// Option configures a Checker.
type Option func(*Checker)

// WithMode sets the working mode (default protection).
func WithMode(m Mode) Option { return func(c *Checker) { c.mode = m } }

// WithStrategies enables only the listed strategies (default: all three).
func WithStrategies(ss ...Strategy) Option {
	return func(c *Checker) {
		c.enabled = [4]bool{}
		for _, s := range ss {
			c.enabled[s] = true
		}
	}
}

// WithHalt sets the halt hook invoked on blocking anomalies (typically
// machine.Halt).
func WithHalt(fn func()) Option { return func(c *Checker) { c.haltFn = fn } }

// WithEnv provides machine services for sync points and read-only DMA
// (typically the device's machine attachment).
func WithEnv(env interp.Env) Option { return func(c *Checker) { c.env = env } }

// WithAccessControl toggles the command access table check (default on;
// the ablation turns it off).
func WithAccessControl(on bool) Option {
	return func(c *Checker) { c.accessControl = on }
}

// WithBudget bounds simulated steps per round (default 1<<20).
func WithBudget(n int) Option {
	return func(c *Checker) {
		if n > 0 {
			c.budget = n
		}
	}
}

// WithReferenceSimulation makes the checker simulate against the mutable
// Spec's map-based structures instead of the sealed form. This is the
// pre-seal baseline engine, kept for differential testing and overhead
// accounting; production deployments use the (default) sealed fast path.
func WithReferenceSimulation() Option {
	return func(c *Checker) { c.useRef = true }
}

// WithThreadedDispatch selects between the threaded-code engine (true,
// the default) and the sealed switch walker (false). The walker is kept
// as the differential baseline; both run the same sealed spec and emit
// identical anomaly streams.
func WithThreadedDispatch(on bool) Option {
	return func(c *Checker) { c.useWalker = !on }
}

// WithRecorder installs an explicit flight recorder, overriding the
// auto-created one. WithRecorder(nil) disables recording entirely (the
// overhead-guard baseline; production keeps the recorder on).
func WithRecorder(rec *obs.Recorder) Option {
	return func(c *Checker) { c.rec, c.recSet = rec, true }
}

// WithObs selects the metrics registry the checker's auto-created
// recorder registers with (default obs.Default()).
func WithObs(reg *obs.Registry) Option {
	return func(c *Checker) { c.obsReg = reg }
}

// WithSessionID stamps the guest-session identity into events and
// anomalies (the facade wires the attachment's session ID).
func WithSessionID(id int) Option {
	return func(c *Checker) {
		if id >= 0 {
			c.sessionID = id
		}
	}
}

// WithClock supplies the virtual clock whose ticks timestamp recorded
// events (typically the hosting machine's).
func WithClock(clk *simclock.Clock) Option {
	return func(c *Checker) { c.clock = clk }
}

// WithCoverage toggles the ES-CFG coverage counters (default on; the
// overhead-guard baseline and ablations turn them off). Coverage rides
// the sealed engine only — the reference engine never counts.
func WithCoverage(on bool) Option {
	return func(c *Checker) { c.covOff = !on }
}

// WithStream selects the telemetry hub the checker publishes anomaly
// and lifecycle events into (default stream.Default()). WithStream(nil)
// disables publication entirely.
func WithStream(h *stream.Hub) Option {
	return func(c *Checker) { c.hub, c.hubSet = h, true }
}

// WithTenant stamps a control-plane tenant name onto every event the
// checker (or a Shared engine templated from it) publishes, so a
// daemon's anomaly tail attributes each record to the namespace that
// owns the session. Empty (the default) means single-tenant.
func WithTenant(name string) Option {
	return func(c *Checker) { c.tenant = name }
}

// WithTraceDepth bounds how many trailing events a blocking anomaly
// freezes into its AnomalyContext (default 32, capped by the ring).
func WithTraceDepth(k int) Option {
	return func(c *Checker) {
		if k > 0 {
			c.traceDepth = k
		}
	}
}

// baseChecker returns a checker with the construction defaults shared by
// New and the Shared engine's option template.
func baseChecker() *Checker {
	return &Checker{
		mode:          ModeProtection,
		budget:        1 << 20,
		enabled:       [4]bool{false, true, true, true},
		accessControl: true,
		sessionID:     -1,
		traceDepth:    32,
	}
}

// New builds a checker for a specification. initial is the device control
// structure at deployment time, cloned into the shadow device state. The
// specification is sealed (lowered to its dense runtime form) here, at
// deployment: later mutation of spec does not affect the checker.
func New(spec *core.Spec, initial *interp.State, opts ...Option) *Checker {
	c := baseChecker()
	c.spec = spec
	c.prog = spec.Program()
	c.shadow = spec.InitialShadow(initial)
	c.specGen = 1
	for _, o := range opts {
		o(c)
	}
	if !c.useRef {
		sp := span.Default().Start("seal", span.Device(spec.Device), span.Gen(c.specGen))
		c.sealed = spec.Seal()
		sp.End()
		if !c.useWalker {
			c.tprog = buildThreaded(c.sealed)
		}
	}
	c.noClear = c.sealed != nil && c.sealed.TempsDefinitelyAssigned()
	if !c.covOff && c.sealed != nil {
		c.cov = coverage.NewMap(c.sealed.NumBlocks(), c.sealed.NumEdges())
		c.covGens = append(c.covGens, covGen{gen: c.specGen, m: c.cov})
	}
	if es := spec.Block(spec.Entry); es != nil {
		c.entryTemps = c.prog.Handlers[es.Ref.Handler].NumTemps
		c.entryRef = es.Ref
	}
	if c.env == nil {
		c.env = interp.NopEnv()
	}
	if c.sessionID < 0 {
		c.sessionID = 0
	}
	if !c.recSet {
		reg := c.obsReg
		if reg == nil {
			reg = obs.Default()
		}
		c.rec = reg.NewRecorder(spec.Device, c.sessionID, obs.DefaultRingSize)
	}
	if !c.hubSet {
		c.hub = stream.Default()
	}
	c.hub.Publish(stream.Event{
		Kind:    stream.KindAttach,
		Tenant:  c.tenant,
		Device:  spec.Device,
		Session: c.sessionID,
		SpecGen: c.specGen,
	})
	return c
}

// Mode returns the working mode.
func (c *Checker) Mode() Mode { return c.mode }

// Stats returns a copy of the counters.
func (c *Checker) Stats() Stats { return c.stats.snapshot() }

// Warnings returns a copy of the anomalies raised in enhancement mode
// without blocking. Returning a copy keeps callers from mutating checker
// state through the slice.
func (c *Checker) Warnings() []Anomaly {
	c.warnMu.Lock()
	defer c.warnMu.Unlock()
	if len(c.warnings) == 0 {
		return nil
	}
	out := make([]Anomaly, len(c.warnings))
	copy(out, c.warnings)
	return out
}

// ClearWarnings discards accumulated warnings (between experiments),
// keeping the slice's capacity so later rounds do not re-allocate.
func (c *Checker) ClearWarnings() {
	c.warnMu.Lock()
	c.warnings = c.warnings[:0]
	c.warnMu.Unlock()
}

// AuditRecord captures the I/O request behind one non-blocking warning —
// everything the enhancement pipeline needs to replay the round against a
// fresh training pass. Data is a private copy of the request payload.
type AuditRecord struct {
	Session  int
	Round    uint64
	SpecGen  uint64
	Strategy Strategy
	Space    interp.Space
	Addr     uint64
	Write    bool
	Data     []byte
	Detail   string
}

// Audit returns a copy of the audit records accumulated on the warning
// path (enhancement mode).
func (c *Checker) Audit() []AuditRecord {
	c.warnMu.Lock()
	defer c.warnMu.Unlock()
	if len(c.audit) == 0 {
		return nil
	}
	out := make([]AuditRecord, len(c.audit))
	copy(out, c.audit)
	return out
}

// ClearAudit discards accumulated audit records (after an enhancement
// pass consumed them), keeping the slice's capacity.
func (c *Checker) ClearAudit() {
	c.warnMu.Lock()
	c.audit = c.audit[:0]
	c.warnMu.Unlock()
}

// SpecGen returns the generation of the spec version the checker last
// checked against (1 for serial checkers and before any hot-swap).
func (c *Checker) SpecGen() uint64 { return c.specGen }

// Shadow exposes the shadow device state for tests and diagnostics.
func (c *Checker) Shadow() *interp.State { return c.shadow }

// NeedsResync reports whether the last check round desynchronized the
// shadow from the device — a warning or an unobserved path — i.e.
// whether PostIO would resynchronize at the next dispatch. Machine-less
// replay harnesses use it to emulate the dispatcher's resync point.
func (c *Checker) NeedsResync() bool { return c.needResync }

// ResyncShadow re-initializes the shadow device state from the real
// control structure and drops command tracking. Rollback recovery calls
// it after restoring a machine snapshot, since the restored device state
// no longer matches the simulation's.
func (c *Checker) ResyncShadow(real *interp.State) {
	copy(c.shadow.Bytes(), real.Bytes())
	c.cmdActive = false
	c.suppressAccess = true
	c.needResync = false
	c.stats.resyncs.Add(1)
}

// blockingAnomaly reports whether the anomaly stops execution in the
// current mode.
func (c *Checker) blockingAnomaly(s Strategy) bool {
	if c.mode == ModeProtection {
		return true
	}
	return s == StrategyParameter
}

var (
	_ machine.Interposer     = (*Checker)(nil)
	_ machine.PostInterposer = (*Checker)(nil)
)

// PreIO implements machine.Interposer: simulate the specification for the
// request before the device consumes it. Every round feeds one compact
// event to the flight recorder; a blocking anomaly additionally freezes
// the recorder's tail into the anomaly's forensic context, with the
// blocked I/O itself as the final event.
//
// Under a Shared engine the round is bracketed by the RCU epoch marker
// (odd while checking) and begins by adopting the engine's current spec
// version, so a hot-swap takes effect exactly at a round boundary: this
// round runs entirely against one version, and Swap's grace period waits
// for the epoch to advance before retiring the old one.
func (c *Checker) PreIO(_ machine.Device, req *interp.Request) error {
	if c.shared != nil {
		c.epoch.Add(1)
		defer c.epoch.Add(1)
		if v := c.shared.cur.Load(); v != c.ver {
			c.adopt(v)
		}
	}
	round := c.stats.rounds.Add(1)
	req.Rewind()
	anomaly := c.simulate(req)
	req.Rewind()
	return c.finishRound(req, round, anomaly)
}

// finishRound runs the post-simulation half of a check round: event
// recording, anomaly stamping and accounting, blocking or warning. It
// returns the anomaly when it blocks in the current mode, nil
// otherwise. PreIO and PreIOBatch share it so a batched round is
// observable exactly like a serial one.
func (c *Checker) finishRound(req *interp.Request, round uint64, anomaly *Anomaly) error {
	if anomaly == nil {
		if c.rec != nil {
			c.record(req, round, Strategy(obs.StrategyNone), obs.VerdictOK, c.entryRef)
		}
		return nil
	}
	anomaly.Device = c.spec.Device
	anomaly.Round = round
	anomaly.SpecGen = c.specGen
	if anomaly.EdgeKind == "" {
		// Untagged sites default by strategy: parameter-check anomalies
		// (overflow, bounds, DMA) concern an op, not a transition.
		switch anomaly.Strategy {
		case StrategyParameter:
			anomaly.EdgeKind = "parameter"
		case StrategyIndirectJump:
			anomaly.EdgeKind = "indirect"
		default:
			anomaly.EdgeKind = "control"
		}
	}
	if c.shared != nil {
		anomaly.Session = c.sessionID
	}
	c.countAnomaly(anomaly.Strategy)
	if c.blockingAnomaly(anomaly.Strategy) {
		c.stats.blocked.Add(1)
		if c.rec != nil {
			c.record(req, round, anomaly.Strategy, obs.VerdictBlocked, anomaly.Block)
			anomaly.Ctx = c.rec.Freeze(c.traceDepth)
		}
		c.hub.Publish(stream.Event{
			Kind:    stream.KindAnomaly,
			Tenant:  c.tenant,
			Device:  c.spec.Device,
			Session: c.sessionID,
			SpecGen: c.specGen,
			Anomaly: &stream.AnomalyInfo{
				Strategy: anomaly.Strategy.String(),
				Severity: anomaly.Severity().String(),
				Detail:   anomaly.Detail,
				Round:    round,
				Addr:     req.Addr,
				Write:    req.Write,
				Len:      len(req.Data),
				EdgeKind: anomaly.EdgeKind,
				EdgeSel:  anomaly.EdgeSel,
				Ctx:      anomaly.Ctx,
			},
		})
		// In a batch the halt is deferred onto the verdict (PreIOBatch),
		// so the batch's clean prefix still reaches the device first.
		if c.haltFn != nil && !c.batching {
			c.haltFn()
		}
		return anomaly
	}
	c.stats.warnings.Add(1)
	if c.rec != nil {
		c.record(req, round, anomaly.Strategy, obs.VerdictWarned, anomaly.Block)
	}
	c.hub.Publish(stream.Event{
		Kind:    stream.KindAudit,
		Tenant:  c.tenant,
		Device:  c.spec.Device,
		Session: c.sessionID,
		SpecGen: c.specGen,
		Audit: &stream.AuditInfo{
			Strategy: anomaly.Strategy.String(),
			Detail:   anomaly.Detail,
			Round:    round,
			Addr:     req.Addr,
			Write:    req.Write,
			Len:      len(req.Data),
		},
	})
	c.warnMu.Lock()
	c.warnings = append(c.warnings, *anomaly)
	c.audit = append(c.audit, AuditRecord{
		Session:  c.sessionID,
		Round:    round,
		SpecGen:  c.specGen,
		Strategy: anomaly.Strategy,
		Space:    req.Space,
		Addr:     req.Addr,
		Write:    req.Write,
		Data:     append([]byte(nil), req.Data...),
		Detail:   anomaly.Detail,
	})
	c.warnMu.Unlock()
	c.needResync = true
	return nil
}

// adopt switches the checker onto a newly published spec version at a
// round boundary. Shadow state, command tracking, and scratch survive:
// compatiblePrograms guarantees the replacement presents the same runtime
// shape.
func (c *Checker) adopt(v *specVersion) {
	c.ver = v
	c.spec = v.spec
	c.sealed = v.sealed
	c.noClear = v.sealed != nil && v.sealed.TempsDefinitelyAssigned()
	c.prog = v.prog
	c.entryTemps = v.entryTemps
	c.entryRef = v.entryRef
	c.specGen = v.gen
	if c.useWalker {
		c.tprog = nil
	} else {
		c.tprog = v.tprog
	}
	if !c.covOff {
		// Adoption happens at a round boundary on the session's goroutine:
		// publish the retiring generation's pending counts now, since the
		// walker will never tick its map again.
		if c.cov != nil {
			c.cov.Flush()
		}
		// Fresh counters for the new generation: its sealed block and edge
		// slots are a new index space. The retiring generation's map stays
		// in covGens so its counts survive until Close folds them.
		m := coverage.NewMap(v.sealed.NumBlocks(), v.sealed.NumEdges())
		c.warnMu.Lock()
		c.covGens = append(c.covGens, covGen{gen: v.gen, m: m})
		c.cov = m
		c.warnMu.Unlock()
	}
}

// coverageGens returns a copy of the session's per-generation coverage
// maps, for the shared engine's aggregation.
func (c *Checker) coverageGens() []covGen {
	c.warnMu.Lock()
	defer c.warnMu.Unlock()
	return append([]covGen(nil), c.covGens...)
}

// Coverage returns a snapshot of the coverage counters for the spec
// generation the checker currently enforces, or nil when coverage is
// disabled. It publishes any pending counts first, so it must be called
// from the goroutine driving the session or after the session quiesced;
// for a live cross-goroutine view use the shared engine's
// CoverageSnapshots, which reads only the published bank.
func (c *Checker) Coverage() *coverage.Snapshot {
	c.warnMu.Lock()
	m := c.cov
	c.warnMu.Unlock()
	if m == nil {
		return nil
	}
	m.Flush()
	return m.Snapshot()
}

// CoverageProfile relates the checker's runtime coverage to the sealed
// structure and training baseline of its current generation; nil when
// coverage is disabled or the checker runs the reference engine.
func (c *Checker) CoverageProfile() *coverage.Profile {
	if c.sealed == nil {
		return nil
	}
	snap := c.Coverage()
	if snap == nil {
		return nil
	}
	return c.sealed.CoverageProfile(c.specGen, snap)
}

// record feeds one check event to the flight recorder. Timestamps are
// virtual (simclock ticks, one per microsecond): the checker's own cost
// never advances the clock, so the event's latency field reads as the
// virtual time the round's dispatch and device work consumed since the
// previous check — deterministic across replays, unlike wall time.
func (c *Checker) record(req *interp.Request, round uint64, strat Strategy, v obs.Verdict, blk ir.BlockRef) {
	var tick int64
	if c.clock != nil {
		tick = c.clock.Now().Microseconds()
	}
	ev := c.rec.Append(tick)
	ev.Round = round
	ev.Addr = req.Addr
	ev.Steps = uint32(c.roundSteps)
	ev.Handler = uint16(blk.Handler)
	ev.Block = uint16(blk.Block)
	ev.Len = uint16(len(req.Data))
	ev.Kind = obs.KindOf(uint8(req.Space), req.Write)
	ev.SpecGen = uint16(c.specGen)
	ev.Strategy = uint8(strat)
	ev.Verdict = v
	if c.batching {
		c.rec.CommitDeferred(ev)
	} else {
		c.rec.Commit(ev)
	}
}

// Recorder exposes the checker's flight recorder (nil when disabled).
func (c *Checker) Recorder() *obs.Recorder { return c.rec }

// Snapshot reads this checker's own observability metrics: round counts
// by strategy and verdict plus the latency/step histograms. Safe to call
// from other goroutines while the session runs.
func (c *Checker) Snapshot() obs.MetricsSnapshot {
	if c.rec == nil {
		return obs.MetricsSnapshot{Device: c.spec.Device}
	}
	return c.rec.Snapshot()
}

// DumpTrace renders the flight recorder's current contents as a
// human-readable timeline. Call it from the session's goroutine or
// after the session has quiesced.
func (c *Checker) DumpTrace(w io.Writer) error {
	if c.rec == nil {
		return nil
	}
	ring := c.rec.Ring()
	if _, err := fmt.Fprintf(w, "flight recorder: device %s session %d, %d/%d events held (%d recorded)\n",
		c.spec.Device, c.sessionID, ring.Len(), ring.Cap(), ring.Total()); err != nil {
		return err
	}
	return obs.WriteTimeline(w, ring.Snapshot())
}

// PostIO implements machine.PostInterposer: after warning rounds the
// shadow state is resynchronized from the real device control structure,
// since the simulation could not follow the unobserved path.
func (c *Checker) PostIO(dev machine.Device, _ *interp.Request, _ *interp.Result) {
	if !c.needResync {
		return
	}
	copy(c.shadow.Bytes(), dev.State().Bytes())
	c.cmdActive = false
	c.suppressAccess = true
	c.needResync = false
	c.stats.resyncs.Add(1)
}

func (c *Checker) countAnomaly(s Strategy) {
	switch s {
	case StrategyParameter:
		c.stats.paramAnomalies.Add(1)
	case StrategyIndirectJump:
		c.stats.indirectAnomalies.Add(1)
	case StrategyConditionalJump:
		c.stats.condAnomalies.Add(1)
	}
}

func (c *Checker) anomaly(s Strategy, ref ir.BlockRef, src ir.SourceRef, format string, args ...any) *Anomaly {
	return &Anomaly{
		Strategy: s,
		Block:    ref,
		Src:      src,
		Detail:   fmt.Sprintf(format, args...),
		Session:  -1,
	}
}
