package checker_test

import (
	"errors"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/machine"
)

func setup(t *testing.T) (*machine.Machine, *machine.Attached) {
	t.Helper()
	m := machine.New()
	dev := testdev.New(testdev.Options{})
	att := m.Attach(dev, machine.WithPIO(testdev.PortCmd, testdev.PortCount))
	return m, att
}

func benign(d *sedspec.Driver) error {
	for _, n := range []byte{2, 8, 16} {
		if _, err := d.Out8(testdev.PortCmd, testdev.CmdReset); err != nil {
			return err
		}
		if _, err := d.Out(testdev.PortCmd, []byte{testdev.CmdWriteBegin, n}); err != nil {
			return err
		}
		for i := byte(0); i < n; i++ {
			if _, err := d.Out8(testdev.PortData, i); err != nil {
				return err
			}
		}
		if _, err := d.Out8(testdev.PortCmd, testdev.CmdRead); err != nil {
			return err
		}
		if _, err := d.Out8(testdev.PortCmd, testdev.CmdStatus); err != nil {
			return err
		}
		if _, err := d.Out8(testdev.PortEnv, 0); err != nil {
			return err
		}
	}
	return nil
}

func learn(t *testing.T, att *machine.Attached) *sedspec.Spec {
	t.Helper()
	spec, err := sedspec.Learn(att, benign)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestModeStrings(t *testing.T) {
	if checker.ModeProtection.String() != "protection" ||
		checker.ModeEnhancement.String() != "enhancement" {
		t.Error("mode strings wrong")
	}
	if checker.StrategyParameter.String() != "parameter-check" {
		t.Error("strategy string wrong")
	}
}

func TestStatsAccumulate(t *testing.T) {
	m, att := setup(t)
	spec := learn(t, att)
	chk := sedspec.Protect(att, spec)
	d := sedspec.NewDriver(att)
	if err := benign(d); err != nil {
		t.Fatal(err)
	}
	st := chk.Stats()
	if st.Rounds == 0 || st.StepsSimulated == 0 {
		t.Errorf("stats not accumulating: %+v", st)
	}
	if st.SyncPointsResolved == 0 {
		t.Error("env rounds should resolve sync points")
	}
	_ = m
}

func TestBudgetOption(t *testing.T) {
	m, att := setup(t)
	spec := learn(t, att)
	// An absurdly small budget turns even benign rounds into conditional
	// anomalies — proving the bound is enforced.
	sedspec.Protect(att, spec, checker.WithBudget(2))
	d := sedspec.NewDriver(att)
	err := benign(d)
	var anom *checker.Anomaly
	if !errors.As(err, &anom) || anom.Strategy != checker.StrategyConditionalJump {
		t.Fatalf("want conditional (budget) anomaly, got %v", err)
	}
	_ = m
}

func TestWarningsClearing(t *testing.T) {
	m, att := setup(t)
	spec := learn(t, att)
	chk := sedspec.Protect(att, spec, checker.WithMode(checker.ModeEnhancement))
	d := sedspec.NewDriver(att)
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
		t.Fatal(err)
	}
	if len(chk.Warnings()) != 1 {
		t.Fatalf("warnings = %d, want 1", len(chk.Warnings()))
	}
	w := chk.Warnings()[0]
	if w.Device != "testdev" || w.Round == 0 {
		t.Errorf("warning metadata incomplete: %+v", w)
	}
	if w.Error() == "" {
		t.Error("empty Error()")
	}
	chk.ClearWarnings()
	if len(chk.Warnings()) != 0 {
		t.Error("ClearWarnings did not clear")
	}
	_ = m
}

func TestAccessControlToggle(t *testing.T) {
	// With access control off, the checker still runs the other
	// conditional checks (unknown commands stay detected).
	m, att := setup(t)
	spec := learn(t, att)
	sedspec.Protect(att, spec,
		checker.WithAccessControl(false),
		checker.WithStrategies(checker.StrategyConditionalJump))
	d := sedspec.NewDriver(att)
	if err := benign(d); err != nil {
		t.Fatalf("benign blocked with AC off: %v", err)
	}
	_, err := d.Out8(testdev.PortCmd, testdev.CmdDiag)
	var anom *checker.Anomaly
	if !errors.As(err, &anom) {
		t.Fatalf("unknown command should still be flagged, got %v", err)
	}
	_ = m
}

func TestNoStrategiesMeansNoBlocking(t *testing.T) {
	// All strategies disabled: the checker simulates but never raises.
	m, att := setup(t)
	spec := learn(t, att)
	chk := sedspec.Protect(att, spec, checker.WithStrategies())
	d := sedspec.NewDriver(att)
	if err := benign(d); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
		t.Fatalf("nothing should block with no strategies: %v", err)
	}
	st := chk.Stats()
	if st.ParamAnomalies+st.IndirectAnomalies+st.CondAnomalies != 0 {
		t.Errorf("anomaly counters should stay zero: %+v", st)
	}
	if m.Halted() {
		t.Error("machine should not halt")
	}
}

func TestShadowDivergenceRecovery(t *testing.T) {
	// A warning round stops simulation mid-way; the PostIO resync must
	// bring the shadow back in line so later rounds stay clean.
	m, att := setup(t)
	spec := learn(t, att)
	chk := sedspec.Protect(att, spec, checker.WithMode(checker.ModeEnhancement))
	d := sedspec.NewDriver(att)

	// Three warning rounds in a row, benign traffic in between.
	for i := 0; i < 3; i++ {
		if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
			t.Fatal(err)
		}
		if err := benign(d); err != nil {
			t.Fatalf("post-warning benign traffic blocked: %v", err)
		}
	}
	if got := chk.Stats().Resyncs; got != 3 {
		t.Errorf("resyncs = %d, want 3", got)
	}
	if got := len(chk.Warnings()); got != 3 {
		t.Errorf("warnings = %d, want 3 (no cascade)", got)
	}
	_ = m
}

func TestWarningsReturnsCopy(t *testing.T) {
	m, att := setup(t)
	spec := learn(t, att)
	chk := sedspec.Protect(att, spec, checker.WithMode(checker.ModeEnhancement))
	d := sedspec.NewDriver(att)
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
		t.Fatal(err)
	}
	got := chk.Warnings()
	if len(got) != 1 {
		t.Fatalf("warnings = %d, want 1", len(got))
	}
	got[0].Detail = "mutated by caller"
	got[0].Strategy = checker.StrategyParameter
	if again := chk.Warnings(); again[0].Detail == "mutated by caller" ||
		again[0].Strategy == checker.StrategyParameter {
		t.Error("Warnings() must return a copy, not the internal slice")
	}
	_ = m
}

func TestClearWarningsKeepsCapacity(t *testing.T) {
	m, att := setup(t)
	spec := learn(t, att)
	chk := sedspec.Protect(att, spec, checker.WithMode(checker.ModeEnhancement))
	d := sedspec.NewDriver(att)
	for i := 0; i < 3; i++ {
		if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
			t.Fatal(err)
		}
	}
	chk.ClearWarnings()
	if len(chk.Warnings()) != 0 {
		t.Fatal("ClearWarnings did not clear")
	}
	// The next warning must land in the retained backing array and be
	// visible again.
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
		t.Fatal(err)
	}
	if got := len(chk.Warnings()); got != 1 {
		t.Errorf("warnings after clear = %d, want 1", got)
	}
	if got, want := chk.Stats().Warnings, uint64(4); got != want {
		t.Errorf("Stats.Warnings = %d, want %d", got, want)
	}
	_ = m
}

func TestResyncShadowRestoresTracking(t *testing.T) {
	m, att := setup(t)
	spec := learn(t, att)
	chk := sedspec.Protect(att, spec)
	d := sedspec.NewDriver(att)
	if err := benign(d); err != nil {
		t.Fatal(err)
	}

	// Corrupt the shadow, then resync from the real control structure:
	// the shadow must match again, command tracking must drop, and
	// access-vector checks must be suppressed until the next
	// command-decision block.
	chk.Shadow().Bytes()[0] ^= 0xFF
	chk.ResyncShadow(att.Dev().State())
	if got := chk.Stats().Resyncs; got != 1 {
		t.Fatalf("resyncs = %d, want 1", got)
	}
	if !chk.AccessSuppressed() {
		t.Error("resync must suppress access-vector checks")
	}
	if active, _ := chk.CommandActive(); active {
		t.Error("resync must drop the active command")
	}
	for i, b := range att.Dev().State().Bytes() {
		if chk.Shadow().Bytes()[i] != b {
			t.Fatalf("shadow byte %d diverges after resync", i)
		}
	}

	// A command round re-identifies the device command and restores
	// access tracking.
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdStatus); err != nil {
		t.Fatal(err)
	}
	if chk.AccessSuppressed() {
		t.Error("command-decision block must restore access tracking")
	}
	if err := benign(d); err != nil {
		t.Fatalf("benign traffic blocked after resync: %v", err)
	}
	_ = m
}

func TestPostIOResyncAfterWarningRound(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []checker.Option
	}{
		{"sealed", nil},
		{"reference", []checker.Option{checker.WithReferenceSimulation()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m, att := setup(t)
			spec := learn(t, att)
			opts := append([]checker.Option{checker.WithMode(checker.ModeEnhancement)}, tc.opts...)
			chk := sedspec.Protect(att, spec, opts...)
			if chk.Sealed() == (tc.name == "reference") {
				t.Fatalf("engine selection wrong for %s", tc.name)
			}
			d := sedspec.NewDriver(att)

			// The diag command warns; the round completes and PostIO must
			// resynchronize the shadow from the real device state.
			if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
				t.Fatal(err)
			}
			st := chk.Stats()
			if st.Warnings != 1 || st.Resyncs != 1 {
				t.Fatalf("warnings/resyncs = %d/%d, want 1/1", st.Warnings, st.Resyncs)
			}
			if !chk.AccessSuppressed() {
				t.Error("post-warning resync must suppress access checks")
			}
			if active, _ := chk.CommandActive(); active {
				t.Error("post-warning resync must drop the active command")
			}
			for i, b := range att.Dev().State().Bytes() {
				if chk.Shadow().Bytes()[i] != b {
					t.Fatalf("shadow byte %d diverges after PostIO resync", i)
				}
			}

			// Clean traffic re-engages tracking without further resyncs.
			if err := benign(d); err != nil {
				t.Fatal(err)
			}
			if chk.AccessSuppressed() {
				t.Error("benign command round must restore access tracking")
			}
			if got := chk.Stats().Resyncs; got != 1 {
				t.Errorf("resyncs after benign = %d, want 1", got)
			}
			_ = m
		})
	}
}

func TestHaltHookFires(t *testing.T) {
	m, att := setup(t)
	spec := learn(t, att)
	halted := 0
	chk := checker.New(spec, att.Dev().State(),
		checker.WithEnv(att),
		checker.WithHalt(func() { halted++ }))
	att.AddInterposer(chk)
	d := sedspec.NewDriver(att)
	if _, err := d.Out8(testdev.PortCmd, testdev.CmdDiag); err == nil {
		t.Fatal("want blocking anomaly")
	}
	if halted != 1 {
		t.Errorf("halt hook fired %d times, want 1", halted)
	}
	if chk.Stats().Blocked != 1 {
		t.Errorf("Blocked = %d, want 1", chk.Stats().Blocked)
	}
	_ = m
}
