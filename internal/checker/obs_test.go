package checker_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/fuzzer"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
	"sedspec/internal/obs"
	"sedspec/internal/simclock"
)

// Observability integration: flight-recorder wiring, session identity,
// and the aggregation laws the metrics layer depends on.

func randStats(r *simclock.Rand) checker.Stats {
	u := func() uint64 { return r.Uint64() >> 40 } // keep sums far from overflow
	return checker.Stats{
		Rounds:             u(),
		ParamAnomalies:     u(),
		IndirectAnomalies:  u(),
		CondAnomalies:      u(),
		Blocked:            u(),
		Warnings:           u(),
		Resyncs:            u(),
		StepsSimulated:     u(),
		SyncPointsResolved: u(),
	}
}

// TestStatsMergeProperties checks that Stats.merge is commutative and
// associative with the zero value as identity — the laws that make
// "retired bank + live sessions, folded in any order" a well-defined
// aggregate.
func TestStatsMergeProperties(t *testing.T) {
	r := simclock.NewRand(42)
	for i := 0; i < 500; i++ {
		a, b, c := randStats(r), randStats(r), randStats(r)
		if checker.MergeStats(a, b) != checker.MergeStats(b, a) {
			t.Fatalf("merge not commutative: %+v vs %+v", a, b)
		}
		if checker.MergeStats(checker.MergeStats(a, b), c) != checker.MergeStats(a, checker.MergeStats(b, c)) {
			t.Fatalf("merge not associative: %+v %+v %+v", a, b, c)
		}
		if checker.MergeStats(a, checker.Stats{}) != a {
			t.Fatalf("zero not identity for %+v", a)
		}
	}
}

// TestMetricsMergeProperties checks the same laws for the observability
// snapshots Registry.Snapshot folds.
func TestMetricsMergeProperties(t *testing.T) {
	r := simclock.NewRand(7)
	randSnap := func() obs.MetricsSnapshot {
		m := obs.MetricsSnapshot{Device: "dev", Rounds: r.Uint64() >> 40}
		for s := range m.Outcomes {
			for v := range m.Outcomes[s] {
				m.Outcomes[s][v] = r.Uint64() >> 40
			}
		}
		for i := range m.Latency.Buckets {
			m.Latency.Buckets[i] = r.Uint64() >> 40
			m.Steps.Buckets[i] = r.Uint64() >> 40
		}
		return m
	}
	for i := 0; i < 200; i++ {
		a, b, c := randSnap(), randSnap(), randSnap()
		if a.Merge(b) != b.Merge(a) {
			t.Fatalf("Merge not commutative")
		}
		if a.Merge(b).Merge(c) != a.Merge(b.Merge(c)) {
			t.Fatalf("Merge not associative")
		}
		if a.Merge(obs.MetricsSnapshot{}) != a {
			t.Fatalf("zero not identity")
		}
	}
}

// TestSessionIDStamping verifies the identity chain: pool session ID →
// attachment → per-session checker → recorder → anomaly.
func TestSessionIDStamping(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	sh := sedspec.NewSharedChecker(spec)

	const n = 3
	p := machine.NewPool(n, testdevBuild)
	chks := make([]*checker.Checker, n)
	for i, s := range p.Sessions() {
		if got := s.Attached().SessionID(); got != i {
			t.Errorf("attachment session ID = %d, want %d", got, i)
		}
		chks[i] = sedspec.ProtectShared(s.Attached(), sh)
		if got := chks[i].Recorder().Session(); got != i {
			t.Errorf("recorder session ID = %d, want %d", got, i)
		}
	}

	// An off-spec command in session 2 blocks; the anomaly must carry the
	// session and name it in the error, along with device and round.
	d := sedspec.NewDriver(p.Session(2).Attached())
	_, err := d.Out8(testdev.PortCmd, testdev.CmdDiag)
	if err == nil {
		t.Fatal("off-spec command not blocked")
	}
	var anom *checker.Anomaly
	if !errors.As(err, &anom) {
		t.Fatalf("blocked error does not wrap an anomaly: %v", err)
	}
	if anom.Session != 2 {
		t.Errorf("anomaly session = %d, want 2", anom.Session)
	}
	for _, want := range []string{"session 2", "testdev", "round 1"} {
		if !strings.Contains(anom.Error(), want) {
			t.Errorf("anomaly error missing %q: %s", want, anom.Error())
		}
	}
	if anom.Ctx == nil || anom.Ctx.Session != 2 {
		t.Errorf("anomaly context missing or mis-attributed: %+v", anom.Ctx)
	}
}

// TestSerialAnomalyOmitsSession: a serial (non-shared) checker has no
// session identity to report.
func TestSerialAnomalyOmitsSession(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	sedspec.Protect(att, spec)
	d := sedspec.NewDriver(att)
	if err := benign(d); err != nil {
		t.Fatal(err)
	}
	_, err := d.Out8(testdev.PortCmd, testdev.CmdDiag)
	var anom *checker.Anomaly
	if !errors.As(err, &anom) {
		t.Fatalf("off-spec command not blocked: %v", err)
	}
	if anom.Session != -1 {
		t.Errorf("serial anomaly session = %d, want -1", anom.Session)
	}
	if strings.Contains(anom.Error(), "session") {
		t.Errorf("serial anomaly error mentions a session: %s", anom.Error())
	}
	if !strings.Contains(anom.Error(), "round") || !strings.Contains(anom.Error(), "testdev") {
		t.Errorf("anomaly error missing round/device: %s", anom.Error())
	}
}

// TestSharedClearWarnings: the engine-wide clear empties the retired
// buffer and every open session, preserving capacity, and later warnings
// still collect.
func TestSharedClearWarnings(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	sh := sedspec.NewSharedChecker(spec, checker.WithMode(checker.ModeEnhancement))

	const n = 2
	p := machine.NewPool(n, testdevBuild)
	chks := make([]*checker.Checker, n)
	for i, s := range p.Sessions() {
		chks[i] = sedspec.ProtectShared(s.Attached(), sh)
	}
	warnOnce := func(i int) {
		t.Helper()
		if _, err := sedspec.NewDriver(p.Session(i).Attached()).Out8(testdev.PortCmd, testdev.CmdDiag); err != nil {
			t.Fatal(err)
		}
	}
	warnOnce(0)
	warnOnce(1)
	chks[0].Close() // one warning now lives in the retired buffer
	if got := len(sh.Warnings()); got != 2 {
		t.Fatalf("warnings before clear = %d, want 2", got)
	}

	sh.ClearWarnings()
	if got := sh.Warnings(); got != nil {
		t.Errorf("warnings after clear = %v, want none", got)
	}

	// The clear keeps collecting: a fresh warning in the surviving session
	// is visible, and the cleared counters stayed (Stats is history, the
	// warning buffer is the inbox).
	warnOnce(1)
	if got := len(sh.Warnings()); got != 1 {
		t.Errorf("warnings after clear+warn = %d, want 1", got)
	}
	if sh.Stats().Warnings != 3 {
		t.Errorf("warning counter = %d, want 3", sh.Stats().Warnings)
	}
}

// TestRegistryMidHammer hammers N concurrent protected sessions with raw
// random I/O while another goroutine snapshots the metrics registry.
// Under -race this proves the snapshot path is safe against running
// sessions; after quiescing, the registry view must equal the sum of the
// per-session recorder snapshots, and stay stable across session churn.
func TestRegistryMidHammer(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	reg := obs.NewRegistry()
	// Enhancement mode plus a no-op halt keeps sessions checking (and
	// recording) straight through the anomalies random I/O provokes.
	sh := checker.NewShared(spec,
		checker.WithObs(reg),
		checker.WithMode(checker.ModeEnhancement))

	const n = 4
	p := machine.NewPool(n, testdevBuild)
	chks := make([]*checker.Checker, n)
	for i, s := range p.Sessions() {
		chks[i] = sedspec.ProtectShared(s.Attached(), sh, checker.WithHalt(func() {}))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := reg.Snapshot().Device(spec.Device)
				if snap.Rounds < snap.Anomalies() {
					t.Errorf("mid-run snapshot inconsistent: %d rounds < %d anomalies",
						snap.Rounds, snap.Anomalies())
					return
				}
			}
		}
	}()
	if err := p.Run(func(s *machine.Session) error {
		fuzzer.Hammer(s.Attached(), interp.SpacePIO, testdev.PortCmd, testdev.PortCount,
			uint64(1+s.ID()), 2000)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	want := chks[0].Snapshot()
	for _, c := range chks[1:] {
		want = want.Merge(c.Snapshot())
	}
	got := reg.Snapshot().Device(spec.Device)
	if got != want {
		t.Errorf("registry snapshot != sum of session snapshots:\n  got:  %+v\n  want: %+v", got, want)
	}
	if got.Rounds == 0 || got.Anomalies() == 0 {
		t.Errorf("hammer recorded no activity: %+v", got)
	}

	chks[0].Close()
	chks[1].Close()
	if after := reg.Snapshot().Device(spec.Device); after != got {
		t.Errorf("aggregate changed across churn:\n  got:  %+v\n  want: %+v", after, got)
	}
}

// TestDumpTrace exercises the facade-level trace dump on a serial
// checker after a benign run.
func TestDumpTrace(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	reg := obs.NewRegistry()
	chk := sedspec.Protect(att, spec, checker.WithObs(reg))
	d := sedspec.NewDriver(att)
	if err := benign(d); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := chk.DumpTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"flight recorder: device testdev", "pio-wr", "ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace dump missing %q:\n%s", want, out)
		}
	}
	if chk.Snapshot().Rounds == 0 {
		t.Error("snapshot shows no rounds after benign run")
	}
}

// TestWithRecorderNilDisables: the recorder can be opted out entirely.
func TestWithRecorderNilDisables(t *testing.T) {
	_, att := setup(t)
	spec := learn(t, att)
	reg := obs.NewRegistry()
	chk := sedspec.Protect(att, spec, checker.WithObs(reg), sedspec.WithRecorder(nil))
	if chk.Recorder() != nil {
		t.Fatal("recorder not disabled")
	}
	if err := benign(sedspec.NewDriver(att)); err != nil {
		t.Fatal(err)
	}
	if reg.Recorders() != 0 || len(reg.Snapshot().Devices) != 0 {
		t.Errorf("disabled recorder still registered: %d recorders", reg.Recorders())
	}
	var sb strings.Builder
	if err := chk.DumpTrace(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("DumpTrace with disabled recorder: %q, %v", sb.String(), err)
	}
}
