package checker

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
	"sedspec/internal/obs"
	"sedspec/internal/obs/coverage"
	"sedspec/internal/obs/span"
	"sedspec/internal/obs/stream"
)

// specVersion is one immutable generation of the enforced specification:
// the spec, its sealed runtime form, and the entry-block material every
// round needs. The shared engine publishes versions through an atomic
// pointer; sessions adopt the current version at round boundaries, so one
// round always runs entirely against one version.
type specVersion struct {
	gen        uint64
	spec       *core.Spec
	sealed     *core.SealedSpec
	prog       *ir.Program
	entryTemps int
	entryRef   ir.BlockRef
	// tprog is the version's threaded-code stream with handlers bound.
	// Compiled once at publication and immutable afterwards — like the
	// sealed spec itself — so RCU adoption is a pointer assignment and
	// every session dispatches over the same shared stream.
	tprog *threadedProg
}

// newSpecVersion seals a spec into a publishable version.
func newSpecVersion(spec *core.Spec, gen uint64) *specVersion {
	sp := span.Default().Start("seal", span.Device(spec.Device))
	sealed := spec.Seal()
	sp.End(span.Gen(gen))
	v := &specVersion{
		gen:    gen,
		spec:   spec,
		sealed: sealed,
		prog:   spec.Program(),
	}
	if es := spec.Block(spec.Entry); es != nil {
		v.entryTemps = v.prog.Handlers[es.Ref.Handler].NumTemps
		v.entryRef = es.Ref
	}
	v.tprog = buildThreaded(sealed)
	return v
}

// Shared is the cross-session half of the concurrent enforcement engine:
// one specification sealed once, enforced for N parallel guest sessions.
//
// What is shared is exactly the immutable material — the current
// specVersion (SealedSpec, device program, entry material) and the check
// configuration (mode, strategies, budget, access control). Everything a
// simulated round mutates is per-session: the shadow device state, command
// tracking, frame stack, bump arenas, DMA journal, warning buffer, and
// counters. A session's steady-state check path therefore takes no lock
// and touches no cache line another session writes; the only
// cross-session traffic is read-only spec data plus one atomic load of
// the version pointer per round.
//
// Swap replaces the enforced specification under running sessions,
// RCU-style: a new version is published through the atomic pointer, each
// session adopts it at its next round boundary, and Swap returns only
// after the grace period — once every round that may still be walking the
// old version has finished. No round is dropped or double-checked.
//
// Session scratch (frame stack and bump arenas) is recycled through a
// sync.Pool so that short-lived sessions — one per connecting guest in a
// fleet deployment — start with warm, right-sized arenas instead of
// re-growing them over their first rounds.
//
// The session registry and the retired aggregates are sharded: sessions
// partition by ID across GOMAXPROCS cache-line-padded shards, each with
// its own lock, session list, and retired banks. Opening, closing, and
// retiring sessions on different shards never contend on a lock or dirty
// a shared counter line; aggregate readers fold across the shards.
type Shared struct {
	device string
	// cur is the published spec version. Sessions load it once per round;
	// Swap stores a successor and grace-waits.
	cur atomic.Pointer[specVersion]

	mode          Mode
	enabled       [4]bool
	budget        int
	accessControl bool

	// env and haltFn are session defaults, overridable per session with
	// WithEnv / WithHalt (each guest's machine is its own environment).
	env    interp.Env
	haltFn func()

	// reg is the observability registry every session's flight recorder
	// reports into; traceDepth is the session default for anomaly freezes.
	reg        *obs.Registry
	traceDepth int

	// hub is the telemetry hub sessions inherit (overridable per session
	// with WithStream); the engine itself publishes swap events into it.
	hub *stream.Hub
	// tenant is the control-plane namespace sessions inherit and the
	// engine stamps onto its own swap events (empty for single-tenant).
	tenant string

	scratchPool sync.Pool

	// swaps counts published versions beyond the first.
	swaps atomic.Uint64

	// shards partitions the session registry and retired aggregates by
	// session ID. Fixed at construction (one per GOMAXPROCS core), so
	// shardFor is a bounds-check and a modulo — no lock.
	shards []*sessionShard
	// nextSession allocates session IDs lock-free across shards.
	nextSession atomic.Int64
	// swapMu serializes Swap's publication+grace sequence; it is never
	// taken on the check path or by session open/close.
	swapMu sync.Mutex

	// covOff is the engine-wide coverage switch sessions inherit.
	covOff bool

	// useWalker is the engine-wide dispatch default sessions inherit
	// (WithThreadedDispatch on the Shared constructor); individual
	// sessions may still override it.
	useWalker bool
}

// sessionShard is one partition of the session registry plus the retired
// banks its closed sessions fold into. Shards are allocated individually
// and padded so two cores folding or reading different shards never
// write the same cache line.
type sessionShard struct {
	mu              sync.Mutex
	sessions        []*Checker
	retired         statCounters
	retiredWarnings []Anomaly
	retiredAudit    []AuditRecord
	// retiredCov accumulates closed sessions' coverage counters, keyed by
	// spec generation (counter index spaces are per-generation).
	retiredCov map[uint64]*coverage.Snapshot

	_ [64]byte // pad: keep the tail clear of the next shard's header line
}

// shardFor maps a session ID to its home shard.
func (s *Shared) shardFor(id int) *sessionShard {
	if id < 0 {
		id = -id
	}
	return s.shards[id%len(s.shards)]
}

// scratch is one session's recyclable simulation storage: the frame stack
// and the flat bump arenas behind it, plus the DMA writeback journal. All
// of it is length-trimmed (capacity kept) between owners.
type scratch struct {
	frames    []simFrame
	tempArena []uint64
	flagArena []interp.Flags
	dmaLog    []dmaWrite
}

// NewShared seals the specification once and returns the engine that
// enforces it across sessions. Options fix the check configuration every
// session inherits; WithReferenceSimulation is rejected — the reference
// engine walks the mutable Spec and exists for differential testing, not
// for concurrent deployment.
func NewShared(spec *core.Spec, opts ...Option) *Shared {
	tmpl := baseChecker()
	for _, o := range opts {
		o(tmpl)
	}
	if tmpl.useRef {
		panic("checker: WithReferenceSimulation is incompatible with a shared engine")
	}
	s := &Shared{
		device:        spec.Device,
		mode:          tmpl.mode,
		enabled:       tmpl.enabled,
		budget:        tmpl.budget,
		accessControl: tmpl.accessControl,
		env:           tmpl.env,
		haltFn:        tmpl.haltFn,
		reg:           tmpl.obsReg,
		traceDepth:    tmpl.traceDepth,
		covOff:        tmpl.covOff,
		useWalker:     tmpl.useWalker,
		tenant:        tmpl.tenant,
	}
	if s.reg == nil {
		s.reg = obs.Default()
	}
	s.hub = tmpl.hub
	if !tmpl.hubSet {
		s.hub = stream.Default()
	}
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	s.shards = make([]*sessionShard, n)
	for i := range s.shards {
		s.shards[i] = &sessionShard{retiredCov: make(map[uint64]*coverage.Snapshot)}
	}
	s.cur.Store(newSpecVersion(spec, 1))
	s.scratchPool.New = func() any { return &scratch{} }
	return s
}

// Mode returns the working mode every session enforces.
func (s *Shared) Mode() Mode { return s.mode }

// Sealed exposes the current sealed specification (diagnostics, tests).
func (s *Shared) Sealed() *core.SealedSpec { return s.cur.Load().sealed }

// Spec returns the current specification version's spec.
func (s *Shared) Spec() *core.Spec { return s.cur.Load().spec }

// Generation returns the current spec version's generation (1 before any
// swap, +1 per swap).
func (s *Shared) Generation() uint64 { return s.cur.Load().gen }

// SwapCount returns how many hot-swaps the engine has applied.
func (s *Shared) SwapCount() uint64 { return s.swaps.Load() }

// compatiblePrograms checks that a replacement spec's program presents
// the same runtime shape as the current one: same device, control
// structure layout, and handler/temp geometry. A session's shadow device
// state and recycled arenas survive a swap only under these invariants.
func compatiblePrograms(old, repl *ir.Program) error {
	if old == repl {
		return nil
	}
	if old.Name != repl.Name {
		return fmt.Errorf("checker: swap: program %q does not match %q", repl.Name, old.Name)
	}
	if old.ArenaSize != repl.ArenaSize || len(old.Fields) != len(repl.Fields) {
		return fmt.Errorf("checker: swap: control structure layout changed (%d/%d bytes, %d/%d fields)",
			repl.ArenaSize, old.ArenaSize, len(repl.Fields), len(old.Fields))
	}
	if len(old.Handlers) != len(repl.Handlers) {
		return fmt.Errorf("checker: swap: handler count changed (%d -> %d)",
			len(old.Handlers), len(repl.Handlers))
	}
	for i := range old.Handlers {
		if old.Handlers[i].NumTemps != repl.Handlers[i].NumTemps ||
			len(old.Handlers[i].Blocks) != len(repl.Handlers[i].Blocks) {
			return fmt.Errorf("checker: swap: handler %q geometry changed", old.Handlers[i].Name)
		}
	}
	return nil
}

// Swap atomically replaces the enforced specification with spec and waits
// out the grace period: on return, every session round that may have been
// walking the previous version has completed, and every subsequent round
// checks against the new version. Sessions in between rounds pick the new
// version up at their next PreIO; no I/O check is dropped, and no round
// observes two versions.
//
// The replacement must be for the same device and structurally compatible
// with the current program (sessions' shadow states survive the swap).
// Swap may be called from any goroutine; concurrent Swaps serialize. A
// session registering concurrently with publication is safe without a
// registry lock: NewSession loads the version before registering, and a
// session that is not yet registered cannot be mid-round — if it loaded
// the old version it adopts the new one at its first PreIO, so the grace
// wait only needs the sessions visible in the shards.
func (s *Shared) Swap(spec *core.Spec) error {
	if spec.Device != s.device {
		return fmt.Errorf("checker: swap: spec is for device %q, engine enforces %q", spec.Device, s.device)
	}
	// Shape compatibility is transitive over the program geometry checks,
	// so validating against the version current at call time stays valid
	// even if a concurrent Swap publishes in between.
	if err := compatiblePrograms(s.cur.Load().prog, spec.Program()); err != nil {
		return err
	}
	// Seal outside the serialization lock: sealing cost scales with spec
	// size and must not extend the window during which a competing Swap
	// is held off.
	sp := span.Default().Start("swap", span.Device(s.device))
	sealed := newSpecVersion(spec, 0)

	s.swapMu.Lock()
	old := s.cur.Load()
	sealed.gen = old.gen + 1
	s.cur.Store(sealed)
	s.swaps.Add(1)
	if s.reg != nil {
		s.reg.CountSwap(s.device)
	}

	// Grace period. A session's epoch is odd while it is inside PreIO or
	// PreIOBatch (mid-round) and even between rounds. Any round entered
	// after the Store above adopts the new version, so the old version
	// remains reachable only by rounds whose epoch was already odd at
	// publication time; wait for each of those epochs to advance. Shard
	// locks are held only long enough to snapshot each session list.
	for _, sh := range s.shards {
		sh.mu.Lock()
		sessions := append([]*Checker(nil), sh.sessions...)
		sh.mu.Unlock()
		for _, c := range sessions {
			e := c.epoch.Load()
			if e&1 == 0 {
				continue
			}
			for c.epoch.Load() == e {
				runtime.Gosched()
			}
		}
	}
	s.swapMu.Unlock()
	sp.End(span.Gen(sealed.gen))
	s.hub.Publish(stream.Event{
		Kind:    stream.KindSwap,
		Tenant:  s.tenant,
		Device:  s.device,
		Session: -1,
		SpecGen: sealed.gen,
		Swap:    &stream.SwapInfo{FromGen: old.gen, ToGen: sealed.gen},
	})
	return nil
}

// NewSession opens an enforcement session: a Checker sharing this
// engine's sealed spec, with its own shadow device state cloned from
// initial and its own recycled scratch. Per-session options typically
// wire the session's machine (WithEnv, WithHalt); WithReferenceSimulation
// panics. The returned Checker is driven by one goroutine, concurrently
// with any number of sibling sessions.
//
// Every session gets its own flight recorder registered with the
// engine's observability registry, under an auto-assigned session ID
// unless WithSessionID fixed one. Per-recorder event rings and metric
// banks mean sibling sessions never write a shared cache line for
// telemetry; the session ID also selects the registry shard the session
// lives on, so open/close traffic spreads across shard locks.
func (s *Shared) NewSession(initial *interp.State, opts ...Option) *Checker {
	v := s.cur.Load()
	c := &Checker{
		spec:          v.spec,
		sealed:        v.sealed,
		noClear:       v.sealed != nil && v.sealed.TempsDefinitelyAssigned(),
		prog:          v.prog,
		ver:           v,
		specGen:       v.gen,
		mode:          s.mode,
		enabled:       s.enabled,
		budget:        s.budget,
		accessControl: s.accessControl,
		entryTemps:    v.entryTemps,
		env:           s.env,
		haltFn:        s.haltFn,
		shadow:        v.spec.InitialShadow(initial),
		shared:        s,
		sessionID:     -1,
		traceDepth:    s.traceDepth,
		obsReg:        s.reg,
		entryRef:      v.entryRef,
	}
	c.covOff = s.covOff
	c.useWalker = s.useWalker
	c.hub = s.hub
	c.tenant = s.tenant
	for _, o := range opts {
		o(c)
	}
	if c.useRef {
		panic("checker: WithReferenceSimulation is incompatible with a shared engine")
	}
	if !c.useWalker {
		c.tprog = v.tprog
	}
	if c.env == nil {
		c.env = interp.NopEnv()
	}
	if !c.covOff {
		c.cov = coverage.NewMap(v.sealed.NumBlocks(), v.sealed.NumEdges())
		c.covGens = append(c.covGens, covGen{gen: v.gen, m: c.cov})
	}
	sc := s.scratchPool.Get().(*scratch)
	c.pooled = sc
	c.frames = sc.frames[:0]
	c.tempArena = sc.tempArena[:0]
	c.flagArena = sc.flagArena[:0]
	c.dmaLog = sc.dmaLog[:0]

	if c.sessionID < 0 {
		c.sessionID = int(s.nextSession.Add(1) - 1)
	} else {
		// WithSessionID fixed an ID: keep the allocator ahead of it so
		// auto-assigned siblings never collide.
		for {
			next := s.nextSession.Load()
			if int64(c.sessionID) < next || s.nextSession.CompareAndSwap(next, int64(c.sessionID)+1) {
				break
			}
		}
	}
	sh := s.shardFor(c.sessionID)
	sh.mu.Lock()
	sh.sessions = append(sh.sessions, c)
	sh.mu.Unlock()
	if !c.recSet {
		c.rec = c.obsReg.NewRecorder(s.device, c.sessionID, obs.DefaultRingSize)
	}
	c.hub.Publish(stream.Event{
		Kind:    stream.KindAttach,
		Tenant:  c.tenant,
		Device:  s.device,
		Session: c.sessionID,
		SpecGen: c.specGen,
	})
	return c
}

// Close retires a session checker: its counters fold into its shard's
// retired bank, its warnings and audit records drain into the shard
// buffers, its flight recorder folds into the observability registry, and
// its scratch returns to the pool for the next session. A serial checker
// (built with New) closes just its recorder. Closing is idempotent; the
// checker must not be used after Close.
func (c *Checker) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.rec != nil {
		c.rec.Close()
	}
	final := c.stats.snapshot()
	c.hub.Publish(stream.Event{
		Kind:    stream.KindDetach,
		Tenant:  c.tenant,
		Device:  c.spec.Device,
		Session: c.sessionID,
		SpecGen: c.specGen,
		Detach: &stream.SessionInfo{
			Rounds:   final.Rounds,
			Blocked:  final.Blocked,
			Warnings: final.Warnings,
		},
	})
	s := c.shared
	if s == nil {
		return
	}
	c.shared = nil
	sh := s.shardFor(c.sessionID)

	sh.mu.Lock()
	for i, sess := range sh.sessions {
		if sess == c {
			sh.sessions = append(sh.sessions[:i], sh.sessions[i+1:]...)
			break
		}
	}
	snap := c.stats.snapshot()
	sh.retired.rounds.Add(snap.Rounds)
	sh.retired.paramAnomalies.Add(snap.ParamAnomalies)
	sh.retired.indirectAnomalies.Add(snap.IndirectAnomalies)
	sh.retired.condAnomalies.Add(snap.CondAnomalies)
	sh.retired.blocked.Add(snap.Blocked)
	sh.retired.warnings.Add(snap.Warnings)
	sh.retired.resyncs.Add(snap.Resyncs)
	sh.retired.stepsSimulated.Add(snap.StepsSimulated)
	sh.retired.syncPointsResolved.Add(snap.SyncPointsResolved)
	c.warnMu.Lock()
	sh.retiredWarnings = append(sh.retiredWarnings, c.warnings...)
	c.warnings = nil
	sh.retiredAudit = append(sh.retiredAudit, c.audit...)
	c.audit = nil
	for _, cg := range c.covGens {
		acc := sh.retiredCov[cg.gen]
		if acc == nil {
			acc = &coverage.Snapshot{}
			sh.retiredCov[cg.gen] = acc
		}
		// The caller owns the quiesced session, so publishing its pending
		// counts here is safe; the fold then loses nothing.
		cg.m.Flush()
		acc.Merge(cg.m.Snapshot())
	}
	c.covGens = nil
	c.cov = nil
	c.warnMu.Unlock()
	sh.mu.Unlock()

	if sc := c.pooled; sc != nil {
		c.pooled = nil
		sc.frames = c.frames[:0]
		sc.tempArena = c.tempArena[:0]
		sc.flagArena = c.flagArena[:0]
		sc.dmaLog = c.dmaLog[:0]
		c.frames, c.tempArena, c.flagArena, c.dmaLog = nil, nil, nil, nil
		s.scratchPool.Put(sc)
	}
}

// Sessions reports the number of open sessions.
func (s *Shared) Sessions() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.sessions)
		sh.mu.Unlock()
	}
	return n
}

// Stats aggregates counters across all sessions, open and retired, by
// folding the shards in order. It may be called while sessions run:
// per-field sums are exact at the atomic loads, with cross-field skew
// bounded by in-flight rounds. A session closing concurrently is counted
// exactly once — the shard lock orders the read against the fold, so its
// counters come either from its live bank or from the shard's retired
// bank, never both and never neither.
func (s *Shared) Stats() Stats {
	var agg Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		agg = agg.merge(sh.retired.snapshot())
		for _, c := range sh.sessions {
			agg = agg.merge(c.stats.snapshot())
		}
		sh.mu.Unlock()
	}
	return agg
}

// Warnings copies every session's accumulated warnings, shard by shard,
// retired sessions first within each shard, then open sessions in open
// order. Within a session the warnings keep their round order; across
// concurrently-running sessions there is no global order to report.
func (s *Shared) Warnings() []Anomaly {
	var out []Anomaly
	for _, sh := range s.shards {
		sh.mu.Lock()
		out = append(out, sh.retiredWarnings...)
		for _, c := range sh.sessions {
			out = append(out, c.Warnings()...)
		}
		sh.mu.Unlock()
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ClearWarnings discards every accumulated warning — the retired buffers
// and each open session's — keeping the buffers' capacity so later
// rounds do not re-allocate. Like the per-Checker ClearWarnings, it is
// meant for the gap between experiments; warnings raised concurrently
// with the clear land in whichever side of it their lock acquisition
// orders them.
func (s *Shared) ClearWarnings() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.retiredWarnings = sh.retiredWarnings[:0]
		for _, c := range sh.sessions {
			c.ClearWarnings()
		}
		sh.mu.Unlock()
	}
}

// Audit copies every session's accumulated audit records (the warning
// replays the enhancement pipeline feeds on), shard by shard, retired
// sessions first within each shard.
func (s *Shared) Audit() []AuditRecord {
	var out []AuditRecord
	for _, sh := range s.shards {
		sh.mu.Lock()
		out = append(out, sh.retiredAudit...)
		for _, c := range sh.sessions {
			out = append(out, c.Audit()...)
		}
		sh.mu.Unlock()
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ClearAudit discards every accumulated audit record, retired and
// per-session, typically after an enhancement pass consumed them.
func (s *Shared) ClearAudit() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.retiredAudit = sh.retiredAudit[:0]
		for _, c := range sh.sessions {
			c.ClearAudit()
		}
		sh.mu.Unlock()
	}
}

// CoverageSnapshots aggregates ES-CFG coverage across every session,
// open and retired, keyed by spec generation. Counter index spaces are
// per-generation (each sealing assigns its own block and edge slots), so
// cross-generation counts never mix. Safe to call while sessions run:
// counters only grow, so a concurrent snapshot is a consistent lower
// bound; the shard lock orders the read against a concurrent Close's
// fold, so a closing session's published counts are seen exactly once.
func (s *Shared) CoverageSnapshots() map[uint64]*coverage.Snapshot {
	out := make(map[uint64]*coverage.Snapshot)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for gen, snap := range sh.retiredCov {
			acc := out[gen]
			if acc == nil {
				acc = &coverage.Snapshot{}
				out[gen] = acc
			}
			acc.Merge(snap)
		}
		for _, c := range sh.sessions {
			for _, cg := range c.coverageGens() {
				acc := out[cg.gen]
				if acc == nil {
					acc = &coverage.Snapshot{}
					out[cg.gen] = acc
				}
				acc.Merge(cg.m.Snapshot())
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// CoverageProfile relates the current generation's aggregate coverage to
// its sealed structure and training baseline; nil when coverage is
// disabled.
func (s *Shared) CoverageProfile() *coverage.Profile {
	if s.covOff {
		return nil
	}
	v := s.cur.Load()
	return v.sealed.CoverageProfile(v.gen, s.CoverageSnapshots()[v.gen])
}

// Registry returns the observability registry the engine's sessions
// report into.
func (s *Shared) Registry() *obs.Registry { return s.reg }

// Metrics returns the engine's device row from the observability
// registry: one MetricsSnapshot aggregating every session's recorder,
// open and retired. Safe to call while sessions run.
func (s *Shared) Metrics() obs.MetricsSnapshot {
	return s.reg.Snapshot().Device(s.device)
}

// EngineStatus folds the engine's session registry, aggregate
// counters, and current-generation coverage into the shape the fleet
// health aggregator consumes. Register it as a source with
// stream.Health.AddEngine(sh.EngineStatus); safe to call while
// sessions run.
func (s *Shared) EngineStatus() stream.EngineStatus {
	v := s.cur.Load()
	st := s.Stats()
	es := stream.EngineStatus{
		Device:     s.device,
		Tenant:     s.tenant,
		Generation: v.gen,
		Sessions:   s.Sessions(),
		Swaps:      s.swaps.Load(),
		Rounds:     st.Rounds,
		Blocked:    st.Blocked,
		Warnings:   st.Warnings,
	}
	if !s.covOff {
		if snap := s.CoverageSnapshots()[v.gen]; snap != nil {
			cov := &stream.GenCoverage{
				Generation:  v.gen,
				TotalBlocks: v.sealed.NumBlocks(),
				TotalEdges:  v.sealed.NumEdges(),
			}
			for _, n := range snap.Blocks {
				if n != 0 {
					cov.BlocksCovered++
				}
			}
			for _, n := range snap.Edges {
				if n != 0 {
					cov.EdgesCovered++
				}
			}
			es.Coverage = cov
		}
	}
	return es
}
