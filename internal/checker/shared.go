package checker

import (
	"sync"

	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
	"sedspec/internal/obs"
)

// Shared is the cross-session half of the concurrent enforcement engine:
// one specification sealed once, enforced for N parallel guest sessions.
//
// What is shared is exactly the immutable material — the SealedSpec, the
// device program, and the check configuration (mode, strategies, budget,
// access control). Everything a simulated round mutates is per-session:
// the shadow device state, command tracking, frame stack, bump arenas,
// DMA journal, warning buffer, and counters. A session's steady-state
// check path therefore takes no lock and touches no cache line another
// session writes; the only cross-session traffic is read-only spec data.
//
// Session scratch (frame stack and bump arenas) is recycled through a
// sync.Pool so that short-lived sessions — one per connecting guest in a
// fleet deployment — start with warm, right-sized arenas instead of
// re-growing them over their first rounds.
//
// Counters are per-session atomics; Stats sums live sessions plus the
// retired bank that Close folds finished sessions into, so aggregate
// accounting survives session churn.
type Shared struct {
	spec   *core.Spec
	sealed *core.SealedSpec
	prog   *ir.Program

	mode          Mode
	enabled       [4]bool
	budget        int
	accessControl bool
	entryTemps    int

	// env and haltFn are session defaults, overridable per session with
	// WithEnv / WithHalt (each guest's machine is its own environment).
	env    interp.Env
	haltFn func()

	// reg is the observability registry every session's flight recorder
	// reports into; entryRef and traceDepth are the session defaults for
	// clean-round event stamping and anomaly freezes.
	reg        *obs.Registry
	entryRef   ir.BlockRef
	traceDepth int

	scratchPool sync.Pool

	// mu guards the session registry, the session-ID counter, and the
	// retired aggregates. It is taken on session open/close and by
	// aggregate readers — never on the check path.
	mu              sync.Mutex
	sessions        []*Checker
	nextSession     int
	retired         statCounters
	retiredWarnings []Anomaly
}

// scratch is one session's recyclable simulation storage: the frame stack
// and the flat bump arenas behind it, plus the DMA writeback journal. All
// of it is length-trimmed (capacity kept) between owners.
type scratch struct {
	frames    []simFrame
	tempArena []uint64
	flagArena []interp.Flags
	dmaLog    []dmaWrite
}

// NewShared seals the specification once and returns the engine that
// enforces it across sessions. Options fix the check configuration every
// session inherits; WithReferenceSimulation is rejected — the reference
// engine walks the mutable Spec and exists for differential testing, not
// for concurrent deployment.
func NewShared(spec *core.Spec, opts ...Option) *Shared {
	tmpl := baseChecker()
	for _, o := range opts {
		o(tmpl)
	}
	if tmpl.useRef {
		panic("checker: WithReferenceSimulation is incompatible with a shared engine")
	}
	s := &Shared{
		spec:          spec,
		sealed:        spec.Seal(),
		prog:          spec.Program(),
		mode:          tmpl.mode,
		enabled:       tmpl.enabled,
		budget:        tmpl.budget,
		accessControl: tmpl.accessControl,
		env:           tmpl.env,
		haltFn:        tmpl.haltFn,
		reg:           tmpl.obsReg,
		traceDepth:    tmpl.traceDepth,
	}
	if s.reg == nil {
		s.reg = obs.Default()
	}
	if es := spec.Block(spec.Entry); es != nil {
		s.entryTemps = s.prog.Handlers[es.Ref.Handler].NumTemps
		s.entryRef = es.Ref
	}
	s.scratchPool.New = func() any { return &scratch{} }
	return s
}

// Mode returns the working mode every session enforces.
func (s *Shared) Mode() Mode { return s.mode }

// Sealed exposes the shared sealed specification (diagnostics, tests).
func (s *Shared) Sealed() *core.SealedSpec { return s.sealed }

// NewSession opens an enforcement session: a Checker sharing this
// engine's sealed spec, with its own shadow device state cloned from
// initial and its own recycled scratch. Per-session options typically
// wire the session's machine (WithEnv, WithHalt); WithReferenceSimulation
// panics. The returned Checker is driven by one goroutine, concurrently
// with any number of sibling sessions.
//
// Every session gets its own flight recorder registered with the
// engine's observability registry, under an auto-assigned session ID
// unless WithSessionID fixed one. Per-recorder event rings and metric
// banks mean sibling sessions never write a shared cache line for
// telemetry, preserving the engine's no-cross-session-traffic property.
func (s *Shared) NewSession(initial *interp.State, opts ...Option) *Checker {
	c := &Checker{
		spec:          s.spec,
		sealed:        s.sealed,
		prog:          s.prog,
		mode:          s.mode,
		enabled:       s.enabled,
		budget:        s.budget,
		accessControl: s.accessControl,
		entryTemps:    s.entryTemps,
		env:           s.env,
		haltFn:        s.haltFn,
		shadow:        s.spec.InitialShadow(initial),
		shared:        s,
		sessionID:     -1,
		traceDepth:    s.traceDepth,
		obsReg:        s.reg,
		entryRef:      s.entryRef,
	}
	for _, o := range opts {
		o(c)
	}
	if c.useRef {
		panic("checker: WithReferenceSimulation is incompatible with a shared engine")
	}
	if c.env == nil {
		c.env = interp.NopEnv()
	}
	sc := s.scratchPool.Get().(*scratch)
	c.pooled = sc
	c.frames = sc.frames[:0]
	c.tempArena = sc.tempArena[:0]
	c.flagArena = sc.flagArena[:0]
	c.dmaLog = sc.dmaLog[:0]

	s.mu.Lock()
	if c.sessionID < 0 {
		c.sessionID = s.nextSession
		s.nextSession++
	} else if c.sessionID >= s.nextSession {
		s.nextSession = c.sessionID + 1
	}
	s.sessions = append(s.sessions, c)
	s.mu.Unlock()
	if !c.recSet {
		c.rec = c.obsReg.NewRecorder(s.spec.Device, c.sessionID, obs.DefaultRingSize)
	}
	return c
}

// Close retires a session checker: its counters fold into the shared
// retired bank, its warnings drain into the shared buffer, its flight
// recorder folds into the observability registry, and its scratch
// returns to the pool for the next session. Closing is optional — a
// session abandoned without Close simply keeps its scratch — and
// idempotent. The checker must not be used after Close.
func (c *Checker) Close() {
	s := c.shared
	if s == nil {
		return
	}
	c.shared = nil

	if c.rec != nil {
		c.rec.Close()
	}

	s.mu.Lock()
	for i, sess := range s.sessions {
		if sess == c {
			s.sessions = append(s.sessions[:i], s.sessions[i+1:]...)
			break
		}
	}
	snap := c.stats.snapshot()
	s.retired.rounds.Add(snap.Rounds)
	s.retired.paramAnomalies.Add(snap.ParamAnomalies)
	s.retired.indirectAnomalies.Add(snap.IndirectAnomalies)
	s.retired.condAnomalies.Add(snap.CondAnomalies)
	s.retired.blocked.Add(snap.Blocked)
	s.retired.warnings.Add(snap.Warnings)
	s.retired.resyncs.Add(snap.Resyncs)
	s.retired.stepsSimulated.Add(snap.StepsSimulated)
	s.retired.syncPointsResolved.Add(snap.SyncPointsResolved)
	c.warnMu.Lock()
	s.retiredWarnings = append(s.retiredWarnings, c.warnings...)
	c.warnings = nil
	c.warnMu.Unlock()
	s.mu.Unlock()

	if sc := c.pooled; sc != nil {
		c.pooled = nil
		sc.frames = c.frames[:0]
		sc.tempArena = c.tempArena[:0]
		sc.flagArena = c.flagArena[:0]
		sc.dmaLog = c.dmaLog[:0]
		c.frames, c.tempArena, c.flagArena, c.dmaLog = nil, nil, nil, nil
		s.scratchPool.Put(sc)
	}
}

// Sessions reports the number of open sessions.
func (s *Shared) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Stats aggregates counters across all sessions, open and retired. It may
// be called while sessions run: per-field sums are exact at the atomic
// loads, with cross-field skew bounded by in-flight rounds.
func (s *Shared) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	agg := s.retired.snapshot()
	for _, c := range s.sessions {
		agg = agg.merge(c.stats.snapshot())
	}
	return agg
}

// Warnings copies every session's accumulated warnings, retired sessions
// first, then open sessions in open order. Within a session the warnings
// keep their round order; across concurrently-running sessions there is
// no global order to report.
func (s *Shared) Warnings() []Anomaly {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]Anomaly(nil), s.retiredWarnings...)
	for _, c := range s.sessions {
		out = append(out, c.Warnings()...)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ClearWarnings discards every accumulated warning — the retired buffer
// and each open session's — keeping the buffers' capacity so later
// rounds do not re-allocate. Like the per-Checker ClearWarnings, it is
// meant for the gap between experiments; warnings raised concurrently
// with the clear land in whichever side of it their lock acquisition
// orders them.
func (s *Shared) ClearWarnings() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retiredWarnings = s.retiredWarnings[:0]
	for _, c := range s.sessions {
		c.ClearWarnings()
	}
}

// Registry returns the observability registry the engine's sessions
// report into.
func (s *Shared) Registry() *obs.Registry { return s.reg }

// Metrics returns the engine's device row from the observability
// registry: one MetricsSnapshot aggregating every session's recorder,
// open and retired. Safe to call while sessions run.
func (s *Shared) Metrics() obs.MetricsSnapshot {
	return s.reg.Snapshot().Device(s.spec.Device)
}
