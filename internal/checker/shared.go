package checker

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
	"sedspec/internal/obs"
	"sedspec/internal/obs/coverage"
	"sedspec/internal/obs/span"
)

// specVersion is one immutable generation of the enforced specification:
// the spec, its sealed runtime form, and the entry-block material every
// round needs. The shared engine publishes versions through an atomic
// pointer; sessions adopt the current version at round boundaries, so one
// round always runs entirely against one version.
type specVersion struct {
	gen        uint64
	spec       *core.Spec
	sealed     *core.SealedSpec
	prog       *ir.Program
	entryTemps int
	entryRef   ir.BlockRef
	// tprog is the version's threaded-code stream with handlers bound.
	// Compiled once at publication and immutable afterwards — like the
	// sealed spec itself — so RCU adoption is a pointer assignment and
	// every session dispatches over the same shared stream.
	tprog *threadedProg
}

// newSpecVersion seals a spec into a publishable version.
func newSpecVersion(spec *core.Spec, gen uint64) *specVersion {
	sp := span.Default().Start("seal", span.Device(spec.Device))
	sealed := spec.Seal()
	sp.End(span.Gen(gen))
	v := &specVersion{
		gen:    gen,
		spec:   spec,
		sealed: sealed,
		prog:   spec.Program(),
	}
	if es := spec.Block(spec.Entry); es != nil {
		v.entryTemps = v.prog.Handlers[es.Ref.Handler].NumTemps
		v.entryRef = es.Ref
	}
	v.tprog = buildThreaded(sealed)
	return v
}

// Shared is the cross-session half of the concurrent enforcement engine:
// one specification sealed once, enforced for N parallel guest sessions.
//
// What is shared is exactly the immutable material — the current
// specVersion (SealedSpec, device program, entry material) and the check
// configuration (mode, strategies, budget, access control). Everything a
// simulated round mutates is per-session: the shadow device state, command
// tracking, frame stack, bump arenas, DMA journal, warning buffer, and
// counters. A session's steady-state check path therefore takes no lock
// and touches no cache line another session writes; the only
// cross-session traffic is read-only spec data plus one atomic load of
// the version pointer per round.
//
// Swap replaces the enforced specification under running sessions,
// RCU-style: a new version is published through the atomic pointer, each
// session adopts it at its next round boundary, and Swap returns only
// after the grace period — once every round that may still be walking the
// old version has finished. No round is dropped or double-checked.
//
// Session scratch (frame stack and bump arenas) is recycled through a
// sync.Pool so that short-lived sessions — one per connecting guest in a
// fleet deployment — start with warm, right-sized arenas instead of
// re-growing them over their first rounds.
//
// Counters are per-session atomics; Stats sums live sessions plus the
// retired bank that Close folds finished sessions into, so aggregate
// accounting survives session churn.
type Shared struct {
	device string
	// cur is the published spec version. Sessions load it once per round;
	// Swap stores a successor and grace-waits.
	cur atomic.Pointer[specVersion]

	mode          Mode
	enabled       [4]bool
	budget        int
	accessControl bool

	// env and haltFn are session defaults, overridable per session with
	// WithEnv / WithHalt (each guest's machine is its own environment).
	env    interp.Env
	haltFn func()

	// reg is the observability registry every session's flight recorder
	// reports into; traceDepth is the session default for anomaly freezes.
	reg        *obs.Registry
	traceDepth int

	scratchPool sync.Pool

	// swaps counts published versions beyond the first.
	swaps atomic.Uint64

	// mu guards the session registry, the session-ID counter, the retired
	// aggregates, and version publication ordering. It is taken on session
	// open/close, by aggregate readers, and by Swap — never on the check
	// path.
	mu              sync.Mutex
	sessions        []*Checker
	nextSession     int
	retired         statCounters
	retiredWarnings []Anomaly
	retiredAudit    []AuditRecord

	// covOff is the engine-wide coverage switch sessions inherit.
	// retiredCov accumulates closed sessions' coverage counters, keyed by
	// spec generation (counter index spaces are per-generation).
	covOff     bool
	retiredCov map[uint64]*coverage.Snapshot

	// useWalker is the engine-wide dispatch default sessions inherit
	// (WithThreadedDispatch on the Shared constructor); individual
	// sessions may still override it.
	useWalker bool
}

// scratch is one session's recyclable simulation storage: the frame stack
// and the flat bump arenas behind it, plus the DMA writeback journal. All
// of it is length-trimmed (capacity kept) between owners.
type scratch struct {
	frames    []simFrame
	tempArena []uint64
	flagArena []interp.Flags
	dmaLog    []dmaWrite
}

// NewShared seals the specification once and returns the engine that
// enforces it across sessions. Options fix the check configuration every
// session inherits; WithReferenceSimulation is rejected — the reference
// engine walks the mutable Spec and exists for differential testing, not
// for concurrent deployment.
func NewShared(spec *core.Spec, opts ...Option) *Shared {
	tmpl := baseChecker()
	for _, o := range opts {
		o(tmpl)
	}
	if tmpl.useRef {
		panic("checker: WithReferenceSimulation is incompatible with a shared engine")
	}
	s := &Shared{
		device:        spec.Device,
		mode:          tmpl.mode,
		enabled:       tmpl.enabled,
		budget:        tmpl.budget,
		accessControl: tmpl.accessControl,
		env:           tmpl.env,
		haltFn:        tmpl.haltFn,
		reg:           tmpl.obsReg,
		traceDepth:    tmpl.traceDepth,
		covOff:        tmpl.covOff,
		useWalker:     tmpl.useWalker,
		retiredCov:    make(map[uint64]*coverage.Snapshot),
	}
	if s.reg == nil {
		s.reg = obs.Default()
	}
	s.cur.Store(newSpecVersion(spec, 1))
	s.scratchPool.New = func() any { return &scratch{} }
	return s
}

// Mode returns the working mode every session enforces.
func (s *Shared) Mode() Mode { return s.mode }

// Sealed exposes the current sealed specification (diagnostics, tests).
func (s *Shared) Sealed() *core.SealedSpec { return s.cur.Load().sealed }

// Spec returns the current specification version's spec.
func (s *Shared) Spec() *core.Spec { return s.cur.Load().spec }

// Generation returns the current spec version's generation (1 before any
// swap, +1 per swap).
func (s *Shared) Generation() uint64 { return s.cur.Load().gen }

// SwapCount returns how many hot-swaps the engine has applied.
func (s *Shared) SwapCount() uint64 { return s.swaps.Load() }

// compatiblePrograms checks that a replacement spec's program presents
// the same runtime shape as the current one: same device, control
// structure layout, and handler/temp geometry. A session's shadow device
// state and recycled arenas survive a swap only under these invariants.
func compatiblePrograms(old, repl *ir.Program) error {
	if old == repl {
		return nil
	}
	if old.Name != repl.Name {
		return fmt.Errorf("checker: swap: program %q does not match %q", repl.Name, old.Name)
	}
	if old.ArenaSize != repl.ArenaSize || len(old.Fields) != len(repl.Fields) {
		return fmt.Errorf("checker: swap: control structure layout changed (%d/%d bytes, %d/%d fields)",
			repl.ArenaSize, old.ArenaSize, len(repl.Fields), len(old.Fields))
	}
	if len(old.Handlers) != len(repl.Handlers) {
		return fmt.Errorf("checker: swap: handler count changed (%d -> %d)",
			len(old.Handlers), len(repl.Handlers))
	}
	for i := range old.Handlers {
		if old.Handlers[i].NumTemps != repl.Handlers[i].NumTemps ||
			len(old.Handlers[i].Blocks) != len(repl.Handlers[i].Blocks) {
			return fmt.Errorf("checker: swap: handler %q geometry changed", old.Handlers[i].Name)
		}
	}
	return nil
}

// Swap atomically replaces the enforced specification with spec and waits
// out the grace period: on return, every session round that may have been
// walking the previous version has completed, and every subsequent round
// checks against the new version. Sessions in between rounds pick the new
// version up at their next PreIO; no I/O check is dropped, and no round
// observes two versions.
//
// The replacement must be for the same device and structurally compatible
// with the current program (sessions' shadow states survive the swap).
// Swap may be called from any goroutine; concurrent Swaps serialize.
func (s *Shared) Swap(spec *core.Spec) error {
	if spec.Device != s.device {
		return fmt.Errorf("checker: swap: spec is for device %q, engine enforces %q", spec.Device, s.device)
	}
	if err := compatiblePrograms(s.cur.Load().prog, spec.Program()); err != nil {
		return err
	}
	// Seal outside the lock: sealing cost scales with spec size and must
	// not extend the window during which sessions are blocked from
	// opening/closing.
	sp := span.Default().Start("swap", span.Device(s.device))
	sealed := newSpecVersion(spec, 0)

	s.mu.Lock()
	old := s.cur.Load()
	sealed.gen = old.gen + 1
	s.cur.Store(sealed)
	sessions := append([]*Checker(nil), s.sessions...)
	s.mu.Unlock()
	s.swaps.Add(1)
	if s.reg != nil {
		s.reg.CountSwap(s.device)
	}

	// Grace period. A session's epoch is odd while it is inside PreIO
	// (mid-round) and even between rounds. Any round entered after the
	// Store above adopts the new version, so the old version remains
	// reachable only by rounds whose epoch was already odd at publication
	// time; wait for each of those epochs to advance.
	for _, c := range sessions {
		e := c.epoch.Load()
		if e&1 == 0 {
			continue
		}
		for c.epoch.Load() == e {
			runtime.Gosched()
		}
	}
	sp.End(span.Gen(sealed.gen))
	return nil
}

// NewSession opens an enforcement session: a Checker sharing this
// engine's sealed spec, with its own shadow device state cloned from
// initial and its own recycled scratch. Per-session options typically
// wire the session's machine (WithEnv, WithHalt); WithReferenceSimulation
// panics. The returned Checker is driven by one goroutine, concurrently
// with any number of sibling sessions.
//
// Every session gets its own flight recorder registered with the
// engine's observability registry, under an auto-assigned session ID
// unless WithSessionID fixed one. Per-recorder event rings and metric
// banks mean sibling sessions never write a shared cache line for
// telemetry, preserving the engine's no-cross-session-traffic property.
func (s *Shared) NewSession(initial *interp.State, opts ...Option) *Checker {
	v := s.cur.Load()
	c := &Checker{
		spec:          v.spec,
		sealed:        v.sealed,
		prog:          v.prog,
		ver:           v,
		specGen:       v.gen,
		mode:          s.mode,
		enabled:       s.enabled,
		budget:        s.budget,
		accessControl: s.accessControl,
		entryTemps:    v.entryTemps,
		env:           s.env,
		haltFn:        s.haltFn,
		shadow:        v.spec.InitialShadow(initial),
		shared:        s,
		sessionID:     -1,
		traceDepth:    s.traceDepth,
		obsReg:        s.reg,
		entryRef:      v.entryRef,
	}
	c.covOff = s.covOff
	c.useWalker = s.useWalker
	for _, o := range opts {
		o(c)
	}
	if c.useRef {
		panic("checker: WithReferenceSimulation is incompatible with a shared engine")
	}
	if !c.useWalker {
		c.tprog = v.tprog
	}
	if c.env == nil {
		c.env = interp.NopEnv()
	}
	if !c.covOff {
		c.cov = coverage.NewMap(v.sealed.NumBlocks(), v.sealed.NumEdges())
		c.covGens = append(c.covGens, covGen{gen: v.gen, m: c.cov})
	}
	sc := s.scratchPool.Get().(*scratch)
	c.pooled = sc
	c.frames = sc.frames[:0]
	c.tempArena = sc.tempArena[:0]
	c.flagArena = sc.flagArena[:0]
	c.dmaLog = sc.dmaLog[:0]

	s.mu.Lock()
	if c.sessionID < 0 {
		c.sessionID = s.nextSession
		s.nextSession++
	} else if c.sessionID >= s.nextSession {
		s.nextSession = c.sessionID + 1
	}
	s.sessions = append(s.sessions, c)
	s.mu.Unlock()
	if !c.recSet {
		c.rec = c.obsReg.NewRecorder(s.device, c.sessionID, obs.DefaultRingSize)
	}
	return c
}

// Close retires a session checker: its counters fold into the shared
// retired bank, its warnings and audit records drain into the shared
// buffers, its flight recorder folds into the observability registry, and
// its scratch returns to the pool for the next session. A serial checker
// (built with New) closes just its recorder. Closing is idempotent; the
// checker must not be used after Close.
func (c *Checker) Close() {
	if c.rec != nil {
		c.rec.Close()
	}
	s := c.shared
	if s == nil {
		return
	}
	c.shared = nil

	s.mu.Lock()
	for i, sess := range s.sessions {
		if sess == c {
			s.sessions = append(s.sessions[:i], s.sessions[i+1:]...)
			break
		}
	}
	snap := c.stats.snapshot()
	s.retired.rounds.Add(snap.Rounds)
	s.retired.paramAnomalies.Add(snap.ParamAnomalies)
	s.retired.indirectAnomalies.Add(snap.IndirectAnomalies)
	s.retired.condAnomalies.Add(snap.CondAnomalies)
	s.retired.blocked.Add(snap.Blocked)
	s.retired.warnings.Add(snap.Warnings)
	s.retired.resyncs.Add(snap.Resyncs)
	s.retired.stepsSimulated.Add(snap.StepsSimulated)
	s.retired.syncPointsResolved.Add(snap.SyncPointsResolved)
	c.warnMu.Lock()
	s.retiredWarnings = append(s.retiredWarnings, c.warnings...)
	c.warnings = nil
	s.retiredAudit = append(s.retiredAudit, c.audit...)
	c.audit = nil
	for _, cg := range c.covGens {
		acc := s.retiredCov[cg.gen]
		if acc == nil {
			acc = &coverage.Snapshot{}
			s.retiredCov[cg.gen] = acc
		}
		// The caller owns the quiesced session, so publishing its pending
		// counts here is safe; the fold then loses nothing.
		cg.m.Flush()
		acc.Merge(cg.m.Snapshot())
	}
	c.covGens = nil
	c.cov = nil
	c.warnMu.Unlock()
	s.mu.Unlock()

	if sc := c.pooled; sc != nil {
		c.pooled = nil
		sc.frames = c.frames[:0]
		sc.tempArena = c.tempArena[:0]
		sc.flagArena = c.flagArena[:0]
		sc.dmaLog = c.dmaLog[:0]
		c.frames, c.tempArena, c.flagArena, c.dmaLog = nil, nil, nil, nil
		s.scratchPool.Put(sc)
	}
}

// Sessions reports the number of open sessions.
func (s *Shared) Sessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Stats aggregates counters across all sessions, open and retired. It may
// be called while sessions run: per-field sums are exact at the atomic
// loads, with cross-field skew bounded by in-flight rounds.
func (s *Shared) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	agg := s.retired.snapshot()
	for _, c := range s.sessions {
		agg = agg.merge(c.stats.snapshot())
	}
	return agg
}

// Warnings copies every session's accumulated warnings, retired sessions
// first, then open sessions in open order. Within a session the warnings
// keep their round order; across concurrently-running sessions there is
// no global order to report.
func (s *Shared) Warnings() []Anomaly {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]Anomaly(nil), s.retiredWarnings...)
	for _, c := range s.sessions {
		out = append(out, c.Warnings()...)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ClearWarnings discards every accumulated warning — the retired buffer
// and each open session's — keeping the buffers' capacity so later
// rounds do not re-allocate. Like the per-Checker ClearWarnings, it is
// meant for the gap between experiments; warnings raised concurrently
// with the clear land in whichever side of it their lock acquisition
// orders them.
func (s *Shared) ClearWarnings() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retiredWarnings = s.retiredWarnings[:0]
	for _, c := range s.sessions {
		c.ClearWarnings()
	}
}

// Audit copies every session's accumulated audit records (the warning
// replays the enhancement pipeline feeds on), retired sessions first.
func (s *Shared) Audit() []AuditRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]AuditRecord(nil), s.retiredAudit...)
	for _, c := range s.sessions {
		out = append(out, c.Audit()...)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ClearAudit discards every accumulated audit record, retired and
// per-session, typically after an enhancement pass consumed them.
func (s *Shared) ClearAudit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retiredAudit = s.retiredAudit[:0]
	for _, c := range s.sessions {
		c.ClearAudit()
	}
}

// CoverageSnapshots aggregates ES-CFG coverage across every session,
// open and retired, keyed by spec generation. Counter index spaces are
// per-generation (each sealing assigns its own block and edge slots), so
// cross-generation counts never mix. Safe to call while sessions run:
// counters only grow, so a concurrent snapshot is a consistent lower
// bound.
func (s *Shared) CoverageSnapshots() map[uint64]*coverage.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]*coverage.Snapshot, len(s.retiredCov))
	for gen, snap := range s.retiredCov {
		out[gen] = snap.Clone()
	}
	for _, c := range s.sessions {
		for _, cg := range c.coverageGens() {
			acc := out[cg.gen]
			if acc == nil {
				acc = &coverage.Snapshot{}
				out[cg.gen] = acc
			}
			acc.Merge(cg.m.Snapshot())
		}
	}
	return out
}

// CoverageProfile relates the current generation's aggregate coverage to
// its sealed structure and training baseline; nil when coverage is
// disabled.
func (s *Shared) CoverageProfile() *coverage.Profile {
	if s.covOff {
		return nil
	}
	v := s.cur.Load()
	return v.sealed.CoverageProfile(v.gen, s.CoverageSnapshots()[v.gen])
}

// Registry returns the observability registry the engine's sessions
// report into.
func (s *Shared) Registry() *obs.Registry { return s.reg }

// Metrics returns the engine's device row from the observability
// registry: one MetricsSnapshot aggregating every session's recorder,
// open and retired. Safe to call while sessions run.
func (s *Shared) Metrics() obs.MetricsSnapshot {
	return s.reg.Snapshot().Device(s.device)
}
