package checker_test

import (
	"errors"
	"testing"

	"sedspec"
	"sedspec/internal/checker"
	"sedspec/internal/devices/testdev"
	"sedspec/internal/interp"
	"sedspec/internal/machine"
)

// captureReqs records the benign request stream and the device state it
// started from, so the stream can be replayed straight into checkers.
type captureReqs struct {
	reqs []*interp.Request
}

func (c *captureReqs) PreIO(_ machine.Device, req *interp.Request) error {
	cl := &interp.Request{Space: req.Space, Addr: req.Addr, Write: req.Write}
	if len(req.Data) > 0 {
		cl.Data = append([]byte(nil), req.Data...)
	}
	c.reqs = append(c.reqs, cl)
	return nil
}

// benignStream learns the testdev spec and captures the benign request
// stream plus the state snapshot it starts from.
func benignStream(t *testing.T) (*sedspec.Spec, []*interp.Request, *interp.State, *machine.Attached) {
	t.Helper()
	_, att := setup(t)
	spec := learn(t, att)
	start := att.Dev().State().Clone()
	cap := &captureReqs{}
	att.AddInterposer(cap)
	if err := benign(sedspec.NewDriver(att)); err != nil {
		t.Fatal(err)
	}
	att.ClearInterposers()
	if len(cap.reqs) == 0 {
		t.Fatal("empty capture")
	}
	return spec, cap.reqs, start, att
}

var batchEngines = []struct {
	name string
	opts []checker.Option
}{
	{"threaded", nil},
	{"walker", []checker.Option{checker.WithThreadedDispatch(false)}},
	{"reference", []checker.Option{checker.WithReferenceSimulation()}},
}

// TestPreIOBatchMatchesSequentialBenign replays the same benign stream
// through PreIO round by round and through PreIOBatch at several batch
// sizes, for all three engines: counters must be identical and every
// batched verdict clean.
func TestPreIOBatchMatchesSequentialBenign(t *testing.T) {
	spec, reqs, start, att := benignStream(t)
	for _, eng := range batchEngines {
		opts := append([]checker.Option{checker.WithEnv(att)}, eng.opts...)

		seq := checker.New(spec, start, opts...)
		for _, req := range reqs {
			if err := seq.PreIO(nil, req); err != nil {
				t.Fatalf("%s: sequential PreIO: %v", eng.name, err)
			}
		}
		want := seq.Stats()
		if want.Rounds == 0 || want.StepsSimulated == 0 {
			t.Fatalf("%s: degenerate baseline: %+v", eng.name, want)
		}

		for _, size := range []int{1, 3, 7, len(reqs)} {
			chk := checker.New(spec, start, opts...)
			for i := 0; i < len(reqs); i += size {
				end := i + size
				if end > len(reqs) {
					end = len(reqs)
				}
				vs := chk.PreIOBatch(reqs[i:end])
				for k, v := range vs {
					if !v.Checked || v.Blocked || v.Err != nil {
						t.Fatalf("%s/size=%d: request %d verdict %+v, want clean",
							eng.name, size, i+k, v)
					}
				}
			}
			if got := chk.Stats(); got != want {
				t.Errorf("%s/size=%d: stats diverge:\n  got:  %+v\n  want: %+v",
					eng.name, size, got, want)
			}
		}
	}
}

// diagStream builds a request stream with an untrained CmdDiag round in
// the middle of benign traffic.
func diagStream(reqs []*interp.Request) []*interp.Request {
	mid := len(reqs) / 2
	out := append([]*interp.Request(nil), reqs[:mid]...)
	out = append(out, interp.NewWrite(interp.SpacePIO, testdev.PortCmd, []byte{testdev.CmdDiag}))
	out = append(out, reqs[mid:]...)
	return out
}

// TestDispatchBatchWarningMatchesDirect delivers a stream containing an
// untrained command through DispatchBatch under enhancement mode and
// requires the full observable outcome — stats, warnings, device state —
// to match the same stream delivered round by round. The warning round
// short-circuits the batch (the shadow desynchronized), and PostIO's
// resync happens before the tail is re-presented.
func TestDispatchBatchWarningMatchesDirect(t *testing.T) {
	run := func(batch bool) (checker.Stats, []checker.Anomaly, []byte) {
		_, att := setup(t)
		spec := learn(t, att)
		chk := sedspec.Protect(att, spec, checker.WithMode(checker.ModeEnhancement))
		cap := &captureReqs{}
		att.AddInterposer(cap)
		if err := benign(sedspec.NewDriver(att)); err != nil {
			t.Fatal(err)
		}
		att.ClearInterposers()
		// Re-protect on a fresh machine so the replay starts from the
		// same state the capture did.
		_, att2 := setup(t)
		spec2 := learn(t, att2)
		chk = sedspec.Protect(att2, spec2, checker.WithMode(checker.ModeEnhancement))
		stream := diagStream(cap.reqs)
		if batch {
			if _, err := att2.DispatchBatch(stream); err != nil {
				t.Fatalf("DispatchBatch: %v", err)
			}
		} else {
			for _, req := range stream {
				if _, err := att2.DispatchDirect(req); err != nil {
					t.Fatalf("DispatchDirect: %v", err)
				}
			}
		}
		state := append([]byte(nil), att2.Dev().State().Bytes()...)
		return chk.Stats(), chk.Warnings(), state
	}

	ds, dw, dst := run(false)
	bs, bw, bst := run(true)
	if ds != bs {
		t.Errorf("stats diverge:\n  direct: %+v\n  batch:  %+v", ds, bs)
	}
	if len(dw) != len(bw) {
		t.Fatalf("warnings diverge: direct %d, batch %d", len(dw), len(bw))
	}
	for i := range dw {
		if dw[i].Strategy != bw[i].Strategy || dw[i].Round != bw[i].Round ||
			dw[i].Detail != bw[i].Detail {
			t.Errorf("warning %d diverges:\n  direct: %+v\n  batch:  %+v", i, dw[i], bw[i])
		}
	}
	if string(dst) != string(bst) {
		t.Error("device state diverges between direct and batched delivery")
	}
	if ds.Warnings == 0 {
		t.Error("stream should have warned")
	}
}

// TestDispatchBatchBlockedMatchesDirect delivers the same stream under
// protection mode: the untrained command must be blocked at the same
// round with the same anomaly whether delivered batched or round by
// round, and the requests after it must never reach the device.
func TestDispatchBatchBlockedMatchesDirect(t *testing.T) {
	run := func(batch bool) (checker.Stats, *checker.Anomaly, []byte) {
		_, att := setup(t)
		spec := learn(t, att)
		sedspec.Protect(att, spec)
		cap := &captureReqs{}
		att.AddInterposer(cap)
		if err := benign(sedspec.NewDriver(att)); err != nil {
			t.Fatal(err)
		}
		att.ClearInterposers()
		_, att2 := setup(t)
		spec2 := learn(t, att2)
		chk := sedspec.Protect(att2, spec2)
		stream := diagStream(cap.reqs)
		var anom *checker.Anomaly
		var err error
		if batch {
			_, err = att2.DispatchBatch(stream)
		} else {
			for _, req := range stream {
				if _, err = att2.DispatchDirect(req); err != nil {
					break
				}
			}
		}
		if !errors.Is(err, machine.ErrBlocked) || !errors.As(err, &anom) {
			t.Fatalf("want blocked anomaly, got %v", err)
		}
		state := append([]byte(nil), att2.Dev().State().Bytes()...)
		return chk.Stats(), anom, state
	}

	ds, da, dst := run(false)
	bs, ba, bst := run(true)
	if ds != bs {
		t.Errorf("stats diverge:\n  direct: %+v\n  batch:  %+v", ds, bs)
	}
	if da.Strategy != ba.Strategy || da.Round != ba.Round || da.Detail != ba.Detail {
		t.Errorf("blocking anomaly diverges:\n  direct: %+v\n  batch:  %+v", da, ba)
	}
	if string(dst) != string(bst) {
		t.Error("device state diverges between direct and batched delivery")
	}
	if ds.Blocked != 1 {
		t.Errorf("blocked = %d, want 1", ds.Blocked)
	}
}

// TestPreIOBatchEmpty checks the degenerate batch.
func TestPreIOBatchEmpty(t *testing.T) {
	spec, _, start, att := benignStream(t)
	chk := checker.New(spec, start, checker.WithEnv(att))
	if vs := chk.PreIOBatch(nil); len(vs) != 0 {
		t.Errorf("empty batch returned %d verdicts", len(vs))
	}
	if st := chk.Stats(); st.Rounds != 0 {
		t.Errorf("empty batch counted rounds: %+v", st)
	}
}
