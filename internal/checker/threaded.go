package checker

import (
	"encoding/binary"
	"fmt"

	"sedspec/internal/core"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
)

// simulateThreaded is the third check engine: direct threaded-code
// dispatch over the stream core.lowerThreaded compiled at Seal time. The
// hot loop is two loads and an indirect call per instruction —
//
//	for pc >= 0 { i := &code[pc]; pc = i.fn(c, i) }
//
// — with no op-code re-decoding, no block-table lookups on transitions
// (successor pcs are compiled in), no per-op step-counter writes (step
// totals are batched per block via TOp.StepsAt), and preplanned call
// frames (callee entry pc and temp-bank size are instruction immediates).
// The peephole-fused instructions execute two walker ops per dispatch.
//
// The engine is behaviourally identical to the sealed walker: every
// anomaly string, step count, coverage tick, and shadow mutation matches,
// and the three-way differential test in the repository root pins all
// engines to byte-identical anomaly streams. Steady-state rounds allocate
// nothing.

// Negative pc sentinels returned by handlers to end the dispatch loop.
const (
	// tpcDone ends the round cleanly (final return or halt).
	tpcDone int32 = -1
	// tpcStop ends the round silently after a mid-round stop (frames
	// cleared by a disabled-strategy path or an arena escape).
	tpcStop int32 = -2
	// tpcAnom ends the round with the anomaly parked in Checker.tanom.
	tpcAnom int32 = -3
)

// thandler executes one threaded instruction and returns the next pc.
type thandler func(*Checker, *tinstr) int32

// tinstr pairs the compiled instruction with its resolved handler. The
// stream is per-engine (built once per adopted spec version) so the
// function pointers live next to the operands they dispatch on. The
// width of each operand bank is pre-resolved into its value mask and bit
// count so ALU and compare handlers never re-derive them per dispatch.
type tinstr struct {
	fn thandler
	core.TOp
	mask, mask2 uint64 // Width.Mask() / Width2.Mask()
	bits, bits2 uint8  // Width.Bits() / Width2.Bits()
}

// threadedProg is a spec version's executable stream: the shared
// ThreadedCode with handlers bound. Immutable after build, shared by every
// session that adopts the version.
type threadedProg struct {
	code    []tinstr
	blockPC []int32
	entry   int32
}

// buildThreaded binds handlers to a sealed spec's compiled stream.
func buildThreaded(sealed *core.SealedSpec) *threadedProg {
	tc := sealed.Threaded()
	code := make([]tinstr, len(tc.Instrs))
	for i := range tc.Instrs {
		fn := tHandlers[tc.Instrs[i].Kind]
		if fn == nil {
			panic(fmt.Sprintf("checker: no handler for threaded instruction kind %v", tc.Instrs[i].Kind))
		}
		op := &tc.Instrs[i]
		code[i] = tinstr{
			fn: fn, TOp: *op,
			mask: op.Width.Mask(), bits: uint8(op.Width.Bits()),
			mask2: op.Width2.Mask(), bits2: uint8(op.Width2.Bits()),
		}
	}
	return &threadedProg{code: code, blockPC: tc.BlockPC, entry: tc.EntryPC}
}

// tHandlers maps instruction kinds to their handlers. Filled by init to
// keep the handler functions free to reference each other.
var tHandlers [int(core.TDangling) + 1]thandler

func init() {
	tHandlers[core.TNop] = tNopH
	tHandlers[core.TConst] = tConstH
	tHandlers[core.TLoad] = tLoadH
	tHandlers[core.TLoadFunc] = tLoadFuncH
	tHandlers[core.TArith] = tArithH
	tHandlers[core.TStore] = tStoreH
	tHandlers[core.TStoreFunc] = tStoreFuncH
	tHandlers[core.TBufLoad] = tBufLoadH
	tHandlers[core.TBufStore] = tBufStoreH
	tHandlers[core.TIOToBuf] = tIOToBufH
	tHandlers[core.TDMAToBuf] = tDMAToBufH
	tHandlers[core.TDMAFromBuf] = tDMAFromBufH
	tHandlers[core.TDMARead] = tDMAReadH
	tHandlers[core.TDMAWrite] = tDMAWriteH
	tHandlers[core.TIOIn] = tIOInH
	tHandlers[core.TIOAddr] = tIOAddrH
	tHandlers[core.TIOLen] = tIOLenH
	tHandlers[core.TIOIsWrite] = tIOIsWriteH
	tHandlers[core.TEnvRead] = tEnvReadH
	tHandlers[core.TCall] = tCallH
	tHandlers[core.TCallPtr] = tCallPtrH
	tHandlers[core.TLoadArith] = tLoadArithH
	tHandlers[core.TConstArith] = tConstArithH
	tHandlers[core.TBufLoadStore] = tBufLoadStoreH
	tHandlers[core.TConstStore] = tConstStoreH
	tHandlers[core.TArithStore] = tArithStoreH
	tHandlers[core.TLoadConst] = tLoadConstH
	tHandlers[core.TConstConst] = tConstConstH
	tHandlers[core.TConstBufStore] = tConstBufStoreH
	tHandlers[core.TBufStoreConst] = tBufStoreConstH
	tHandlers[core.TStoreConst] = tStoreConstH
	tHandlers[core.TStoreLoad] = tStoreLoadH
	tHandlers[core.THalt] = tHaltH
	tHandlers[core.TReturn] = tReturnH
	tHandlers[core.TNext] = tNextH
	tHandlers[core.TNoSucc] = tNoSuccH
	tHandlers[core.TBranch] = tBranchH
	tHandlers[core.TBranchArith] = tBranchArithH
	tHandlers[core.TSwitch] = tSwitchH
	tHandlers[core.TDangling] = tDanglingH
}

// simulateThreaded runs one round over the compiled stream. Round framing
// (entry push, coverage round-end, step accounting) mirrors simulateSealed.
func (c *Checker) simulateThreaded(req *interp.Request) *Anomaly {
	tp := c.tprog
	if !c.batching {
		c.frames = c.frames[:0]
		c.tempArena = c.tempArena[:0]
		c.flagArena = c.flagArena[:0]
		c.dmaLog = c.dmaLog[:0]
	} else if len(c.tempArena) != 0 {
		// Mid-batch after a Halts round: the frame stack is already empty
		// but the arenas kept their residue (a serial round's reset would
		// have cleared it). The DMA journal stays — it is the batch's
		// guest-memory overlay.
		c.frames = c.frames[:0]
		c.tempArena = c.tempArena[:0]
		c.flagArena = c.flagArena[:0]
	}
	c.treq = req
	c.tsteps = 0
	c.tanom = nil
	c.pushT(int32(c.sealed.Entry), int32(c.entryTemps))
	if c.cov != nil {
		c.cov.HitBlock(c.sealed.Entry)
	}

	code := tp.code
	pc := tp.entry
	for pc >= 0 {
		i := &code[pc]
		pc = i.fn(c, i)
	}

	a := c.tanom
	c.roundSteps = c.tsteps
	if a == nil {
		if c.batching {
			c.batchSteps += uint64(c.tsteps)
		} else {
			c.stats.stepsSimulated.Add(uint64(c.tsteps))
		}
	}
	if c.cov != nil && !c.batching {
		c.cov.RoundEnd()
	}
	c.treq = nil
	c.tanom = nil
	return a
}

// pushT opens a frame with the preplanned temp-bank size: the sealed
// engine's bump-arena push plus caching the new banks on the checker, so
// op handlers reach them without a frame load.
func (c *Checker) pushT(blockID, numTemps int32) {
	off := len(c.tempArena)
	end := off + int(numTemps)
	if end > cap(c.tempArena) {
		ta := make([]uint64, end, 2*end)
		copy(ta, c.tempArena)
		c.tempArena = ta
		fa := make([]interp.Flags, end, 2*end)
		copy(fa, c.flagArena)
		c.flagArena = fa
	} else {
		c.tempArena = c.tempArena[:end]
		c.flagArena = c.flagArena[:end]
	}
	ts := c.tempArena[off:end:end]
	fs := c.flagArena[off:end:end]
	if !c.noClear {
		clear(ts)
		clear(fs)
	}
	c.frames = append(c.frames, simFrame{block: int(blockID), temps: ts, flags: fs, off: off})
	c.ttemps, c.tflags = ts, fs
}

// tRaise parks an anomaly for simulateThreaded and ends the loop. Nil-safe
// for the condOrStop convention: a disabled conditional-jump strategy
// yields a silent stop instead of an anomaly.
func (c *Checker) tRaise(a *Anomaly) int32 {
	if a == nil {
		return tpcStop
	}
	c.tanom = a
	return tpcAnom
}

// tDivZero ends the round on a division by zero, flushing the batched
// steps up to and including the faulting op.
func (c *Checker) tDivZero(ref ir.BlockRef, src ir.SourceRef, flush int) int32 {
	c.tsteps += flush
	if c.enabled[StrategyParameter] {
		return c.tRaise(c.anomaly(StrategyParameter, ref, src, "division by zero"))
	}
	c.frames = c.frames[:0]
	c.needResync = true
	return tpcStop
}

// tBudget raises the per-round step-budget anomaly (steps already
// flushed by the terminator).
func (c *Checker) tBudget(i *tinstr) int32 {
	return c.tRaise(c.condOrStop(i.Blk.Ref, ir.SourceRef{}, "simulation budget exceeded (possible emulation loop)"))
}

// tGoto performs a resolved block transition: command-end clearing, the
// access-control check, the coverage tick, and the post-stop frame check,
// in exactly the sealed walker's order.
func (c *Checker) tGoto(pc, id, edge int32, cmdEnd bool) int32 {
	if cmdEnd {
		c.cmdActive = false
	}
	if c.accessControl && c.cmdActive && !c.suppressAccess &&
		c.enabled[StrategyConditionalJump] &&
		!c.sealed.Accessible(c.activeCmd, true, int(id)) {
		if nextB := c.sealed.Block(int(id)); nextB != nil {
			return c.tRaise(tagEdge(c.anomaly(StrategyConditionalJump, nextB.Ref, ir.SourceRef{},
				"block not accessible under command %#x", c.activeCmd), "access", c.activeCmd))
		}
	}
	if c.cov != nil {
		if edge != core.NoEdge {
			c.cov.HitEdge(int(edge))
		} else {
			c.cov.HitBlock(int(id))
		}
	}
	if len(c.frames) == 0 {
		// A disabled-strategy path cleared the frames mid-block; the
		// walker notices at its next loop head.
		return tpcStop
	}
	return pc
}

// ---- op handlers ----

func tNopH(_ *Checker, i *tinstr) int32 { return i.Next }

func tConstH(c *Checker, i *tinstr) int32 {
	c.ttemps[i.Dst] = i.Imm
	c.tflags[i.Dst] = interp.Flags{}
	return i.Next
}

func tLoadH(c *Checker, i *tinstr) int32 {
	c.ttemps[i.Dst] = c.shadow.Int(int(i.Field))
	c.tflags[i.Dst] = interp.Flags{}
	return i.Next
}

func tLoadFuncH(c *Checker, i *tinstr) int32 {
	c.ttemps[i.Dst] = c.shadow.FuncPtr(int(i.Field))
	c.tflags[i.Dst] = interp.Flags{}
	return i.Next
}

func tArithH(c *Checker, i *tinstr) int32 {
	v, fl, divZero := interp.ALUExecPre(i.ALU, c.ttemps[i.A], c.ttemps[i.B], i.mask, uint(i.bits), i.Signed)
	if divZero {
		return c.tDivZero(i.Blk.Ref, i.Op.Src0, int(i.StepsAt))
	}
	c.ttemps[i.Dst] = v
	c.tflags[i.Dst] = fl
	return i.Next
}

func tStoreH(c *Checker, i *tinstr) int32 {
	if i.IsParam {
		if a := c.checkIntStore(i.Blk.Ref, i.Op, c.tflags); a != nil {
			c.tsteps += int(i.StepsAt)
			return c.tRaise(a)
		}
	}
	c.shadow.SetInt(int(i.Field), c.ttemps[i.Src])
	return i.Next
}

func tStoreFuncH(c *Checker, i *tinstr) int32 {
	c.shadow.SetFuncPtr(int(i.Field), c.ttemps[i.Src])
	return i.Next
}

func tBufLoadH(c *Checker, i *tinstr) int32 {
	v, a := c.bufAccess(i.Blk.Ref, i.Op, i.ParamIndexed, c.ttemps[i.Idx], 0, 0, false)
	if a != nil {
		c.tsteps += int(i.StepsAt)
		return c.tRaise(a)
	}
	c.ttemps[i.Dst] = v
	c.tflags[i.Dst] = interp.Flags{}
	return i.Next
}

func tBufStoreH(c *Checker, i *tinstr) int32 {
	if _, a := c.bufAccess(i.Blk.Ref, i.Op, i.ParamIndexed, c.ttemps[i.Idx], 0, byte(c.ttemps[i.Src]), true); a != nil {
		c.tsteps += int(i.StepsAt)
		return c.tRaise(a)
	}
	return i.Next
}

func tIOToBufH(c *Checker, i *tinstr) int32 {
	if a := c.checkCopyRange(i.Blk.Ref, i.Op, i.ParamIndexed, c.ttemps); a != nil {
		c.tsteps += int(i.StepsAt)
		return c.tRaise(a)
	}
	c.treq.Skip(int(c.ttemps[i.B] & 0xFFFF_FFFF))
	return i.Next
}

func tDMAToBufH(c *Checker, i *tinstr) int32 {
	// See execDSOD: inbound DMA is performed against the shadow.
	if a := c.checkCopyRange(i.Blk.Ref, i.Op, i.ParamIndexed, c.ttemps); a != nil {
		c.tsteps += int(i.StepsAt)
		return c.tRaise(a)
	}
	if a := c.dmaToShadow(i.Blk.Ref, i.Op, i.ParamIndexed, c.ttemps); a != nil {
		c.tsteps += int(i.StepsAt)
		return c.tRaise(a)
	}
	if len(c.frames) == 0 {
		c.tsteps += int(i.StepsAt)
		return tpcStop // simulation stopped mid-copy
	}
	return i.Next
}

func tDMAFromBufH(c *Checker, i *tinstr) int32 {
	// See execDSOD: outbound DMA is bounds-checked, never performed.
	if a := c.checkCopyRange(i.Blk.Ref, i.Op, i.ParamIndexed, c.ttemps); a != nil {
		c.tsteps += int(i.StepsAt)
		return c.tRaise(a)
	}
	return i.Next
}

func tDMAReadH(c *Checker, i *tinstr) int32 {
	buf := &c.dmaBuf
	n := int(i.bits) >> 3
	addr := c.ttemps[i.A]
	if err := c.env.DMARead(addr, buf[:n]); err != nil {
		c.tsteps += int(i.StepsAt)
		if c.enabled[StrategyParameter] {
			return c.tRaise(c.anomaly(StrategyParameter, i.Blk.Ref, i.Op.Src0, "DMA read out of guest memory: %v", err))
		}
		c.frames = c.frames[:0]
		c.needResync = true
		return tpcStop
	}
	// Overlay this round's suppressed writebacks (skipped entirely in the
	// common no-writeback round, and by a range compare when the read
	// cannot touch any journaled writeback).
	if len(c.dmaLog) > 0 && addr < c.dmaHi && c.dmaLo < addr+uint64(n) {
		for k := range c.dmaLog {
			c.dmaLog[k].overlay(buf[:], addr, n)
		}
	}
	v := binary.LittleEndian.Uint64(buf[:])
	if n < 8 {
		v &= i.mask
	}
	c.ttemps[i.Dst] = v
	c.tflags[i.Dst] = interp.Flags{}
	return i.Next
}

func tDMAWriteH(c *Checker, i *tinstr) int32 {
	// Suppressed guest write: journal it for this round's reads.
	c.journalDMAWrite(c.ttemps[i.A], c.ttemps[i.Src], uint8(i.bits>>3))
	return i.Next
}

func tIOInH(c *Checker, i *tinstr) int32 {
	c.ttemps[i.Dst] = c.treq.Consume(int(i.bits) >> 3)
	c.tflags[i.Dst] = interp.Flags{}
	return i.Next
}

func tIOAddrH(c *Checker, i *tinstr) int32 {
	c.ttemps[i.Dst] = c.treq.Addr
	c.tflags[i.Dst] = interp.Flags{}
	return i.Next
}

func tIOLenH(c *Checker, i *tinstr) int32 {
	c.ttemps[i.Dst] = uint64(c.treq.Remaining())
	c.tflags[i.Dst] = interp.Flags{}
	return i.Next
}

func tIOIsWriteH(c *Checker, i *tinstr) int32 {
	if c.treq.Write {
		c.ttemps[i.Dst] = 1
	} else {
		c.ttemps[i.Dst] = 0
	}
	c.tflags[i.Dst] = interp.Flags{}
	return i.Next
}

func tEnvReadH(c *Checker, i *tinstr) int32 {
	// Sync point: synchronize the non-derivable value with the device
	// environment (paper §V-D).
	c.ttemps[i.Dst] = c.env.ReadEnv(ir.EnvKind(i.Imm))
	c.tflags[i.Dst] = interp.Flags{}
	c.stats.syncPointsResolved.Add(1)
	return i.Next
}

func tCallH(c *Checker, i *tinstr) int32 {
	c.tsteps += int(i.StepsAt)
	if n := len(c.frames); n > 0 {
		c.frames[n-1].op = int(i.Next)
	}
	c.pushT(i.CalleeID, i.CalleeTemps)
	if c.cov != nil {
		c.cov.HitBlock(int(i.CalleeID))
	}
	return i.CalleePC
}

func tCallPtrH(c *Checker, i *tinstr) int32 {
	// Always a flush site: whether the call descends is a runtime decision,
	// so the batched count commits here either way.
	c.tsteps += int(i.StepsAt)
	target := c.shadow.FuncPtr(int(i.Field))
	if c.enabled[StrategyIndirectJump] && !c.sealed.LegitimateTarget(int(i.Field), target) {
		return c.tRaise(tagEdge(c.anomaly(StrategyIndirectJump, i.Blk.Ref, i.Op.Src0,
			"indirect jump via %q to unauthorized target %#x",
			c.prog.Fields[i.Field].Name, target), "indirect", target))
	}
	if target >= uint64(len(c.prog.Handlers)) {
		// Unchecked corrupted pointer: the device would crash.
		c.frames = c.frames[:0]
		c.needResync = true
		return tpcStop
	}
	callee := c.sealed.HandlerEntry(int(target))
	if callee == core.NoBlock {
		return i.Next // opaque target
	}
	if n := len(c.frames); n > 0 {
		c.frames[n-1].op = int(i.Next)
	}
	c.pushT(int32(callee), int32(c.sealed.HandlerTemps(int(target))))
	if c.cov != nil {
		c.cov.HitBlock(callee)
	}
	return c.tprog.blockPC[callee]
}

// ---- fused handlers ----

func tLoadArithH(c *Checker, i *tinstr) int32 {
	tt, tf := c.ttemps, c.tflags
	tt[i.Dst] = c.shadow.Int(int(i.Field))
	tf[i.Dst] = interp.Flags{}
	v, fl, divZero := interp.ALUExecPre(i.ALU2, tt[i.A2], tt[i.B2], i.mask2, uint(i.bits2), i.Signed2)
	if divZero {
		return c.tDivZero(i.Blk.Ref, i.Op2.Src0, int(i.StepsAt))
	}
	tt[i.Dst2] = v
	tf[i.Dst2] = fl
	return i.Next
}

func tConstArithH(c *Checker, i *tinstr) int32 {
	tt, tf := c.ttemps, c.tflags
	tt[i.Dst] = i.Imm
	tf[i.Dst] = interp.Flags{}
	v, fl, divZero := interp.ALUExecPre(i.ALU2, tt[i.A2], tt[i.B2], i.mask2, uint(i.bits2), i.Signed2)
	if divZero {
		return c.tDivZero(i.Blk.Ref, i.Op2.Src0, int(i.StepsAt))
	}
	tt[i.Dst2] = v
	tf[i.Dst2] = fl
	return i.Next
}

func tBufLoadStoreH(c *Checker, i *tinstr) int32 {
	v, a := c.bufAccess(i.Blk.Ref, i.Op, i.ParamIndexed, c.ttemps[i.Idx], 0, 0, false)
	if a != nil {
		// The first op of the pair faulted: the walker would have counted
		// only that op's step.
		c.tsteps += int(i.StepsAt) - 1
		return c.tRaise(a)
	}
	c.ttemps[i.Dst] = v
	c.tflags[i.Dst] = interp.Flags{}
	if i.IsParam2 {
		if a := c.checkIntStore(i.Blk.Ref, i.Op2, c.tflags); a != nil {
			c.tsteps += int(i.StepsAt)
			return c.tRaise(a)
		}
	}
	c.shadow.SetInt(int(i.Field2), c.ttemps[i.Src2])
	return i.Next
}

func tConstStoreH(c *Checker, i *tinstr) int32 {
	c.ttemps[i.Dst] = i.Imm
	c.tflags[i.Dst] = interp.Flags{}
	if i.IsParam2 {
		if a := c.checkIntStore(i.Blk.Ref, i.Op2, c.tflags); a != nil {
			c.tsteps += int(i.StepsAt)
			return c.tRaise(a)
		}
	}
	c.shadow.SetInt(int(i.Field2), c.ttemps[i.Src2])
	return i.Next
}

func tArithStoreH(c *Checker, i *tinstr) int32 {
	v, fl, divZero := interp.ALUExecPre(i.ALU, c.ttemps[i.A], c.ttemps[i.B], i.mask, uint(i.bits), i.Signed)
	if divZero {
		// First op of the pair: the walker counted only up to the arith.
		return c.tDivZero(i.Blk.Ref, i.Op.Src0, int(i.StepsAt)-1)
	}
	c.ttemps[i.Dst] = v
	c.tflags[i.Dst] = fl
	if i.IsParam2 {
		if a := c.checkIntStore(i.Blk.Ref, i.Op2, c.tflags); a != nil {
			c.tsteps += int(i.StepsAt)
			return c.tRaise(a)
		}
	}
	c.shadow.SetInt(int(i.Field2), c.ttemps[i.Src2])
	return i.Next
}

func tLoadConstH(c *Checker, i *tinstr) int32 {
	tt, tf := c.ttemps, c.tflags
	tt[i.Dst] = c.shadow.Int(int(i.Field))
	tf[i.Dst] = interp.Flags{}
	tt[i.Dst2] = i.Imm2
	tf[i.Dst2] = interp.Flags{}
	return i.Next
}

func tConstConstH(c *Checker, i *tinstr) int32 {
	tt, tf := c.ttemps, c.tflags
	tt[i.Dst] = i.Imm
	tf[i.Dst] = interp.Flags{}
	tt[i.Dst2] = i.Imm2
	tf[i.Dst2] = interp.Flags{}
	return i.Next
}

func tConstBufStoreH(c *Checker, i *tinstr) int32 {
	c.ttemps[i.Dst] = i.Imm
	c.tflags[i.Dst] = interp.Flags{}
	if _, a := c.bufAccess(i.Blk.Ref, i.Op2, i.ParamIndexed2, c.ttemps[i.Idx2], 0, byte(c.ttemps[i.Src2]), true); a != nil {
		c.tsteps += int(i.StepsAt)
		return c.tRaise(a)
	}
	return i.Next
}

func tBufStoreConstH(c *Checker, i *tinstr) int32 {
	if _, a := c.bufAccess(i.Blk.Ref, i.Op, i.ParamIndexed, c.ttemps[i.Idx], 0, byte(c.ttemps[i.Src]), true); a != nil {
		c.tsteps += int(i.StepsAt) - 1
		return c.tRaise(a)
	}
	c.ttemps[i.Dst2] = i.Imm2
	c.tflags[i.Dst2] = interp.Flags{}
	return i.Next
}

func tStoreConstH(c *Checker, i *tinstr) int32 {
	if i.IsParam {
		if a := c.checkIntStore(i.Blk.Ref, i.Op, c.tflags); a != nil {
			c.tsteps += int(i.StepsAt) - 1
			return c.tRaise(a)
		}
	}
	c.shadow.SetInt(int(i.Field), c.ttemps[i.Src])
	c.ttemps[i.Dst2] = i.Imm2
	c.tflags[i.Dst2] = interp.Flags{}
	return i.Next
}

func tStoreLoadH(c *Checker, i *tinstr) int32 {
	if i.IsParam {
		if a := c.checkIntStore(i.Blk.Ref, i.Op, c.tflags); a != nil {
			c.tsteps += int(i.StepsAt) - 1
			return c.tRaise(a)
		}
	}
	// SetInt before Int: the loaded field may be the one just stored.
	c.shadow.SetInt(int(i.Field), c.ttemps[i.Src])
	c.ttemps[i.Dst2] = c.shadow.Int(int(i.Field2))
	c.tflags[i.Dst2] = interp.Flags{}
	return i.Next
}

// ---- terminators ----

func tHaltH(c *Checker, i *tinstr) int32 {
	st := c.tsteps + int(i.StepsAt)
	if st > c.budget {
		c.tsteps = st
		return c.tBudget(i)
	}
	c.tsteps = st + 1 // the block transition itself
	c.frames = c.frames[:0]
	return tpcDone
}

func tReturnH(c *Checker, i *tinstr) int32 {
	st := c.tsteps + int(i.StepsAt)
	if st > c.budget {
		c.tsteps = st
		return c.tBudget(i)
	}
	c.tsteps = st + 1
	n := len(c.frames)
	if n == 0 {
		// Frames were cleared mid-block by a disabled-strategy path; the
		// round is already stopped.
		return tpcStop
	}
	f := &c.frames[n-1]
	c.tempArena = c.tempArena[:f.off]
	c.flagArena = c.flagArena[:f.off]
	c.frames = c.frames[:n-1]
	if i.CmdEnd {
		c.cmdActive = false
	}
	if n == 1 {
		return tpcDone // dispatch frame returned: round complete
	}
	p := &c.frames[n-2]
	c.ttemps, c.tflags = p.temps, p.flags
	return int32(p.op)
}

func tNextH(c *Checker, i *tinstr) int32 {
	st := c.tsteps + int(i.StepsAt)
	if st > c.budget {
		c.tsteps = st
		return c.tBudget(i)
	}
	c.tsteps = st + 1
	return c.tGoto(i.TgtPC, i.TgtID, i.Edge, i.CmdEnd)
}

func tNoSuccH(c *Checker, i *tinstr) int32 {
	st := c.tsteps + int(i.StepsAt)
	if st > c.budget {
		c.tsteps = st
		return c.tBudget(i)
	}
	c.tsteps = st + 1
	return c.tRaise(tagEdge(c.condOrStop(i.Blk.Ref, ir.SourceRef{}, "successor outside specification"), "successor", 0))
}

// tBranchTo resolves a branch arm after the condition evaluated.
func (c *Checker) tBranchTo(i *tinstr, taken bool) int32 {
	if taken {
		if !i.TakenOK {
			return c.tRaise(tagEdge(c.condOrStop(i.Blk.Ref, i.Term.Src0, "untraversed %s branch", "taken"), "branch-taken", 0))
		}
		return c.tGoto(i.TgtPC, i.TgtID, i.Edge, i.CmdEnd)
	}
	if !i.NotTakenOK {
		return c.tRaise(tagEdge(c.condOrStop(i.Blk.Ref, i.Term.Src0, "untraversed %s branch", "not-taken"), "branch-not-taken", 0))
	}
	return c.tGoto(i.Tgt2PC, i.Tgt2ID, i.Edge2, i.CmdEnd)
}

func tBranchH(c *Checker, i *tinstr) int32 {
	st := c.tsteps + int(i.StepsAt)
	if st > c.budget {
		c.tsteps = st
		return c.tBudget(i)
	}
	c.tsteps = st + 1
	return c.tBranchTo(i, i.Rel.EvalMasked(c.ttemps[i.A2], c.ttemps[i.B2], i.mask2, uint64(1)<<(i.bits2-1), i.Signed2))
}

func tBranchArithH(c *Checker, i *tinstr) int32 {
	// The fused trailing compare: full arith semantics first (its step is
	// included in StepsAt), then the ordinary branch epilogue.
	v, fl, divZero := interp.ALUExecPre(i.ALU, c.ttemps[i.A], c.ttemps[i.B], i.mask, uint(i.bits), i.Signed)
	if divZero {
		return c.tDivZero(i.Blk.Ref, i.Op.Src0, int(i.StepsAt))
	}
	c.ttemps[i.Dst] = v
	c.tflags[i.Dst] = fl
	st := c.tsteps + int(i.StepsAt)
	if st > c.budget {
		c.tsteps = st
		return c.tBudget(i)
	}
	c.tsteps = st + 1
	return c.tBranchTo(i, i.Rel.EvalMasked(c.ttemps[i.A2], c.ttemps[i.B2], i.mask2, uint64(1)<<(i.bits2-1), i.Signed2))
}

func tSwitchH(c *Checker, i *tinstr) int32 {
	st := c.tsteps + int(i.StepsAt)
	if st > c.budget {
		c.tsteps = st
		return c.tBudget(i)
	}
	c.tsteps = st + 1
	b := i.Blk
	t := i.Term
	sel := c.ttemps[i.A2]
	tgt, e, ok := c.sealed.CaseNextEdge(b, sel)
	if i.CmdDecision {
		if !ok {
			return c.tRaise(tagEdge(c.condOrStop(b.Ref, t.Src0, "unknown device command %#x", sel), "command", sel))
		}
		c.activeCmd = sel
		c.cmdActive = true
		c.suppressAccess = false
	} else if !ok {
		// A plain decode switch: an unseen selector that statically lands
		// on an already-observed arm (typically the default) is legitimate
		// traffic, not a new command. It carries no trained edge slot:
		// coverage counts it as a direct block hit.
		staticTgt := c.sealed.BlockID(b.Ref.Handler, staticSwitchTargetIdx(t, sel))
		if staticTgt == core.NoBlock {
			return c.tRaise(tagEdge(c.condOrStop(b.Ref, t.Src0, "switch to untraversed arm for selector %#x", sel), "switch", sel))
		}
		tgt, e = staticTgt, core.NoEdge
	}
	if tgt == core.NoBlock {
		return c.tRaise(tagEdge(c.condOrStop(b.Ref, t.Src0, "switch successor outside specification"), "successor", sel))
	}
	return c.tGoto(c.tprog.blockPC[tgt], int32(tgt), e, i.CmdEnd)
}

func tDanglingH(c *Checker, _ *tinstr) int32 {
	// Dangling successor: a path the spec cannot follow. The zero BlockRef
	// marks "no block" in the report.
	return c.tRaise(tagEdge(c.condOrStop(ir.BlockRef{}, ir.SourceRef{}, "dangling ES successor"), "successor", 0))
}
