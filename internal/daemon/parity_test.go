package daemon_test

import (
	"testing"
	"time"

	"sedspec/internal/cvesim"
	"sedspec/internal/daemon"
)

// TestDaemonPoCVerdictParity replays every case-study PoC as a daemon
// session — engine installed from the PoC's training corpus with the
// batch CLI's check budget — and requires the verdict to be identical,
// field for field, to cvesim.PoC.RunProtected. The resident path
// (spec-store roundtrip, shared sealed engine, per-session checker)
// must not change a single detection outcome, including the documented
// CVE-2016-1568 miss.
func TestDaemonPoCVerdictParity(t *testing.T) {
	d := newTestDaemon(t, daemon.Options{DrainTimeout: 30 * time.Second})
	defer d.Close()
	tn, err := d.CreateTenant("parity")
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range cvesim.All() {
		t.Run(p.CVE, func(t *testing.T) {
			want, err := p.RunProtected()
			if err != nil {
				t.Fatalf("baseline RunProtected: %v", err)
			}
			if _, err := tn.Install(daemon.InstallRequest{
				Corpus: "cve:" + p.CVE,
				Budget: 200_000, // RunProtected's budget
			}); err != nil {
				t.Fatalf("install: %v", err)
			}
			ss, err := tn.Attach(daemon.AttachRequest{Device: p.Device, Workload: "poc"})
			if err != nil {
				t.Fatalf("attach: %v", err)
			}
			s := ss[0]
			deadline := time.Now().Add(60 * time.Second)
			for s.Status().Verdict == nil {
				if time.Now().After(deadline) {
					t.Fatalf("no verdict: %+v", s.Status())
				}
				time.Sleep(5 * time.Millisecond)
			}
			fin, err := tn.Detach(s.ID)
			if err != nil {
				t.Fatalf("detach: %v", err)
			}
			if fin.Err != "" {
				t.Fatalf("session error: %s", fin.Err)
			}

			wantV := daemon.Verdict{CVE: p.CVE, Detected: want.Detected, Succeeded: want.Succeeded}
			if want.Anomaly != nil {
				wantV.Strategy = want.Anomaly.Strategy.String()
				wantV.Severity = want.Anomaly.Severity().String()
				wantV.Detail = want.Anomaly.Detail
			}
			if *fin.Verdict != wantV {
				t.Errorf("daemon verdict diverged from batch replay:\n got %+v\nwant %+v", *fin.Verdict, wantV)
			}
		})
	}
}
