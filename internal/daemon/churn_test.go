package daemon

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sedspec/internal/checker"
	"sedspec/internal/obs"
	"sedspec/internal/obs/stream"
)

// TestDaemonControlPlaneChurn exercises the daemon the way -race wants
// it exercised: two tenants, one running enhance+swap churn under
// long-lived mixed sessions, the other churning benign attach/detach
// while PoC sessions replay an exploit. The invariants:
//
//   - pure-benign sessions report zero blocked rounds and no errors
//     (no false detections under concurrent control-plane traffic),
//   - PoC sessions still detect (no missed detections),
//   - each detach folds its session's counters into the engine's
//     retired banks exactly once — the engine total equals the sum of
//     the per-detach final statuses.
func TestDaemonControlPlaneChurn(t *testing.T) {
	d, err := New(Options{
		StoreRoot:      t.TempDir(),
		Hub:            stream.NewHub(),
		Registry:       obs.NewRegistry(),
		DrainTimeout:   30 * time.Second,
		HealthInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	ta, err := d.CreateTenant("alpha")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := d.CreateTenant("beta")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ta.Install(InstallRequest{Device: "fdc", Mode: "enhancement"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Install(InstallRequest{Device: "scsi"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Install(InstallRequest{Corpus: "cve:CVE-2021-3409", Budget: 200_000}); err != nil {
		t.Fatal(err)
	}

	// Tenant alpha: four long-lived mixed sessions feeding the audit
	// trail the enhance churn consumes.
	aSessions, err := ta.Attach(AttachRequest{Device: "fdc", Workload: "mixed", Count: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var enhances atomic.Int32

	// Enhance+swap churn against alpha while its sessions run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(10 * time.Second)
		for enhances.Load() < 2 && time.Now().Before(deadline) {
			if _, err := ta.Swap(SwapRequest{Device: "fdc", Enhance: true}); err == nil {
				enhances.Add(1)
			} else {
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()

	// Benign attach/detach churn on beta/scsi.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			ss, err := tb.Attach(AttachRequest{Device: "scsi", Workload: "benign", Count: 2, Ops: 120, Seed: uint64(100 + i)})
			if err != nil {
				t.Errorf("benign attach %d: %v", i, err)
				return
			}
			for _, s := range ss {
				st, err := tb.Detach(s.ID)
				if err != nil {
					t.Errorf("benign detach %d: %v", s.ID, err)
					return
				}
				if st.Blocked != 0 || st.Err != "" {
					t.Errorf("benign session %d falsely detected: %+v", s.ID, st)
					return
				}
			}
		}
	}()

	// PoC sessions on beta/sdhci replay the exploit during the churn.
	pocs, err := tb.Attach(AttachRequest{Device: "sdhci", Workload: "poc", Count: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, s := range pocs {
		for s.Status().Verdict == nil {
			if time.Now().After(deadline) {
				t.Fatalf("poc session %d: no verdict", s.ID)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	wg.Wait()

	if enhances.Load() == 0 {
		t.Error("enhance+swap churn never succeeded")
	}
	for _, s := range pocs {
		st, err := tb.Detach(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Verdict == nil || !st.Verdict.Detected {
			t.Errorf("poc session %d missed the detection: %+v", s.ID, st)
		}
	}

	// Fold-exactly-once: the sum of alpha's per-detach final statuses
	// must equal the engine's retired totals — no double fold, no lost
	// fold.
	var sum checker.Stats
	for _, s := range aSessions {
		st, err := ta.Detach(s.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Rounds == 0 {
			t.Errorf("mixed session %d made no progress", s.ID)
		}
		sum.Rounds += st.Rounds
		sum.Blocked += st.Blocked
		sum.Warnings += st.Warnings
	}
	ta.mu.Lock()
	eng := ta.engines["fdc"]
	ta.mu.Unlock()
	if eng.shared.Sessions() != 0 {
		t.Fatalf("engine still reports %d live sessions", eng.shared.Sessions())
	}
	got := eng.shared.Stats()
	if got.Rounds != sum.Rounds || got.Blocked != sum.Blocked || got.Warnings != sum.Warnings {
		t.Errorf("engine totals (rounds %d, blocked %d, warnings %d) != per-detach sum (rounds %d, blocked %d, warnings %d)",
			got.Rounds, got.Blocked, got.Warnings, sum.Rounds, sum.Blocked, sum.Warnings)
	}

	if err := d.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
