package daemon_test

import (
	"bufio"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sedspec/internal/cvesim"
	"sedspec/internal/daemon"
	"sedspec/internal/obs/journal"
	"sedspec/internal/obs/stream"
)

// detectedPoC returns a case-study PoC whose protected replay blocks
// the attack — the anomaly whose post-restart survival the journal
// exists to guarantee.
func detectedPoC(t *testing.T) *cvesim.PoC {
	t.Helper()
	for _, p := range cvesim.All() {
		want, err := p.RunProtected()
		if err != nil {
			continue
		}
		if want.Detected {
			return p
		}
	}
	t.Fatal("no detected PoC available")
	return nil
}

// TestDaemonRestartFidelity is the acceptance test for durable
// telemetry: run a PoC session to a blocked anomaly, close the daemon,
// start a fresh one (new hub, new registry — only the disk survives)
// against the same store, and require that the pre-restart anomaly is
// visible with its original seq, tenant, and SpecGen stamps in the
// hub's recent ring (what `sedspec watch -recent` reads), in /journal,
// and in the /fleet per-tenant row counts.
func TestDaemonRestartFidelity(t *testing.T) {
	storeRoot := t.TempDir()
	jdir := filepath.Join(storeRoot, ".journal")
	poc := detectedPoC(t)

	// First life: PoC session to a verdict, then a clean shutdown.
	d1 := newTestDaemon(t, daemon.Options{
		StoreRoot:    storeRoot,
		DrainTimeout: 30 * time.Second,
		Journal:      journal.Options{Dir: jdir, Fsync: journal.PolicyAlways},
	})
	tn, err := d1.CreateTenant("prod")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Install(daemon.InstallRequest{Corpus: "cve:" + poc.CVE, Budget: 200_000}); err != nil {
		t.Fatal(err)
	}
	ss, err := tn.Attach(daemon.AttachRequest{Device: poc.Device, Workload: "poc"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for ss[0].Status().Verdict == nil {
		if time.Now().After(deadline) {
			t.Fatalf("no verdict: %+v", ss[0].Status())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := tn.Detach(ss[0].ID); err != nil {
		t.Fatal(err)
	}

	// Capture the anomaly's original stamps from the first hub.
	var orig *stream.Event
	for _, ev := range hubRecent(d1) {
		if ev.Kind == stream.KindAnomaly && ev.Tenant == "prod" {
			ev := ev
			orig = &ev
			break
		}
	}
	if orig == nil {
		t.Fatal("no anomaly event in the first daemon's recent ring")
	}
	if err := d1.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}

	// Second life: everything in-memory is new; only the store directory
	// (specs + journal) carries over.
	d2 := newTestDaemon(t, daemon.Options{
		StoreRoot:    storeRoot,
		DrainTimeout: 30 * time.Second,
		Journal:      journal.Options{Dir: jdir, Fsync: journal.PolicyAlways},
	})
	defer d2.Close()

	// 1. The hub's recent ring (behind `sedspec watch -recent` and
	// /anomalies) carries the pre-restart anomaly, stamps intact.
	var restored *stream.Event
	for _, ev := range hubRecent(d2) {
		if ev.Kind == stream.KindAnomaly && ev.Seq == orig.Seq {
			ev := ev
			restored = &ev
			break
		}
	}
	if restored == nil {
		t.Fatalf("anomaly seq %d absent from restored recent ring", orig.Seq)
	}
	if restored.Tenant != orig.Tenant || restored.SpecGen != orig.SpecGen ||
		restored.Device != orig.Device || restored.TimeNs != orig.TimeNs {
		t.Fatalf("restored anomaly stamps diverged:\n got %+v\nwant %+v", restored, orig)
	}
	if restored.Anomaly == nil || restored.Anomaly.Strategy != orig.Anomaly.Strategy {
		t.Fatalf("restored anomaly payload diverged: %+v", restored.Anomaly)
	}

	// New events must sequence past restored history, not collide with it.
	if seq := d2.Journal().Stats().LastSeq; seq < orig.Seq {
		t.Fatalf("journal last seq %d below restored anomaly %d", seq, orig.Seq)
	}

	// 2. /journal serves the anomaly over HTTP with the original stamps.
	rec := httptest.NewRecorder()
	d2.Server().ServeHTTP(rec, httptest.NewRequest("GET", "/journal?kinds=anomaly&tenant=prod", nil))
	if rec.Code != 200 {
		t.Fatalf("/journal: %d %s", rec.Code, rec.Body.String())
	}
	found := false
	sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
	for sc.Scan() {
		var ev stream.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad /journal line %q: %v", sc.Text(), err)
		}
		if ev.Seq == orig.Seq && ev.Tenant == orig.Tenant && ev.SpecGen == orig.SpecGen {
			found = true
		}
	}
	if !found {
		t.Fatalf("/journal did not serve anomaly seq %d", orig.Seq)
	}

	// 3. /fleet's per-tenant row folds the pre-restart history back in:
	// the blocked count and rounds survive even though the registry is
	// brand new.
	var fleet stream.FleetSnapshot
	rec = httptest.NewRecorder()
	d2.Server().ServeHTTP(rec, httptest.NewRequest("GET", "/fleet?tenant=prod", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &fleet); err != nil {
		t.Fatalf("/fleet decode: %v", err)
	}
	row := fleet.Device(poc.Device)
	if row == nil {
		t.Fatalf("no %s row in restored /fleet?tenant=prod: %+v", poc.Device, fleet.Devices)
	}
	if row.Tenant != "prod" || row.Blocked == 0 || row.Rounds == 0 {
		t.Fatalf("restored fleet row lost history: %+v", row)
	}
	if fleet.Journal == nil || fleet.Journal.Records == 0 {
		t.Fatalf("fleet snapshot missing journal status: %+v", fleet.Journal)
	}
}

// hubRecent reads a daemon's recent ring through /anomalies, the same
// surface `sedspec watch -recent` uses.
func hubRecent(d *daemon.Daemon) []stream.Event {
	rec := httptest.NewRecorder()
	d.Server().ServeHTTP(rec, httptest.NewRequest("GET", "/anomalies?limit=0&kinds=anomaly,audit,swap,attach,detach,spec", nil))
	var out []stream.Event
	sc := bufio.NewScanner(strings.NewReader(rec.Body.String()))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev stream.Event
		if json.Unmarshal([]byte(line), &ev) == nil {
			out = append(out, ev)
		}
	}
	return out
}
