package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"sedspec/internal/specstore"
)

// apiError is the control plane's uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// decodeBody decodes a JSON request body into v, rejecting unknown
// fields so typos in scripts fail loudly instead of silently running a
// default workload.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("daemon: bad request body: %w", err)
	}
	return nil
}

// tenantOf resolves the {tenant} path segment to a live tenant.
func (d *Daemon) tenantOf(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	name := r.PathValue("tenant")
	t, ok := d.Tenant(name)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("daemon: no tenant %q", name))
		return nil, false
	}
	return t, true
}

// registerRoutes mounts the control plane on the introspection mux.
// Method+wildcard patterns keep the surface self-describing; the
// pre-existing /fleet, /metrics, and /anomalies endpoints ride the
// same listener.
func (d *Daemon) registerRoutes() {
	d.srv.HandleFunc("POST /tenants", d.handleTenantCreate)
	d.srv.HandleFunc("GET /tenants", d.handleTenantList)
	d.srv.HandleFunc("GET /tenants/{tenant}", d.handleTenantGet)
	d.srv.HandleFunc("DELETE /tenants/{tenant}", d.handleTenantDelete)
	d.srv.HandleFunc("POST /tenants/{tenant}/specs", d.handleSpecInstall)
	d.srv.HandleFunc("GET /tenants/{tenant}/specs", d.handleSpecList)
	d.srv.HandleFunc("POST /tenants/{tenant}/sessions", d.handleSessionAttach)
	d.srv.HandleFunc("GET /tenants/{tenant}/sessions", d.handleSessionList)
	d.srv.HandleFunc("DELETE /tenants/{tenant}/sessions/{id}", d.handleSessionDetach)
	d.srv.HandleFunc("POST /tenants/{tenant}/swap", d.handleSwap)
	d.srv.HandleFunc("GET /status", d.handleStatus)
}

// TenantInfo is one tenant's control-plane view.
type TenantInfo struct {
	Name     string          `json:"name"`
	StoreDir string          `json:"store_dir"`
	Engines  []EngineInfo    `json:"engines"`
	Sessions []SessionStatus `json:"sessions"`
}

func (t *Tenant) info() TenantInfo {
	return TenantInfo{
		Name:     t.name,
		StoreDir: t.store.Dir(),
		Engines:  t.Engines(),
		Sessions: t.Sessions(),
	}
}

func (d *Daemon) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	t, err := d.CreateTenant(req.Name)
	if err != nil {
		status := http.StatusBadRequest
		if _, exists := d.Tenant(req.Name); exists {
			status = http.StatusConflict
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, t.info())
}

func (d *Daemon) handleTenantList(w http.ResponseWriter, _ *http.Request) {
	names := d.TenantNames()
	out := make([]TenantInfo, 0, len(names))
	for _, n := range names {
		if t, ok := d.Tenant(n); ok {
			out = append(out, t.info())
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Tenants []TenantInfo `json:"tenants"`
	}{out})
}

func (d *Daemon) handleTenantGet(w http.ResponseWriter, r *http.Request) {
	t, ok := d.tenantOf(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, t.info())
}

func (d *Daemon) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	if err := d.DeleteTenant(name); err != nil {
		// Unknown tenant is the client's mistake; a drain timeout means
		// the tenant was removed but sessions are stuck — the control
		// plane did its best, report the partial failure.
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNoTenant) {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Deleted string `json:"deleted"`
	}{name})
}

func (d *Daemon) handleSpecInstall(w http.ResponseWriter, r *http.Request) {
	t, ok := d.tenantOf(w, r)
	if !ok {
		return
	}
	var req InstallRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	info, err := t.Install(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (d *Daemon) handleSpecList(w http.ResponseWriter, r *http.Request) {
	t, ok := d.tenantOf(w, r)
	if !ok {
		return
	}
	device := r.URL.Query().Get("device")
	var versions []specstore.VersionMeta
	if device != "" {
		versions = t.Versions(device)
	} else {
		for _, e := range t.Engines() {
			versions = append(versions, t.Versions(e.Device)...)
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Engines  []EngineInfo            `json:"engines"`
		Versions []specstore.VersionMeta `json:"versions"`
	}{t.Engines(), versions})
}

func (d *Daemon) handleSessionAttach(w http.ResponseWriter, r *http.Request) {
	t, ok := d.tenantOf(w, r)
	if !ok {
		return
	}
	var req AttachRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sessions, err := t.Attach(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := make([]SessionStatus, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.Status())
	}
	writeJSON(w, http.StatusCreated, struct {
		Sessions []SessionStatus `json:"sessions"`
	}{out})
}

func (d *Daemon) handleSessionList(w http.ResponseWriter, r *http.Request) {
	t, ok := d.tenantOf(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Sessions []SessionStatus `json:"sessions"`
	}{t.Sessions()})
}

func (d *Daemon) handleSessionDetach(w http.ResponseWriter, r *http.Request) {
	t, ok := d.tenantOf(w, r)
	if !ok {
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("daemon: bad session id %q", r.PathValue("id")))
		return
	}
	st, err := t.Detach(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (d *Daemon) handleSwap(w http.ResponseWriter, r *http.Request) {
	t, ok := d.tenantOf(w, r)
	if !ok {
		return
	}
	var req SwapRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	res, err := t.Swap(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleStatus is the daemon-wide rollup: tenants, engines, sessions.
func (d *Daemon) handleStatus(w http.ResponseWriter, _ *http.Request) {
	names := d.TenantNames()
	tenants := make([]TenantInfo, 0, len(names))
	for _, n := range names {
		if t, ok := d.Tenant(n); ok {
			tenants = append(tenants, t.info())
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Tenants  []TenantInfo `json:"tenants"`
		Sessions int          `json:"sessions"`
	}{tenants, d.SessionCount()})
}
