package daemon

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"sedspec"
	"sedspec/internal/bench"
	"sedspec/internal/checker"
	"sedspec/internal/cvesim"
	"sedspec/internal/machine"
	"sedspec/internal/simclock"
)

// AttachRequest opens one or more sessions against a tenant's engine.
type AttachRequest struct {
	Device string `json:"device"`
	// Workload drives the session's goroutine:
	//   "benign" (default) — the device's benign operation loop
	//   "mixed"            — benign ops with occasional rare (legitimate
	//                        but untrained) commands, the enhancement-
	//                        mode audit feeder
	//   "poc"              — replay the CVE exploit once, record the
	//                        verdict, then idle until detach
	//   "idle"             — attach the checker, drive nothing
	Workload string `json:"workload,omitempty"`
	// CVE selects the PoC for workload "poc" (default: the engine's
	// corpus PoC when installed from a cve corpus).
	CVE string `json:"cve,omitempty"`
	// Count attaches this many sessions in one call (default 1).
	Count int `json:"count,omitempty"`
	// Ops bounds benign/mixed loops: after Ops operations the session
	// idles until detached (0 = run until detach).
	Ops uint64 `json:"ops,omitempty"`
	// Seed perturbs the workload RNG (session i uses Seed+i).
	Seed uint64 `json:"seed,omitempty"`
}

// Verdict is a poc session's recorded outcome, shaped to match the
// batch CLI's replay so the two are directly comparable.
type Verdict struct {
	CVE      string `json:"cve"`
	Detected bool   `json:"detected"`
	Strategy string `json:"strategy,omitempty"`
	Severity string `json:"severity,omitempty"`
	Detail   string `json:"detail,omitempty"`
	// Succeeded is ground truth: the exploit's effect reached the
	// device.
	Succeeded bool `json:"succeeded"`
}

// SessionStatus is one session's control-plane view.
type SessionStatus struct {
	ID       int    `json:"id"`
	Device   string `json:"device"`
	Workload string `json:"workload"`
	CVE      string `json:"cve,omitempty"`
	Running  bool   `json:"running"`
	Rounds   uint64 `json:"rounds"`
	Blocked  uint64 `json:"blocked"`
	Warnings uint64 `json:"warnings"`
	SpecGen  uint64 `json:"spec_generation"`
	// Err is the error that ended the workload loop, if any (a blocked
	// anomaly halting the machine surfaces here in protection mode).
	Err     string   `json:"error,omitempty"`
	Verdict *Verdict `json:"verdict,omitempty"`
}

// Session is one live guest: a machine hosting the device, a
// per-session checker drawn from the tenant engine, and the goroutine
// driving the workload.
type Session struct {
	ID       int
	Device   string
	Workload string
	CVE      string
	Ops      uint64

	eng *engine
	ms  *machine.Session
	chk *checker.Checker

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu      sync.Mutex
	verdict *Verdict
	runErr  string
	retired bool
}

// Attach opens req.Count sessions against the tenant's engine for the
// device. Each session gets a fleet-unique ID, its own guest machine,
// and its own workload goroutine; the engine's attach event (stamped
// with tenant and session) is published for each.
func (t *Tenant) Attach(req AttachRequest) ([]*Session, error) {
	eng, err := t.engineFor(req.Device)
	if err != nil {
		return nil, err
	}
	workload := req.Workload
	if workload == "" {
		workload = "benign"
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	if count > 1024 {
		return nil, fmt.Errorf("daemon: attach count %d exceeds 1024", count)
	}

	// Snapshot the engine's recipe under swapMu: a concurrent reinstall
	// replaces these fields, and every session from this call should see
	// one consistent recipe.
	eng.swapMu.Lock()
	engBuild, engTarget, engPoc := eng.build, eng.target, eng.poc
	eng.swapMu.Unlock()

	var poc *cvesim.PoC
	var target *bench.Target
	switch workload {
	case "poc":
		cve := req.CVE
		if cve == "" && engPoc != nil {
			cve = engPoc.CVE
		}
		poc = cvesim.ByCVE(cve)
		if poc == nil {
			return nil, fmt.Errorf("daemon: unknown CVE %q", cve)
		}
		if poc.Device != req.Device {
			return nil, fmt.Errorf("daemon: %s targets device %q, not %q", cve, poc.Device, req.Device)
		}
	case "benign", "mixed":
		target = engTarget
		if target == nil {
			target = bench.TargetByName(req.Device, true)
		}
		if target == nil {
			return nil, fmt.Errorf("daemon: no benign workload for device %q", req.Device)
		}
	case "idle":
	default:
		return nil, fmt.Errorf("daemon: unknown workload %q", workload)
	}

	sessions := make([]*Session, 0, count)
	for i := 0; i < count; i++ {
		id := int(t.d.nextSession.Add(1))
		ms := machine.NewSession(id, engBuild, machine.WithMemory(1<<20))
		chk := sedspec.ProtectShared(ms.Attached(), eng.shared, checker.WithSessionID(id))
		s := &Session{
			ID:       id,
			Device:   req.Device,
			Workload: workload,
			Ops:      req.Ops,
			eng:      eng,
			ms:       ms,
			chk:      chk,
			stop:     make(chan struct{}),
			done:     make(chan struct{}),
		}
		if poc != nil {
			s.CVE = poc.CVE
		}

		t.mu.Lock()
		if t.draining {
			t.mu.Unlock()
			// The tenant started draining between engineFor and here;
			// retire the half-built session and stop.
			close(s.done)
			s.retire()
			return nil, fmt.Errorf("daemon: tenant %q is draining", t.name)
		}
		t.sessions[s.ID] = s
		t.mu.Unlock()

		go s.run(poc, target, req.Seed+uint64(i))
		sessions = append(sessions, s)
	}
	return sessions, nil
}

// Detach stops the session's goroutine, waits for it (bounded by the
// daemon's drain timeout), retires its checker — folding final stats
// into the engine's retired banks and publishing one detach event —
// and returns the final status.
func (t *Tenant) Detach(id int) (SessionStatus, error) {
	t.mu.Lock()
	s, ok := t.sessions[id]
	if ok {
		delete(t.sessions, id)
	}
	t.mu.Unlock()
	if !ok {
		return SessionStatus{}, fmt.Errorf("daemon: tenant %q has no session %d", t.name, id)
	}
	s.signalStop()
	if !s.waitDone(t.d.opts.DrainTimeout) {
		return SessionStatus{}, fmt.Errorf("daemon: session %d did not stop within %s", id, t.d.opts.DrainTimeout)
	}
	st := s.Status()
	s.retire()
	return st, nil
}

// Sessions lists the tenant's live sessions in ID order.
func (t *Tenant) Sessions() []SessionStatus {
	t.mu.Lock()
	ss := make([]*Session, 0, len(t.sessions))
	for _, s := range t.sessions {
		ss = append(ss, s)
	}
	t.mu.Unlock()
	out := make([]SessionStatus, 0, len(ss))
	for _, s := range ss {
		out = append(out, s.Status())
	}
	sortStatuses(out)
	return out
}

func sortStatuses(ss []SessionStatus) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].ID < ss[j-1].ID; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Session returns the live session's status.
func (t *Tenant) Session(id int) (SessionStatus, bool) {
	t.mu.Lock()
	s, ok := t.sessions[id]
	t.mu.Unlock()
	if !ok {
		return SessionStatus{}, false
	}
	return s.Status(), true
}

// Status snapshots the session. Counters come from the checker's
// atomic stat bank; the generation is the engine's current one (the
// session adopts it at its next round), read from the RCU pointer —
// the checker's own specGen field belongs to the session goroutine.
func (s *Session) Status() SessionStatus {
	st := s.chk.Stats()
	out := SessionStatus{
		ID:       s.ID,
		Device:   s.Device,
		Workload: s.Workload,
		CVE:      s.CVE,
		Rounds:   st.Rounds,
		Blocked:  st.Blocked,
		Warnings: st.Warnings,
		SpecGen:  s.eng.shared.Generation(),
	}
	select {
	case <-s.done:
	default:
		out.Running = true
	}
	s.mu.Lock()
	out.Err = s.runErr
	out.Verdict = s.verdict
	s.mu.Unlock()
	return out
}

func (s *Session) signalStop() {
	s.stopOnce.Do(func() { close(s.stop) })
}

// waitDone waits for the workload goroutine, bounded by d.
func (s *Session) waitDone(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-s.done:
			return true
		default:
			return false
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.done:
		return true
	case <-t.C:
		return false
	}
}

// retire closes the session's checker exactly once: counters fold into
// the engine's retired banks, the recorder folds into the registry,
// and one final detach event is published. The caller must have
// observed done (the workload goroutine still uses the checker until
// then).
func (s *Session) retire() {
	s.mu.Lock()
	if s.retired {
		s.mu.Unlock()
		return
	}
	s.retired = true
	s.mu.Unlock()
	sedspec.Unprotect(s.ms.Attached())
}

func (s *Session) setErr(err error) {
	s.mu.Lock()
	s.runErr = err.Error()
	s.mu.Unlock()
}

// run is the session goroutine: drive the workload, then idle until
// detach. It never exits before the stop signal, so the checker and
// machine stay valid until the control plane retires them.
func (s *Session) run(poc *cvesim.PoC, target *bench.Target, seed uint64) {
	defer close(s.done)
	switch s.Workload {
	case "idle":
	case "poc":
		s.replayPoC(poc)
	default:
		s.drive(target, seed)
	}
	<-s.stop
}

// replayPoC replays the exploit exactly as the batch CLI does
// (cvesim.PoC.RunProtected): one exploit pass, verdict from the
// anomaly error, ground truth from the device probe.
func (s *Session) replayPoC(p *cvesim.PoC) {
	err := p.Exploit(sedspec.NewDriver(s.ms.Attached()), s.ms.Machine())
	v := &Verdict{CVE: p.CVE}
	var anom *checker.Anomaly
	if errors.As(err, &anom) {
		v.Detected = true
		v.Strategy = anom.Strategy.String()
		v.Severity = anom.Severity().String()
		v.Detail = anom.Detail
	} else if err != nil && !errors.Is(err, machine.ErrBlocked) && !errors.Is(err, machine.ErrHalted) {
		s.setErr(err)
	}
	v.Succeeded = p.Succeeded(s.ms.Attached().Dev(), s.ms.Machine())
	s.mu.Lock()
	s.verdict = v
	s.mu.Unlock()
}

// drive loops the benign (or mixed) workload until the ops bound, an
// error (a blocked anomaly halting the machine lands here), or stop.
func (s *Session) drive(target *bench.Target, seed uint64) {
	d := sedspec.NewDriver(s.ms.Attached())
	w := target.NewSession(d, simclock.NewRand(seed^0x9e3779b97f4a7c15))
	if w.Prepare != nil {
		if err := w.Prepare(); err != nil {
			s.setErr(fmt.Errorf("prepare: %w", err))
			return
		}
	}
	var n uint64
	for {
		select {
		case <-s.stop:
			return
		default:
		}
		var err error
		// Mixed sessions fold in rare-but-legitimate commands (roughly
		// 1 in 89 ops): untrained edges that warn in enhancement mode,
		// feeding the audit trail the enhance pipeline replays.
		if s.Workload == "mixed" && n%89 == 13 {
			err = w.Rare()
		} else {
			err = w.Op()
		}
		if err != nil {
			s.setErr(err)
			return
		}
		n++
		if s.Ops > 0 && n >= s.Ops {
			return
		}
	}
}
