package daemon_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"sedspec/internal/daemon"
	"sedspec/internal/obs"
	"sedspec/internal/obs/stream"
)

// newTestDaemon builds an isolated daemon: its own hub and registry so
// parallel packages sharing the process-wide defaults cannot bleed
// events into the assertions.
func newTestDaemon(t *testing.T, opts daemon.Options) *daemon.Daemon {
	t.Helper()
	if opts.StoreRoot == "" {
		opts.StoreRoot = t.TempDir()
	}
	if opts.Hub == nil {
		opts.Hub = stream.NewHub()
	}
	if opts.Registry == nil {
		opts.Registry = obs.NewRegistry()
	}
	d, err := daemon.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// doJSON issues one control-plane request, asserts the status, and
// decodes the response into out (when non-nil).
func doJSON(t *testing.T, client *http.Client, method, url string, body any, wantStatus int, out any) []byte {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("%s %s: got %s, want %d: %s", method, url, resp.Status, wantStatus, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: undecodable response: %v: %s", method, url, err, data)
		}
	}
	return data
}

// TestDaemonLifecycleHTTP drives the full resident lifecycle over the
// HTTP control plane: tenant create, spec install, eight concurrent
// sessions, enhance+swap and rollback under load, per-tenant fleet
// filtering, tenant-stamped events, detach, and a drain that leaves
// zero goroutines behind.
func TestDaemonLifecycleHTTP(t *testing.T) {
	base := runtime.NumGoroutine()

	d := newTestDaemon(t, daemon.Options{
		DrainTimeout:   20 * time.Second,
		HealthInterval: 25 * time.Millisecond,
	})
	if err := d.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	tr := &http.Transport{}
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}
	url := "http://" + d.Addr()

	// Tenant + enhancement-mode engine (the mixed workload's rare
	// commands feed its audit trail).
	doJSON(t, client, "POST", url+"/tenants", map[string]string{"name": "prod"}, http.StatusCreated, nil)
	var eng daemon.EngineInfo
	doJSON(t, client, "POST", url+"/tenants/prod/specs",
		daemon.InstallRequest{Device: "fdc", Mode: "enhancement"}, http.StatusCreated, &eng)
	if eng.Generation == 0 || eng.Mode != "enhancement" {
		t.Fatalf("install: %+v", eng)
	}

	// Eight concurrent mixed sessions against the live engine.
	var attached struct {
		Sessions []daemon.SessionStatus `json:"sessions"`
	}
	doJSON(t, client, "POST", url+"/tenants/prod/sessions",
		daemon.AttachRequest{Device: "fdc", Workload: "mixed", Count: 8, Seed: 42}, http.StatusCreated, &attached)
	if len(attached.Sessions) != 8 {
		t.Fatalf("attached %d sessions, want 8", len(attached.Sessions))
	}

	// Enhance+swap under load: retry until the sessions audited enough
	// rare commands for the pipeline to have input.
	var swap daemon.SwapResult
	deadline := time.Now().Add(30 * time.Second)
	for {
		req, _ := json.Marshal(daemon.SwapRequest{Device: "fdc", Enhance: true})
		resp, err := client.Post(url+"/tenants/prod/swap", "application/json", bytes.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(data, &swap); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("enhance+swap never succeeded: %s", data)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if swap.ToGen <= swap.FromGen || swap.Warnings == 0 {
		t.Fatalf("enhance swap: %+v", swap)
	}

	// Rollback to the first stored generation, still under load.
	var back daemon.SwapResult
	doJSON(t, client, "POST", url+"/tenants/prod/swap",
		daemon.SwapRequest{Device: "fdc", Generation: 1}, http.StatusOK, &back)
	if back.StoreGen != 1 {
		t.Fatalf("rollback: %+v", back)
	}

	// The sessions survived both swaps and keep making progress.
	var list struct {
		Sessions []daemon.SessionStatus `json:"sessions"`
	}
	doJSON(t, client, "GET", url+"/tenants/prod/sessions", nil, http.StatusOK, &list)
	if len(list.Sessions) != 8 {
		t.Fatalf("%d sessions after swaps, want 8", len(list.Sessions))
	}
	rounds := func(ss []daemon.SessionStatus) uint64 {
		var n uint64
		for _, s := range ss {
			if !s.Running {
				t.Fatalf("session %d not running: %+v", s.ID, s)
			}
			n += s.Rounds
		}
		return n
	}
	before := rounds(list.Sessions)
	time.Sleep(50 * time.Millisecond)
	doJSON(t, client, "GET", url+"/tenants/prod/sessions", nil, http.StatusOK, &list)
	if after := rounds(list.Sessions); after <= before {
		t.Fatalf("sessions stalled after swaps: %d -> %d rounds", before, after)
	}

	// Per-tenant fleet filtering: the engine's health row carries the
	// tenant name and survives the ?tenant= filter.
	var fleet stream.FleetSnapshot
	fleetDeadline := time.Now().Add(10 * time.Second)
	for {
		doJSON(t, client, "GET", url+"/fleet?tenant=prod", nil, http.StatusOK, &fleet)
		if len(fleet.Devices) > 0 {
			break
		}
		if time.Now().After(fleetDeadline) {
			t.Fatal("no tenant rows in /fleet?tenant=prod")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, dev := range fleet.Devices {
		if dev.Tenant != "prod" {
			t.Fatalf("/fleet?tenant=prod returned row for tenant %q", dev.Tenant)
		}
	}

	// The event stream is stamped with the tenant identity.
	resp, err := client.Get(url + "/anomalies?limit=256&kinds=attach,swap")
	if err != nil {
		t.Fatal(err)
	}
	tenanted := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev stream.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		if ev.Tenant == "prod" {
			tenanted++
		}
	}
	_ = resp.Body.Close()
	if tenanted == 0 {
		t.Fatal("no tenant-stamped attach/swap events in the stream")
	}

	// Detach one session; its final status folds and reports.
	var fin daemon.SessionStatus
	id := list.Sessions[0].ID
	doJSON(t, client, "DELETE", fmt.Sprintf("%s/tenants/prod/sessions/%d", url, id), nil, http.StatusOK, &fin)
	if fin.Running || fin.Rounds == 0 {
		t.Fatalf("detached session status: %+v", fin)
	}
	var status struct {
		Sessions int `json:"sessions"`
	}
	doJSON(t, client, "GET", url+"/status", nil, http.StatusOK, &status)
	if status.Sessions != 7 {
		t.Fatalf("daemon reports %d sessions after detach, want 7", status.Sessions)
	}

	// Drain: the remaining seven sessions stop, fold, and every daemon
	// goroutine exits.
	if err := d.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	tr.CloseIdleConnections()
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base {
			break
		} else if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after drain: %d, baseline %d\n%s",
				n, base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDaemonTenantValidationHTTP pins the control plane's edges: bad
// tenant names are rejected at creation (the store layer's traversal
// guard), duplicates conflict, and unknown tenants 404.
func TestDaemonTenantValidationHTTP(t *testing.T) {
	d := newTestDaemon(t, daemon.Options{})
	if err := d.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	client := &http.Client{Timeout: 10 * time.Second}
	defer client.CloseIdleConnections()
	url := "http://" + d.Addr()

	doJSON(t, client, "POST", url+"/tenants", map[string]string{"name": "ok-1"}, http.StatusCreated, nil)
	doJSON(t, client, "POST", url+"/tenants", map[string]string{"name": "ok-1"}, http.StatusConflict, nil)
	for _, bad := range []string{"", "../escape", "a/b", ".hidden", "-flag"} {
		doJSON(t, client, "POST", url+"/tenants", map[string]string{"name": bad}, http.StatusBadRequest, nil)
	}
	doJSON(t, client, "GET", url+"/tenants/ghost", nil, http.StatusNotFound, nil)
	doJSON(t, client, "DELETE", url+"/tenants/ghost", nil, http.StatusNotFound, nil)
	doJSON(t, client, "POST", url+"/tenants/ok-1/specs",
		daemon.InstallRequest{Device: "no-such-device"}, http.StatusBadRequest, nil)
	doJSON(t, client, "POST", url+"/tenants/ok-1/sessions",
		daemon.AttachRequest{Device: "fdc"}, http.StatusBadRequest, nil) // no engine installed
}
