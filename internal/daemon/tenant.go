package daemon

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"sedspec"
	"sedspec/internal/bench"
	"sedspec/internal/checker"
	"sedspec/internal/cvesim"
	"sedspec/internal/machine"
	"sedspec/internal/specstore"
)

// Tenant is one control-plane namespace: a spec store, at most one
// enforcement engine per device, and the live sessions attached to
// those engines.
type Tenant struct {
	name  string
	store *specstore.Store
	d     *Daemon

	mu       sync.Mutex
	engines  map[string]*engine
	sessions map[int]*Session
	draining bool
}

// engine is one device's enforcement engine inside a tenant: the
// shared sealed spec plus the recipe (build/train) that produced it,
// kept so enhancement and session attachment can rebuild machines.
type engine struct {
	device string
	corpus string
	mode   checker.Mode
	budget int

	shared *checker.Shared
	build  machine.BuildFunc
	train  sedspec.TrainFunc
	target *bench.Target // benign corpus; nil for cve corpora
	poc    *cvesim.PoC   // cve corpus; nil for benign

	removeHealth func()

	// swapMu serializes enhance/swap so meta (the store version the
	// engine currently enforces) tracks the published generation.
	swapMu sync.Mutex
	meta   sedspec.SpecVersion
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Store returns the tenant's spec-store namespace.
func (t *Tenant) Store() *specstore.Store { return t.store }

// InstallRequest asks for a spec to be learned (or loaded from the
// tenant's store cache) and installed as the device's engine.
type InstallRequest struct {
	// Device names the emulated device (fdc, ehci, pcnet, sdhci, scsi).
	// May be left empty for cve corpora (inferred from the PoC).
	Device string `json:"device"`
	// Corpus selects the training input: "benign" (default, the
	// device's benign workload corpus) or "cve:<CVE-ID>" (the PoC's
	// training routine — the corpus the batch CLI uses when replaying
	// that PoC, so daemon verdicts match it exactly).
	Corpus string `json:"corpus,omitempty"`
	// Mode is "protection" (default) or "enhancement".
	Mode string `json:"mode,omitempty"`
	// Budget bounds simulated steps per checked round (0 = engine
	// default).
	Budget int `json:"budget,omitempty"`
}

// EngineInfo describes one installed engine.
type EngineInfo struct {
	Device     string `json:"device"`
	Corpus     string `json:"corpus"`
	Mode       string `json:"mode"`
	Budget     int    `json:"budget,omitempty"`
	Generation uint64 `json:"generation"`
	Swaps      uint64 `json:"swaps"`
	Sessions   int    `json:"sessions"`
	CacheHit   bool   `json:"cache_hit,omitempty"`
	Parent     uint64 `json:"parent,omitempty"`
	CreatedBy  string `json:"created_by,omitempty"`
}

func (e *engine) info() EngineInfo {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	return e.infoLocked()
}

// infoLocked is info for callers already holding swapMu.
func (e *engine) infoLocked() EngineInfo {
	meta := e.meta
	return EngineInfo{
		Device:     e.device,
		Corpus:     e.corpus,
		Mode:       e.mode.String(),
		Budget:     e.budget,
		Generation: e.shared.Generation(),
		Swaps:      e.shared.SwapCount(),
		Sessions:   e.shared.Sessions(),
		Parent:     meta.Parent,
		CreatedBy:  meta.CreatedBy,
	}
}

// resolveCorpus maps an install request onto the device recipe that
// trains it.
func resolveCorpus(device, corpus string) (dev string, build machine.BuildFunc, train sedspec.TrainFunc, target *bench.Target, poc *cvesim.PoC, err error) {
	if id, ok := strings.CutPrefix(corpus, "cve:"); ok {
		p := cvesim.ByCVE(id)
		if p == nil {
			return "", nil, nil, nil, nil, fmt.Errorf("daemon: unknown CVE %q", id)
		}
		if device != "" && device != p.Device {
			return "", nil, nil, nil, nil, fmt.Errorf("daemon: %s targets device %q, not %q", id, p.Device, device)
		}
		return p.Device, p.Build, p.Train, nil, p, nil
	}
	if corpus != "benign" {
		return "", nil, nil, nil, nil, fmt.Errorf("daemon: unknown corpus %q (want \"benign\" or \"cve:<ID>\")", corpus)
	}
	tg := bench.TargetByName(device, true)
	if tg == nil {
		return "", nil, nil, nil, nil, fmt.Errorf("daemon: unknown device %q", device)
	}
	return tg.Name, tg.Build, tg.Train, tg, nil, nil
}

// Install learns (or cache-loads) the requested spec in the tenant's
// store namespace and installs it: a fresh engine when the device has
// none, or a hot-swap onto the running engine — live sessions pick the
// new generation up at their next round, no guest restarts.
func (t *Tenant) Install(req InstallRequest) (EngineInfo, error) {
	corpus := req.Corpus
	if corpus == "" {
		corpus = "benign"
	}
	device, build, train, target, poc, err := resolveCorpus(req.Device, corpus)
	if err != nil {
		return EngineInfo{}, err
	}
	mode := checker.ModeProtection
	switch req.Mode {
	case "", "protection":
	case "enhancement":
		mode = checker.ModeEnhancement
	default:
		return EngineInfo{}, fmt.Errorf("daemon: unknown mode %q", req.Mode)
	}

	// Learn outside the tenant lock: a cache miss trains the full
	// corpus, and sibling installs or attaches must not stall on it.
	m := machine.New(machine.WithMemory(1 << 20))
	dev, aopts := build()
	att := m.Attach(dev, aopts...)
	spec, meta, hit, err := sedspec.LearnCached(t.store, att, corpus, train)
	if err != nil {
		return EngineInfo{}, fmt.Errorf("daemon: learn %s: %w", device, err)
	}

	t.mu.Lock()
	if t.draining {
		t.mu.Unlock()
		return EngineInfo{}, fmt.Errorf("daemon: tenant %q is draining", t.name)
	}
	if eng := t.engines[device]; eng != nil {
		t.mu.Unlock()
		// Reinstall onto a live engine: the mode and budget are sealed
		// into every session at engine construction, so only the spec
		// itself can change under running sessions.
		if req.Mode != "" && req.Mode != eng.mode.String() {
			return EngineInfo{}, fmt.Errorf("daemon: engine %s runs %s mode; detach and reinstall to change it", device, eng.mode)
		}
		eng.swapMu.Lock()
		defer eng.swapMu.Unlock()
		if err := eng.shared.Swap(spec); err != nil {
			return EngineInfo{}, err
		}
		eng.meta = meta
		eng.corpus = corpus
		eng.build, eng.train, eng.target, eng.poc = build, train, target, poc
		info := eng.infoLocked()
		info.CacheHit = hit
		return info, nil
	}
	copts := []checker.Option{
		checker.WithMode(mode),
		checker.WithStream(t.d.hub),
		checker.WithObs(t.d.reg),
		checker.WithTenant(t.name),
	}
	if req.Budget > 0 {
		copts = append(copts, checker.WithBudget(req.Budget))
	}
	eng := &engine{
		device: device,
		corpus: corpus,
		mode:   mode,
		budget: req.Budget,
		shared: checker.NewShared(spec, copts...),
		build:  build,
		train:  train,
		target: target,
		poc:    poc,
		meta:   meta,
	}
	eng.removeHealth = t.d.health.AddEngine(eng.shared.EngineStatus)
	t.engines[device] = eng
	t.mu.Unlock()
	info := eng.info()
	info.CacheHit = hit
	return info, nil
}

// Engines lists the tenant's installed engines in device order.
func (t *Tenant) Engines() []EngineInfo {
	t.mu.Lock()
	engs := make([]*engine, 0, len(t.engines))
	for _, e := range t.engines {
		engs = append(engs, e)
	}
	t.mu.Unlock()
	out := make([]EngineInfo, 0, len(engs))
	for _, e := range engs {
		out = append(out, e.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}

// Versions lists the tenant store's published versions for a device.
func (t *Tenant) Versions(device string) []specstore.VersionMeta {
	return t.store.Versions(device)
}

func (t *Tenant) engineFor(device string) (*engine, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.draining {
		return nil, fmt.Errorf("daemon: tenant %q is draining", t.name)
	}
	eng := t.engines[device]
	if eng == nil {
		return nil, fmt.Errorf("daemon: tenant %q has no spec installed for device %q", t.name, device)
	}
	return eng, nil
}

// SwapRequest triggers a spec replacement on a running engine: either
// the enhancement pipeline (replay the engine's audited warnings into
// a child generation) or a rollout/rollback to a specific stored
// generation.
type SwapRequest struct {
	Device string `json:"device"`
	// Enhance runs the enhancement pipeline over the engine's audit
	// trail. Mutually exclusive with Generation.
	Enhance bool `json:"enhance,omitempty"`
	// Generation selects a stored generation to swap to.
	Generation uint64 `json:"generation,omitempty"`
}

// SwapResult reports the applied swap.
type SwapResult struct {
	Device   string `json:"device"`
	FromGen  uint64 `json:"from_generation"`
	ToGen    uint64 `json:"to_generation"`
	Warnings int    `json:"warnings_replayed,omitempty"`
	StoreGen uint64 `json:"store_generation"`
}

// Swap applies a SwapRequest against the tenant's running engine. The
// engine's RCU swap grace-waits mid-round sessions, so on return every
// session round checks the new generation.
func (t *Tenant) Swap(req SwapRequest) (SwapResult, error) {
	eng, err := t.engineFor(req.Device)
	if err != nil {
		return SwapResult{}, err
	}
	eng.swapMu.Lock()
	defer eng.swapMu.Unlock()
	from := eng.shared.Generation()

	if req.Enhance {
		audit := eng.shared.Audit()
		if len(audit) == 0 {
			return SwapResult{}, fmt.Errorf("daemon: engine %s has no audited warnings to enhance from (run sessions in enhancement mode first)", req.Device)
		}
		m := machine.New(machine.WithMemory(1 << 20))
		dev, aopts := eng.build()
		att := m.Attach(dev, aopts...)
		spec, meta, err := sedspec.EnhanceToStore(t.store, att, eng.meta, eng.train, audit)
		if err != nil {
			return SwapResult{}, fmt.Errorf("daemon: enhance %s: %w", req.Device, err)
		}
		if err := eng.shared.Swap(spec); err != nil {
			return SwapResult{}, err
		}
		// The audited warnings are folded into the new generation;
		// clearing them makes the next enhance incremental.
		eng.shared.ClearAudit()
		eng.shared.ClearWarnings()
		eng.meta = meta
		return SwapResult{
			Device:   req.Device,
			FromGen:  from,
			ToGen:    eng.shared.Generation(),
			Warnings: len(audit),
			StoreGen: meta.Generation,
		}, nil
	}

	if req.Generation == 0 {
		return SwapResult{}, fmt.Errorf("daemon: swap needs enhance=true or a generation")
	}
	var meta specstore.VersionMeta
	found := false
	for _, v := range t.store.Versions(req.Device) {
		if v.Generation == req.Generation {
			meta, found = v, true
			break
		}
	}
	if !found {
		return SwapResult{}, fmt.Errorf("daemon: no stored generation %d for device %s", req.Generation, req.Device)
	}
	dev, _ := eng.build()
	spec, err := t.store.Load(dev.Program(), meta)
	if err != nil {
		return SwapResult{}, err
	}
	if err := eng.shared.Swap(spec); err != nil {
		return SwapResult{}, err
	}
	eng.meta = meta
	return SwapResult{
		Device:   req.Device,
		FromGen:  from,
		ToGen:    eng.shared.Generation(),
		StoreGen: meta.Generation,
	}, nil
}

// drain stops every session goroutine, retires each session's checker
// (folding stats/coverage and flushing one final detach event), and
// unregisters the tenant's engines from the health aggregator. One
// deadline covers the whole tenant.
func (t *Tenant) drain(timeout time.Duration) error {
	t.mu.Lock()
	t.draining = true
	sessions := make([]*Session, 0, len(t.sessions))
	for _, s := range t.sessions {
		sessions = append(sessions, s)
	}
	t.sessions = make(map[int]*Session)
	engines := make([]*engine, 0, len(t.engines))
	for _, e := range t.engines {
		engines = append(engines, e)
	}
	t.engines = make(map[string]*engine)
	t.mu.Unlock()

	// Signal everything first so sessions stop concurrently, then wait
	// under one shared deadline.
	for _, s := range sessions {
		s.signalStop()
	}
	deadline := time.Now().Add(timeout)
	var stuck []string
	for _, s := range sessions {
		if !s.waitDone(time.Until(deadline)) {
			stuck = append(stuck, fmt.Sprintf("%d", s.ID))
			continue
		}
		s.retire()
	}
	for _, e := range engines {
		e.removeHealth()
	}
	if len(stuck) > 0 {
		return fmt.Errorf("daemon: tenant %q: sessions not drained within %s: %s",
			t.name, timeout, strings.Join(stuck, ", "))
	}
	return nil
}
