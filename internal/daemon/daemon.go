// Package daemon is the resident fleet-enforcement service: one
// long-running process hosting many named tenants, each with its own
// spec-store namespace and a set of live enforcement sessions.
//
// The batch CLIs build a machine, run, and exit; the daemon instead
// keeps the paper's enforcement model resident. A tenant installs a
// spec once (learned or loaded from its namespace store), the daemon
// seals it into a shared engine (checker.Shared), and any number of
// sessions — each a guest machine plus a per-session checker driven by
// its own goroutine — attach and detach against the live engine.
// Enhancement and hot-swap run against running sessions using the
// engine's RCU swap and epoch-grace machinery, so a fleet picks up a
// new spec generation without restarting a single guest.
//
// The control plane is plain HTTP/JSON mounted on the same
// stream.Server mux that serves /fleet, /metrics, and the /anomalies
// tail, so one listener exposes both the introspection surface and the
// tenant/session API. Every event an engine publishes is stamped with
// the owning tenant's name.
//
// Shutdown and tenant deletion drain: session goroutines are stopped,
// each session's checker is retired (folding its stats, warnings, and
// coverage into the engine's retired banks and flushing one final
// detach event), and engines are unregistered from the health
// aggregator — all under a configurable drain deadline.
package daemon

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sedspec/internal/obs"
	"sedspec/internal/obs/journal"
	"sedspec/internal/obs/stream"
	"sedspec/internal/specstore"
)

// Options configures a Daemon. Zero values select the process-wide
// defaults (hub, registry) and conservative timeouts.
type Options struct {
	// StoreRoot is the directory tenant spec-store namespaces live
	// under (one subdirectory per tenant). Required.
	StoreRoot string
	// DrainTimeout bounds how long Close, DeleteTenant, and session
	// detach wait for workload goroutines to stop (default 10s).
	DrainTimeout time.Duration
	// Hub is the telemetry hub engines publish into (default
	// stream.Default()). Tests pass their own hub for isolation.
	Hub *stream.Hub
	// Registry is the observability registry sessions' flight
	// recorders report into (default obs.Default()).
	Registry *obs.Registry
	// HealthInterval is the fleet aggregator's tick period (default
	// 5s via stream.HealthOptions).
	HealthInterval time.Duration
	// OverheadBudgetNs arms the enforcement-overhead watchdog
	// (0 disables).
	OverheadBudgetNs float64
	// FollowBuffer sizes /anomalies?follow=1 subscriber rings.
	FollowBuffer int
	// Journal, when its Dir is non-empty, opens a durable event journal
	// there: rare-path events persist across restarts, boot replays the
	// tail into the hub's recent ring and the health baselines, and the
	// /journal endpoint serves history.
	Journal journal.Options
}

// Daemon is the resident service: tenants, their engines and sessions,
// and the HTTP surface. All methods are safe for concurrent use.
type Daemon struct {
	opts   Options
	hub    *stream.Hub
	reg    *obs.Registry
	health *stream.Health
	srv    *stream.Server
	jrnl   *journal.Journal

	stopHealth func()

	// nextSession allocates fleet-wide unique session IDs so two
	// tenants' anomaly events never alias on the session column.
	nextSession atomic.Int64

	mu      sync.Mutex
	tenants map[string]*Tenant
	closed  bool
}

// New builds a daemon, mounts the control plane on a fresh
// introspection server, and starts the health ticker. Call Serve to
// bind a listener, or Server().ServeHTTP under httptest.
func New(opts Options) (*Daemon, error) {
	if opts.StoreRoot == "" {
		return nil, fmt.Errorf("daemon: Options.StoreRoot is required")
	}
	if opts.DrainTimeout <= 0 {
		opts.DrainTimeout = 10 * time.Second
	}
	if opts.Hub == nil {
		opts.Hub = stream.Default()
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default()
	}
	d := &Daemon{
		opts:    opts,
		hub:     opts.Hub,
		reg:     opts.Registry,
		tenants: make(map[string]*Tenant),
	}
	d.health = stream.NewHealth(d.reg, d.hub, stream.HealthOptions{
		Interval:      opts.HealthInterval,
		BudgetNsPerOp: opts.OverheadBudgetNs,
	})
	d.srv = stream.NewServer(stream.ServerOptions{
		Registry:     d.reg,
		Hub:          d.hub,
		Health:       d.health,
		FollowBuffer: opts.FollowBuffer,
	})
	d.registerRoutes()

	// The journal opens (replaying and repairing any torn tail) before
	// the health ticker starts and before any subscriber attaches:
	// restored events seed the hub's recent ring and seq counter, fold
	// into per-tenant health baselines so /fleet survives the restart,
	// and only then does the journal begin persisting new traffic.
	if opts.Journal.Dir != "" {
		j, err := journal.Open(opts.Journal)
		if err != nil {
			return nil, fmt.Errorf("daemon: open journal: %w", err)
		}
		tail, err := j.Tail(stream.RecentCap)
		if err != nil {
			j.Close()
			return nil, fmt.Errorf("daemon: replay journal: %w", err)
		}
		d.hub.Restore(tail)
		rows, err := j.FoldBaselines()
		if err != nil {
			j.Close()
			return nil, fmt.Errorf("daemon: fold journal baselines: %w", err)
		}
		d.health.AddBaseline(rows)
		d.health.SetJournal(j.Status)
		j.Attach(d.hub)
		d.jrnl = j
		d.srv.Handle("GET /journal", journal.Handler(j))
	}

	d.stopHealth = d.health.Start()
	return d, nil
}

// Journal returns the daemon's durable journal (nil when persistence
// is disabled).
func (d *Daemon) Journal() *journal.Journal { return d.jrnl }

// Server returns the introspection+control-plane HTTP surface (useful
// under httptest).
func (d *Daemon) Server() *stream.Server { return d.srv }

// Serve binds addr (port 0 allowed) and serves in the background.
func (d *Daemon) Serve(addr string) error { return d.srv.Start(addr) }

// Addr returns the bound listen address ("" before Serve).
func (d *Daemon) Addr() string { return d.srv.Addr() }

// Health returns the fleet aggregator (tests snapshot it directly).
func (d *Daemon) Health() *stream.Health { return d.health }

// CreateTenant provisions a named tenant: its spec-store namespace is
// created (or reopened) under StoreRoot. The name is validated against
// path traversal by the store layer.
func (d *Daemon) CreateTenant(name string) (*Tenant, error) {
	store, err := specstore.OpenNamespace(d.opts.StoreRoot, name)
	if err != nil {
		return nil, err
	}
	store.SetStream(d.hub)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, fmt.Errorf("daemon: closed")
	}
	if _, ok := d.tenants[name]; ok {
		return nil, fmt.Errorf("daemon: tenant %q already exists", name)
	}
	t := &Tenant{
		name:     name,
		store:    store,
		d:        d,
		engines:  make(map[string]*engine),
		sessions: make(map[int]*Session),
	}
	d.tenants[name] = t
	return t, nil
}

// Tenant returns the named live tenant.
func (d *Daemon) Tenant(name string) (*Tenant, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.tenants[name]
	return t, ok
}

// TenantNames lists live tenants in name order.
func (d *Daemon) TenantNames() []string {
	d.mu.Lock()
	names := make([]string, 0, len(d.tenants))
	for n := range d.tenants {
		names = append(names, n)
	}
	d.mu.Unlock()
	sort.Strings(names)
	return names
}

// ErrNoTenant marks lookups of tenants the daemon does not host.
var ErrNoTenant = errors.New("daemon: no such tenant")

// DeleteTenant drains the tenant's sessions (within DrainTimeout),
// unregisters its engines, and removes it. The on-disk spec-store
// namespace is kept — recreating the tenant reopens its history.
func (d *Daemon) DeleteTenant(name string) error {
	d.mu.Lock()
	t, ok := d.tenants[name]
	if ok {
		delete(d.tenants, name)
	}
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTenant, name)
	}
	return t.drain(d.opts.DrainTimeout)
}

// SessionCount reports live sessions across all tenants.
func (d *Daemon) SessionCount() int {
	d.mu.Lock()
	ts := make([]*Tenant, 0, len(d.tenants))
	for _, t := range d.tenants {
		ts = append(ts, t)
	}
	d.mu.Unlock()
	n := 0
	for _, t := range ts {
		t.mu.Lock()
		n += len(t.sessions)
		t.mu.Unlock()
	}
	return n
}

// Close drains every tenant, stops the health ticker, and shuts the
// HTTP server down. It returns an error when any session failed to
// stop within DrainTimeout (the daemon exits non-zero on that path so
// a supervisor can tell a clean drain from a wedged one). Idempotent.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	ts := make([]*Tenant, 0, len(d.tenants))
	for _, t := range d.tenants {
		ts = append(ts, t)
	}
	d.tenants = make(map[string]*Tenant)
	d.mu.Unlock()

	var errs []string
	for _, t := range ts {
		if err := t.drain(d.opts.DrainTimeout); err != nil {
			errs = append(errs, err.Error())
		}
	}
	d.stopHealth()
	// The journal closes after the tenant drain and health stop: every
	// final detach event and the last health tick are already in the
	// hub, and journal.Close drains its subscription backlog to disk
	// before fsyncing and returning.
	if d.jrnl != nil {
		if err := d.jrnl.Close(); err != nil {
			errs = append(errs, err.Error())
		}
	}
	if err := d.srv.Close(); err != nil {
		errs = append(errs, err.Error())
	}
	if len(errs) > 0 {
		return fmt.Errorf("daemon: close: %s", strings.Join(errs, "; "))
	}
	return nil
}
