package analysis

import (
	"fmt"
	"sort"
	"strings"

	"sedspec/internal/ir"
	"sedspec/internal/itccfg"
)

// ParamClass is the device-state parameter classification of Table I.
type ParamClass uint8

const (
	// ClassRegister mirrors a physical device register (Rule 1).
	ClassRegister ParamClass = iota + 1
	// ClassBuffer is a fixed-length buffer variable (Rule 2).
	ClassBuffer
	// ClassIndex counts or indexes buffer positions (Rule 2).
	ClassIndex
	// ClassFuncPtr is a function-pointer variable (Rule 2).
	ClassFuncPtr
)

func (c ParamClass) String() string {
	switch c {
	case ClassRegister:
		return "register"
	case ClassBuffer:
		return "buffer"
	case ClassIndex:
		return "index"
	case ClassFuncPtr:
		return "funcptr"
	default:
		return fmt.Sprintf("ParamClass(%d)", uint8(c))
	}
}

// Param is one selected device-state parameter.
type Param struct {
	Field int        `json:"field"`
	Name  string     `json:"name"`
	Class ParamClass `json:"class"`
	// Rule is the selection rule that admitted the parameter (1 or 2).
	Rule int `json:"rule"`
}

// Selection is the device state: the parameters chosen by the CFG analyzer.
type Selection struct {
	prog    *ir.Program
	Params  []Param
	byField map[int]int
}

// NewSelection rebuilds a selection from stored parameters (spec
// deserialization).
func NewSelection(prog *ir.Program, params []Param) *Selection {
	s := &Selection{prog: prog, Params: params, byField: make(map[int]int, len(params))}
	for i, p := range params {
		s.byField[p.Field] = i
	}
	return s
}

// Program returns the device program the selection belongs to.
func (s *Selection) Program() *ir.Program { return s.prog }

// Contains reports whether the field is a selected parameter.
func (s *Selection) Contains(field int) bool {
	_, ok := s.byField[field]
	return ok
}

// ParamFor returns the parameter record for a field, or nil.
func (s *Selection) ParamFor(field int) *Param {
	if i, ok := s.byField[field]; ok {
		return &s.Params[i]
	}
	return nil
}

// WatchList returns the selected field indices in ascending order — the
// watch set installed on the interpreter for observation runs.
func (s *Selection) WatchList() []int {
	out := make([]int, 0, len(s.Params))
	for _, p := range s.Params {
		out = append(out, p.Field)
	}
	sort.Ints(out)
	return out
}

// String renders the selection as a Table I-style summary.
func (s *Selection) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "device state of %s (%d params):\n", s.prog.Name, len(s.Params))
	for _, p := range s.Params {
		fmt.Fprintf(&sb, "  %-16s %-8s rule %d (%s)\n",
			p.Name, p.Class, p.Rule, s.prog.Fields[p.Field].CType())
	}
	return sb.String()
}

// SelectParams applies the paper's two selection rules over the observed
// control flow:
//
// Candidates are the variables influencing conditional and indirect jump
// structures found in the ITC-CFG. Rule 1 admits candidates that mirror
// physical device registers. Rule 2 admits fixed-length buffers touched by
// observed code, integer variables used to index or count buffer
// positions, and function pointers invoked indirectly.
func SelectParams(g *itccfg.Graph) *Selection {
	p := g.Program()
	sel := &Selection{prog: p, byField: make(map[int]int)}

	flows := make(map[int]*HandlerFlow)
	flowOf := func(h int) *HandlerFlow {
		f := flows[h]
		if f == nil {
			f = FlowOf(p, h)
			flows[h] = f
		}
		return f
	}

	condInfluencers := make(map[int]bool) // fields feeding branch/switch conditions
	bufUsed := make(map[int]bool)         // buffer fields accessed
	idxFields := make(map[int]bool)       // int fields used as index/length
	funcCalled := make(map[int]bool)      // func fields invoked indirectly

	noteInfluence := func(hf *HandlerFlow, temp int, into map[int]bool) {
		for f := range hf.TempInfluence(temp).Fields {
			into[f] = true
		}
	}

	for _, n := range g.Nodes() {
		h := &p.Handlers[n.Ref.Handler]
		if h.Region != ir.RegionDevice {
			continue
		}
		b := &h.Blocks[n.Ref.Block]
		hf := flowOf(n.Ref.Handler)

		switch b.Term.Kind {
		case ir.TermBranch:
			noteInfluence(hf, b.Term.A, condInfluencers)
			noteInfluence(hf, b.Term.B, condInfluencers)
		case ir.TermSwitch:
			noteInfluence(hf, b.Term.A, condInfluencers)
		}

		for oi := range b.Ops {
			op := &b.Ops[oi]
			switch op.Code {
			case ir.OpBufLoad, ir.OpBufStore:
				bufUsed[op.Field] = true
				noteInfluence(hf, op.Idx, idxFields)
			case ir.OpDMAToBuf, ir.OpDMAFromBuf:
				bufUsed[op.Field] = true
				noteInfluence(hf, op.Idx, idxFields)
				noteInfluence(hf, op.B, idxFields)
			case ir.OpIOToBuf:
				bufUsed[op.Field] = true
				noteInfluence(hf, op.Idx, idxFields)
				noteInfluence(hf, op.B, idxFields)
			case ir.OpCallPtr:
				funcCalled[op.Field] = true
			}
		}
	}

	// Counting variables (Table I row 3): integer fields compared against
	// index-influencing values in observed conditions also count or bound
	// buffer positions (data_len against data_pos, and so on). Iterate to
	// a fixpoint so chains of counters resolve.
	isIdxLike := func(inf *Influence) bool {
		for f := range inf.Fields {
			if idxFields[f] || (p.Fields[f].Kind == ir.FieldBuf && bufUsed[f]) {
				return true
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			h := &p.Handlers[n.Ref.Handler]
			if h.Region != ir.RegionDevice {
				continue
			}
			b := &h.Blocks[n.Ref.Block]
			if b.Term.Kind != ir.TermBranch {
				continue
			}
			hf := flowOf(n.Ref.Handler)
			infA, infB := hf.TempInfluence(b.Term.A), hf.TempInfluence(b.Term.B)
			for _, pair := range [][2]*Influence{{infA, infB}, {infB, infA}} {
				if !isIdxLike(pair[0]) {
					continue
				}
				for f := range pair[1].Fields {
					if p.Fields[f].Kind == ir.FieldInt && !idxFields[f] {
						idxFields[f] = true
						changed = true
					}
				}
			}
		}
	}

	add := func(field int, class ParamClass, rule int) {
		if _, dup := sel.byField[field]; dup {
			return
		}
		sel.byField[field] = len(sel.Params)
		sel.Params = append(sel.Params, Param{
			Field: field,
			Name:  p.Fields[field].Name,
			Class: class,
			Rule:  rule,
		})
	}

	for fi := range p.Fields {
		f := &p.Fields[fi]
		switch {
		// Rule 1: register-backed variables influencing control flow.
		case f.Kind == ir.FieldInt && f.HWRegister && condInfluencers[fi]:
			add(fi, ClassRegister, 1)
		// Rule 2: buffers, their indices/counters, function pointers.
		case f.Kind == ir.FieldBuf && bufUsed[fi]:
			add(fi, ClassBuffer, 2)
		case f.Kind == ir.FieldInt && idxFields[fi]:
			add(fi, ClassIndex, 2)
		case f.Kind == ir.FieldFunc && funcCalled[fi]:
			add(fi, ClassFuncPtr, 2)
		}
	}
	return sel
}

// ObservationPoints returns the blocks where observation instrumentation
// is placed: conditional and indirect jump sites in the observed control
// flow, plus typed blocks (entry/exit/command boundaries), per paper §IV-B.
func ObservationPoints(g *itccfg.Graph) []ir.BlockRef {
	var out []ir.BlockRef
	p := g.Program()
	for _, n := range g.Nodes() {
		b := p.Block(n.Ref)
		interesting := b.Kind != ir.KindNormal ||
			b.Term.Kind == ir.TermBranch || b.Term.Kind == ir.TermSwitch
		if !interesting {
			for oi := range b.Ops {
				if b.Ops[oi].Code == ir.OpCallPtr {
					interesting = true
					break
				}
			}
		}
		if interesting {
			out = append(out, n.Ref)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Handler != out[j].Handler {
			return out[i].Handler < out[j].Handler
		}
		return out[i].Block < out[j].Block
	})
	return out
}
