package analysis_test

import (
	"bytes"
	"testing"

	"sedspec/internal/analysis"
	"sedspec/internal/interp"
	"sedspec/internal/ir"
	"sedspec/internal/itccfg"
	"sedspec/internal/trace"
)

// buildAnalyzed constructs a program exercising the analyzer: a register
// influencing a branch (Rule 1), a buffer with index and count fields
// (Rule 2), a function pointer called indirectly (Rule 2), an env read
// feeding a condition (sync point), and droppable side effects.
func buildAnalyzed(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("analyzed")
	ctrl := b.Int("ctrl", ir.W8, ir.HWRegister())
	unusedReg := b.Int("unused_reg", ir.W8, ir.HWRegister())
	buf := b.Buf("buf", 32)
	pos := b.Int("pos", ir.W16)
	limit := b.Int("limit", ir.W16)
	scratch := b.Int("scratch", ir.W32)
	cb := b.Func("cb")
	_ = unusedReg

	h := b.Handler("dispatch")
	e := h.Block("entry").Entry()
	c := e.Load(ctrl, "c = s->ctrl")
	one := e.Const(1, "1")
	e.Branch(c, ir.RelEQ, one, ir.W8, false, "if (s->ctrl == 1)", "push", "envy")

	p := h.Block("push")
	v := p.IOIn(ir.W8, "v = ioread8()")
	pv := p.Load(pos, "p = s->pos")
	lv := p.Load(limit, "n = s->limit")
	p.Branch(pv, ir.RelGE, lv, ir.W16, false, "if (p >= n)", "out", "store")

	st := h.Block("store")
	pv2 := st.Load(pos, "p")
	st.BufStore(buf, pv2, v, ir.W16, false, "s->buf[p] = v")
	o := st.Const(1, "1")
	p2 := st.Arith(ir.ALUAdd, pv2, o, ir.W16, false, "p + 1")
	st.Store(pos, p2, "s->pos = p + 1")
	// Droppable work: a checksum fed only to the response.
	sum := st.Arith(ir.ALUAdd, v, p2, ir.W32, false, "sum = v + p")
	st.IOOut(sum, ir.W8, "iowrite8(sum)")
	big := st.Const(4096, "4096")
	st.Work(big, "emulate(4096)")
	st.Store(scratch, sum, "s->scratch = sum")
	st.CallPtr(cb, "s->cb()")
	st.Jump("out", "goto out")

	ev := h.Block("envy")
	lk := ev.EnvRead(ir.EnvLink, "up = link_status()")
	z := ev.Const(0, "0")
	ev.Branch(lk, ir.RelNE, z, ir.W8, false, "if (up)", "out", "down")
	h.Block("down").Jump("out", "goto out")
	h.Block("out").Exit().Halt("return")

	cbh := b.Handler("on_event")
	cbb := cbh.Block("body")
	cbb.IRQRaise("irq")
	cbb.Return("return")

	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// graphOf executes benign requests and builds the ITC-CFG.
func graphOf(t testing.TB, prog *ir.Program) *itccfg.Graph {
	t.Helper()
	st := interp.NewState(prog)
	st.SetIntByName("limit", 8)
	st.SetIntByName("ctrl", 1)
	st.SetFuncPtr(prog.FieldIndex("cb"), uint64(prog.HandlerIndex("on_event")))
	in := interp.New(prog, st, nil)
	col := trace.NewCollector(trace.DeviceConfig(prog))
	in.SetTracer(col)
	for i := 0; i < 10; i++ {
		if res := in.Dispatch(interp.NewWrite(interp.SpacePIO, 0, []byte{byte(i)})); res.Fault != nil {
			t.Fatal(res.Fault)
		}
	}
	st.SetIntByName("ctrl", 0) // env branch path
	if res := in.Dispatch(interp.NewWrite(interp.SpacePIO, 0, nil)); res.Fault != nil {
		t.Fatal(res.Fault)
	}
	runs, err := trace.Decode(prog, col.Packets())
	if err != nil {
		t.Fatal(err)
	}
	g := itccfg.New(prog)
	for _, r := range runs {
		g.AddRun(r)
	}
	return g
}

func TestSelectParamsRules(t *testing.T) {
	prog := buildAnalyzed(t)
	sel := analysis.SelectParams(graphOf(t, prog))

	wantClass := map[string]analysis.ParamClass{
		"ctrl":  analysis.ClassRegister,
		"buf":   analysis.ClassBuffer,
		"pos":   analysis.ClassIndex,
		"limit": analysis.ClassIndex, // counting variable (compared to pos)
		"cb":    analysis.ClassFuncPtr,
	}
	for name, want := range wantClass {
		p := sel.ParamFor(prog.FieldIndex(name))
		if p == nil {
			t.Errorf("%s not selected", name)
			continue
		}
		if p.Class != want {
			t.Errorf("%s class = %v, want %v", name, p.Class, want)
		}
	}
	// A register never influencing control flow is not selected (Rule 1's
	// candidate filter), nor is a scratch field.
	for _, name := range []string{"unused_reg", "scratch"} {
		if sel.Contains(prog.FieldIndex(name)) {
			t.Errorf("%s should not be selected", name)
		}
	}
	if len(sel.WatchList()) != 5 {
		t.Errorf("WatchList = %v, want 5 entries", sel.WatchList())
	}
	if sel.String() == "" {
		t.Error("empty String()")
	}
}

func TestComputeSliceRetention(t *testing.T) {
	prog := buildAnalyzed(t)
	sl := analysis.ComputeSlice(prog, 0)
	if sl.DroppedOps == 0 {
		t.Error("slice should drop the response/work ops")
	}
	if sl.KeptOps == 0 {
		t.Fatal("slice kept nothing")
	}
	if len(sl.SyncPoints) != 1 {
		t.Errorf("sync points = %d, want 1 (the env read)", len(sl.SyncPoints))
	}
	// The dropped set must include OpWork and OpIOOut, and never a store.
	h := &prog.Handlers[0]
	for bi := range h.Blocks {
		for oi := range h.Blocks[bi].Ops {
			op := &h.Blocks[bi].Ops[oi]
			kept := sl.Kept[bi][oi]
			switch op.Code {
			case ir.OpWork, ir.OpIOOut:
				if kept {
					t.Errorf("%v at block %d op %d should be dropped", op.Code, bi, oi)
				}
			case ir.OpStore, ir.OpBufStore, ir.OpIOIn, ir.OpCallPtr:
				if !kept {
					t.Errorf("%v at block %d op %d should be kept", op.Code, bi, oi)
				}
			}
		}
	}
}

func TestFlowInfluence(t *testing.T) {
	prog := buildAnalyzed(t)
	hf := analysis.FlowOf(prog, 0)
	// The branch in "push" compares pos against limit.
	push := prog.Handlers[0].Blocks[1]
	infA := hf.TempInfluence(push.Term.A)
	if !infA.Fields[prog.FieldIndex("pos")] {
		t.Error("branch operand A should be influenced by pos")
	}
	infB := hf.TempInfluence(push.Term.B)
	if !infB.Fields[prog.FieldIndex("limit")] {
		t.Error("branch operand B should be influenced by limit")
	}
	// The env branch's operand carries env influence.
	envy := prog.Handlers[0].Blocks[3]
	if !hf.TempInfluence(envy.Term.A).Env {
		t.Error("env branch operand should carry Env influence")
	}
}

func TestObservationPoints(t *testing.T) {
	prog := buildAnalyzed(t)
	pts := analysis.ObservationPoints(graphOf(t, prog))
	if len(pts) == 0 {
		t.Fatal("no observation points")
	}
	// The entry (typed), both conditionals, the indirect-call block, and
	// the exit must all be instrumented.
	want := map[int]bool{0: true, 1: true, 2: true, 3: true}
	seen := map[int]bool{}
	for _, p := range pts {
		if p.Handler == 0 {
			seen[p.Block] = true
		}
	}
	for b := range want {
		if !seen[b] {
			t.Errorf("block %d should be an observation point (have %v)", b, seen)
		}
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	rec := analysis.NewRecorder("toy")
	req := interp.NewWrite(interp.SpacePIO, 5, []byte{1, 2})
	rec.Begin(req)
	rec.Observe(interp.ObsEvent{Seq: 1, Block: ir.BlockRef{Handler: 0, Block: 0}, IndirectField: -1})
	rec.End(&interp.Result{})
	rec.Begin(interp.NewRead(interp.SpacePIO, 6))
	rec.Observe(interp.ObsEvent{Seq: 1, IndirectField: -1})
	rec.End(&interp.Result{Fault: &interp.Fault{Kind: interp.FaultDivZero}})

	log := rec.Log()
	if len(log.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(log.Rounds))
	}
	if len(log.CleanRounds()) != 1 {
		t.Errorf("clean rounds = %d, want 1 (faulted round excluded)", len(log.CleanRounds()))
	}

	var buf bytes.Buffer
	if err := log.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := analysis.LoadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Device != "toy" || len(back.Rounds) != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Rounds[0].Req.Addr != 5 || !back.Rounds[0].Req.Write {
		t.Errorf("request info lost: %+v", back.Rounds[0].Req)
	}
}

func TestLoadLogRejectsGarbage(t *testing.T) {
	if _, err := analysis.LoadLog(bytes.NewBufferString("{nope")); err == nil {
		t.Error("garbage JSON should fail")
	}
}
