// Package analysis implements SEDSpec's CFG analyzer (paper §IV-B): it
// examines the ITC-CFG and the device "source" (the IR program) to select
// device-state parameters by the paper's two rules, to place observation
// points, and to record the device-state-change log. It also provides the
// data-flow machinery (backward def-use slicing) that stands in for the
// paper's use of angr: deciding which ops the execution specification must
// retain and whether a branch condition is computable from device state and
// I/O data or needs a sync point.
package analysis

import (
	"sedspec/internal/ir"
)

// OpRef names one op within a program.
type OpRef struct {
	Handler int `json:"handler"`
	Block   int `json:"block"`
	Op      int `json:"op"`
}

// Influence describes everything that may flow into a temp's value.
type Influence struct {
	// Fields are control-structure fields that may feed the value.
	Fields map[int]bool
	// IOData is set when request payload/address/length feeds the value.
	IOData bool
	// Env is set when an environment read feeds the value (forces a sync
	// point if the value reaches a branch condition).
	Env bool
	// GuestMem is set when DMA-read guest memory feeds the value.
	GuestMem bool
}

func newInfluence() *Influence { return &Influence{Fields: make(map[int]bool)} }

func (in *Influence) mergeFrom(o *Influence) bool {
	changed := false
	for f := range o.Fields {
		if !in.Fields[f] {
			in.Fields[f] = true
			changed = true
		}
	}
	if o.IOData && !in.IOData {
		in.IOData = true
		changed = true
	}
	if o.Env && !in.Env {
		in.Env = true
		changed = true
	}
	if o.GuestMem && !in.GuestMem {
		in.GuestMem = true
		changed = true
	}
	return changed
}

func (in *Influence) addField(f int) bool {
	if in.Fields[f] {
		return false
	}
	in.Fields[f] = true
	return true
}

// HandlerFlow is the data-flow summary of one handler: per-temp influence
// sets computed to a fixpoint over all defining ops (a sound
// over-approximation in the presence of loops and reassignment).
type HandlerFlow struct {
	Handler int
	temps   []*Influence
}

// FlowOf computes (or returns cached) flow for a handler.
func FlowOf(p *ir.Program, handler int) *HandlerFlow {
	h := &p.Handlers[handler]
	hf := &HandlerFlow{Handler: handler, temps: make([]*Influence, h.NumTemps)}
	for i := range hf.temps {
		hf.temps[i] = newInfluence()
	}
	for changed := true; changed; {
		changed = false
		for bi := range h.Blocks {
			for oi := range h.Blocks[bi].Ops {
				if hf.applyOp(&h.Blocks[bi].Ops[oi]) {
					changed = true
				}
			}
		}
	}
	return hf
}

func (hf *HandlerFlow) applyOp(op *ir.Op) bool {
	dst := opDst(op)
	if dst < 0 {
		return false
	}
	in := hf.temps[dst]
	switch op.Code {
	case ir.OpConst:
		return false
	case ir.OpLoad, ir.OpLoadFunc:
		return in.addField(op.Field)
	case ir.OpArith:
		c := in.mergeFrom(hf.temps[op.A])
		if in.mergeFrom(hf.temps[op.B]) {
			c = true
		}
		return c
	case ir.OpBufLoad:
		c := in.addField(op.Field)
		if in.mergeFrom(hf.temps[op.Idx]) {
			c = true
		}
		return c
	case ir.OpIOIn, ir.OpIOAddr, ir.OpIOLen, ir.OpIOIsWrite:
		if in.IOData {
			return false
		}
		in.IOData = true
		return true
	case ir.OpEnvRead:
		if in.Env {
			return false
		}
		in.Env = true
		return true
	case ir.OpDMARead:
		// Guest-memory values are data, not device state: the pointer
		// field does not determine the value, so address influence does
		// not propagate (otherwise every DMA-derived temporary would
		// look parameter-derived, contradicting the paper's
		// CVE-2015-7504/5158 analysis).
		if in.GuestMem {
			return false
		}
		in.GuestMem = true
		return true
	default:
		return false
	}
}

// TempInfluence returns the influence set of a temp.
func (hf *HandlerFlow) TempInfluence(t int) *Influence { return hf.temps[t] }

func opDst(op *ir.Op) int {
	switch op.Code {
	case ir.OpConst, ir.OpLoad, ir.OpLoadFunc, ir.OpArith, ir.OpBufLoad,
		ir.OpIOIn, ir.OpIOAddr, ir.OpIOLen, ir.OpIOIsWrite, ir.OpDMARead,
		ir.OpEnvRead:
		return op.Dst
	default:
		return -1
	}
}

// opUses returns the temps an op reads.
func opUses(op *ir.Op, dst []int) []int {
	switch op.Code {
	case ir.OpStore, ir.OpStoreFunc, ir.OpIOOut:
		dst = append(dst, op.Src)
	case ir.OpArith:
		dst = append(dst, op.A, op.B)
	case ir.OpBufLoad:
		dst = append(dst, op.Idx)
	case ir.OpBufStore:
		dst = append(dst, op.Idx, op.Src)
	case ir.OpDMARead:
		dst = append(dst, op.A)
	case ir.OpDMAWrite:
		dst = append(dst, op.A, op.Src)
	case ir.OpDMAToBuf, ir.OpDMAFromBuf:
		dst = append(dst, op.A, op.B, op.Idx)
	case ir.OpIOToBuf:
		dst = append(dst, op.B, op.Idx)
	case ir.OpWork:
		dst = append(dst, op.Src)
	}
	return dst
}

// Slice is the per-handler kept-op computation used by ES-CFG
// construction: which ops the specification retains (DSOD), which are
// dropped (bulk work, interrupts, guest-visible outputs), and where sync
// points are required.
type Slice struct {
	Handler int
	// Kept[block][op] reports whether the op is retained in the ES-CFG.
	Kept [][]bool
	// SyncPoints lists retained environment reads — the values the
	// checker must synchronize with the device environment at runtime.
	SyncPoints []OpRef
	// KeptOps and DroppedOps count retention for reduction statistics.
	KeptOps, DroppedOps int
}

// ComputeSlice determines retained ops for a handler.
//
// Roots (always retained): field stores (shadow state must stay coherent),
// buffer/DMA-copy ops (bounds semantics feed the parameter check), payload
// reads (stream position), and calls. Value-producing ops are retained only
// if some retained op or terminator transitively consumes their temp.
// Never retained: emulation work, interrupts, guest-memory writes, and
// response output — the ops whose omission gives the specification its low
// overhead relative to full re-execution.
func ComputeSlice(p *ir.Program, handler int) *Slice {
	h := &p.Handlers[handler]
	s := &Slice{Handler: handler, Kept: make([][]bool, len(h.Blocks))}
	required := make([]bool, h.NumTemps)

	markUses := func(op *ir.Op) {
		var uses []int
		for _, t := range opUses(op, uses) {
			required[t] = true
		}
	}

	// Terminator conditions are roots for temp requirement.
	for bi := range h.Blocks {
		s.Kept[bi] = make([]bool, len(h.Blocks[bi].Ops))
		t := &h.Blocks[bi].Term
		switch t.Kind {
		case ir.TermBranch:
			required[t.A] = true
			required[t.B] = true
		case ir.TermSwitch:
			required[t.A] = true
		}
	}

	for changed := true; changed; {
		changed = false
		for bi := range h.Blocks {
			for oi := range h.Blocks[bi].Ops {
				if s.Kept[bi][oi] {
					continue
				}
				op := &h.Blocks[bi].Ops[oi]
				if keepOp(op, required) {
					s.Kept[bi][oi] = true
					markUses(op)
					changed = true
				}
			}
		}
	}

	for bi := range h.Blocks {
		for oi, kept := range s.Kept[bi] {
			if kept {
				s.KeptOps++
				op := &h.Blocks[bi].Ops[oi]
				if op.Code == ir.OpEnvRead {
					s.SyncPoints = append(s.SyncPoints, OpRef{Handler: handler, Block: bi, Op: oi})
				}
			} else {
				s.DroppedOps++
			}
		}
	}
	return s
}

func keepOp(op *ir.Op, required []bool) bool {
	switch op.Code {
	case ir.OpStore, ir.OpStoreFunc, ir.OpBufStore,
		ir.OpDMAToBuf, ir.OpDMAFromBuf, ir.OpIOToBuf,
		ir.OpIOIn, // preserves payload stream position
		// OpDMAWrite is retained so the checker can journal descriptor
		// writebacks: ring-scan loops terminate on the device because it
		// cleared an OWN flag, and the simulation must see its own
		// (suppressed) writeback to terminate identically.
		ir.OpDMAWrite,
		ir.OpCall, ir.OpCallPtr:
		return true
	case ir.OpWork, ir.OpIRQRaise, ir.OpIRQLower, ir.OpIOOut:
		return false
	default:
		d := opDst(op)
		return d >= 0 && required[d]
	}
}
