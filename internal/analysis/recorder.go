package analysis

import (
	"encoding/json"
	"fmt"
	"io"

	"sedspec/internal/interp"
)

// ReqInfo summarizes the I/O request that opened a round.
type ReqInfo struct {
	Space interp.Space `json:"space"`
	Addr  uint64       `json:"addr"`
	Write bool         `json:"write"`
	Data  []byte       `json:"data,omitempty"`
}

// Round is one I/O interaction's worth of observation events — one entry of
// the device-state-change log.
type Round struct {
	Req    ReqInfo           `json:"req"`
	Events []interp.ObsEvent `json:"events"`
	// Faulted is set when the device faulted during the round; faulted
	// rounds are excluded from specification construction.
	Faulted bool `json:"faulted,omitempty"`
}

// Log is the device-state-change log (paper §IV): the control flow and
// state changes of an emulated device across training rounds. The ES-CFG
// constructor consumes it together with the device source.
type Log struct {
	Device string   `json:"device"`
	Rounds []*Round `json:"rounds"`
}

// Recorder accumulates a Log. Install it as the interpreter's observer and
// bracket each dispatch with Begin/End.
type Recorder struct {
	log *Log
	cur *Round
}

var _ interp.Observer = (*Recorder)(nil)

// NewRecorder returns a recorder for the named device.
func NewRecorder(device string) *Recorder {
	return &Recorder{log: &Log{Device: device}}
}

// Begin opens a round for a request about to be dispatched.
func (r *Recorder) Begin(req *interp.Request) {
	dataCopy := make([]byte, len(req.Data))
	copy(dataCopy, req.Data)
	r.cur = &Round{Req: ReqInfo{
		Space: req.Space,
		Addr:  req.Addr,
		Write: req.Write,
		Data:  dataCopy,
	}}
}

// Observe implements interp.Observer.
func (r *Recorder) Observe(ev interp.ObsEvent) {
	if r.cur == nil {
		return
	}
	// Field slices are reused by the interpreter per event construction;
	// copy to decouple.
	if len(ev.Fields) > 0 {
		ev.Fields = append([]interp.FieldVal(nil), ev.Fields...)
	}
	r.cur.Events = append(r.cur.Events, ev)
}

// End closes the round, marking whether the device faulted.
func (r *Recorder) End(res *interp.Result) {
	if r.cur == nil {
		return
	}
	if res != nil && res.Fault != nil {
		r.cur.Faulted = true
	}
	r.log.Rounds = append(r.log.Rounds, r.cur)
	r.cur = nil
}

// Log returns the accumulated log.
func (r *Recorder) Log() *Log { return r.log }

// Save writes the log as JSON.
func (l *Log) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(l); err != nil {
		return fmt.Errorf("analysis: save log: %w", err)
	}
	return nil
}

// LoadLog reads a JSON log.
func LoadLog(r io.Reader) (*Log, error) {
	var l Log
	if err := json.NewDecoder(r).Decode(&l); err != nil {
		return nil, fmt.Errorf("analysis: load log: %w", err)
	}
	return &l, nil
}

// MergeLogs unions device-state-change logs for the same device, the
// paper's false-positive remedy (§VIII): developers and testers each
// contribute training logs, and the specification is rebuilt from their
// union. Logs for other devices are rejected.
func MergeLogs(logs ...*Log) (*Log, error) {
	if len(logs) == 0 {
		return nil, fmt.Errorf("analysis: nothing to merge")
	}
	out := &Log{Device: logs[0].Device}
	for _, l := range logs {
		if l.Device != out.Device {
			return nil, fmt.Errorf("analysis: cannot merge log for %q into %q", l.Device, out.Device)
		}
		out.Rounds = append(out.Rounds, l.Rounds...)
	}
	return out, nil
}

// CleanRounds returns the non-faulted rounds.
func (l *Log) CleanRounds() []*Round {
	out := make([]*Round, 0, len(l.Rounds))
	for _, r := range l.Rounds {
		if !r.Faulted {
			out = append(out, r)
		}
	}
	return out
}
