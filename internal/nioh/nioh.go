// Package nioh implements the paper's primary baseline: Nioh (Ogasawara &
// Kono, ACSAC 2017) hardens the hypervisor by filtering illegal I/O
// requests against a finite-state machine hand-written from the device's
// specification. Where SEDSpec derives its execution specification
// automatically from traces, a Nioh model must be authored per device by
// reading the datasheet — the manual-effort/scalability contrast the
// paper's comparison rests on.
//
// The FSM observes each guest I/O request before the device executes it.
// Requests matching a transition from the current state advance it;
// requests matching no transition are illegal and are filtered (the
// machine halts, like SEDSpec's protection mode). Hand-written models for
// four devices live in models.go; per the Nioh paper's evaluation they
// detect CVE-2015-3456, CVE-2015-5158, CVE-2016-4439, CVE-2016-7909, and
// CVE-2016-1568 — including the use-after-free SEDSpec misses, because
// the human author encoded "no resume after unlink" explicitly.
package nioh

import (
	"fmt"

	"sedspec/internal/interp"
	"sedspec/internal/machine"
)

// State is a named protocol state of the hand-written model.
type State string

// Req summarizes the guest request a transition matches on.
type Req struct {
	Write bool
	Addr  uint64
	// Data is the payload (first bytes often carry the command).
	Data []byte
}

// Transition is one legal edge of the FSM. Match may inspect the request
// and the device's observable registers; To computes the successor state.
type Transition struct {
	From State
	// Match reports whether the request is legal in this state.
	Match func(r Req, dev machine.Device) bool
	// To computes the successor (often constant; sometimes dependent on
	// the request, e.g. a command byte selecting a parameter phase).
	To func(r Req, dev machine.Device) State
}

// FSM is a hand-written device protocol model.
type FSM struct {
	Device string
	Start  State
	Rules  []Transition
	// SpecLines records the size of the manual specification this model
	// was written from — the effort metric of the comparison.
	SpecLines int
}

// Violation reports an I/O request illegal under the model.
type Violation struct {
	Device string
	State  State
	Req    Req
}

// Error implements error.
func (v *Violation) Error() string {
	dir := "read"
	if v.Req.Write {
		dir = "write"
	}
	return fmt.Sprintf("nioh: illegal %s of %#x in state %q on %s",
		dir, v.Req.Addr, v.State, v.Device)
}

// Checker enforces an FSM on a device's I/O path. It implements
// machine.Interposer.
type Checker struct {
	fsm    *FSM
	cur    State
	haltFn func()

	// Stats
	Rounds     int
	Violations int
}

var _ machine.Interposer = (*Checker)(nil)

// NewChecker builds a checker in the model's start state. haltFn (may be
// nil) runs on violations, mirroring protection mode.
func NewChecker(fsm *FSM, haltFn func()) *Checker {
	return &Checker{fsm: fsm, cur: fsm.Start, haltFn: haltFn}
}

// State returns the current model state.
func (c *Checker) State() State { return c.cur }

// PreIO implements machine.Interposer: advance the FSM or reject.
func (c *Checker) PreIO(dev machine.Device, req *interp.Request) error {
	c.Rounds++
	r := Req{Write: req.Write, Addr: req.Addr, Data: req.Data}
	for i := range c.fsm.Rules {
		t := &c.fsm.Rules[i]
		if t.From != c.cur && t.From != Any {
			continue
		}
		if !t.Match(r, dev) {
			continue
		}
		if t.To != nil {
			c.cur = t.To(r, dev)
		}
		return nil
	}
	c.Violations++
	if c.haltFn != nil {
		c.haltFn()
	}
	return &Violation{Device: c.fsm.Device, State: c.cur, Req: r}
}

// Any matches transitions valid in every state (register polling and the
// like).
const Any State = "*"

// Protect attaches a Nioh checker to a device.
func Protect(att *machine.Attached, fsm *FSM) *Checker {
	c := NewChecker(fsm, att.Machine().Halt)
	att.AddInterposer(c)
	return c
}

// cmdByte returns the first payload byte (the command), or 0xFF.
func cmdByte(r Req) byte {
	if len(r.Data) == 0 {
		return 0xFF
	}
	return r.Data[0]
}
