package nioh_test

import (
	"errors"
	"testing"

	"sedspec"
	"sedspec/internal/devices/ehci"
	"sedspec/internal/devices/fdc"
	"sedspec/internal/devices/pcnet"
	"sedspec/internal/devices/scsi"
	"sedspec/internal/machine"
	"sedspec/internal/nioh"
	"sedspec/internal/workload"
)

var light = workload.TrainConfig{Light: true}

func attach(t *testing.T, dev machine.Device, opts ...machine.AttachOption) (*machine.Machine, *machine.Attached) {
	t.Helper()
	m := machine.New(machine.WithMemory(1 << 20))
	return m, m.Attach(dev, opts...)
}

// TestBenignTrafficLegalUnderModels: the hand-written models must accept
// the full benign workload of each device.
func TestBenignTrafficLegalUnderModels(t *testing.T) {
	t.Run("fdc", func(t *testing.T) {
		m, att := attach(t, fdc.New(fdc.Options{}), machine.WithPIO(0, fdc.PortCount))
		chk := nioh.Protect(att, nioh.FDC())
		if err := workload.TrainFDC(sedspec.NewDriver(att), light); err != nil {
			t.Fatalf("benign traffic illegal under the FDC model: %v", err)
		}
		if chk.Violations != 0 || m.Halted() {
			t.Fatalf("violations = %d", chk.Violations)
		}
	})
	t.Run("scsi", func(t *testing.T) {
		m, att := attach(t, scsi.New(scsi.Options{}), machine.WithPIO(0, scsi.PortCount))
		chk := nioh.Protect(att, nioh.SCSI())
		if err := workload.TrainSCSI(sedspec.NewDriver(att), light); err != nil {
			t.Fatalf("benign traffic illegal under the SCSI model: %v", err)
		}
		if chk.Violations != 0 || m.Halted() {
			t.Fatalf("violations = %d", chk.Violations)
		}
	})
	t.Run("pcnet", func(t *testing.T) {
		m, att := attach(t, pcnet.New(pcnet.Options{}), machine.WithPIO(0, pcnet.PortCount))
		chk := nioh.Protect(att, nioh.PCNet())
		if err := workload.TrainPCNet(sedspec.NewDriver(att), light); err != nil {
			t.Fatalf("benign traffic illegal under the PCNet model: %v", err)
		}
		if chk.Violations != 0 || m.Halted() {
			t.Fatalf("violations = %d", chk.Violations)
		}
	})
	t.Run("ehci", func(t *testing.T) {
		m, att := attach(t, ehci.New(ehci.Options{}), machine.WithMMIO(0, ehci.RegionSize))
		chk := nioh.Protect(att, nioh.EHCI())
		if err := workload.TrainEHCI(sedspec.NewDriver(att), light); err != nil {
			t.Fatalf("benign traffic illegal under the EHCI model: %v", err)
		}
		if chk.Violations != 0 || m.Halted() {
			t.Fatalf("violations = %d", chk.Violations)
		}
	})
}

// TestNiohRareCommandsLegal: the datasheet knows the rare commands, so the
// manual model has no false positives on them — the flip side of its
// manual cost.
func TestNiohRareCommandsLegal(t *testing.T) {
	_, att := attach(t, fdc.New(fdc.Options{}), machine.WithPIO(0, fdc.PortCount))
	chk := nioh.Protect(att, nioh.FDC())
	g := fdc.NewGuest(sedspec.NewDriver(att))
	if err := g.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := g.DumpReg(); err != nil {
		t.Fatalf("DUMPREG is legal per the datasheet: %v", err)
	}
	if err := g.ReadID(0); err != nil {
		t.Fatalf("READ ID is legal per the datasheet: %v", err)
	}
	if chk.Violations != 0 {
		t.Fatalf("violations = %d, want 0", chk.Violations)
	}
}

func wantViolation(t *testing.T, err error) *nioh.Violation {
	t.Helper()
	var v *nioh.Violation
	if !errors.As(err, &v) {
		t.Fatalf("err = %v, want nioh.Violation", err)
	}
	return v
}

// The five CVEs of the Nioh paper's evaluation, replayed against the
// manual models.

func TestNiohDetectsVenom(t *testing.T) {
	m, att := attach(t, fdc.New(fdc.Options{}), machine.WithPIO(0, fdc.PortCount))
	nioh.Protect(att, nioh.FDC())
	g := fdc.NewGuest(sedspec.NewDriver(att))
	if err := g.Reset(); err != nil {
		t.Fatal(err)
	}
	// The invalid command byte is not in the datasheet's command table.
	err := g.PushFIFO(0x77)
	wantViolation(t, err)
	if !m.Halted() {
		t.Error("machine should halt")
	}
}

func TestNiohDetects4439(t *testing.T) {
	m, att := attach(t, scsi.New(scsi.Options{}), machine.WithPIO(0, scsi.PortCount))
	nioh.Protect(att, nioh.SCSI())
	g := scsi.NewGuest(sedspec.NewDriver(att))
	var err error
	for i := 0; i < 20 && err == nil; i++ {
		err = g.PushFIFO(0x41)
	}
	v := wantViolation(t, err)
	if v.State != "fifo16" {
		t.Errorf("violation in state %q, want fifo16 (capacity)", v.State)
	}
	if !m.Halted() {
		t.Error("machine should halt")
	}
}

func TestNiohDetects5158(t *testing.T) {
	m, att := attach(t, scsi.New(scsi.Options{}), machine.WithPIO(0, scsi.PortCount))
	nioh.Protect(att, nioh.SCSI())
	g := scsi.NewGuest(sedspec.NewDriver(att))
	// An honest driver programs the transfer count; the oversized count
	// poisons the model and the DMA selection is rejected.
	blk := make([]byte, 200)
	err := g.DMASelect(blk)
	wantViolation(t, err)
	if !m.Halted() {
		t.Error("machine should halt")
	}
}

func TestNiohDetects7909(t *testing.T) {
	m, att := attach(t, pcnet.New(pcnet.Options{}), machine.WithPIO(0, pcnet.PortCount))
	nioh.Protect(att, nioh.PCNet())
	g := pcnet.NewGuest(sedspec.NewDriver(att))
	// Programming a zero receive-ring length through CSR76 is illegal per
	// the datasheet.
	err := g.WriteCSR(76, 0)
	wantViolation(t, err)
	if !m.Halted() {
		t.Error("machine should halt")
	}
	// Nonzero lengths are fine.
	m.Resume()
	if err := g.WriteCSR(76, 4); err != nil {
		t.Fatalf("legal ring length rejected: %v", err)
	}
}

func TestNiohDetects1568(t *testing.T) {
	// The case SEDSpec misses: the human author encoded "no resume after
	// unlink" explicitly, so the stale-qTD reuse is an illegal transition.
	m, att := attach(t, ehci.New(ehci.Options{}), machine.WithMMIO(0, ehci.RegionSize))
	nioh.Protect(att, nioh.EHCI())
	g := ehci.NewGuest(sedspec.NewDriver(att))

	if err := g.ControlIn(ehci.ReqGetStatus, 0, 2); err != nil {
		t.Fatal(err)
	}
	// Benign resume while scheduled is legal.
	if err := g.Resume(); err != nil {
		t.Fatalf("benign resume rejected: %v", err)
	}
	if err := g.Doorbell(); err != nil {
		t.Fatal(err)
	}
	// Resume after unlink: the UAF reuse.
	err := g.Resume()
	wantViolation(t, err)
	if !m.Halted() {
		t.Error("machine should halt")
	}
}

// TestNiohMissesDataPlaneCVEs: the request-level model cannot see
// data-plane exploitation — the frames and descriptors that carry
// CVE-2015-7504/7512 — while SEDSpec's execution-level specification can.
func TestNiohMissesDataPlaneCVEs(t *testing.T) {
	m, att := attach(t, pcnet.New(pcnet.Options{}), machine.WithPIO(0, pcnet.PortCount))
	nioh.Protect(att, nioh.PCNet())
	g := pcnet.NewGuest(sedspec.NewDriver(att))
	g.RxLen = 2
	if err := g.Setup(0); err != nil {
		t.Fatal(err)
	}
	if err := g.ProvideRx(0); err != nil {
		t.Fatal(err)
	}
	// CVE-2015-7504's oversized frame sails through the request filter,
	// and the hijack succeeds.
	prog := att.Dev().Program()
	gadget := prog.HandlerIndex("host_gadget")
	f := make([]byte, pcnet.BufSize)
	f[pcnet.BufSize-4] = byte(gadget)
	if err := g.InjectWireFrame(f); err != nil {
		t.Fatalf("nioh unexpectedly blocked the data-plane exploit: %v", err)
	}
	if v, _ := att.Dev().State().IntByName("csr0"); v != 0xFFFF {
		t.Error("exploit should have succeeded under the Nioh model")
	}
	if m.Halted() {
		t.Error("machine should not halt")
	}
}

func TestModelSpecLinesReported(t *testing.T) {
	total := 0
	for _, f := range []*nioh.FSM{nioh.FDC(), nioh.SCSI(), nioh.PCNet(), nioh.EHCI()} {
		if f.SpecLines == 0 {
			t.Errorf("%s model has no effort metric", f.Device)
		}
		total += f.SpecLines
	}
	if total == 0 {
		t.Fatal("no manual effort recorded")
	}
}
