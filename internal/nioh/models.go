package nioh

import (
	"encoding/binary"
	"fmt"

	"sedspec/internal/devices/ehci"
	"sedspec/internal/devices/fdc"
	"sedspec/internal/devices/pcnet"
	"sedspec/internal/devices/scsi"
	"sedspec/internal/machine"
)

// The models below are what Nioh's approach demands: a human reads the
// device datasheet and writes down the legal protocol as states and
// transitions. Compare with SEDSpec, which derives the equivalent (and
// finer-grained) specification automatically from traces — the paper's
// scalability argument. SpecLines approximates the per-device manual
// effort.

// le16 decodes the first two payload bytes.
func le16(d []byte) uint16 {
	if len(d) < 2 {
		if len(d) == 1 {
			return uint16(d[0])
		}
		return 0
	}
	return binary.LittleEndian.Uint16(d)
}

// le32 decodes the first four payload bytes.
func le32(d []byte) uint32 {
	var b [4]byte
	copy(b[:], d)
	return binary.LittleEndian.Uint32(b[:])
}

// wr matches a write to one port.
func wr(port uint64) func(Req, machine.Device) bool {
	return func(r Req, _ machine.Device) bool { return r.Write && r.Addr == port }
}

// rd matches a read of one port.
func rd(port uint64) func(Req, machine.Device) bool {
	return func(r Req, _ machine.Device) bool { return !r.Write && r.Addr == port }
}

// to returns a constant successor.
func to(s State) func(Req, machine.Device) State {
	return func(Req, machine.Device) State { return s }
}

// FDC returns the hand-written 82078 protocol model: the three-phase
// command protocol with per-command parameter and result byte counts taken
// from the datasheet's command table.
func FDC() *FSM {
	// cmd -> (parameter bytes after the command byte, result bytes).
	type shape struct{ params, results int }
	table := map[byte]shape{
		fdc.CmdSpecify:     {2, 0},
		fdc.CmdSenseDrive:  {1, 1},
		fdc.CmdRecalibrate: {1, 0},
		fdc.CmdSenseInt:    {0, 2},
		fdc.CmdDumpReg:     {0, 10},
		fdc.CmdSeek:        {2, 2 /* via following SENSE INT */},
		fdc.CmdVersion:     {0, 1},
		fdc.CmdConfigure:   {3, 0},
		fdc.CmdWrite:       {8, 7},
		fdc.CmdRead:        {8, 7},
		fdc.CmdReadID:      {1, 7},
		fdc.CmdFormat:      {5, 7},
	}
	// SEEK's results actually arrive through SENSE INTERRUPT; model SEEK
	// as no-result.
	table[fdc.CmdSeek] = shape{2, 0}

	pState := func(k, n int) State {
		if k > 0 {
			return State(fmt.Sprintf("param%d.res%d", k, n))
		}
		if n > 0 {
			return State(fmt.Sprintf("res%d", n))
		}
		return "idle"
	}

	f := &FSM{Device: "fdc", Start: "idle", SpecLines: 130}
	// Register traffic legal in every state.
	for _, p := range []uint64{fdc.PortSRA, fdc.PortSRB, fdc.PortDOR, fdc.PortTDR, fdc.PortMSR, fdc.PortDIR} {
		f.Rules = append(f.Rules, Transition{From: Any, Match: rd(p)})
	}
	for _, p := range []uint64{fdc.PortTDR, fdc.PortMSR /* DSR */, fdc.PortDIR /* CCR */, fdc.PortDMALo, fdc.PortDMAHi} {
		f.Rules = append(f.Rules, Transition{From: Any, Match: wr(p)})
	}
	// DOR writes reset the protocol.
	f.Rules = append(f.Rules, Transition{From: Any, Match: wr(fdc.PortDOR), To: to("idle")})

	// Command byte in idle: only datasheet commands are legal.
	f.Rules = append(f.Rules, Transition{
		From: "idle",
		Match: func(r Req, _ machine.Device) bool {
			if !r.Write || r.Addr != fdc.PortFIFO {
				return false
			}
			_, ok := table[cmdByte(r)&0x5F]
			return ok
		},
		To: func(r Req, _ machine.Device) State {
			s := table[cmdByte(r)&0x5F]
			return pState(s.params, s.results)
		},
	})
	// Parameter and result phases: exact counts from the datasheet.
	for k := 1; k <= 8; k++ {
		for n := 0; n <= 10; n++ {
			k, n := k, n
			f.Rules = append(f.Rules, Transition{
				From:  pState(k, n),
				Match: wr(fdc.PortFIFO),
				To:    func(Req, machine.Device) State { return pState(k-1, n) },
			})
		}
	}
	for n := 1; n <= 10; n++ {
		n := n
		f.Rules = append(f.Rules, Transition{
			From:  pState(0, n),
			Match: rd(fdc.PortFIFO),
			To:    func(Req, machine.Device) State { return pState(0, n-1) },
		})
	}
	return f
}

// SCSI returns the hand-written 53C9X model: the TI FIFO holds at most 16
// bytes, selection requires a loaded FIFO, and a DMA selection's transfer
// count may not exceed the command buffer.
func SCSI() *FSM {
	fState := func(k int) State { return State(fmt.Sprintf("fifo%d", k)) }
	f := &FSM{Device: "scsi", Start: fState(0), SpecLines: 95}

	for _, p := range []uint64{scsi.PortStatus, scsi.PortIntr, scsi.PortSeq, scsi.PortTCLo, scsi.PortTCMid} {
		f.Rules = append(f.Rules, Transition{From: Any, Match: rd(p)})
	}
	for _, p := range []uint64{scsi.PortStatus /* dest id */, scsi.PortDMALo, scsi.PortDMAMid, scsi.PortDMAHi} {
		f.Rules = append(f.Rules, Transition{From: Any, Match: wr(p)})
	}

	// Transfer-count writes: values beyond the command buffer capacity
	// poison the state; a DMA selection from there is illegal.
	tcSmall := func(r Req, _ machine.Device) bool {
		return r.Write && (r.Addr == scsi.PortTCLo || r.Addr == scsi.PortTCMid) &&
			cmdByte(r) <= scsi.CmdBufSize+2
	}
	tcBig := func(r Req, _ machine.Device) bool {
		return r.Write && (r.Addr == scsi.PortTCLo || r.Addr == scsi.PortTCMid) &&
			cmdByte(r) > scsi.CmdBufSize+2
	}
	f.Rules = append(f.Rules,
		Transition{From: Any, Match: tcSmall},
		Transition{From: Any, Match: tcBig, To: to("tc-invalid")},
		Transition{From: "tc-invalid", Match: tcSmall, To: to("fifo0")},
	)

	// FIFO writes: bounded at 16 per the datasheet. No rule exists for a
	// write in fifo16 — that request is illegal (CVE-2016-4439's shape).
	for k := 0; k < scsi.TIBufSize; k++ {
		k := k
		f.Rules = append(f.Rules, Transition{
			From:  fState(k),
			Match: wr(scsi.PortFIFO),
			To:    func(Req, machine.Device) State { return fState(k + 1) },
		})
	}

	// ESP commands.
	espCmd := func(c byte) func(Req, machine.Device) bool {
		return func(r Req, _ machine.Device) bool {
			return r.Write && r.Addr == scsi.PortCmd && cmdByte(r) == c
		}
	}
	for k := 0; k <= scsi.TIBufSize; k++ {
		from := fState(k)
		f.Rules = append(f.Rules,
			Transition{From: from, Match: espCmd(scsi.ESPNop)},
			Transition{From: from, Match: espCmd(scsi.ESPFlush), To: to("fifo0")},
			Transition{From: from, Match: espCmd(scsi.ESPReset), To: to("fifo0")},
			Transition{From: from, Match: espCmd(scsi.ESPXferInfo)},
			Transition{From: from, Match: espCmd(scsi.ESPMsgAcc)},
			Transition{From: from, Match: espCmd(scsi.ESPSetATN)},
		)
		if k >= 2 { // selection needs identify + opcode at minimum
			f.Rules = append(f.Rules,
				Transition{From: from, Match: espCmd(scsi.ESPSelATN), To: to("drain")},
				Transition{From: from, Match: espCmd(scsi.ESPSelNATN), To: to("drain")},
			)
		}
		// DMA selection takes the CDB from memory; legal whenever the
		// transfer count is sane (the poisoned state has no such rule).
		f.Rules = append(f.Rules,
			Transition{From: from, Match: espCmd(scsi.ESPDMASel), To: to("drain")})
	}
	// Response drain: FIFO reads, then any flush/reset returns to empty.
	f.Rules = append(f.Rules,
		Transition{From: "drain", Match: rd(scsi.PortFIFO)},
		Transition{From: "drain", Match: espCmd(scsi.ESPFlush), To: to("fifo0")},
		Transition{From: "drain", Match: espCmd(scsi.ESPReset), To: to("fifo0")},
		Transition{From: "drain", Match: espCmd(scsi.ESPXferInfo)},
		Transition{From: "drain", Match: espCmd(scsi.ESPMsgAcc)},
		Transition{From: "drain", Match: espCmd(scsi.ESPNop)},
		Transition{From: "drain", Match: tcSmall},
		Transition{From: "drain", Match: espCmd(scsi.ESPDMASel)},
	)
	return f
}

// PCNet returns the hand-written Am79C970A register-protocol model: the
// receive ring length programmed through CSR76 must be at least 1.
func PCNet() *FSM {
	f := &FSM{Device: "pcnet", Start: "rap-other", SpecLines: 70}

	// Reads, BCR access, APROM, reset, and the data-plane wire port are
	// not modelled (which is exactly why Nioh misses the data-plane
	// CVEs).
	f.Rules = append(f.Rules,
		Transition{From: Any, Match: func(r Req, _ machine.Device) bool { return !r.Write }},
		Transition{From: Any, Match: wr(pcnet.PortBDP)},
		Transition{From: Any, Match: wr(pcnet.PortWire)},
	)

	// RAP selects the CSR the next RDP access hits.
	f.Rules = append(f.Rules, Transition{
		From:  Any,
		Match: wr(pcnet.PortRAP),
		To: func(r Req, _ machine.Device) State {
			if le16(r.Data)&0x7F == 76 {
				return "rap76"
			}
			return "rap-other"
		},
	})
	// CSR76 (receive ring length): zero is illegal per the datasheet —
	// no rule matches it (CVE-2016-7909's shape).
	f.Rules = append(f.Rules, Transition{
		From: "rap76",
		Match: func(r Req, _ machine.Device) bool {
			return r.Write && r.Addr == pcnet.PortRDP && le16(r.Data) >= 1
		},
	})
	f.Rules = append(f.Rules, Transition{From: "rap-other", Match: wr(pcnet.PortRDP)})
	return f
}

// EHCI returns the hand-written async-schedule model: after the unlink
// doorbell, resuming the schedule without programming a new list head is
// illegal — the rule that catches CVE-2016-1568's stale-pointer reuse,
// which SEDSpec's trace-derived specification cannot distinguish from a
// benign resume.
func EHCI() *FSM {
	f := &FSM{Device: "ehci", Start: "stopped", SpecLines: 60}

	// Reads and status/interrupt/port writes are stateless.
	f.Rules = append(f.Rules,
		Transition{From: Any, Match: func(r Req, _ machine.Device) bool { return !r.Write }},
		Transition{From: Any, Match: wr(ehci.RegUSBSts)},
		Transition{From: Any, Match: wr(ehci.RegUSBIntr)},
		Transition{From: Any, Match: wr(ehci.RegPortSC)},
	)

	// Programming a (nonzero) list head arms the schedule; writing zero
	// keeps the current state (drivers clear it before a resume).
	f.Rules = append(f.Rules,
		Transition{From: Any, Match: func(r Req, _ machine.Device) bool {
			return r.Write && r.Addr == ehci.RegAsyncList && le32(r.Data) != 0
		}, To: to("armed")},
		Transition{From: Any, Match: func(r Req, _ machine.Device) bool {
			return r.Write && r.Addr == ehci.RegAsyncList && le32(r.Data) == 0
		}},
	)

	usbcmd := func(pred func(v uint32, dev machine.Device) bool) func(Req, machine.Device) bool {
		return func(r Req, dev machine.Device) bool {
			return r.Write && r.Addr == ehci.RegUSBCmd && pred(le32(r.Data), dev)
		}
	}
	listAddr := func(dev machine.Device) uint64 {
		v, _ := dev.State().IntByName("asynclistaddr")
		return v
	}

	// The unlink doorbell invalidates any cached schedule work.
	f.Rules = append(f.Rules, Transition{
		From:  Any,
		Match: usbcmd(func(v uint32, _ machine.Device) bool { return v&ehci.CmdDoorbell != 0 }),
		To:    to("unlinked"),
	})
	// Run with a programmed list head (re)schedules.
	f.Rules = append(f.Rules, Transition{
		From: Any,
		Match: usbcmd(func(v uint32, dev machine.Device) bool {
			return v&ehci.CmdRun != 0 && listAddr(dev) != 0
		}),
		To: to("scheduled"),
	})
	// Run with a cleared list head resumes cached work: legal only while
	// scheduled. There is deliberately no such rule for "unlinked" or
	// "stopped" — that request is the CVE-2016-1568 reuse.
	f.Rules = append(f.Rules, Transition{
		From: "scheduled",
		Match: usbcmd(func(v uint32, dev machine.Device) bool {
			return v&ehci.CmdRun != 0 && listAddr(dev) == 0
		}),
	})
	// A USBCMD write with neither run nor doorbell is a plain config
	// update.
	f.Rules = append(f.Rules, Transition{
		From: Any,
		Match: usbcmd(func(v uint32, _ machine.Device) bool {
			return v&(ehci.CmdRun|ehci.CmdDoorbell) == 0
		}),
	})
	return f
}
