package workload

import (
	"fmt"

	"sedspec/internal/devices/devutil"
	"sedspec/internal/devices/scsi"
	"sedspec/internal/simclock"
)

// TrainSCSI drives the controller through its benign envelope: bus resets,
// discovery commands, FIFO- and DMA-selected CDBs, and block transfers
// across the storage environment sweep. The rare ESP commands
// (SELECT-without-ATN, SET-ATN) are excluded.
func TrainSCSI(p devutil.Port, cfg TrainConfig) error {
	g := scsi.NewGuest(p)
	rng := cfg.rng()
	envs := StorageEnvs()
	if cfg.Light {
		envs = envs[:2]
	}

	for ei, env := range envs {
		if err := g.Reset(); err != nil {
			return fmt.Errorf("workload: scsi reset (env %d): %w", ei, err)
		}
		if err := g.Cmd(scsi.ESPNop); err != nil {
			return err
		}
		if err := g.TestUnitReady(); err != nil {
			return err
		}
		if _, err := g.Inquiry(); err != nil {
			return err
		}
		if _, err := g.RequestSense(); err != nil {
			return err
		}
		if err := g.ModeSense(); err != nil {
			return err
		}
		if err := g.ReadCapacity(); err != nil {
			return err
		}
		if err := g.ReportLuns(); err != nil {
			return err
		}
		if err := g.XferInfo(); err != nil {
			return err
		}
		if err := g.Cmd(scsi.ESPMsgAcc); err != nil {
			return err
		}
		if _, err := g.AckIntr(); err != nil {
			return err
		}
		if _, err := g.Status(); err != nil {
			return err
		}
		// DMA-selected command so the DMA path is in the specification.
		if err := g.DMASelect([]byte{scsi.ScsiTestUnitReady, 0, 0, 0, 0, 0}); err != nil {
			return err
		}

		runs := 2 + env.PartitionMiB/64
		if cfg.Light {
			runs = 2
		}
		for r := 0; r < runs; r++ {
			lba := uint32(rng.Intn(1 << 16))
			blocks := byte(1 + rng.Intn(4))
			if err := g.Write10(lba, blocks); err != nil {
				return err
			}
			if err := g.Read10(lba, blocks); err != nil {
				return err
			}
		}
	}
	return nil
}

// SCSIOp issues one random benign operation.
func SCSIOp(g *scsi.Guest, rng *simclock.Rand) error {
	switch rng.Intn(6) {
	case 0:
		return g.Read10(uint32(rng.Intn(1<<16)), byte(1+rng.Intn(4)))
	case 1:
		return g.Write10(uint32(rng.Intn(1<<16)), byte(1+rng.Intn(4)))
	case 2:
		return g.TestUnitReady()
	case 3:
		_, err := g.Inquiry()
		return err
	case 4:
		_, err := g.Status()
		return err
	default:
		_, err := g.RequestSense()
		return err
	}
}

// SCSIRareOp issues a legitimate-but-untrained ESP command.
func SCSIRareOp(g *scsi.Guest, rng *simclock.Rand) error {
	if rng.Bool(0.5) {
		return g.SetATN()
	}
	return g.SelNATN()
}
