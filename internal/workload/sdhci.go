package workload

import (
	"fmt"

	"sedspec/internal/devices/devutil"
	"sedspec/internal/devices/sdhci"
	"sedspec/internal/simclock"
)

// TrainSDHCI drives the SD host controller through card bring-up and
// single- and multi-block transfers across the storage environment sweep.
// The rare CMD56 (GEN_CMD) is excluded from training.
func TrainSDHCI(p devutil.Port, cfg TrainConfig) error {
	g := sdhci.NewGuest(p)
	envs := StorageEnvs()
	if cfg.Light {
		envs = envs[:2]
	}
	rng := cfg.rng()

	for ei, env := range envs {
		if err := g.InitCard(); err != nil {
			return fmt.Errorf("workload: sdhci init (env %d): %w", ei, err)
		}
		if _, err := g.Status(); err != nil {
			return err
		}
		if err := g.SetBlockLen(512); err != nil {
			return err
		}
		if _, err := g.Read16(sdhci.RegPrnSts); err != nil {
			return err
		}
		if _, err := g.Read16(sdhci.RegBlkSize); err != nil {
			return err
		}
		if _, err := g.Read32(0x50); err != nil { // unmodelled register arm
			return err
		}

		runs := 2 + env.CacheKiB/256
		if cfg.Light {
			runs = 2
		}
		for r := 0; r < runs; r++ {
			if err := g.SingleBlock(r%2 == 0); err != nil {
				return err
			}
			blocks := uint16(1 + rng.Intn(4))
			if err := g.Transfer(r%2 == 1, 512, blocks); err != nil {
				return err
			}
		}
		// Exercise a non-512 block size so the engine's remainder paths
		// see more than one divisor.
		if err := g.Transfer(false, 256, 2); err != nil {
			return err
		}
	}
	return nil
}

// SDHCIOp issues one random benign operation.
func SDHCIOp(g *sdhci.Guest, rng *simclock.Rand) error {
	switch rng.Intn(4) {
	case 0:
		return g.SingleBlock(rng.Bool(0.5))
	case 1:
		return g.Transfer(rng.Bool(0.5), 512, uint16(1+rng.Intn(3)))
	case 2:
		_, err := g.Status()
		return err
	default:
		_, err := g.Read16(sdhci.RegPrnSts)
		return err
	}
}

// SDHCIRareOp issues the legitimate-but-untrained CMD56.
func SDHCIRareOp(g *sdhci.Guest, _ *simclock.Rand) error {
	return g.GenCmd()
}
