package workload

import (
	"fmt"

	"sedspec/internal/devices/devutil"
	"sedspec/internal/devices/ehci"
	"sedspec/internal/simclock"
)

// TrainEHCI drives the host controller through USB enumeration and
// control/bulk-style transfers across the environment sweep, including the
// cached-qTD resume path and the unlink doorbell — the flows the
// CVE-2016-1568 exploit later reuses. The rare SET_DESCRIPTOR and
// SYNCH_FRAME requests are excluded.
func TrainEHCI(p devutil.Port, cfg TrainConfig) error {
	g := ehci.NewGuest(p)
	rng := cfg.rng()
	rounds := 6
	if cfg.Light {
		rounds = 3
	}

	for i := 0; i < rounds; i++ {
		// Enumeration.
		if err := g.NoDataRequest(ehci.ReqSetAddress, uint16(1+i)); err != nil {
			return fmt.Errorf("workload: ehci set-address: %w", err)
		}
		if err := g.ControlIn(ehci.ReqGetDescriptor, 0x0100, 18); err != nil {
			return err
		}
		if err := g.NoDataRequest(ehci.ReqSetConfig, 1); err != nil {
			return err
		}
		if err := g.ControlIn(ehci.ReqGetConfig, 0, 1); err != nil {
			return err
		}
		if err := g.ControlIn(ehci.ReqGetStatus, 0, 2); err != nil {
			return err
		}
		if err := g.NoDataRequest(ehci.ReqClearFeature, 0); err != nil {
			return err
		}
		if err := g.NoDataRequest(ehci.ReqSetFeature, 1); err != nil {
			return err
		}
		if err := g.NoDataRequest(ehci.ReqGetInterface, 0); err != nil {
			return err
		}
		if err := g.NoDataRequest(ehci.ReqSetInterface, 0); err != nil {
			return err
		}

		// Register sweep.
		if _, err := g.Read32(ehci.RegUSBSts); err != nil {
			return err
		}
		if _, err := g.Read32(ehci.RegPortSC); err != nil {
			return err
		}
		if _, err := g.Read32(0x50); err != nil { // unmodelled register arm
			return err
		}
		if err := g.Write32(ehci.RegUSBIntr, 0x3F); err != nil {
			return err
		}
		if err := g.Write32(ehci.RegPortSC, 0x1000); err != nil {
			return err
		}

		// Data transfers of varying sizes (USB-storage-style).
		n := uint16(64 + rng.Intn(3200))
		data := make([]byte, n)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		if err := g.ControlOut(ehci.ReqClearFeature, 0, data); err != nil {
			return err
		}
		if err := g.ControlIn(ehci.ReqGetDescriptor, 0x0200, n); err != nil {
			return err
		}

		// The resume path: re-run the cached last qTD (an interrupt
		// endpoint poll), then unlink with the doorbell.
		if err := g.Resume(); err != nil {
			return err
		}
		if err := g.AckStatus(); err != nil {
			return err
		}
		if err := g.Doorbell(); err != nil {
			return err
		}
	}
	return nil
}

// EHCIOp issues one random benign operation.
func EHCIOp(g *ehci.Guest, rng *simclock.Rand) error {
	switch rng.Intn(5) {
	case 0:
		return g.ControlIn(ehci.ReqGetDescriptor, 0x0100, 18)
	case 1:
		n := 64 + rng.Intn(1024)
		return g.ControlOut(ehci.ReqClearFeature, 0, make([]byte, n))
	case 2:
		return g.ControlIn(ehci.ReqGetStatus, 0, 2)
	case 3:
		_, err := g.Read32(ehci.RegUSBSts)
		return err
	default:
		// Resume only after an IN transfer: re-running a cached OUT qTD
		// would accumulate setup_index like a buggy driver.
		if err := g.ControlIn(ehci.ReqGetStatus, 0, 2); err != nil {
			return err
		}
		return g.Resume()
	}
}

// EHCIRareOp issues a legitimate-but-untrained request.
func EHCIRareOp(g *ehci.Guest, rng *simclock.Rand) error {
	if rng.Bool(0.5) {
		return g.NoDataRequest(ehci.ReqSetDescriptor, 0)
	}
	return g.NoDataRequest(ehci.ReqSynchFrame, 0)
}
