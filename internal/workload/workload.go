// Package workload generates the I/O interactions of SEDSpec's evaluation:
// the benign training samples that execution specifications are learned
// from (paper §IV-C), and the runtime interaction modes of the
// false-positive study (sequential, random, random-with-delay; §VII-B1).
//
// Training sweeps environment configurations the way the paper does: for
// storage devices, filesystem format, volume mode, and partition/cache
// sizes; for network devices, IP/MAC addressing, interrupt mode, jumbo
// frames, and flow control. Each configuration shifts the command mix and
// parameter ranges so the learned specification covers the device's
// legitimate behaviour envelope.
package workload

import "sedspec/internal/simclock"

// StorageEnv is one storage training environment (paper §IV-C).
type StorageEnv struct {
	Format       string // FAT32, NTFS, EXT4
	Mode         string // RAID, LVM, JBOD
	PartitionMiB int
	CacheKiB     int
}

// StorageEnvs returns the storage environment sweep.
func StorageEnvs() []StorageEnv {
	var envs []StorageEnv
	for _, f := range []string{"FAT32", "NTFS", "EXT4"} {
		for _, m := range []string{"RAID", "LVM", "JBOD"} {
			envs = append(envs, StorageEnv{
				Format:       f,
				Mode:         m,
				PartitionMiB: 64 * (1 + len(envs)%3),
				CacheKiB:     128 << (len(envs) % 3),
			})
		}
	}
	return envs
}

// NetworkEnv is one network training environment (paper §IV-C).
type NetworkEnv struct {
	IP          uint32
	MAC         [6]byte
	Gateway     uint32
	IntrMode    int // 0 = line IRQ, 1 = polling mix
	JumboFrames bool
	FlowControl bool
}

// NetworkEnvs returns the network environment sweep.
func NetworkEnvs() []NetworkEnv {
	var envs []NetworkEnv
	for i := 0; i < 8; i++ {
		envs = append(envs, NetworkEnv{
			IP:          0x0A000002 + uint32(i),
			MAC:         [6]byte{0x52, 0x54, 0, 0, byte(i >> 4), byte(i)},
			Gateway:     0x0A000001,
			IntrMode:    i % 2,
			JumboFrames: i&2 != 0,
			FlowControl: i&4 != 0,
		})
	}
	return envs
}

// Mode is a runtime interaction mode of the false-positive study.
type Mode uint8

const (
	// Sequential follows a fixed order of read and write operations.
	Sequential Mode = iota + 1
	// Random picks operations uniformly.
	Random
	// RandomDelay picks operations uniformly with random delays between
	// them.
	RandomDelay
)

func (m Mode) String() string {
	switch m {
	case Sequential:
		return "sequential"
	case Random:
		return "random"
	case RandomDelay:
		return "random-with-delay"
	default:
		return "unknown"
	}
}

// Modes lists all interaction modes.
func Modes() []Mode { return []Mode{Sequential, Random, RandomDelay} }

// TrainConfig tunes training-sample generation.
type TrainConfig struct {
	// Seed makes training deterministic across the trace and observation
	// passes.
	Seed uint64
	// Light restricts the sweep for fast unit tests.
	Light bool
}

func (c TrainConfig) rng() *simclock.Rand {
	seed := c.Seed
	if seed == 0 {
		seed = 42
	}
	return simclock.NewRand(seed)
}
