package workload

import (
	"fmt"

	"sedspec/internal/devices/devutil"
	"sedspec/internal/devices/fdc"
	"sedspec/internal/simclock"
)

// TrainFDC drives the floppy controller through its benign behaviour
// envelope: reset and timing setup, seeks and recalibrations across the
// environment sweep, single- and multi-sector reads and writes (covering
// both the multi-sector and degenerate EOT arms), status polling, and
// media checks. Rare diagnostic commands (READ ID, FORMAT, DUMPREG) are
// excluded — they are the false-positive tail of Table II.
func TrainFDC(p devutil.Port, cfg TrainConfig) error {
	g := fdc.NewGuest(p)
	rng := cfg.rng()
	envs := StorageEnvs()
	if cfg.Light {
		envs = envs[:2]
	}

	for ei, env := range envs {
		if err := g.Reset(); err != nil {
			return fmt.Errorf("workload: fdc reset (env %d): %w", ei, err)
		}
		if _, err := g.SenseInt(); err != nil {
			return err
		}
		if err := g.Specify(); err != nil {
			return err
		}
		if err := g.Configure(); err != nil {
			return err
		}
		if err := g.Recalibrate(); err != nil {
			return err
		}
		if _, err := g.Version(); err != nil {
			return err
		}
		if err := g.SenseDrive(); err != nil {
			return err
		}
		if _, err := g.CheckMedia(); err != nil {
			return err
		}
		// Eject and re-insert the medium so the disk-change arm (a sync
		// point at runtime) is part of the specification.
		p.Attached().SetMedia(false)
		if _, err := g.CheckMedia(); err != nil {
			return err
		}
		p.Attached().SetMedia(true)

		// Track span scales with partition size; run length with cache.
		tracks := 2 + env.PartitionMiB/32
		runs := 2 + env.CacheKiB/128
		if cfg.Light {
			tracks, runs = 2, 2
		}
		for t := 0; t < tracks; t++ {
			head := byte(t % 2)
			if err := g.Seek(head, byte(t)); err != nil {
				return err
			}
			for r := 0; r < runs; r++ {
				sector := byte(1 + rng.Intn(9))
				span := byte(rng.Intn(4))
				eot := sector + span
				if err := g.WriteSectors(byte(t), head, sector, eot); err != nil {
					return err
				}
				if err := g.ReadSectors(byte(t), head, sector, eot); err != nil {
					return err
				}
			}
			// Cover the degenerate EOT < sector arm the firmware treats
			// as a single-sector transfer.
			if err := g.ReadSectors(byte(t), head, 5, 2); err != nil {
				return err
			}
		}
	}
	return nil
}

// FDCOp issues one random benign operation, used by the interaction modes.
func FDCOp(g *fdc.Guest, rng *simclock.Rand) error {
	switch rng.Intn(6) {
	case 0:
		return g.Seek(byte(rng.Intn(2)), byte(rng.Intn(40)))
	case 1:
		s := byte(1 + rng.Intn(9))
		return g.ReadSectors(byte(rng.Intn(40)), byte(rng.Intn(2)), s, s+byte(rng.Intn(3)))
	case 2:
		s := byte(1 + rng.Intn(9))
		return g.WriteSectors(byte(rng.Intn(40)), byte(rng.Intn(2)), s, s+byte(rng.Intn(3)))
	case 3:
		_, err := g.SenseInt()
		return err
	case 4:
		_, err := g.CheckMedia()
		return err
	default:
		return g.SenseDrive()
	}
}

// FDCRareOp issues one legitimate-but-rare operation (absent from
// training): the Table II false-positive source.
func FDCRareOp(g *fdc.Guest, rng *simclock.Rand) error {
	switch rng.Intn(3) {
	case 0:
		return g.ReadID(byte(rng.Intn(2)))
	case 1:
		return g.DumpReg()
	default:
		return g.Format(0, 2, 9)
	}
}
