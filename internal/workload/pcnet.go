package workload

import (
	"fmt"

	"sedspec/internal/devices/devutil"
	"sedspec/internal/devices/pcnet"
	"sedspec/internal/simclock"
)

// frame builds a deterministic Ethernet-ish frame of n bytes.
func frame(rng *simclock.Rand, n int) []byte {
	f := make([]byte, n)
	for i := range f {
		f[i] = byte(rng.Uint64())
	}
	return f
}

// TrainPCNet drives the adapter through its benign envelope across the
// network environment sweep: register and PROM access, initialization with
// varying ring sizes, wire and loopback transmit paths (single- and
// multi-chunk), receive with descriptor scanning (hit, advance, wrap, and
// exhausted arms), and interrupt acknowledgement.
func TrainPCNet(p devutil.Port, cfg TrainConfig) error {
	g := pcnet.NewGuest(p)
	rng := cfg.rng()
	envs := NetworkEnvs()
	if cfg.Light {
		envs = envs[:3]
	}

	for ei, env := range envs {
		if err := g.SoftReset(); err != nil {
			return fmt.Errorf("workload: pcnet reset (env %d): %w", ei, err)
		}
		if _, err := g.ReadMAC(); err != nil {
			return err
		}
		if _, err := g.ReadCSR(88); err != nil { // chip id
			return err
		}
		if _, err := g.ReadCSR(89); err != nil {
			return err
		}
		if _, err := g.ReadCSR(7); err != nil { // unmodelled CSR: zero arm
			return err
		}
		if err := g.WriteBCR(20, 2); err != nil { // SWSTYLE
			return err
		}
		if _, err := g.ReadBCR(20); err != nil {
			return err
		}
		if err := g.WriteCSR(4, 0x0915); err != nil { // unmodelled CSR write arm
			return err
		}

		g.MAC = env.MAC
		g.RxLen = uint16(1 + ei%4)
		g.TxLen = uint16(2 + ei%3)
		mode := uint16(0)
		if ei%2 == 1 {
			mode = pcnet.ModeLoop
		}
		if err := g.Setup(mode); err != nil {
			return err
		}
		if _, err := g.ReadCSR(76); err != nil {
			return err
		}
		if _, err := g.ReadCSR(78); err != nil {
			return err
		}

		maxFrame := 1514
		if env.JumboFrames {
			maxFrame = 3800
		}

		// Transmit: single-chunk and chained frames.
		for i := 0; i < 4; i++ {
			n := 64 + rng.Intn(maxFrame-64)
			if err := g.Transmit(frame(rng, n)); err != nil {
				return err
			}
			if err := g.AckInterrupts(); err != nil {
				return err
			}
		}
		// Pull the cable for one frame so the carrier-lost arm (a sync
		// point at runtime) is part of the specification.
		p.Attached().SetLink(false)
		if err := g.Transmit(frame(rng, 128)); err != nil {
			return err
		}
		p.Attached().SetLink(true)
		if err := g.AckInterrupts(); err != nil {
			return err
		}
		half := frame(rng, 600)
		if err := g.Transmit(half[:300], half[300:]); err != nil {
			return err
		}
		if err := g.AckInterrupts(); err != nil {
			return err
		}

		// Receive: descriptor at cursor owned (immediate hit).
		if err := g.ProvideRx(0); err != nil {
			return err
		}
		if err := g.InjectWireFrame(frame(rng, 64+rng.Intn(1400))); err != nil {
			return err
		}
		if err := g.AckInterrupts(); err != nil {
			return err
		}
		if _, _, err := g.RxStatus(0); err != nil {
			return err
		}

		if g.RxLen >= 2 {
			// Cursor slot not owned, a later slot owned: trains the
			// advance and countdown arms.
			if err := g.ClearRx(1 % g.RxLen); err != nil {
				return err
			}
			if err := g.ProvideRx((1 + 1) % g.RxLen); err != nil {
				return err
			}
			if err := g.InjectWireFrame(frame(rng, 128)); err != nil {
				return err
			}
			if err := g.AckInterrupts(); err != nil {
				return err
			}
		}

		// No descriptors at all: the frame-lost arm.
		for s := uint16(0); s < g.RxLen; s++ {
			if err := g.ClearRx(s); err != nil {
				return err
			}
		}
		if err := g.InjectWireFrame(frame(rng, 256)); err != nil {
			return err
		}

		// Inject while stopped: the RXON-off arm.
		if err := g.WriteCSR(0, pcnet.CSR0Stop); err != nil {
			return err
		}
		if err := g.InjectWireFrame(frame(rng, 64)); err != nil {
			return err
		}
		// Transmit poll while stopped: the TXON-off arm.
		if err := g.WriteCSR(0, pcnet.CSR0TDMD); err != nil {
			return err
		}
	}
	return nil
}

// PCNetOp issues one random benign operation for the interaction modes.
// The guest must have been set up (rings programmed, started).
func PCNetOp(g *pcnet.Guest, rng *simclock.Rand) error {
	switch rng.Intn(5) {
	case 0:
		return g.Transmit(frame(rng, 64+rng.Intn(1400)))
	case 1:
		slot := uint16(rng.Intn(int(g.RxLen)))
		if err := g.ProvideRx(slot); err != nil {
			return err
		}
		return g.InjectWireFrame(frame(rng, 64+rng.Intn(1400)))
	case 2:
		_, err := g.ReadCSR(0)
		return err
	case 3:
		return g.AckInterrupts()
	default:
		_, err := g.ReadCSR(uint16(rng.Intn(4) * 26)) // 0, 26, 52, 78
		return err
	}
}

// PCNetRareOp issues a legitimate-but-untrained operation: BCR writes to
// registers the training sweep never touches, or ring reconfiguration
// mid-flight via CSR76 writes.
func PCNetRareOp(g *pcnet.Guest, rng *simclock.Rand) error {
	if rng.Bool(0.5) {
		// CSR76 rewrite: trained only through the init block path.
		return g.WriteCSR(76, uint16(1+rng.Intn(4)))
	}
	return g.WriteCSR(15, pcnet.ModeLoop) // mode rewrite outside init
}
