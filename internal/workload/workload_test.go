package workload_test

import (
	"testing"

	"sedspec"
	"sedspec/internal/devices/ehci"
	"sedspec/internal/devices/fdc"
	"sedspec/internal/devices/pcnet"
	"sedspec/internal/devices/scsi"
	"sedspec/internal/devices/sdhci"
	"sedspec/internal/machine"
	"sedspec/internal/simclock"
	"sedspec/internal/workload"
)

func TestEnvironmentSweeps(t *testing.T) {
	envs := workload.StorageEnvs()
	if len(envs) != 9 {
		t.Errorf("storage envs = %d, want 9 (3 formats x 3 modes)", len(envs))
	}
	seen := map[string]bool{}
	for _, e := range envs {
		seen[e.Format] = true
		seen[e.Mode] = true
		if e.PartitionMiB <= 0 || e.CacheKiB <= 0 {
			t.Errorf("degenerate env: %+v", e)
		}
	}
	for _, want := range []string{"FAT32", "NTFS", "EXT4", "RAID", "LVM", "JBOD"} {
		if !seen[want] {
			t.Errorf("sweep missing %s", want)
		}
	}

	nets := workload.NetworkEnvs()
	if len(nets) != 8 {
		t.Errorf("network envs = %d, want 8", len(nets))
	}
	jumbo, flow := false, false
	for _, e := range nets {
		jumbo = jumbo || e.JumboFrames
		flow = flow || e.FlowControl
	}
	if !jumbo || !flow {
		t.Error("sweep should vary jumbo frames and flow control")
	}
}

func TestModes(t *testing.T) {
	if len(workload.Modes()) != 3 {
		t.Error("want 3 interaction modes")
	}
	if workload.Sequential.String() != "sequential" ||
		workload.RandomDelay.String() != "random-with-delay" {
		t.Error("mode strings wrong")
	}
}

// TestTrainersAreDeterministic runs every trainer twice on fresh devices
// and compares the resulting device state — Learn's two passes depend on
// this property.
func TestTrainersAreDeterministic(t *testing.T) {
	cfg := workload.TrainConfig{Light: true}
	cases := []struct {
		name  string
		fresh func() machine.Device
		opts  []machine.AttachOption
		train func(d *sedspec.Driver) error
	}{
		{"fdc", func() machine.Device { return fdc.New(fdc.Options{}) },
			[]machine.AttachOption{machine.WithPIO(0, fdc.PortCount)},
			func(d *sedspec.Driver) error { return workload.TrainFDC(d, cfg) }},
		{"pcnet", func() machine.Device { return pcnet.New(pcnet.Options{}) },
			[]machine.AttachOption{machine.WithPIO(0, pcnet.PortCount)},
			func(d *sedspec.Driver) error { return workload.TrainPCNet(d, cfg) }},
		{"sdhci", func() machine.Device { return sdhci.New(sdhci.Options{}) },
			[]machine.AttachOption{machine.WithMMIO(0, sdhci.RegionSize)},
			func(d *sedspec.Driver) error { return workload.TrainSDHCI(d, cfg) }},
		{"scsi", func() machine.Device { return scsi.New(scsi.Options{}) },
			[]machine.AttachOption{machine.WithPIO(0, scsi.PortCount)},
			func(d *sedspec.Driver) error { return workload.TrainSCSI(d, cfg) }},
		{"ehci", func() machine.Device { return ehci.New(ehci.Options{}) },
			[]machine.AttachOption{machine.WithMMIO(0, ehci.RegionSize)},
			func(d *sedspec.Driver) error { return workload.TrainEHCI(d, cfg) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			run := func() []byte {
				m := machine.New(machine.WithMemory(1 << 20))
				dev := c.fresh()
				att := m.Attach(dev, c.opts...)
				if err := c.train(sedspec.NewDriver(att)); err != nil {
					t.Fatalf("train: %v", err)
				}
				out := make([]byte, len(dev.State().Bytes()))
				copy(out, dev.State().Bytes())
				return out
			}
			a, b := run(), run()
			if string(a) != string(b) {
				t.Error("trainer left different device state across identical runs")
			}
		})
	}
}

// TestOpsRunCleanAfterSetup exercises each device's random benign op
// generator for a while: no faults, no errors.
func TestOpsRunCleanAfterSetup(t *testing.T) {
	t.Run("fdc", func(t *testing.T) {
		m := machine.New(machine.WithMemory(1 << 20))
		att := m.Attach(fdc.New(fdc.Options{}), machine.WithPIO(0, fdc.PortCount))
		g := fdc.NewGuest(sedspec.NewDriver(att))
		if err := g.Reset(); err != nil {
			t.Fatal(err)
		}
		rng := simclock.NewRand(3)
		for i := 0; i < 60; i++ {
			if err := workload.FDCOp(g, rng); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	})
	t.Run("pcnet", func(t *testing.T) {
		m := machine.New(machine.WithMemory(1 << 20))
		att := m.Attach(pcnet.New(pcnet.Options{}), machine.WithPIO(0, pcnet.PortCount))
		g := pcnet.NewGuest(sedspec.NewDriver(att))
		if err := g.Setup(0); err != nil {
			t.Fatal(err)
		}
		rng := simclock.NewRand(3)
		for i := 0; i < 60; i++ {
			if err := workload.PCNetOp(g, rng); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	})
	t.Run("sdhci", func(t *testing.T) {
		m := machine.New(machine.WithMemory(1 << 20))
		att := m.Attach(sdhci.New(sdhci.Options{}), machine.WithMMIO(0, sdhci.RegionSize))
		g := sdhci.NewGuest(sedspec.NewDriver(att))
		if err := g.InitCard(); err != nil {
			t.Fatal(err)
		}
		rng := simclock.NewRand(3)
		for i := 0; i < 60; i++ {
			if err := workload.SDHCIOp(g, rng); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	})
	t.Run("scsi", func(t *testing.T) {
		m := machine.New(machine.WithMemory(1 << 20))
		att := m.Attach(scsi.New(scsi.Options{}), machine.WithPIO(0, scsi.PortCount))
		g := scsi.NewGuest(sedspec.NewDriver(att))
		rng := simclock.NewRand(3)
		for i := 0; i < 60; i++ {
			if err := workload.SCSIOp(g, rng); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	})
	t.Run("ehci", func(t *testing.T) {
		m := machine.New(machine.WithMemory(1 << 20))
		att := m.Attach(ehci.New(ehci.Options{}), machine.WithMMIO(0, ehci.RegionSize))
		g := ehci.NewGuest(sedspec.NewDriver(att))
		rng := simclock.NewRand(3)
		for i := 0; i < 60; i++ {
			if err := workload.EHCIOp(g, rng); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	})
}
