package cmdutil

import (
	"encoding/json"
	"os"
	"path/filepath"

	"sedspec/internal/obs/span"
)

// WriteJSON writes v as indented JSON at path, creating parent
// directories as needed.
func WriteJSON(path string, v any) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteSpans exports a span sink as Chrome trace_event JSON at path.
func WriteSpans(path string, sink *span.Sink) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sink.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
