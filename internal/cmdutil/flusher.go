// Package cmdutil holds small helpers shared by the sedspec, sedfuzz, and
// sedbench commands.
package cmdutil

import (
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
)

// Flusher runs registered final-export steps (metrics files, coverage
// profiles, span traces) exactly once — on normal exit via a deferred
// Flush, or on SIGINT/SIGTERM, so an interrupted run still leaves its
// telemetry on disk. The signal path exits with the conventional 128+sig
// status after flushing.
type Flusher struct {
	mu    sync.Mutex
	steps []func() error
	done  bool
}

// NewFlusher returns a flusher with its signal handler installed.
func NewFlusher() *Flusher {
	f := &Flusher{}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig, ok := <-ch
		if !ok {
			return
		}
		f.Flush()
		code := 128 + int(syscall.SIGTERM)
		if s, isSys := sig.(syscall.Signal); isSys {
			code = 128 + int(s)
		}
		os.Exit(code)
	}()
	return f
}

// Add registers a final-export step. Steps run in registration order; a
// failing step is reported on stderr and does not stop the others.
func (f *Flusher) Add(step func() error) {
	f.mu.Lock()
	f.steps = append(f.steps, step)
	f.mu.Unlock()
}

// Flush runs every registered step once. Safe to call from the deferred
// exit path and the signal handler concurrently; only the first call runs
// the steps. It returns the first step error, if any.
func (f *Flusher) Flush() error {
	f.mu.Lock()
	if f.done {
		f.mu.Unlock()
		return nil
	}
	f.done = true
	steps := f.steps
	f.mu.Unlock()
	var first error
	for _, step := range steps {
		if err := step(); err != nil {
			fmt.Fprintf(os.Stderr, "final export: %v\n", err)
			if first == nil {
				first = err
			}
		}
	}
	return first
}
