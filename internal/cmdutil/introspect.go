package cmdutil

import (
	"fmt"
	"os"

	"sedspec/internal/obs"
	"sedspec/internal/obs/stream"
)

// ResolveListen folds the -listen flag with its deprecated -pprof
// alias: -listen wins when both are set, and using -pprof prints a
// deprecation note.
func ResolveListen(listen, pprofAlias string) string {
	if listen != "" {
		return listen
	}
	if pprofAlias != "" {
		fmt.Fprintln(os.Stderr, "warning: -pprof is deprecated; use -listen (same server, more endpoints)")
		return pprofAlias
	}
	return ""
}

// ServeIntrospection starts the unified introspection server on addr
// over the process-wide metrics registry and telemetry hub, with a
// running health aggregator (budgetNs > 0 arms the enforcement-overhead
// watchdog), and prints the startup banner. The server and the health
// ticker live for the process; addr may use port 0.
func ServeIntrospection(addr string, budgetNs float64) (*stream.Server, error) {
	h := stream.NewHealth(obs.Default(), stream.Default(), stream.HealthOptions{
		BudgetNsPerOp: budgetNs,
	})
	srv, err := stream.Serve(addr, stream.ServerOptions{
		Registry: obs.Default(),
		Hub:      stream.Default(),
		Health:   h,
	})
	if err != nil {
		return nil, err
	}
	h.Start()
	fmt.Printf("introspection server on http://%s — /healthz /fleet /metrics /anomalies /coverage /buildinfo /debug/vars /debug/pprof\n",
		srv.Addr())
	return srv, nil
}
