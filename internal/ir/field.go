// Package ir defines the device-program intermediate representation that
// emulated devices in this repository are written in.
//
// The original SEDSpec prototype analyses and instruments QEMU's C device
// code. Reproducing that in Go requires a substrate whose control flow can
// be traced, whose "source statements" can be statically analysed, and
// whose device control structure behaves like a C struct (buffer overflows
// corrupt adjacent fields). This IR provides all three:
//
//   - Devices are programs of handlers; handlers are basic blocks of typed
//     ops ending in a terminator (jump, conditional branch, command switch,
//     return, halt).
//   - Every op and terminator carries a synthesized source statement with a
//     line number, standing in for the C source that SEDSpec's ES-CFG
//     constructor extracts statements from.
//   - The device control structure is a flat byte arena laid out like a C
//     struct, so an out-of-bounds buffer write really does clobber the
//     neighbouring field (for example a function pointer), exactly as in
//     the CVE exploits the paper evaluates.
package ir

import "fmt"

// Width is the storage width of an integer field or operation.
type Width uint8

// Supported integer widths.
const (
	W8 Width = iota + 1
	W16
	W32
	W64
)

// Bytes returns the storage size in bytes.
func (w Width) Bytes() int {
	// W8..W64 are 1..4, so the width is an exponent; the unsigned
	// subtraction folds the below-range and above-range checks into one
	// compare (w==0 wraps to the top).
	if w-W8 > W64-W8 {
		return 0
	}
	return 1 << (w - W8)
}

// Bits returns the width in bits.
func (w Width) Bits() int { return w.Bytes() * 8 }

// Mask returns the value mask for the width.
func (w Width) Mask() uint64 {
	if w == W64 {
		return ^uint64(0)
	}
	return (uint64(1) << w.Bits()) - 1
}

// MaxUnsigned returns the largest unsigned value representable at the width.
func (w Width) MaxUnsigned() uint64 { return w.Mask() }

// MaxSigned returns the largest signed value representable at the width.
func (w Width) MaxSigned() int64 { return int64(w.Mask() >> 1) }

// MinSigned returns the smallest signed value representable at the width.
func (w Width) MinSigned() int64 { return -int64(w.Mask()>>1) - 1 }

// SignExtend interprets v (truncated to the width) as a signed value.
func (w Width) SignExtend(v uint64) int64 {
	// xor trick: for v truncated to the width, (v ^ signBit) - signBit is
	// the sign-extended value — branch-free and valid at W64 too, where
	// the subtraction wraps back to v.
	v &= w.Mask()
	signBit := uint64(1) << (w.Bits() - 1)
	return int64((v ^ signBit) - signBit)
}

func (w Width) String() string {
	switch w {
	case W8:
		return "u8"
	case W16:
		return "u16"
	case W32:
		return "u32"
	case W64:
		return "u64"
	default:
		return fmt.Sprintf("Width(%d)", uint8(w))
	}
}

// FieldKind distinguishes the three control-structure member kinds the
// paper's parameter-selection rules care about (Table I).
type FieldKind uint8

const (
	// FieldInt is an integer member (registers, counters, indices, ...).
	FieldInt FieldKind = iota + 1
	// FieldBuf is a fixed-length byte buffer (FIFOs, frame buffers, ...).
	FieldBuf
	// FieldFunc is a function pointer (IRQ handlers, completion callbacks).
	FieldFunc
)

func (k FieldKind) String() string {
	switch k {
	case FieldInt:
		return "int"
	case FieldBuf:
		return "buf"
	case FieldFunc:
		return "func"
	default:
		return fmt.Sprintf("FieldKind(%d)", uint8(k))
	}
}

// Field describes one member of the device control structure.
//
// Fields are laid out in declaration order in a flat arena (see
// Program.Finalize), mirroring a C struct. Offset and ByteSize are filled
// in during layout.
type Field struct {
	Name   string
	Kind   FieldKind
	Width  Width // FieldInt only
	Signed bool  // FieldInt only
	Size   int   // FieldBuf only: length in bytes

	// HWRegister marks a field that mirrors a physical device register
	// (paper Rule 1: such variables always join the device state).
	HWRegister bool

	// Offset and ByteSize are the arena layout, assigned by Finalize.
	Offset   int
	ByteSize int
}

// funcPtrSize is the storage size of a FieldFunc member, matching a 64-bit
// C function pointer.
const funcPtrSize = 8

func (f *Field) storageSize() int {
	switch f.Kind {
	case FieldInt:
		return f.Width.Bytes()
	case FieldBuf:
		return f.Size
	case FieldFunc:
		return funcPtrSize
	default:
		return 0
	}
}

// CType renders the field as the C declaration it stands in for, used in
// diagnostics and specification dumps.
func (f *Field) CType() string {
	switch f.Kind {
	case FieldInt:
		sign := "u"
		if f.Signed {
			sign = ""
		}
		return fmt.Sprintf("%sint%d_t %s", sign, f.Width.Bits(), f.Name)
	case FieldBuf:
		return fmt.Sprintf("uint8_t %s[%d]", f.Name, f.Size)
	case FieldFunc:
		return fmt.Sprintf("void (*%s)(void)", f.Name)
	default:
		return f.Name
	}
}
