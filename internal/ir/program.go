package ir

import (
	"fmt"
	"sort"
)

// BlockKind classifies basic blocks the way the ES-CFG does (paper §V-A2).
type BlockKind uint8

const (
	// KindNormal is an ordinary block.
	KindNormal BlockKind = iota
	// KindEntry is the first block reached for an I/O interaction.
	KindEntry
	// KindExit signals the end of an I/O round.
	KindExit
	// KindCmdDecision identifies the current device command and the blocks
	// accessible under it.
	KindCmdDecision
	// KindCmdEnd marks the conclusion of the current command's execution.
	KindCmdEnd
)

func (k BlockKind) String() string {
	switch k {
	case KindNormal:
		return "normal"
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindCmdDecision:
		return "cmd-decision"
	case KindCmdEnd:
		return "cmd-end"
	default:
		return fmt.Sprintf("BlockKind(%d)", uint8(k))
	}
}

// Region classifies where a handler's code lives in the synthetic address
// space. The trace module's filters (paper §IV-A) keep only RegionDevice
// control flow: library calls are excluded by address range and kernel
// control flow by the ring filter.
type Region uint8

const (
	// RegionDevice is the emulated device's own code.
	RegionDevice Region = iota
	// RegionLibrary is shared-library helper code.
	RegionLibrary
	// RegionKernel is kernel-space code.
	RegionKernel
)

func (r Region) String() string {
	switch r {
	case RegionDevice:
		return "device"
	case RegionLibrary:
		return "library"
	case RegionKernel:
		return "kernel"
	default:
		return fmt.Sprintf("Region(%d)", uint8(r))
	}
}

// Block is a straight-line sequence of ops ending in a terminator.
type Block struct {
	Label string
	Kind  BlockKind
	Ops   []Op
	Term  Term

	// Addr is the block's synthetic start address, assigned by Finalize.
	Addr uint64
	// Index is the block's position within its handler.
	Index int
}

// OpAddr returns the synthetic address of the block's i'th op; i ==
// len(Ops) addresses the terminator.
func (b *Block) OpAddr(i int) uint64 { return b.Addr + uint64(i*opSize) }

// TermAddr returns the synthetic address of the block's terminator.
func (b *Block) TermAddr() uint64 { return b.OpAddr(len(b.Ops)) }

// Handler is one emulation routine: a CFG of basic blocks. Block 0 is the
// handler's entry.
type Handler struct {
	Name     string
	Index    int
	Region   Region
	Blocks   []Block
	NumTemps int
}

// Synthetic address-space layout. Device code is allocated from DeviceBase,
// library code from LibraryBase, and kernel code from KernelBase, so a
// [DeviceBase, LibraryBase) range filter isolates device control flow.
const (
	DeviceBase  uint64 = 0x0000_5555_0000_0000
	LibraryBase uint64 = 0x0000_7777_0000_0000
	KernelBase  uint64 = 0xFFFF_8000_0000_0000

	// opSize is the synthetic encoded size of one op or terminator.
	opSize = 4
)

// Program is a complete device program: the control structure declaration
// plus all handlers. Programs are built with a Builder and must be
// finalized before execution.
type Program struct {
	Name string

	Fields   []Field
	Handlers []Handler

	// DispatchHandler is the handler index invoked for each I/O request
	// (the MMIO/PIO entry routine).
	DispatchHandler int

	// ArenaSize is the control structure's total byte size after layout.
	ArenaSize int

	// DeviceCodeEnd is one past the last device-region address, so
	// [DeviceBase, DeviceCodeEnd) is the trace filter range.
	DeviceCodeEnd uint64

	fieldIdx   map[string]int
	handlerIdx map[string]int
	blockAddr  map[uint64]BlockRef
	finalized  bool
}

// BlockRef names a block by handler and block index.
type BlockRef struct {
	Handler int
	Block   int
}

// FieldIndex returns the index of the named field, or -1.
func (p *Program) FieldIndex(name string) int {
	if i, ok := p.fieldIdx[name]; ok {
		return i
	}
	return -1
}

// HandlerIndex returns the index of the named handler, or -1.
func (p *Program) HandlerIndex(name string) int {
	if i, ok := p.handlerIdx[name]; ok {
		return i
	}
	return -1
}

// BlockAt resolves a synthetic block start address to its handler/block, as
// the trace decoder must when reconstructing control flow from TIP packets.
func (p *Program) BlockAt(addr uint64) (BlockRef, bool) {
	r, ok := p.blockAddr[addr]
	return r, ok
}

// Block returns the referenced block. It panics on an invalid reference;
// references produced by this package are always valid.
func (p *Program) Block(ref BlockRef) *Block {
	return &p.Handlers[ref.Handler].Blocks[ref.Block]
}

// NumBlocks returns the total number of blocks across all handlers.
func (p *Program) NumBlocks() int {
	n := 0
	for i := range p.Handlers {
		n += len(p.Handlers[i].Blocks)
	}
	return n
}

// finalize performs arena layout, synthetic address assignment, and address
// indexing. Called by Builder.Build after label resolution.
func (p *Program) finalize() {
	// Control structure layout: declaration order, natural sizes, no
	// padding (QEMU device structs are effectively packed for our
	// purposes; adjacency is what matters for overflow semantics).
	off := 0
	for i := range p.Fields {
		p.Fields[i].ByteSize = p.Fields[i].storageSize()
		p.Fields[i].Offset = off
		off += p.Fields[i].ByteSize
	}
	p.ArenaSize = off

	// Address assignment: handlers packed sequentially per region.
	devNext, libNext, kernNext := DeviceBase, LibraryBase, KernelBase
	p.blockAddr = make(map[uint64]BlockRef, p.NumBlocks())
	for hi := range p.Handlers {
		h := &p.Handlers[hi]
		var next *uint64
		switch h.Region {
		case RegionLibrary:
			next = &libNext
		case RegionKernel:
			next = &kernNext
		default:
			next = &devNext
		}
		for bi := range h.Blocks {
			b := &h.Blocks[bi]
			b.Addr = *next
			b.Index = bi
			p.blockAddr[b.Addr] = BlockRef{Handler: hi, Block: bi}
			*next += uint64((len(b.Ops) + 1) * opSize)
		}
		// Handler gap to keep addresses distinguishable in dumps.
		*next += 16
	}
	p.DeviceCodeEnd = devNext
	p.finalized = true
}

// Validate checks structural invariants: resolved targets, temp ranges,
// field kind agreement, exactly one dispatch handler, non-empty handlers.
func (p *Program) Validate() error {
	if !p.finalized {
		return fmt.Errorf("ir: program %q not finalized", p.Name)
	}
	if p.DispatchHandler < 0 || p.DispatchHandler >= len(p.Handlers) {
		return fmt.Errorf("ir: program %q dispatch handler %d out of range", p.Name, p.DispatchHandler)
	}
	for hi := range p.Handlers {
		h := &p.Handlers[hi]
		if len(h.Blocks) == 0 {
			return fmt.Errorf("ir: handler %q has no blocks", h.Name)
		}
		for bi := range h.Blocks {
			if err := p.validateBlock(h, bi); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) validateBlock(h *Handler, bi int) error {
	b := &h.Blocks[bi]
	where := func(i int) string {
		return fmt.Sprintf("ir: %s/%s/%s op %d", p.Name, h.Name, b.Label, i)
	}
	checkTemp := func(t int, i int) error {
		if t < 0 || t >= h.NumTemps {
			return fmt.Errorf("%s: temp %d out of range [0,%d)", where(i), t, h.NumTemps)
		}
		return nil
	}
	var temps []int
	for i := range b.Ops {
		op := &b.Ops[i]
		temps = op.usesTemps(temps[:0])
		if d := op.defsTemp(); d >= 0 {
			temps = append(temps, d)
		}
		for _, t := range temps {
			if err := checkTemp(t, i); err != nil {
				return err
			}
		}
		if err := p.validateOpFields(op, where(i)); err != nil {
			return err
		}
		if op.Code == OpCall {
			if op.Handler < 0 || op.Handler >= len(p.Handlers) {
				return fmt.Errorf("%s: call target %d out of range", where(i), op.Handler)
			}
		}
	}
	nBlocks := len(h.Blocks)
	var succ []int
	succ = b.Term.Successors(succ)
	for _, s := range succ {
		if s < 0 || s >= nBlocks {
			return fmt.Errorf("ir: %s/%s/%s terminator target %d out of range [0,%d)",
				p.Name, h.Name, b.Label, s, nBlocks)
		}
	}
	temps = b.Term.usesTemps(temps[:0])
	for _, t := range temps {
		if err := checkTemp(t, len(b.Ops)); err != nil {
			return err
		}
	}
	if b.Term.Kind == 0 {
		return fmt.Errorf("ir: %s/%s/%s missing terminator", p.Name, h.Name, b.Label)
	}
	return nil
}

func (p *Program) validateOpFields(op *Op, where string) error {
	needKind := func(fi int, want FieldKind) error {
		if fi < 0 || fi >= len(p.Fields) {
			return fmt.Errorf("%s: field %d out of range", where, fi)
		}
		if got := p.Fields[fi].Kind; got != want {
			return fmt.Errorf("%s: field %q is %s, want %s", where, p.Fields[fi].Name, got, want)
		}
		return nil
	}
	switch op.Code {
	case OpLoad, OpStore:
		return needKind(op.Field, FieldInt)
	case OpLoadFunc, OpStoreFunc, OpCallPtr:
		return needKind(op.Field, FieldFunc)
	case OpBufLoad, OpBufStore, OpDMAToBuf, OpDMAFromBuf, OpIOToBuf:
		return needKind(op.Field, FieldBuf)
	}
	return nil
}

// SortedBlockAddrs returns all block start addresses in ascending order,
// used by tests and dumps.
func (p *Program) SortedBlockAddrs() []uint64 {
	addrs := make([]uint64, 0, len(p.blockAddr))
	for a := range p.blockAddr {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}
