package ir

// Definitely-assigned temp analysis.
//
// The builder mints temps at value-production sites, so handler code is
// expected to write every temp before reading it on every path. When
// that holds for a whole program, a simulator's frame push does not
// need to zero the new temp bank: no read can observe the previous
// frame's residue. DefiniteTemps verifies the property once, over the
// structural CFG — a superset of any path a checker can take through
// the handler (trained edges and static switch fallbacks are all
// structural successors, and calls start the callee at block 0) — so a
// sealed spec may skip the per-round clears soundly.

// DefiniteTemps reports whether every temp read in every handler is
// definitely assigned before use on all structural paths from the
// handler's entry block (block 0). Flag slots are written by exactly
// the ops that write their temp, so the property covers the flag bank
// too.
func (p *Program) DefiniteTemps() bool {
	for hi := range p.Handlers {
		if !handlerDefinite(&p.Handlers[hi]) {
			return false
		}
	}
	return true
}

// handlerDefinite runs a must-analysis over one handler's block graph:
// IN[b] is the set of temps assigned on every path reaching b, OUT[b] =
// IN[b] ∪ writes(b), IN[b] = ∩ OUT[pred]. The handler passes when each
// reachable block's upward-exposed reads are covered by its IN set.
func handlerDefinite(h *Handler) bool {
	nb := len(h.Blocks)
	nt := h.NumTemps
	if nb == 0 || nt == 0 {
		return true
	}
	words := (nt + 63) / 64
	bits := func(sets []uint64, b int) []uint64 { return sets[b*words : (b+1)*words] }
	gen := make([]uint64, nb*words)  // temps written in the block
	need := make([]uint64, nb*words) // temps read before any local write
	var uses, succ []int
	for bi := range h.Blocks {
		b := &h.Blocks[bi]
		g, nd := bits(gen, bi), bits(need, bi)
		mark := func(t int) {
			if t >= 0 && t < nt && g[t>>6]&(1<<(uint(t)&63)) == 0 {
				nd[t>>6] |= 1 << (uint(t) & 63)
			}
		}
		for oi := range b.Ops {
			op := &b.Ops[oi]
			uses = op.usesTemps(uses[:0])
			for _, t := range uses {
				mark(t)
			}
			if d := op.defsTemp(); d >= 0 && d < nt {
				g[d>>6] |= 1 << (uint(d) & 63)
			}
		}
		uses = b.Term.usesTemps(uses[:0])
		for _, t := range uses {
			mark(t)
		}
	}
	// Forward must-dataflow from block 0; unvisited blocks sit at top
	// (all-assigned) so they never weaken a meet until reached.
	in := make([]uint64, nb*words)
	for i := range in {
		in[i] = ^uint64(0)
	}
	visited := make([]bool, nb)
	visited[0] = true
	for w := range bits(in, 0) {
		bits(in, 0)[w] = 0
	}
	changed := true
	for changed {
		changed = false
		for bi := range h.Blocks {
			if !visited[bi] {
				continue
			}
			ib, gb := bits(in, bi), bits(gen, bi)
			succ = h.Blocks[bi].Term.Successors(succ[:0])
			for _, s := range succ {
				if s < 0 || s >= nb {
					continue
				}
				is := bits(in, s)
				if !visited[s] {
					visited[s] = true
					for w := range is {
						is[w] = ib[w] | gb[w]
					}
					changed = true
					continue
				}
				for w := range is {
					if m := is[w] & (ib[w] | gb[w]); m != is[w] {
						is[w] = m
						changed = true
					}
				}
			}
		}
	}
	for bi := range h.Blocks {
		if !visited[bi] {
			continue
		}
		ib, nd := bits(in, bi), bits(need, bi)
		for w := range nd {
			if nd[w]&^ib[w] != 0 {
				return false
			}
		}
	}
	return true
}
