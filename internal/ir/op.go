package ir

import "fmt"

// SourceRef ties an op or terminator back to a synthesized source
// statement. SEDSpec's ES-CFG construction extracts statements from device
// source code; in this reproduction every IR element carries the pseudo-C
// statement it stands in for.
type SourceRef struct {
	Line int    `json:"line"`
	Text string `json:"text"`
}

func (s SourceRef) String() string { return fmt.Sprintf("L%d: %s", s.Line, s.Text) }

// OpCode enumerates the op kinds a basic block may contain.
type OpCode uint8

const (
	// OpConst sets T[Dst] = Imm.
	OpConst OpCode = iota + 1
	// OpLoad sets T[Dst] = value of integer field Field.
	OpLoad
	// OpStore writes T[Src] into integer field Field (truncated to the
	// field's width).
	OpStore
	// OpLoadFunc sets T[Dst] = raw value of function-pointer field Field.
	OpLoadFunc
	// OpStoreFunc writes T[Src] into function-pointer field Field.
	OpStoreFunc
	// OpArith sets T[Dst] = T[A] <ALU> T[B] at the given width, updating
	// the flag register (overflow, carry, zero, sign).
	OpArith
	// OpBufLoad sets T[Dst] = arena byte at Field.Offset + index(T[Idx]).
	// The index is interpreted per Signed/Width, so negative indices reach
	// below the buffer, as in C.
	OpBufLoad
	// OpBufStore writes the low byte of T[Src] at Field.Offset +
	// index(T[Idx]). Out-of-bounds writes corrupt neighbouring fields while
	// inside the arena and fault beyond it.
	OpBufStore
	// OpIOIn reads the next Width-sized unit from the I/O request payload
	// into T[Dst]. Reading past the payload yields zero.
	OpIOIn
	// OpIOOut appends T[Src] as a Width-sized unit to the I/O response.
	OpIOOut
	// OpIOAddr sets T[Dst] = the request's port or memory address.
	OpIOAddr
	// OpIOLen sets T[Dst] = remaining request payload length in bytes.
	OpIOLen
	// OpIOIsWrite sets T[Dst] = 1 for guest writes, 0 for reads.
	OpIOIsWrite
	// OpDMARead reads Width bytes of guest memory at address T[A] into
	// T[Dst].
	OpDMARead
	// OpDMAWrite writes T[Src] (Width bytes) to guest memory at address
	// T[A].
	OpDMAWrite
	// OpDMAToBuf copies T[B] bytes of guest memory from address T[A] into
	// buffer field Field starting at index T[Idx]. Subject to the same
	// arena-overflow semantics as OpBufStore.
	OpDMAToBuf
	// OpDMAFromBuf copies T[B] bytes from buffer field Field starting at
	// index T[Idx] to guest memory at address T[A].
	OpDMAFromBuf
	// OpIRQRaise raises the device's interrupt line.
	OpIRQRaise
	// OpIRQLower lowers the device's interrupt line.
	OpIRQLower
	// OpCall invokes handler Handler directly and resumes at the next op.
	OpCall
	// OpCallPtr invokes the handler whose index is stored in
	// function-pointer field Field. This is the indirect jump that the
	// trace module records as a TIP packet and that the indirect-jump
	// check strategy guards.
	OpCallPtr
	// OpWork models emulation work proportional to T[Src] bytes (checksum
	// loops, medium access latency). It advances the virtual clock and
	// burns deterministic CPU so performance benchmarks have a realistic
	// baseline.
	OpWork
	// OpIOToBuf copies T[B] bytes of the I/O request payload into buffer
	// field Field starting at index T[Idx], with the same arena-overflow
	// semantics as OpBufStore. Network devices use it to take a frame
	// from the backend.
	OpIOToBuf
	// OpEnvRead sets T[Dst] = an environment value (Imm selects the
	// EnvKind): link status, media presence, and similar values that are
	// derivable neither from the device state nor from the I/O data. A
	// branch depending on one forces the ES-CFG constructor to insert a
	// sync point (paper §V-D).
	OpEnvRead
)

// EnvKind selects what OpEnvRead reads.
type EnvKind uint8

const (
	// EnvLink is the network link status (0 down, 1 up).
	EnvLink EnvKind = iota + 1
	// EnvMedia is media presence (disk inserted, USB attached).
	EnvMedia
	// EnvTurn is a per-round token (alternating scheduling decisions).
	EnvTurn
)

func (k EnvKind) String() string {
	switch k {
	case EnvLink:
		return "link"
	case EnvMedia:
		return "media"
	case EnvTurn:
		return "turn"
	default:
		return fmt.Sprintf("EnvKind(%d)", uint8(k))
	}
}

var opNames = map[OpCode]string{
	OpConst:      "const",
	OpLoad:       "load",
	OpStore:      "store",
	OpLoadFunc:   "loadfunc",
	OpStoreFunc:  "storefunc",
	OpArith:      "arith",
	OpBufLoad:    "bufload",
	OpBufStore:   "bufstore",
	OpIOIn:       "ioin",
	OpIOOut:      "ioout",
	OpIOAddr:     "ioaddr",
	OpIOLen:      "iolen",
	OpIOIsWrite:  "ioiswrite",
	OpDMARead:    "dmaread",
	OpDMAWrite:   "dmawrite",
	OpDMAToBuf:   "dmatobuf",
	OpDMAFromBuf: "dmafrombuf",
	OpIRQRaise:   "irqraise",
	OpIRQLower:   "irqlower",
	OpCall:       "call",
	OpCallPtr:    "callptr",
	OpWork:       "work",
	OpIOToBuf:    "iotobuf",
	OpEnvRead:    "envread",
}

func (o OpCode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OpCode(%d)", uint8(o))
}

// ALU enumerates arithmetic/logic operations for OpArith.
type ALU uint8

// ALU operations.
const (
	ALUAdd ALU = iota + 1
	ALUSub
	ALUMul
	ALUDiv
	ALUMod
	ALUAnd
	ALUOr
	ALUXor
	ALUShl
	ALUShr
)

var aluNames = map[ALU]string{
	ALUAdd: "+", ALUSub: "-", ALUMul: "*", ALUDiv: "/", ALUMod: "%",
	ALUAnd: "&", ALUOr: "|", ALUXor: "^", ALUShl: "<<", ALUShr: ">>",
}

func (a ALU) String() string {
	if s, ok := aluNames[a]; ok {
		return s
	}
	return fmt.Sprintf("ALU(%d)", uint8(a))
}

// Op is one instruction inside a basic block. Operand meaning depends on
// Code; unused operands are zero.
type Op struct {
	Code OpCode

	Dst int // destination temp
	A   int // first source temp (or address temp for DMA)
	B   int // second source temp (or length temp for DMA copies)
	Src int // value source temp for stores/outputs
	Idx int // index temp for buffer ops

	Imm    uint64 // OpConst immediate
	Field  int    // field index for loads/stores/buffer ops/indirect calls
	Width  Width  // operation width
	Signed bool   // signed interpretation (arith overflow, buffer index)
	ALU    ALU    // OpArith operation

	Handler int // OpCall target handler index

	Src0 SourceRef // synthesized source statement
}

// WritesField reports whether the op writes device control structure state,
// and which field. These are the statements the ES-CFG constructor turns
// into Device State Operation Data (DSOD).
func (o *Op) WritesField() (int, bool) {
	switch o.Code {
	case OpStore, OpStoreFunc, OpBufStore, OpDMAToBuf, OpIOToBuf:
		return o.Field, true
	default:
		return -1, false
	}
}

// ReadsField reports whether the op reads device control structure state,
// and which field.
func (o *Op) ReadsField() (int, bool) {
	switch o.Code {
	case OpLoad, OpLoadFunc, OpBufLoad, OpDMAFromBuf, OpCallPtr:
		return o.Field, true
	default:
		return -1, false
	}
}

// usesTemps appends the temps read by the op to dst and returns it.
func (o *Op) usesTemps(dst []int) []int {
	switch o.Code {
	case OpStore, OpStoreFunc, OpIOOut:
		dst = append(dst, o.Src)
	case OpArith:
		dst = append(dst, o.A, o.B)
	case OpBufLoad:
		dst = append(dst, o.Idx)
	case OpBufStore:
		dst = append(dst, o.Idx, o.Src)
	case OpDMARead:
		dst = append(dst, o.A)
	case OpDMAWrite:
		dst = append(dst, o.A, o.Src)
	case OpDMAToBuf, OpDMAFromBuf:
		dst = append(dst, o.A, o.B, o.Idx)
	case OpIOToBuf:
		dst = append(dst, o.B, o.Idx)
	case OpWork:
		dst = append(dst, o.Src)
	}
	return dst
}

// defsTemp reports the temp the op defines, or -1.
func (o *Op) defsTemp() int {
	switch o.Code {
	case OpConst, OpLoad, OpLoadFunc, OpArith, OpBufLoad, OpIOIn,
		OpIOAddr, OpIOLen, OpIOIsWrite, OpDMARead, OpEnvRead:
		return o.Dst
	default:
		return -1
	}
}
