package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestWidthBytes(t *testing.T) {
	tests := []struct {
		w    Width
		want int
	}{
		{W8, 1}, {W16, 2}, {W32, 4}, {W64, 8}, {Width(0), 0}, {Width(99), 0},
	}
	for _, tt := range tests {
		if got := tt.w.Bytes(); got != tt.want {
			t.Errorf("Width(%d).Bytes() = %d, want %d", tt.w, got, tt.want)
		}
	}
}

func TestWidthMask(t *testing.T) {
	tests := []struct {
		w    Width
		want uint64
	}{
		{W8, 0xFF}, {W16, 0xFFFF}, {W32, 0xFFFF_FFFF}, {W64, ^uint64(0)},
	}
	for _, tt := range tests {
		if got := tt.w.Mask(); got != tt.want {
			t.Errorf("%v.Mask() = %#x, want %#x", tt.w, got, tt.want)
		}
	}
}

func TestWidthSignedRange(t *testing.T) {
	tests := []struct {
		w        Width
		max, min int64
	}{
		{W8, 127, -128},
		{W16, 32767, -32768},
		{W32, 2147483647, -2147483648},
		{W64, 9223372036854775807, -9223372036854775808},
	}
	for _, tt := range tests {
		if got := tt.w.MaxSigned(); got != tt.max {
			t.Errorf("%v.MaxSigned() = %d, want %d", tt.w, got, tt.max)
		}
		if got := tt.w.MinSigned(); got != tt.min {
			t.Errorf("%v.MinSigned() = %d, want %d", tt.w, got, tt.min)
		}
	}
}

func TestSignExtend(t *testing.T) {
	tests := []struct {
		w    Width
		v    uint64
		want int64
	}{
		{W8, 0x7F, 127},
		{W8, 0x80, -128},
		{W8, 0xFF, -1},
		{W16, 0xFFFF, -1},
		{W16, 0x8000, -32768},
		{W32, 0xFFFF_FFFF, -1},
		{W32, 0x7FFF_FFFF, 2147483647},
		{W64, 0xFFFF_FFFF_FFFF_FFFF, -1},
		{W8, 0x1FF, -1}, // high bits ignored
	}
	for _, tt := range tests {
		if got := tt.w.SignExtend(tt.v); got != tt.want {
			t.Errorf("%v.SignExtend(%#x) = %d, want %d", tt.w, tt.v, got, tt.want)
		}
	}
}

func TestSignExtendRoundTripProperty(t *testing.T) {
	// For any value, sign-extending and re-truncating preserves the low
	// bits at every width.
	prop := func(v uint64) bool {
		for _, w := range []Width{W8, W16, W32, W64} {
			if uint64(w.SignExtend(v))&w.Mask() != v&w.Mask() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestRelEvalUnsigned(t *testing.T) {
	tests := []struct {
		r    Rel
		a, b uint64
		want bool
	}{
		{RelEQ, 5, 5, true},
		{RelEQ, 5, 6, false},
		{RelNE, 5, 6, true},
		{RelLT, 1, 2, true},
		{RelLT, 2, 1, false},
		{RelLE, 2, 2, true},
		{RelGT, 3, 2, true},
		{RelGE, 2, 3, false},
		// 0xFF unsigned at W8 is 255, larger than 1.
		{RelGT, 0xFF, 1, true},
	}
	for _, tt := range tests {
		if got := tt.r.Eval(tt.a, tt.b, W8, false); got != tt.want {
			t.Errorf("(%d %v %d) unsigned = %v, want %v", tt.a, tt.r, tt.b, got, tt.want)
		}
	}
}

func TestRelEvalSigned(t *testing.T) {
	// 0xFF signed at W8 is -1, smaller than 1.
	if !RelLT.Eval(0xFF, 1, W8, true) {
		t.Error("signed -1 < 1 should hold")
	}
	if RelGT.Eval(0xFF, 1, W8, true) {
		t.Error("signed -1 > 1 should not hold")
	}
	if !RelGE.Eval(0x80, 0x80, W8, true) {
		t.Error("signed -128 >= -128 should hold")
	}
}

func TestRelEvalTotalityProperty(t *testing.T) {
	// Exactly one of <, ==, > holds for any pair, signed or not.
	prop := func(a, b uint64, signed bool) bool {
		for _, w := range []Width{W8, W16, W32, W64} {
			lt := RelLT.Eval(a, b, w, signed)
			eq := RelEQ.Eval(a, b, w, signed)
			gt := RelGT.Eval(a, b, w, signed)
			n := 0
			for _, x := range []bool{lt, eq, gt} {
				if x {
					n++
				}
			}
			if n != 1 {
				return false
			}
			if RelLE.Eval(a, b, w, signed) != (lt || eq) {
				return false
			}
			if RelGE.Eval(a, b, w, signed) != (gt || eq) {
				return false
			}
			if RelNE.Eval(a, b, w, signed) == eq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// buildToy constructs a minimal two-handler device program used by several
// tests in this package.
func buildToy(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("toy")
	reg := b.Int("reg", W8, HWRegister())
	buf := b.Buf("data", 16)
	pos := b.Int("pos", W16)
	cb := b.Func("cb")
	_ = buf

	h := b.Handler("toy_mmio_write")
	e := h.Block("entry").Entry()
	addr := e.IOAddr("addr = req->addr")
	e.Switch(addr, "switch (addr)", "exit",
		Case(0, "do_reg"),
		Case(1, "do_data"),
	)

	r := h.Block("do_reg")
	v := r.IOIn(W8, "v = ioread8()")
	r.Store(reg, v, "s->reg = v")
	r.Jump("exit", "goto out")

	d := h.Block("do_data")
	v2 := d.IOIn(W8, "v = ioread8()")
	p := d.Load(pos, "p = s->pos")
	d.BufStore(buf, p, v2, W16, false, "s->data[p] = v")
	one := d.Const(1, "1")
	p2 := d.Arith(ALUAdd, p, one, W16, false, "p = p + 1")
	d.Store(pos, p2, "s->pos = p")
	d.CallPtr(cb, "s->cb()")
	d.Jump("exit", "goto out")

	x := h.Block("exit").Exit()
	x.Halt("return")

	cbh := b.Handler("toy_irq_cb")
	cbb := cbh.Block("body")
	cbb.IRQRaise("raise irq")
	cbb.Return("return")

	b.Dispatch("toy_mmio_write")
	p2prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p2prog
}

func TestBuilderBuild(t *testing.T) {
	p := buildToy(t)
	if p.ArenaSize != 1+16+2+8 {
		t.Errorf("ArenaSize = %d, want 27", p.ArenaSize)
	}
	if p.NumBlocks() != 5 {
		t.Errorf("NumBlocks = %d, want 5", p.NumBlocks())
	}
	if p.DispatchHandler != 0 {
		t.Errorf("DispatchHandler = %d, want 0", p.DispatchHandler)
	}
	if got := p.FieldIndex("pos"); got != 2 {
		t.Errorf("FieldIndex(pos) = %d, want 2", got)
	}
	if got := p.FieldIndex("missing"); got != -1 {
		t.Errorf("FieldIndex(missing) = %d, want -1", got)
	}
	if got := p.HandlerIndex("toy_irq_cb"); got != 1 {
		t.Errorf("HandlerIndex(toy_irq_cb) = %d, want 1", got)
	}
}

func TestFieldLayoutAdjacency(t *testing.T) {
	p := buildToy(t)
	// The field after the 16-byte buffer must start immediately at its
	// end: an overflow off "data" lands on "pos". This adjacency is what
	// the CVE exploit simulations rely on.
	data := p.Fields[p.FieldIndex("data")]
	pos := p.Fields[p.FieldIndex("pos")]
	if pos.Offset != data.Offset+data.Size {
		t.Errorf("pos.Offset = %d, want %d", pos.Offset, data.Offset+data.Size)
	}
}

func TestBlockAddressesUniqueAndResolvable(t *testing.T) {
	p := buildToy(t)
	addrs := p.SortedBlockAddrs()
	if len(addrs) != p.NumBlocks() {
		t.Fatalf("got %d unique addresses, want %d", len(addrs), p.NumBlocks())
	}
	for _, a := range addrs {
		ref, ok := p.BlockAt(a)
		if !ok {
			t.Fatalf("BlockAt(%#x) not found", a)
		}
		if p.Block(ref).Addr != a {
			t.Errorf("address mismatch at %#x", a)
		}
	}
	if _, ok := p.BlockAt(0xdead); ok {
		t.Error("BlockAt(0xdead) should not resolve")
	}
}

func TestRegionAddressSeparation(t *testing.T) {
	b := NewBuilder("regions")
	h := b.Handler("dev")
	blk := h.Block("e").Entry()
	blk.Halt("return")
	lh := b.Handler("helper", Library())
	lb := lh.Block("e")
	lb.Return("return")
	kh := b.Handler("syscall", Kernel())
	kb := kh.Block("e")
	kb.Return("return")
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	devAddr := p.Handlers[0].Blocks[0].Addr
	libAddr := p.Handlers[1].Blocks[0].Addr
	kernAddr := p.Handlers[2].Blocks[0].Addr
	if devAddr < DeviceBase || devAddr >= LibraryBase {
		t.Errorf("device handler at %#x outside device region", devAddr)
	}
	if libAddr < LibraryBase || libAddr >= KernelBase {
		t.Errorf("library handler at %#x outside library region", libAddr)
	}
	if kernAddr < KernelBase {
		t.Errorf("kernel handler at %#x outside kernel region", kernAddr)
	}
	if p.DeviceCodeEnd <= devAddr {
		t.Errorf("DeviceCodeEnd %#x does not cover device code", p.DeviceCodeEnd)
	}
}

func TestBuilderErrors(t *testing.T) {
	tests := []struct {
		name    string
		build   func(b *Builder)
		wantSub string
	}{
		{
			name: "duplicate field",
			build: func(b *Builder) {
				b.Int("x", W8)
				b.Int("x", W8)
			},
			wantSub: "duplicate field",
		},
		{
			name: "unknown label",
			build: func(b *Builder) {
				h := b.Handler("h")
				h.Block("e").Jump("nowhere", "goto nowhere")
			},
			wantSub: "unknown block label",
		},
		{
			name: "duplicate label",
			build: func(b *Builder) {
				h := b.Handler("h")
				h.Block("e").Halt("x")
				h.Block("e").Halt("x")
			},
			wantSub: "duplicate block label",
		},
		{
			name: "unknown call target",
			build: func(b *Builder) {
				h := b.Handler("h")
				blk := h.Block("e")
				blk.Call("ghost", "ghost()")
				blk.Halt("x")
			},
			wantSub: "unknown handler",
		},
		{
			name: "unknown dispatch",
			build: func(b *Builder) {
				h := b.Handler("h")
				h.Block("e").Halt("x")
				b.Dispatch("ghost")
			},
			wantSub: "dispatch handler",
		},
		{
			name: "missing terminator",
			build: func(b *Builder) {
				h := b.Handler("h")
				h.Block("e")
			},
			wantSub: "missing terminator",
		},
		{
			name: "double terminator",
			build: func(b *Builder) {
				h := b.Handler("h")
				blk := h.Block("e")
				blk.Halt("x")
				blk.Return("y")
			},
			wantSub: "terminator already set",
		},
		{
			name: "non-positive buffer",
			build: func(b *Builder) {
				b.Buf("buf", 0)
				h := b.Handler("h")
				h.Block("e").Halt("x")
			},
			wantSub: "non-positive size",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b := NewBuilder("bad")
			tt.build(b)
			_, err := b.Build()
			if err == nil {
				t.Fatal("Build succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err, tt.wantSub)
			}
		})
	}
}

func TestValidateFieldKindMismatch(t *testing.T) {
	b := NewBuilder("bad")
	f := b.Int("x", W8)
	h := b.Handler("h")
	blk := h.Block("e")
	idx := blk.Const(0, "0")
	blk.BufStore(FieldID(f), idx, idx, W8, false, "x[0] = 0") // int used as buf
	blk.Halt("return")
	_, err := b.Build()
	if err == nil || !strings.Contains(err.Error(), "want buf") {
		t.Errorf("Build error = %v, want field-kind mismatch", err)
	}
}

func TestOpFieldAccessors(t *testing.T) {
	store := Op{Code: OpStore, Field: 3}
	if f, ok := store.WritesField(); !ok || f != 3 {
		t.Errorf("OpStore.WritesField() = %d,%v", f, ok)
	}
	load := Op{Code: OpLoad, Field: 2}
	if _, ok := load.WritesField(); ok {
		t.Error("OpLoad should not write a field")
	}
	if f, ok := load.ReadsField(); !ok || f != 2 {
		t.Errorf("OpLoad.ReadsField() = %d,%v", f, ok)
	}
}

func TestTermSuccessors(t *testing.T) {
	jump := Term{Kind: TermJump, Target: 7}
	if got := jump.Successors(nil); len(got) != 1 || got[0] != 7 {
		t.Errorf("jump successors = %v", got)
	}
	br := Term{Kind: TermBranch, Taken: 1, NotTaken: 2}
	if got := br.Successors(nil); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("branch successors = %v", got)
	}
	sw := Term{Kind: TermSwitch, Cases: []SwitchCase{{1, 3}, {2, 4}}, Default: 5}
	if got := sw.Successors(nil); len(got) != 3 {
		t.Errorf("switch successors = %v", got)
	}
	ret := Term{Kind: TermReturn}
	if got := ret.Successors(nil); len(got) != 0 {
		t.Errorf("return successors = %v", got)
	}
}

func TestOpAddr(t *testing.T) {
	p := buildToy(t)
	b := &p.Handlers[0].Blocks[0]
	if b.OpAddr(0) != b.Addr {
		t.Error("OpAddr(0) should equal block address")
	}
	if b.TermAddr() != b.Addr+uint64(len(b.Ops)*4) {
		t.Error("TermAddr mismatch")
	}
}

func TestFieldCType(t *testing.T) {
	tests := []struct {
		f    Field
		want string
	}{
		{Field{Name: "msr", Kind: FieldInt, Width: W8}, "uint8_t msr"},
		{Field{Name: "pos", Kind: FieldInt, Width: W32, Signed: true}, "int32_t pos"},
		{Field{Name: "fifo", Kind: FieldBuf, Size: 512}, "uint8_t fifo[512]"},
		{Field{Name: "irq", Kind: FieldFunc}, "void (*irq)(void)"},
	}
	for _, tt := range tests {
		if got := tt.f.CType(); got != tt.want {
			t.Errorf("CType() = %q, want %q", got, tt.want)
		}
	}
}
