package ir

import (
	"errors"
	"fmt"
)

// Temp identifies a handler-local temporary (virtual register).
type Temp int

// FieldID identifies a control-structure field within a program.
type FieldID int

// Builder constructs a Program. All errors are accumulated and returned
// from Build so device definitions stay linear and declarative.
type Builder struct {
	p    *Program
	line int
	errs []error

	handlers []*HandlerBuilder
	dispatch string
	// callFixups resolve OpCall targets named before declaration.
	callFixups []callFixup
}

type callFixup struct {
	handler, block, op int
	name               string
	// toImm writes the resolved handler index into the op's Imm (used by
	// FuncValue) instead of its Handler slot (used by Call).
	toImm bool
}

// NewBuilder returns a builder for a program with the given device name.
func NewBuilder(name string) *Builder {
	return &Builder{
		p: &Program{
			Name:       name,
			fieldIdx:   make(map[string]int),
			handlerIdx: make(map[string]int),
		},
		line: 1,
	}
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

func (b *Builder) src(text string) SourceRef {
	s := SourceRef{Line: b.line, Text: text}
	b.line++
	return s
}

// FieldOpt configures a field declaration.
type FieldOpt func(*Field)

// HWRegister marks the field as mirroring a physical device register
// (selection Rule 1).
func HWRegister() FieldOpt { return func(f *Field) { f.HWRegister = true } }

// Signed marks an integer field as signed.
func Signed() FieldOpt { return func(f *Field) { f.Signed = true } }

func (b *Builder) addField(f Field) FieldID {
	if _, dup := b.p.fieldIdx[f.Name]; dup {
		b.errf("ir: duplicate field %q", f.Name)
		return FieldID(len(b.p.Fields) - 1)
	}
	b.p.fieldIdx[f.Name] = len(b.p.Fields)
	b.p.Fields = append(b.p.Fields, f)
	return FieldID(len(b.p.Fields) - 1)
}

// Int declares an integer control-structure field.
func (b *Builder) Int(name string, w Width, opts ...FieldOpt) FieldID {
	f := Field{Name: name, Kind: FieldInt, Width: w}
	for _, o := range opts {
		o(&f)
	}
	return b.addField(f)
}

// Buf declares a fixed-length byte buffer field.
func (b *Builder) Buf(name string, size int) FieldID {
	if size <= 0 {
		b.errf("ir: buffer %q has non-positive size %d", name, size)
		size = 1
	}
	return b.addField(Field{Name: name, Kind: FieldBuf, Size: size})
}

// Func declares a function-pointer field.
func (b *Builder) Func(name string) FieldID {
	return b.addField(Field{Name: name, Kind: FieldFunc})
}

// HandlerOpt configures a handler declaration.
type HandlerOpt func(*Handler)

// Library places the handler in shared-library address space, outside the
// trace filter's device code range.
func Library() HandlerOpt { return func(h *Handler) { h.Region = RegionLibrary } }

// Kernel places the handler in kernel address space, excluded by the trace
// module's ring filter.
func Kernel() HandlerOpt { return func(h *Handler) { h.Region = RegionKernel } }

// Handler starts a new handler. The first handler marked via
// Builder.Dispatch (or, absent that, the first handler declared) becomes
// the I/O dispatch entry.
func (b *Builder) Handler(name string, opts ...HandlerOpt) *HandlerBuilder {
	if _, dup := b.p.handlerIdx[name]; dup {
		b.errf("ir: duplicate handler %q", name)
	}
	idx := len(b.handlers)
	h := Handler{Name: name, Index: idx}
	for _, o := range opts {
		o(&h)
	}
	b.p.handlerIdx[name] = idx
	hb := &HandlerBuilder{b: b, h: h, labels: make(map[string]int)}
	b.handlers = append(b.handlers, hb)
	return hb
}

// Dispatch names the handler invoked for every I/O request.
func (b *Builder) Dispatch(name string) { b.dispatch = name }

// Build resolves labels and call targets, lays out the control structure,
// assigns synthetic addresses, validates, and returns the program.
func (b *Builder) Build() (*Program, error) {
	for _, hb := range b.handlers {
		hb.resolve()
		b.p.Handlers = append(b.p.Handlers, hb.h)
	}
	for _, fx := range b.callFixups {
		idx, ok := b.p.handlerIdx[fx.name]
		if !ok {
			b.errf("ir: call to unknown handler %q", fx.name)
			continue
		}
		op := &b.p.Handlers[fx.handler].Blocks[fx.block].Ops[fx.op]
		if fx.toImm {
			op.Imm = uint64(idx)
		} else {
			op.Handler = idx
		}
	}
	if b.dispatch != "" {
		idx, ok := b.p.handlerIdx[b.dispatch]
		if !ok {
			b.errf("ir: dispatch handler %q not declared", b.dispatch)
		}
		b.p.DispatchHandler = idx
	}
	if len(b.errs) > 0 {
		return nil, errors.Join(b.errs...)
	}
	b.p.finalize()
	if err := b.p.Validate(); err != nil {
		return nil, err
	}
	return b.p, nil
}

// HandlerBuilder accumulates a handler's blocks.
type HandlerBuilder struct {
	b      *Builder
	h      Handler
	labels map[string]int
	// pending terminator targets by label, resolved at Build.
	fixups []termFixup
}

type termFixup struct {
	block int
	// slot selects which target to patch: 0=Target/Taken, 1=NotTaken,
	// 2..=case index+2, -1=Default.
	slot  int
	label string
}

func (hb *HandlerBuilder) newTemp() Temp {
	t := Temp(hb.h.NumTemps)
	hb.h.NumTemps++
	return t
}

// Block starts a new basic block with the given label.
func (hb *HandlerBuilder) Block(label string) *BlockBuilder {
	if _, dup := hb.labels[label]; dup {
		hb.b.errf("ir: handler %q: duplicate block label %q", hb.h.Name, label)
	}
	idx := len(hb.h.Blocks)
	hb.labels[label] = idx
	hb.h.Blocks = append(hb.h.Blocks, Block{Label: label})
	return &BlockBuilder{hb: hb, idx: idx}
}

func (hb *HandlerBuilder) resolve() {
	for _, fx := range hb.fixups {
		idx, ok := hb.labels[fx.label]
		if !ok {
			hb.b.errf("ir: handler %q: unknown block label %q", hb.h.Name, fx.label)
			continue
		}
		t := &hb.h.Blocks[fx.block].Term
		switch {
		case fx.slot == 0:
			if t.Kind == TermBranch {
				t.Taken = idx
			} else {
				t.Target = idx
			}
		case fx.slot == 1:
			t.NotTaken = idx
		case fx.slot == -1:
			t.Default = idx
		default:
			t.Cases[fx.slot-2].Target = idx
		}
	}
}

// BlockBuilder appends ops and the terminator to one block.
type BlockBuilder struct {
	hb  *HandlerBuilder
	idx int
}

func (bb *BlockBuilder) block() *Block { return &bb.hb.h.Blocks[bb.idx] }

func (bb *BlockBuilder) add(op Op) { bb.block().Ops = append(bb.block().Ops, op) }

// Entry marks the block as the I/O entry block.
func (bb *BlockBuilder) Entry() *BlockBuilder { bb.block().Kind = KindEntry; return bb }

// Exit marks the block as an exit block.
func (bb *BlockBuilder) Exit() *BlockBuilder { bb.block().Kind = KindExit; return bb }

// CmdDecision marks the block as a command-decision block.
func (bb *BlockBuilder) CmdDecision() *BlockBuilder { bb.block().Kind = KindCmdDecision; return bb }

// CmdEnd marks the block as a command-end block.
func (bb *BlockBuilder) CmdEnd() *BlockBuilder { bb.block().Kind = KindCmdEnd; return bb }

// Const loads an immediate.
func (bb *BlockBuilder) Const(v uint64, text string) Temp {
	t := bb.hb.newTemp()
	bb.add(Op{Code: OpConst, Dst: int(t), Imm: v, Src0: bb.hb.b.src(text)})
	return t
}

// Load reads an integer field.
func (bb *BlockBuilder) Load(f FieldID, text string) Temp {
	t := bb.hb.newTemp()
	bb.add(Op{Code: OpLoad, Dst: int(t), Field: int(f), Src0: bb.hb.b.src(text)})
	return t
}

// Store writes an integer field.
func (bb *BlockBuilder) Store(f FieldID, src Temp, text string) {
	bb.add(Op{Code: OpStore, Field: int(f), Src: int(src), Src0: bb.hb.b.src(text)})
}

// LoadFunc reads a function-pointer field's raw value.
func (bb *BlockBuilder) LoadFunc(f FieldID, text string) Temp {
	t := bb.hb.newTemp()
	bb.add(Op{Code: OpLoadFunc, Dst: int(t), Field: int(f), Src0: bb.hb.b.src(text)})
	return t
}

// StoreFunc writes a function-pointer field.
func (bb *BlockBuilder) StoreFunc(f FieldID, src Temp, text string) {
	bb.add(Op{Code: OpStoreFunc, Field: int(f), Src: int(src), Src0: bb.hb.b.src(text)})
}

// FuncValue materializes a handler's index for storing into a
// function-pointer field.
func (bb *BlockBuilder) FuncValue(handler string, text string) Temp {
	t := bb.hb.newTemp()
	bb.add(Op{Code: OpConst, Dst: int(t), Src0: bb.hb.b.src(text)})
	bb.hb.b.callFixups = append(bb.hb.b.callFixups, callFixup{
		handler: bb.hb.h.Index, block: bb.idx, op: len(bb.block().Ops) - 1,
		name: handler, toImm: true,
	})
	return t
}

// Arith computes a binary ALU op at the given width.
func (bb *BlockBuilder) Arith(alu ALU, a, b Temp, w Width, signed bool, text string) Temp {
	t := bb.hb.newTemp()
	bb.add(Op{
		Code: OpArith, Dst: int(t), A: int(a), B: int(b),
		ALU: alu, Width: w, Signed: signed, Src0: bb.hb.b.src(text),
	})
	return t
}

// BufLoad reads one byte of a buffer field at the given index temp.
func (bb *BlockBuilder) BufLoad(f FieldID, idx Temp, w Width, signed bool, text string) Temp {
	t := bb.hb.newTemp()
	bb.add(Op{
		Code: OpBufLoad, Dst: int(t), Field: int(f), Idx: int(idx),
		Width: w, Signed: signed, Src0: bb.hb.b.src(text),
	})
	return t
}

// BufStore writes one byte of a buffer field at the given index temp.
func (bb *BlockBuilder) BufStore(f FieldID, idx, src Temp, w Width, signed bool, text string) {
	bb.add(Op{
		Code: OpBufStore, Field: int(f), Idx: int(idx), Src: int(src),
		Width: w, Signed: signed, Src0: bb.hb.b.src(text),
	})
}

// IOIn consumes the next unit of request payload.
func (bb *BlockBuilder) IOIn(w Width, text string) Temp {
	t := bb.hb.newTemp()
	bb.add(Op{Code: OpIOIn, Dst: int(t), Width: w, Src0: bb.hb.b.src(text)})
	return t
}

// IOOut appends a unit to the response payload.
func (bb *BlockBuilder) IOOut(src Temp, w Width, text string) {
	bb.add(Op{Code: OpIOOut, Src: int(src), Width: w, Src0: bb.hb.b.src(text)})
}

// IOAddr yields the request's port or memory address.
func (bb *BlockBuilder) IOAddr(text string) Temp {
	t := bb.hb.newTemp()
	bb.add(Op{Code: OpIOAddr, Dst: int(t), Src0: bb.hb.b.src(text)})
	return t
}

// IOLen yields the remaining request payload length.
func (bb *BlockBuilder) IOLen(text string) Temp {
	t := bb.hb.newTemp()
	bb.add(Op{Code: OpIOLen, Dst: int(t), Src0: bb.hb.b.src(text)})
	return t
}

// IOIsWrite yields 1 for guest writes and 0 for reads.
func (bb *BlockBuilder) IOIsWrite(text string) Temp {
	t := bb.hb.newTemp()
	bb.add(Op{Code: OpIOIsWrite, Dst: int(t), Src0: bb.hb.b.src(text)})
	return t
}

// DMARead reads a unit of guest memory at the address temp.
func (bb *BlockBuilder) DMARead(addr Temp, w Width, text string) Temp {
	t := bb.hb.newTemp()
	bb.add(Op{Code: OpDMARead, Dst: int(t), A: int(addr), Width: w, Src0: bb.hb.b.src(text)})
	return t
}

// DMAWrite writes a unit to guest memory at the address temp.
func (bb *BlockBuilder) DMAWrite(addr, src Temp, w Width, text string) {
	bb.add(Op{Code: OpDMAWrite, A: int(addr), Src: int(src), Width: w, Src0: bb.hb.b.src(text)})
}

// DMAToBuf copies n bytes of guest memory into a buffer field at idx.
func (bb *BlockBuilder) DMAToBuf(f FieldID, idx, addr, n Temp, signed bool, text string) {
	bb.add(Op{
		Code: OpDMAToBuf, Field: int(f), Idx: int(idx), A: int(addr), B: int(n),
		Width: W32, Signed: signed, Src0: bb.hb.b.src(text),
	})
}

// DMAFromBuf copies n bytes from a buffer field at idx to guest memory.
func (bb *BlockBuilder) DMAFromBuf(f FieldID, idx, addr, n Temp, signed bool, text string) {
	bb.add(Op{
		Code: OpDMAFromBuf, Field: int(f), Idx: int(idx), A: int(addr), B: int(n),
		Width: W32, Signed: signed, Src0: bb.hb.b.src(text),
	})
}

// IOToBuf copies n request-payload bytes into a buffer field at idx.
func (bb *BlockBuilder) IOToBuf(f FieldID, idx, n Temp, signed bool, text string) {
	bb.add(Op{
		Code: OpIOToBuf, Field: int(f), Idx: int(idx), B: int(n),
		Width: W32, Signed: signed, Src0: bb.hb.b.src(text),
	})
}

// IRQRaise raises the device interrupt line.
func (bb *BlockBuilder) IRQRaise(text string) {
	bb.add(Op{Code: OpIRQRaise, Src0: bb.hb.b.src(text)})
}

// IRQLower lowers the device interrupt line.
func (bb *BlockBuilder) IRQLower(text string) {
	bb.add(Op{Code: OpIRQLower, Src0: bb.hb.b.src(text)})
}

// Call invokes another handler directly.
func (bb *BlockBuilder) Call(handler string, text string) {
	bb.add(Op{Code: OpCall, Handler: -1, Src0: bb.hb.b.src(text)})
	bb.hb.b.callFixups = append(bb.hb.b.callFixups, callFixup{
		handler: bb.hb.h.Index, block: bb.idx, op: len(bb.block().Ops) - 1, name: handler,
	})
}

// CallPtr invokes the handler stored in a function-pointer field.
func (bb *BlockBuilder) CallPtr(f FieldID, text string) {
	bb.add(Op{Code: OpCallPtr, Field: int(f), Src0: bb.hb.b.src(text)})
}

// Work models emulation work proportional to the byte count in src.
func (bb *BlockBuilder) Work(src Temp, text string) {
	bb.add(Op{Code: OpWork, Src: int(src), Src0: bb.hb.b.src(text)})
}

// EnvRead reads an environment value (link status, media presence, ...)
// that is derivable neither from device state nor from I/O data.
func (bb *BlockBuilder) EnvRead(kind EnvKind, text string) Temp {
	t := bb.hb.newTemp()
	bb.add(Op{Code: OpEnvRead, Dst: int(t), Imm: uint64(kind), Src0: bb.hb.b.src(text)})
	return t
}

func (bb *BlockBuilder) setTerm(t Term) {
	blk := bb.block()
	if blk.Term.Kind != 0 {
		bb.hb.b.errf("ir: handler %q block %q: terminator already set", bb.hb.h.Name, blk.Label)
		return
	}
	blk.Term = t
}

// Jump ends the block with an unconditional jump to label.
func (bb *BlockBuilder) Jump(label, text string) {
	bb.setTerm(Term{Kind: TermJump, Src0: bb.hb.b.src(text)})
	bb.hb.fixups = append(bb.hb.fixups, termFixup{block: bb.idx, slot: 0, label: label})
}

// Branch ends the block with a conditional branch.
func (bb *BlockBuilder) Branch(a Temp, rel Rel, b Temp, w Width, signed bool, text, taken, notTaken string) {
	bb.setTerm(Term{
		Kind: TermBranch, A: int(a), B: int(b), Rel: rel,
		Width: w, Signed: signed, Src0: bb.hb.b.src(text),
	})
	bb.hb.fixups = append(bb.hb.fixups,
		termFixup{block: bb.idx, slot: 0, label: taken},
		termFixup{block: bb.idx, slot: 1, label: notTaken},
	)
}

// SwitchArm is one case of a Switch terminator.
type SwitchArm struct {
	Value uint64
	Label string
}

// Case constructs a SwitchArm.
func Case(v uint64, label string) SwitchArm { return SwitchArm{Value: v, Label: label} }

// Switch ends the block with a multi-way dispatch on the selector temp.
func (bb *BlockBuilder) Switch(sel Temp, text, defLabel string, arms ...SwitchArm) {
	cases := make([]SwitchCase, len(arms))
	for i, a := range arms {
		cases[i] = SwitchCase{Value: a.Value}
	}
	bb.setTerm(Term{Kind: TermSwitch, A: int(sel), Cases: cases, Src0: bb.hb.b.src(text)})
	bb.hb.fixups = append(bb.hb.fixups, termFixup{block: bb.idx, slot: -1, label: defLabel})
	for i, a := range arms {
		bb.hb.fixups = append(bb.hb.fixups, termFixup{block: bb.idx, slot: i + 2, label: a.Label})
	}
}

// Return ends the block by returning from the handler.
func (bb *BlockBuilder) Return(text string) {
	bb.setTerm(Term{Kind: TermReturn, Src0: bb.hb.b.src(text)})
}

// Halt ends the block and the I/O round.
func (bb *BlockBuilder) Halt(text string) {
	bb.setTerm(Term{Kind: TermHalt, Src0: bb.hb.b.src(text)})
}
