package ir

import "fmt"

// TermKind enumerates block terminators.
type TermKind uint8

const (
	// TermJump unconditionally continues at Target.
	TermJump TermKind = iota + 1
	// TermBranch compares T[A] Rel T[B] and continues at Taken or NotTaken.
	// This is the conditional jump the trace module records as a TNT bit
	// and the conditional-jump check strategy guards.
	TermBranch
	// TermSwitch dispatches on T[A] through Cases with a Default target.
	// Blocks ending in a switch are command-decision blocks when flagged
	// via BlockKind.
	TermSwitch
	// TermReturn returns from the current handler (or ends the I/O round
	// when the dispatch frame returns).
	TermReturn
	// TermHalt ends the I/O round immediately; the block is an exit block.
	TermHalt
)

func (k TermKind) String() string {
	switch k {
	case TermJump:
		return "jump"
	case TermBranch:
		return "branch"
	case TermSwitch:
		return "switch"
	case TermReturn:
		return "return"
	case TermHalt:
		return "halt"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Rel is the comparison relation of a conditional branch.
type Rel uint8

// Branch relations.
const (
	RelEQ Rel = iota + 1
	RelNE
	RelLT
	RelLE
	RelGT
	RelGE
)

var relNames = map[Rel]string{
	RelEQ: "==", RelNE: "!=", RelLT: "<", RelLE: "<=", RelGT: ">", RelGE: ">=",
}

func (r Rel) String() string {
	if s, ok := relNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Rel(%d)", uint8(r))
}

// Eval applies the relation to two raw values at the given width and
// signedness.
func (r Rel) Eval(a, b uint64, w Width, signed bool) bool {
	return r.EvalMasked(a, b, w.Mask(), uint64(1)<<(w.Bits()-1), signed)
}

// EvalMasked is Eval with the width pre-resolved into its value mask and
// sign bit, for callers (the threaded check engine) that compile widths
// out of the hot path. mask must be w.Mask() and signBit
// 1 << (w.Bits()-1); results are identical to Eval's.
func (r Rel) EvalMasked(a, b, mask, signBit uint64, signed bool) bool {
	if signed {
		sa := int64((a&mask ^ signBit) - signBit)
		sb := int64((b&mask ^ signBit) - signBit)
		switch r {
		case RelEQ:
			return sa == sb
		case RelNE:
			return sa != sb
		case RelLT:
			return sa < sb
		case RelLE:
			return sa <= sb
		case RelGT:
			return sa > sb
		case RelGE:
			return sa >= sb
		}
		return false
	}
	ua, ub := a&mask, b&mask
	switch r {
	case RelEQ:
		return ua == ub
	case RelNE:
		return ua != ub
	case RelLT:
		return ua < ub
	case RelLE:
		return ua <= ub
	case RelGT:
		return ua > ub
	case RelGE:
		return ua >= ub
	}
	return false
}

// SwitchCase is one arm of a TermSwitch.
type SwitchCase struct {
	Value  uint64
	Target int
}

// Term is a block terminator. Target fields hold block indices within the
// enclosing handler (resolved from labels at Finalize time).
type Term struct {
	Kind TermKind

	Target int // TermJump

	A, B     int // TermBranch operand temps; TermSwitch selector in A
	Rel      Rel // TermBranch relation
	Width    Width
	Signed   bool
	Taken    int // TermBranch taken target
	NotTaken int // TermBranch fall-through target

	Cases   []SwitchCase // TermSwitch arms, ordered
	Default int          // TermSwitch default target

	Src0 SourceRef
}

// Successors appends the terminator's possible successor block indices to
// dst and returns it. Return/halt have none.
func (t *Term) Successors(dst []int) []int {
	switch t.Kind {
	case TermJump:
		dst = append(dst, t.Target)
	case TermBranch:
		dst = append(dst, t.Taken, t.NotTaken)
	case TermSwitch:
		for _, c := range t.Cases {
			dst = append(dst, c.Target)
		}
		dst = append(dst, t.Default)
	}
	return dst
}

// usesTemps appends the temps the terminator reads to dst and returns it.
func (t *Term) usesTemps(dst []int) []int {
	switch t.Kind {
	case TermBranch:
		dst = append(dst, t.A, t.B)
	case TermSwitch:
		dst = append(dst, t.A)
	}
	return dst
}
