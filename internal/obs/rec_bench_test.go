package obs

import "testing"

// Micro-benchmarks of the recorder hot path and its two halves. The
// checker-facing cost (Append + field fills + Commit) is guarded
// end-to-end by TestRecorderOverheadGuard in the root package; these
// pin where a regression lives when that guard trips.

func BenchmarkRecordOnly(b *testing.B) {
	g := NewRegistry()
	r := g.NewRecorder("dev", 0, DefaultRingSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(Event{Tick: int64(i), Round: uint64(i), Addr: 0x3f5, Steps: 20, Kind: KindPIOWrite})
	}
}

func BenchmarkRingAppendOnly(b *testing.B) {
	g := NewRegistry()
	r := g.NewRecorder("dev", 0, DefaultRingSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.ring.append(Event{Tick: int64(i), Round: uint64(i), Addr: 0x3f5, Steps: 20, Kind: KindPIOWrite})
	}
}

func BenchmarkBankRecordOnly(b *testing.B) {
	g := NewRegistry()
	r := g.NewRecorder("dev", 0, DefaultRingSize)
	ev := Event{Latency: 1, Steps: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.bank.record(&ev)
	}
}
