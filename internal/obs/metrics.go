package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// NumBuckets is the histogram width: bucket 0 holds exact zeros, bucket
// i >= 1 holds values in [2^(i-1), 2^i). Everything at or above 2^30
// lands in the last bucket.
const NumBuckets = 32

// bucketOf maps a value to its log-scale bucket.
func bucketOf(v uint64) int {
	b := bits.Len64(v)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketLabel renders bucket i's value range for JSON and timelines.
func BucketLabel(i int) string {
	switch {
	case i <= 0:
		return "0"
	case i == 1:
		return "1"
	case i == NumBuckets-1:
		return fmt.Sprintf("%d+", uint64(1)<<(NumBuckets-2))
	default:
		return fmt.Sprintf("%d-%d", uint64(1)<<(i-1), uint64(1)<<i-1)
	}
}

// bank is one recorder's metric storage. It has a single writer (the
// session goroutine) but is read concurrently by snapshots, so every
// counter is atomic. The latency and steps histograms are fused into one
// bucket matrix so the common OK round costs exactly one atomic add:
// snapshots recover the two marginal histograms (and the round total) by
// summing rows and columns, which keeps the third counter and the second
// histogram add off the hot path. The outcome matrix is touched only on
// the rare anomaly path.
type bank struct {
	// outcomes counts anomalous rounds by strategy × verdict. The
	// [StrategyNone][VerdictOK] cell is never written on the hot path;
	// snapshots fill it with rounds − anomalies.
	outcomes [NumStrategies][NumVerdicts]atomic.Uint64
	// cells[latencyBucket][stepsBucket] counts rounds.
	cells [NumBuckets][NumBuckets]atomic.Uint64
}

func (b *bank) record(ev *Event) {
	b.cells[bucketOf(uint64(ev.Latency))][bucketOf(uint64(ev.Steps))].Add(1)
	if ev.Verdict != VerdictOK {
		b.outcomes[ev.Strategy%NumStrategies][ev.Verdict%NumVerdicts].Add(1)
	}
}

// Hist is an immutable histogram snapshot.
type Hist struct {
	Buckets [NumBuckets]uint64
}

// Count returns the total number of recorded values.
func (h *Hist) Count() uint64 {
	var n uint64
	for _, b := range h.Buckets {
		n += b
	}
	return n
}

// merge adds o into h.
func (h *Hist) merge(o *Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded
// values by walking the cumulative bucket counts and interpolating
// linearly inside the bucket the rank lands in. Bucket i >= 1 spans
// [2^(i-1), 2^i), so the estimate is off by at most a factor of 2 —
// the bucket's own width — and is exact for bucket 0 (zeros) and
// bucket 1 (ones). Returns 0 for an empty histogram; q outside (0,1]
// is clamped.
func (h *Hist) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, b := range h.Buckets {
		if b == 0 {
			continue
		}
		prev := cum
		cum += float64(b)
		if cum < rank {
			continue
		}
		switch i {
		case 0:
			return 0
		case 1:
			return 1
		}
		lo := float64(uint64(1) << (i - 1))
		hi := lo * 2
		if i == NumBuckets-1 {
			// The last bucket is open-ended; report its lower edge rather
			// than inventing an upper one.
			return lo
		}
		frac := (rank - prev) / float64(b)
		return lo + frac*(hi-lo)
	}
	return 0
}

// MetricsSnapshot is one device's (or one session's) counters at a
// point in time. It is a plain comparable value: merging and equality
// need no locks, which is what lets aggregate accounting be tested as
// "registry snapshot == sum of per-session snapshots".
type MetricsSnapshot struct {
	Device string
	// Rounds is the number of checked I/Os recorded.
	Rounds uint64
	// Outcomes[strategy][verdict] counts rounds; [0][VerdictOK] holds
	// the clean rounds.
	Outcomes [NumStrategies][NumVerdicts]uint64
	// Latency buckets the virtual-time gap between consecutive checked
	// I/Os, in simclock ticks.
	Latency Hist
	// Steps buckets the sealed-walker step count per round.
	Steps Hist
	// Swaps counts spec hot-swaps applied to the device. It is a
	// registry-level counter (CountSwap), not a per-recorder one: a swap
	// belongs to the shared engine, not to any single session.
	Swaps uint64
}

// Merge returns the field-wise sum of two snapshots (the Device name is
// taken from the receiver).
func (m MetricsSnapshot) Merge(o MetricsSnapshot) MetricsSnapshot {
	m.Rounds += o.Rounds
	for s := range m.Outcomes {
		for v := range m.Outcomes[s] {
			m.Outcomes[s][v] += o.Outcomes[s][v]
		}
	}
	m.Latency.merge(&o.Latency)
	m.Steps.merge(&o.Steps)
	m.Swaps += o.Swaps
	return m
}

// Anomalies returns the total anomalous rounds in the snapshot.
func (m *MetricsSnapshot) Anomalies() uint64 {
	var n uint64
	for s := 1; s < NumStrategies; s++ {
		for v := 0; v < NumVerdicts; v++ {
			n += m.Outcomes[s][v]
		}
	}
	return n
}

// MarshalJSON renders the snapshot in the device × strategy × verdict
// shape the -metrics export and /debug/vars serve. Buckets and outcomes
// are emitted as ordered slices (ascending bucket index; strategy then
// verdict order), not maps, so the export is byte-for-byte deterministic
// and semantically ordered — stable for CI diffs and golden tests.
func (m MetricsSnapshot) MarshalJSON() ([]byte, error) {
	type bucketJSON struct {
		Range string `json:"range"`
		Count uint64 `json:"count"`
	}
	type histJSON struct {
		Count   uint64       `json:"count"`
		Buckets []bucketJSON `json:"buckets,omitempty"`
	}
	hist := func(h *Hist) histJSON {
		out := histJSON{Count: h.Count()}
		for i, b := range h.Buckets {
			if b != 0 {
				out.Buckets = append(out.Buckets, bucketJSON{Range: BucketLabel(i), Count: b})
			}
		}
		return out
	}
	type outcomeJSON struct {
		Strategy string `json:"strategy"`
		Verdict  string `json:"verdict"`
		Count    uint64 `json:"count"`
	}
	var outcomes []outcomeJSON
	for s := 0; s < NumStrategies; s++ {
		for v := 0; v < NumVerdicts; v++ {
			if n := m.Outcomes[s][v]; n != 0 {
				outcomes = append(outcomes, outcomeJSON{
					Strategy: StrategyName(uint8(s)),
					Verdict:  Verdict(v).String(),
					Count:    n,
				})
			}
		}
	}
	return json.Marshal(struct {
		Device       string        `json:"device"`
		Rounds       uint64        `json:"rounds"`
		Anomalies    uint64        `json:"anomalies"`
		Swaps        uint64        `json:"swaps,omitempty"`
		Outcomes     []outcomeJSON `json:"outcomes,omitempty"`
		LatencyTicks histJSON      `json:"latency_ticks"`
		Steps        histJSON      `json:"steps"`
	}{m.Device, m.Rounds, m.Anomalies(), m.Swaps, outcomes, hist(&m.Latency), hist(&m.Steps)})
}

// Snapshot is a point-in-time view of a whole registry, one row per
// device, sorted by device name.
type Snapshot struct {
	Devices []MetricsSnapshot `json:"devices"`
}

// Device returns the row for the named device (zero value if absent).
func (s Snapshot) Device(name string) MetricsSnapshot {
	for _, d := range s.Devices {
		if d.Device == name {
			return d
		}
	}
	return MetricsSnapshot{Device: name}
}

// Registry tracks every live Recorder plus the folded banks of closed
// ones. The registry itself is off the hot path entirely: recording
// touches only the recorder's own bank; the registry lock is taken on
// open/close/snapshot.
type Registry struct {
	mu      sync.Mutex
	recs    []*Recorder
	retired map[string]MetricsSnapshot
	// swaps counts spec hot-swaps per device. Kept separate from retired
	// so it is applied to the device row exactly once at snapshot time,
	// regardless of how many sessions fold in.
	swaps map[string]uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		retired: make(map[string]MetricsSnapshot),
		swaps:   make(map[string]uint64),
	}
}

// CountSwap records one spec hot-swap applied to the device (called by
// the shared enforcement engine when it publishes a new spec version).
func (g *Registry) CountSwap(device string) {
	g.mu.Lock()
	g.swaps[device]++
	g.mu.Unlock()
}

// defaultRegistry is the process-wide registry checkers register with
// unless redirected, mirroring expvar's package-level default.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Recorder is one session's flight recorder plus its metric bank. One
// goroutine writes it; see the package comment for the read contract.
type Recorder struct {
	reg     *Registry
	device  string
	session uint32

	seq      uint64
	lastTick int64
	ring     Ring
	bank     bank
	closed   bool

	// pendCount is a write-combining image of the bank's bucket matrix
	// for OK-round adds within a batched check (CommitDeferred), folded
	// into the bank by FlushDeferred. It is indexed directly by
	// latencyBucket<<5 | stepsBucket — the full key space — so no two
	// cells ever collide and a deferred round costs a plain increment
	// where Commit pays an atomic. pendDirty lists the distinct cells
	// touched since the last flush (at most one new cell per deferred
	// round, so pendFlushInterval entries bound it); flushing walks the
	// dirty list, not the table. The table survives batch boundaries and
	// self-publishes every pendFlushInterval deferred rounds, so a live
	// Snapshot trails a batched session by a bounded number of OK rounds
	// (anomalies always flush first). lastLat / lastSteps / lastIdx
	// memoize the previous round's raw values so back-to-back identical
	// rounds skip bucketing entirely.
	pendCount  [NumBuckets * NumBuckets]uint32
	pendDirty  [pendFlushInterval]uint16
	pendDirtyN int
	pendRounds uint32
	lastLat    uint32
	lastSteps  uint32
	lastIdx    int16
}

// NewRecorder opens a recorder for one enforcement session and
// registers it. ringSize <= 0 selects DefaultRingSize.
func (g *Registry) NewRecorder(device string, session int, ringSize int) *Recorder {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	if session < 0 {
		session = 0
	}
	r := &Recorder{
		reg:     g,
		device:  device,
		session: uint32(session & math.MaxUint32),
		ring:    newRing(ringSize),
		lastIdx: -1,
	}
	g.mu.Lock()
	g.recs = append(g.recs, r)
	g.mu.Unlock()
	return r
}

// Device returns the device name the recorder traces.
func (r *Recorder) Device() string { return r.device }

// Session returns the guest-session ID stamped into events.
func (r *Recorder) Session() int { return int(r.session) }

// Registry returns the registry the recorder reports into.
func (r *Recorder) Registry() *Registry { return r.reg }

// Append claims the next ring slot and stamps the sequencing fields
// (Seq, Session, Tick, and the Latency delta since the previous event).
// The caller must assign every payload field — the slot is not cleared,
// so an unassigned field would leak the overwritten event's value — and
// finish the record with Commit. Splitting the two lets the check hot
// path write each event field exactly once, directly into the ring.
func (r *Recorder) Append(tick int64) *Event {
	r.seq++
	d := tick - r.lastTick
	r.lastTick = tick
	var lat uint32
	switch {
	case d <= 0:
	case d >= math.MaxUint32:
		lat = math.MaxUint32
	default:
		lat = uint32(d)
	}
	ev := &r.ring.slots[r.ring.head&r.ring.mask]
	r.ring.head++
	ev.Seq, ev.Session, ev.Tick, ev.Latency = r.seq, r.session, tick, lat
	return ev
}

// Commit folds a filled slot from Append into the metric bank: one
// uncontended atomic add (two on anomalies). Any counts still deferred
// from an earlier batched stretch are published first, so the bank never
// records a later round ahead of an earlier one.
func (r *Recorder) Commit(ev *Event) {
	if r.pendDirtyN > 0 {
		r.FlushDeferred()
	}
	r.bank.record(ev)
}

// CommitDeferred is Commit for batched check paths: OK rounds
// accumulate in a small pending buffer and reach the atomic bank in one
// add per distinct histogram cell at the next FlushDeferred; anomalous
// rounds flush the buffer first and then commit directly, preserving
// Snapshot's rounds-before-anomalies read invariant.
func (r *Recorder) CommitDeferred(ev *Event) {
	if ev.Verdict != VerdictOK {
		r.FlushDeferred()
		r.bank.record(ev)
		return
	}
	r.CommitOKDeferred(ev.Latency, ev.Steps)
}

// CommitOKDeferred folds one clean batched round into the deferred
// write-combining table without materializing a ring event. Batched
// delivery coalesces its clean rounds into a single KindBatch ring
// summary per batch; the histograms — and therefore Rounds — still
// count every round individually through here, so Snapshot totals are
// identical to per-round delivery.
func (r *Recorder) CommitOKDeferred(latency, steps uint32) {
	// Inlinable memo fast path: same raw values as the previous round and
	// room before the next self-paced flush.
	if latency == r.lastLat && steps == r.lastSteps && r.lastIdx >= 0 &&
		r.pendRounds < pendFlushInterval-1 {
		r.pendRounds++
		r.pendCount[r.lastIdx]++
		return
	}
	r.commitOKSlow(latency, steps)
}

func (r *Recorder) commitOKSlow(latency, steps uint32) {
	r.pendRounds++
	if latency == r.lastLat && steps == r.lastSteps && r.lastIdx >= 0 {
		r.pendCount[r.lastIdx]++
	} else {
		r.lastLat, r.lastSteps = latency, steps
		i := uint32(bucketOf(uint64(latency)))<<5 | uint32(bucketOf(uint64(steps)))
		if r.pendCount[i] == 0 {
			r.pendDirty[r.pendDirtyN] = uint16(i)
			r.pendDirtyN++
		}
		r.pendCount[i]++
		r.lastIdx = int16(i)
	}
	if r.pendRounds >= pendFlushInterval {
		r.FlushDeferred()
	}
}

// pendFlushInterval bounds how many OK rounds CommitDeferred may hold
// back before self-publishing, mirroring the coverage map's cadence: a
// concurrent Snapshot of a batched session lags by at most this many
// rounds and reads a consistent lower bound.
const pendFlushInterval = 64

// FlushDeferred publishes pending CommitDeferred counts into the atomic
// bank. The recorder self-paces it every pendFlushInterval deferred
// rounds; anomalous rounds and Close force it so outcome ordering and
// final totals are exact.
func (r *Recorder) FlushDeferred() {
	for k := 0; k < r.pendDirtyN; k++ {
		i := r.pendDirty[k]
		r.bank.cells[i>>5][i&(NumBuckets-1)].Add(uint64(r.pendCount[i]))
		r.pendCount[i] = 0
	}
	r.pendDirtyN = 0
	r.pendRounds = 0
	r.lastIdx = -1
}

// Record stamps sequencing fields into ev and stores it — the
// one-call convenience form of Append+Commit.
func (r *Recorder) Record(ev Event) {
	slot := r.Append(ev.Tick)
	ev.Seq, ev.Session, ev.Latency = slot.Seq, slot.Session, slot.Latency
	*slot = ev
	r.bank.record(slot)
}

// Ring exposes the recorder's event ring (owner goroutine or quiesced
// session only).
func (r *Recorder) Ring() *Ring { return &r.ring }

// Snapshot reads the recorder's own metric bank. Safe to call from any
// goroutine while the session runs.
func (r *Recorder) Snapshot() MetricsSnapshot {
	m := MetricsSnapshot{Device: r.device}
	// Read outcomes before cells: record commits the histogram cell first
	// and the outcome second, so this read order guarantees every anomaly
	// the snapshot counts also has its round counted — mid-run snapshots
	// keep Rounds >= Anomalies no matter how the reads interleave with
	// running sessions. (Reading cells first leaves a window where a
	// just-committed anomaly shows up with no round.)
	for s := 0; s < NumStrategies; s++ {
		for v := 0; v < NumVerdicts; v++ {
			m.Outcomes[s][v] = r.bank.outcomes[s][v].Load()
		}
	}
	for i := range r.bank.cells {
		for j := range r.bank.cells[i] {
			n := r.bank.cells[i][j].Load()
			if n == 0 {
				continue
			}
			m.Latency.Buckets[i] += n
			m.Steps.Buckets[j] += n
			m.Rounds += n
		}
	}
	m.Outcomes[StrategyNone][VerdictOK] = m.Rounds - m.Anomalies()
	return m
}

// Close folds the recorder's counters into the registry's retired bank
// and unregisters it, so aggregate accounting survives session churn.
// Idempotent; the ring stays readable after Close.
func (r *Recorder) Close() {
	r.FlushDeferred()
	g := r.reg
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for i, rec := range g.recs {
		if rec == r {
			g.recs = append(g.recs[:i], g.recs[i+1:]...)
			break
		}
	}
	snap := r.Snapshot()
	if prev, ok := g.retired[r.device]; ok {
		snap = prev.Merge(snap)
	}
	g.retired[r.device] = snap
}

// Snapshot merges every live recorder's bank plus the retired banks
// into per-device rows. It may be called while sessions run: each
// counter is exact at its atomic load, with cross-field skew bounded by
// in-flight rounds.
func (g *Registry) Snapshot() Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	byDev := make(map[string]MetricsSnapshot, len(g.retired)+1)
	for dev, m := range g.retired {
		byDev[dev] = m
	}
	for _, r := range g.recs {
		m := r.Snapshot()
		if prev, ok := byDev[r.device]; ok {
			m = prev.Merge(m)
		}
		byDev[r.device] = m
	}
	for dev, n := range g.swaps {
		m, ok := byDev[dev]
		if !ok {
			m = MetricsSnapshot{Device: dev}
		}
		m.Swaps += n
		byDev[dev] = m
	}
	out := Snapshot{Devices: make([]MetricsSnapshot, 0, len(byDev))}
	for _, m := range byDev {
		out.Devices = append(out.Devices, m)
	}
	sort.Slice(out.Devices, func(i, j int) bool { return out.Devices[i].Device < out.Devices[j].Device })
	return out
}

// Recorders reports the number of live recorders.
func (g *Registry) Recorders() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.recs)
}

// String renders the current snapshot as JSON, making a Registry an
// expvar.Var: expvar.Publish("sedspec", obs.Default()) serves the
// metrics on /debug/vars.
func (g *Registry) String() string {
	b, err := json.Marshal(g.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}
