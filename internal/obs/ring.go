package obs

// Ring is the flight recorder's event store: a fixed-size ring that
// overwrites oldest-first, sized to a power of two so the slot index is
// a mask. It is single-writer and unsynchronized — see the package
// comment for the read contract (owner goroutine, or quiesced session).
type Ring struct {
	slots []Event
	mask  uint64
	// head counts every event ever appended; head - len(slots) of them
	// have been overwritten once head exceeds the capacity.
	head uint64
}

// DefaultRingSize is the per-session flight-recorder depth. 256 events
// of 56 bytes keep a session's recorder at one page-ish of memory while
// still holding far more history than an AnomalyContext ever freezes.
const DefaultRingSize = 256

// newRing allocates a ring with at least the requested capacity,
// rounded up to a power of two (minimum 8).
func newRing(size int) Ring {
	n := 8
	for n < size {
		n <<= 1
	}
	return Ring{slots: make([]Event, n), mask: uint64(n - 1)}
}

// append stores one event, overwriting the oldest once full.
func (r *Ring) append(ev Event) {
	r.slots[r.head&r.mask] = ev
	r.head++
}

// Len reports how many events are currently held.
func (r *Ring) Len() int {
	if r.head < uint64(len(r.slots)) {
		return int(r.head)
	}
	return len(r.slots)
}

// Cap reports the ring capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Total reports how many events were ever appended; Total() - Len() of
// them have been overwritten.
func (r *Ring) Total() uint64 { return r.head }

// Snapshot copies the held events oldest-to-newest.
func (r *Ring) Snapshot() []Event { return r.Last(r.Len()) }

// Last copies the most recent k events oldest-to-newest (fewer if the
// ring holds fewer).
func (r *Ring) Last(k int) []Event {
	n := r.Len()
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	out := make([]Event, k)
	for i := 0; i < k; i++ {
		out[i] = r.slots[(r.head-uint64(k)+uint64(i))&r.mask]
	}
	return out
}
