package stream

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"sedspec/internal/obs"
)

// fixtureEvent builds a randomized but well-formed event of the given
// kind: every envelope field exercised (including negative session and
// empty/non-empty tenants) and the kind's payload populated with
// representative structure.
func fixtureEvent(r *rand.Rand, k Kind) Event {
	tenants := []string{"", "prod", "edge-eu", "t_0.9"}
	devices := []string{"", "fdc", "ehci", "pcnet"}
	ev := Event{
		Seq:     r.Uint64() >> 8,
		TimeNs:  r.Int63(),
		Kind:    k,
		Tenant:  tenants[r.Intn(len(tenants))],
		Device:  devices[r.Intn(len(devices))],
		Session: r.Intn(2000) - 1,
		SpecGen: uint64(r.Intn(64)),
	}
	switch k {
	case KindAnomaly:
		ev.Anomaly = &AnomalyInfo{
			Strategy: "parameter-check",
			Severity: "critical",
			Detail:   "track 0x51 exceeds geometry",
			Round:    r.Uint64() >> 16,
			Addr:     0x3f5,
			Write:    r.Intn(2) == 0,
			Len:      1 + r.Intn(8),
			EdgeKind: "case",
			EdgeSel:  uint64(r.Intn(256)),
		}
		if r.Intn(2) == 0 {
			ev.Anomaly.Ctx = &obs.AnomalyContext{
				Device:  ev.Device,
				Session: ev.Session,
				Dropped: uint64(r.Intn(10)),
				Events: []obs.Event{
					{Seq: 1, Round: 7, Addr: 0x3f4, Steps: 12, Len: 1, Kind: obs.KindPIOWrite, Verdict: obs.VerdictOK},
					{Seq: 2, Round: 8, Addr: 0x3f5, Steps: 40, Len: 1, Kind: obs.KindPIOWrite, Strategy: 1, Verdict: obs.VerdictBlocked},
				},
			}
		}
	case KindAudit:
		ev.Audit = &AuditInfo{
			Strategy: "indirect-jump-check",
			Detail:   "untrained command 0x8e",
			Round:    r.Uint64() >> 16,
			Addr:     uint64(r.Intn(1 << 16)),
			Write:    true,
			Len:      2,
		}
	case KindSwap:
		ev.Swap = &SwapInfo{FromGen: 1 + uint64(r.Intn(8)), ToGen: 2 + uint64(r.Intn(8))}
	case KindAttach:
		// Attach carries no payload: the envelope is the whole event.
	case KindDetach:
		ev.Detach = &SessionInfo{Rounds: r.Uint64() >> 16, Blocked: uint64(r.Intn(4)), Warnings: uint64(r.Intn(9))}
	case KindSpec:
		ev.Spec = &SpecInfo{Generation: 1 + uint64(r.Intn(9)), Parent: uint64(r.Intn(4)), CreatedBy: "enhance", Blob: "sha256-deadbeef"}
	case KindHealth:
		ev.Health = &FleetSnapshot{
			TimeUnixNs: r.Int63(),
			UptimeSec:  12.5,
			Build:      BuildInfo{GoVersion: "go1.22", Path: "sedspec"},
			Stream:     HubStats{Subscribers: 2, TotalPublished: 9, Published: map[string]uint64{"anomaly": 9}},
			Devices: []DeviceHealth{{
				Device: "fdc", Tenant: ev.Tenant, Rounds: 100, Blocked: 1,
				RoundsPerSec: 1234.5, LatencyTicksP99: 80,
				Coverage: &GenCoverage{Generation: 2, BlocksCovered: 10, TotalBlocks: 12, EdgesCovered: 20, TotalEdges: 30},
			}},
			Sessions: 3,
		}
	case KindDrop:
		ev.Dropped = 1 + uint64(r.Intn(1000))
	}
	return ev
}

// TestEventCodecRoundTrip is the codec property test the journal
// depends on: for every kind, across randomized fixtures,
// MarshalBinary -> UnmarshalBinary reproduces the event exactly, and
// re-encoding the decoded event reproduces the bytes (determinism).
func TestEventCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for k := Kind(0); k < NumKinds; k++ {
		for trial := 0; trial < 50; trial++ {
			ev := fixtureEvent(r, k)
			enc, err := ev.MarshalBinary()
			if err != nil {
				t.Fatalf("%s: marshal: %v", k, err)
			}
			var got Event
			if err := got.UnmarshalBinary(enc); err != nil {
				t.Fatalf("%s: unmarshal: %v", k, err)
			}
			if !reflect.DeepEqual(ev, got) {
				t.Fatalf("%s: round trip mismatch:\n want %+v\n  got %+v", k, ev, got)
			}
			re, err := got.MarshalBinary()
			if err != nil {
				t.Fatalf("%s: re-marshal: %v", k, err)
			}
			if !bytes.Equal(enc, re) {
				t.Fatalf("%s: non-deterministic encoding: %x vs %x", k, enc, re)
			}
		}
	}
}

// TestEventCodecRejects pins the decoder's failure modes: version and
// kind validation, truncation at any prefix, and trailing garbage.
func TestEventCodecRejects(t *testing.T) {
	ev := fixtureEvent(rand.New(rand.NewSource(7)), KindAnomaly)
	enc, err := ev.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	bad := append([]byte(nil), enc...)
	bad[0] = 99
	var out Event
	if err := out.UnmarshalBinary(bad); err == nil {
		t.Error("unknown version accepted")
	}
	bad = append([]byte(nil), enc...)
	bad[1] = NumKinds + 3
	if err := out.UnmarshalBinary(bad); err == nil {
		t.Error("unknown kind accepted")
	}
	for cut := 0; cut < len(enc); cut++ {
		if err := out.UnmarshalBinary(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if err := out.UnmarshalBinary(append(append([]byte(nil), enc...), 0xff)); err == nil {
		t.Error("trailing garbage accepted")
	}
}
