package stream

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"sedspec/internal/obs"
	"sedspec/internal/obs/coverage"
)

// ServerOptions wires an introspection server's data sources. Zero
// fields select the process-wide defaults.
type ServerOptions struct {
	Registry *obs.Registry
	Hub      *Hub
	Health   *Health
	// FollowBuffer sizes the per-tail subscriber ring behind
	// /anomalies?follow=1 (default DefaultSubBuffer).
	FollowBuffer int
}

// Server is the unified introspection surface: health, fleet
// snapshots, Prometheus metrics, the live anomaly tail, coverage,
// expvar, and pprof — all on the server's own *http.ServeMux, so any
// number of servers (tests, two CLIs sharing a process) coexist
// without the default mux's duplicate-registration panic.
type Server struct {
	mux    *http.ServeMux
	ln     net.Listener
	srv    *http.Server
	reg    *obs.Registry
	hub    *Hub
	health *Health
	opts   ServerOptions
}

// expvarOnce guards the one process-global side effect: publishing the
// first server's registry under the "sedspec_obs" expvar name (expvar
// panics on duplicate publication). Later servers serve the same var.
var expvarOnce sync.Once

// NewServer builds the introspection handler without binding a
// listener (useful under httptest).
func NewServer(opts ServerOptions) *Server {
	if opts.Registry == nil {
		opts.Registry = obs.Default()
	}
	if opts.Hub == nil {
		opts.Hub = Default()
	}
	if opts.Health == nil {
		opts.Health = NewHealth(opts.Registry, opts.Hub, HealthOptions{})
	}
	if opts.FollowBuffer <= 0 {
		opts.FollowBuffer = DefaultSubBuffer
	}
	s := &Server{
		mux:    http.NewServeMux(),
		reg:    opts.Registry,
		hub:    opts.Hub,
		health: opts.Health,
		opts:   opts,
	}
	expvarOnce.Do(func() { expvar.Publish("sedspec_obs", s.reg) })
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/fleet", s.handleFleet)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/anomalies", s.handleAnomalies)
	s.mux.HandleFunc("/buildinfo", s.handleBuildInfo)
	s.mux.Handle("/coverage", coverage.Handler())
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Handle mounts an additional handler on the server's mux, so a
// control plane (the fleet daemon's tenant/session API) rides the same
// listener as the introspection surface. Patterns follow
// http.ServeMux semantics, including method and wildcard patterns.
// Mount before Start: the mux is not safe for concurrent registration
// once requests flow.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// HandleFunc is Handle for plain functions.
func (s *Server) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {
	s.mux.HandleFunc(pattern, h)
}

// Start binds addr (port 0 allowed) and serves the mux in the
// background. Use after NewServer + Handle when extra routes must be
// mounted before the listener opens; Serve composes the two for the
// introspection-only callers.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Serve binds addr (port 0 allowed) and serves the introspection
// surface in the background, returning the bound server.
func Serve(addr string, opts ServerOptions) (*Server, error) {
	s := NewServer(opts)
	if err := s.Start(addr); err != nil {
		return nil, err
	}
	return s, nil
}

// Addr returns the bound listen address ("" when built by NewServer).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Health returns the aggregator the server reads.
func (s *Server) Health() *Health { return s.health }

// Close stops the listener. In-flight follow streams end when their
// connections drop.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleHealthz answers liveness probes: 200 with a small JSON body,
// or 503 when the overhead watchdog marked the fleet degraded.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	snap := s.health.Snapshot()
	status := http.StatusOK
	state := "ok"
	if snap.Degraded {
		status = http.StatusServiceUnavailable
		state = "degraded"
	}
	writeJSON(w, status, struct {
		Status    string  `json:"status"`
		UptimeSec float64 `json:"uptime_sec"`
		Devices   int     `json:"devices"`
		Sessions  int     `json:"sessions"`
	}{state, snap.UptimeSec, len(snap.Devices), snap.Sessions})
}

// handleFleet serves the full fleet snapshot; ?tenant=NAME narrows the
// device rows (and the session count) to one control-plane tenant's
// engines. Registry-wide rows carry no tenant and are excluded from a
// filtered view.
func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	snap := s.health.Snapshot()
	if tenant := r.URL.Query().Get("tenant"); tenant != "" {
		filtered := make([]DeviceHealth, 0, len(snap.Devices))
		sessions := 0
		for _, d := range snap.Devices {
			if d.Tenant == tenant {
				filtered = append(filtered, d)
				sessions += d.Sessions
			}
		}
		snap.Devices = filtered
		snap.Sessions = sessions
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleBuildInfo(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, Build())
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = WriteExposition(w, s.health.Snapshot(), s.reg.Snapshot())
}

// handleAnomalies serves the event stream. Without follow=1 it returns
// a bounded NDJSON read of the hub's retained recent events (limit=N,
// default 64). With follow=1 it subscribes and streams live events as
// NDJSON — or SSE frames when sse=1 or the client accepts
// text/event-stream — until the client disconnects. A lagging tail's
// gaps surface as synthesized kind="drop" records carrying the exact
// number of events shed since the previous record.
func (s *Server) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	mask, err := ParseKinds(q.Get("kinds"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if q.Get("kinds") == "" {
		// The page is the anomaly tail by default; health ticks are opt-in
		// (kinds=health or an explicit list) to keep the stream quiet.
		mask &^= MaskOf(KindHealth)
	}

	sse := q.Get("sse") == "1" || r.Header.Get("Accept") == "text/event-stream"
	writeEvent := func(enc *json.Encoder, ev *Event) error {
		if sse {
			if _, err := fmt.Fprintf(w, "data: "); err != nil {
				return err
			}
		}
		if err := enc.Encode(ev); err != nil {
			return err
		}
		if sse {
			if _, err := fmt.Fprintf(w, "\n"); err != nil {
				return err
			}
		}
		return nil
	}

	if q.Get("follow") != "1" {
		limit := 64
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range s.hub.Recent(mask, limit) {
			if writeEvent(enc, &ev) != nil {
				return
			}
		}
		return
	}

	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush()
	}

	sub := s.hub.Subscribe(WithKinds(mask), WithBuffer(s.opts.FollowBuffer))
	defer sub.Close()
	enc := json.NewEncoder(w)
	done := r.Context().Done()
	var reported uint64
	for {
		ev, ok := sub.Recv(done)
		if !ok {
			return
		}
		if d := sub.Dropped(); d > reported {
			notice := Event{
				TimeNs:  ev.TimeNs,
				Kind:    KindDrop,
				Session: -1,
				Dropped: d - reported,
			}
			reported = d
			if writeEvent(enc, &notice) != nil {
				return
			}
		}
		if writeEvent(enc, &ev) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
