package stream

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestKindRoundTrip: every kind survives String -> KindByName and the
// JSON codec, so NDJSON consumers and ParseKinds agree on names.
func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		got, err := KindByName(k.String())
		if err != nil || got != k {
			t.Errorf("KindByName(%q) = %v, %v", k.String(), got, err)
		}
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Errorf("JSON round trip of %v: %v, %v", k, back, err)
		}
	}
	if _, err := KindByName("bogus"); err == nil {
		t.Error("KindByName accepted an unknown name")
	}
	var k Kind
	if err := k.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Error("UnmarshalJSON accepted an unknown name")
	}
}

func TestParseKinds(t *testing.T) {
	if m, err := ParseKinds(""); err != nil || m != MaskAll {
		t.Errorf("ParseKinds(\"\") = %v, %v, want MaskAll", m, err)
	}
	m, err := ParseKinds("anomaly, swap")
	if err != nil {
		t.Fatal(err)
	}
	if !m.Has(KindAnomaly) || !m.Has(KindSwap) || m.Has(KindAudit) {
		t.Errorf("ParseKinds selected wrong kinds: %b", m)
	}
	if _, err := ParseKinds("anomaly,nope"); err == nil {
		t.Error("ParseKinds accepted an unknown kind")
	}
	if m, err := ParseKinds(",,"); err != nil || m != MaskAll {
		t.Errorf("ParseKinds(\",,\") = %v, %v, want MaskAll", m, err)
	}
}

// TestPublishSubscribe: a keeping-up subscriber sees every event exactly
// once, in publication order, with 1-based contiguous sequence numbers.
func TestPublishSubscribe(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe()
	defer sub.Close()

	const n = 100
	for i := 0; i < n; i++ {
		h.Publish(Event{Kind: KindAudit, Device: "dev", Session: i})
	}
	if got := h.Seq(); got != n {
		t.Fatalf("hub seq = %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		ev, ok := sub.TryRecv()
		if !ok {
			t.Fatalf("event %d missing", i)
		}
		if ev.Seq != uint64(i+1) || ev.Session != i {
			t.Fatalf("event %d: seq %d session %d", i, ev.Seq, ev.Session)
		}
		if ev.TimeNs == 0 {
			t.Fatalf("event %d: wall time not stamped", i)
		}
	}
	if _, ok := sub.TryRecv(); ok {
		t.Error("extra event after the published stream")
	}
	if sub.Dropped() != 0 || sub.Enqueued() != n {
		t.Errorf("enqueued %d dropped %d, want %d/0", sub.Enqueued(), sub.Dropped(), n)
	}
}

// TestKindFilter: a masked subscription only receives matching kinds
// and its drop counter only counts matching events.
func TestKindFilter(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(WithKinds(MaskOf(KindSwap)))
	defer sub.Close()
	h.Publish(Event{Kind: KindAudit})
	h.Publish(Event{Kind: KindSwap, Swap: &SwapInfo{FromGen: 1, ToGen: 2}})
	h.Publish(Event{Kind: KindAttach})
	ev, ok := sub.TryRecv()
	if !ok || ev.Kind != KindSwap {
		t.Fatalf("got %+v, want the swap event", ev)
	}
	if _, ok := sub.TryRecv(); ok {
		t.Error("filtered kinds leaked through")
	}
	if sub.Enqueued() != 1 {
		t.Errorf("enqueued = %d, want 1", sub.Enqueued())
	}
}

// TestDropAccounting: a full ring drops (drop-newest) and counts
// exactly; published == enqueued + dropped for a quiesced hub.
func TestDropAccounting(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe(WithBuffer(4))
	defer sub.Close()
	const n = 10
	for i := 0; i < n; i++ {
		h.Publish(Event{Kind: KindAnomaly, Session: i})
	}
	if sub.Enqueued() != 4 || sub.Dropped() != n-4 {
		t.Fatalf("enqueued %d dropped %d, want 4/%d", sub.Enqueued(), sub.Dropped(), n-4)
	}
	if got := h.Published(KindAnomaly); got != sub.Enqueued()+sub.Dropped() {
		t.Errorf("published %d != enqueued+dropped %d", got, sub.Enqueued()+sub.Dropped())
	}
	// Drop-newest: the survivors are the oldest four.
	for i := 0; i < 4; i++ {
		ev, ok := sub.TryRecv()
		if !ok || ev.Session != i {
			t.Fatalf("survivor %d = %+v", i, ev)
		}
	}
	st := h.Stats()
	if st.TotalPublished != n || st.TotalDropped != n-4 {
		t.Errorf("stats %+v", st)
	}
	if st.Published["anomaly"] != n || st.Dropped["anomaly"] != n-4 {
		t.Errorf("per-kind stats %+v", st)
	}
	// Consuming frees ring space: the next publish is accepted again.
	h.Publish(Event{Kind: KindAnomaly, Session: 99})
	if ev, ok := sub.TryRecv(); !ok || ev.Session != 99 {
		t.Errorf("post-drain publish not delivered: %+v", ev)
	}
}

// TestRecent: the hub retains the last RecentCap events for bounded
// reads, oldest first, honoring mask and limit.
func TestRecent(t *testing.T) {
	h := NewHub()
	const n = RecentCap + 50
	for i := 0; i < n; i++ {
		k := KindAudit
		if i%2 == 0 {
			k = KindAnomaly
		}
		h.Publish(Event{Kind: k, Session: i})
	}
	all := h.Recent(MaskAll, 0)
	if len(all) != RecentCap {
		t.Fatalf("retained %d, want %d", len(all), RecentCap)
	}
	if all[0].Session != n-RecentCap || all[len(all)-1].Session != n-1 {
		t.Errorf("retained window [%d, %d], want [%d, %d]",
			all[0].Session, all[len(all)-1].Session, n-RecentCap, n-1)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq != all[i-1].Seq+1 {
			t.Fatalf("recent events not contiguous at %d", i)
		}
	}
	limited := h.Recent(MaskOf(KindAnomaly), 5)
	if len(limited) != 5 {
		t.Fatalf("limited read returned %d", len(limited))
	}
	for _, ev := range limited {
		if ev.Kind != KindAnomaly {
			t.Errorf("mask leaked kind %v", ev.Kind)
		}
	}
	if limited[4].Session != n-2 { // last even index
		t.Errorf("limit did not keep the newest matches: %+v", limited[4])
	}
}

// TestNilHub: a nil hub is a valid sink, so publish sites need no
// guards.
func TestNilHub(t *testing.T) {
	var h *Hub
	if got := h.Publish(Event{Kind: KindAnomaly}); got != 0 {
		t.Errorf("nil publish returned seq %d", got)
	}
	if st := h.Stats(); st.TotalPublished != 0 || st.Subscribers != 0 {
		t.Errorf("nil stats %+v", st)
	}
}

// TestCloseDrains: Close detaches from the hub but buffered events stay
// readable; Recv reports ok=false only once drained. Close is
// idempotent.
func TestCloseDrains(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe()
	h.Publish(Event{Kind: KindAudit, Session: 1})
	h.Publish(Event{Kind: KindAudit, Session: 2})
	sub.Close()
	sub.Close()
	if st := h.Stats(); st.Subscribers != 0 {
		t.Fatalf("subscriber still attached after Close: %+v", st)
	}
	// Publishes after Close neither deliver nor count drops.
	h.Publish(Event{Kind: KindAudit, Session: 3})
	for want := 1; want <= 2; want++ {
		ev, ok := sub.Recv(nil)
		if !ok || ev.Session != want {
			t.Fatalf("drain %d = %+v, %v", want, ev, ok)
		}
	}
	if _, ok := sub.Recv(nil); ok {
		t.Error("Recv delivered past the drained buffer")
	}
	if sub.Dropped() != 0 {
		t.Errorf("closed sub counted %d drops", sub.Dropped())
	}
}

// TestRecvDone: a done channel unblocks a waiting Recv.
func TestRecvDone(t *testing.T) {
	h := NewHub()
	sub := h.Subscribe()
	defer sub.Close()
	done := make(chan struct{})
	got := make(chan bool, 1)
	go func() {
		_, ok := sub.Recv(done)
		got <- ok
	}()
	close(done)
	if ok := <-got; ok {
		t.Error("Recv returned an event after done closed")
	}
}

// TestConcurrentExactlyOnce is the hub's core delivery property under
// contention: with P concurrent publishers, a keeping-up subscriber
// sees every event exactly once with strictly increasing sequence
// numbers, and the final sequence equals the total published.
func TestConcurrentExactlyOnce(t *testing.T) {
	h := NewHub()
	const pubs, each = 8, 500
	sub := h.Subscribe(WithBuffer(pubs * each))
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Publish(Event{Kind: Kind(i % int(NumKinds-1)), Session: p})
			}
		}(p)
	}

	seen := 0
	lastSeq := uint64(0)
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			ev, ok := sub.Recv(nil)
			if !ok {
				return
			}
			if ev.Seq <= lastSeq {
				t.Errorf("seq went backwards: %d after %d", ev.Seq, lastSeq)
				return
			}
			lastSeq = ev.Seq
			seen++
		}
	}()
	wg.Wait()
	sub.Close()
	<-recvDone

	if sub.Dropped() != 0 {
		t.Fatalf("keeping-up subscriber dropped %d", sub.Dropped())
	}
	if seen != pubs*each {
		t.Errorf("delivered %d events, want %d", seen, pubs*each)
	}
	if h.Seq() != pubs*each {
		t.Errorf("final seq %d, want %d", h.Seq(), pubs*each)
	}
}

// TestEventString spot-checks the pretty-printer `sedspec watch` uses.
func TestEventString(t *testing.T) {
	ev := Event{
		Seq: 7, Kind: KindAnomaly, Device: "fdc", Session: 2, SpecGen: 3,
		Anomaly: &AnomalyInfo{
			Strategy: "parameter-check", Severity: "critical",
			Detail: "bad write", Round: 41, Addr: 0x3f5, Write: true, Len: 1,
		},
	}
	s := ev.String()
	for _, want := range []string{"anomaly", "fdc", "s2", "gen3", "round 41", "wr", "0x3f5", "parameter-check", "bad write"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
	drop := Event{Seq: 9, Kind: KindDrop, Session: -1, Dropped: 12}
	if s := drop.String(); !strings.Contains(s, "12 events dropped") {
		t.Errorf("drop notice rendering: %s", s)
	}
	sw := Event{Seq: 3, Kind: KindSwap, Device: "fdc", Session: -1, Swap: &SwapInfo{FromGen: 1, ToGen: 2}}
	if s := sw.String(); !strings.Contains(s, "gen 1 -> 2") {
		t.Errorf("swap rendering: %s", s)
	}
}
