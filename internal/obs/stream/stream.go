// Package stream is the telemetry plane of the runtime-protection
// stack: a bounded, non-blocking broadcast hub the enforcement engines
// publish typed, sequence-numbered events into — blocked anomalies with
// their frozen forensic context, enhancement audits, spec hot-swaps and
// store publications, session attach/detach, periodic fleet health
// ticks — and that any number of subscribers consume through
// per-subscriber rings with exact drop accounting.
//
// The contract the checker's hot path depends on: Publish never blocks
// and never allocates. A publish is one mutex-protected pass that
// assigns the next global sequence number, stores the event into the
// hub's recent-events ring, and offers it to each subscriber's ring; a
// full ring drops the event for that subscriber (drop-newest) and
// counts the drop — publishers never wait for consumers. Because the
// sequence number is assigned under the same lock that fans out, every
// subscriber observes a strictly increasing subsequence of the global
// order: a subscriber that keeps up sees every matching event exactly
// once, in seq order, and one that falls behind can reconcile exactly
// how much it missed from its drop counter.
//
// The hub sits off the check hot path entirely: clean check rounds
// never touch it. Only the rare paths publish — anomalies, warnings,
// session lifecycle, swaps, and the health ticker.
package stream

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"sedspec/internal/obs"
)

// Kind classifies a telemetry event.
type Kind uint8

const (
	// KindAnomaly is a blocked anomaly, carrying the frozen
	// flight-recorder context when recording was enabled.
	KindAnomaly Kind = iota
	// KindAudit is a non-blocking warning raised in enhancement mode,
	// carrying the audit record the enhancement pipeline replays.
	KindAudit
	// KindSwap is a spec hot-swap applied to a shared engine.
	KindSwap
	// KindAttach is an enforcement session opening.
	KindAttach
	// KindDetach is an enforcement session closing, carrying its final
	// counters.
	KindDetach
	// KindSpec is a spec version published into a spec store.
	KindSpec
	// KindHealth is a periodic FleetSnapshot from the health aggregator.
	KindHealth
	// KindDrop is a synthesized gap notice: not published by engines,
	// emitted by tailing endpoints when a subscriber's drop counter
	// advances, so a live tail shows where its view has holes.
	KindDrop

	// NumKinds sizes per-kind counter arrays.
	NumKinds = 8
)

var kindNames = [NumKinds]string{
	"anomaly", "audit", "swap", "attach", "detach", "spec", "health", "drop",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its string name, so NDJSON consumers
// never see raw enum codes.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON parses a kind name back to its code.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	got, err := KindByName(s)
	if err != nil {
		return err
	}
	*k = got
	return nil
}

// KindByName resolves a kind name ("anomaly", "swap", ...).
func KindByName(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("stream: unknown event kind %q", name)
}

// KindMask selects a set of event kinds, one bit per Kind.
type KindMask uint16

// MaskAll selects every kind.
const MaskAll = KindMask(1<<NumKinds - 1)

// MaskOf builds a mask from kinds.
func MaskOf(kinds ...Kind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= 1 << k
	}
	return m
}

// Has reports whether the mask selects k.
func (m KindMask) Has(k Kind) bool { return m&(1<<k) != 0 }

// ParseKinds parses a comma-separated kind list ("anomaly,swap") into a
// mask. An empty string selects everything.
func ParseKinds(s string) (KindMask, error) {
	if s == "" {
		return MaskAll, nil
	}
	var m KindMask
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		k, err := KindByName(name)
		if err != nil {
			return 0, err
		}
		m |= 1 << k
	}
	if m == 0 {
		return MaskAll, nil
	}
	return m, nil
}

// AnomalyInfo is the payload of a KindAnomaly event: the blocked
// anomaly's classification plus the frozen flight-recorder context.
type AnomalyInfo struct {
	Strategy string              `json:"strategy"`
	Severity string              `json:"severity"`
	Detail   string              `json:"detail"`
	Round    uint64              `json:"round"`
	Addr     uint64              `json:"addr"`
	Write    bool                `json:"write"`
	Len      int                 `json:"len"`
	EdgeKind string              `json:"edge_kind,omitempty"`
	EdgeSel  uint64              `json:"edge_sel,omitempty"`
	Ctx      *obs.AnomalyContext `json:"ctx,omitempty"`
}

// AuditInfo is the payload of a KindAudit event: one non-blocking
// warning's replayable record.
type AuditInfo struct {
	Strategy string `json:"strategy"`
	Detail   string `json:"detail"`
	Round    uint64 `json:"round"`
	Addr     uint64 `json:"addr"`
	Write    bool   `json:"write"`
	Len      int    `json:"len"`
}

// SwapInfo is the payload of a KindSwap event.
type SwapInfo struct {
	FromGen uint64 `json:"from_gen"`
	ToGen   uint64 `json:"to_gen"`
}

// SpecInfo is the payload of a KindSpec event: a version published into
// a spec store.
type SpecInfo struct {
	Generation uint64 `json:"generation"`
	Parent     uint64 `json:"parent,omitempty"`
	CreatedBy  string `json:"created_by,omitempty"`
	Blob       string `json:"blob,omitempty"`
}

// SessionInfo is the payload of a KindDetach event: the session's final
// counters at close.
type SessionInfo struct {
	Rounds   uint64 `json:"rounds"`
	Blocked  uint64 `json:"blocked"`
	Warnings uint64 `json:"warnings"`
}

// Event is one telemetry record. Seq is the hub-wide publication number
// (1-based, strictly increasing in publish order); exactly one payload
// pointer is set, matching Kind. Session is -1 for engine-level events
// (swaps, spec publications, health ticks).
type Event struct {
	Seq    uint64 `json:"seq"`
	TimeNs int64  `json:"time_unix_ns"`
	Kind   Kind   `json:"kind"`
	// Tenant is the control-plane namespace the producing engine was
	// opened under (empty for single-tenant CLI runs).
	Tenant  string `json:"tenant,omitempty"`
	Device  string `json:"device,omitempty"`
	Session int    `json:"session"`
	SpecGen uint64 `json:"spec_gen,omitempty"`

	Anomaly *AnomalyInfo   `json:"anomaly,omitempty"`
	Audit   *AuditInfo     `json:"audit,omitempty"`
	Swap    *SwapInfo      `json:"swap,omitempty"`
	Detach  *SessionInfo   `json:"detach,omitempty"`
	Spec    *SpecInfo      `json:"spec,omitempty"`
	Health  *FleetSnapshot `json:"health,omitempty"`
	// Dropped is set on synthesized KindDrop notices: how many events
	// the tail's subscriber ring shed since the previous notice.
	Dropped uint64 `json:"dropped,omitempty"`
}

// String renders the event as one human-readable line (the format
// `sedspec watch` prints).
func (e *Event) String() string {
	ts := time.Unix(0, e.TimeNs).Format("15:04:05.000")
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8d %s %-7s", e.Seq, ts, e.Kind)
	if e.Tenant != "" {
		fmt.Fprintf(&sb, " %s:", e.Tenant)
	}
	if e.Device != "" {
		fmt.Fprintf(&sb, " %-8s", e.Device)
	}
	if e.Session >= 0 {
		fmt.Fprintf(&sb, " s%-3d", e.Session)
	}
	if e.SpecGen > 0 {
		fmt.Fprintf(&sb, " gen%-2d", e.SpecGen)
	}
	switch {
	case e.Anomaly != nil:
		a := e.Anomaly
		dir := "rd"
		if a.Write {
			dir = "wr"
		}
		fmt.Fprintf(&sb, " round %d %s %#x blocked %s (%s): %s",
			a.Round, dir, a.Addr, a.Strategy, a.Severity, a.Detail)
	case e.Audit != nil:
		a := e.Audit
		dir := "rd"
		if a.Write {
			dir = "wr"
		}
		fmt.Fprintf(&sb, " round %d %s %#x warned %s: %s",
			a.Round, dir, a.Addr, a.Strategy, a.Detail)
	case e.Swap != nil:
		fmt.Fprintf(&sb, " spec hot-swap gen %d -> %d", e.Swap.FromGen, e.Swap.ToGen)
	case e.Detach != nil:
		fmt.Fprintf(&sb, " closed: %d rounds, %d blocked, %d warnings",
			e.Detach.Rounds, e.Detach.Blocked, e.Detach.Warnings)
	case e.Spec != nil:
		fmt.Fprintf(&sb, " stored gen %d by %s", e.Spec.Generation, e.Spec.CreatedBy)
	case e.Health != nil:
		fmt.Fprintf(&sb, " fleet: %d devices, %d sessions", len(e.Health.Devices), e.Health.Sessions)
	case e.Kind == KindDrop:
		fmt.Fprintf(&sb, " tail fell behind: %d events dropped", e.Dropped)
	}
	return sb.String()
}

// RecentCap bounds the hub's recent-events ring, which backs bounded
// (non-follow) /anomalies reads and the journal's restart replay.
const RecentCap = 256

// DefaultSubBuffer is a subscriber ring's capacity unless WithBuffer
// overrides it.
const DefaultSubBuffer = 1024

// Hub is the broadcast fan-out point. The zero value is not usable;
// construct with NewHub. A nil *Hub is a valid sink that drops
// everything, so publish sites need no nil guards beyond the pointer
// test Publish itself performs.
type Hub struct {
	mu        sync.Mutex
	subs      []*Sub
	seq       uint64
	published [NumKinds]uint64
	dropped   [NumKinds]uint64
	// recent is an insertion-order ring of the last RecentCap events:
	// rpos is the next write slot, rcount the live entry count. The ring
	// is decoupled from seq so restored history (journal replay after a
	// restart, where persisted kinds may be a filtered subsequence) reads
	// back exactly as stored.
	recent [RecentCap]Event
	rpos   int
	rcount int
}

// NewHub returns an empty hub.
func NewHub() *Hub { return &Hub{} }

// defaultHub is the process-wide hub engines publish into unless
// redirected with checker.WithStream, mirroring obs.Default().
var defaultHub = NewHub()

// Default returns the process-wide hub.
func Default() *Hub { return defaultHub }

// Publish assigns the event the next sequence number, stamps its wall
// time if unset, and offers it to every matching subscriber. It never
// blocks and never allocates; subscribers that cannot accept the event
// drop it (counted per subscriber and per kind on the hub). Publish on
// a nil hub is a no-op returning 0.
func (h *Hub) Publish(ev Event) uint64 {
	if h == nil {
		return 0
	}
	if ev.TimeNs == 0 {
		ev.TimeNs = time.Now().UnixNano()
	}
	h.mu.Lock()
	h.seq++
	ev.Seq = h.seq
	h.published[ev.Kind%NumKinds]++
	h.retain(ev)
	for _, s := range h.subs {
		if !s.mask.Has(ev.Kind) {
			continue
		}
		if !s.push(ev) {
			h.dropped[ev.Kind%NumKinds]++
		}
	}
	h.mu.Unlock()
	return ev.Seq
}

// retain stores ev into the recent ring; called with the hub lock held.
func (h *Hub) retain(ev Event) {
	h.recent[h.rpos] = ev
	h.rpos = (h.rpos + 1) % RecentCap
	if h.rcount < RecentCap {
		h.rcount++
	}
}

// Restore seeds the hub with persisted history after a restart: the
// events enter the recent ring in order and the sequence counter
// resumes past the highest restored seq, so post-restart publications
// extend the pre-restart total order instead of re-issuing already
// journaled sequence numbers (a `watch` client's dedup cursor keeps
// working across the restart). Events whose seq is not beyond the
// hub's current counter are skipped — Restore only moves time forward.
// Call before any subscriber attaches; restored events are not fanned
// out (they are history, not news).
func (h *Hub) Restore(events []Event) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, ev := range events {
		if ev.Seq <= h.seq {
			continue
		}
		h.seq = ev.Seq
		h.retain(ev)
	}
}

// Published returns how many events of kind k the hub has accepted.
func (h *Hub) Published(k Kind) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.published[k%NumKinds]
}

// Seq returns the last assigned sequence number (0 before any publish).
func (h *Hub) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// Recent returns up to limit of the most recent retained events
// matching mask, oldest first. limit <= 0 means all retained.
func (h *Hub) Recent(mask KindMask, limit int) []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Event, 0, h.rcount)
	start := (h.rpos - h.rcount + RecentCap) % RecentCap
	for i := 0; i < h.rcount; i++ {
		ev := h.recent[(start+i)%RecentCap]
		if mask.Has(ev.Kind) {
			out = append(out, ev)
		}
	}
	if limit > 0 && len(out) > limit {
		out = out[len(out)-limit:]
	}
	return out
}

// HubStats is a point-in-time summary of hub traffic.
type HubStats struct {
	Subscribers    int               `json:"subscribers"`
	TotalPublished uint64            `json:"total_published"`
	TotalDropped   uint64            `json:"total_dropped"`
	Published      map[string]uint64 `json:"published,omitempty"`
	Dropped        map[string]uint64 `json:"dropped,omitempty"`
}

// Stats summarizes the hub's counters (nonzero kinds only in the maps).
func (h *Hub) Stats() HubStats {
	if h == nil {
		return HubStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HubStats{Subscribers: len(h.subs)}
	for k := 0; k < NumKinds; k++ {
		if n := h.published[k]; n != 0 {
			if st.Published == nil {
				st.Published = make(map[string]uint64)
			}
			st.Published[Kind(k).String()] = n
			st.TotalPublished += n
		}
		if n := h.dropped[k]; n != 0 {
			if st.Dropped == nil {
				st.Dropped = make(map[string]uint64)
			}
			st.Dropped[Kind(k).String()] = n
			st.TotalDropped += n
		}
	}
	return st
}

// SubOption configures a subscription.
type SubOption func(*Sub)

// WithBuffer sets the subscriber's ring capacity (default
// DefaultSubBuffer). The ring bounds how far the subscriber may lag
// before events drop.
func WithBuffer(n int) SubOption {
	return func(s *Sub) {
		if n > 0 {
			s.buf = make([]Event, n)
		}
	}
}

// WithKinds restricts the subscription to the masked kinds (default
// MaskAll).
func WithKinds(m KindMask) SubOption {
	return func(s *Sub) {
		if m != 0 {
			s.mask = m
		}
	}
}

// Subscribe attaches a new subscriber. The returned Sub must be
// consumed by a single goroutine and closed when done.
func (h *Hub) Subscribe(opts ...SubOption) *Sub {
	s := &Sub{hub: h, mask: MaskAll, notify: make(chan struct{}, 1)}
	for _, o := range opts {
		o(s)
	}
	if s.buf == nil {
		s.buf = make([]Event, DefaultSubBuffer)
	}
	h.mu.Lock()
	s.joinPub = h.published
	h.subs = append(h.subs, s)
	h.mu.Unlock()
	return s
}

// Sub is one subscriber's view of the hub: a bounded ring the hub
// pushes matching events into. One goroutine consumes it.
type Sub struct {
	hub  *Hub
	mask KindMask

	// joinPub and leavePub snapshot the hub's per-kind published
	// counters at Subscribe and Close, taken under the hub lock that
	// also serializes every publish — so the difference is exactly the
	// set of events the hub offered this subscriber while attached.
	joinPub  [NumKinds]uint64
	leavePub [NumKinds]uint64
	left     bool

	mu          sync.Mutex
	buf         []Event
	head, count int
	enqueued    uint64
	dropped     uint64
	enqByKind   [NumKinds]uint64
	dropByKind  [NumKinds]uint64
	closed      bool

	notify chan struct{}
}

// push offers one event; called with the hub lock held. Returns false
// when the ring was full and the event dropped.
func (s *Sub) push(ev Event) bool {
	s.mu.Lock()
	if s.closed || s.count == len(s.buf) {
		if !s.closed {
			s.dropped++
			s.dropByKind[ev.Kind%NumKinds]++
		}
		s.mu.Unlock()
		return s.closed // a closed sub neither accepts nor counts drops
	}
	s.buf[(s.head+s.count)%len(s.buf)] = ev
	s.count++
	s.enqueued++
	s.enqByKind[ev.Kind%NumKinds]++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
	return true
}

// Accounting returns, per kind, how many events the hub published
// during this subscription's attachment window (Subscribe to Close, or
// to now while still attached) alongside how many of those this
// subscriber enqueued and dropped. The delivery invariant holds exactly
// for every kind the subscription's mask selects:
//
//	published[k] == enqueued[k] + dropped[k]
//
// because the window edges and every publish serialize on the hub lock
// — there is no moment where an event is in the window but was offered
// to a half-attached subscriber.
func (s *Sub) Accounting() (published, enqueued, dropped [NumKinds]uint64) {
	h := s.hub
	var upper [NumKinds]uint64
	if h != nil {
		h.mu.Lock()
		if s.left {
			upper = s.leavePub
		} else {
			upper = h.published
		}
		h.mu.Unlock()
	}
	s.mu.Lock()
	enqueued = s.enqByKind
	dropped = s.dropByKind
	s.mu.Unlock()
	for k := 0; k < NumKinds; k++ {
		published[k] = upper[k] - s.joinPub[k]
	}
	return published, enqueued, dropped
}

// TryRecv pops the oldest buffered event without blocking.
func (s *Sub) TryRecv() (Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return Event{}, false
	}
	ev := s.buf[s.head]
	s.head = (s.head + 1) % len(s.buf)
	s.count--
	return ev, true
}

// Recv pops the oldest buffered event, waiting for one if the ring is
// empty. It returns ok=false when done closes or when the subscription
// is closed and fully drained — buffered events are always delivered
// before the close is reported.
func (s *Sub) Recv(done <-chan struct{}) (Event, bool) {
	for {
		if ev, ok := s.TryRecv(); ok {
			return ev, true
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, false
		}
		select {
		case <-s.notify:
		case <-done:
			return Event{}, false
		}
	}
}

// Enqueued returns how many events were accepted into the ring.
func (s *Sub) Enqueued() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.enqueued
}

// Dropped returns how many matching events were shed because the ring
// was full. The delivery invariant: for any quiesced hub,
// published(matching kinds) == enqueued + dropped.
func (s *Sub) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close detaches the subscriber from the hub. Buffered events remain
// readable through TryRecv/Recv; Recv reports ok=false once drained.
// Idempotent.
func (s *Sub) Close() {
	h := s.hub
	if h != nil {
		h.mu.Lock()
		for i, sub := range h.subs {
			if sub == s {
				h.subs = append(h.subs[:i], h.subs[i+1:]...)
				break
			}
		}
		if !s.left {
			s.left = true
			s.leavePub = h.published
		}
		h.mu.Unlock()
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}
