package stream

import (
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"sedspec/internal/obs"
)

// BuildInfo identifies the binary producing telemetry, resolved once
// from the runtime's embedded build information.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Version   string `json:"version,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
	Time      string `json:"vcs_time,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the process's build identity (module version, VCS
// revision, go version). Every FleetSnapshot carries it, so exported
// telemetry is attributable to the binary that produced it.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		buildInfo.Path = bi.Main.Path
		buildInfo.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.Time = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// GenCoverage is one spec generation's ES-CFG coverage rollup.
type GenCoverage struct {
	Generation    uint64 `json:"generation"`
	BlocksCovered int    `json:"blocks_covered"`
	TotalBlocks   int    `json:"total_blocks"`
	EdgesCovered  int    `json:"edges_covered"`
	TotalEdges    int    `json:"total_edges"`
}

// EngineStatus is what one enforcement engine contributes to a fleet
// snapshot beyond its metrics-registry row: session registry size,
// current generation, swap count, and live coverage. Produced by
// checker.Shared.EngineStatus; registered with Health.AddEngine.
type EngineStatus struct {
	Device string `json:"device"`
	// Tenant is the control-plane namespace the engine was opened under
	// (empty for single-tenant CLI engines). Tenant-owned engines get
	// their own fleet rows instead of merging into the registry's
	// process-wide device row.
	Tenant     string       `json:"tenant,omitempty"`
	Generation uint64       `json:"generation"`
	Sessions   int          `json:"sessions"`
	Swaps      uint64       `json:"swaps"`
	Rounds     uint64       `json:"rounds"`
	Blocked    uint64       `json:"blocked"`
	Warnings   uint64       `json:"warnings"`
	Coverage   *GenCoverage `json:"coverage,omitempty"`
}

// DeviceHealth is one device's folded view in a FleetSnapshot. A
// daemon-hosted engine contributes one row per (tenant, device) pair;
// single-tenant engines and serial checkers fold into the per-device
// registry row with Tenant empty.
type DeviceHealth struct {
	Device     string `json:"device"`
	Tenant     string `json:"tenant,omitempty"`
	Rounds     uint64 `json:"rounds"`
	Anomalies  uint64 `json:"anomalies"`
	Blocked    uint64 `json:"blocked"`
	Warned     uint64 `json:"warned"`
	Swaps      uint64 `json:"swaps,omitempty"`
	Sessions   int    `json:"sessions"`
	Generation uint64 `json:"generation,omitempty"`

	// RoundsPerSec is the checked-I/O rate observed between this
	// snapshot and the previous one (0 on the first).
	RoundsPerSec float64 `json:"rounds_per_sec"`

	// Latency (simclock ticks between checked I/Os) and steps quantiles,
	// interpolated from the log2 histogram buckets; see
	// obs.Hist.Quantile for the error bound.
	LatencyTicksP50 float64 `json:"latency_ticks_p50"`
	LatencyTicksP90 float64 `json:"latency_ticks_p90"`
	LatencyTicksP99 float64 `json:"latency_ticks_p99"`
	StepsP50        float64 `json:"steps_p50"`
	StepsP90        float64 `json:"steps_p90"`
	StepsP99        float64 `json:"steps_p99"`

	// NsPerOp is the enforcement-overhead watchdog's observation:
	// wall nanoseconds elapsed between snapshots divided by rounds
	// retired in that window. It is a throughput-derived upper bound on
	// per-check cost (dispatch and device work share the same wall
	// window); 0 when the window retired fewer than the watchdog's
	// minimum rounds. OverBudget flags NsPerOp exceeding the configured
	// budget.
	NsPerOp    float64 `json:"observed_ns_per_op"`
	OverBudget bool    `json:"over_budget"`

	Coverage *GenCoverage `json:"coverage,omitempty"`
}

// JournalStatus is the durable journal's contribution to a fleet
// snapshot: on-disk footprint, write progress, and the health of the
// write path itself (drops, torn-tail truncations, fsync latency).
// Defined here rather than in the journal package so the aggregator
// does not import its own consumer; the journal fills it via
// Health.SetJournal.
type JournalStatus struct {
	Dir         string  `json:"dir"`
	Segments    int     `json:"segments"`
	Bytes       int64   `json:"bytes"`
	Records     uint64  `json:"records"`
	LastSeq     uint64  `json:"last_seq,omitempty"`
	Dropped     uint64  `json:"dropped"`
	Truncations uint64  `json:"truncations"`
	Fsyncs      uint64  `json:"fsyncs"`
	FsyncP99Us  float64 `json:"fsync_p99_us"`
}

// FleetSnapshot is the health aggregator's periodic fold: per-device
// rollups with derived rates and quantiles, hub traffic, and the build
// identity of the producing binary.
type FleetSnapshot struct {
	TimeUnixNs    int64          `json:"time_unix_ns"`
	UptimeSec     float64        `json:"uptime_sec"`
	BudgetNsPerOp float64        `json:"budget_ns_per_op,omitempty"`
	Build         BuildInfo      `json:"build"`
	Stream        HubStats       `json:"stream"`
	Devices       []DeviceHealth `json:"devices"`
	// Sessions is the fleet-wide open session count (engine sources
	// only; serial checkers are visible through their device rows).
	Sessions int `json:"sessions"`
	// Degraded is set when any device trips the overhead watchdog.
	Degraded bool `json:"degraded"`
	// Journal reports the durable journal's state when one is attached
	// (Health.SetJournal); nil when the daemon runs without persistence.
	Journal *JournalStatus `json:"journal,omitempty"`
}

// Device returns the row for the named device (nil if absent).
func (f *FleetSnapshot) Device(name string) *DeviceHealth {
	for i := range f.Devices {
		if f.Devices[i].Device == name {
			return &f.Devices[i]
		}
	}
	return nil
}

// HealthOptions configures the aggregator.
type HealthOptions struct {
	// Interval is the Start ticker period (default 5s).
	Interval time.Duration
	// BudgetNsPerOp arms the enforcement-overhead watchdog: a device
	// whose observed ns/op exceeds it is flagged OverBudget and the
	// snapshot marked Degraded. 0 disables the watchdog.
	BudgetNsPerOp float64
	// WatchdogMinRounds is the minimum rounds a snapshot window must
	// retire before the watchdog computes ns/op for it, so idle windows
	// never false-positive (default 256).
	WatchdogMinRounds uint64
}

// devWindow is the watchdog's per-device memory of the previous fold.
type devWindow struct {
	rounds uint64
	at     time.Time
}

// engineSource is a registered engine poll with a removal handle.
type engineSource struct {
	id  uint64
	src func() EngineStatus
}

// BaselineRow is history folded back into the live fleet view: counts a
// device had accumulated before the current process started, rebuilt
// from the journal on boot. Snapshot adds baselines into the matching
// (tenant, device) rows so /fleet does not reset to zero on restart.
type BaselineRow struct {
	Tenant     string
	Device     string
	Rounds     uint64
	Blocked    uint64
	Warned     uint64
	Swaps      uint64
	Generation uint64
}

// Health periodically folds the metrics registry and registered engine
// sources into FleetSnapshots, publishing each as a KindHealth event.
type Health struct {
	reg  *obs.Registry
	hub  *Hub
	opts HealthOptions

	mu        sync.Mutex
	engines   []engineSource
	engineSeq uint64
	baselines []BaselineRow
	journal   func() JournalStatus
	prev      map[string]devWindow
	start     time.Time

	stopOnce sync.Once
	done     chan struct{}
	wg       sync.WaitGroup
}

// NewHealth builds an aggregator over a registry and hub (both may be
// the process defaults). Engines register with AddEngine.
func NewHealth(reg *obs.Registry, hub *Hub, opts HealthOptions) *Health {
	if reg == nil {
		reg = obs.Default()
	}
	if hub == nil {
		hub = Default()
	}
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	if opts.WatchdogMinRounds == 0 {
		opts.WatchdogMinRounds = 256
	}
	return &Health{
		reg:   reg,
		hub:   hub,
		opts:  opts,
		prev:  make(map[string]devWindow),
		start: time.Now(),
		done:  make(chan struct{}),
	}
}

// AddEngine registers a live engine source (typically
// Shared.EngineStatus bound as a method value) and returns a func that
// unregisters it. Sources are polled on every Snapshot; an engine that
// is being torn down (a daemon tenant deleted mid-flight) must be
// removed before its Shared is abandoned, or the aggregator stopped
// first via Stop. The remove func is idempotent.
func (h *Health) AddEngine(src func() EngineStatus) (remove func()) {
	h.mu.Lock()
	h.engineSeq++
	id := h.engineSeq
	h.engines = append(h.engines, engineSource{id: id, src: src})
	h.mu.Unlock()
	return func() {
		h.mu.Lock()
		for i, e := range h.engines {
			if e.id == id {
				h.engines = append(h.engines[:i], h.engines[i+1:]...)
				break
			}
		}
		h.mu.Unlock()
	}
}

// AddBaseline registers pre-restart history rows (rebuilt from the
// journal) to fold into every future Snapshot. Appends to any rows
// already registered.
func (h *Health) AddBaseline(rows []BaselineRow) {
	h.mu.Lock()
	h.baselines = append(h.baselines, rows...)
	h.mu.Unlock()
}

// SetJournal attaches the durable journal's status source; every
// Snapshot carries its result. A nil src detaches.
func (h *Health) SetJournal(src func() JournalStatus) {
	h.mu.Lock()
	h.journal = src
	h.mu.Unlock()
}

// Snapshot folds the current state into a FleetSnapshot. Safe to call
// from any goroutine while sessions run.
func (h *Health) Snapshot() *FleetSnapshot {
	now := time.Now()
	snap := h.reg.Snapshot()

	h.mu.Lock()
	srcs := append([]engineSource(nil), h.engines...)
	baselines := h.baselines
	journal := h.journal
	h.mu.Unlock()
	// Poll engines outside the aggregator lock: a source takes its own
	// engine's shard locks.
	statuses := make([]EngineStatus, 0, len(srcs))
	for _, s := range srcs {
		statuses = append(statuses, s.src())
	}

	out := &FleetSnapshot{
		TimeUnixNs:    now.UnixNano(),
		UptimeSec:     now.Sub(h.start).Seconds(),
		BudgetNsPerOp: h.opts.BudgetNsPerOp,
		Build:         Build(),
		Stream:        h.hub.Stats(),
	}

	byDev := make(map[string]*DeviceHealth, len(snap.Devices))
	for _, m := range snap.Devices {
		var blocked, warned uint64
		for s := 0; s < obs.NumStrategies; s++ {
			blocked += m.Outcomes[s][obs.VerdictBlocked]
			warned += m.Outcomes[s][obs.VerdictWarned]
		}
		d := &DeviceHealth{
			Device:          m.Device,
			Rounds:          m.Rounds,
			Anomalies:       m.Anomalies(),
			Blocked:         blocked,
			Warned:          warned,
			Swaps:           m.Swaps,
			LatencyTicksP50: m.Latency.Quantile(0.50),
			LatencyTicksP90: m.Latency.Quantile(0.90),
			LatencyTicksP99: m.Latency.Quantile(0.99),
			StepsP50:        m.Steps.Quantile(0.50),
			StepsP90:        m.Steps.Quantile(0.90),
			StepsP99:        m.Steps.Quantile(0.99),
		}
		byDev[m.Device] = d
	}
	for _, es := range statuses {
		// Tenant-owned engines get dedicated rows keyed tenant/device:
		// the process-wide metrics registry cannot split counters per
		// tenant, so the row is populated from the engine's own folded
		// aggregates instead of the registry fold.
		key := es.Device
		if es.Tenant != "" {
			key = es.Tenant + "/" + es.Device
		}
		d := byDev[key]
		if d == nil {
			d = &DeviceHealth{Device: es.Device, Tenant: es.Tenant}
			byDev[key] = d
		}
		d.Sessions += es.Sessions
		out.Sessions += es.Sessions
		if es.Generation > d.Generation {
			d.Generation = es.Generation
		}
		if es.Coverage != nil {
			d.Coverage = es.Coverage
		}
		if es.Tenant != "" {
			d.Rounds += es.Rounds
			d.Blocked += es.Blocked
			d.Warned += es.Warnings
			d.Anomalies += es.Blocked + es.Warnings
			d.Swaps += es.Swaps
		}
	}

	// Fold pre-restart baselines in before the rate window: the baseline
	// contribution is constant across snapshots, so deltas (and therefore
	// rounds/sec and the watchdog) are unaffected by it.
	for _, b := range baselines {
		key := b.Device
		if b.Tenant != "" {
			key = b.Tenant + "/" + b.Device
		}
		d := byDev[key]
		if d == nil {
			d = &DeviceHealth{Device: b.Device, Tenant: b.Tenant}
			byDev[key] = d
		}
		d.Rounds += b.Rounds
		d.Blocked += b.Blocked
		d.Warned += b.Warned
		d.Anomalies += b.Blocked + b.Warned
		d.Swaps += b.Swaps
		if b.Generation > d.Generation {
			d.Generation = b.Generation
		}
	}

	if journal != nil {
		st := journal()
		out.Journal = &st
	}

	h.mu.Lock()
	for key, d := range byDev {
		prev, seen := h.prev[key]
		h.prev[key] = devWindow{rounds: d.Rounds, at: now}
		if !seen || d.Rounds < prev.rounds {
			continue // first sight of the device, or a registry reset
		}
		delta := d.Rounds - prev.rounds
		elapsed := now.Sub(prev.at)
		if elapsed <= 0 {
			continue
		}
		d.RoundsPerSec = float64(delta) / elapsed.Seconds()
		if delta >= h.opts.WatchdogMinRounds {
			d.NsPerOp = float64(elapsed.Nanoseconds()) / float64(delta)
			if h.opts.BudgetNsPerOp > 0 && d.NsPerOp > h.opts.BudgetNsPerOp {
				d.OverBudget = true
				out.Degraded = true
			}
		}
	}
	h.mu.Unlock()

	out.Devices = make([]DeviceHealth, 0, len(byDev))
	for _, d := range byDev {
		out.Devices = append(out.Devices, *d)
	}
	sort.Slice(out.Devices, func(i, j int) bool {
		if out.Devices[i].Tenant != out.Devices[j].Tenant {
			return out.Devices[i].Tenant < out.Devices[j].Tenant
		}
		return out.Devices[i].Device < out.Devices[j].Device
	})
	return out
}

// Start launches the periodic fold: every Interval a snapshot is taken
// and published into the hub as a KindHealth event. Stop (or the
// returned func) ends it; Start after Stop is a no-op.
func (h *Health) Start() (stop func()) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		t := time.NewTicker(h.opts.Interval)
		defer t.Stop()
		for {
			select {
			case <-h.done:
				return
			case <-t.C:
				h.hub.Publish(Event{
					Kind:    KindHealth,
					Session: -1,
					Health:  h.Snapshot(),
				})
			}
		}
	}()
	return h.Stop
}

// Stop ends the periodic fold and waits for the ticker goroutine.
// Idempotent; Snapshot remains usable afterwards.
func (h *Health) Stop() {
	h.stopOnce.Do(func() { close(h.done) })
	h.wg.Wait()
}
