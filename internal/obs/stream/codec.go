package stream

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
)

// The binary event codec is the journal's wire form and the canonical
// serialization shared by every durable consumer: a compact varint
// envelope for the fields every event carries (seq, time, kind, tenant,
// device, session, spec generation, drop count) followed by the
// kind-specific payload encoded as JSON. The envelope keeps filtering
// cheap — a reader resolves kind/tenant/device/seq without touching the
// payload — while the JSON body keeps the rare, structurally rich
// payloads (frozen AnomalyContext timelines, FleetSnapshot rollups)
// schema-stable across versions without a hand-rolled struct codec.
//
// The encoding is deterministic: the same Event always produces the
// same bytes (Go's encoding/json is deterministic over struct fields),
// so journal records are content-comparable and the round-trip property
// test can assert byte-identical re-encoding.

// codecVersion is the first byte of every encoded event. Decoders
// reject versions they do not know rather than misparsing.
const codecVersion = 1

// MarshalBinary encodes the event in the deterministic binary+JSON
// form. Exactly the payload matching Kind is encoded; payload pointers
// that do not match the kind are ignored (the Event contract sets at
// most one, matching Kind).
func (e *Event) MarshalBinary() ([]byte, error) {
	payload, err := e.payloadJSON()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 40+len(e.Tenant)+len(e.Device)+len(payload))
	buf = append(buf, codecVersion, byte(e.Kind))
	buf = binary.AppendUvarint(buf, e.Seq)
	buf = binary.AppendVarint(buf, e.TimeNs)
	buf = binary.AppendVarint(buf, int64(e.Session))
	buf = binary.AppendUvarint(buf, e.SpecGen)
	buf = binary.AppendUvarint(buf, e.Dropped)
	buf = appendString(buf, e.Tenant)
	buf = appendString(buf, e.Device)
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return buf, nil
}

// payloadJSON renders the kind-matching payload as JSON (nil when the
// kind carries none or the pointer is unset).
func (e *Event) payloadJSON() ([]byte, error) {
	var v any
	switch e.Kind {
	case KindAnomaly:
		if e.Anomaly != nil {
			v = e.Anomaly
		}
	case KindAudit:
		if e.Audit != nil {
			v = e.Audit
		}
	case KindSwap:
		if e.Swap != nil {
			v = e.Swap
		}
	case KindDetach:
		if e.Detach != nil {
			v = e.Detach
		}
	case KindSpec:
		if e.Spec != nil {
			v = e.Spec
		}
	case KindHealth:
		if e.Health != nil {
			v = e.Health
		}
	}
	if v == nil {
		return nil, nil
	}
	return json.Marshal(v)
}

// UnmarshalBinary decodes an event encoded by MarshalBinary. The
// receiver is fully overwritten.
func (e *Event) UnmarshalBinary(data []byte) error {
	d := codecReader{buf: data}
	ver := d.byte()
	if d.err == nil && ver != codecVersion {
		return fmt.Errorf("stream: unknown event codec version %d", ver)
	}
	kind := Kind(d.byte())
	if d.err == nil && int(kind) >= NumKinds {
		return fmt.Errorf("stream: unknown event kind code %d", kind)
	}
	*e = Event{Kind: kind}
	e.Seq = d.uvarint()
	e.TimeNs = d.varint()
	sess := d.varint()
	e.SpecGen = d.uvarint()
	e.Dropped = d.uvarint()
	e.Tenant = d.string()
	e.Device = d.string()
	payload := d.bytes()
	if d.err != nil {
		return fmt.Errorf("stream: decode event: %w", d.err)
	}
	if len(d.buf) != d.off {
		return fmt.Errorf("stream: decode event: %d trailing bytes", len(d.buf)-d.off)
	}
	if sess < math.MinInt32 || sess > math.MaxInt32 {
		return fmt.Errorf("stream: decode event: session %d out of range", sess)
	}
	e.Session = int(sess)
	if len(payload) == 0 {
		return nil
	}
	var into any
	switch kind {
	case KindAnomaly:
		e.Anomaly = &AnomalyInfo{}
		into = e.Anomaly
	case KindAudit:
		e.Audit = &AuditInfo{}
		into = e.Audit
	case KindSwap:
		e.Swap = &SwapInfo{}
		into = e.Swap
	case KindDetach:
		e.Detach = &SessionInfo{}
		into = e.Detach
	case KindSpec:
		e.Spec = &SpecInfo{}
		into = e.Spec
	case KindHealth:
		e.Health = &FleetSnapshot{}
		into = e.Health
	default:
		return fmt.Errorf("stream: decode event: kind %s carries no payload, got %d bytes", kind, len(payload))
	}
	if err := json.Unmarshal(payload, into); err != nil {
		return fmt.Errorf("stream: decode %s payload: %w", kind, err)
	}
	return nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// codecReader is a cursor over an encoded event with sticky error
// handling, so the decode body reads linearly.
type codecReader struct {
	buf []byte
	off int
	err error
}

func (d *codecReader) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated %s at offset %d", what, d.off)
	}
}

func (d *codecReader) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *codecReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *codecReader) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.off += n
	return v
}

func (d *codecReader) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("bytes")
		return nil
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *codecReader) string() string { return string(d.bytes()) }
