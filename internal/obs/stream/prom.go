package stream

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"

	"sedspec/internal/obs"
)

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double-quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promWriter accumulates one exposition document, emitting each
// family's HELP/TYPE header once.
type promWriter struct {
	w   *bufio.Writer
	err error
}

func (p *promWriter) family(name, help, typ string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name string, labels [][2]string, v float64) {
	if p.err != nil {
		return
	}
	var sb strings.Builder
	sb.WriteString(name)
	if len(labels) > 0 {
		sb.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `%s="%s"`, l[0], escapeLabel(l[1]))
		}
		sb.WriteByte('}')
	}
	var val string
	switch {
	case math.IsInf(v, 1):
		val = "+Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		val = strconv.FormatFloat(v, 'f', -1, 64)
	default:
		val = strconv.FormatFloat(v, 'g', -1, 64)
	}
	_, p.err = fmt.Fprintf(p.w, "%s %s\n", sb.String(), val)
}

// histogram emits a Hist as a cumulative Prometheus histogram. Bucket
// i's upper bound is 2^i (every value in the bucket is strictly below
// it), the top bucket maps to +Inf, and the _sum is estimated from
// bucket midpoints — a documented approximation inherent to log2
// bucketing, consistent with the factor-<2 quantile bound.
func (p *promWriter) histogram(name string, labels [][2]string, h *obs.Hist) {
	var cum uint64
	var sum float64
	lbls := func(le string) [][2]string {
		out := make([][2]string, len(labels), len(labels)+1)
		copy(out, labels)
		return append(out, [2]string{"le", le})
	}
	for i, b := range h.Buckets {
		cum += b
		switch {
		case i == 0:
		case i == 1:
			sum += float64(b)
		default:
			sum += float64(b) * 1.5 * float64(uint64(1)<<(i-1))
		}
		if i == obs.NumBuckets-1 {
			p.sample(name+"_bucket", lbls("+Inf"), float64(cum))
		} else {
			p.sample(name+"_bucket", lbls(strconv.FormatUint(uint64(1)<<i, 10)), float64(cum))
		}
	}
	p.sample(name+"_sum", labels, sum)
	p.sample(name+"_count", labels, float64(cum))
}

// WriteExposition renders the fleet snapshot and metrics registry
// snapshot as a Prometheus text-format (version 0.0.4) document.
func WriteExposition(w io.Writer, fleet *FleetSnapshot, snap obs.Snapshot) error {
	p := &promWriter{w: bufio.NewWriter(w)}

	b := fleet.Build
	p.family("sedspec_build_info", "Build identity of the reporting binary (value is always 1).", "gauge")
	p.sample("sedspec_build_info", [][2]string{
		{"go_version", b.GoVersion},
		{"version", b.Version},
		{"revision", b.Revision},
	}, 1)

	p.family("sedspec_uptime_seconds", "Seconds since the health aggregator started.", "gauge")
	p.sample("sedspec_uptime_seconds", nil, fleet.UptimeSec)

	p.family("sedspec_rounds_total", "Checked I/O rounds per device.", "counter")
	for _, m := range snap.Devices {
		p.sample("sedspec_rounds_total", [][2]string{{"device", m.Device}}, float64(m.Rounds))
	}

	p.family("sedspec_anomalies_total", "Anomalous rounds per device, strategy, and verdict.", "counter")
	for _, m := range snap.Devices {
		for s := 1; s < obs.NumStrategies; s++ {
			for v := 0; v < obs.NumVerdicts; v++ {
				if n := m.Outcomes[s][v]; n != 0 {
					p.sample("sedspec_anomalies_total", [][2]string{
						{"device", m.Device},
						{"strategy", obs.StrategyName(uint8(s))},
						{"verdict", obs.Verdict(v).String()},
					}, float64(n))
				}
			}
		}
	}

	p.family("sedspec_swaps_total", "Spec hot-swaps applied per device.", "counter")
	for _, m := range snap.Devices {
		if m.Swaps != 0 {
			p.sample("sedspec_swaps_total", [][2]string{{"device", m.Device}}, float64(m.Swaps))
		}
	}

	p.family("sedspec_sessions", "Open enforcement sessions per device.", "gauge")
	p.family("sedspec_generation", "Current spec generation per device.", "gauge")
	p.family("sedspec_rounds_per_second", "Checked I/O rate per device over the last health window.", "gauge")
	p.family("sedspec_check_ns_per_op", "Watchdog-observed wall nanoseconds per checked I/O (throughput-derived upper bound; 0 when the window was too quiet).", "gauge")
	p.family("sedspec_check_over_budget", "1 when the device's observed ns/op exceeds the configured budget.", "gauge")
	// Fleet-row labels: tenant-owned rows get a tenant label so the
	// same device hosted by two tenants never collides on a label set.
	fleetLabels := func(d *DeviceHealth) [][2]string {
		lbl := [][2]string{{"device", d.Device}}
		if d.Tenant != "" {
			lbl = append(lbl, [2]string{"tenant", d.Tenant})
		}
		return lbl
	}
	for i := range fleet.Devices {
		d := fleet.Devices[i]
		lbl := fleetLabels(&d)
		p.sample("sedspec_sessions", lbl, float64(d.Sessions))
		p.sample("sedspec_generation", lbl, float64(d.Generation))
		p.sample("sedspec_rounds_per_second", lbl, d.RoundsPerSec)
		p.sample("sedspec_check_ns_per_op", lbl, d.NsPerOp)
		over := 0.0
		if d.OverBudget {
			over = 1
		}
		p.sample("sedspec_check_over_budget", lbl, over)
	}

	p.family("sedspec_coverage_blocks_covered", "ES-CFG blocks covered at runtime, current generation.", "gauge")
	p.family("sedspec_coverage_blocks_total", "ES-CFG blocks in the current sealed spec.", "gauge")
	p.family("sedspec_coverage_edges_covered", "ES-CFG edges covered at runtime, current generation.", "gauge")
	p.family("sedspec_coverage_edges_total", "ES-CFG edges in the current sealed spec.", "gauge")
	for i := range fleet.Devices {
		d := fleet.Devices[i]
		if d.Coverage == nil {
			continue
		}
		lbl := fleetLabels(&d)
		p.sample("sedspec_coverage_blocks_covered", lbl, float64(d.Coverage.BlocksCovered))
		p.sample("sedspec_coverage_blocks_total", lbl, float64(d.Coverage.TotalBlocks))
		p.sample("sedspec_coverage_edges_covered", lbl, float64(d.Coverage.EdgesCovered))
		p.sample("sedspec_coverage_edges_total", lbl, float64(d.Coverage.TotalEdges))
	}

	p.family("sedspec_latency_ticks", "Virtual-time gap between consecutive checked I/Os, simclock ticks (log2 buckets; _sum estimated from bucket midpoints).", "histogram")
	for i := range snap.Devices {
		m := &snap.Devices[i]
		p.histogram("sedspec_latency_ticks", [][2]string{{"device", m.Device}}, &m.Latency)
	}
	p.family("sedspec_steps", "Simulation steps per checked round (log2 buckets; _sum estimated from bucket midpoints).", "histogram")
	for i := range snap.Devices {
		m := &snap.Devices[i]
		p.histogram("sedspec_steps", [][2]string{{"device", m.Device}}, &m.Steps)
	}

	p.family("sedspec_stream_published_total", "Telemetry events published into the hub, by kind.", "counter")
	p.family("sedspec_stream_dropped_total", "Telemetry events dropped by lagging subscribers, by kind.", "counter")
	for k := 0; k < NumKinds; k++ {
		name := Kind(k).String()
		if n := fleet.Stream.Published[name]; n != 0 {
			p.sample("sedspec_stream_published_total", [][2]string{{"kind", name}}, float64(n))
		}
		if n := fleet.Stream.Dropped[name]; n != 0 {
			p.sample("sedspec_stream_dropped_total", [][2]string{{"kind", name}}, float64(n))
		}
	}
	p.family("sedspec_stream_subscribers", "Live hub subscribers.", "gauge")
	p.sample("sedspec_stream_subscribers", nil, float64(fleet.Stream.Subscribers))

	if j := fleet.Journal; j != nil {
		p.family("sedspec_journal_segments", "On-disk journal segment files.", "gauge")
		p.sample("sedspec_journal_segments", nil, float64(j.Segments))
		p.family("sedspec_journal_bytes", "Total journal bytes on disk.", "gauge")
		p.sample("sedspec_journal_bytes", nil, float64(j.Bytes))
		p.family("sedspec_journal_records_total", "Records retained in the journal.", "counter")
		p.sample("sedspec_journal_records_total", nil, float64(j.Records))
		p.family("sedspec_journal_dropped_total", "Events shed by the journal's hub subscription before reaching disk.", "counter")
		p.sample("sedspec_journal_dropped_total", nil, float64(j.Dropped))
		p.family("sedspec_journal_truncations_total", "Torn-tail truncations repaired at journal open.", "counter")
		p.sample("sedspec_journal_truncations_total", nil, float64(j.Truncations))
		p.family("sedspec_journal_fsyncs_total", "Journal fsync calls.", "counter")
		p.sample("sedspec_journal_fsyncs_total", nil, float64(j.Fsyncs))
		p.family("sedspec_journal_fsync_p99_microseconds", "p99 journal fsync latency, interpolated from log2 buckets.", "gauge")
		p.sample("sedspec_journal_fsync_p99_microseconds", nil, j.FsyncP99Us)
		p.family("sedspec_journal_last_seq", "Highest hub sequence number persisted.", "gauge")
		p.sample("sedspec_journal_last_seq", nil, float64(j.LastSeq))
	}

	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}

var (
	promHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(
		`^([a-zA-Z_:][a-zA-Z0-9_:]*)` + // metric name
			`(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?` + // labels
			` (NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)` + // value
			`( [+-]?[0-9]+)?$`) // optional timestamp
)

// baseFamily strips the histogram/summary series suffixes so a sample
// maps back to its declared family.
func baseFamily(name string, typed map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if t := typed[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// ValidateExposition checks a document against the Prometheus text
// exposition-format grammar (version 0.0.4): line shapes, label
// syntax, at most one TYPE per family declared before its samples,
// histogram series carrying le labels with a +Inf bucket whose
// cumulative count equals _count. It returns the first violation.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	typed := make(map[string]string) // family -> declared type
	sampled := make(map[string]bool) // family -> sample seen
	infCount := make(map[string]float64)
	cntCount := make(map[string]float64)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := promTypeRe.FindStringSubmatch(line); m != nil {
				name := m[1]
				if _, dup := typed[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				if sampled[name] {
					return fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
				}
				typed[name] = m[2]
				continue
			}
			if promHelpRe.MatchString(line) || strings.HasPrefix(line, "# ") {
				continue
			}
			return fmt.Errorf("line %d: malformed comment line %q", lineNo, line)
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample line %q", lineNo, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		fam := baseFamily(name, typed)
		sampled[fam] = true
		if typed[fam] == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if !strings.Contains(labels, `le="`) {
					return fmt.Errorf("line %d: histogram bucket %s missing le label", lineNo, name)
				}
				if strings.Contains(labels, `le="+Inf"`) {
					v, err := strconv.ParseFloat(valStr, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad +Inf bucket value: %v", lineNo, err)
					}
					infCount[fam] += v
				}
			case strings.HasSuffix(name, "_count"):
				v, err := strconv.ParseFloat(valStr, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad _count value: %v", lineNo, err)
				}
				cntCount[fam] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for fam, t := range typed {
		if t != "histogram" || !sampled[fam] {
			continue
		}
		inf, cnt := infCount[fam], cntCount[fam]
		if inf != cnt {
			return fmt.Errorf("histogram %s: +Inf bucket total %v != _count total %v", fam, inf, cnt)
		}
	}
	return nil
}
