package stream

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"sedspec/internal/obs"
)

// exposition renders a populated registry + fleet snapshot.
func exposition(t *testing.T) string {
	t.Helper()
	reg := obs.NewRegistry()
	feed(reg, "fdc", 300)
	hub := NewHub()
	sub := hub.Subscribe(WithBuffer(2))
	defer sub.Close()
	for i := 0; i < 5; i++ {
		hub.Publish(Event{Kind: KindAnomaly, Device: "fdc"})
	}
	h := NewHealth(reg, hub, HealthOptions{BudgetNsPerOp: 1000})
	h.AddEngine(func() EngineStatus {
		return EngineStatus{
			Device: "fdc", Generation: 2, Sessions: 1, Swaps: 1,
			Coverage: &GenCoverage{Generation: 2, BlocksCovered: 4, TotalBlocks: 8, EdgesCovered: 2, TotalEdges: 6},
		}
	})
	var buf bytes.Buffer
	if err := WriteExposition(&buf, h.Snapshot(), reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestExpositionValidates: the document WriteExposition produces passes
// its own grammar checker and carries the expected families.
func TestExpositionValidates(t *testing.T) {
	doc := exposition(t)
	if err := ValidateExposition(strings.NewReader(doc)); err != nil {
		t.Fatalf("self-validation failed: %v\n%s", err, doc)
	}
	for _, want := range []string{
		"# TYPE sedspec_build_info gauge",
		"# TYPE sedspec_rounds_total counter",
		`sedspec_rounds_total{device="fdc"} 302`,
		`sedspec_anomalies_total{device="fdc",strategy="parameter-check",verdict="blocked"} 1`,
		"# TYPE sedspec_latency_ticks histogram",
		`sedspec_latency_ticks_bucket{device="fdc",le="+Inf"}`,
		`sedspec_coverage_blocks_covered{device="fdc"} 4`,
		`sedspec_stream_published_total{kind="anomaly"} 5`,
		`sedspec_stream_dropped_total{kind="anomaly"} 3`,
		"sedspec_stream_subscribers 1",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestExpositionLabelEscaping: label values with quotes, backslashes,
// and newlines stay inside the grammar.
func TestExpositionLabelEscaping(t *testing.T) {
	var buf bytes.Buffer
	p := &promWriter{w: bufio.NewWriter(&buf)}
	p.family("x_total", "test", "counter")
	p.sample("x_total", [][2]string{{"device", "a\"b\\c\nd"}}, 1)
	if p.err != nil {
		t.Fatal(p.err)
	}
	if err := p.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(&buf); err != nil {
		t.Fatalf("escaped labels rejected: %v", err)
	}
}

// TestValidateExpositionRejects: each grammar violation is caught.
func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"malformed sample": "foo{bad} 1\n",
		"duplicate TYPE":   "# TYPE a counter\n# TYPE a counter\na 1\n",
		"TYPE after samples": "# TYPE a counter\na 1\n" +
			"b 1\n# TYPE b counter\n",
		"bucket missing le": "# TYPE h histogram\nh_bucket 1\nh_count 1\nh_sum 1\n",
		"inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\nh_count 4\nh_sum 9\n",
		"bad value":   "a one\n",
		"bad comment": "#TYPE a counter\n",
	}
	for name, doc := range cases {
		if err := ValidateExposition(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted\n%s", name, doc)
		}
	}
	good := "# HELP a help text\n# TYPE a counter\n" +
		`a{x="y"} 1.5e3 1700000000` + "\n" +
		"# TYPE h histogram\n" +
		`h_bucket{le="1"} 2` + "\n" +
		`h_bucket{le="+Inf"} 3` + "\n" +
		"h_sum 4.5\nh_count 3\n"
	if err := ValidateExposition(strings.NewReader(good)); err != nil {
		t.Errorf("valid document rejected: %v", err)
	}
}
