package stream

import (
	"testing"
	"time"

	"sedspec/internal/obs"
)

// feed records n rounds into a fresh recorder on reg, with fixed
// latency/steps so the quantile assertions are deterministic, plus one
// blocked and one warned anomaly.
func feed(reg *obs.Registry, device string, n int) {
	r := reg.NewRecorder(device, 0, 0)
	for i := 0; i < n; i++ {
		r.Record(obs.Event{Tick: int64(i) * 10, Steps: 16, Verdict: obs.VerdictOK})
	}
	r.Record(obs.Event{Tick: int64(n) * 10, Steps: 16, Strategy: 1, Verdict: obs.VerdictBlocked})
	r.Record(obs.Event{Tick: int64(n)*10 + 10, Steps: 16, Strategy: 2, Verdict: obs.VerdictWarned})
}

// TestHealthSnapshotFolds: a snapshot folds registry rows into device
// rollups with blocked/warned split out, quantiles from the histograms,
// and engine-source sessions/generation/coverage merged in.
func TestHealthSnapshotFolds(t *testing.T) {
	reg := obs.NewRegistry()
	feed(reg, "fdc", 500)
	hub := NewHub()
	h := NewHealth(reg, hub, HealthOptions{})
	h.AddEngine(func() EngineStatus {
		return EngineStatus{
			Device:     "fdc",
			Generation: 3,
			Sessions:   2,
			Swaps:      2,
			Coverage:   &GenCoverage{Generation: 3, BlocksCovered: 10, TotalBlocks: 20, EdgesCovered: 5, TotalEdges: 9},
		}
	})
	h.AddEngine(func() EngineStatus {
		return EngineStatus{Device: "ehci", Sessions: 1, Generation: 1}
	})

	snap := h.Snapshot()
	if len(snap.Devices) != 2 {
		t.Fatalf("devices = %d, want 2 (fdc + engine-only ehci)", len(snap.Devices))
	}
	if snap.Sessions != 3 {
		t.Errorf("fleet sessions = %d, want 3", snap.Sessions)
	}
	if snap.Build.GoVersion == "" {
		t.Error("snapshot missing build identity")
	}

	d := snap.Device("fdc")
	if d == nil {
		t.Fatal("no fdc row")
	}
	if d.Rounds != 502 || d.Anomalies != 2 || d.Blocked != 1 || d.Warned != 1 {
		t.Errorf("rollup %+v", d)
	}
	if d.Sessions != 2 || d.Generation != 3 {
		t.Errorf("engine merge: sessions %d gen %d", d.Sessions, d.Generation)
	}
	if d.Coverage == nil || d.Coverage.BlocksCovered != 10 {
		t.Errorf("coverage not merged: %+v", d.Coverage)
	}
	// Steps were constant 16, bucket [16,32): the quantile estimate must
	// land inside the bucket — the documented factor-<2 bound.
	if d.StepsP50 < 16 || d.StepsP50 >= 32 || d.StepsP99 < 16 || d.StepsP99 >= 32 {
		t.Errorf("steps quantiles p50=%v p99=%v outside [16,32)", d.StepsP50, d.StepsP99)
	}
	if snap.Device("ehci") == nil {
		t.Error("engine-only device missing from fleet")
	}
	if snap.Degraded {
		t.Error("degraded without a budget")
	}
}

// TestHealthWatchdog: a window that retires enough rounds gets an
// observed ns/op, and a tiny budget trips OverBudget -> Degraded. Idle
// windows (below WatchdogMinRounds) never false-positive.
func TestHealthWatchdog(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewHealth(reg, NewHub(), HealthOptions{
		BudgetNsPerOp:     0.001, // any real window exceeds this
		WatchdogMinRounds: 256,
	})

	feed(reg, "fdc", 100)
	first := h.Snapshot()
	if d := first.Device("fdc"); d.NsPerOp != 0 || d.OverBudget {
		t.Errorf("first sight computed a window: %+v", d)
	}

	// Below-threshold window: 100 more rounds < 256.
	feed(reg, "fdc", 98) // 98+2 anomalies = 100 rounds
	quiet := h.Snapshot()
	if d := quiet.Device("fdc"); d.NsPerOp != 0 || d.OverBudget {
		t.Errorf("quiet window tripped the watchdog: %+v", d)
	}
	if quiet.Degraded {
		t.Error("quiet window degraded the fleet")
	}

	// Busy window: 500 rounds >= 256 with nonzero elapsed wall time.
	feed(reg, "fdc", 498)
	time.Sleep(2 * time.Millisecond)
	busy := h.Snapshot()
	d := busy.Device("fdc")
	if d.NsPerOp <= 0 {
		t.Fatalf("busy window has no ns/op observation: %+v", d)
	}
	if d.RoundsPerSec <= 0 {
		t.Errorf("busy window has no rate: %+v", d)
	}
	if !d.OverBudget || !busy.Degraded {
		t.Errorf("watchdog did not trip on budget %v vs observed %v", busy.BudgetNsPerOp, d.NsPerOp)
	}
}

// TestHealthTicker: Start publishes KindHealth events into the hub
// until stopped; Stop is idempotent.
func TestHealthTicker(t *testing.T) {
	reg := obs.NewRegistry()
	feed(reg, "fdc", 10)
	hub := NewHub()
	sub := hub.Subscribe(WithKinds(MaskOf(KindHealth)))
	defer sub.Close()

	h := NewHealth(reg, hub, HealthOptions{Interval: 2 * time.Millisecond})
	stop := h.Start()
	timeout := time.After(5 * time.Second)
	donech := make(chan struct{})
	var ev Event
	var ok bool
	go func() { ev, ok = sub.Recv(nil); close(donech) }()
	select {
	case <-donech:
	case <-timeout:
		t.Fatal("no health tick within 5s")
	}
	stop()
	h.Stop()
	if !ok || ev.Kind != KindHealth || ev.Health == nil {
		t.Fatalf("tick = %+v, %v", ev, ok)
	}
	if ev.Session != -1 {
		t.Errorf("health tick session = %d, want -1", ev.Session)
	}
	if ev.Health.Device("fdc") == nil {
		t.Error("tick snapshot missing the device")
	}
	if hub.Published(KindHealth) == 0 {
		t.Error("hub counted no health publications")
	}
}

// TestBuildInfo: the resolved build identity is stable and carries the
// toolchain version.
func TestBuildInfo(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Error("no go version in build info")
	}
	if b != Build() {
		t.Error("Build() not stable across calls")
	}
}
