package stream

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sedspec/internal/obs"
)

func testServer(t *testing.T) (*Server, *obs.Registry, *Hub) {
	t.Helper()
	reg := obs.NewRegistry()
	hub := NewHub()
	feed(reg, "fdc", 50)
	s := NewServer(ServerOptions{Registry: reg, Hub: hub})
	return s, reg, hub
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

// TestEndpoints walks the introspection surface in-process.
func TestEndpoints(t *testing.T) {
	s, _, hub := testServer(t)
	hub.Publish(Event{Kind: KindAnomaly, Device: "fdc", Anomaly: &AnomalyInfo{Strategy: "parameter-check"}})
	hub.Publish(Event{Kind: KindHealth, Session: -1, Health: &FleetSnapshot{}})

	w := get(t, s, "/healthz")
	if w.Code != http.StatusOK {
		t.Fatalf("/healthz = %d: %s", w.Code, w.Body)
	}
	var hz struct {
		Status  string `json:"status"`
		Devices int    `json:"devices"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &hz); err != nil || hz.Status != "ok" || hz.Devices != 1 {
		t.Errorf("/healthz body %s (%v)", w.Body, err)
	}

	w = get(t, s, "/fleet")
	var fleet FleetSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &fleet); err != nil {
		t.Fatalf("/fleet: %v", err)
	}
	if fleet.Device("fdc") == nil || fleet.Device("fdc").Rounds != 52 {
		t.Errorf("/fleet rollup: %+v", fleet.Devices)
	}

	w = get(t, s, "/buildinfo")
	var b BuildInfo
	if err := json.Unmarshal(w.Body.Bytes(), &b); err != nil || b.GoVersion == "" {
		t.Errorf("/buildinfo body %s (%v)", w.Body, err)
	}

	w = get(t, s, "/metrics")
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	if err := ValidateExposition(w.Body); err != nil {
		t.Errorf("/metrics exposition invalid: %v", err)
	}

	// Non-follow /anomalies: bounded NDJSON of retained events, health
	// ticks excluded by default.
	w = get(t, s, "/anomalies")
	lines := strings.Split(strings.TrimSpace(w.Body.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("/anomalies returned %d lines: %q", len(lines), lines)
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil || ev.Kind != KindAnomaly {
		t.Errorf("/anomalies line %q (%v)", lines[0], err)
	}

	// Health ticks are opt-in.
	w = get(t, s, "/anomalies?kinds=health")
	if !strings.Contains(w.Body.String(), `"kind":"health"`) {
		t.Errorf("kinds=health returned %q", w.Body)
	}

	if w = get(t, s, "/anomalies?kinds=bogus"); w.Code != http.StatusBadRequest {
		t.Errorf("bad kinds = %d", w.Code)
	}
	if w = get(t, s, "/anomalies?limit=x"); w.Code != http.StatusBadRequest {
		t.Errorf("bad limit = %d", w.Code)
	}
	if w = get(t, s, "/debug/vars"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), "sedspec_obs") {
		t.Errorf("/debug/vars = %d", w.Code)
	}
	if w = get(t, s, "/debug/pprof/cmdline"); w.Code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", w.Code)
	}
}

// TestHealthzDegraded: a tripped watchdog flips /healthz to 503.
func TestHealthzDegraded(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewHealth(reg, NewHub(), HealthOptions{BudgetNsPerOp: 0.001})
	s := NewServer(ServerOptions{Registry: reg, Health: h})
	feed(reg, "fdc", 300)
	get(t, s, "/healthz") // first sight arms the window
	feed(reg, "fdc", 500)
	time.Sleep(2 * time.Millisecond)
	w := get(t, s, "/healthz")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d after watchdog trip: %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), "degraded") {
		t.Errorf("body %s", w.Body)
	}
}

// TestAnomaliesFollow tails the live stream over a real listener: the
// client must see events published after it attached, in order, and the
// SSE variant must frame them as data: lines.
func TestAnomaliesFollow(t *testing.T) {
	s, _, hub := testServer(t)
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, tc := range []struct {
		name, query, prefix string
	}{
		{"ndjson", "follow=1&kinds=audit", ""},
		{"sse", "follow=1&kinds=audit&sse=1", "data: "},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/anomalies?"+tc.query, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()

			// Publish until the subscriber is attached (the GET races the
			// subscription), then a recognizable tail.
			go func() {
				for i := 0; ; i++ {
					hub.Publish(Event{Kind: KindAudit, Device: "fdc", Session: i,
						Audit: &AuditInfo{Strategy: "parameter-check", Round: uint64(i)}})
					select {
					case <-ctx.Done():
						return
					case <-time.After(time.Millisecond):
					}
				}
			}()

			sc := bufio.NewScanner(resp.Body)
			var last int = -1
			for n := 0; n < 5 && sc.Scan(); n++ {
				line := strings.TrimSpace(sc.Text())
				if line == "" {
					n--
					continue
				}
				if tc.prefix != "" && !strings.HasPrefix(line, tc.prefix) {
					t.Fatalf("frame %q missing prefix %q", line, tc.prefix)
				}
				var ev Event
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, tc.prefix)), &ev); err != nil {
					t.Fatalf("bad line %q: %v", line, err)
				}
				if ev.Kind != KindAudit {
					t.Fatalf("kind filter leaked %v", ev.Kind)
				}
				if ev.Session <= last {
					t.Fatalf("events out of order: %d after %d", ev.Session, last)
				}
				last = ev.Session
			}
			if err := sc.Err(); err != nil && ctx.Err() == nil {
				t.Fatal(err)
			}
			if last < 0 {
				t.Fatal("no events received")
			}
		})
	}
}

// TestFollowDropNotice: a lagging tail is told how many events it
// missed via synthesized kind="drop" records.
func TestFollowDropNotice(t *testing.T) {
	reg := obs.NewRegistry()
	hub := NewHub()
	// A 2-slot tail ring so the burst below overwhelms it.
	s := NewServer(ServerOptions{Registry: reg, Hub: hub, FollowBuffer: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET",
		ts.URL+"/anomalies?follow=1&kinds=audit", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Wait for the tail to attach, then burst until the hub records a
	// drop against it (bursts of 50 through a 2-slot ring shed almost
	// immediately; the loop bounds the rare schedule where the handler
	// keeps up).
	deadline := time.Now().Add(5 * time.Second)
	for hub.Stats().Subscribers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tail never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	session := 0
	for hub.Stats().TotalDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tail never fell behind")
		}
		for i := 0; i < 50; i++ {
			hub.Publish(Event{Kind: KindAudit, Session: session, Audit: &AuditInfo{}})
			session++
		}
	}

	sc := bufio.NewScanner(resp.Body)
	var dropped uint64
	for dropped == 0 && sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if ev.Kind == KindDrop {
			if ev.Dropped == 0 || ev.Session != -1 {
				t.Errorf("malformed drop notice %+v", ev)
			}
			dropped += ev.Dropped
		}
	}
	if dropped == 0 {
		t.Fatal("no drop notice despite an overwhelmed tail ring")
	}
	if hubDropped := hub.Stats().TotalDropped; dropped > hubDropped {
		t.Errorf("wire reported %d dropped, hub counted %d", dropped, hubDropped)
	}
}

// TestTwoServersCoexist is the regression for the double-registration
// panic: two servers (the old obs.ServeDebug pattern would panic on the
// second http.HandleFunc) must build and serve independently.
func TestTwoServersCoexist(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("second server panicked: %v", r)
		}
	}()
	a := NewServer(ServerOptions{Registry: obs.NewRegistry()})
	b := NewServer(ServerOptions{Registry: obs.NewRegistry()})
	for _, s := range []*Server{a, b} {
		if w := get(t, s, "/healthz"); w.Code != http.StatusOK {
			t.Errorf("server %p /healthz = %d", s, w.Code)
		}
	}

	// And over real listeners, as two CLIs in one process would.
	s1, err := Serve("127.0.0.1:0", ServerOptions{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := Serve("127.0.0.1:0", ServerOptions{Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s1.Addr() == s2.Addr() || s1.Addr() == "" {
		t.Fatalf("listener addresses: %q, %q", s1.Addr(), s2.Addr())
	}
	for _, addr := range []string{s1.Addr(), s2.Addr()} {
		resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s /healthz = %d", addr, resp.StatusCode)
		}
	}
}
