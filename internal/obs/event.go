// Package obs is the observability layer of the runtime-protection
// stack: an always-on flight recorder (a fixed-size per-session ring of
// compact binary check events) plus a metrics registry (monotonic
// counters and log-scale histograms keyed by device × strategy ×
// verdict, atomic on the hot path, snapshot/merge on read).
//
// The package is a leaf: it knows nothing of the checker or the machine.
// The checker feeds it one Event per checked I/O; the codes stored in an
// Event (exit kind, strategy, verdict) are small integers whose meaning
// is fixed here so that a recorded ring is self-describing.
//
// Concurrency contract: a Recorder has exactly one writer — the
// goroutine driving its enforcement session. The metric bank behind it
// is written with atomics, so cross-goroutine readers may snapshot
// metrics at any time (Registry.Snapshot, Recorder.Snapshot). The ring
// is NOT synchronized: it is read by its own writer (the anomaly path
// freezes it into an AnomalyContext) or after the session has quiesced
// (DumpTrace between experiments). This keeps the steady-state record
// cost to two uncontended atomic adds and one 56-byte slot store.
package obs

import "fmt"

// ExitKind classifies the VM exit that delivered a checked request:
// port-mapped vs memory-mapped I/O, read vs write. KindDMA is reserved
// for recorders tracing DMA interfaces; the per-I/O check path only
// emits PIO/MMIO kinds, since DMA happens inside a round.
type ExitKind uint8

const (
	// KindUnknown marks an event whose request origin was not stamped.
	KindUnknown ExitKind = 0
	// KindPIORead is a port-mapped read exit.
	KindPIORead ExitKind = 2
	// KindPIOWrite is a port-mapped write exit.
	KindPIOWrite ExitKind = 3
	// KindMMIORead is a memory-mapped read exit.
	KindMMIORead ExitKind = 4
	// KindMMIOWrite is a memory-mapped write exit.
	KindMMIOWrite ExitKind = 5
	// KindDMA is a DMA interface event.
	KindDMA ExitKind = 6
	// KindBatch is a coalesced summary of a batched delivery's clean
	// rounds: Round is the first round covered, Len the number of rounds,
	// Steps their summed step count, and Latency the virtual-time gap
	// since the previous event (the doorbell gap). Anomalous rounds are
	// never coalesced — they always record individually, after the
	// summary of the clean prefix that preceded them.
	KindBatch ExitKind = 7
)

// KindOf maps an I/O space code (1 = PIO, 2 = MMIO, matching
// interp.Space) and direction to the exit kind.
func KindOf(space uint8, write bool) ExitKind {
	k := ExitKind(space << 1)
	if write {
		k++
	}
	if k < KindPIORead || k > KindMMIOWrite {
		return KindUnknown
	}
	return k
}

func (k ExitKind) String() string {
	switch k {
	case KindPIORead:
		return "pio-rd"
	case KindPIOWrite:
		return "pio-wr"
	case KindMMIORead:
		return "mmio-rd"
	case KindMMIOWrite:
		return "mmio-wr"
	case KindDMA:
		return "dma"
	case KindBatch:
		return "batch"
	default:
		return fmt.Sprintf("exit(%d)", uint8(k))
	}
}

// Verdict is the outcome of one checked I/O.
type Verdict uint8

const (
	// VerdictOK means the simulation matched the specification.
	VerdictOK Verdict = iota
	// VerdictWarned means an anomaly was raised without blocking
	// (enhancement mode, non-parameter strategies).
	VerdictWarned
	// VerdictBlocked means the I/O was blocked before the device ran.
	VerdictBlocked

	// NumVerdicts sizes per-verdict counter arrays.
	NumVerdicts = 3
)

func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictWarned:
		return "warned"
	case VerdictBlocked:
		return "blocked"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// Strategy codes mirror the checker's check strategies (0 = none, then
// parameter, indirect-jump, conditional-jump). The names are duplicated
// here so a recorded ring renders without importing the checker.
const (
	// StrategyNone marks an event with no anomaly strategy (OK rounds).
	StrategyNone = 0
	// NumStrategies sizes per-strategy counter arrays.
	NumStrategies = 4
)

var strategyNames = [NumStrategies]string{"none", "parameter-check", "indirect-jump-check", "conditional-jump-check"}

// StrategyName returns the human name for a strategy code.
func StrategyName(code uint8) string {
	if int(code) < len(strategyNames) {
		return strategyNames[code]
	}
	return fmt.Sprintf("strategy(%d)", code)
}

// Event is one checked I/O interaction, compact and pointer-free so a
// ring of them is a single flat allocation and a record is a plain
// 56-byte store. All codes are resolvable without the checker package.
type Event struct {
	// Seq is the recorder's monotonic event number (1-based); gaps in a
	// dumped ring reveal overwritten history.
	Seq uint64
	// Tick is the virtual timestamp in simclock ticks (one tick = one
	// microsecond of virtual time); zero when no clock is wired.
	Tick int64
	// Round is the checker's round counter when the event was recorded.
	Round uint64
	// Addr is the request's bus address.
	Addr uint64
	// Steps is the sealed-walker step count for the round.
	Steps uint32
	// Latency is the virtual time elapsed since the session's previous
	// checked I/O, in simclock ticks (saturating).
	Latency uint32
	// Session is the guest-session ID stamped by the machine layer.
	Session uint32
	// Handler and Block name the ES-CFG block tied to the event: the
	// anomalous block for warned/blocked rounds, the entry block for OK
	// rounds.
	Handler uint16
	Block   uint16
	// Len is the request payload length in bytes.
	Len uint16
	// SpecGen is the spec-version generation that checked the round: 1
	// for a spec that was never swapped, incremented by every hot-swap.
	// Events recorded across a swap boundary disambiguate which spec
	// version produced which verdict.
	SpecGen uint16
	// Kind is the VM-exit kind that delivered the request.
	Kind ExitKind
	// Strategy is the anomaly's strategy code (StrategyNone for OK).
	Strategy uint8
	// Verdict is the round's outcome.
	Verdict Verdict
}
