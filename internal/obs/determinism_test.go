package obs

import (
	"encoding/json"
	"testing"
)

// TestRingWrapAtExactCapacity pins the wraparound boundary: a ring
// filled to exactly its capacity holds every event unoverwritten, and
// one more append evicts precisely the oldest.
func TestRingWrapAtExactCapacity(t *testing.T) {
	const capacity = 8
	g := NewRegistry()
	r := g.NewRecorder("dev", 0, capacity)
	for i := 1; i <= capacity; i++ {
		r.Record(Event{Round: uint64(i), Tick: int64(i)})
	}
	ring := r.Ring()
	if ring.Len() != capacity || ring.Total() != capacity {
		t.Fatalf("at exact capacity: Len=%d Total=%d, want %d/%d",
			ring.Len(), ring.Total(), capacity, capacity)
	}
	snap := ring.Snapshot()
	if snap[0].Round != 1 || snap[capacity-1].Round != capacity {
		t.Errorf("exact-capacity snapshot = rounds %d..%d, want 1..%d",
			snap[0].Round, snap[capacity-1].Round, capacity)
	}

	// Capacity+1: the oldest event (round 1) is gone, order intact.
	r.Record(Event{Round: capacity + 1, Tick: capacity + 1})
	if ring.Len() != capacity || ring.Total() != capacity+1 {
		t.Fatalf("at capacity+1: Len=%d Total=%d, want %d/%d",
			ring.Len(), ring.Total(), capacity, capacity+1)
	}
	snap = ring.Snapshot()
	if snap[0].Round != 2 || snap[capacity-1].Round != capacity+1 {
		t.Errorf("capacity+1 snapshot = rounds %d..%d, want 2..%d",
			snap[0].Round, snap[capacity-1].Round, capacity+1)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Round != snap[i-1].Round+1 {
			t.Errorf("snapshot not in order at %d: %d after %d", i, snap[i].Round, snap[i-1].Round)
		}
	}
}

// fillDeterministic records the same event mix into a fresh registry.
func fillDeterministic() *Registry {
	g := NewRegistry()
	a := g.NewRecorder("fdc", 0, 8)
	b := g.NewRecorder("scsi", 1, 8)
	// Latency is derived from tick deltas; ticks 1,3,7,15,31 yield the
	// latencies 1,2,4,8,16 — one per histogram bucket.
	tick := int64(0)
	for i := 0; i < 5; i++ {
		tick += int64(1) << i
		a.Record(Event{Steps: uint32(3 + i), Tick: tick, Verdict: VerdictOK})
	}
	a.Record(Event{Steps: 9, Tick: tick, Strategy: 1, Verdict: VerdictBlocked})
	a.Record(Event{Steps: 2, Tick: tick, Strategy: 3, Verdict: VerdictWarned})
	b.Record(Event{Steps: 300, Tick: 70_000, Verdict: VerdictOK})
	g.CountSwap("fdc")
	return g
}

// TestRegistryStringDeterministic: the expvar String() export of two
// registries holding identical data is byte-for-byte identical, and
// histogram buckets are emitted in ascending value order — the contract
// golden tests and CI diffs rely on.
func TestRegistryStringDeterministic(t *testing.T) {
	s1, s2 := fillDeterministic().String(), fillDeterministic().String()
	if s1 != s2 {
		t.Fatalf("String() not deterministic:\n%s\nvs\n%s", s1, s2)
	}

	var doc struct {
		Devices []struct {
			Device  string `json:"device"`
			Latency struct {
				Buckets []struct {
					Range string `json:"range"`
					Count uint64 `json:"count"`
				} `json:"buckets"`
			} `json:"latency_ticks"`
			Outcomes []struct {
				Strategy string `json:"strategy"`
				Verdict  string `json:"verdict"`
				Count    uint64 `json:"count"`
			} `json:"outcomes"`
		} `json:"devices"`
	}
	if err := json.Unmarshal([]byte(s1), &doc); err != nil {
		t.Fatalf("String() is not JSON: %v\n%s", err, s1)
	}
	if len(doc.Devices) != 2 || doc.Devices[0].Device != "fdc" || doc.Devices[1].Device != "scsi" {
		t.Fatalf("device rows unsorted: %+v", doc.Devices)
	}
	lat := doc.Devices[0].Latency.Buckets
	if len(lat) < 2 {
		t.Fatalf("fdc latency buckets = %+v, want several", lat)
	}
	// Ascending bucket-index order means each bucket's lower bound grows:
	// the two zero-latency anomaly rounds land in "0", the benign rounds'
	// latencies (1,2,4,8,16) fill the next five buckets in value order.
	want := []string{"0", "1", "2-3", "4-7", "8-15", "16-31"}
	for i, b := range lat {
		if i < len(want) && b.Range != want[i] {
			t.Errorf("latency bucket %d = %q, want %q", i, b.Range, want[i])
		}
	}
	out := doc.Devices[0].Outcomes
	if len(out) != 3 {
		t.Fatalf("fdc outcomes = %+v", out)
	}
	if out[0].Strategy != StrategyName(0) || out[1].Strategy != StrategyName(1) ||
		out[2].Strategy != StrategyName(3) {
		t.Errorf("outcomes not in strategy order: %+v", out)
	}
}
