package obs

import "testing"

// TestHistQuantile pins the interpolated-quantile contract the fleet
// health rollups depend on: exact answers for the two exact buckets,
// estimates inside the owning bucket (the factor-<2 bound) elsewhere,
// clamped q, and a lower-edge answer for the open-ended last bucket.
func TestHistQuantile(t *testing.T) {
	var empty Hist
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}

	var zeros Hist
	zeros.Buckets[0] = 100
	if got := zeros.Quantile(0.99); got != 0 {
		t.Errorf("all-zeros p99 = %v, want 0", got)
	}

	var ones Hist
	ones.Buckets[1] = 100
	if got := ones.Quantile(0.5); got != 1 {
		t.Errorf("all-ones p50 = %v, want 1", got)
	}

	// 100 values in bucket 5 = [16, 32): every quantile estimate must
	// stay inside the bucket (q=1 interpolates to the closed upper
	// edge), and the interpolation must be monotone.
	var h Hist
	h.Buckets[5] = 100
	prev := 0.0
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 1.0} {
		v := h.Quantile(q)
		if v < 16 || v > 32 {
			t.Errorf("q=%v: %v outside [16,32]", q, v)
		}
		if v < prev {
			t.Errorf("q=%v: quantile not monotone (%v < %v)", q, v, prev)
		}
		prev = v
	}
	if got := h.Quantile(1.0); got < 31 {
		t.Errorf("p100 of a full bucket = %v, want near the upper edge", got)
	}

	// Mixed distribution: 90 ones and 10 values in [16,32). p50 lands in
	// the ones bucket (exact), p95 in the upper bucket.
	var mix Hist
	mix.Buckets[1] = 90
	mix.Buckets[5] = 10
	if got := mix.Quantile(0.5); got != 1 {
		t.Errorf("mixed p50 = %v, want 1", got)
	}
	if got := mix.Quantile(0.95); got < 16 || got >= 32 {
		t.Errorf("mixed p95 = %v, want inside [16,32)", got)
	}

	// Clamping: q <= 0 and q > 1 answer the extreme ranks instead of
	// panicking or extrapolating.
	if got := mix.Quantile(-1); got != 1 {
		t.Errorf("q=-1 = %v, want the low extreme", got)
	}
	if got := mix.Quantile(2); got < 16 || got > 32 {
		t.Errorf("q=2 = %v, want the high extreme", got)
	}

	// The open-ended last bucket reports its lower edge.
	var top Hist
	top.Buckets[NumBuckets-1] = 5
	want := float64(uint64(1) << (NumBuckets - 2))
	if got := top.Quantile(0.5); got != want {
		t.Errorf("last-bucket quantile = %v, want lower edge %v", got, want)
	}
}
