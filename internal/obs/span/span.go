// Package span is a small in-process lifecycle tracer: spec lifecycle
// operations (learn, seal, swap, enhance, store put/get) record
// structured spans — name, generation, parent, duration, attributes —
// into a bounded sink that exports as Chrome trace_event JSON, so a full
// enhance→swap cycle loads as one timeline in a trace viewer.
//
// The sink is not on the I/O check path; a mutex per Start/End is fine.
// Parenting is implicit: a span started while another is open on the same
// sink becomes its child, which matches the lifecycle call structure
// (learn's trace/analyze/observe/build phases nest under learn, the seal
// inside a swap nests under swap).
package span

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Gen annotates a span with the spec generation it concerns.
func Gen(g uint64) Attr { return Attr{Key: "generation", Val: strconv.FormatUint(g, 10)} }

// Device annotates a span with the device it concerns.
func Device(d string) Attr { return Attr{Key: "device", Val: d} }

// Span is one recorded lifecycle operation. It is immutable after End.
type Span struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"` // 0: root
	Name   string        `json:"name"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur"`
	Attrs  []Attr        `json:"attrs,omitempty"`

	sink *Sink
	done bool
}

// DefaultCap bounds how many finished spans a sink retains; beyond it new
// spans are counted as dropped rather than growing without bound (a
// long-running fleet seals thousands of specs).
const DefaultCap = 8192

// Sink collects spans. The zero value is not usable; use NewSink or the
// process-wide Default sink.
type Sink struct {
	mu      sync.Mutex
	cap     int
	nextID  uint64
	stack   []*Span // open spans, innermost last, for implicit parenting
	spans   []*Span
	dropped uint64
}

// NewSink returns a sink retaining at most capacity finished spans
// (DefaultCap if capacity <= 0).
func NewSink(capacity int) *Sink {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Sink{cap: capacity}
}

var defaultSink = NewSink(DefaultCap)

// Default returns the process-wide sink the lifecycle instrumentation
// records into.
func Default() *Sink { return defaultSink }

// Start opens a span. The span must be closed with End; until then,
// spans started on the same sink nest under it.
func (s *Sink) Start(name string, attrs ...Attr) *Span {
	sp := &Span{Name: name, Start: time.Now(), Attrs: attrs, sink: s}
	s.mu.Lock()
	s.nextID++
	sp.ID = s.nextID
	if n := len(s.stack); n > 0 {
		sp.Parent = s.stack[n-1].ID
	}
	s.stack = append(s.stack, sp)
	s.mu.Unlock()
	return sp
}

// End closes the span, appending any extra attributes (useful for values
// only known at completion, like the generation a swap published). Safe
// to call more than once; only the first call records. Nil-safe.
func (sp *Span) End(attrs ...Attr) {
	if sp == nil || sp.sink == nil {
		return
	}
	end := time.Now()
	s := sp.sink
	s.mu.Lock()
	defer s.mu.Unlock()
	if sp.done {
		return
	}
	sp.done = true
	sp.Dur = end.Sub(sp.Start)
	sp.Attrs = append(sp.Attrs, attrs...)
	for i := len(s.stack) - 1; i >= 0; i-- {
		if s.stack[i] == sp {
			s.stack = append(s.stack[:i], s.stack[i+1:]...)
			break
		}
	}
	if len(s.spans) >= s.cap {
		s.dropped++
		return
	}
	s.spans = append(s.spans, sp)
}

// Snapshot returns the finished spans in completion order plus the count
// of spans dropped at capacity.
func (s *Sink) Snapshot() ([]*Span, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.spans))
	copy(out, s.spans)
	return out, s.dropped
}

// Reset discards all recorded spans and the drop count. Open spans keep
// nesting but record nothing until they End after the reset.
func (s *Sink) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spans = nil
	s.dropped = 0
}

// WriteChromeTrace exports the finished spans as Chrome trace_event JSON
// ("X" complete events, microsecond timestamps relative to the earliest
// span), loadable in chrome://tracing or Perfetto.
func (s *Sink) WriteChromeTrace(w io.Writer) error {
	spans, dropped := s.Snapshot()
	var epoch time.Time
	for _, sp := range spans {
		if epoch.IsZero() || sp.Start.Before(epoch) {
			epoch = sp.Start
		}
	}
	type traceEvent struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   int64             `json:"ts"`
		Dur  int64             `json:"dur"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]string `json:"args,omitempty"`
	}
	events := make([]traceEvent, 0, len(spans))
	for _, sp := range spans {
		args := make(map[string]string, len(sp.Attrs)+2)
		args["id"] = strconv.FormatUint(sp.ID, 10)
		if sp.Parent != 0 {
			args["parent"] = strconv.FormatUint(sp.Parent, 10)
		}
		for _, a := range sp.Attrs {
			args[a.Key] = a.Val
		}
		events = append(events, traceEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   sp.Start.Sub(epoch).Microseconds(),
			Dur:  sp.Dur.Microseconds(),
			Pid:  1,
			Tid:  1,
			Args: args,
		})
	}
	doc := struct {
		TraceEvents []traceEvent      `json:"traceEvents"`
		Metadata    map[string]string `json:"metadata,omitempty"`
	}{TraceEvents: events}
	if dropped > 0 {
		doc.Metadata = map[string]string{"dropped_spans": strconv.FormatUint(dropped, 10)}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// String summarizes the sink for debugging.
func (s *Sink) String() string {
	spans, dropped := s.Snapshot()
	return fmt.Sprintf("span sink: %d spans (%d dropped)", len(spans), dropped)
}
