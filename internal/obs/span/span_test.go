package span

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestImplicitParenting(t *testing.T) {
	s := NewSink(0)
	learn := s.Start("learn", Device("fdc"))
	trace := s.Start("learn.trace")
	trace.End()
	build := s.Start("learn.build")
	build.End()
	learn.End(Gen(1))
	root := s.Start("seal")
	root.End()

	spans, dropped := s.Snapshot()
	if dropped != 0 || len(spans) != 4 {
		t.Fatalf("spans = %d dropped = %d, want 4/0", len(spans), dropped)
	}
	// Completion order: trace, build, learn, seal.
	if spans[0].Name != "learn.trace" || spans[0].Parent != learn.ID {
		t.Errorf("trace span: %+v, want parent %d", spans[0], learn.ID)
	}
	if spans[1].Name != "learn.build" || spans[1].Parent != learn.ID {
		t.Errorf("build span: %+v, want parent %d", spans[1], learn.ID)
	}
	if spans[2].Name != "learn" || spans[2].Parent != 0 {
		t.Errorf("learn span should be a root: %+v", spans[2])
	}
	if spans[3].Name != "seal" || spans[3].Parent != 0 {
		t.Errorf("seal started after learn ended should be a root: %+v", spans[3])
	}
	// End-time attrs append after start-time attrs.
	if len(spans[2].Attrs) != 2 || spans[2].Attrs[0].Key != "device" || spans[2].Attrs[1].Key != "generation" {
		t.Errorf("learn attrs = %+v", spans[2].Attrs)
	}
}

func TestEndIdempotentAndNilSafe(t *testing.T) {
	var nilSpan *Span
	nilSpan.End() // must not panic

	s := NewSink(4)
	sp := s.Start("swap")
	sp.End(Gen(2))
	sp.End(Gen(3)) // second End records nothing
	spans, _ := s.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	if len(spans[0].Attrs) != 1 || spans[0].Attrs[0].Val != "2" {
		t.Errorf("double End mutated attrs: %+v", spans[0].Attrs)
	}
}

func TestDropAtCapacity(t *testing.T) {
	s := NewSink(2)
	for i := 0; i < 5; i++ {
		s.Start("op").End()
	}
	spans, dropped := s.Snapshot()
	if len(spans) != 2 || dropped != 3 {
		t.Fatalf("spans = %d dropped = %d, want 2/3", len(spans), dropped)
	}
	s.Reset()
	if spans, dropped := s.Snapshot(); len(spans) != 0 || dropped != 0 {
		t.Fatalf("after Reset: spans = %d dropped = %d", len(spans), dropped)
	}
}

func TestChromeTraceExport(t *testing.T) {
	s := NewSink(2)
	parent := s.Start("enhance", Device("fdc"))
	s.Start("store.put").End(Gen(2))
	parent.End()
	s.Start("dropped").End() // over capacity

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		Metadata map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(doc.TraceEvents))
	}
	put := doc.TraceEvents[0]
	if put.Name != "store.put" || put.Ph != "X" || put.Ts < 0 {
		t.Errorf("store.put event wrong: %+v", put)
	}
	if put.Args["generation"] != "2" || put.Args["parent"] == "" {
		t.Errorf("store.put args = %+v, want generation and parent", put.Args)
	}
	if doc.TraceEvents[1].Args["device"] != "fdc" {
		t.Errorf("enhance args = %+v", doc.TraceEvents[1].Args)
	}
	if doc.Metadata["dropped_spans"] != "1" {
		t.Errorf("metadata = %+v, want dropped_spans 1", doc.Metadata)
	}
}
