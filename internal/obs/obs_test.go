package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestKindOf(t *testing.T) {
	cases := []struct {
		space uint8
		write bool
		want  ExitKind
	}{
		{1, false, KindPIORead},
		{1, true, KindPIOWrite},
		{2, false, KindMMIORead},
		{2, true, KindMMIOWrite},
		{0, false, KindUnknown},
		{7, true, KindUnknown},
	}
	for _, c := range cases {
		if got := KindOf(c.space, c.write); got != c.want {
			t.Errorf("KindOf(%d, %v) = %v, want %v", c.space, c.write, got, c.want)
		}
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 29, 30}, {1 << 30, NumBuckets - 1}, {1 << 62, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	for i := 0; i < NumBuckets; i++ {
		if BucketLabel(i) == "" {
			t.Errorf("empty label for bucket %d", i)
		}
	}
}

func TestRingWrapAndOrder(t *testing.T) {
	g := NewRegistry()
	r := g.NewRecorder("dev", 3, 8)
	if r.Ring().Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Ring().Cap())
	}
	for i := 1; i <= 20; i++ {
		r.Record(Event{Round: uint64(i), Tick: int64(i)})
	}
	if r.Ring().Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Ring().Len())
	}
	if r.Ring().Total() != 20 {
		t.Fatalf("Total = %d, want 20", r.Ring().Total())
	}
	snap := r.Ring().Snapshot()
	for i, ev := range snap {
		wantRound := uint64(13 + i)
		if ev.Round != wantRound || ev.Seq != wantRound || ev.Session != 3 {
			t.Errorf("slot %d = round %d seq %d sess %d, want round/seq %d sess 3",
				i, ev.Round, ev.Seq, ev.Session, wantRound)
		}
	}
	last := r.Ring().Last(3)
	if len(last) != 3 || last[2].Round != 20 || last[0].Round != 18 {
		t.Errorf("Last(3) = %+v", last)
	}
	if got := r.Ring().Last(100); len(got) != 8 {
		t.Errorf("Last(100) returned %d events, want 8", len(got))
	}
}

func TestRecorderLatencyDelta(t *testing.T) {
	g := NewRegistry()
	r := g.NewRecorder("dev", 0, 8)
	r.Record(Event{Tick: 100})
	r.Record(Event{Tick: 130})
	r.Record(Event{Tick: 120}) // clock stayed put or skewed: clamp to 0
	evs := r.Ring().Snapshot()
	if evs[0].Latency != 100 || evs[1].Latency != 30 || evs[2].Latency != 0 {
		t.Errorf("latencies = %d %d %d, want 100 30 0", evs[0].Latency, evs[1].Latency, evs[2].Latency)
	}
}

func TestSnapshotCountsAndMerge(t *testing.T) {
	g := NewRegistry()
	a := g.NewRecorder("fdc", 0, 16)
	b := g.NewRecorder("fdc", 1, 16)
	c := g.NewRecorder("scsi", 0, 16)
	for i := 0; i < 10; i++ {
		a.Record(Event{Steps: 5, Verdict: VerdictOK})
	}
	a.Record(Event{Steps: 7, Strategy: 1, Verdict: VerdictBlocked})
	b.Record(Event{Steps: 5, Strategy: 3, Verdict: VerdictWarned})
	c.Record(Event{Steps: 9, Verdict: VerdictOK})

	snap := g.Snapshot()
	if len(snap.Devices) != 2 || snap.Devices[0].Device != "fdc" || snap.Devices[1].Device != "scsi" {
		t.Fatalf("devices = %+v", snap.Devices)
	}
	fdc := snap.Device("fdc")
	if fdc.Rounds != 12 {
		t.Errorf("fdc rounds = %d, want 12", fdc.Rounds)
	}
	if fdc.Outcomes[1][VerdictBlocked] != 1 || fdc.Outcomes[3][VerdictWarned] != 1 {
		t.Errorf("fdc outcomes = %+v", fdc.Outcomes)
	}
	if fdc.Outcomes[StrategyNone][VerdictOK] != 10 {
		t.Errorf("fdc ok rounds = %d, want 10", fdc.Outcomes[StrategyNone][VerdictOK])
	}
	if fdc.Anomalies() != 2 {
		t.Errorf("fdc anomalies = %d, want 2", fdc.Anomalies())
	}

	// The registry view must equal the sum of per-recorder snapshots.
	manual := a.Snapshot().Merge(b.Snapshot())
	if manual != fdc {
		t.Errorf("merged recorder snapshots diverge from registry:\n  got:  %+v\n  want: %+v", manual, fdc)
	}

	// Close folds into the retired bank: aggregate stable across churn.
	a.Close()
	a.Close() // idempotent
	b.Close()
	if g.Recorders() != 1 {
		t.Fatalf("Recorders = %d, want 1", g.Recorders())
	}
	if got := g.Snapshot().Device("fdc"); got != fdc {
		t.Errorf("post-churn snapshot diverges:\n  got:  %+v\n  want: %+v", got, fdc)
	}
}

func TestRegistryJSON(t *testing.T) {
	g := NewRegistry()
	r := g.NewRecorder("fdc", 0, 8)
	r.Record(Event{Steps: 4, Latency: 0, Verdict: VerdictOK, Tick: 3})
	r.Record(Event{Steps: 6, Strategy: 1, Verdict: VerdictBlocked, Tick: 9})
	s := g.String()
	var decoded map[string]any
	if err := json.Unmarshal([]byte(s), &decoded); err != nil {
		t.Fatalf("String() is not JSON: %v\n%s", err, s)
	}
	for _, want := range []string{`"device":"fdc"`, `"rounds":2`, `"strategy":"parameter-check"`, `"verdict":"blocked"`, `"latency_ticks"`, `"steps"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
}

func TestFreezeAndTimeline(t *testing.T) {
	g := NewRegistry()
	r := g.NewRecorder("fdc", 2, 8)
	for i := 1; i <= 12; i++ {
		r.Record(Event{Round: uint64(i), Addr: 0x3f5, Kind: KindPIOWrite, Steps: 40, Verdict: VerdictOK})
	}
	r.Record(Event{Round: 13, Addr: 0x3f5, Kind: KindPIOWrite, Steps: 17, Strategy: 1, Verdict: VerdictBlocked})
	ctx := r.Freeze(4)
	if len(ctx.Events) != 4 {
		t.Fatalf("frozen %d events, want 4", len(ctx.Events))
	}
	final := ctx.Events[len(ctx.Events)-1]
	if final.Verdict != VerdictBlocked || final.Round != 13 {
		t.Fatalf("final frozen event = %+v, want the blocked round", final)
	}
	if ctx.Dropped != 13-8 {
		t.Errorf("Dropped = %d, want 5", ctx.Dropped)
	}
	out := ctx.String()
	for _, want := range []string{"device fdc session 2", "pio-wr", "blocked parameter-check", "0x3f5", "overwritten"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	var sb strings.Builder
	if err := WriteTimeline(&sb, r.Ring().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "blocked parameter-check") {
		t.Errorf("ring timeline missing verdict:\n%s", sb.String())
	}
}

func TestExportEvery(t *testing.T) {
	g := NewRegistry()
	r := g.NewRecorder("fdc", 0, 8)
	r.Record(Event{Steps: 3, Verdict: VerdictOK})
	path := filepath.Join(t.TempDir(), "metrics.json")
	stop := ExportEvery(path, time.Millisecond, g)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("periodic export never wrote the file")
		}
		time.Sleep(time.Millisecond)
	}
	r.Record(Event{Steps: 3, Verdict: VerdictOK})
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(b, &map[string]any{}); err != nil {
		t.Fatalf("export is not JSON: %v", err)
	}
	_ = snap
	if !strings.Contains(string(b), `"rounds": 2`) {
		t.Errorf("final export missing both rounds:\n%s", b)
	}
}

// The debug HTTP surface moved to the stream package's unified
// introspection server; see internal/obs/stream/http_test.go.
