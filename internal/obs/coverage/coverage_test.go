package coverage

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestMapSnapshotMergeClone(t *testing.T) {
	m := NewMap(3, 2)
	m.HitBlock(0)
	m.HitBlock(2)
	m.HitBlock(2)
	m.HitEdge(1)
	// Counts are pending until published: a snapshot before any flush is
	// the (empty) lower bound.
	if s := m.Snapshot(); !equal(s.Blocks, []uint64{0, 0, 0}) {
		t.Errorf("pre-flush snapshot = %v, want zeros", s.Blocks)
	}
	m.Flush()
	s := m.Snapshot()
	if want := []uint64{1, 0, 2}; !equal(s.Blocks, want) {
		t.Errorf("blocks = %v, want %v", s.Blocks, want)
	}
	if want := []uint64{0, 1}; !equal(s.Edges, want) {
		t.Errorf("edges = %v, want %v", s.Edges, want)
	}

	// Merge tolerates a zero-value accumulator and shorter inputs.
	var acc Snapshot
	acc.Merge(s)
	acc.Merge(&Snapshot{Blocks: []uint64{5}})
	if want := []uint64{6, 0, 2}; !equal(acc.Blocks, want) {
		t.Errorf("merged blocks = %v, want %v", acc.Blocks, want)
	}

	cl := s.Clone()
	cl.Blocks[0] = 99
	if s.Blocks[0] != 1 {
		t.Error("Clone shares storage with the original")
	}
}

// TestMapConcurrentCounts: the map is single-writer, so concurrency is
// one session goroutine counting (with periodic RoundEnd publication)
// against snapshot readers — under -race this pins the contract that
// readers touch only the atomic bank. Cross-session totals come from
// merging each session's own map.
func TestMapConcurrentCounts(t *testing.T) {
	m := NewMap(4, 4)
	const rounds = 10_000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			m.HitBlock(i % 4)
			m.HitEdge(3 - i%4)
			m.RoundEnd()
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				s := m.Snapshot()
				var sum uint64
				for _, v := range s.Blocks {
					sum += v
				}
				if sum < last {
					t.Errorf("published counts regressed: %d after %d", sum, last)
					return
				}
				last = sum
				select {
				case <-done:
					return
				default:
				}
			}
		}()
	}
	wg.Wait()
	m.Flush()
	s := m.Snapshot()
	for i := 0; i < 4; i++ {
		if s.Blocks[i] != rounds/4 || s.Edges[i] != rounds/4 {
			t.Fatalf("index %d: blocks=%d edges=%d, want %d", i, s.Blocks[i], s.Edges[i], rounds/4)
		}
	}

	// Cross-session aggregation is merge-of-snapshots.
	var acc Snapshot
	for g := 0; g < 4; g++ {
		sm := NewMap(4, 0)
		for i := 0; i < 100; i++ {
			sm.HitBlock(g)
		}
		sm.Flush()
		acc.Merge(sm.Snapshot())
	}
	for i := 0; i < 4; i++ {
		if acc.Blocks[i] != 100 {
			t.Fatalf("merged session counts = %v", acc.Blocks)
		}
	}
}

func twoGenProfiles() (from, to *Profile) {
	from = &Profile{
		Device: "testdev", Generation: 1, Rounds: 10,
		Blocks: []BlockCov{
			{ID: 0, Handler: 0, Block: 0, Kind: "entry", TrainVisits: 4, Hits: 10},
			{ID: 1, Handler: 1, Block: 0, Kind: "cmd-decision", TrainVisits: 4, Hits: 10},
			{ID: 2, Handler: 1, Block: 2, Kind: "normal", TrainVisits: 2, Hits: 5},
		},
		Edges: []EdgeCov{
			{FromHandler: 1, FromBlock: 0, ToHandler: 1, ToBlock: 2, Kind: "case", Sel: 0x10, Hits: 5},
		},
		Commands: []uint64{0x10},
	}
	to = &Profile{
		Device: "testdev", Generation: 2, Rounds: 12,
		Blocks: []BlockCov{
			{ID: 0, Handler: 0, Block: 0, Kind: "entry", TrainVisits: 5, Hits: 12},
			{ID: 1, Handler: 1, Block: 0, Kind: "cmd-decision", TrainVisits: 5, Hits: 12},
			{ID: 2, Handler: 1, Block: 2, Kind: "normal", TrainVisits: 2, Hits: 6},
			{ID: 3, Handler: 1, Block: 4, Kind: "normal", TrainVisits: 1, Hits: 0},
		},
		Edges: []EdgeCov{
			{FromHandler: 1, FromBlock: 0, ToHandler: 1, ToBlock: 2, Kind: "case", Sel: 0x10, Hits: 6},
			{FromHandler: 1, FromBlock: 0, ToHandler: 1, ToBlock: 4, Kind: "case", Sel: 0x31, Hits: 0},
			{FromHandler: 1, FromBlock: 2, ToHandler: 1, ToBlock: 4, Kind: "seq", Hits: 2},
		},
		Commands: []uint64{0x10, 0x31},
	}
	return from, to
}

func TestDiffDrift(t *testing.T) {
	from, to := twoGenProfiles()
	d := Diff(from, to)
	if d.FromGen != 1 || d.ToGen != 2 || d.Device != "testdev" {
		t.Fatalf("identity: %+v", d)
	}
	if len(d.BlocksAdded) != 1 || d.BlocksAdded[0].Block != 4 {
		t.Errorf("BlocksAdded = %+v", d.BlocksAdded)
	}
	if len(d.BlocksRemoved) != 0 || len(d.EdgesRemoved) != 0 {
		t.Errorf("spurious removals: %+v %+v", d.BlocksRemoved, d.EdgesRemoved)
	}
	if len(d.EdgesAdded) != 2 {
		t.Fatalf("EdgesAdded = %+v", d.EdgesAdded)
	}
	if len(d.CommandsAdded) != 1 || d.CommandsAdded[0] != 0x31 {
		t.Errorf("CommandsAdded = %v", d.CommandsAdded)
	}
	// The legalized-but-unexercised case arm is never-hit; so is its block.
	if len(d.NeverHitEdges) != 1 || d.NeverHitEdges[0].Sel != 0x31 {
		t.Errorf("NeverHitEdges = %+v", d.NeverHitEdges)
	}
	if len(d.NeverHitBlocks) != 1 || d.NeverHitBlocks[0].Block != 4 {
		t.Errorf("NeverHitBlocks = %+v", d.NeverHitBlocks)
	}
	// The seq edge is hit under gen 2 and absent from gen 1: newly hot.
	if len(d.NewlyHotEdges) != 1 || d.NewlyHotEdges[0].Kind != "seq" {
		t.Errorf("NewlyHotEdges = %+v", d.NewlyHotEdges)
	}

	// Reverse direction reports the removals symmetrically.
	r := Diff(to, from)
	if len(r.BlocksRemoved) != 1 || len(r.EdgesRemoved) != 2 || len(r.CommandsRemoved) != 1 {
		t.Errorf("reverse diff: %+v", r)
	}

	// A structural-only "to" (no rounds) must not claim runtime gaps.
	to.Rounds = 0
	d0 := Diff(from, to)
	if d0.NeverHitBlocks != nil || d0.NeverHitEdges != nil || d0.NewlyHotEdges != nil {
		t.Errorf("structural-only diff reported runtime fields: %+v", d0)
	}
}

func TestDriftOutputs(t *testing.T) {
	from, to := twoGenProfiles()
	d := Diff(from, to)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Drift
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if back.ToGen != 2 || len(back.EdgesAdded) != 2 {
		t.Errorf("round-tripped drift: %+v", back)
	}

	buf.Reset()
	if err := d.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	table := buf.String()
	for _, want := range []string{"generation 1 -> 2", "command added", "0x31", "never hit at runtime", "newly hot"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestPublishHandler(t *testing.T) {
	_, to := twoGenProfiles()
	unpub := Publish("shared:testdev", func() []*Profile { return []*Profile{to} })
	defer unpub()

	rr := httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/coverage", nil))
	var doc struct {
		Sources []struct {
			Name     string     `json:"name"`
			Profiles []*Profile `json:"profiles"`
		} `json:"sources"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/coverage not JSON: %v\n%s", err, rr.Body.String())
	}
	found := false
	for _, src := range doc.Sources {
		if src.Name == "shared:testdev" && len(src.Profiles) == 1 && src.Profiles[0].Generation == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("published source missing: %s", rr.Body.String())
	}

	unpub()
	rr = httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/coverage", nil))
	if strings.Contains(rr.Body.String(), "shared:testdev") {
		t.Error("unpublish left the source registered")
	}
}

func equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
