package coverage

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// The publish registry backs the /coverage debug page: long-lived
// enforcement surfaces (the facade, the shared engine) register a profile
// source under a name, and the handler serves the live profiles of every
// registered source as one JSON document.
var (
	pubMu      sync.Mutex
	pubSources = map[string]func() []*Profile{}
)

// Publish registers a live profile source under name, replacing any
// previous source with that name, and returns an unpublish func.
func Publish(name string, src func() []*Profile) (unpublish func()) {
	pubMu.Lock()
	pubSources[name] = src
	pubMu.Unlock()
	return func() {
		pubMu.Lock()
		if _, ok := pubSources[name]; ok {
			delete(pubSources, name)
		}
		pubMu.Unlock()
	}
}

// Handler serves the registered coverage profiles as JSON, keyed by
// source name with names sorted for stable output.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pubMu.Lock()
		names := make([]string, 0, len(pubSources))
		srcs := make([]func() []*Profile, 0, len(pubSources))
		for name, src := range pubSources {
			names = append(names, name)
			srcs = append(srcs, src)
		}
		pubMu.Unlock()

		type entry struct {
			Name     string     `json:"name"`
			Profiles []*Profile `json:"profiles"`
		}
		out := make([]entry, len(names))
		for i := range names {
			out[i] = entry{Name: names[i], Profiles: srcs[i]()}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })

		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Sources []entry `json:"sources"`
		}{out}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
