package coverage

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// BlockCov is one ES block of a generation's coverage profile: its
// identity in the original program, how often the training corpus visited
// it (the learn-time baseline recorded at Seal), and how often runtime
// enforcement reached it. A runtime block hit is the sum of its direct
// hits and of every trained edge that lands on it.
type BlockCov struct {
	ID          int    `json:"id"`
	Handler     int    `json:"handler"`
	Block       int    `json:"block"`
	Kind        string `json:"kind"`
	TrainVisits uint64 `json:"train_visits"`
	Hits        uint64 `json:"hits"`
}

// EdgeCov is one trained transition of the profile. Kind is "seq" for an
// unconditional successor, "taken"/"not-taken" for branch arms, and
// "case" for switch arms (Sel then carries the selector — for
// command-decision blocks, the device command).
type EdgeCov struct {
	FromHandler int    `json:"from_handler"`
	FromBlock   int    `json:"from_block"`
	ToHandler   int    `json:"to_handler"`
	ToBlock     int    `json:"to_block"`
	Kind        string `json:"kind"`
	Sel         uint64 `json:"sel,omitempty"`
	Hits        uint64 `json:"hits"`
}

// LoweringCov summarizes a generation's threaded-code lowering: how far
// the peephole fuser compacted the DSOD op stream into fused
// instructions. Ops is the walker-visible op count, Instrs the compiled
// stream length, Elided the no-op ops folded into step counts, and Pairs
// the per-pattern fusion histogram ("const+arith", "arith+branch", ...).
// Density is FusedOps/Ops — the fraction of ops executed inside a fused
// instruction.
type LoweringCov struct {
	Ops        int            `json:"ops"`
	Instrs     int            `json:"instrs"`
	Elided     int            `json:"elided,omitempty"`
	FusedPairs int            `json:"fused_pairs"`
	FusedOps   int            `json:"fused_ops"`
	Density    float64        `json:"fused_density"`
	Pairs      map[string]int `json:"pairs,omitempty"`
}

// Profile is a spec generation's full coverage picture: structure
// (blocks, edges, commands) annotated with training and runtime counts,
// plus the generation's threaded-code lowering statistics.
// Rounds is the number of checked I/O rounds behind the runtime counts;
// zero means the profile is structural only (no enforcement has run).
type Profile struct {
	Device     string       `json:"device"`
	Generation uint64       `json:"generation"`
	Rounds     uint64       `json:"rounds,omitempty"`
	Blocks     []BlockCov   `json:"blocks"`
	Edges      []EdgeCov    `json:"edges"`
	Commands   []uint64     `json:"commands,omitempty"`
	Lowering   *LoweringCov `json:"lowering,omitempty"`
}

type blockKey struct{ handler, block int }

type edgeKey struct {
	fromHandler, fromBlock int
	toHandler, toBlock     int
	kind                   string
	sel                    uint64
}

func (b BlockCov) key() blockKey { return blockKey{b.Handler, b.Block} }

func (e EdgeCov) key() edgeKey {
	return edgeKey{e.FromHandler, e.FromBlock, e.ToHandler, e.ToBlock, e.Kind, e.Sel}
}

func (b BlockCov) String() string {
	return fmt.Sprintf("h%d/b%d(%s)", b.Handler, b.Block, b.Kind)
}

func (e EdgeCov) String() string {
	s := fmt.Sprintf("h%d/b%d -%s-> h%d/b%d", e.FromHandler, e.FromBlock, e.Kind, e.ToHandler, e.ToBlock)
	if e.Kind == "case" {
		s = fmt.Sprintf("h%d/b%d -case %#x-> h%d/b%d", e.FromHandler, e.FromBlock, e.Sel, e.ToHandler, e.ToBlock)
	}
	return s
}

// Drift is the structural and behavioral difference between two
// generations' profiles: what the newer spec legalized or dropped, and —
// when the newer profile carries runtime counts — which parts of its
// structure enforcement has never exercised or only newly exercises.
type Drift struct {
	Device  string `json:"device"`
	FromGen uint64 `json:"from_generation"`
	ToGen   uint64 `json:"to_generation"`

	BlocksAdded     []BlockCov `json:"blocks_added,omitempty"`
	BlocksRemoved   []BlockCov `json:"blocks_removed,omitempty"`
	EdgesAdded      []EdgeCov  `json:"edges_added,omitempty"`
	EdgesRemoved    []EdgeCov  `json:"edges_removed,omitempty"`
	CommandsAdded   []uint64   `json:"commands_added,omitempty"`
	CommandsRemoved []uint64   `json:"commands_removed,omitempty"`

	// NeverHit lists structure of the "to" generation that its runtime
	// counters never saw — the over-approximation surface. Only populated
	// when the "to" profile has Rounds > 0.
	NeverHitBlocks []BlockCov `json:"never_hit_blocks,omitempty"`
	NeverHitEdges  []EdgeCov  `json:"never_hit_edges,omitempty"`
	// NewlyHot lists edges hit at runtime under "to" that were absent or
	// unhit under "from" — behavior the newer generation legalized and
	// that traffic actually uses.
	NewlyHotEdges []EdgeCov `json:"newly_hot_edges,omitempty"`

	// Lowering drift: each generation's threaded-code fusion statistics,
	// so a spec enhancement that degrades the compiled stream's density
	// (new blocks lowering to unfusable op runs) is visible in the report.
	FromLowering *LoweringCov `json:"from_lowering,omitempty"`
	ToLowering   *LoweringCov `json:"to_lowering,omitempty"`
}

// Diff compares two profiles, from the older to the newer generation.
func Diff(from, to *Profile) *Drift {
	d := &Drift{
		Device: to.Device, FromGen: from.Generation, ToGen: to.Generation,
		FromLowering: from.Lowering, ToLowering: to.Lowering,
	}

	fromBlocks := make(map[blockKey]BlockCov, len(from.Blocks))
	for _, b := range from.Blocks {
		fromBlocks[b.key()] = b
	}
	toBlocks := make(map[blockKey]BlockCov, len(to.Blocks))
	for _, b := range to.Blocks {
		toBlocks[b.key()] = b
		if _, ok := fromBlocks[b.key()]; !ok {
			d.BlocksAdded = append(d.BlocksAdded, b)
		}
	}
	for _, b := range from.Blocks {
		if _, ok := toBlocks[b.key()]; !ok {
			d.BlocksRemoved = append(d.BlocksRemoved, b)
		}
	}

	fromEdges := make(map[edgeKey]EdgeCov, len(from.Edges))
	for _, e := range from.Edges {
		fromEdges[e.key()] = e
	}
	toEdges := make(map[edgeKey]EdgeCov, len(to.Edges))
	for _, e := range to.Edges {
		toEdges[e.key()] = e
		if _, ok := fromEdges[e.key()]; !ok {
			d.EdgesAdded = append(d.EdgesAdded, e)
		}
	}
	for _, e := range from.Edges {
		if _, ok := toEdges[e.key()]; !ok {
			d.EdgesRemoved = append(d.EdgesRemoved, e)
		}
	}

	fromCmds := make(map[uint64]bool, len(from.Commands))
	for _, c := range from.Commands {
		fromCmds[c] = true
	}
	toCmds := make(map[uint64]bool, len(to.Commands))
	for _, c := range to.Commands {
		toCmds[c] = true
		if !fromCmds[c] {
			d.CommandsAdded = append(d.CommandsAdded, c)
		}
	}
	for _, c := range from.Commands {
		if !toCmds[c] {
			d.CommandsRemoved = append(d.CommandsRemoved, c)
		}
	}

	if to.Rounds > 0 {
		for _, b := range to.Blocks {
			if b.Hits == 0 {
				d.NeverHitBlocks = append(d.NeverHitBlocks, b)
			}
		}
		for _, e := range to.Edges {
			if e.Hits == 0 {
				d.NeverHitEdges = append(d.NeverHitEdges, e)
			}
			if e.Hits > 0 {
				if old, ok := fromEdges[e.key()]; !ok || old.Hits == 0 {
					d.NewlyHotEdges = append(d.NewlyHotEdges, e)
				}
			}
		}
	}

	d.sortAll()
	return d
}

func sortBlocks(bs []BlockCov) {
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].Handler != bs[j].Handler {
			return bs[i].Handler < bs[j].Handler
		}
		return bs[i].Block < bs[j].Block
	})
}

func sortEdges(es []EdgeCov) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.FromHandler != b.FromHandler {
			return a.FromHandler < b.FromHandler
		}
		if a.FromBlock != b.FromBlock {
			return a.FromBlock < b.FromBlock
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Sel != b.Sel {
			return a.Sel < b.Sel
		}
		if a.ToHandler != b.ToHandler {
			return a.ToHandler < b.ToHandler
		}
		return a.ToBlock < b.ToBlock
	})
}

func (d *Drift) sortAll() {
	sortBlocks(d.BlocksAdded)
	sortBlocks(d.BlocksRemoved)
	sortEdges(d.EdgesAdded)
	sortEdges(d.EdgesRemoved)
	sortBlocks(d.NeverHitBlocks)
	sortEdges(d.NeverHitEdges)
	sortEdges(d.NewlyHotEdges)
	sort.Slice(d.CommandsAdded, func(i, j int) bool { return d.CommandsAdded[i] < d.CommandsAdded[j] })
	sort.Slice(d.CommandsRemoved, func(i, j int) bool { return d.CommandsRemoved[i] < d.CommandsRemoved[j] })
}

// WriteJSON writes the drift report as indented JSON.
func (d *Drift) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteTable writes the drift report as a human-readable table.
func (d *Drift) WriteTable(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("drift report: %s generation %d -> %d\n", d.Device, d.FromGen, d.ToGen); err != nil {
		return err
	}
	if err := p("  blocks: %+d/-%d  edges: %+d/-%d  commands: %+d/-%d\n",
		len(d.BlocksAdded), len(d.BlocksRemoved),
		len(d.EdgesAdded), len(d.EdgesRemoved),
		len(d.CommandsAdded), len(d.CommandsRemoved)); err != nil {
		return err
	}
	if d.FromLowering != nil && d.ToLowering != nil {
		if err := p("  fused density: %.2f -> %.2f  (pairs %d -> %d, ops %d -> %d)\n",
			d.FromLowering.Density, d.ToLowering.Density,
			d.FromLowering.FusedPairs, d.ToLowering.FusedPairs,
			d.FromLowering.Ops, d.ToLowering.Ops); err != nil {
			return err
		}
	}
	for _, c := range d.CommandsAdded {
		if err := p("  command added    %#x\n", c); err != nil {
			return err
		}
	}
	for _, c := range d.CommandsRemoved {
		if err := p("  command removed  %#x\n", c); err != nil {
			return err
		}
	}
	for _, b := range d.BlocksAdded {
		if err := p("  block added      %-24s train_visits=%d\n", b.String(), b.TrainVisits); err != nil {
			return err
		}
	}
	for _, b := range d.BlocksRemoved {
		if err := p("  block removed    %s\n", b.String()); err != nil {
			return err
		}
	}
	for _, e := range d.EdgesAdded {
		if err := p("  edge added       %s\n", e.String()); err != nil {
			return err
		}
	}
	for _, e := range d.EdgesRemoved {
		if err := p("  edge removed     %s\n", e.String()); err != nil {
			return err
		}
	}
	if len(d.NeverHitBlocks)+len(d.NeverHitEdges) > 0 {
		if err := p("  never hit at runtime: %d blocks, %d edges\n",
			len(d.NeverHitBlocks), len(d.NeverHitEdges)); err != nil {
			return err
		}
		for _, b := range d.NeverHitBlocks {
			if err := p("    block %-24s train_visits=%d\n", b.String(), b.TrainVisits); err != nil {
				return err
			}
		}
		for _, e := range d.NeverHitEdges {
			if err := p("    edge  %s\n", e.String()); err != nil {
				return err
			}
		}
	}
	for _, e := range d.NewlyHotEdges {
		if err := p("  newly hot        %s hits=%d\n", e.String(), e.Hits); err != nil {
			return err
		}
	}
	return nil
}
