// Package coverage holds runtime ES-CFG coverage: dense per-block and
// per-edge hit counters indexed off the sealed spec's flat block and edge
// tables, snapshots that merge across shared sessions, and structural
// profiles that relate runtime hits back to the training corpus so two
// spec generations can be diffed (see Drift).
//
// The package is deliberately free of internal dependencies: the sealed
// walker owns the index spaces (core assigns edge slots at Seal), the
// checker calls HitBlock/HitEdge on its transition path, and everything
// above (specstore, cmds, the /coverage debug page) consumes the plain
// Profile/Drift data.
package coverage

import "sync/atomic"

// Map counts runtime hits against one sealed spec generation. The hot
// side is single-writer: HitBlock/HitEdge/RoundEnd belong to the one
// goroutine driving the session and are plain increments on pre-sized
// pending arrays — no atomics, no allocation. Every flushInterval rounds
// (and on Flush) the pending deltas are folded into a published bank of
// atomic counters, which is the only side Snapshot reads; a concurrent
// snapshot therefore lags the live session by at most flushInterval
// rounds and is a consistent lower bound.
type Map struct {
	blocks []atomic.Uint64
	edges  []atomic.Uint64

	pendBlocks []uint64
	pendEdges  []uint64
	sinceFlush uint32
}

// flushInterval is the publication cadence in rounds. Large enough to
// amortize the pending-array scan and the atomic adds to well under a
// nanosecond per round, small enough that live snapshots stay fresh.
const flushInterval = 64

// NewMap returns a zeroed map sized for a sealed spec's block and edge
// tables.
func NewMap(numBlocks, numEdges int) *Map {
	return &Map{
		blocks:     make([]atomic.Uint64, numBlocks),
		edges:      make([]atomic.Uint64, numEdges),
		pendBlocks: make([]uint64, numBlocks),
		pendEdges:  make([]uint64, numEdges),
	}
}

// HitBlock counts a direct entry into block id: a round entry, a call
// descent, or a transition that has no trained edge slot (the static
// switch fallback). Single-writer: the session's driving goroutine only.
func (m *Map) HitBlock(id int) { m.pendBlocks[id]++ }

// HitEdge counts a traversal of trained edge slot e. Single-writer.
func (m *Map) HitEdge(e int) { m.pendEdges[e]++ }

// RoundEnd marks the end of one checked round and publishes the pending
// counts every flushInterval rounds. Single-writer.
func (m *Map) RoundEnd() {
	m.sinceFlush++
	if m.sinceFlush >= flushInterval {
		m.Flush()
	}
}

// RoundEndN marks the end of a batch of n checked rounds in one tick:
// the batched check path pays the publication check once per batch
// instead of once per round, at the same flushInterval cadence.
// Single-writer.
func (m *Map) RoundEndN(n int) {
	m.sinceFlush += uint32(n)
	if m.sinceFlush >= flushInterval {
		m.Flush()
	}
}

// Flush publishes all pending counts into the snapshot-visible bank. It
// must be called from the session's driving goroutine, or from a caller
// that synchronized with it (a quiesced or closed session); the shared
// engine calls it when a session folds its maps on Close.
func (m *Map) Flush() {
	m.sinceFlush = 0
	for i, v := range m.pendBlocks {
		if v != 0 {
			m.blocks[i].Add(v)
			m.pendBlocks[i] = 0
		}
	}
	for i, v := range m.pendEdges {
		if v != 0 {
			m.edges[i].Add(v)
			m.pendEdges[i] = 0
		}
	}
}

// Snapshot returns a point-in-time copy of the published counters. Safe
// to call concurrently with a live session's increments: it reads only
// the atomic bank, so it may trail the session by up to flushInterval
// rounds — a consistent lower bound, which Merge and the shared-engine
// aggregation tolerate because counters only grow.
func (m *Map) Snapshot() *Snapshot {
	s := &Snapshot{
		Blocks: make([]uint64, len(m.blocks)),
		Edges:  make([]uint64, len(m.edges)),
	}
	for i := range m.blocks {
		s.Blocks[i] = m.blocks[i].Load()
	}
	for i := range m.edges {
		s.Edges[i] = m.edges[i].Load()
	}
	return s
}

// Snapshot is a frozen counter state, mergeable across sessions that
// share the same sealed generation (and therefore the same index spaces).
type Snapshot struct {
	Blocks []uint64 `json:"blocks"`
	Edges  []uint64 `json:"edges"`
}

// Merge adds o into s element-wise. Both snapshots must come from maps
// sized for the same sealed generation; shorter inputs are tolerated so
// a zero-value snapshot can act as an accumulator.
func (s *Snapshot) Merge(o *Snapshot) {
	if o == nil {
		return
	}
	if len(s.Blocks) < len(o.Blocks) {
		s.Blocks = append(s.Blocks, make([]uint64, len(o.Blocks)-len(s.Blocks))...)
	}
	if len(s.Edges) < len(o.Edges) {
		s.Edges = append(s.Edges, make([]uint64, len(o.Edges)-len(s.Edges))...)
	}
	for i, v := range o.Blocks {
		s.Blocks[i] += v
	}
	for i, v := range o.Edges {
		s.Edges[i] += v
	}
}

// Clone returns an independent copy of the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	c := &Snapshot{Blocks: make([]uint64, len(s.Blocks)), Edges: make([]uint64, len(s.Edges))}
	copy(c.Blocks, s.Blocks)
	copy(c.Edges, s.Edges)
	return c
}
