package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"
)

// AnomalyContext is the forensic record attached to a blocking anomaly:
// the frozen tail of the session's flight recorder, oldest first, whose
// final event is the blocked I/O itself.
type AnomalyContext struct {
	Device  string
	Session int
	// Dropped is how many earlier events the ring had already
	// overwritten by freeze time.
	Dropped uint64
	Events  []Event
}

// Freeze copies the recorder's last k events (all of them if k <= 0)
// into an AnomalyContext. Called from the session goroutine on the
// blocking-anomaly path, after the blocked round's event was recorded.
func (r *Recorder) Freeze(k int) *AnomalyContext {
	if k <= 0 || k > r.ring.Len() {
		k = r.ring.Len()
	}
	return &AnomalyContext{
		Device:  r.device,
		Session: int(r.session),
		Dropped: r.ring.Total() - uint64(r.ring.Len()),
		Events:  r.ring.Last(k),
	}
}

// WriteTimeline renders the context as a human-readable timeline.
func (c *AnomalyContext) WriteTimeline(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "flight recorder: device %s session %d, %d events", c.Device, c.Session, len(c.Events))
	if c.Dropped > 0 {
		fmt.Fprintf(bw, " (%d older events overwritten)", c.Dropped)
	}
	fmt.Fprintln(bw)
	writeEvents(bw, c.Events)
	return bw.Flush()
}

// String renders the timeline for log lines.
func (c *AnomalyContext) String() string {
	var sb strings.Builder
	_ = c.WriteTimeline(&sb)
	return sb.String()
}

// WriteTimeline renders a raw event slice (a ring snapshot) as the same
// timeline AnomalyContext produces.
func WriteTimeline(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	writeEvents(bw, events)
	return bw.Flush()
}

func writeEvents(w io.Writer, events []Event) {
	fmt.Fprintf(w, "%8s %12s %8s %4s %4s %8s %10s %6s %6s %10s  %s\n",
		"seq", "tick", "round", "sess", "gen", "exit", "addr", "len", "steps", "block", "verdict")
	for i := range events {
		ev := &events[i]
		verdict := ev.Verdict.String()
		if ev.Verdict != VerdictOK {
			verdict = fmt.Sprintf("%s %s", ev.Verdict, StrategyName(ev.Strategy))
		}
		fmt.Fprintf(w, "%8d %12d %8d %4d %4d %8s %#10x %6d %6d %4d/%-5d  %s\n",
			ev.Seq, ev.Tick, ev.Round, ev.Session, ev.SpecGen, ev.Kind, ev.Addr, ev.Len,
			ev.Steps, ev.Handler, ev.Block, verdict)
	}
}

// ExportEvery periodically writes the registry's snapshot as indented
// JSON to path, and once more when the returned stop function runs.
// The commands' -metrics flag is backed by this.
func ExportEvery(path string, every time.Duration, g *Registry) (stop func() error) {
	write := func() error {
		b, err := json.MarshalIndent(g.Snapshot(), "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(b, '\n'), 0o644)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	if every > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					_ = write() // transient write errors surface from the final write
				}
			}
		}()
	}
	var once sync.Once
	return func() error {
		once.Do(func() { close(done) })
		wg.Wait()
		return write()
	}
}
