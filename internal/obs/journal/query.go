package journal

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"sedspec/internal/obs/stream"
)

// Query selects a slice of history. Zero values are unbounded.
type Query struct {
	// SinceNs/UntilNs bound event timestamps (inclusive since, inclusive
	// until; 0 = unbounded).
	SinceNs int64
	UntilNs int64
	// Kinds masks event kinds (0 = all).
	Kinds stream.KindMask
	// Tenant/Device match exactly when non-empty.
	Tenant string
	Device string
	// MinSeq skips events with hub seq below it.
	MinSeq uint64
	// Limit caps delivered events (0 = unlimited).
	Limit int
}

func (q *Query) matches(ev *stream.Event) bool {
	if q.Kinds != 0 && q.Kinds&stream.MaskOf(ev.Kind) == 0 {
		return false
	}
	if q.SinceNs != 0 && ev.TimeNs < q.SinceNs {
		return false
	}
	if q.UntilNs != 0 && ev.TimeNs > q.UntilNs {
		return false
	}
	if q.Tenant != "" && ev.Tenant != q.Tenant {
		return false
	}
	if q.Device != "" && ev.Device != q.Device {
		return false
	}
	if q.MinSeq != 0 && ev.Seq < q.MinSeq {
		return false
	}
	return true
}

// segView is a point-in-time snapshot of one segment for reading:
// path plus the byte length that was valid when the snapshot was
// taken. The writer only ever appends, so reading [0, bytes) races
// with nothing.
type segView struct {
	path     string
	bytes    int64
	firstSeq uint64
	lastSeq  uint64
	firstNs  int64
	lastNs   int64
	records  uint64
}

// snapshotSegs flushes the active segment's buffered tail to the OS
// (so a reader opening the file sees every appended frame) and
// snapshots the segment index.
func (j *Journal) snapshotSegs() ([]segView, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.closed {
		if err := j.w.Flush(); err != nil {
			j.wrErrs++
			return nil, err
		}
	}
	views := make([]segView, len(j.segs))
	for i := range j.segs {
		s := &j.segs[i]
		views[i] = segView{
			path: s.path, bytes: s.bytes,
			firstSeq: s.firstSeq, lastSeq: s.lastSeq,
			firstNs: s.firstNs, lastNs: s.lastNs,
			records: s.records,
		}
	}
	return views, nil
}

// skippable reports whether the whole segment falls outside the query
// bounds (by seq or time), so it need not be opened at all.
func (q *Query) skippable(v *segView) bool {
	if v.records == 0 {
		return true
	}
	if q.MinSeq != 0 && v.lastSeq < q.MinSeq {
		return true
	}
	if q.SinceNs != 0 && v.lastNs < q.SinceNs {
		return true
	}
	if q.UntilNs != 0 && v.firstNs > q.UntilNs {
		return true
	}
	return false
}

// Query streams matching events oldest-first into fn; fn returning
// false stops the walk early. Concurrent appends are safe: the walk
// covers exactly the records that existed when it began. Usable on a
// closed journal (post-crash inspection tools).
func (j *Journal) Query(q Query, fn func(ev *stream.Event) bool) error {
	views, err := j.snapshotSegs()
	if err != nil {
		return err
	}
	delivered := 0
	for i := range views {
		v := &views[i]
		if q.skippable(v) {
			continue
		}
		stop, err := walkSegment(v, func(ev *stream.Event) bool {
			if !q.matches(ev) {
				return true
			}
			if !fn(ev) {
				return false
			}
			delivered++
			return q.Limit == 0 || delivered < q.Limit
		})
		if err != nil {
			return err
		}
		if stop || (q.Limit > 0 && delivered >= q.Limit) {
			return nil
		}
	}
	return nil
}

// walkSegment decodes every frame in [magic, v.bytes), calling fn per
// event; fn returning false stops (stop=true). Frames inside the valid
// prefix were CRC-verified at write or recovery time, but verify again
// on read: a corrupt record here is bit rot, reported as an error
// rather than silently skipped.
func walkSegment(v *segView, fn func(ev *stream.Event) bool) (stop bool, err error) {
	f, err := os.Open(v.path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(io.LimitReader(f, v.bytes), 64<<10)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(r, magic); err != nil || string(magic) != segMagic {
		return false, fmt.Errorf("journal: %s: bad segment magic", v.path)
	}
	var hdr [frameHeader]byte
	var payload []byte
	for off := int64(len(segMagic)); off < v.bytes; {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return false, fmt.Errorf("journal: %s: truncated frame header at %d: %w", v.path, off, err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxFrame {
			return false, fmt.Errorf("journal: %s: bad frame length %d at %d", v.path, n, off)
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return false, fmt.Errorf("journal: %s: truncated frame at %d: %w", v.path, off, err)
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return false, fmt.Errorf("journal: %s: CRC mismatch at %d", v.path, off)
		}
		var ev stream.Event
		if err := ev.UnmarshalBinary(payload); err != nil {
			return false, fmt.Errorf("journal: %s: frame at %d: %w", v.path, off, err)
		}
		off += frameHeader + int64(n)
		if !fn(&ev) {
			return true, nil
		}
	}
	return false, nil
}

// Tail returns the newest max events (all when max <= 0), oldest
// first — the shape stream.Hub.Restore wants for rebuilding the
// recent-events ring on daemon boot.
func (j *Journal) Tail(max int) ([]stream.Event, error) {
	var out []stream.Event
	err := j.Query(Query{}, func(ev *stream.Event) bool {
		out = append(out, *ev)
		return true
	})
	if err != nil {
		return nil, err
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out, nil
}

// FoldBaselines replays the whole journal into per-(tenant, device)
// history rows for Health.AddBaseline, so /fleet counters survive a
// restart. Each count has exactly one authoritative source to avoid
// double counting: blocked from anomaly events, warned from audit
// events, rounds from detach finals (the only record that carries
// them), swaps from swap events, generation from the highest SpecGen
// stamp seen on any of the device's events.
func (j *Journal) FoldBaselines() ([]stream.BaselineRow, error) {
	type key struct{ tenant, device string }
	rows := make(map[key]*stream.BaselineRow)
	get := func(ev *stream.Event) *stream.BaselineRow {
		k := key{ev.Tenant, ev.Device}
		r := rows[k]
		if r == nil {
			r = &stream.BaselineRow{Tenant: ev.Tenant, Device: ev.Device}
			rows[k] = r
		}
		return r
	}
	err := j.Query(Query{}, func(ev *stream.Event) bool {
		if ev.Device == "" {
			return true // engine-level events (spec publications) carry no device row
		}
		r := get(ev)
		switch ev.Kind {
		case stream.KindAnomaly:
			r.Blocked++
		case stream.KindAudit:
			r.Warned++
		case stream.KindSwap:
			r.Swaps++
		case stream.KindDetach:
			if ev.Detach != nil {
				r.Rounds += ev.Detach.Rounds
			}
		}
		if ev.SpecGen > r.Generation {
			r.Generation = ev.SpecGen
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	out := make([]stream.BaselineRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, *r)
	}
	// Deterministic order for tests and logs.
	sortRows(out)
	return out, nil
}

func sortRows(rows []stream.BaselineRow) {
	for i := 1; i < len(rows); i++ {
		for k := i; k > 0 && rowLess(&rows[k], &rows[k-1]); k-- {
			rows[k], rows[k-1] = rows[k-1], rows[k]
		}
	}
}

func rowLess(a, b *stream.BaselineRow) bool {
	if a.Tenant != b.Tenant {
		return a.Tenant < b.Tenant
	}
	return a.Device < b.Device
}
