package journal

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sedspec/internal/obs/stream"
)

// testEvent builds an appendable event with a hub seq and timestamp.
func testEvent(seq uint64, kind stream.Kind, tenant, device string) stream.Event {
	ev := stream.Event{
		Seq:     seq,
		TimeNs:  int64(1000 * seq),
		Kind:    kind,
		Tenant:  tenant,
		Device:  device,
		Session: 1,
		SpecGen: seq % 5,
	}
	switch kind {
	case stream.KindAnomaly:
		ev.Anomaly = &stream.AnomalyInfo{Strategy: "parameter-check", Severity: "critical", Detail: "track out of range", Round: seq}
	case stream.KindAudit:
		ev.Audit = &stream.AuditInfo{Strategy: "indirect-jump-check", Detail: "untrained command", Round: seq}
	case stream.KindSwap:
		ev.Swap = &stream.SwapInfo{FromGen: 1, ToGen: 2}
	case stream.KindDetach:
		ev.Detach = &stream.SessionInfo{Rounds: 100, Blocked: 2, Warnings: 3}
	case stream.KindSpec:
		ev.Spec = &stream.SpecInfo{Generation: 2, CreatedBy: "enhance"}
	}
	return ev
}

func mustOpen(t *testing.T, opts Options) *Journal {
	t.Helper()
	j, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

// TestJournalPersistAndReload is the basic durability contract: append,
// close, reopen, and every record comes back in order with every stamp
// intact.
func TestJournalPersistAndReload(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Options{Dir: dir, Fsync: PolicyNone})
	kinds := []stream.Kind{stream.KindAnomaly, stream.KindAudit, stream.KindSwap, stream.KindDetach, stream.KindSpec}
	for i := uint64(1); i <= 20; i++ {
		ev := testEvent(i, kinds[i%uint64(len(kinds))], "prod", "fdc")
		if err := j.Append(&ev); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	st := j.Stats()
	if st.Appended != 20 || st.Records != 20 || st.FirstSeq != 1 || st.LastSeq != 20 {
		t.Fatalf("stats before close: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := mustOpen(t, Options{Dir: dir, Fsync: PolicyNone})
	defer j2.Close()
	st = j2.Stats()
	if st.Records != 20 || st.Truncations != 0 {
		t.Fatalf("stats after reload: %+v", st)
	}
	tail, err := j2.Tail(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 20 {
		t.Fatalf("tail length %d, want 20", len(tail))
	}
	for i, ev := range tail {
		want := testEvent(uint64(i+1), kinds[uint64(i+1)%uint64(len(kinds))], "prod", "fdc")
		if ev.Seq != want.Seq || ev.Kind != want.Kind || ev.Tenant != "prod" || ev.SpecGen != want.SpecGen {
			t.Fatalf("tail[%d] = %+v, want seq %d kind %s", i, ev, want.Seq, want.Kind)
		}
	}
}

// TestJournalTornWriteRecovery is the acceptance-critical recovery
// property: truncate the last segment at EVERY byte offset inside the
// final record's frame; every truncated copy must open successfully,
// recover all prior records, and report exactly one truncation.
func TestJournalTornWriteRecovery(t *testing.T) {
	// Build a pristine journal with a known final record.
	master := t.TempDir()
	j := mustOpen(t, Options{Dir: master, Fsync: PolicyNone})
	const n = 5
	for i := uint64(1); i <= n; i++ {
		ev := testEvent(i, stream.KindAnomaly, "prod", "fdc")
		if err := j.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(master, "journal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("want exactly 1 segment, got %v (%v)", segs, err)
	}
	pristine, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	// Find where the final record's frame begins by re-walking the first
	// n-1 frames.
	lastFrameStart := int64(len(segMagic))
	j2 := mustOpen(t, Options{Dir: master, Fsync: PolicyNone})
	count := 0
	err = j2.Query(Query{Limit: n - 1}, func(ev *stream.Event) bool {
		count++
		return true
	})
	if err != nil || count != n-1 {
		t.Fatalf("prewalk: %d events, %v", count, err)
	}
	j2.Close()
	{
		// Recompute the last frame's start from sizes: frames are
		// header + payload; walk lengths directly.
		off := int64(len(segMagic))
		for {
			if off+frameHeader > int64(len(pristine)) {
				t.Fatalf("walk overran file at %d", off)
			}
			plen := int64(uint32(pristine[off]) | uint32(pristine[off+1])<<8 | uint32(pristine[off+2])<<16 | uint32(pristine[off+3])<<24)
			next := off + frameHeader + plen
			if next == int64(len(pristine)) {
				lastFrameStart = off
				break
			}
			off = next
		}
	}

	// Every cut inside the final frame must recover to n-1 records. A
	// cut exactly at the frame boundary leaves a clean file (no torn
	// bytes → no truncation); any cut strictly inside repairs exactly
	// one torn tail.
	for cut := lastFrameStart; cut < int64(len(pristine)); cut++ {
		wantTrunc := uint64(1)
		if cut == lastFrameStart {
			wantTrunc = 0
		}
		dir := t.TempDir()
		path := filepath.Join(dir, filepath.Base(segs[0]))
		if err := os.WriteFile(path, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jr, err := Open(Options{Dir: dir, Fsync: PolicyNone})
		if err != nil {
			t.Fatalf("cut %d: open failed: %v", cut, err)
		}
		st := jr.Stats()
		if st.Truncations != wantTrunc {
			t.Fatalf("cut %d: truncations = %d, want %d", cut, st.Truncations, wantTrunc)
		}
		if st.Records != n-1 {
			t.Fatalf("cut %d: records = %d, want %d", cut, st.Records, n-1)
		}
		tail, err := jr.Tail(0)
		if err != nil || len(tail) != n-1 {
			t.Fatalf("cut %d: tail %d events, %v", cut, len(tail), err)
		}
		for i, ev := range tail {
			if ev.Seq != uint64(i+1) {
				t.Fatalf("cut %d: tail[%d].Seq = %d", cut, i, ev.Seq)
			}
		}
		// The repaired journal must accept appends cleanly.
		ev := testEvent(n, stream.KindAnomaly, "prod", "fdc")
		if err := jr.Append(&ev); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		if err := jr.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
		jr2, err := Open(Options{Dir: dir, Fsync: PolicyNone})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if st := jr2.Stats(); st.Records != n || st.Truncations != 0 {
			t.Fatalf("cut %d: after repair+append: %+v", cut, st)
		}
		jr2.Close()
	}

	// A corrupt byte (CRC failure) in the final record is recovered the
	// same way as a short write.
	dir := t.TempDir()
	path := filepath.Join(dir, filepath.Base(segs[0]))
	flipped := append([]byte(nil), pristine...)
	flipped[len(flipped)-1] ^= 0xff
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	jr := mustOpen(t, Options{Dir: dir, Fsync: PolicyNone})
	if st := jr.Stats(); st.Truncations != 1 || st.Records != n-1 {
		t.Fatalf("bitflip recovery: %+v", st)
	}
	jr.Close()
}

// TestJournalRotationAndRetention drives the segment lifecycle with a
// tiny segment budget: rotation on size, pruning beyond MaxSegments,
// and queries spanning the survivors.
func TestJournalRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Options{Dir: dir, SegmentBytes: 512, MaxSegments: 3, Fsync: PolicyNone})
	defer j.Close()
	for i := uint64(1); i <= 100; i++ {
		ev := testEvent(i, stream.KindAnomaly, "prod", "fdc")
		if err := j.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Segments > 3 {
		t.Fatalf("retention leak: %d segments", st.Segments)
	}
	if st.Rotations == 0 || st.Pruned == 0 {
		t.Fatalf("expected rotations and pruning: %+v", st)
	}
	if st.LastSeq != 100 {
		t.Fatalf("last seq %d", st.LastSeq)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "journal-*.seg"))
	if len(files) != st.Segments {
		t.Fatalf("index says %d segments, disk has %d", st.Segments, len(files))
	}
	// The oldest retained record is whatever survived pruning; the tail
	// must still end at 100 and be contiguous.
	tail, err := j.Tail(0)
	if err != nil || len(tail) == 0 {
		t.Fatalf("tail: %d, %v", len(tail), err)
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq != tail[i-1].Seq+1 {
			t.Fatalf("tail not contiguous at %d: %d -> %d", i, tail[i-1].Seq, tail[i].Seq)
		}
	}
	if tail[len(tail)-1].Seq != 100 {
		t.Fatalf("tail ends at %d", tail[len(tail)-1].Seq)
	}
}

// TestJournalQueryFilters pins every Query dimension.
func TestJournalQueryFilters(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Options{Dir: dir, Fsync: PolicyNone})
	defer j.Close()
	seq := uint64(0)
	add := func(kind stream.Kind, tenant, device string) {
		seq++
		ev := testEvent(seq, kind, tenant, device)
		if err := j.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	add(stream.KindAnomaly, "prod", "fdc")
	add(stream.KindAudit, "prod", "fdc")
	add(stream.KindAnomaly, "edge", "ehci")
	add(stream.KindSwap, "prod", "fdc")
	add(stream.KindAnomaly, "prod", "ehci")

	countQ := func(q Query) int {
		n := 0
		if err := j.Query(q, func(*stream.Event) bool { n++; return true }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := countQ(Query{}); n != 5 {
		t.Errorf("unfiltered: %d", n)
	}
	if n := countQ(Query{Kinds: stream.MaskOf(stream.KindAnomaly)}); n != 3 {
		t.Errorf("kind filter: %d", n)
	}
	if n := countQ(Query{Tenant: "edge"}); n != 1 {
		t.Errorf("tenant filter: %d", n)
	}
	if n := countQ(Query{Device: "ehci"}); n != 2 {
		t.Errorf("device filter: %d", n)
	}
	if n := countQ(Query{MinSeq: 4}); n != 2 {
		t.Errorf("min_seq filter: %d", n)
	}
	if n := countQ(Query{SinceNs: 3000, UntilNs: 4000}); n != 2 {
		t.Errorf("time filter: %d", n)
	}
	if n := countQ(Query{Limit: 2}); n != 2 {
		t.Errorf("limit: %d", n)
	}
}

// TestJournalAttachDrains covers the hub path: events published after
// Attach land on disk; Close drains the backlog before returning.
func TestJournalAttachDrains(t *testing.T) {
	dir := t.TempDir()
	hub := stream.NewHub()
	j := mustOpen(t, Options{Dir: dir, Fsync: PolicyInterval, FsyncInterval: 10 * time.Millisecond})
	j.Attach(hub)
	for i := 0; i < 50; i++ {
		hub.Publish(testEvent(0, stream.KindAnomaly, "prod", "fdc")) // hub assigns seq
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := mustOpen(t, Options{Dir: dir, Fsync: PolicyNone})
	defer j2.Close()
	tail, err := j2.Tail(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 50 {
		t.Fatalf("persisted %d events, want 50", len(tail))
	}
	for i, ev := range tail {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("tail[%d].Seq = %d (hub seq not preserved)", i, ev.Seq)
		}
	}
	if st := j2.Stats(); st.FirstSeq != 1 || st.LastSeq != 50 {
		t.Fatalf("stats: %+v", st)
	}

	// Drop notices are excluded by the default kind mask.
	if opts := (&Options{}).withDefaults(); opts.Kinds&stream.MaskOf(stream.KindDrop) != 0 {
		t.Error("default mask persists drop notices")
	}
}

// TestJournalHubRestore closes the loop the daemon relies on: reopen,
// Tail into Hub.Restore, and the hub's recent ring + seq counter carry
// the pre-restart history.
func TestJournalHubRestore(t *testing.T) {
	dir := t.TempDir()
	hub := stream.NewHub()
	j := mustOpen(t, Options{Dir: dir, Fsync: PolicyNone})
	j.Attach(hub)
	for i := 0; i < 7; i++ {
		hub.Publish(testEvent(0, stream.KindAnomaly, "prod", "fdc"))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh hub, replay the journal tail.
	hub2 := stream.NewHub()
	j2 := mustOpen(t, Options{Dir: dir, Fsync: PolicyNone})
	defer j2.Close()
	tail, err := j2.Tail(stream.RecentCap)
	if err != nil {
		t.Fatal(err)
	}
	hub2.Restore(tail)
	recent := hub2.Recent(stream.MaskAll, 0)
	if len(recent) != 7 {
		t.Fatalf("restored recent: %d", len(recent))
	}
	if recent[len(recent)-1].Seq != 7 {
		t.Fatalf("restored last seq %d", recent[len(recent)-1].Seq)
	}
	// New publishes resume past the restored history.
	if seq := hub2.Publish(testEvent(0, stream.KindAudit, "prod", "fdc")); seq != 8 {
		t.Fatalf("post-restore publish seq %d, want 8", seq)
	}
}

// TestJournalFoldBaselines pins the one-authoritative-source-per-count
// rule: blocked from anomalies, warned from audits, rounds from detach
// finals, swaps from swap events, generation from the max stamp.
func TestJournalFoldBaselines(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Options{Dir: dir, Fsync: PolicyNone})
	defer j.Close()
	seq := uint64(0)
	add := func(ev stream.Event) {
		seq++
		ev.Seq = seq
		ev.TimeNs = int64(seq)
		if err := j.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	add(stream.Event{Kind: stream.KindAnomaly, Tenant: "prod", Device: "fdc", SpecGen: 2,
		Anomaly: &stream.AnomalyInfo{Severity: "critical"}})
	add(stream.Event{Kind: stream.KindAnomaly, Tenant: "prod", Device: "fdc", SpecGen: 3,
		Anomaly: &stream.AnomalyInfo{Severity: "critical"}})
	add(stream.Event{Kind: stream.KindAudit, Tenant: "prod", Device: "fdc", SpecGen: 3,
		Audit: &stream.AuditInfo{}})
	add(stream.Event{Kind: stream.KindSwap, Tenant: "prod", Device: "fdc", SpecGen: 4,
		Swap: &stream.SwapInfo{FromGen: 3, ToGen: 4}})
	add(stream.Event{Kind: stream.KindDetach, Tenant: "prod", Device: "fdc", SpecGen: 4,
		Detach: &stream.SessionInfo{Rounds: 500, Blocked: 2, Warnings: 1}})
	add(stream.Event{Kind: stream.KindDetach, Tenant: "prod", Device: "fdc", SpecGen: 4,
		Detach: &stream.SessionInfo{Rounds: 250}})
	add(stream.Event{Kind: stream.KindAnomaly, Tenant: "edge", Device: "ehci", SpecGen: 1,
		Anomaly: &stream.AnomalyInfo{Severity: "critical"}})
	// Engine-level event with no device: folded into no row.
	add(stream.Event{Kind: stream.KindSpec, Tenant: "prod", SpecGen: 5, Spec: &stream.SpecInfo{Generation: 5}})

	rows, err := j.FoldBaselines()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: %+v", rows)
	}
	if r := rows[0]; r.Tenant != "edge" || r.Device != "ehci" || r.Blocked != 1 || r.Rounds != 0 {
		t.Fatalf("edge row: %+v", r)
	}
	if r := rows[1]; r.Tenant != "prod" || r.Device != "fdc" ||
		r.Blocked != 2 || r.Warned != 1 || r.Swaps != 1 || r.Rounds != 750 || r.Generation != 4 {
		t.Fatalf("prod row: %+v", r)
	}
}

// TestJournalHandler exercises the /journal HTTP surface: NDJSON
// output, filters, limit, and the stats view.
func TestJournalHandler(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Options{Dir: dir, Fsync: PolicyNone})
	defer j.Close()
	for i := uint64(1); i <= 6; i++ {
		kind := stream.KindAnomaly
		if i%2 == 0 {
			kind = stream.KindAudit
		}
		ev := testEvent(i, kind, "prod", "fdc")
		if err := j.Append(&ev); err != nil {
			t.Fatal(err)
		}
	}
	h := Handler(j)

	get := func(url string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec
	}
	lines := func(rec *httptest.ResponseRecorder) []string {
		body := strings.TrimSpace(rec.Body.String())
		if body == "" {
			return nil
		}
		return strings.Split(body, "\n")
	}

	rec := get("/journal")
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("GET /journal: %d %s", rec.Code, rec.Header().Get("Content-Type"))
	}
	if got := lines(rec); len(got) != 6 {
		t.Fatalf("unfiltered lines: %d", len(got))
	} else {
		var ev stream.Event
		if err := json.Unmarshal([]byte(got[0]), &ev); err != nil || ev.Seq != 1 {
			t.Fatalf("first line decode: %+v, %v", ev, err)
		}
	}
	if got := lines(get("/journal?kinds=anomaly")); len(got) != 3 {
		t.Errorf("kinds filter: %d lines", len(got))
	}
	if got := lines(get("/journal?min_seq=5")); len(got) != 2 {
		t.Errorf("min_seq filter: %d lines", len(got))
	}
	if got := lines(get("/journal?limit=2")); len(got) != 2 {
		t.Errorf("limit: %d lines", len(got))
	}
	if got := lines(get("/journal?since=3000&until=4000")); len(got) != 2 {
		t.Errorf("time filter: %d lines", len(got))
	}
	if rec := get("/journal?tenant=absent"); len(lines(rec)) != 0 {
		t.Errorf("tenant filter returned events")
	}
	if rec := get("/journal?since=bogus"); rec.Code != 400 {
		t.Errorf("bad since: %d", rec.Code)
	}
	if rec := get("/journal?kinds=nope"); rec.Code != 400 {
		t.Errorf("bad kinds: %d", rec.Code)
	}

	rec = get("/journal?stats=1")
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil || st.Records != 6 || st.Segments != 1 {
		t.Fatalf("stats view: %+v, %v", st, err)
	}
}

// TestParsePolicy pins the flag surface.
func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"", PolicyInterval}, {"interval", PolicyInterval}, {"always", PolicyAlways}, {"none", PolicyNone}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePolicy("everysooften"); err == nil {
		t.Error("bad policy accepted")
	}
}
