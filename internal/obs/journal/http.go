package journal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sedspec/internal/obs/stream"
)

// Handler serves the journal's history as NDJSON. It lives here rather
// than on stream.Server because the handler needs the Journal type and
// stream must not import its own consumer; the daemon mounts it with
// srv.Handle("/journal", journal.Handler(j)).
//
// Query parameters:
//
//	since, until  time bound: RFC3339, unix nanoseconds, or a relative
//	              duration ("15m" = that long ago)
//	kinds         comma-separated kind list (default all)
//	tenant        exact tenant match
//	device        exact device match
//	min_seq       minimum hub sequence number
//	limit         cap on returned events (default 1024, 0 = unlimited)
//	stats         "1" returns the journal's Stats instead of events
//
// Events stream oldest-first in the same JSON shape as /anomalies, so
// a client can splice journal history and a live follow tail by seq.
func Handler(j *Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("stats") == "1" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(j.Stats())
			return
		}
		q, err := parseQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		werr := error(nil)
		qerr := j.Query(q, func(ev *stream.Event) bool {
			werr = enc.Encode(ev)
			return werr == nil
		})
		if qerr != nil && werr == nil {
			// Headers are gone; the NDJSON contract is that a clean stream
			// ends at EOF, so surface read errors as a trailer record the
			// client can detect.
			_ = enc.Encode(map[string]string{"error": qerr.Error()})
		}
	})
}

func parseQuery(r *http.Request) (Query, error) {
	v := r.URL.Query()
	q := Query{Limit: 1024}
	var err error
	if q.SinceNs, err = parseTime(v.Get("since")); err != nil {
		return q, fmt.Errorf("bad since: %w", err)
	}
	if q.UntilNs, err = parseTime(v.Get("until")); err != nil {
		return q, fmt.Errorf("bad until: %w", err)
	}
	if q.Kinds, err = stream.ParseKinds(v.Get("kinds")); err != nil {
		return q, err
	}
	q.Tenant = v.Get("tenant")
	q.Device = v.Get("device")
	if s := v.Get("min_seq"); s != "" {
		if q.MinSeq, err = strconv.ParseUint(s, 10, 64); err != nil {
			return q, fmt.Errorf("bad min_seq: %w", err)
		}
	}
	if s := v.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return q, fmt.Errorf("bad limit %q", s)
		}
		q.Limit = n
	}
	return q, nil
}

// parseTime resolves a time bound: RFC3339, raw unix nanoseconds, or a
// duration meaning "that long before now". Empty means unbounded.
func parseTime(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t.UnixNano(), nil
	}
	if ns, err := strconv.ParseInt(s, 10, 64); err == nil {
		return ns, nil
	}
	if d, err := time.ParseDuration(s); err == nil && d > 0 {
		return time.Now().Add(-d).UnixNano(), nil
	}
	return 0, fmt.Errorf("want RFC3339, unix nanoseconds, or a duration like 15m: %q", s)
}
